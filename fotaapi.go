package cellcars

import (
	"cellcars/internal/analysis"
	"cellcars/internal/fota"
)

// FOTA campaign planning (the management application the paper
// motivates; see internal/fota).
type (
	// FOTAPolicy decides when update bytes may be pushed to a car.
	FOTAPolicy = fota.Policy
	// FOTAConfig parameterizes a campaign simulation.
	FOTAConfig = fota.Config
	// FOTAResult summarizes a simulated campaign.
	FOTAResult = fota.Result
	// FOTASegment is the per-car knowledge the planner uses.
	FOTASegment = fota.Segment
	// NaivePolicy pushes whenever a car is connected.
	NaivePolicy = fota.NaivePolicy
	// RandomizedPolicy pushes with a fixed probability per slice.
	RandomizedPolicy = fota.RandomizedPolicy
	// SegmentAwarePolicy prioritizes rare cars and defers common cars
	// away from busy cells (§4.3).
	SegmentAwarePolicy = fota.SegmentAwarePolicy
)

// DefaultFOTAConfig returns standard campaign parameters under the
// given policy.
func DefaultFOTAConfig(p FOTAPolicy) FOTAConfig { return fota.DefaultConfig(p) }

// SimulateFOTA replays a record stream and runs one campaign.
func SimulateFOTA(records []Record, ctx Context, segments map[CarID]FOTASegment, cfg FOTAConfig) FOTAResult {
	return fota.Simulate(records, ctx, segments, cfg)
}

// CompareFOTA runs the same campaign under several policies.
func CompareFOTA(records []Record, ctx Context, segments map[CarID]FOTASegment, base FOTAConfig, policies ...FOTAPolicy) []FOTAResult {
	return fota.Compare(records, ctx, segments, base, policies...)
}

// FOTASegments derives per-car segments from a record stream using the
// paper's thresholds.
func FOTASegments(records []Record, ctx Context, rareDays int) map[CarID]FOTASegment {
	return fota.SegmentsFromReport(records, ctx, rareDays)
}

// FormatFOTAResults renders campaign results as an aligned table.
func FormatFOTAResults(results []FOTAResult) string { return fota.FormatResults(results) }

// FormatTable1 renders a report's Table 1 (per-weekday presence).
func FormatTable1(r *Report) string { return analysis.FormatTable1(r.WeekdayRows) }

// FormatTable2 renders a report's Table 2 (car segmentation).
func FormatTable2(r *Report) string { return analysis.FormatTable2(r.Segments) }

// FormatTable3 renders a report's Table 3 (carrier usage).
func FormatTable3(r *Report) string { return analysis.FormatTable3(r.Carriers) }
