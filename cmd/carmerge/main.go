// Command carmerge merges partial analysis snapshots produced by
// `caranalyze -partial` (or checkpoint files) and finalizes the full
// report — the reduce side of a map-reduce run over car-sharded CDR
// shards.
//
// Usage:
//
//	carmerge shard0.snap shard1.snap shard2.snap
//	carmerge -o merged.snap shard*.snap       # write merged partial, no report
//	carmerge -md report.md shard*.snap        # also render Markdown
//
// Every input must carry the same study configuration (period,
// time zone, seed, rare-day thresholds, busy-cell set); carmerge
// refuses to merge partials whose car sets overlap — exact merges
// require car-disjoint shards (shard with cdr.ShardOfCar) — unless
// -allow-overlap accepts the double counting.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cellcars/internal/analysis"
	"cellcars/internal/obs"
	"cellcars/internal/radio"
	"cellcars/internal/report"
	"cellcars/internal/textplot"
)

func main() {
	var (
		out          = flag.String("o", "", "write the merged partial snapshot here instead of printing the report")
		force        = flag.Bool("force", false, "overwrite an existing -o snapshot file")
		md           = flag.String("md", "", "also write a Markdown report to this file")
		allowOverlap = flag.Bool("allow-overlap", false, "merge partials whose car sets overlap (double-counts shared cars)")
		quiet        = flag.Bool("q", false, "suppress per-input progress lines")
		debugAddr    = flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address while merging")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: carmerge [-o merged.snap] [-md report.md] [-allow-overlap] shard.snap...")
		os.Exit(2)
	}
	if *debugAddr != "" {
		srv, err := obs.Serve(*debugAddr, obs.New())
		if err != nil {
			fatal("debug server: %v", err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "carmerge: debug server on http://%s\n", srv.Addr())
	}
	if *out != "" && !*force {
		if _, err := os.Stat(*out); err == nil {
			fatal("%s exists; use -force to overwrite", *out)
		}
	}

	var merged *analysis.Partial
	for _, path := range flag.Args() {
		p, err := analysis.ReadPartialFile(path)
		if err != nil {
			fatal("read %v", err)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "carmerge: %s: %d records, watermark study %s+%dd\n",
				path, p.Records(), p.Header.PeriodStart.Format("2006-01-02"), p.Header.PeriodDays)
		}
		if merged == nil {
			merged = p
			continue
		}
		if err := merged.Merge(p, *allowOverlap); err != nil {
			fatal("merge %s: %v", path, err)
		}
	}

	if *out != "" {
		if err := merged.WriteSnapshot(*out); err != nil {
			fatal("write %s: %v", *out, err)
		}
		fmt.Fprintf(os.Stderr, "carmerge: wrote merged partial (%d records, %d inputs) to %s\n",
			merged.Records(), flag.NArg(), *out)
		if *md == "" {
			return
		}
	}

	rep := merged.Finalize()
	ctx := analysis.Context{
		Period:          merged.Header.Period(),
		TZOffsetSeconds: merged.Header.TZOffsetSeconds,
	}
	printReport(rep, merged)

	if *md != "" {
		desc := fmt.Sprintf("merged from %d partial snapshot(s), %d records", flag.NArg(), merged.Records())
		doc := report.Render(rep, ctx, report.Options{
			Title:            "cellcars merged report",
			SceneDescription: desc,
			Now:              time.Now(),
		})
		if err := os.WriteFile(*md, []byte(doc), 0o644); err != nil {
			fatal("write %s: %v", *md, err)
		}
		fmt.Printf("wrote Markdown report to %s\n", *md)
	}
}

// printReport prints the record-level sections of the merged report.
// Sections that need the raw records or a load source (Figures 1, 5,
// 8, 10) cannot be reproduced from partial state and are omitted.
func printReport(r *analysis.Report, p *analysis.Partial) {
	fmt.Printf("== Preprocessing (§3) ==\n")
	fmt.Printf("raw records %d, after ghost removal %d (%d one-hour ghosts dropped, %d outside the study period)\n\n",
		r.RawRecords, r.CleanRecords, r.RawRecords-r.CleanRecords, r.OutOfPeriod)

	fmt.Println("== Figure 2 / Table 1: daily presence ==")
	fmt.Printf("population: %d cars, %d cells touched\n", r.Presence.TotalCars, r.Presence.TotalCells)
	fmt.Println(analysis.FormatTable1(r.WeekdayRows))

	fmt.Println("== Figure 3: total time on network (fraction of study) ==")
	fmt.Printf("means: full %.2f%%, truncated %.2f%% | p99.5: full %.1f%%, truncated %.1f%%\n\n",
		r.Connected.FullMean*100, r.Connected.TruncMean*100,
		r.Connected.FullP995*100, r.Connected.TruncP995*100)

	fmt.Println("== Figure 6: days on network ==")
	fmt.Println(textplot.Histogram("cars per day-count", r.DaysHist.Counts, 72, 8))

	if len(r.Segments) > 0 {
		fmt.Println("== Table 2: car segmentation ==")
		fmt.Println(analysis.FormatTable2(r.Segments))
	}
	if p.Header.HasLoad {
		fmt.Println("== Figure 7: time in busy cells ==")
		fmt.Printf("cars > 50%% busy time: %.2f%%; cars ~100%%: %.2f%%\n\n",
			r.Busy.OverHalf*100, r.Busy.AllBusy*100)
	}

	fmt.Println("== Figure 9: per-cell connection durations ==")
	fmt.Printf("median %.0f s, p73 %.0f s, mean full %.0f s, mean truncated %.0f s\n\n",
		r.Durations.Median, r.Durations.P73, r.Durations.FullMean, r.Durations.TruncMean)

	fmt.Println("== §4.5: handovers per mobility session ==")
	fmt.Printf("sessions %d | handovers median %.0f, p70 %.0f, p90 %.0f | inter-BS share %.1f%%\n",
		r.Handovers.Sessions, r.Handovers.Median, r.Handovers.P70, r.Handovers.P90,
		r.Handovers.InterBSShare()*100)
	for k := 0; k < radio.NumHandoverKinds; k++ {
		kind := radio.HandoverKind(k)
		if count, ok := r.Handovers.ByKind[kind]; ok {
			fmt.Printf("  %-22s %d\n", kind, count)
		}
	}
	fmt.Println()

	fmt.Println("== Table 3: carrier use ==")
	fmt.Println(analysis.FormatTable3(r.Carriers))

	if len(r.Clusters.Sizes) > 0 {
		fmt.Println("== Figure 11: k-means clusters over busy radios ==")
		fmt.Printf("clusters: sizes %v, centroid peak ratio %.1fx\n\n", r.Clusters.Sizes, r.Clusters.PeakRatio())
	}

	for _, se := range r.StageErrors {
		fmt.Printf("!! stage %s failed: %s\n", se.Stage, se.Err)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "carmerge: "+format+"\n", args...)
	os.Exit(1)
}
