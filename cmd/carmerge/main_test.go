package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cellcars/internal/analysis"
	"cellcars/internal/cdr"
	"cellcars/internal/radio"
	"cellcars/internal/simtime"
)

// TestMain re-execs the test binary as the real carmerge when
// CARMERGE_MAIN=1, so the refusal tests see the actual exit codes and
// stderr a user would.
func TestMain(m *testing.M) {
	if os.Getenv("CARMERGE_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func carmerge(args ...string) (stdout, stderr string, code int) {
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "CARMERGE_MAIN=1")
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	err := cmd.Run()
	code = 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		code = -1
	}
	return out.String(), errb.String(), code
}

// writePartial accumulates one record per given car into a partial
// snapshot at path.
func writePartial(t *testing.T, path string, cars ...cdr.CarID) {
	t.Helper()
	ctx := analysis.Context{
		Period:          simtime.NewPeriod(time.Date(2017, 1, 2, 0, 0, 0, 0, time.UTC), 14),
		TZOffsetSeconds: -5 * 3600,
	}
	acc := analysis.NewStreamingWithOptions(ctx, analysis.RunOptions{Seed: 1})
	start := time.Date(2017, 1, 3, 8, 0, 0, 0, time.UTC)
	for i, car := range cars {
		acc.Add(cdr.Record{
			Car:      car,
			Cell:     radio.MakeCellKey(radio.BSID(i), 0, radio.C1),
			Start:    start.Add(time.Duration(i) * time.Hour),
			Duration: 5 * time.Minute,
		})
	}
	if err := acc.WriteSnapshot(path); err != nil {
		t.Fatal(err)
	}
}

// TestRefusesCarOverlap: partials sharing a car double-count it, so
// carmerge must refuse unless -allow-overlap accepts that.
func TestRefusesCarOverlap(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.snap")
	b := filepath.Join(dir, "b.snap")
	writePartial(t, a, 1, 2)
	writePartial(t, b, 2, 3)

	_, stderr, code := carmerge(a, b)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "share") {
		t.Fatalf("stderr does not name the shared-car refusal:\n%s", stderr)
	}

	stdout, stderr, code := carmerge("-allow-overlap", a, b)
	if code != 0 {
		t.Fatalf("-allow-overlap exit code = %d; stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "== Preprocessing") {
		t.Fatalf("-allow-overlap produced no report:\n%s", stdout)
	}
}

// TestRefusesTruncatedPartial: a partial cut short mid-frame must be
// rejected as a bad snapshot, not half-merged.
func TestRefusesTruncatedPartial(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.snap")
	writePartial(t, good, 1, 2, 3)
	data, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	cut := filepath.Join(dir, "cut.snap")
	if err := os.WriteFile(cut, data[:len(data)*3/5], 0o644); err != nil {
		t.Fatal(err)
	}

	_, stderr, code := carmerge(cut)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "snapshot") {
		t.Fatalf("stderr does not mention the snapshot failure:\n%s", stderr)
	}
}

// TestRefusesBitFlippedPartial: a single flipped bit must trip the
// per-frame CRC and reject the file.
func TestRefusesBitFlippedPartial(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.snap")
	writePartial(t, good, 1, 2, 3)
	data, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x10
	bad := filepath.Join(dir, "bad.snap")
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, stderr, code := carmerge(bad)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "snapshot") {
		t.Fatalf("stderr does not mention the snapshot failure:\n%s", stderr)
	}
}
