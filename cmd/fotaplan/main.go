// Command fotaplan plans and simulates a firmware-over-the-air update
// campaign over a synthetic connected-car population, comparing the
// push policies the measurement study motivates (§4.3): naive,
// randomized, and segmentation-aware.
//
// Usage:
//
//	fotaplan -cars 2000 -days 28 -size 200
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cellcars/internal/analysis"
	"cellcars/internal/cdr"
	"cellcars/internal/clean"
	"cellcars/internal/fota"
	"cellcars/internal/simtime"
	"cellcars/internal/synth"
	"cellcars/internal/textplot"
)

func main() {
	var (
		cars = flag.Int("cars", 2000, "fleet size")
		days = flag.Int("days", 28, "campaign window in days")
		seed = flag.Uint64("seed", 1, "seed")
		size = flag.Float64("size", 200, "update size in MB")
		p    = flag.Float64("p", 0.25, "randomized policy push probability")
	)
	flag.Parse()

	cfg := synth.DefaultConfig(*cars)
	cfg.Seed = *seed
	cfg.Period = simtime.NewPeriod(time.Date(2017, 1, 2, 0, 0, 0, 0, time.UTC), *days)
	w := synth.NewWorld(cfg)

	records, _, err := w.GenerateAll()
	if err != nil {
		fmt.Fprintf(os.Stderr, "fotaplan: generate: %v\n", err)
		os.Exit(1)
	}
	cleaned, err := cdr.ReadAll(clean.RemoveGhosts(cdr.NewSliceReader(records)))
	if err != nil {
		fmt.Fprintf(os.Stderr, "fotaplan: clean: %v\n", err)
		os.Exit(1)
	}

	ctx := analysis.Context{Period: cfg.Period, Load: w.Load}
	rareDays := *days / 9
	if rareDays < 1 {
		rareDays = 1
	}
	segments := fota.SegmentsFromReport(cleaned, ctx, rareDays)

	rare, busyHour := 0, 0
	for _, s := range segments {
		if s.Rare {
			rare++
		}
		if s.BusyHour {
			busyHour++
		}
	}
	fmt.Printf("population: %d cars with data; %d rare (<= %d days), %d busy-hour\n\n",
		len(segments), rare, rareDays, busyHour)

	base := fota.DefaultConfig(nil)
	base.UpdateMB = *size
	trainWeeks := *days / 14
	if trainWeeks < 1 {
		trainWeeks = 1
	}
	results := fota.Compare(cleaned, ctx, segments, base,
		fota.NaivePolicy{},
		fota.RandomizedPolicy{P: *p, Seed: *seed},
		fota.SegmentAwarePolicy{BusyThreshold: w.Load.BusyThreshold()},
		fota.ScheduledPolicy{
			Period:        cfg.Period,
			Windows:       fota.PlanWindows(cleaned, ctx, trainWeeks, 4),
			BusyThreshold: w.Load.BusyThreshold(),
		},
	)

	fmt.Printf("campaign: %.0f MB per car over %d days\n\n", *size, *days)
	fmt.Println(fota.FormatResults(results))

	for _, r := range results {
		xs := make([]float64, len(r.CompletionDay))
		for i := range xs {
			xs[i] = float64(i + 1)
		}
		fmt.Println(textplot.Chart(
			fmt.Sprintf("%s: cumulative completion by day", r.Policy),
			xs, r.CompletionDay, 60, 6))
	}
}
