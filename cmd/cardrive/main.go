// Command cardrive is the fault-tolerant coordinator for distributed
// analysis runs: it plans car-disjoint shards over the input CDR
// files, fans them out to caranalyze -partial worker subprocesses, and
// survives worker crashes, stragglers and poisoned shards — failed
// shards are retried with exponential backoff, hung attempts are
// killed by per-attempt timeouts, stragglers get speculative duplicate
// attempts, and a shard that keeps failing is quarantined after its
// attempt budget so the run still produces a report that names the
// excluded shards in its Data Quality section.
//
// Usage:
//
//	cardrive -shards 8 day1.cdr day2.cdr
//	cardrive -shards 8 -md report.md -workdir run1 day*.cdr
//	cardrive -resume -workdir run1 day*.cdr       # after a crash/^C
//	cardrive -chaos kill=0.2,hang=0.1,seed=7 day*.cdr
//
// The work directory holds the shard snapshots, merge intermediates
// and the journal; a journal from an earlier run is refused unless
// -resume re-plans only its incomplete shards.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strconv"
	"syscall"
	"time"

	"cellcars/internal/analysis"
	"cellcars/internal/drive"
	"cellcars/internal/obs"
	"cellcars/internal/radio"
	"cellcars/internal/report"
	"cellcars/internal/simtime"
	"cellcars/internal/textplot"
)

func main() {
	var (
		shards      = flag.Int("shards", 0, "car-hash shard count (0: 2x GOMAXPROCS)")
		parallel    = flag.Int("parallel", 0, "concurrent worker processes (0: GOMAXPROCS)")
		maxAttempts = flag.Int("max-attempts", 3, "per-shard attempt budget before quarantine")
		timeout     = flag.Duration("attempt-timeout", 0, "kill attempts running longer than this (0: no deadline)")
		backoff     = flag.Duration("backoff", 250*time.Millisecond, "base retry backoff (doubles per failure, +/-50% jitter)")
		maxBackoff  = flag.Duration("max-backoff", 30*time.Second, "retry backoff cap")
		speculate   = flag.Float64("speculate", 1.5, "duplicate a shard's attempt once it exceeds this multiple of the p95 completed-attempt duration (0: off)")
		specMin     = flag.Int("speculate-min", 3, "completed attempts required before speculation starts")
		fanIn       = flag.Int("fan-in", 8, "partials merged per tree-merge step (bounds merge memory)")
		workdir     = flag.String("workdir", "cardrive.work", "directory for shard snapshots, merge intermediates and the journal")
		resume      = flag.Bool("resume", false, "resume from the journal in -workdir, re-planning only incomplete shards")
		keep        = flag.Bool("keep-partials", false, "keep per-shard snapshots in -workdir after the merge")
		chaosSpec   = flag.String("chaos", "", "inject worker faults, e.g. kill=0.2,hang=0.1,flip=0.1,seed=7,poison=3 (testing)")
		workerBin   = flag.String("worker", "", "caranalyze binary to run as workers (default: next to cardrive, then $PATH)")
		md          = flag.String("md", "", "also write a Markdown report to this file")
		quiet       = flag.Bool("q", false, "suppress coordinator progress records")
		debugAddr   = flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address while running")
		statusAddr  = flag.String("status-addr", "", "serve the live /status shard state machine (plus /metrics and pprof) on this address while running")
		tracePath   = flag.String("trace", "", "write a JSONL span trace (plan, attempts, merge) to this file")

		days   = flag.Int("days", 28, "study length in days (forwarded to workers)")
		start  = flag.String("start", "2017-01-02", "study start date YYYY-MM-DD (forwarded to workers)")
		seed   = flag.Uint64("seed", 1, "seed (forwarded to workers)")
		tz     = flag.Int("tz", -5, "local-time offset from UTC in hours (forwarded to workers)")
		budget = flag.Float64("budget", 1.0, "ingest error budget %% (forwarded to workers)")
		strict = flag.Bool("strict", false, "abort workers on the first malformed record (forwarded)")
	)
	flag.Parse()

	// Everything the coordinator says goes to stderr as structured
	// JSON under one run id; stdout stays the human-readable report.
	// -q silences progress records but not errors or server banners.
	runID := obs.NewRunID()
	logger := obs.NewLogger(os.Stderr, "cardrive", runID)
	progress := logger
	if *quiet {
		progress = obs.NopLogger()
	}
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	inputs := flag.Args()
	if len(inputs) == 0 {
		fmt.Fprintln(os.Stderr, "usage: cardrive [flags] input.cdr...")
		os.Exit(2)
	}
	startDay, err := time.Parse("2006-01-02", *start)
	if err != nil {
		fatal("bad -start date", "err", err.Error())
	}
	period := simtime.NewPeriod(startDay, *days)

	worker, err := findWorker(*workerBin)
	if err != nil {
		fatal("no worker binary", "err", err.Error())
	}

	var chaos *drive.Chaos
	if *chaosSpec != "" {
		chaos, err = drive.ParseChaos(*chaosSpec)
		if err != nil {
			fatal("bad -chaos spec", "err", err.Error())
		}
	}

	var trace *obs.Trace
	if *tracePath != "" {
		tf, err := os.Create(*tracePath)
		if err != nil {
			fatal("open -trace file", "err", err.Error())
		}
		defer tf.Close()
		trace = obs.NewTrace(tf)
	}

	reg := obs.New()
	if *debugAddr != "" {
		srv, err := obs.Serve(*debugAddr, reg)
		if err != nil {
			fatal("debug server failed", "err", err.Error())
		}
		defer srv.Close()
		logger.Info("debug server listening", "addr", srv.Addr())
	}

	cfg := drive.Config{
		Inputs:            inputs,
		Shards:            *shards,
		Parallel:          *parallel,
		MaxAttempts:       *maxAttempts,
		AttemptTimeout:    *timeout,
		RetryBackoff:      *backoff,
		MaxBackoff:        *maxBackoff,
		SpeculativeFactor: *speculate,
		SpeculativeMin:    *specMin,
		MergeFanIn:        *fanIn,
		WorkDir:           *workdir,
		Resume:            *resume,
		KeepPartials:      *keep,
		Chaos:             chaos,
		Obs:               reg,
		Logger:            progress,
		Trace:             trace,
		Tag:               fmt.Sprintf("start=%s days=%d seed=%d tz=%d", *start, *days, *seed, *tz),
		Command: func(spec drive.WorkerSpec) *exec.Cmd {
			args := []string{
				"-partial", spec.Out,
				"-shard", fmt.Sprintf("%d/%d", spec.Shard, spec.Shards),
				"-force", // orphaned attempt files from a crashed run must not block retries
				"-days", strconv.Itoa(*days),
				"-start", *start,
				"-seed", strconv.FormatUint(*seed, 10),
				"-tz", strconv.Itoa(*tz),
				"-budget", strconv.FormatFloat(*budget, 'f', -1, 64),
			}
			if *strict {
				args = append(args, "-strict")
			}
			args = append(args, spec.Inputs...)
			return exec.Command(worker, args...)
		},
	}

	coord, err := drive.New(cfg)
	if err != nil {
		fatal("coordinator setup failed", "err", err.Error())
	}

	// -status-addr serves the live shard state machine alongside the
	// metrics registry: /status is the per-shard attempt timeline,
	// everything else falls through to the usual debug surface.
	if *statusAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/status", drive.StatusHandler(coord))
		mux.Handle("/", obs.Handler(reg))
		srv, err := obs.ServeHandler(*statusAddr, mux)
		if err != nil {
			fatal("status server failed", "err", err.Error())
		}
		defer srv.Close()
		logger.Info("status server listening", "addr", srv.Addr())
	}

	// ^C / SIGTERM cancels the run cleanly: inflight workers are
	// killed, the journal stays consistent, and -resume picks up the
	// incomplete shards.
	ctx, cancel := context.WithCancel(context.Background())
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
	go func() {
		<-sigc
		cancel()
	}()
	defer signal.Stop(sigc)

	res, err := coord.Run(ctx)
	if errors.Is(err, context.Canceled) {
		logger.Error("interrupted; journal saved, re-run with -resume to continue", "workdir", *workdir)
		os.Exit(1)
	}
	if err != nil {
		fatal("run failed", "err", err.Error())
	}

	fmt.Printf("cardrive: %d shards: %d done, %d quarantined | %d attempts (%d retries, %d speculative, %d spec wins) | %.1fs\n\n",
		res.Done+res.Quarantined, res.Done, res.Quarantined,
		res.Attempts, res.Retries, res.SpeculativeLaunches, res.SpeculativeWins,
		res.Elapsed.Seconds())

	rep := res.Report
	actx := analysis.Context{Period: res.Header.Period(), TZOffsetSeconds: res.Header.TZOffsetSeconds}
	printReport(rep, res)

	quality := &analysis.DataQuality{
		RecordsRead:      res.Records,
		GhostsDropped:    int64(rep.RawRecords - rep.CleanRecords),
		QuarantinedTotal: res.IngestQuarantined,
		StageErrors:      rep.StageErrors,
		ExcludedShards:   res.Excluded,
	}
	if len(rep.Presence.CarsFrac) > 0 {
		quality.Gaps = analysis.DetectCoverageGaps(rep.Presence, period, 0)
	}
	printQuality(quality)

	if *md != "" {
		desc := fmt.Sprintf("distributed run over %d input file(s), %d shards (%d quarantined), %d records",
			len(inputs), res.Done+res.Quarantined, res.Quarantined, res.Records)
		doc := report.Render(rep, actx, report.Options{
			Title:            "cellcars distributed report",
			SceneDescription: desc,
			Now:              time.Now(),
			Quality:          quality,
		})
		if err := os.WriteFile(*md, []byte(doc), 0o644); err != nil {
			fatal("write markdown report failed", "path", *md, "err", err.Error())
		}
		fmt.Printf("wrote Markdown report to %s\n", *md)
	}
	if res.Quarantined > 0 {
		// A degraded run completes, but its exit code says so.
		os.Exit(3)
	}
}

// findWorker locates the caranalyze binary: explicit flag, next to the
// cardrive executable, then $PATH.
func findWorker(explicit string) (string, error) {
	if explicit != "" {
		return explicit, nil
	}
	if self, err := os.Executable(); err == nil {
		cand := filepath.Join(filepath.Dir(self), "caranalyze")
		if fi, err := os.Stat(cand); err == nil && !fi.IsDir() {
			return cand, nil
		}
	}
	if path, err := exec.LookPath("caranalyze"); err == nil {
		return path, nil
	}
	return "", errors.New("cardrive: caranalyze binary not found (build it, or pass -worker)")
}

// printReport prints the record-level sections reproducible from
// merged partial state (same coverage as carmerge).
func printReport(r *analysis.Report, res *drive.Result) {
	fmt.Printf("== Preprocessing (§3) ==\n")
	fmt.Printf("raw records %d, after ghost removal %d (%d one-hour ghosts dropped, %d outside the study period)\n\n",
		r.RawRecords, r.CleanRecords, r.RawRecords-r.CleanRecords, r.OutOfPeriod)

	fmt.Println("== Figure 2 / Table 1: daily presence ==")
	fmt.Printf("population: %d cars, %d cells touched\n", r.Presence.TotalCars, r.Presence.TotalCells)
	fmt.Println(analysis.FormatTable1(r.WeekdayRows))

	fmt.Println("== Figure 3: total time on network (fraction of study) ==")
	fmt.Printf("means: full %.2f%%, truncated %.2f%% | p99.5: full %.1f%%, truncated %.1f%%\n\n",
		r.Connected.FullMean*100, r.Connected.TruncMean*100,
		r.Connected.FullP995*100, r.Connected.TruncP995*100)

	fmt.Println("== Figure 6: days on network ==")
	fmt.Println(textplot.Histogram("cars per day-count", r.DaysHist.Counts, 72, 8))

	if len(r.Segments) > 0 {
		fmt.Println("== Table 2: car segmentation ==")
		fmt.Println(analysis.FormatTable2(r.Segments))
	}

	fmt.Println("== Figure 9: per-cell connection durations ==")
	fmt.Printf("median %.0f s, p73 %.0f s, mean full %.0f s, mean truncated %.0f s\n\n",
		r.Durations.Median, r.Durations.P73, r.Durations.FullMean, r.Durations.TruncMean)

	fmt.Println("== §4.5: handovers per mobility session ==")
	fmt.Printf("sessions %d | handovers median %.0f, p70 %.0f, p90 %.0f | inter-BS share %.1f%%\n",
		r.Handovers.Sessions, r.Handovers.Median, r.Handovers.P70, r.Handovers.P90,
		r.Handovers.InterBSShare()*100)
	for k := 0; k < radio.NumHandoverKinds; k++ {
		kind := radio.HandoverKind(k)
		if count, ok := r.Handovers.ByKind[kind]; ok {
			fmt.Printf("  %-22s %d\n", kind, count)
		}
	}
	fmt.Println()

	fmt.Println("== Table 3: carrier use ==")
	fmt.Println(analysis.FormatTable3(r.Carriers))

	for _, se := range r.StageErrors {
		fmt.Printf("!! stage %s failed: %s\n", se.Stage, se.Err)
	}
}

// printQuality renders the Data Quality summary, excluded shards
// included — a degraded run must name the holes in its coverage.
func printQuality(q *analysis.DataQuality) {
	fmt.Println("== Data Quality ==")
	fmt.Println(q.Summary())
	for _, ex := range q.ExcludedShards {
		approx := ""
		if ex.Estimated {
			approx = "~"
		}
		fmt.Printf("  EXCLUDED shard %d after %d attempts (%s: %s): %s%d records lost\n",
			ex.Shard, ex.Attempts, ex.LastClass, ex.LastErr, approx, ex.Records)
	}
	for _, g := range q.Gaps {
		fmt.Printf("  coverage gap day %d (%s): %.1f%% of cars vs median %.1f%%\n",
			g.Day, g.Date.Format("2006-01-02"), g.CarsFrac*100, g.Baseline*100)
	}
	for _, s := range q.StageErrors {
		fmt.Printf("  skipped stage %s: %s\n", s.Stage, s.Err)
	}
	fmt.Println()
}
