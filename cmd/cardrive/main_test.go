package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"math/rand/v2"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cellcars/internal/cdr"
	"cellcars/internal/drive"
	"cellcars/internal/radio"
)

// TestMain re-execs the test binary as the real cardrive when
// CARDRIVE_MAIN=1, mirroring the caranalyze and carqueryd CLI
// harnesses.
func TestMain(m *testing.M) {
	if os.Getenv("CARDRIVE_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func cardrive(args ...string) *exec.Cmd {
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "CARDRIVE_MAIN=1")
	return cmd
}

func buildWorker(t *testing.T, dir string) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not available to build caranalyze workers")
	}
	bin := filepath.Join(dir, "caranalyze")
	cmd := exec.Command("go", "build", "-o", bin, "cellcars/cmd/caranalyze")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build caranalyze: %v\n%s", err, out)
	}
	return bin
}

func writeWorkload(t *testing.T, path string, n int) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := cdr.NewBinaryWriter(f)
	rng := rand.New(rand.NewPCG(3, 9))
	start := time.Date(2017, 1, 2, 0, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		rec := cdr.Record{
			Car: cdr.CarID(rng.Uint64N(400)),
			Cell: radio.MakeCellKey(
				radio.BSID(rng.Uint64N(40)),
				radio.SectorID(rng.Uint64N(3)),
				radio.C1+radio.CarrierID(rng.Uint64N(uint64(radio.NumCarriers)))),
			Start:    start.Add(time.Duration(rng.Uint64N(7*24*3600)) * time.Second),
			Duration: time.Duration(10+rng.Uint64N(900)) * time.Second,
		}
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// scanAddr reads stderr JSON records until one with the given msg
// appears, returns its "addr" field, and drains the rest of the pipe
// in the background. Every stderr line must parse as a JSON record —
// the structured-logging contract for the coordinator.
func scanAddr(t *testing.T, stderr io.Reader, msg string) string {
	t.Helper()
	var seen []string
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		ln := sc.Text()
		seen = append(seen, ln)
		var rec map[string]any
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("stderr line is not a JSON record: %q: %v", ln, err)
		}
		if rec["component"] != "cardrive" {
			t.Fatalf("record missing component=cardrive: %q", ln)
		}
		if rid, _ := rec["run_id"].(string); rid == "" {
			t.Fatalf("record missing run_id: %q", ln)
		}
		if rec["msg"] == msg {
			go io.Copy(io.Discard, stderr)
			addr, _ := rec["addr"].(string)
			return addr
		}
	}
	t.Fatalf("no %q record on stderr:\n%s", msg, strings.Join(seen, "\n"))
	return ""
}

// TestDebugAddrServesMetrics pins the coordinator's -debug-addr parity
// with caranalyze: while a distributed run is in flight, the announced
// address must serve Prometheus metrics, and the run must still finish
// cleanly with a report on stdout.
func TestDebugAddrServesMetrics(t *testing.T) {
	dir := t.TempDir()
	worker := buildWorker(t, dir)
	in := filepath.Join(dir, "cars.cdr")
	writeWorkload(t, in, 120_000)

	cmd := cardrive("-shards", "4", "-parallel", "2", "-worker", worker,
		"-workdir", filepath.Join(dir, "work"), "-days", "7", "-q",
		"-debug-addr", "127.0.0.1:0", in)
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// The listening record goes to stderr before shard planning starts,
	// so the run is guaranteed to still be in flight when we probe it.
	addr := scanAddr(t, stderr, "debug server listening")
	if addr == "" {
		cmd.Wait()
		t.Fatal("debug-server record has no addr field")
	}

	// The server comes up before the coordinator registers its metrics,
	// so poll until the registry is populated (still while the run is in
	// flight — the run itself takes far longer than registration).
	client := &http.Client{Timeout: 5 * time.Second}
	var body []byte
	for deadline := time.Now().Add(10 * time.Second); ; {
		resp, err := client.Get("http://" + addr + "/metrics")
		if err != nil {
			t.Fatalf("GET /metrics while run in flight: %v", err)
		}
		body, err = io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/metrics: status %d, body:\n%s", resp.StatusCode, body)
		}
		if strings.Contains(string(body), "cellcars_") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/metrics never showed cellcars_ metrics; last body:\n%s", body)
		}
		time.Sleep(10 * time.Millisecond)
	}

	if err := cmd.Wait(); err != nil {
		t.Fatalf("cardrive run failed: %v\nstdout:\n%s", err, stdout.String())
	}
	if !strings.Contains(stdout.String(), "== Preprocessing") {
		t.Fatalf("no report on stdout:\n%s", stdout.String())
	}
}

// TestStatusEndpointShowsRetriedShard drives a chaos run with a live
// -status-addr and proves the /status state machine exposes a retried
// shard's attempt timeline mid-run: an attempt with outcome "crash"
// followed by a later attempt on the same shard. The run must still
// complete with a report despite the injected kills.
func TestStatusEndpointShowsRetriedShard(t *testing.T) {
	dir := t.TempDir()
	worker := buildWorker(t, dir)
	in := filepath.Join(dir, "cars.cdr")
	writeWorkload(t, in, 120_000)

	// Chaos is deterministic per (seed, shard, attempt): with seed 5
	// every shard's first attempt draws a kill, and n=2000 keeps the
	// kill offset inside each shard's record stream so the kill always
	// fires. -max-attempts 10 keeps quarantine out of reach so the run
	// still ends cleanly.
	cmd := cardrive("-shards", "4", "-parallel", "2", "-worker", worker,
		"-workdir", filepath.Join(dir, "work"), "-days", "7", "-q",
		"-chaos", "kill=0.5,n=2000,seed=5", "-max-attempts", "10", "-backoff", "50ms",
		"-status-addr", "127.0.0.1:0", in)
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addr := scanAddr(t, stderr, "status server listening")
	if addr == "" {
		cmd.Wait()
		t.Fatal("status-server record has no addr field")
	}

	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()

	// Poll /status until a retried shard's timeline shows the crash.
	// Once a retry launches the pattern persists until process exit, so
	// polling cannot miss it unless the contract is broken.
	client := &http.Client{Timeout: 2 * time.Second}
	var found bool
	var last drive.Status
	for !found {
		select {
		case err := <-exited:
			if err != nil {
				t.Fatalf("cardrive chaos run failed: %v\nstdout:\n%s", err, stdout.String())
			}
			b, _ := json.MarshalIndent(last, "", "  ")
			t.Fatalf("run finished before /status showed a retried shard; last status:\n%s", b)
		default:
		}
		resp, err := client.Get("http://" + addr + "/status")
		if err != nil {
			time.Sleep(10 * time.Millisecond)
			continue
		}
		var st drive.Status
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decode /status: %v", err)
		}
		last = st
		for _, sh := range st.Shards {
			if len(sh.Attempts) >= 2 && sh.Attempts[0].Outcome == "crash" {
				found = true
				if sh.Attempts[0].Seconds < 0 {
					t.Fatalf("crash attempt has negative duration: %+v", sh.Attempts[0])
				}
				if sh.Attempts[0].Err == "" {
					t.Fatalf("crash attempt carries no error detail: %+v", sh.Attempts[0])
				}
			}
		}
		if st.Phase == "" || st.UpdatedAt.IsZero() {
			t.Fatalf("status missing phase/updated_at: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}

	if err := <-exited; err != nil {
		t.Fatalf("cardrive chaos run failed: %v\nstdout:\n%s", err, stdout.String())
	}
	if !strings.Contains(stdout.String(), "== Preprocessing") {
		t.Fatalf("no report on stdout:\n%s", stdout.String())
	}
}
