package main

import (
	"bufio"
	"bytes"
	"io"
	"math/rand/v2"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cellcars/internal/cdr"
	"cellcars/internal/radio"
)

// TestMain re-execs the test binary as the real cardrive when
// CARDRIVE_MAIN=1, mirroring the caranalyze and carqueryd CLI
// harnesses.
func TestMain(m *testing.M) {
	if os.Getenv("CARDRIVE_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func cardrive(args ...string) *exec.Cmd {
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "CARDRIVE_MAIN=1")
	return cmd
}

func buildWorker(t *testing.T, dir string) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not available to build caranalyze workers")
	}
	bin := filepath.Join(dir, "caranalyze")
	cmd := exec.Command("go", "build", "-o", bin, "cellcars/cmd/caranalyze")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build caranalyze: %v\n%s", err, out)
	}
	return bin
}

func writeWorkload(t *testing.T, path string, n int) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := cdr.NewBinaryWriter(f)
	rng := rand.New(rand.NewPCG(3, 9))
	start := time.Date(2017, 1, 2, 0, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		rec := cdr.Record{
			Car: cdr.CarID(rng.Uint64N(400)),
			Cell: radio.MakeCellKey(
				radio.BSID(rng.Uint64N(40)),
				radio.SectorID(rng.Uint64N(3)),
				radio.C1+radio.CarrierID(rng.Uint64N(uint64(radio.NumCarriers)))),
			Start:    start.Add(time.Duration(rng.Uint64N(7*24*3600)) * time.Second),
			Duration: time.Duration(10+rng.Uint64N(900)) * time.Second,
		}
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDebugAddrServesMetrics pins the coordinator's -debug-addr parity
// with caranalyze: while a distributed run is in flight, the announced
// address must serve Prometheus metrics, and the run must still finish
// cleanly with a report on stdout.
func TestDebugAddrServesMetrics(t *testing.T) {
	dir := t.TempDir()
	worker := buildWorker(t, dir)
	in := filepath.Join(dir, "cars.cdr")
	writeWorkload(t, in, 120_000)

	cmd := cardrive("-shards", "4", "-parallel", "2", "-worker", worker,
		"-workdir", filepath.Join(dir, "work"), "-days", "7", "-q",
		"-debug-addr", "127.0.0.1:0", in)
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// The banner goes to stderr before shard planning starts, so the
	// run is guaranteed to still be in flight when we probe it.
	const banner = "debug server on http://"
	var addr string
	var seen []string
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		ln := sc.Text()
		seen = append(seen, ln)
		if i := strings.Index(ln, banner); i >= 0 {
			addr = ln[i+len(banner):]
			break
		}
	}
	if addr == "" {
		cmd.Wait()
		t.Fatalf("no debug-server banner on stderr:\n%s", strings.Join(seen, "\n"))
	}
	go io.Copy(io.Discard, stderr)

	resp, err := (&http.Client{Timeout: 5 * time.Second}).Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics while run in flight: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "cellcars_") {
		t.Fatalf("/metrics: status %d, body:\n%s", resp.StatusCode, body)
	}

	if err := cmd.Wait(); err != nil {
		t.Fatalf("cardrive run failed: %v\nstdout:\n%s", err, stdout.String())
	}
	if !strings.Contains(stdout.String(), "== Preprocessing") {
		t.Fatalf("no report on stdout:\n%s", stdout.String())
	}
}
