// Command caranalyze runs the full measurement pipeline and prints
// every table and figure of the paper.
//
// Two modes:
//
//	caranalyze -cars 2000 -days 28          # self-contained: generate + analyze
//	caranalyze -in cars.cdr -days 28        # analyze an existing CDR file
//
// In file mode the per-cell PRB load source is unavailable, so the
// busy-cell analyses (Table 2, Figures 7/10/11, and Figure 1) are
// skipped; everything else runs from the records alone.
//
// Distributed and restartable runs:
//
//	cardrive -shards 8 day1.cdr day2.cdr         # coordinator: shard, retry, merge
//	caranalyze -partial s3.snap -shard 3/8 day1.cdr day2.cdr  # one worker by hand
//	carmerge shard*.snap                         # reduce: merge + finalize
//	caranalyze -in big.csv -stream -checkpoint run.snap -resume
//
// -partial accumulates a car-hash shard without finalizing and writes
// a snapshot mergeable by carmerge; it scans every listed input and
// keeps the records whose car falls in -shard s/S (all of them by
// default). cardrive drives fleets of such workers with retries,
// speculation and quarantine. -checkpoint makes a streaming run
// durable: state is saved every -checkpoint-every records and on
// SIGTERM/SIGINT, and -resume picks up from the saved watermark.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"cellcars/internal/analysis"
	"cellcars/internal/cdr"
	"cellcars/internal/drive"
	"cellcars/internal/load"
	"cellcars/internal/obs"
	"cellcars/internal/query"
	"cellcars/internal/radio"
	"cellcars/internal/report"
	"cellcars/internal/simtime"
	"cellcars/internal/synth"
	"cellcars/internal/textplot"
)

func main() {
	var (
		in      = flag.String("in", "", "CDR file to analyze (empty: generate a scene)")
		cars    = flag.Int("cars", 2000, "fleet size (generate mode)")
		days    = flag.Int("days", 28, "study length in days")
		seed    = flag.Uint64("seed", 1, "seed")
		world   = flag.Float64("world", 60, "world side length in km (generate mode)")
		start   = flag.String("start", "2017-01-02", "study start date (YYYY-MM-DD)")
		tz      = flag.Int("tz", -5, "local-time offset from UTC in hours")
		md      = flag.String("md", "", "also write a Markdown report to this file")
		asJSON  = flag.Bool("json", false, "with -in: print the full report as JSON (the exact bytes carqueryd's /report/full serves) instead of tables")
		stream  = flag.Bool("stream", false, "with -in: single-pass bounded-memory analysis")
		workers = flag.Int("workers", 1, "parallel analysis workers (records sharded by car)")

		strict     = flag.Bool("strict", false, "with -in: abort on the first malformed record")
		quarantine = flag.String("quarantine", "", "with -in: write quarantined records to this file (TSV)")
		budget     = flag.Float64("budget", 1.0, "with -in: error budget, max % of malformed records before aborting (0 aborts on the first, negative disables)")
		failStage  = flag.String("failstage", "", "chaos hook: artificially fail the named analysis stage")

		partial    = flag.String("partial", "", "accumulate the input into this partial snapshot (no report; merge with carmerge)")
		shardSpec  = flag.String("shard", "", "with -partial: \"s/S\" keeps only car-hash shard s of S (default: everything)")
		force      = flag.Bool("force", false, "overwrite an existing -partial snapshot file")
		checkpoint = flag.String("checkpoint", "", "with -stream: write periodic state checkpoints to this file (and on SIGTERM/SIGINT)")
		ckptEvery  = flag.Int64("checkpoint-every", 100_000, "with -checkpoint: records between periodic checkpoints (0: signal-only)")
		resume     = flag.Bool("resume", false, "with -checkpoint: restore state from the checkpoint file if it exists and skip past its watermark")

		debugAddr = flag.String("debug-addr", "", "serve /metrics (Prometheus text), /debug/vars (expvar) and /debug/pprof on this address while running")
		progress  = flag.Bool("progress", false, "print throughput/ETA progress lines to stderr while analyzing")
		progEvery = flag.Duration("progress-every", 5*time.Second, "with -progress: interval between progress lines")
		traceOut  = flag.String("trace", "", "write a JSONL span trace of the run to this file")
	)
	flag.Parse()
	// Input files may also be given positionally. -partial mode
	// accepts many (a worker scans all of them, keeping its car-hash
	// shard); every other mode takes exactly one.
	inputs := flag.Args()
	if *in != "" {
		inputs = append([]string{*in}, inputs...)
	}
	if *partial == "" {
		if len(inputs) > 1 {
			fatal("multiple input files need -partial mode")
		}
		if len(inputs) == 1 {
			*in = inputs[0]
		}
	}

	startDay, err := time.Parse("2006-01-02", *start)
	if err != nil {
		fatal("bad -start date: %v", err)
	}
	period := simtime.NewPeriod(startDay, *days)

	// Resilient ingest: quarantine malformed records instead of dying
	// on them, within an error budget. Records dated far outside the
	// study window are treated as corrupt too (a week of slack keeps
	// boundary spillover out of quarantine).
	ingest := cdr.ResilientConfig{
		// A zero budget means zero tolerance, not "use the default":
		// the first malformed record aborts, same as -strict.
		Strict:     *strict || *budget == 0,
		MaxBadFrac: *budget / 100,
		MinStart:   period.Start().AddDate(0, 0, -7),
		MaxStart:   period.End().AddDate(0, 0, 7),
	}
	if *quarantine != "" {
		qf, err := os.Create(*quarantine)
		if err != nil {
			fatal("open quarantine file: %v", err)
		}
		qw := cdr.NewQuarantineWriter(qf)
		ingest.Sink = qw
		// Flush the quarantine file even on fatal exits: the audit
		// trail matters most when the run aborts.
		atExit = func() error {
			if err := qw.Close(); err != nil {
				return err
			}
			return qf.Close()
		}
	}
	// A lost audit trail is a failed run: propagate a close failure to
	// the exit code instead of pretending the file is whole. runAtExit
	// clears the hook first, so this fatal cannot re-enter the cleanup.
	defer func() {
		if err := runAtExit(); err != nil {
			fatal("close quarantine file: %v", err)
		}
	}()

	// The observability layer is always on for the CLI: a registry
	// costs nothing to keep and lets -debug-addr expose a live run.
	reg := obs.New()
	ingest.Obs = reg
	if *debugAddr != "" {
		srv, err := obs.Serve(*debugAddr, reg)
		if err != nil {
			fatal("debug server: %v", err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "caranalyze: debug server on http://%s (/metrics, /debug/vars, /debug/pprof)\n", srv.Addr())
	}
	var trace *obs.Trace
	if *traceOut != "" {
		tf, err := os.Create(*traceOut)
		if err != nil {
			fatal("open trace file: %v", err)
		}
		trace = obs.NewTrace(tf)
		defer func() {
			if err := trace.Err(); err != nil {
				fatal("write trace: %v", err)
			}
			if err := tf.Close(); err != nil {
				fatal("close trace file: %v", err)
			}
		}()
	}
	if *progress {
		prog := obs.NewProgress(os.Stderr, "records", *progEvery, totalRecordsHint(inputs), progressCurrent(reg))
		prog.Start()
		defer prog.Stop()
	}

	var records []cdr.Record
	var istats cdr.IngestStats
	ctx := analysis.Context{Period: period, TZOffsetSeconds: *tz * 3600}
	opts := analysis.RunOptions{Seed: *seed, FailStage: *failStage, Workers: *workers, Obs: reg}
	// Scale the rare thresholds with the study length (10 and 30 of 90).
	rare := []int{max(1, *days/9), max(2, *days/3)}
	var model *load.Model

	if *partial != "" {
		if len(inputs) == 0 {
			fatal("-partial needs input files (-in or positional arguments)")
		}
		if !*force {
			if _, err := os.Stat(*partial); err == nil {
				fatal("%s exists; use -force to overwrite", *partial)
			}
		}
		shard, shards, err := parseShard(*shardSpec)
		if err != nil {
			fatal("%v", err)
		}
		chaos, attempt, err := drive.ChaosFromEnv()
		if err != nil {
			fatal("%v", err)
		}
		sopts := analysis.RunOptions{Seed: *seed, RareDays: rare, Obs: reg}
		st, err := drive.RunWorker(drive.WorkerConfig{
			Inputs:  inputs,
			Shard:   shard,
			Shards:  shards,
			Attempt: attempt,
			Out:     *partial,
			Ctx:     ctx,
			Opts:    sopts,
			Ingest:  ingest,
			Chaos:   chaos,
		})
		if err != nil {
			fatal("partial: %v", err)
		}
		// The machine-readable line a cardrive coordinator parses.
		drive.PrintStats(os.Stdout, st)
		fmt.Printf("wrote partial state of %d records (%d quarantined) to %s; merge with carmerge or run under cardrive\n",
			st.Records, st.Quarantined, *partial)
		return
	}

	if *asJSON {
		// The byte-comparable batch twin of carqueryd: one untracked
		// streaming pass with the daemon's options — no Obs, so the
		// report carries no Profile timings — rendered through the
		// same query.MarshalReport the daemon's /report/full uses.
		if *in == "" {
			fatal("-json needs -in (file mode)")
		}
		f, err := os.Open(*in)
		if err != nil {
			fatal("open %s: %v", *in, err)
		}
		defer f.Close()
		s := analysis.NewStreamingWithOptions(ctx, analysis.RunOptions{Seed: *seed, RareDays: rare})
		rr := cdr.NewResilientReader(openReader(*in, f), ingest)
		if err := s.AddAll(rr); err != nil {
			fatal("stream %s: %v", *in, err)
		}
		srep := s.Finalize()
		body, err := query.MarshalReport(&srep)
		if err != nil {
			fatal("marshal report: %v", err)
		}
		os.Stdout.Write(body)
		return
	}

	var rep *analysis.Report
	runStart := time.Now()
	if *in != "" && *stream {
		cfg := analysis.CheckpointConfig{Path: *checkpoint, Every: *ckptEvery, Resume: *resume}
		sopts := analysis.RunOptions{Seed: *seed, RareDays: rare, Workers: *workers,
			FailStage: *failStage, Obs: reg}
		rep, istats, err = runStreaming(*in, ctx, sopts, ingest, cfg)
		switch {
		case errors.Is(err, analysis.ErrCheckpointStop):
			fmt.Fprintf(os.Stderr, "caranalyze: interrupted; state saved to %s (re-run with -resume to continue)\n", *checkpoint)
			return
		case err != nil:
			fatal("stream %s: %v", *in, err)
		}
		fmt.Printf("streamed %d records from %s (%d quarantined, %d workers)\n\n",
			rep.RawRecords, *in, istats.QuarantinedTotal(), max(1, *workers))
	} else {
		if *checkpoint != "" || *resume {
			fatal("-checkpoint and -resume need -stream mode")
		}
		if *in != "" {
			records, istats, err = readFile(*in, ingest)
			if err != nil {
				fatal("read %s: %v", *in, err)
			}
			fmt.Printf("loaded %d records from %s (%d quarantined)\n\n",
				len(records), *in, istats.QuarantinedTotal())
		} else {
			cfg := synth.DefaultConfig(*cars)
			cfg.Seed = *seed
			cfg.WorldSizeKm = *world
			cfg.Period = period
			w := synth.NewWorld(cfg)
			var stats synth.Stats
			records, stats, err = w.GenerateAll()
			if err != nil {
				fatal("generate: %v", err)
			}
			model = w.Load
			ctx.Load = model
			opts.BusyCells = model.VeryBusyCells()
			istats.Read = int64(stats.Records)
			fmt.Printf("generated %d records (%d cars, %d stations, %d cells)\n\n",
				stats.Records, *cars, w.Net.NumStations(), w.Net.NumCells())
		}

		opts.RareDays = rare

		rep, err = analysis.Run(records, ctx, opts)
		if err != nil {
			fatal("analyze: %v", err)
		}
	}
	emitRunTrace(trace, rep, time.Since(runStart))

	sectionFailures := printReport(rep, ctx, records, model)

	quality := analysis.NewDataQuality(istats, int64(rep.RawRecords-rep.CleanRecords), rep.Presence, period)
	quality.StageErrors = rep.StageErrors
	for _, f := range sectionFailures {
		quality.StageErrors = append(quality.StageErrors, analysis.StageError{Stage: "print", Err: f})
	}
	printQuality(quality)

	if *md != "" {
		t0 := time.Now()
		desc := fmt.Sprintf("%d records over %d days (seed %d)", rep.RawRecords, *days, *seed)
		doc := report.Render(rep, ctx, report.Options{
			Title:            "cellcars reproduction report",
			SceneDescription: desc,
			Now:              time.Now(),
			Quality:          quality,
		})
		if err := os.WriteFile(*md, []byte(doc), 0o644); err != nil {
			fatal("write %s: %v", *md, err)
		}
		trace.Emit("report", time.Since(t0), 0)
		fmt.Printf("wrote Markdown report to %s\n", *md)
	}
}

// atExit is the registered cleanup hook (quarantine flush); nil when
// nothing is registered. Both the normal exit path and fatal run it —
// exactly once — via runAtExit.
var atExit func() error

// runAtExit runs and clears the cleanup hook, so a fatal raised from
// the hook's own error path cannot re-enter it.
func runAtExit() error {
	fn := atExit
	atExit = nil
	if fn == nil {
		return nil
	}
	return fn()
}

// emitRunTrace writes the analyze span plus one span per profiled
// stage, converting the report's cost table into the JSONL trace.
func emitRunTrace(t *obs.Trace, rep *analysis.Report, elapsed time.Duration) {
	t.Emit("analyze", elapsed, int64(rep.RawRecords))
	for _, p := range rep.Profile {
		t.Emit("stage:"+p.Stage, time.Duration(p.TotalSeconds()*float64(time.Second)), p.Records)
	}
}

// printReport prints every table and figure, each section isolated:
// a section whose analysis stage failed — or whose own rendering
// panics — prints a diagnostic and is skipped, and every other
// section still appears. It returns the list of section failures.
func printReport(r *analysis.Report, ctx analysis.Context, records []cdr.Record, model *load.Model) []string {
	var failed []string
	// sec runs one print section; stage names the analysis.Run stage
	// it depends on ("" for sections computed here from raw records).
	sec := func(name, stage string, fn func()) {
		if stage != "" {
			if f := r.Failed(stage); f != nil {
				fmt.Printf("!! %s skipped: analysis stage %q failed: %s\n\n", name, f.Stage, f.Err)
				failed = append(failed, fmt.Sprintf("%s: stage %s: %s", name, f.Stage, f.Err))
				return
			}
		}
		defer func() {
			if p := recover(); p != nil {
				fmt.Printf("\n!! %s skipped: %v\n\n", name, p)
				failed = append(failed, fmt.Sprintf("%s: panic: %v", name, p))
			}
		}()
		fn()
	}

	fmt.Printf("== Preprocessing (§3) ==\n")
	fmt.Printf("raw records %d, after ghost removal %d (%d one-hour ghosts dropped, %d outside the study period)\n\n",
		r.RawRecords, r.CleanRecords, r.RawRecords-r.CleanRecords, r.OutOfPeriod)

	sec("Figure 1", "", func() { printFigure1(ctx, records, model) })

	sec("Figure 2 / Table 1", "presence", func() {
		fmt.Println("== Figure 2 / Table 1: daily presence ==")
		fmt.Printf("population: %d cars, %d cells touched\n", r.Presence.TotalCars, r.Presence.TotalCells)
		fmt.Printf("cars trend:  %.5f + %.6f/day (R² = %.3f)\n",
			r.Presence.CarsTrend.Intercept, r.Presence.CarsTrend.Slope, r.Presence.CarsTrend.R2)
		fmt.Printf("cells trend: %.5f + %.6f/day (R² = %.3f)\n",
			r.Presence.CellsTrend.Intercept, r.Presence.CellsTrend.Slope, r.Presence.CellsTrend.R2)
		fmt.Println(textplot.Chart("% cars on network per day", dayAxis(len(r.Presence.CarsFrac)), r.Presence.CarsFrac, 72, 8))
		fmt.Println(analysis.FormatTable1(r.WeekdayRows))
	})

	sec("Figure 3", "connected", func() {
		fmt.Println("== Figure 3: total time on network (fraction of study) ==")
		fmt.Printf("means: full %.2f%%, truncated %.2f%% | p99.5: full %.1f%%, truncated %.1f%%\n",
			r.Connected.FullMean*100, r.Connected.TruncMean*100,
			r.Connected.FullP995*100, r.Connected.TruncP995*100)
		xs, ps := r.Connected.Truncated.Points(72)
		fmt.Println(textplot.Chart("CDF, truncated at 600 s/conn", xs, ps, 72, 8))
	})

	sec("Figure 4", "", func() {
		fmt.Println("== Figure 4: reference 24×7 matrices ==")
		commute, peak, weekend := analysis.ReferenceMatrices()
		fmt.Println(textplot.Matrix("commute peaks", &commute))
		fmt.Println(textplot.Matrix("network peaks", &peak))
		fmt.Println(textplot.Matrix("weekend", &weekend))
	})

	sec("Figure 5", "", func() {
		fmt.Println("== Figure 5: usage matrices of 3 sample cars ==")
		for i, car := range sampleCars(records, 3) {
			m := analysis.UsageMatrix(analysis.RecordsOfCar(records, car), ctx)
			fmt.Println(textplot.Matrix(fmt.Sprintf("car %d (%d)", i+1, car), &m))
		}
	})

	sec("Figure 6", "days", func() {
		fmt.Println("== Figure 6: days on network ==")
		fmt.Println(textplot.Histogram("cars per day-count", r.DaysHist.Counts, 72, 8))
	})

	if len(r.Segments) > 0 || r.Failed("segments") != nil {
		sec("Table 2", "segments", func() {
			fmt.Println("== Table 2: car segmentation ==")
			fmt.Println(analysis.FormatTable2(r.Segments))
		})
	}
	if len(r.Segments) > 0 || r.Failed("busy") != nil {
		sec("Figure 7", "busy", func() {
			fmt.Println("== Figure 7: time in busy cells ==")
			fmt.Printf("cars > 50%% busy time: %.2f%%; cars ~100%%: %.2f%%\n",
				r.Busy.OverHalf*100, r.Busy.AllBusy*100)
			h := r.Busy.Histogram7a()
			labels := make([]string, len(h))
			for i := range h {
				labels[i] = fmt.Sprintf("%d-%d%%", i*10, (i+1)*10)
			}
			fmt.Println(textplot.Bars("proportion of cars by busy-time decile", labels, h[:], 40))
		})
	}

	sec("Figure 8", "", func() {
		fmt.Println("== Figure 8: one cell, 24 hours ==")
		cell8, day8 := analysis.BusiestCellDay(records, ctx)
		if cell8.IsZero() {
			return
		}
		cd := analysis.CellDay(records, ctx, cell8, day8)
		fmt.Printf("cell %v day %d: %d cars, peak 15-min concurrency %d\n",
			cell8, day8, cd.UniqueCars, cd.PeakCars)
		spans := make([][][2]float64, 0, cd.UniqueCars)
		byCar := map[uint64][][2]float64{}
		dayStart := ctx.Period.DayStart(day8)
		var order []uint64
		for _, sp := range cd.Spans {
			id := uint64(sp.Car)
			if _, ok := byCar[id]; !ok {
				order = append(order, id)
			}
			byCar[id] = append(byCar[id], [2]float64{
				sp.Start.Sub(dayStart).Hours() / 24,
				sp.End.Sub(dayStart).Hours() / 24,
			})
		}
		for _, id := range order {
			spans = append(spans, byCar[id])
		}
		fmt.Println(textplot.Timeline("connections", spans, 72, 40))
	})

	sec("Figure 9", "durations", func() {
		fmt.Println("== Figure 9: per-cell connection durations ==")
		fmt.Printf("median %.0f s, p73 %.0f s, mean full %.0f s, mean truncated %.0f s\n",
			r.Durations.Median, r.Durations.P73, r.Durations.FullMean, r.Durations.TruncMean)
		xs, ps := r.Durations.Truncated.Points(72)
		fmt.Println(textplot.Chart("CDF of durations (truncated)", xs, ps, 72, 8))
	})

	if ctx.Load != nil && (len(r.Clusters.Cells) > 0 || r.Failed("clusters") != nil) {
		sec("Figures 10/11", "clusters", func() {
			fmt.Println("== Figure 10: two sample busy radios over a week ==")
			for i := 0; i < 2 && i < len(r.Clusters.Cells); i++ {
				cw := analysis.CellWeek(records, ctx, r.Clusters.Cells[i], 0)
				fmt.Println(textplot.WeekSeries(fmt.Sprintf("cell %v", cw.Cell),
					cw.Concurrency[:], cw.Utilization[:], 96, 6))
			}

			fmt.Println("== Figure 11: k-means clusters over busy radios ==")
			fmt.Printf("clusters: sizes %v, centroid peak ratio %.1fx\n",
				r.Clusters.Sizes, r.Clusters.PeakRatio())
			for c := 0; c < 2; c++ {
				fmt.Println(textplot.Chart(fmt.Sprintf("cluster %d centroid (cars by time of day)", c+1),
					binAxis(96), r.Clusters.Centroids[c], 72, 6))
			}
		})
	}

	sec("§4.5", "handovers", func() {
		fmt.Println("== §4.5: handovers per mobility session ==")
		fmt.Printf("sessions %d | handovers median %.0f, p70 %.0f, p90 %.0f | inter-BS share %.1f%%\n",
			r.Handovers.Sessions, r.Handovers.Median, r.Handovers.P70, r.Handovers.P90,
			r.Handovers.InterBSShare()*100)
		for k := 0; k < radio.NumHandoverKinds; k++ {
			kind := radio.HandoverKind(k)
			if count, ok := r.Handovers.ByKind[kind]; ok {
				fmt.Printf("  %-22s %d\n", kind, count)
			}
		}
		fmt.Println()
	})

	sec("Table 3", "carriers", func() {
		fmt.Println("== Table 3: carrier use ==")
		fmt.Println(analysis.FormatTable3(r.Carriers))
	})

	if len(r.Profile) > 0 {
		sec("Pipeline profile", "", func() { printProfile(r) })
	}

	return failed
}

// printProfile renders the per-stage cost table of an observed run:
// where the wall time went, stage by stage, summed across workers.
func printProfile(r *analysis.Report) {
	fmt.Println("== Pipeline profile ==")
	fmt.Printf("%-10s %12s %8s %10s %10s %10s %12s\n",
		"stage", "records", "batches", "add s", "merge s", "final s", "rec/s")
	var add, merge, fin float64
	for _, p := range r.Profile {
		rate := "-"
		if total := p.TotalSeconds(); total > 0 && p.Records > 0 {
			rate = fmt.Sprintf("%.0f", float64(p.Records)/total)
		}
		fmt.Printf("%-10s %12d %8d %10.4f %10.4f %10.4f %12s\n",
			p.Stage, p.Records, p.Batches, p.AddSeconds, p.MergeSeconds, p.FinalizeSeconds, rate)
		add += p.AddSeconds
		merge += p.MergeSeconds
		fin += p.FinalizeSeconds
	}
	fmt.Printf("%-10s %12s %8s %10.4f %10.4f %10.4f\n\n", "total", "", "", add, merge, fin)
}

// printFigure1 renders the load-model saturation demonstration; it
// needs the synthetic load model and is skipped in file mode.
func printFigure1(ctx analysis.Context, records []cdr.Record, model *load.Model) {
	if model == nil {
		return
	}
	fmt.Println("== Figure 1: single greedy download saturates a cell ==")
	cells := model.VeryBusyCells()
	if len(cells) < 2 {
		// Any two cells will do for the demonstration.
		all := allCells(records)
		if len(all) >= 2 {
			cells = all[:2]
		}
	}
	if len(cells) >= 2 {
		sat := load.Saturate(model, cells[:2], ctx.Period.Days()/2,
			20*time.Hour+45*time.Minute, 4*time.Hour, 0.97)
		for i := range sat.Cells {
			fmt.Println(textplot.Chart(
				fmt.Sprintf("cell %v: test day (download from 20:45)", sat.Cells[i]),
				binAxis(96), sat.Test[i][:], 72, 8))
		}
	}
	fmt.Println()
}

// printQuality renders the Data Quality summary to the terminal.
func printQuality(q *analysis.DataQuality) {
	fmt.Println("== Data Quality ==")
	fmt.Println(q.Summary())
	classes := make([]string, 0, len(q.Quarantined))
	for class := range q.Quarantined {
		classes = append(classes, class)
	}
	sort.Strings(classes)
	for _, class := range classes {
		fmt.Printf("  quarantined %-12s %d\n", class, q.Quarantined[class])
	}
	for _, g := range q.Gaps {
		fmt.Printf("  coverage gap day %d (%s): %.1f%% of cars vs median %.1f%%\n",
			g.Day, g.Date.Format("2006-01-02"), g.CarsFrac*100, g.Baseline*100)
	}
	for _, s := range q.StageErrors {
		fmt.Printf("  skipped stage %s: %s\n", s.Stage, s.Err)
	}
	fmt.Println()
}

// parseShard parses the -shard "s/S" spec; empty means shard 0 of 1
// (keep everything).
func parseShard(spec string) (shard, shards int, err error) {
	if spec == "" {
		return 0, 1, nil
	}
	if _, err := fmt.Sscanf(spec, "%d/%d", &shard, &shards); err != nil {
		return 0, 0, fmt.Errorf("bad -shard %q (want s/S, e.g. 3/8)", spec)
	}
	if shards < 1 || shard < 0 || shard >= shards {
		return 0, 0, fmt.Errorf("bad -shard %q: shard index outside [0, %d)", spec, shards)
	}
	return shard, shards, nil
}

// runStreaming analyzes a CDR file in one bounded-memory pass through
// the parallel engine — records are sharded by car across opts.Workers
// goroutines, so streaming and batch mode print the same report (the
// busy-cell sections additionally need a load source, which a bare CDR
// file cannot provide).
//
// With cfg.Path set the pass is durable: state is checkpointed every
// cfg.Every records and on SIGTERM/SIGINT, and cfg.Resume restores a
// previous checkpoint and skips past its watermark.
func runStreaming(path string, ctx analysis.Context, opts analysis.RunOptions, ingest cdr.ResilientConfig, cfg analysis.CheckpointConfig) (*analysis.Report, cdr.IngestStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, cdr.IngestStats{}, err
	}
	defer f.Close()
	rr := cdr.NewResilientReader(openReader(path, f), ingest)
	if cfg.Path != "" {
		trig := make(chan struct{})
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
		defer signal.Stop(sigc)
		go func() {
			<-sigc
			close(trig)
		}()
		cfg.Trigger = trig
	}
	eng := analysis.NewEngine(ctx, analysis.EngineOptions{RunOptions: opts, Workers: opts.Workers})
	rep, err := eng.RunReaderCheckpointed(rr, cfg)
	return rep, rr.Stats(), err
}

// progressCurrent returns the progress position source: the further
// along of the resilient-ingest attempt counter (delivered plus
// quarantined — leads in file modes) and the engine's raw-record
// counter (the only one advancing in generate mode, where no resilient
// reader runs). Quarantined records must count as progress: the ETA
// total is estimated from the input size, which includes the records
// ingest will reject, so a degraded run that excluded bad records
// would otherwise stall short of 100% forever.
func progressCurrent(reg *obs.Registry) func() int64 {
	ingested := reg.Counter("cellcars_ingest_records_total")
	quarantined := make([]*obs.Counter, cdr.NumFailureClasses)
	for c := range quarantined {
		quarantined[c] = reg.Counter("cellcars_ingest_quarantined_total",
			obs.Label{Key: "class", Value: cdr.FailureClass(c).String()})
	}
	accepted := reg.Counter("cellcars_engine_records_total", obs.Label{Key: "outcome", Value: "accepted"})
	ghosts := reg.Counter("cellcars_engine_records_total", obs.Label{Key: "outcome", Value: "ghost"})
	oop := reg.Counter("cellcars_engine_records_total", obs.Label{Key: "outcome", Value: "out_of_period"})
	return func() int64 {
		attempted := ingested.Value()
		for _, q := range quarantined {
			attempted += q.Value()
		}
		if raw := accepted.Value() + ghosts.Value() + oop.Value(); raw > attempted {
			return raw
		}
		return attempted
	}
}

// totalRecordsHint estimates the inputs' record count for progress
// ETA: exact for binary CDR files (fixed-size records), 0 — no ETA —
// when any input is CSV, a generated scene, or unreadable.
func totalRecordsHint(paths []string) int64 {
	if len(paths) == 0 {
		return 0
	}
	var total int64
	for _, path := range paths {
		if strings.HasSuffix(path, ".csv") {
			return 0
		}
		fi, err := os.Stat(path)
		if err != nil {
			return 0
		}
		total += cdr.BinaryRecordCount(fi.Size())
	}
	return total
}

// openReader picks the codec by file extension.
func openReader(path string, f *os.File) cdr.Reader {
	if strings.HasSuffix(path, ".csv") {
		return cdr.NewCSVReader(f)
	}
	return cdr.NewBinaryReader(f)
}

// readFile loads a CDR file through the resilient ingest layer,
// returning the accepted records and the ingest statistics.
func readFile(path string, ingest cdr.ResilientConfig) ([]cdr.Record, cdr.IngestStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, cdr.IngestStats{}, err
	}
	defer f.Close()
	rr := cdr.NewResilientReader(openReader(path, f), ingest)
	records, err := cdr.ReadAll(rr)
	return records, rr.Stats(), err
}

// sampleCars picks n distinct car ids, deterministically (lowest ids
// first so repeated runs print the same panels).
func sampleCars(records []cdr.Record, n int) []cdr.CarID {
	seen := map[cdr.CarID]int{}
	for _, r := range records {
		seen[r.Car]++
	}
	ids := make([]cdr.CarID, 0, len(seen))
	for car := range seen {
		ids = append(ids, car)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	// Prefer cars with substantial history so the matrices show texture.
	var out []cdr.CarID
	for _, car := range ids {
		if seen[car] > 50 && len(out) < n {
			out = append(out, car)
		}
	}
	for _, car := range ids {
		if len(out) >= n {
			break
		}
		if seen[car] <= 50 {
			out = append(out, car)
		}
	}
	return out
}

// allCells returns the distinct cells in the stream, in first-seen
// order.
func allCells(records []cdr.Record) []radio.CellKey {
	seen := map[radio.CellKey]struct{}{}
	var out []radio.CellKey
	for _, r := range records {
		if _, ok := seen[r.Cell]; !ok {
			seen[r.Cell] = struct{}{}
			out = append(out, r.Cell)
		}
	}
	return out
}

func binAxis(n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i) / 4 // hours
	}
	return xs
}

func dayAxis(n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i)
	}
	return xs
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "caranalyze: "+format+"\n", args...)
	if err := runAtExit(); err != nil {
		// The hook is already cleared, so reporting its failure here
		// cannot recurse; the exit code is 1 either way.
		fmt.Fprintf(os.Stderr, "caranalyze: cleanup: %v\n", err)
	}
	os.Exit(1)
}
