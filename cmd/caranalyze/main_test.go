package main

import (
	"bytes"
	"encoding/json"
	"math/rand/v2"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"cellcars/internal/analysis"
	"cellcars/internal/cdr"
	"cellcars/internal/obs"
	"cellcars/internal/query"
	"cellcars/internal/radio"
	"cellcars/internal/simtime"
)

// TestMain re-execs the test binary as the real caranalyze when
// CARANALYZE_MAIN=1, so the CLI tests drive main() end to end — flag
// parsing, signal handling, exit codes — without building a separate
// binary.
func TestMain(m *testing.M) {
	if os.Getenv("CARANALYZE_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func caranalyze(args ...string) *exec.Cmd {
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "CARANALYZE_MAIN=1")
	return cmd
}

// cdrBytes builds a deterministic binary CDR stream: 300 cars over 13
// days on a small radio grid, enough structure that every report
// section has content.
func cdrBytes(t *testing.T, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := cdr.NewBinaryWriter(&buf)
	rng := rand.New(rand.NewPCG(42, 7))
	start := time.Date(2017, 1, 2, 0, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		rec := cdr.Record{
			Car: cdr.CarID(rng.Uint64N(300)),
			Cell: radio.MakeCellKey(
				radio.BSID(rng.Uint64N(40)),
				radio.SectorID(rng.Uint64N(3)),
				radio.C1+radio.CarrierID(rng.Uint64N(uint64(radio.NumCarriers)))),
			Start:    start.Add(time.Duration(rng.Uint64N(13*24*3600)) * time.Second),
			Duration: time.Duration(10+rng.Uint64N(1200)) * time.Second,
		}
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// reportSection cuts stdout down to the deterministic report body —
// everything from the first section header on, dropping the preamble
// lines that mention input paths and the pipeline-profile table, whose
// wall times and batch counts legitimately differ between a fresh run
// and one that restored half its records from a checkpoint.
func reportSection(t *testing.T, out []byte) string {
	t.Helper()
	i := bytes.Index(out, []byte("== Preprocessing"))
	if i < 0 {
		t.Fatalf("no report section in output:\n%s", out)
	}
	s := string(out[i:])
	if p := strings.Index(s, "== Pipeline profile =="); p >= 0 {
		rest := s[p:]
		if end := strings.Index(rest, "\n\n"); end >= 0 {
			s = s[:p] + rest[end+2:]
		}
	}
	return s
}

// TestSIGTERMCheckpointResume exercises the durable-streaming contract
// at the CLI level: a run fed through a FIFO is SIGTERMed mid-stream,
// saves a checkpoint and exits 0; a -resume run over the full file
// then produces a report bit-identical to an uninterrupted run.
func TestSIGTERMCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	data := cdrBytes(t, 30_000)
	full := filepath.Join(dir, "full.cdr")
	if err := os.WriteFile(full, data, 0o644); err != nil {
		t.Fatal(err)
	}
	common := []string{"-stream", "-days", "14", "-start", "2017-01-02", "-seed", "1", "-tz", "-5"}

	ref, err := caranalyze(append([]string{"-in", full}, common...)...).Output()
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	// The FIFO (named with a .cdr extension so the binary codec is
	// selected) lets the test control how much input the child has
	// seen when the signal lands.
	fifo := filepath.Join(dir, "pipe.cdr")
	if err := syscall.Mkfifo(fifo, 0o600); err != nil {
		t.Skipf("mkfifo: %v", err)
	}
	ckpt := filepath.Join(dir, "ckpt.snap")
	cmd := caranalyze(append([]string{"-in", fifo, "-checkpoint", ckpt}, common...)...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	w, err := os.OpenFile(fifo, os.O_WRONLY, 0) // blocks until the child opens the read end
	if err != nil {
		t.Fatal(err)
	}
	// Half the stream: magic header plus 15k of the 30k 28-byte
	// records. The write returning means the child has consumed all
	// but a pipe buffer of it, so the engine is running and the
	// SIGTERM handler is armed.
	half := 8 + 15_000*28
	if _, err := w.Write(data[:half]); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// The stop trigger is polled every 1024 records, so the child
	// needs more input to notice the signal — but fed all at once it
	// can race past the handler goroutine and finish normally. Give
	// the signal time to land, then trickle the rest a trigger-window
	// at a time until the child exits (the final writes fail with
	// EPIPE once it does, which is fine).
	waitc := make(chan error, 1)
	go func() { waitc <- cmd.Wait() }()
	time.Sleep(100 * time.Millisecond)
	go func() {
		defer w.Close()
		for off := half; off < len(data); off += 1024 * 28 {
			end := min(off+1024*28, len(data))
			if _, err := w.Write(data[off:end]); err != nil {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()

	if err := <-waitc; err != nil {
		t.Fatalf("interrupted run exited %v\nstderr: %s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "interrupted; state saved") {
		t.Fatalf("stderr missing the interrupt notice:\nstderr: %s\nstdout: %s", stderr.String(), stdout.String())
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("no checkpoint written: %v", err)
	}

	res, err := caranalyze(append([]string{"-in", full, "-checkpoint", ckpt, "-resume"}, common...)...).Output()
	if err != nil {
		t.Fatalf("resume run: %v", err)
	}
	if got, want := reportSection(t, res), reportSection(t, ref); got != want {
		t.Errorf("resumed report differs from uninterrupted run\n--- resumed ---\n%s\n--- reference ---\n%s", got, want)
	}
}

// TestProgressCurrentCountsQuarantined: the progress position must
// include records ingest rejected — the ETA total is estimated from
// the input size, which counts them, so a degraded run would otherwise
// stall short of 100% forever.
func TestProgressCurrentCountsQuarantined(t *testing.T) {
	reg := obs.New()
	cur := progressCurrent(reg)
	reg.Counter("cellcars_ingest_records_total").Add(900)
	reg.Counter("cellcars_ingest_quarantined_total",
		obs.Label{Key: "class", Value: cdr.FailureClass(0).String()}).Add(100)
	if got := cur(); got != 1000 {
		t.Errorf("progress position = %d, want 1000 (900 ingested + 100 quarantined)", got)
	}
	// Generate mode: no resilient reader runs, only the engine's
	// accepted/ghost/out-of-period counters move.
	reg2 := obs.New()
	cur2 := progressCurrent(reg2)
	reg2.Counter("cellcars_engine_records_total", obs.Label{Key: "outcome", Value: "accepted"}).Add(70)
	reg2.Counter("cellcars_engine_records_total", obs.Label{Key: "outcome", Value: "ghost"}).Add(30)
	if got := cur2(); got != 100 {
		t.Errorf("engine-side progress position = %d, want 100", got)
	}
}

// TestJSONMatchesSharedRenderer pins the -json contract: the CLI's
// stdout must be byte-for-byte what query.MarshalReport renders for a
// plain streaming pass with the CLI's study options — that shared
// renderer is what makes carqueryd's served reports comparable to a
// batch run.
func TestJSONMatchesSharedRenderer(t *testing.T) {
	dir := t.TempDir()
	data := cdrBytes(t, 20_000)
	in := filepath.Join(dir, "cars.cdr")
	if err := os.WriteFile(in, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := caranalyze("-json", "-in", in, "-days", "13", "-start", "2017-01-02",
		"-seed", "1", "-tz", "-5").Output()
	if err != nil {
		t.Fatalf("caranalyze -json: %v", err)
	}

	startDay := time.Date(2017, 1, 2, 0, 0, 0, 0, time.UTC)
	period := simtime.NewPeriod(startDay, 13)
	ingest := cdr.ResilientConfig{
		MaxBadFrac: 0.01,
		MinStart:   period.Start().AddDate(0, 0, -7),
		MaxStart:   period.End().AddDate(0, 0, 7),
	}
	ctx := analysis.Context{Period: period, TZOffsetSeconds: -5 * 3600}
	s := analysis.NewStreamingWithOptions(ctx, analysis.RunOptions{Seed: 1, RareDays: []int{1, 4}})
	rr := cdr.NewResilientReader(cdr.NewBinaryReader(bytes.NewReader(data)), ingest)
	if err := s.AddAll(rr); err != nil {
		t.Fatal(err)
	}
	rep := s.Finalize()
	want, err := query.MarshalReport(&rep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("-json output differs from query.MarshalReport\ncli %d bytes, renderer %d bytes", len(got), len(want))
	}
	var decoded map[string]any
	if err := json.Unmarshal(got, &decoded); err != nil {
		t.Fatalf("-json output is not valid JSON: %v", err)
	}
}
