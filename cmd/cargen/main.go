// Command cargen generates a synthetic connected-car CDR data set.
//
// Usage:
//
//	cargen -cars 10000 -days 90 -seed 1 -out cars.cdr
//	cargen -cars 2000 -days 28 -format csv -out cars.csv
//
// The output stream is globally sorted by (start, car, cell). A
// companion line on stderr reports generation statistics. The file can
// be analyzed with caranalyze or any consumer of the cellcars CDR
// formats.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cellcars/internal/cdr"
	"cellcars/internal/obs"
	"cellcars/internal/simtime"
	"cellcars/internal/synth"
)

func main() {
	var (
		cars      = flag.Int("cars", 2000, "fleet size")
		days      = flag.Int("days", 28, "study length in days")
		seed      = flag.Uint64("seed", 1, "generator seed")
		world     = flag.Float64("world", 60, "world side length in km")
		out       = flag.String("out", "cars.cdr", "output file")
		format    = flag.String("format", "", "output format: binary or csv (default: by extension, .csv = csv)")
		start     = flag.String("start", "2017-01-02", "study start date (YYYY-MM-DD)")
		debugAddr = flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address while generating")
	)
	flag.Parse()

	if *debugAddr != "" {
		srv, err := obs.Serve(*debugAddr, obs.New())
		if err != nil {
			fatal("debug server: %v", err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "cargen: debug server on http://%s\n", srv.Addr())
	}

	startDay, err := time.Parse("2006-01-02", *start)
	if err != nil {
		fatal("bad -start date: %v", err)
	}
	cfg := synth.DefaultConfig(*cars)
	cfg.Seed = *seed
	cfg.WorldSizeKm = *world
	cfg.Period = simtime.NewPeriod(startDay, *days)

	fmt.Fprintf(os.Stderr, "building world: %d cars, %d days, seed %d\n", *cars, *days, *seed)
	w := synth.NewWorld(cfg)
	fmt.Fprintf(os.Stderr, "network: %d base stations, %d cells\n", w.Net.NumStations(), w.Net.NumCells())

	records, stats, err := w.GenerateAll()
	if err != nil {
		fatal("generate: %v", err)
	}

	useCSV := *format == "csv" || (*format == "" && strings.HasSuffix(*out, ".csv"))
	if *format != "" && *format != "csv" && *format != "binary" {
		fatal("unknown -format %q", *format)
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal("create %s: %v", *out, err)
	}
	if useCSV {
		cw := cdr.NewCSVWriter(f)
		if err := cdr.WriteAll(cw, records); err != nil {
			fatal("write: %v", err)
		}
		if err := cw.Close(); err != nil {
			fatal("flush: %v", err)
		}
	} else {
		bw := cdr.NewBinaryWriter(f)
		if err := cdr.WriteAll(bw, records); err != nil {
			fatal("write: %v", err)
		}
		if err := bw.Close(); err != nil {
			fatal("flush: %v", err)
		}
	}
	// An unchecked close can silently drop the tail of the data set
	// (full disk, quota); the exit code must reflect it.
	if err := f.Sync(); err != nil {
		fatal("sync %s: %v", *out, err)
	}
	if err := f.Close(); err != nil {
		fatal("close %s: %v", *out, err)
	}

	fmt.Fprintf(os.Stderr,
		"wrote %d records to %s (trips %d, ghosts %d, stuck %d, loss-day drops %d, cars with data %d)\n",
		stats.Records, *out, stats.Trips, stats.Ghosts, stats.Stuck, stats.Dropped, stats.CarsWithData)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cargen: "+format+"\n", args...)
	os.Exit(1)
}
