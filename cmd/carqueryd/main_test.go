package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"cellcars/internal/cdr"
	"cellcars/internal/obs"
	"cellcars/internal/radio"
)

// TestMain re-execs the test binary as the real carqueryd when
// CARQUERYD_MAIN=1, so the e2e tests drive main() end to end — flag
// parsing, HTTP serving, signal handling, exit codes — without
// building a separate binary.
func TestMain(m *testing.M) {
	if os.Getenv("CARQUERYD_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func carqueryd(args ...string) *exec.Cmd {
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "CARQUERYD_MAIN=1")
	return cmd
}

// e2eRecords builds a deterministic workload satisfying the ordered
// fold's exactness precondition: every car's records form a
// non-overlapping chain, and the stream is sorted by start time. Gap
// choices straddle both sessionizer thresholds, and a sprinkle of
// ghost-length records exercises the drop path.
func e2eRecords(n int) []cdr.Record {
	start := time.Date(2017, 3, 6, 0, 0, 0, 0, time.UTC)
	end := start.Add(24 * time.Hour)
	rng := rand.New(rand.NewPCG(11, 23))
	gaps := []time.Duration{5 * time.Second, 15 * time.Second, 30 * time.Second, 2 * time.Minute,
		5 * time.Minute, 10 * time.Minute, 20 * time.Minute, 2 * time.Hour}
	next := make(map[cdr.CarID]time.Time)
	var recs []cdr.Record
	for attempts := 0; len(recs) < n && attempts < 20*n; attempts++ {
		car := cdr.CarID(rng.Uint64N(120))
		at, ok := next[car]
		if !ok {
			at = start.Add(time.Duration(rng.Uint64N(3600)) * time.Second)
		}
		if !at.Before(end) {
			continue
		}
		dur := time.Duration(10+rng.Uint64N(590)) * time.Second
		if rng.Uint64N(200) == 0 {
			dur = 90 * time.Minute // ghost: dropped by every stage, still counted raw
		}
		if at.Add(dur).After(end) {
			next[car] = end
			continue
		}
		recs = append(recs, cdr.Record{
			Car: car,
			Cell: radio.MakeCellKey(
				radio.BSID(rng.Uint64N(30)),
				radio.SectorID(rng.Uint64N(3)),
				radio.C1+radio.CarrierID(rng.Uint64N(uint64(radio.NumCarriers)))),
			Start:    at,
			Duration: dur,
		})
		next[car] = at.Add(dur + gaps[rng.Uint64N(uint64(len(gaps)))])
	}
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Start.Before(recs[j].Start) })
	return recs
}

func writeCDR(t *testing.T, path string, recs []cdr.Record) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := cdr.NewBinaryWriter(f)
	for _, rec := range recs {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// encodeRecords renders records in the binary CDR format in memory.
// withMagic=false strips the stream magic so batches can be appended
// to an already-started stream (the FIFO streaming tests).
func encodeRecords(t *testing.T, recs []cdr.Record, withMagic bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := cdr.NewBinaryWriter(&buf)
	for _, rec := range recs {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if !withMagic {
		var hdr bytes.Buffer
		hw := cdr.NewBinaryWriter(&hdr)
		if err := hw.Close(); err != nil {
			t.Fatal(err)
		}
		b = b[hdr.Len():]
	}
	return b
}

// buildCaranalyze compiles the real batch CLI so the e2e comparison is
// genuinely cross-binary: carqueryd's served bytes against caranalyze
// -json's stdout, not two calls into the same process.
func buildCaranalyze(t *testing.T, dir string) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not available to build caranalyze")
	}
	bin := filepath.Join(dir, "caranalyze")
	cmd := exec.Command("go", "build", "-o", bin, "cellcars/cmd/caranalyze")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build caranalyze: %v\n%s", err, out)
	}
	return bin
}

// daemon wraps one carqueryd child process. Its stdout is a stream of
// JSON log records; the harness collects every line and locates the
// bound address from the "listening" record.
type daemon struct {
	cmd  *exec.Cmd
	addr string

	mu  sync.Mutex
	out []string
	eof chan struct{}
}

func startDaemon(t *testing.T, args ...string) *daemon {
	t.Helper()
	cmd := carqueryd(args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd, eof: make(chan struct{})}
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			d.mu.Lock()
			d.out = append(d.out, sc.Text())
			d.mu.Unlock()
		}
		close(d.eof)
	}()
	deadline := time.Now().Add(30 * time.Second)
	for d.addr == "" {
		for _, rec := range d.records(t) {
			if rec["msg"] == "listening" {
				addr, _ := rec["addr"].(string)
				d.addr = addr
			}
		}
		if d.addr != "" {
			break
		}
		select {
		case <-d.eof:
			cmd.Wait()
			t.Fatalf("carqueryd exited before listening; output:\n%s", strings.Join(d.lines(), "\n"))
		default:
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatal("timeout waiting for carqueryd to listen")
		}
		time.Sleep(10 * time.Millisecond)
	}
	return d
}

// lines returns a snapshot of the stdout lines seen so far.
func (d *daemon) lines() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]string(nil), d.out...)
}

// records parses every stdout line as a JSON log record — the daemon's
// structured-logging contract: anything unparsable fails the test.
func (d *daemon) records(t *testing.T) []map[string]any {
	t.Helper()
	lns := d.lines()
	recs := make([]map[string]any, len(lns))
	for i, ln := range lns {
		if err := json.Unmarshal([]byte(ln), &recs[i]); err != nil {
			t.Fatalf("stdout line %d is not a JSON log record: %v\n%s", i+1, err, ln)
		}
	}
	return recs
}

// record returns the first log record with the given msg, or nil.
func (d *daemon) record(t *testing.T, msg string) map[string]any {
	t.Helper()
	for _, rec := range d.records(t) {
		if rec["msg"] == msg {
			return rec
		}
	}
	return nil
}

// terminate sends SIGTERM and expects a graceful zero exit.
func (d *daemon) terminate(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := d.cmd.Wait(); err != nil {
		t.Fatalf("carqueryd did not exit cleanly on SIGTERM: %v", err)
	}
	<-d.eof // all stdout flushed into d.out
}

func (d *daemon) get(t *testing.T, path string) (int, []byte) {
	t.Helper()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + d.addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	return resp.StatusCode, body
}

// statsBody mirrors the /stats JSON shape the tests care about.
type statsBody struct {
	Records   int64 `json:"records"`
	Freshness struct {
		WatermarkAgeSeconds float64 `json:"watermark_age_seconds"`
		RestoredWatermark   int64   `json:"restored_watermark"`
		TailReplayRecords   int64   `json:"tail_replay_records"`
		LastCutSeq          uint64  `json:"last_cut_seq"`
		LastCutAgeSeconds   float64 `json:"last_cut_age_seconds"`
		LastCutSeconds      float64 `json:"last_cut_seconds"`
	} `json:"freshness"`
}

func (d *daemon) stats(t *testing.T) statsBody {
	t.Helper()
	code, body := d.get(t, "/stats")
	if code != http.StatusOK {
		t.Fatalf("/stats: %d", code)
	}
	var st statsBody
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("bad /stats body: %v\n%s", err, body)
	}
	return st
}

// waitDrained polls /stats until the ingest watermark reaches want,
// returning the stats snapshot that reached it.
func (d *daemon) waitDrained(t *testing.T, want int64) statsBody {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st := d.stats(t)
		if st.Records == want {
			return st
		}
		if st.Records > want {
			t.Fatalf("/stats records %d, want at most %d", st.Records, want)
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %d ingested records", want)
	return statsBody{}
}

// TestServedReportBitIdenticalToBatch is the tentpole acceptance test:
// a 24h-window report served over HTTP must be byte-identical to a
// caranalyze batch run over the same records — before AND after a
// SIGTERM kill plus warm restart from the snapshot directory with a
// tail of new input replayed on top.
func TestServedReportBitIdenticalToBatch(t *testing.T) {
	dir := t.TempDir()
	recs := e2eRecords(5000)
	if len(recs) < 4000 {
		t.Fatalf("workload generator produced only %d records", len(recs))
	}
	cut := 2 * len(recs) / 3
	all := filepath.Join(dir, "all.cdr")
	part1 := filepath.Join(dir, "part1.cdr")
	part2 := filepath.Join(dir, "part2.cdr")
	writeCDR(t, all, recs)
	writeCDR(t, part1, recs[:cut])
	writeCDR(t, part2, recs[cut:])

	study := []string{"-start", "2017-03-06", "-days", "1", "-tz", "-5", "-seed", "1"}
	bin := buildCaranalyze(t, dir)
	batch := func(in string) []byte {
		cmd := exec.Command(bin, append([]string{"-json", "-in", in}, study...)...)
		cmd.Stderr = os.Stderr
		out, err := cmd.Output()
		if err != nil {
			t.Fatalf("caranalyze -json %s: %v", in, err)
		}
		return out
	}
	wantFull := batch(all)
	wantPart := batch(part1)

	snaps := filepath.Join(dir, "snaps")
	daemonArgs := func(inputs ...string) []string {
		args := append([]string{"-listen", "127.0.0.1:0", "-bucket", "1h", "-windows", "24h",
			"-snapshots", snaps, "-snapshot-every", "1500"}, study...)
		return append(args, inputs...)
	}

	// Run 1: ingest the first two thirds, check the served report
	// against batch over the same partial input, then kill -TERM.
	d := startDaemon(t, daemonArgs(part1)...)
	if code, body := d.get(t, "/healthz"); code != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("/healthz: %d %q", code, body)
	}
	d.waitDrained(t, int64(cut))
	if code, body := d.get(t, "/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz after drain: %d %q", code, body)
	}
	if code, got := d.get(t, "/report/full?window=24h"); code != http.StatusOK {
		t.Fatalf("/report/full: %d", code)
	} else if !bytes.Equal(got, wantPart) {
		t.Fatalf("served partial report differs from caranalyze -json over part1\nserved %d bytes, batch %d bytes\n%s",
			len(got), len(wantPart), firstDiff(got, wantPart))
	}
	d.terminate(t)

	cuts, err := filepath.Glob(filepath.Join(snaps, "cut-*.snap"))
	if err != nil || len(cuts) == 0 {
		t.Fatalf("no cuts in snapshot dir after SIGTERM (err %v)", err)
	}

	// Run 2: warm restart from the snapshot, replay only the tail of
	// part1 (nothing — it is fully covered by the watermark) plus
	// part2, and serve the full-input answer.
	d = startDaemon(t, daemonArgs(part1, part2)...)
	warm := d.record(t, "warm restart")
	if warm == nil {
		t.Fatalf("restarted daemon logged no warm restart; output:\n%s", strings.Join(d.lines(), "\n"))
	}
	if wm, _ := warm["watermark"].(float64); int64(wm) != int64(cut) {
		t.Fatalf("warm restart watermark %v, want %d", warm["watermark"], cut)
	}
	d.waitDrained(t, int64(len(recs)))
	code, got := d.get(t, "/report/full?window=24h")
	if code != http.StatusOK {
		t.Fatalf("/report/full after restart: %d", code)
	}
	if !bytes.Equal(got, wantFull) {
		t.Fatalf("served report after warm restart differs from caranalyze -json over all records\nserved %d bytes, batch %d bytes\n%s",
			len(got), len(wantFull), firstDiff(got, wantFull))
	}

	// The obs surface rides along on the same listener.
	if code, body := d.get(t, "/metrics"); code != http.StatusOK ||
		!strings.Contains(string(body), "cellcars_query_records_total") {
		t.Fatalf("/metrics missing query counters: %d", code)
	}
	d.terminate(t)
}

// TestObservabilityContract drives the full observability story over a
// FIFO with chaos-injected ingest: request telemetry and cache
// counters on /metrics, freshness SLIs on /stats, a named health rule
// degrading /readyz during an ingest stall and recovering after,
// structured JSON on every stdout line with one correlated run id, a
// span trace on disk, and — after a SIGTERM and warm restart — the
// watermark age shrinking and the tail-replay SLI counting exactly the
// replayed records.
func TestObservabilityContract(t *testing.T) {
	dir := t.TempDir()
	recs := e2eRecords(900)
	if len(recs) < 700 {
		t.Fatalf("workload generator produced only %d records", len(recs))
	}
	cut := 600
	partA, tail := recs[:cut], recs[cut:]
	fifo := filepath.Join(dir, "in.cdr")
	if err := syscall.Mkfifo(fifo, 0o600); err != nil {
		t.Fatalf("mkfifo: %v", err)
	}
	snaps := filepath.Join(dir, "snaps")
	tracePath := filepath.Join(dir, "trace.jsonl")
	study := []string{"-start", "2017-03-06", "-days", "1", "-tz", "-5", "-seed", "1"}
	base := append([]string{"-listen", "127.0.0.1:0", "-bucket", "1h", "-windows", "24h",
		"-snapshots", snaps, "-snapshot-every", "0", "-budget", "5",
		"-stall-after", "400ms"}, study...)

	d := startDaemon(t, append(append([]string(nil), base...), "-trace", tracePath, fifo)...)

	// The open blocks until the daemon's reader attaches to the FIFO.
	w, err := os.OpenFile(fifo, os.O_WRONLY, 0)
	if err != nil {
		t.Fatalf("open fifo for write: %v", err)
	}
	feed := func(b []byte) {
		t.Helper()
		if _, err := w.Write(b); err != nil {
			t.Fatalf("write fifo: %v", err)
		}
	}

	// Batch 1 with chaos: three well-formed records dated far outside
	// the study window, which resilient ingest must quarantine as
	// time-range failures without desyncing the stream.
	chaos := make([]cdr.Record, 3)
	for i := range chaos {
		chaos[i] = cdr.Record{
			Car:      cdr.CarID(i + 1),
			Cell:     radio.MakeCellKey(1, 0, radio.C1),
			Start:    time.Date(2030, 1, 1, i, 0, 0, 0, time.UTC),
			Duration: time.Minute,
		}
	}
	feed(encodeRecords(t, partA[:300], true))
	feed(encodeRecords(t, chaos, false))
	feed(encodeRecords(t, partA[300:550], false))
	d.waitDrained(t, 550)

	// Request telemetry: two identical report queries — the second is a
	// cache hit — must show up as latency timings, status-class
	// counters and cache counters on /metrics.
	if code, _ := d.get(t, "/report/full?window=24h"); code != http.StatusOK {
		t.Fatalf("/report/full: %d", code)
	}
	if code, _ := d.get(t, "/report/full?window=24h"); code != http.StatusOK {
		t.Fatalf("/report/full (cached): %d", code)
	}
	_, mb := d.get(t, "/metrics")
	metrics := string(mb)
	for _, want := range []string{
		`cellcars_http_request_seconds{endpoint="report/full",quantile="0.5",window="24h"}`,
		`cellcars_http_responses_total{class="2xx",endpoint="report/full"} 2`,
		`cellcars_ingest_quarantined_total{class="time-range"} 3`,
		`cellcars_query_cache_hits_total 1`,
		`cellcars_query_watermark_age_seconds`,
		`cellcars_query_tail_replay_records`,
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, metrics)
		}
	}

	// Ingest stall: with the FIFO idle past -stall-after, the
	// ingest_stalled health rule must degrade /readyz to 503 and name
	// itself in the body.
	var degraded bool
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		code, body := d.get(t, "/readyz")
		if code == http.StatusServiceUnavailable && strings.Contains(string(body), "rule ingest_stalled:") {
			degraded = true
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !degraded {
		t.Fatal("/readyz never degraded with the ingest_stalled rule during the stall")
	}
	if v := promGauge(t, d, "cellcars_health_rule_failing", `rule="ingest_stalled"`); v != 1 {
		t.Fatalf("failing-rule gauge = %v during stall, want 1", v)
	}
	time.Sleep(500 * time.Millisecond) // let the stalled watermark age grow past any replay latency
	stalledAge := d.stats(t).Freshness.WatermarkAgeSeconds
	if stalledAge <= 0.4 {
		t.Fatalf("stalled watermark age %v, want > stall threshold", stalledAge)
	}

	// Recovery: more records arrive, the rule passes again.
	feed(encodeRecords(t, partA[550:cut], false))
	d.waitDrained(t, int64(cut))
	recovered := false
	deadline = time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if code, _ := d.get(t, "/readyz"); code == http.StatusOK {
			recovered = true
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !recovered {
		t.Fatal("/readyz never recovered after ingest resumed")
	}

	// EOF → cut at EOF → drained record; then a graceful SIGTERM.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(15 * time.Second)
	for d.record(t, "drained") == nil {
		if time.Now().After(deadline) {
			t.Fatal("daemon never logged the drained record after FIFO EOF")
		}
		time.Sleep(50 * time.Millisecond)
	}
	d.terminate(t)

	// Every stdout line is structured JSON under one run id, and the
	// request logs carry correlated request ids.
	runIDs := map[string]bool{}
	sawRequestLog := false
	for _, rec := range d.records(t) {
		if rec["component"] != "carqueryd" {
			t.Fatalf("log record with component %v, want carqueryd: %v", rec["component"], rec)
		}
		id, _ := rec["run_id"].(string)
		if id == "" {
			t.Fatalf("log record missing run_id: %v", rec)
		}
		runIDs[id] = true
		if rec["msg"] == "http request" {
			sawRequestLog = true
			if rid, _ := rec["request_id"].(string); rid == "" {
				t.Fatalf("http request log without request_id: %v", rec)
			}
			if _, ok := rec["endpoint"]; !ok {
				t.Fatalf("http request log without endpoint: %v", rec)
			}
		}
	}
	if len(runIDs) != 1 {
		t.Fatalf("log records carry %d distinct run ids, want 1: %v", len(runIDs), runIDs)
	}
	if !sawRequestLog {
		t.Fatal("no http request log records")
	}

	// The span trace on disk is JSONL covering ingest, snapshot cuts
	// and window composes.
	tb, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	spans := map[string]bool{}
	for i, ln := range strings.Split(strings.TrimSpace(string(tb)), "\n") {
		var span struct {
			Span string `json:"span"`
		}
		if err := json.Unmarshal([]byte(ln), &span); err != nil {
			t.Fatalf("trace line %d is not JSON: %v\n%s", i+1, err, ln)
		}
		spans[span.Span] = true
	}
	for _, want := range []string{"ingest", "cut", "compose:full/24h"} {
		if !spans[want] {
			t.Fatalf("trace missing span %q; saw %v", want, spans)
		}
	}

	// Warm restart from the final cut with a tail of new records: the
	// tail-replay SLI counts exactly the new records and the watermark
	// age collapses from the stalled value to fresh.
	goodA := filepath.Join(dir, "goodA.cdr")
	tailF := filepath.Join(dir, "tail.cdr")
	writeCDR(t, goodA, partA)
	writeCDR(t, tailF, tail)
	d = startDaemon(t, append(append([]string(nil), base...), goodA, tailF)...)
	warm := d.record(t, "warm restart")
	if warm == nil {
		t.Fatalf("no warm restart after chaos run; output:\n%s", strings.Join(d.lines(), "\n"))
	}
	st := d.waitDrained(t, int64(len(recs)))
	if st.Freshness.RestoredWatermark != int64(cut) {
		t.Fatalf("restored watermark SLI %d, want %d", st.Freshness.RestoredWatermark, cut)
	}
	if st.Freshness.TailReplayRecords != int64(len(tail)) {
		t.Fatalf("tail replay SLI %d, want %d", st.Freshness.TailReplayRecords, len(tail))
	}
	if st.Freshness.WatermarkAgeSeconds >= stalledAge {
		t.Fatalf("watermark age %v after replay, want below the stalled %v", st.Freshness.WatermarkAgeSeconds, stalledAge)
	}
	if st.Freshness.LastCutSeq == 0 || st.Freshness.LastCutAgeSeconds < 0 {
		t.Fatalf("cut SLIs not populated after EOF cut: %+v", st.Freshness)
	}
	d.terminate(t)
}

// promGauge scrapes /metrics and returns the value of one gauge series
// identified by name and a label-pair substring.
func promGauge(t *testing.T, d *daemon, name, label string) float64 {
	t.Helper()
	_, body := d.get(t, "/metrics")
	for _, ln := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(ln, name) && strings.Contains(ln, label) {
			fields := strings.Fields(ln)
			v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
			if err != nil {
				t.Fatalf("bad gauge line %q: %v", ln, err)
			}
			return v
		}
	}
	t.Fatalf("no series %s{%s} on /metrics", name, label)
	return 0
}

// TestMetricsExpositionUnderLoad hammers a live daemon from concurrent
// clients while scraping /metrics, and validates that every scrape is
// well-formed Prometheus text format and every metric name passes the
// cellcars_<area>_<name> lint. Run under -race this also exercises the
// registry, middleware, health and freshness paths for data races.
func TestMetricsExpositionUnderLoad(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.cdr")
	recs := e2eRecords(3000)
	writeCDR(t, in, recs)
	d := startDaemon(t, "-listen", "127.0.0.1:0", "-bucket", "1h", "-windows", "24h,6h",
		"-start", "2017-03-06", "-days", "1", "-tz", "-5", in)
	d.waitDrained(t, int64(len(recs)))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	paths := []string{
		"/report/full?window=24h", "/report/full?window=6h", "/report/presence?window=24h",
		"/stats", "/windows", "/healthz", "/readyz", "/nope", "/report/bogus?window=24h",
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client := &http.Client{Timeout: 5 * time.Second}
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Get("http://" + d.addr + paths[(i+j)%len(paths)])
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}(i)
	}
	for i := 0; i < 25; i++ {
		code, body := d.get(t, "/metrics")
		if code != http.StatusOK {
			t.Fatalf("/metrics scrape %d: status %d", i, code)
		}
		validatePromText(t, string(body))
	}
	close(stop)
	wg.Wait()
	d.terminate(t)
}

var (
	promTypeRE   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|summary|histogram|untyped)$`)
	promSampleRE = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{([^}]*)\})? (NaN|[+-]Inf|[-+0-9.eE]+)$`)
	promLabelRE  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\["\\n])*"$`)
)

// validatePromText checks one /metrics body against the Prometheus
// text exposition format and the repo metric-name convention.
func validatePromText(t *testing.T, body string) {
	t.Helper()
	typed := map[string]bool{}
	for n, ln := range strings.Split(body, "\n") {
		if ln == "" {
			continue
		}
		if strings.HasPrefix(ln, "#") {
			m := promTypeRE.FindStringSubmatch(ln)
			if m == nil {
				t.Fatalf("metrics line %d: malformed comment %q", n+1, ln)
			}
			typed[m[1]] = true
			continue
		}
		m := promSampleRE.FindStringSubmatch(ln)
		if m == nil {
			t.Fatalf("metrics line %d: malformed sample %q", n+1, ln)
		}
		name := m[1]
		// Summary series reuse their base name (quantiles) or append
		// _sum/_count; the base must have a preceding # TYPE line and
		// pass the naming lint.
		base := strings.TrimSuffix(strings.TrimSuffix(name, "_sum"), "_count")
		if !typed[name] && !typed[base] {
			t.Fatalf("metrics line %d: sample %q before its # TYPE line", n+1, name)
		}
		if !obs.ValidName(base) {
			t.Fatalf("metrics line %d: name %q violates the cellcars_<area>_<name> convention", n+1, base)
		}
		if m[2] != "" {
			for _, pair := range strings.Split(m[2], ",") {
				if !promLabelRE.MatchString(pair) {
					t.Fatalf("metrics line %d: malformed label %q", n+1, pair)
				}
			}
		}
		if _, err := strconv.ParseFloat(m[3], 64); err != nil {
			t.Fatalf("metrics line %d: bad value in %q: %v", n+1, ln, err)
		}
	}
}

// TestDaemonRejectsBadFlags covers the fail-fast paths: they must
// exit non-zero with a diagnostic, not serve garbage.
func TestDaemonRejectsBadFlags(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.cdr")
	writeCDR(t, in, e2eRecords(10))
	for _, tc := range [][]string{
		{},                          // no inputs
		{"-bucket", "nope", in},     // bad bucket
		{"-windows", "90m", in},     // window not a multiple of the bucket
		{"-start", "back-then", in}, // bad date
	} {
		cmd := carqueryd(tc...)
		out, err := cmd.CombinedOutput()
		if err == nil {
			t.Fatalf("carqueryd %v exited zero; output:\n%s", tc, out)
		}
	}
}

// firstDiff renders the first few differing lines of two JSON bodies,
// so a mismatch failure is debuggable.
func firstDiff(a, b []byte) string {
	al := strings.Split(string(a), "\n")
	bl := strings.Split(string(b), "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("first diff at line %d:\n  served: %s\n  batch:  %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("bodies diverge in length: %d vs %d lines", len(al), len(bl))
}
