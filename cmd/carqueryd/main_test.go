package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"testing"
	"time"

	"cellcars/internal/cdr"
	"cellcars/internal/radio"
)

// TestMain re-execs the test binary as the real carqueryd when
// CARQUERYD_MAIN=1, so the e2e tests drive main() end to end — flag
// parsing, HTTP serving, signal handling, exit codes — without
// building a separate binary.
func TestMain(m *testing.M) {
	if os.Getenv("CARQUERYD_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func carqueryd(args ...string) *exec.Cmd {
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "CARQUERYD_MAIN=1")
	return cmd
}

// e2eRecords builds a deterministic workload satisfying the ordered
// fold's exactness precondition: every car's records form a
// non-overlapping chain, and the stream is sorted by start time. Gap
// choices straddle both sessionizer thresholds, and a sprinkle of
// ghost-length records exercises the drop path.
func e2eRecords(n int) []cdr.Record {
	start := time.Date(2017, 3, 6, 0, 0, 0, 0, time.UTC)
	end := start.Add(24 * time.Hour)
	rng := rand.New(rand.NewPCG(11, 23))
	gaps := []time.Duration{5 * time.Second, 15 * time.Second, 30 * time.Second, 2 * time.Minute,
		5 * time.Minute, 10 * time.Minute, 20 * time.Minute, 2 * time.Hour}
	next := make(map[cdr.CarID]time.Time)
	var recs []cdr.Record
	for attempts := 0; len(recs) < n && attempts < 20*n; attempts++ {
		car := cdr.CarID(rng.Uint64N(120))
		at, ok := next[car]
		if !ok {
			at = start.Add(time.Duration(rng.Uint64N(3600)) * time.Second)
		}
		if !at.Before(end) {
			continue
		}
		dur := time.Duration(10+rng.Uint64N(590)) * time.Second
		if rng.Uint64N(200) == 0 {
			dur = 90 * time.Minute // ghost: dropped by every stage, still counted raw
		}
		if at.Add(dur).After(end) {
			next[car] = end
			continue
		}
		recs = append(recs, cdr.Record{
			Car: car,
			Cell: radio.MakeCellKey(
				radio.BSID(rng.Uint64N(30)),
				radio.SectorID(rng.Uint64N(3)),
				radio.C1+radio.CarrierID(rng.Uint64N(uint64(radio.NumCarriers)))),
			Start:    at,
			Duration: dur,
		})
		next[car] = at.Add(dur + gaps[rng.Uint64N(uint64(len(gaps)))])
	}
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Start.Before(recs[j].Start) })
	return recs
}

func writeCDR(t *testing.T, path string, recs []cdr.Record) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := cdr.NewBinaryWriter(f)
	for _, rec := range recs {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// buildCaranalyze compiles the real batch CLI so the e2e comparison is
// genuinely cross-binary: carqueryd's served bytes against caranalyze
// -json's stdout, not two calls into the same process.
func buildCaranalyze(t *testing.T, dir string) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not available to build caranalyze")
	}
	bin := filepath.Join(dir, "caranalyze")
	cmd := exec.Command("go", "build", "-o", bin, "cellcars/cmd/caranalyze")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build caranalyze: %v\n%s", err, out)
	}
	return bin
}

// daemon wraps one carqueryd child process.
type daemon struct {
	cmd   *exec.Cmd
	addr  string
	boot  []string // stdout lines seen before the listening banner
	lines <-chan string
}

func startDaemon(t *testing.T, args ...string) *daemon {
	t.Helper()
	cmd := carqueryd(args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	lines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	d := &daemon{cmd: cmd, lines: lines}
	deadline := time.After(30 * time.Second)
	const banner = "listening on http://"
	for d.addr == "" {
		select {
		case ln, ok := <-lines:
			if !ok {
				cmd.Wait()
				t.Fatalf("carqueryd exited before listening; output:\n%s", strings.Join(d.boot, "\n"))
			}
			if i := strings.Index(ln, banner); i >= 0 {
				d.addr = ln[i+len(banner):]
			} else {
				d.boot = append(d.boot, ln)
			}
		case <-deadline:
			cmd.Process.Kill()
			t.Fatal("timeout waiting for carqueryd to listen")
		}
	}
	return d
}

// terminate sends SIGTERM and expects a graceful zero exit.
func (d *daemon) terminate(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := d.cmd.Wait(); err != nil {
		t.Fatalf("carqueryd did not exit cleanly on SIGTERM: %v", err)
	}
}

func (d *daemon) get(t *testing.T, path string) (int, []byte) {
	t.Helper()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + d.addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	return resp.StatusCode, body
}

// waitDrained polls /stats until the ingest watermark reaches want.
func (d *daemon) waitDrained(t *testing.T, want int64) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		code, body := d.get(t, "/stats")
		if code == http.StatusOK {
			var st struct {
				Records int64 `json:"records"`
			}
			if err := json.Unmarshal(body, &st); err != nil {
				t.Fatalf("bad /stats body: %v\n%s", err, body)
			}
			if st.Records == want {
				return
			}
			if st.Records > want {
				t.Fatalf("/stats records %d, want at most %d", st.Records, want)
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %d ingested records", want)
}

// TestServedReportBitIdenticalToBatch is the tentpole acceptance test:
// a 24h-window report served over HTTP must be byte-identical to a
// caranalyze batch run over the same records — before AND after a
// SIGTERM kill plus warm restart from the snapshot directory with a
// tail of new input replayed on top.
func TestServedReportBitIdenticalToBatch(t *testing.T) {
	dir := t.TempDir()
	recs := e2eRecords(5000)
	if len(recs) < 4000 {
		t.Fatalf("workload generator produced only %d records", len(recs))
	}
	cut := 2 * len(recs) / 3
	all := filepath.Join(dir, "all.cdr")
	part1 := filepath.Join(dir, "part1.cdr")
	part2 := filepath.Join(dir, "part2.cdr")
	writeCDR(t, all, recs)
	writeCDR(t, part1, recs[:cut])
	writeCDR(t, part2, recs[cut:])

	study := []string{"-start", "2017-03-06", "-days", "1", "-tz", "-5", "-seed", "1"}
	bin := buildCaranalyze(t, dir)
	batch := func(in string) []byte {
		cmd := exec.Command(bin, append([]string{"-json", "-in", in}, study...)...)
		cmd.Stderr = os.Stderr
		out, err := cmd.Output()
		if err != nil {
			t.Fatalf("caranalyze -json %s: %v", in, err)
		}
		return out
	}
	wantFull := batch(all)
	wantPart := batch(part1)

	snaps := filepath.Join(dir, "snaps")
	daemonArgs := func(inputs ...string) []string {
		args := append([]string{"-listen", "127.0.0.1:0", "-bucket", "1h", "-windows", "24h",
			"-snapshots", snaps, "-snapshot-every", "1500"}, study...)
		return append(args, inputs...)
	}

	// Run 1: ingest the first two thirds, check the served report
	// against batch over the same partial input, then kill -TERM.
	d := startDaemon(t, daemonArgs(part1)...)
	if code, body := d.get(t, "/healthz"); code != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("/healthz: %d %q", code, body)
	}
	d.waitDrained(t, int64(cut))
	if code, body := d.get(t, "/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz after drain: %d %q", code, body)
	}
	if code, got := d.get(t, "/report/full?window=24h"); code != http.StatusOK {
		t.Fatalf("/report/full: %d", code)
	} else if !bytes.Equal(got, wantPart) {
		t.Fatalf("served partial report differs from caranalyze -json over part1\nserved %d bytes, batch %d bytes\n%s",
			len(got), len(wantPart), firstDiff(got, wantPart))
	}
	d.terminate(t)

	cuts, err := filepath.Glob(filepath.Join(snaps, "cut-*.snap"))
	if err != nil || len(cuts) == 0 {
		t.Fatalf("no cuts in snapshot dir after SIGTERM (err %v)", err)
	}

	// Run 2: warm restart from the snapshot, replay only the tail of
	// part1 (nothing — it is fully covered by the watermark) plus
	// part2, and serve the full-input answer.
	d = startDaemon(t, daemonArgs(part1, part2)...)
	boot := strings.Join(d.boot, "\n")
	if !strings.Contains(boot, "warm restart") {
		t.Fatalf("restarted daemon did not warm restart; boot lines:\n%s", boot)
	}
	if !strings.Contains(boot, fmt.Sprintf("watermark %d", cut)) {
		t.Fatalf("warm restart watermark is not %d; boot lines:\n%s", cut, boot)
	}
	d.waitDrained(t, int64(len(recs)))
	code, got := d.get(t, "/report/full?window=24h")
	if code != http.StatusOK {
		t.Fatalf("/report/full after restart: %d", code)
	}
	if !bytes.Equal(got, wantFull) {
		t.Fatalf("served report after warm restart differs from caranalyze -json over all records\nserved %d bytes, batch %d bytes\n%s",
			len(got), len(wantFull), firstDiff(got, wantFull))
	}

	// The obs surface rides along on the same listener.
	if code, body := d.get(t, "/metrics"); code != http.StatusOK ||
		!strings.Contains(string(body), "cellcars_query_records_total") {
		t.Fatalf("/metrics missing query counters: %d", code)
	}
	d.terminate(t)
}

// TestDaemonRejectsBadFlags covers the fail-fast paths: they must
// exit non-zero with a diagnostic, not serve garbage.
func TestDaemonRejectsBadFlags(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.cdr")
	writeCDR(t, in, e2eRecords(10))
	for _, tc := range [][]string{
		{},                          // no inputs
		{"-bucket", "nope", in},     // bad bucket
		{"-windows", "90m", in},     // window not a multiple of the bucket
		{"-start", "back-then", in}, // bad date
	} {
		cmd := carqueryd(tc...)
		out, err := cmd.CombinedOutput()
		if err == nil {
			t.Fatalf("carqueryd %v exited zero; output:\n%s", tc, out)
		}
	}
}

// firstDiff renders the first few differing lines of two JSON bodies,
// so a mismatch failure is debuggable.
func firstDiff(a, b []byte) string {
	al := strings.Split(string(a), "\n")
	bl := strings.Split(string(b), "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("first diff at line %d:\n  served: %s\n  batch:  %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("bodies diverge in length: %d vs %d lines", len(al), len(bl))
}
