// Command carqueryd is the long-running query service over CDR
// streams: it ingests records continuously into time-bucketed
// accumulators and serves the paper's reports over rolling windows as
// HTTP/JSON — per-cell busy-ness, segment mix, handover rates, fleet
// usage — plus /healthz, /readyz, /stats and the standard obs surface
// (/metrics, /debug/pprof).
//
//	carqueryd -start 2017-01-02 -days 90 -snapshots /var/lib/carqueryd day*.cdr
//	curl localhost:8080/report/handovers?window=24h
//
// Durability: with -snapshots, the daemon writes consistent cuts of
// every live bucket periodically and on SIGTERM, and a restart warm
// starts from the newest valid cut, replaying only the post-watermark
// tail of its inputs. A SIGTERM exit is graceful: final cut, then
// exit 0.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cellcars/internal/analysis"
	"cellcars/internal/cdr"
	"cellcars/internal/obs"
	"cellcars/internal/query"
	"cellcars/internal/simtime"
	"cellcars/internal/snapshot"
)

func main() {
	var (
		listen = flag.String("listen", "127.0.0.1:8080", "HTTP listen address (use :0 for an ephemeral port)")
		start  = flag.String("start", "2017-01-02", "study start date (YYYY-MM-DD)")
		days   = flag.Int("days", 90, "study length in days")
		tz     = flag.Int("tz", -5, "local-time offset from UTC in hours")
		seed   = flag.Uint64("seed", 1, "seed")

		bucket  = flag.String("bucket", "1h", "accumulator bucket width (must divide the study period)")
		windows = flag.String("windows", "24h,7d,90d", "comma-separated rolling windows (h/m/s suffixes or Nd days); each must be a multiple of the bucket")

		snapshots = flag.String("snapshots", "", "snapshot directory for durable cuts (empty: no durability)")
		snapEvery = flag.Int64("snapshot-every", 1_000_000, "records between periodic cuts (0: cut only at EOF and on shutdown)")
		keep      = flag.Int("keep", 3, "rotated cuts to retain in -snapshots")

		strict     = flag.Bool("strict", false, "abort on the first malformed record")
		quarantine = flag.String("quarantine", "", "write quarantined records to this file (TSV)")
		budget     = flag.Float64("budget", 1.0, "error budget, max % of malformed records before aborting (0 aborts on the first, negative disables)")
	)
	flag.Parse()
	inputs := flag.Args()
	if len(inputs) == 0 {
		fatal("no input files (give CDR files as positional arguments)")
	}

	startDay, err := time.Parse("2006-01-02", *start)
	if err != nil {
		fatal("bad -start date: %v", err)
	}
	period := simtime.NewPeriod(startDay, *days)
	width, err := parseSpan(*bucket)
	if err != nil {
		fatal("bad -bucket: %v", err)
	}
	wins, err := parseWindows(*windows)
	if err != nil {
		fatal("bad -windows: %v", err)
	}

	reg := obs.New()
	// Resilient ingest, mirroring caranalyze: malformed records are
	// quarantined within an error budget, and far-out-of-window dates
	// are treated as corrupt.
	ingest := cdr.ResilientConfig{
		Strict:     *strict || *budget == 0,
		MaxBadFrac: *budget / 100,
		MinStart:   period.Start().AddDate(0, 0, -7),
		MaxStart:   period.End().AddDate(0, 0, 7),
		Obs:        reg,
	}
	if *quarantine != "" {
		qf, err := os.Create(*quarantine)
		if err != nil {
			fatal("open quarantine file: %v", err)
		}
		qw := cdr.NewQuarantineWriter(qf)
		ingest.Sink = qw
		defer func() {
			qw.Close()
			qf.Close()
		}()
	}

	var dir *snapshot.Dir
	if *snapshots != "" {
		dir = &snapshot.Dir{Path: *snapshots, Keep: *keep}
	}

	ctx := analysis.Context{Period: period, TZOffsetSeconds: *tz * 3600}
	// Rare-day thresholds scale with the study length exactly as
	// caranalyze's do, so served reports and batch reports agree.
	rare := []int{max(1, *days/9), max(2, *days/3)}
	store, err := query.New(query.Config{
		Ctx:       ctx,
		Opts:      analysis.RunOptions{Seed: *seed, RareDays: rare},
		Bucket:    width,
		Windows:   wins,
		Snapshots: dir,
		Obs:       reg,
	})
	if err != nil {
		fatal("%v", err)
	}

	// Warm restart: restore the newest valid cut, then replay only the
	// post-watermark tail of the inputs.
	var watermark int64
	if dir != nil {
		wm, ok, err := store.Restore()
		if err != nil {
			fatal("restore from %s: %v", dir.Path, err)
		}
		if ok {
			watermark = wm
			fmt.Printf("carqueryd: warm restart from %s at watermark %d\n", dir.Path, wm)
		}
	}

	srv := query.NewServer(store, reg)
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal("listen %s: %v", *listen, err)
	}
	// The test harness and operators parse this line for the bound
	// address, so it goes out before ingest starts.
	fmt.Printf("carqueryd: listening on http://%s\n", ln.Addr())
	go func() {
		if err := http.Serve(ln, srv); err != nil && !errors.Is(err, net.ErrClosed) {
			fatal("http: %v", err)
		}
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
	shutdown := func(when string) {
		if dir != nil {
			if seq, err := store.Checkpoint(); err != nil {
				fatal("final cut: %v", err)
			} else {
				fmt.Printf("carqueryd: %s; state saved to %s (cut %d, watermark %d)\n",
					when, dir.Path, seq, store.Watermark())
			}
		} else {
			fmt.Printf("carqueryd: %s\n", when)
		}
		os.Exit(0)
	}

	rr := cdr.NewResilientReader(openInputs(inputs), ingest)
	if watermark > 0 {
		if err := cdr.Skip(rr, watermark); err != nil {
			fatal("skip %d replayed records: %v", watermark, err)
		}
	}
	srv.SetReady(true)

	var sinceCut int64
	for {
		select {
		case <-sigc:
			shutdown("terminated mid-ingest")
		default:
		}
		rec, err := rr.Read()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			fatal("ingest: %v", err)
		}
		store.Add(rec)
		sinceCut++
		if dir != nil && *snapEvery > 0 && sinceCut >= *snapEvery {
			if _, err := store.Checkpoint(); err != nil {
				fatal("periodic cut: %v", err)
			}
			sinceCut = 0
		}
	}
	if dir != nil {
		if _, err := store.Checkpoint(); err != nil {
			fatal("cut at EOF: %v", err)
		}
	}
	istats := rr.Stats()
	fmt.Printf("carqueryd: drained %d records (%d quarantined); serving\n",
		store.Watermark(), istats.QuarantinedTotal())

	<-sigc
	shutdown("terminated")
}

// openInputs concatenates the input files in argument order, picking
// each codec by extension. Files are opened lazily so a long replay
// does not hold every descriptor at once.
func openInputs(paths []string) cdr.Reader {
	readers := make([]cdr.Reader, len(paths))
	for i, path := range paths {
		readers[i] = &lazyFileReader{path: path}
	}
	return cdr.Concat(readers...)
}

type lazyFileReader struct {
	path string
	f    *os.File
	r    cdr.Reader
}

func (l *lazyFileReader) Read() (cdr.Record, error) {
	if l.r == nil {
		f, err := os.Open(l.path)
		if err != nil {
			return cdr.Record{}, err
		}
		l.f = f
		if strings.HasSuffix(l.path, ".csv") {
			l.r = cdr.NewCSVReader(f)
		} else {
			l.r = cdr.NewBinaryReader(f)
		}
	}
	rec, err := l.r.Read()
	if errors.Is(err, io.EOF) {
		l.f.Close()
	}
	return rec, err
}

// parseSpan parses a duration with the usual h/m/s suffixes plus an
// Nd day form, which time.ParseDuration lacks.
func parseSpan(s string) (time.Duration, error) {
	if n, ok := strings.CutSuffix(s, "d"); ok && !strings.ContainsAny(n, "hms") {
		days, err := time.ParseDuration(n + "h")
		if err != nil {
			return 0, fmt.Errorf("bad span %q", s)
		}
		return days * 24, nil
	}
	return time.ParseDuration(s)
}

func parseWindows(spec string) ([]query.Window, error) {
	var out []query.Window
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		span, err := parseSpan(tok)
		if err != nil {
			return nil, fmt.Errorf("window %q: %v", tok, err)
		}
		out = append(out, query.Window{Name: tok, Span: span})
	}
	if len(out) == 0 {
		return nil, errors.New("no windows")
	}
	return out, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "carqueryd: "+format+"\n", args...)
	os.Exit(1)
}
