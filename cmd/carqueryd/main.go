// Command carqueryd is the long-running query service over CDR
// streams: it ingests records continuously into time-bucketed
// accumulators and serves the paper's reports over rolling windows as
// HTTP/JSON — per-cell busy-ness, segment mix, handover rates, fleet
// usage — plus /healthz, /readyz, /stats and the standard obs surface
// (/metrics, /debug/pprof).
//
//	carqueryd -start 2017-01-02 -days 90 -snapshots /var/lib/carqueryd day*.cdr
//	curl localhost:8080/report/handovers?window=24h
//
// Durability: with -snapshots, the daemon writes consistent cuts of
// every live bucket periodically and on SIGTERM, and a restart warm
// starts from the newest valid cut, replaying only the post-watermark
// tail of its inputs. A SIGTERM exit is graceful: in-flight requests
// drain, then a final cut, then exit 0.
//
// Observability: every stdout line is one structured JSON log record
// carrying the component and run_id; request telemetry, freshness SLIs
// and health-rule state are exported on /metrics; failing health rules
// (ingest stalled, error budget, snapshot cuts) degrade /readyz to 503
// with a body naming them. -trace writes a JSONL span trace.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"cellcars/internal/analysis"
	"cellcars/internal/cdr"
	"cellcars/internal/obs"
	"cellcars/internal/query"
	"cellcars/internal/simtime"
	"cellcars/internal/snapshot"
)

// shutdownGrace bounds how long a SIGTERM waits for in-flight HTTP
// requests before closing their connections.
const shutdownGrace = 5 * time.Second

func main() {
	var (
		listen = flag.String("listen", "127.0.0.1:8080", "HTTP listen address (use :0 for an ephemeral port)")
		start  = flag.String("start", "2017-01-02", "study start date (YYYY-MM-DD)")
		days   = flag.Int("days", 90, "study length in days")
		tz     = flag.Int("tz", -5, "local-time offset from UTC in hours")
		seed   = flag.Uint64("seed", 1, "seed")

		bucket  = flag.String("bucket", "1h", "accumulator bucket width (must divide the study period)")
		windows = flag.String("windows", "24h,7d,90d", "comma-separated rolling windows (h/m/s suffixes or Nd days); each must be a multiple of the bucket")

		snapshots = flag.String("snapshots", "", "snapshot directory for durable cuts (empty: no durability)")
		snapEvery = flag.Int64("snapshot-every", 1_000_000, "records between periodic cuts (0: cut only at EOF and on shutdown)")
		keep      = flag.Int("keep", 3, "rotated cuts to retain in -snapshots")

		strict     = flag.Bool("strict", false, "abort on the first malformed record")
		quarantine = flag.String("quarantine", "", "write quarantined records to this file (TSV)")
		budget     = flag.Float64("budget", 1.0, "error budget, max % of malformed records before aborting (0 aborts on the first, negative disables)")

		tracePath  = flag.String("trace", "", "write a JSONL span trace (ingest, cuts, window composes) to this file")
		stallAfter = flag.Duration("stall-after", 30*time.Second, "degrade /readyz when ingest is attached but no record arrived for this long (0 disables)")
		budgetWarn = flag.Float64("budget-degraded", 0.8, "degrade /readyz when this fraction of the ingest error budget is spent (>=1 or <=0 disables)")
	)
	flag.Parse()

	runID := obs.NewRunID()
	logger := obs.NewLogger(os.Stdout, "carqueryd", runID)
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	inputs := flag.Args()
	if len(inputs) == 0 {
		fatal("no input files (give CDR files as positional arguments)")
	}

	startDay, err := time.Parse("2006-01-02", *start)
	if err != nil {
		fatal("bad -start date", "err", err.Error())
	}
	period := simtime.NewPeriod(startDay, *days)
	width, err := parseSpan(*bucket)
	if err != nil {
		fatal("bad -bucket", "err", err.Error())
	}
	wins, err := parseWindows(*windows)
	if err != nil {
		fatal("bad -windows", "err", err.Error())
	}

	var trace *obs.Trace
	if *tracePath != "" {
		tf, err := os.Create(*tracePath)
		if err != nil {
			fatal("open -trace file", "err", err.Error())
		}
		defer tf.Close()
		trace = obs.NewTrace(tf)
	}

	reg := obs.New()
	// Resilient ingest, mirroring caranalyze: malformed records are
	// quarantined within an error budget, and far-out-of-window dates
	// are treated as corrupt.
	ingest := cdr.ResilientConfig{
		Strict:     *strict || *budget == 0,
		MaxBadFrac: *budget / 100,
		MinStart:   period.Start().AddDate(0, 0, -7),
		MaxStart:   period.End().AddDate(0, 0, 7),
		Obs:        reg,
	}
	if *quarantine != "" {
		qf, err := os.Create(*quarantine)
		if err != nil {
			fatal("open quarantine file", "err", err.Error())
		}
		qw := cdr.NewQuarantineWriter(qf)
		ingest.Sink = qw
		defer func() {
			qw.Close()
			qf.Close()
		}()
	}

	var dir *snapshot.Dir
	if *snapshots != "" {
		dir = &snapshot.Dir{Path: *snapshots, Keep: *keep}
	}

	ctx := analysis.Context{Period: period, TZOffsetSeconds: *tz * 3600}
	// Rare-day thresholds scale with the study length exactly as
	// caranalyze's do, so served reports and batch reports agree.
	rare := []int{max(1, *days/9), max(2, *days/3)}
	store, err := query.New(query.Config{
		Ctx:       ctx,
		Opts:      analysis.RunOptions{Seed: *seed, RareDays: rare},
		Bucket:    width,
		Windows:   wins,
		Snapshots: dir,
		Obs:       reg,
		Trace:     trace,
	})
	if err != nil {
		fatal("bad store configuration", "err", err.Error())
	}

	// Warm restart: restore the newest valid cut, then replay only the
	// post-watermark tail of the inputs.
	var watermark int64
	if dir != nil {
		wm, ok, err := store.Restore()
		if err != nil {
			fatal("warm restart failed", "snapshots", dir.Path, "err", err.Error())
		}
		if ok {
			watermark = wm
			logger.Info("warm restart", "snapshots", dir.Path, "watermark", wm)
		}
	}

	// Health rules gate /readyz once the daemon is warm. Rules read
	// only atomically-safe surfaces (the store's mutex-guarded
	// freshness SLIs, obs gauge handles), never the ingest reader's
	// un-synchronized Stats.
	var ingesting atomic.Bool
	health := obs.NewHealth(reg)
	if *stallAfter > 0 {
		health.Rule("ingest_stalled", func() (bool, string) {
			age := store.WatermarkAge()
			if ingesting.Load() && age > *stallAfter {
				return false, fmt.Sprintf("no record ingested for %v (threshold %v)", age.Round(time.Millisecond), *stallAfter)
			}
			return true, ""
		})
	}
	if *budgetWarn > 0 && *budgetWarn < 1 && *budget > 0 {
		budgetGauge := reg.Gauge("cellcars_ingest_budget_used_ratio")
		health.Rule("ingest_error_budget", func() (bool, string) {
			if used := budgetGauge.Value(); used >= *budgetWarn {
				return false, fmt.Sprintf("%.0f%% of the ingest error budget spent (degraded at %.0f%%)", used*100, *budgetWarn*100)
			}
			return true, ""
		})
	}
	if dir != nil {
		health.Rule("snapshot_cuts", func() (bool, string) {
			if f := store.Freshness(); f.LastCutError != "" {
				return false, "last cut failed: " + f.LastCutError
			}
			return true, ""
		})
	}

	srv := query.NewServerWithOptions(store, reg, query.ServerOptions{
		Logger: logger,
		Health: health,
	})
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal("listen failed", "addr", *listen, "err", err.Error())
	}
	// The test harness and operators read this record for the bound
	// address, so it goes out before ingest starts.
	logger.Info("listening", "addr", ln.Addr().String())
	hsrv := &http.Server{Handler: srv}
	go func() {
		if err := hsrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal("http serve failed", "err", err.Error())
		}
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
	shutdown := func(when string) {
		// Drain in-flight requests first so no response is cut off
		// mid-body, then take the final durable cut.
		sctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		if err := hsrv.Shutdown(sctx); err != nil {
			logger.Warn("http shutdown did not drain", "err", err.Error())
		}
		cancel()
		if dir != nil {
			seq, err := store.Checkpoint()
			if err != nil {
				fatal("final cut failed", "err", err.Error())
			}
			logger.Info("terminated", "when", when, "snapshots", dir.Path,
				"cut_seq", seq, "watermark", store.Watermark())
		} else {
			logger.Info("terminated", "when", when)
		}
		os.Exit(0)
	}

	rr := cdr.NewResilientReader(openInputs(inputs), ingest)
	if watermark > 0 {
		if err := cdr.Skip(rr, watermark); err != nil {
			fatal("tail replay skip failed", "skip", watermark, "err", err.Error())
		}
	}
	srv.SetReady(true)
	ingesting.Store(true)
	ingestSpan := trace.Start("ingest")

	var sinceCut int64
	for {
		select {
		case <-sigc:
			ingesting.Store(false)
			shutdown("terminated mid-ingest")
		default:
		}
		rec, err := rr.Read()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			fatal("ingest failed", "err", err.Error())
		}
		store.Add(rec)
		ingestSpan.AddRecords(1)
		sinceCut++
		if dir != nil && *snapEvery > 0 && sinceCut >= *snapEvery {
			// A periodic cut failure is survivable — serving continues
			// from memory — so it degrades /readyz (snapshot_cuts rule)
			// instead of killing the daemon.
			if _, err := store.Checkpoint(); err != nil {
				logger.Error("periodic cut failed", "err", err.Error())
			}
			sinceCut = 0
		}
	}
	ingesting.Store(false)
	ingestSpan.End()
	if dir != nil {
		if _, err := store.Checkpoint(); err != nil {
			logger.Error("cut at EOF failed", "err", err.Error())
		}
	}
	istats := rr.Stats()
	logger.Info("drained", "records", store.Watermark(), "quarantined", istats.QuarantinedTotal())

	<-sigc
	shutdown("terminated")
}

// openInputs concatenates the input files in argument order, picking
// each codec by extension. Files are opened lazily so a long replay
// does not hold every descriptor at once.
func openInputs(paths []string) cdr.Reader {
	readers := make([]cdr.Reader, len(paths))
	for i, path := range paths {
		readers[i] = &lazyFileReader{path: path}
	}
	return cdr.Concat(readers...)
}

type lazyFileReader struct {
	path string
	f    *os.File
	r    cdr.Reader
}

func (l *lazyFileReader) Read() (cdr.Record, error) {
	if l.r == nil {
		f, err := os.Open(l.path)
		if err != nil {
			return cdr.Record{}, err
		}
		l.f = f
		if strings.HasSuffix(l.path, ".csv") {
			l.r = cdr.NewCSVReader(f)
		} else {
			l.r = cdr.NewBinaryReader(f)
		}
	}
	rec, err := l.r.Read()
	if errors.Is(err, io.EOF) {
		l.f.Close()
	}
	return rec, err
}

// parseSpan parses a duration with the usual h/m/s suffixes plus an
// Nd day form, which time.ParseDuration lacks.
func parseSpan(s string) (time.Duration, error) {
	if n, ok := strings.CutSuffix(s, "d"); ok && !strings.ContainsAny(n, "hms") {
		days, err := time.ParseDuration(n + "h")
		if err != nil {
			return 0, fmt.Errorf("bad span %q", s)
		}
		return days * 24, nil
	}
	return time.ParseDuration(s)
}

func parseWindows(spec string) ([]query.Window, error) {
	var out []query.Window
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		span, err := parseSpan(tok)
		if err != nil {
			return nil, fmt.Errorf("window %q: %v", tok, err)
		}
		out = append(out, query.Window{Name: tok, Span: span})
	}
	if len(out) == 0 {
		return nil, errors.New("no windows")
	}
	return out, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
