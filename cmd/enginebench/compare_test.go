package main

import (
	"strings"
	"testing"
)

func benchRow(workers int, rps, spread float64, reps int) workerRun {
	secs := make([]float64, reps)
	for i := range secs {
		secs[i] = 1
	}
	return workerRun{Workers: workers, RecordsPerSec: rps, SpreadPct: spread, RepSeconds: secs, Valid: true}
}

func TestCompareRunsGatesOnNoise(t *testing.T) {
	base := []workerRun{benchRow(1, 1000, 4, 3), benchRow(4, 3000, 10, 3)}

	// 8% slower at workers=1: clears max(4,2)+5=9? No — 8 < 9, within gate.
	fresh := []workerRun{benchRow(1, 920, 2, 3), benchRow(4, 2900, 3, 3)}
	if regs, _ := compareRuns(base, fresh, 5); len(regs) != 0 {
		t.Fatalf("within-noise slowdown flagged: %+v", regs)
	}

	// 20% slower at workers=1 clears the 9%% gate; workers=4 is 3.3%
	// slower, within its 15% gate.
	fresh = []workerRun{benchRow(1, 800, 2, 3), benchRow(4, 2900, 3, 3)}
	regs, _ := compareRuns(base, fresh, 5)
	if len(regs) != 1 || regs[0].Workers != 1 {
		t.Fatalf("want one regression at workers=1, got %+v", regs)
	}
	if regs[0].SlowdownPct < 19.9 || regs[0].SlowdownPct > 20.1 {
		t.Fatalf("slowdown = %.2f%%, want ~20%%", regs[0].SlowdownPct)
	}
	if regs[0].GatePct != 9 {
		t.Fatalf("gate = %.2f%%, want 9%% (max(4,2)+5)", regs[0].GatePct)
	}

	// A noisy fresh run raises its own gate: 20% slower but 30% spread
	// on the fresh side is not a claim.
	noisy := []workerRun{benchRow(1, 800, 30, 3), benchRow(4, 3000, 3, 3)}
	if regs, _ := compareRuns(base, noisy, 5); len(regs) != 0 {
		t.Fatalf("slowdown within fresh spread flagged: %+v", regs)
	}
}

func TestCompareRunsSkipsUngatable(t *testing.T) {
	base := []workerRun{benchRow(1, 1000, 0, 1), benchRow(4, 3000, 5, 3)}
	fresh := []workerRun{benchRow(1, 500, 0, 1), benchRow(4, 1000, 2, 3)}
	regs, skipped := compareRuns(base, fresh, 5)
	if len(skipped) != 1 || skipped[0] != 1 {
		t.Fatalf("single-rep row not skipped: %v", skipped)
	}
	if len(regs) != 1 || regs[0].Workers != 4 {
		t.Fatalf("want regression at workers=4 only, got %+v", regs)
	}
	// Worker counts absent from the fresh run are ignored, not fatal.
	if regs, _ := compareRuns(base, fresh[:1], 5); len(regs) != 0 {
		t.Fatalf("missing fresh rows produced regressions: %+v", regs)
	}
}

func TestRenderMarkdown(t *testing.T) {
	res := result{
		Records: 50000, Reps: 3, GOMAXPROCS: 1, NumCPU: 1,
		Runs: []workerRun{
			{Workers: 1, Seconds: 2.0, RecordsPerSec: 25000, Speedup: 1, SpreadPct: 3.5, Valid: true},
			{Workers: 4, Seconds: 1.9, RecordsPerSec: 26315, Speedup: 1.05, SpreadPct: 13, Valid: false},
		},
		Checkpoint: &checkpointRun{Workers: 4, Every: 20000, Checkpoints: 2,
			SecondsOff: 2.0, SecondsOn: 2.2, OverheadPct: 10, SpreadPct: 4, Valid: true},
		Obs: &obsRun{Workers: 4, SecondsOff: 2.0, SecondsOn: 2.1, OverheadPct: 5, SpreadPct: 8, Valid: false},
	}
	md := renderMarkdown(res)
	for _, want := range []string{
		"| workers | best (s) | records/sec | speedup | spread |",
		"| 1 | 2.00 | 25000 | 1.00x | 3.5% |",
		"| 4 | 1.90 | 26315 | ~~1.05x~~ (noise) | 13.0% |",
		"Checkpointing every 20000 records (workers=4)",
		"overhead 10.0% (spread 4.0%, 2 checkpoints)",
		"overhead ~~5.0%~~ (noise) (spread 8.0%)",
		"50000 records, best of 3 reps, GOMAXPROCS 1, 1 CPUs.",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}
