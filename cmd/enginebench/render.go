package main

import (
	"fmt"
	"strings"
)

// renderMarkdown turns a BENCH_engine.json result into the Markdown
// tables embedded in the README's Results section. Invalid rows keep
// their numbers but are flagged, so a reader never mistakes noise for
// a measured effect.
func renderMarkdown(res result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d records, best of %d reps, GOMAXPROCS %d, %d CPUs.\n\n",
		res.Records, res.Reps, res.GOMAXPROCS, res.NumCPU)
	b.WriteString("| workers | best (s) | records/sec | speedup | spread |\n")
	b.WriteString("|--:|--:|--:|--:|--:|\n")
	for _, r := range res.Runs {
		fmt.Fprintf(&b, "| %d | %.2f | %.0f | %s | %.1f%% |\n",
			r.Workers, r.Seconds, r.RecordsPerSec, validCell(fmt.Sprintf("%.2fx", r.Speedup), r.Valid), r.SpreadPct)
	}
	if res.Checkpoint != nil {
		c := res.Checkpoint
		fmt.Fprintf(&b, "\nCheckpointing every %d records (workers=%d): %.2fs off vs %.2fs on, overhead %s (spread %.1f%%, %d checkpoints).\n",
			c.Every, c.Workers, c.SecondsOff, c.SecondsOn,
			validCell(fmt.Sprintf("%.1f%%", c.OverheadPct), c.Valid), c.SpreadPct, c.Checkpoints)
	}
	if res.Obs != nil {
		o := res.Obs
		fmt.Fprintf(&b, "\nObservability (workers=%d): %.2fs off vs %.2fs on, overhead %s (spread %.1f%%).\n",
			o.Workers, o.SecondsOff, o.SecondsOn,
			validCell(fmt.Sprintf("%.1f%%", o.OverheadPct), o.Valid), o.SpreadPct)
	}
	return b.String()
}

// validCell renders a claimed effect, striking it through with a
// marker when the measurement did not clear its noise floor.
func validCell(s string, valid bool) string {
	if valid {
		return s
	}
	return "~~" + s + "~~ (noise)"
}
