// Command enginebench measures the sharded analysis engine's
// throughput and parallel speedup, writing the results as JSON for
// the repo's benchmark record (BENCH_engine.json).
//
// It generates a deterministic ~1M-record workload, runs the full
// engine at each requested worker count (best of -reps timed runs),
// verifies that every parallel report is bit-identical to the
// sequential one, and reports records/sec plus the speedup over
// workers=1. GOMAXPROCS and NumCPU are recorded so a speedup (or its
// absence) can be read against the hardware that produced it.
//
// Every section records its per-rep wall times and their spread — the
// noise floor — and carries a "valid" flag that is false when the
// claimed effect (speedup delta, overhead) does not clear that floor,
// when fewer than two reps were run, or when the sign is implausible
// (a negative checkpoint or instrumentation overhead means the
// baseline drifted between phases, not that writing snapshots made
// the engine faster). Downstream consumers must treat invalid
// sections as "measurement inconclusive", not as results.
//
// It also measures the cost of durable state: the checkpointing
// dispatcher run with snapshot writes off versus every -ckpt-every
// records, reported as an overhead percentage.
//
//	enginebench -records 1000000 -workers 1,4,8 -out BENCH_engine.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand/v2"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"cellcars/internal/analysis"
	"cellcars/internal/cdr"
	"cellcars/internal/clean"
	"cellcars/internal/obs"
	"cellcars/internal/radio"
	"cellcars/internal/simtime"
)

func main() {
	var (
		n          = flag.Int("records", 1_000_000, "workload size in records")
		reps       = flag.Int("reps", 3, "timed runs per worker count (best is kept)")
		workers    = flag.String("workers", "1,4,8", "comma-separated worker counts (first must be 1 for the speedup baseline)")
		ckptEvery  = flag.Int64("ckpt-every", 100_000, "checkpoint interval for the overhead measurement (0 skips it)")
		out        = flag.String("out", "BENCH_engine.json", "output JSON file")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the benchmark to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile (after a final GC) to this file")
		basePath   = flag.String("baseline", "", "regression mode: re-run the baseline file's workload and exit 1 when throughput regressed beyond noise (skips when the hardware differs)")
		floor      = flag.Float64("regress-floor", 5, "with -baseline: extra slowdown %% tolerated on top of the rep-spread noise gate")
		mdOut      = flag.Bool("md", false, "render the JSON at -out as a Markdown table on stdout and exit (no benchmark run)")
	)
	flag.Parse()

	if *mdOut {
		buf, err := os.ReadFile(*out)
		if err != nil {
			fatal("read %s: %v", *out, err)
		}
		var res result
		if err := json.Unmarshal(buf, &res); err != nil {
			fatal("parse %s: %v", *out, err)
		}
		fmt.Print(renderMarkdown(res))
		return
	}
	if *basePath != "" {
		os.Exit(runRegress(*basePath, *floor))
	}

	counts, err := parseWorkers(*workers)
	if err != nil {
		fatal("%v", err)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal("create %s: %v", *cpuprofile, err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal("start cpu profile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}

	fmt.Printf("generating %d records...\n", *n)
	records := genWorkload(*n)
	ctx := benchContext()
	opts := analysis.RunOptions{BusyCells: benchBusyCells(), Seed: 1, RareDays: []int{2, 5}}

	res := result{
		Records:    len(records),
		Reps:       *reps,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}

	runs, baseline, err := runWorkerBench(records, ctx, opts, counts, *reps)
	if err != nil {
		fatal("%v", err)
	}
	res.Runs = runs

	if *ckptEvery > 0 {
		cr, err := benchCheckpoint(records, ctx, opts, counts[len(counts)-1], *reps, *ckptEvery, baseline)
		if err != nil {
			fatal("checkpoint bench: %v", err)
		}
		res.Checkpoint = cr
		fmt.Printf("checkpointing every %d records (workers=%d): %.2fs off vs %.2fs on, overhead %.1f%% (spread %.1f%%, %d checkpoints)%s\n",
			cr.Every, cr.Workers, cr.SecondsOff, cr.SecondsOn, cr.OverheadPct, cr.SpreadPct, cr.Checkpoints, validNote(cr.Valid))
	}

	lastW := counts[len(counts)-1]
	lastRun := res.Runs[len(res.Runs)-1]
	or, err := benchObs(records, ctx, opts, lastW, *reps, lastRun.RepSeconds, baseline)
	if err != nil {
		fatal("obs bench: %v", err)
	}
	res.Obs = or
	fmt.Printf("observability (workers=%d): %.2fs off vs %.2fs on, overhead %.1f%% (spread %.1f%%)%s\n",
		lastW, or.SecondsOff, or.SecondsOn, or.OverheadPct, or.SpreadPct, validNote(or.Valid))

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal("create %s: %v", *memprofile, err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal("write heap profile: %v", err)
		}
		if err := f.Close(); err != nil {
			fatal("close %s: %v", *memprofile, err)
		}
	}

	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fatal("marshal: %v", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal("write %s: %v", *out, err)
	}
	fmt.Printf("wrote %s\n", *out)
}

// runWorkerBench runs the full engine at each worker count (best of
// reps timed runs), verifying every parallel report bit-identical to
// the sequential one, and returns the result rows plus the sequential
// report (the baseline the overhead sections verify against).
func runWorkerBench(records []cdr.Record, ctx analysis.Context, opts analysis.RunOptions,
	counts []int, reps int) ([]workerRun, *analysis.Report, error) {
	var runs []workerRun
	var baseline *analysis.Report
	var baseSec float64
	var baseReps []float64
	for _, w := range counts {
		e := analysis.NewEngine(ctx, analysis.EngineOptions{RunOptions: opts, Workers: w})
		best := 0.0
		repSecs := make([]float64, 0, reps)
		var rep *analysis.Report
		var err error
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			rep, err = e.Run(records)
			sec := time.Since(t0).Seconds()
			if err != nil {
				return nil, nil, fmt.Errorf("workers=%d: %w", w, err)
			}
			repSecs = append(repSecs, sec)
			if best == 0 || sec < best {
				best = sec
			}
		}
		if len(rep.StageErrors) != 0 {
			return nil, nil, fmt.Errorf("workers=%d: stage errors: %+v", w, rep.StageErrors)
		}
		if baseline == nil {
			baseline, baseSec, baseReps = rep, best, repSecs
		} else if !reflect.DeepEqual(baseline, rep) {
			return nil, nil, fmt.Errorf("workers=%d: report differs from workers=%d — determinism broken", w, counts[0])
		}
		run := workerRun{
			Workers:       w,
			Seconds:       round3(best),
			RepSeconds:    roundAll(repSecs),
			SpreadPct:     round3(spreadPct(repSecs)),
			RecordsPerSec: round3(float64(len(records)) / best),
			Speedup:       round3(baseSec / best),
		}
		// The speedup claim must clear the noise of both the run it is
		// made from and the baseline it is made against. The workers=1
		// row claims nothing beyond its own timing, so only the
		// reps>=2 requirement applies.
		noise := max(spreadPct(repSecs), spreadPct(baseReps))
		effect := math.Abs(run.Speedup-1) * 100
		run.Valid = reps >= 2 && (w == 1 || effect > noise)
		runs = append(runs, run)
		fmt.Printf("workers=%d: %.2fs, %.0f records/sec, speedup %.2fx (spread %.1f%%)%s\n",
			w, run.Seconds, run.RecordsPerSec, run.Speedup, run.SpreadPct, validNote(run.Valid))
	}
	return runs, baseline, nil
}

// result is the BENCH_engine.json schema.
type result struct {
	Records    int            `json:"records"`
	Reps       int            `json:"reps"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	NumCPU     int            `json:"numcpu"`
	Runs       []workerRun    `json:"runs"`
	Checkpoint *checkpointRun `json:"checkpoint,omitempty"`
	Obs        *obsRun        `json:"obs,omitempty"`
}

type workerRun struct {
	Workers       int       `json:"workers"`
	Seconds       float64   `json:"seconds"`
	RepSeconds    []float64 `json:"rep_seconds"`
	SpreadPct     float64   `json:"spread_pct"`
	RecordsPerSec float64   `json:"records_per_sec"`
	Speedup       float64   `json:"speedup_vs_sequential"`
	Valid         bool      `json:"valid"`
}

// checkpointRun records the cost of durable state: the same
// checkpointing dispatcher run with snapshot writes off and on, so the
// delta is the checkpoint cost alone, not the dispatcher's.
type checkpointRun struct {
	Workers          int       `json:"workers"`
	Every            int64     `json:"every_records"`
	Checkpoints      int64     `json:"checkpoints_written"`
	SecondsOff       float64   `json:"seconds_off"`
	SecondsOn        float64   `json:"seconds_on"`
	RepSecondsOff    []float64 `json:"rep_seconds_off"`
	RepSecondsOn     []float64 `json:"rep_seconds_on"`
	SpreadPct        float64   `json:"spread_pct"`
	RecordsPerSecOff float64   `json:"records_per_sec_off"`
	RecordsPerSecOn  float64   `json:"records_per_sec_on"`
	OverheadPct      float64   `json:"overhead_pct"`
	Valid            bool      `json:"valid"`
}

// obsRun records the cost of the observability layer: the same engine
// run with no registry (seconds_off, reusing the plain run's reps at
// the same worker count) versus a fresh registry per rep (seconds_on),
// plus the per-stage cost table of the instrumented run.
type obsRun struct {
	Workers     int           `json:"workers"`
	SecondsOff  float64       `json:"seconds_off"`
	SecondsOn   float64       `json:"seconds_on"`
	RepSeconds  []float64     `json:"rep_seconds"`
	SpreadPct   float64       `json:"spread_pct"`
	OverheadPct float64       `json:"overhead_pct"`
	Valid       bool          `json:"valid"`
	Stages      []stageTiming `json:"stages"`
}

type stageTiming struct {
	Stage           string  `json:"stage"`
	Records         int64   `json:"records"`
	Batches         int64   `json:"batches"`
	AddSeconds      float64 `json:"add_seconds"`
	MergeSeconds    float64 `json:"merge_seconds"`
	FinalizeSeconds float64 `json:"finalize_seconds"`
}

// benchObs measures instrumentation overhead: best-of-reps wall time
// of the engine with a metrics registry attached, against the plain
// run's best at the same worker count. Each rep gets a fresh registry
// (counters are cumulative), and the report — with its deliberately
// non-deterministic Profile cleared — must stay bit-identical to the
// uninstrumented baseline.
func benchObs(records []cdr.Record, ctx analysis.Context, opts analysis.RunOptions,
	workers, reps int, offReps []float64, baseline *analysis.Report) (*obsRun, error) {
	best := 0.0
	onReps := make([]float64, 0, reps)
	var profile []analysis.StageProfile
	for r := 0; r < reps; r++ {
		iopts := opts
		iopts.Obs = obs.New()
		e := analysis.NewEngine(ctx, analysis.EngineOptions{RunOptions: iopts, Workers: workers})
		t0 := time.Now()
		rep, err := e.Run(records)
		sec := time.Since(t0).Seconds()
		if err != nil {
			return nil, err
		}
		prof := rep.Profile
		rep.Profile = nil
		if !reflect.DeepEqual(baseline, rep) {
			return nil, fmt.Errorf("instrumented report differs from baseline — observability must not change results")
		}
		onReps = append(onReps, sec)
		if best == 0 || sec < best {
			best, profile = sec, prof
		}
	}
	secondsOff := minOf(offReps)
	overhead := (best - secondsOff) / secondsOff * 100
	noise := max(spreadPct(onReps), spreadPct(offReps))
	or := &obsRun{
		Workers:     workers,
		SecondsOff:  round3(secondsOff),
		SecondsOn:   round3(best),
		RepSeconds:  roundAll(onReps),
		SpreadPct:   round3(noise),
		OverheadPct: round3(overhead),
		// Instrumentation cannot make the engine faster: a negative
		// overhead means the uninstrumented phase drifted, so the sign
		// check rejects it even when it clears the spread.
		Valid: reps >= 2 && overhead > 0 && overhead > noise,
	}
	for _, p := range profile {
		or.Stages = append(or.Stages, stageTiming{
			Stage:           p.Stage,
			Records:         p.Records,
			Batches:         p.Batches,
			AddSeconds:      round3(p.AddSeconds),
			MergeSeconds:    round3(p.MergeSeconds),
			FinalizeSeconds: round3(p.FinalizeSeconds),
		})
	}
	return or, nil
}

// benchCheckpoint measures checkpointing overhead: best-of-reps wall
// time of RunReaderCheckpointed with no snapshot path versus writing a
// snapshot every `every` records, both verified bit-identical to the
// in-memory baseline report.
func benchCheckpoint(records []cdr.Record, ctx analysis.Context, opts analysis.RunOptions,
	workers, reps int, every int64, baseline *analysis.Report) (*checkpointRun, error) {
	dir, err := os.MkdirTemp("", "enginebench-ckpt-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "ckpt.snap")

	e := analysis.NewEngine(ctx, analysis.EngineOptions{RunOptions: opts, Workers: workers})
	measure := func(cfg analysis.CheckpointConfig) (float64, []float64, error) {
		best := 0.0
		repSecs := make([]float64, 0, reps)
		for r := 0; r < reps; r++ {
			os.Remove(path)
			t0 := time.Now()
			rep, err := e.RunReaderCheckpointed(cdr.NewSliceReader(records), cfg)
			sec := time.Since(t0).Seconds()
			if err != nil {
				return 0, nil, err
			}
			if !reflect.DeepEqual(baseline, rep) {
				return 0, nil, fmt.Errorf("checkpointed report differs from baseline — determinism broken")
			}
			repSecs = append(repSecs, sec)
			if best == 0 || sec < best {
				best = sec
			}
		}
		return best, repSecs, nil
	}

	off, offReps, err := measure(analysis.CheckpointConfig{})
	if err != nil {
		return nil, fmt.Errorf("checkpoints off: %w", err)
	}
	on, onReps, err := measure(analysis.CheckpointConfig{Path: path, Every: every})
	if err != nil {
		return nil, fmt.Errorf("checkpoints on: %w", err)
	}
	overhead := (on - off) / off * 100
	noise := max(spreadPct(offReps), spreadPct(onReps))
	return &checkpointRun{
		Workers:          workers,
		Every:            every,
		Checkpoints:      int64(len(records)) / every,
		SecondsOff:       round3(off),
		SecondsOn:        round3(on),
		RepSecondsOff:    roundAll(offReps),
		RepSecondsOn:     roundAll(onReps),
		SpreadPct:        round3(noise),
		RecordsPerSecOff: round3(float64(len(records)) / off),
		RecordsPerSecOn:  round3(float64(len(records)) / on),
		OverheadPct:      round3(overhead),
		// Same sign check as the obs section: snapshot writes cannot
		// speed the dispatcher up.
		Valid: reps >= 2 && overhead > 0 && overhead > noise,
	}, nil
}

// genWorkload builds the deterministic benchmark stream: 4000 cars
// over a 14-day window across 300 stations, sorted by start time as a
// real CDR feed would be, with a sprinkle of ghosts and out-of-period
// records so the ingest filters run too.
func genWorkload(n int) []cdr.Record {
	rng := rand.New(rand.NewPCG(2017, 1))
	start := time.Date(2017, 1, 2, 0, 0, 0, 0, time.UTC)
	records := make([]cdr.Record, 0, n)
	for i := 0; i < n; i++ {
		dur := time.Duration(5+rng.Uint64N(1200)) * time.Second
		off := time.Duration(rng.Uint64N(14*24*3600)) * time.Second
		switch i % 211 {
		case 13:
			dur = clean.GhostDuration
		case 29:
			off = -time.Duration(1+rng.Uint64N(24*3600)) * time.Second
		}
		records = append(records, cdr.Record{
			Car: cdr.CarID(rng.Uint64N(4000)),
			Cell: radio.MakeCellKey(
				radio.BSID(rng.Uint64N(300)),
				radio.SectorID(rng.Uint64N(3)),
				radio.C1+radio.CarrierID(rng.Uint64N(uint64(radio.NumCarriers)))),
			Start:    start.Add(off),
			Duration: dur,
		})
	}
	sort.SliceStable(records, func(i, j int) bool {
		return records[i].Start.Before(records[j].Start)
	})
	return records
}

func benchContext() analysis.Context {
	return analysis.Context{
		Period:          simtime.NewPeriod(time.Date(2017, 1, 2, 0, 0, 0, 0, time.UTC), 14),
		Load:            hashLoad{},
		TZOffsetSeconds: -5 * 3600,
	}
}

func benchBusyCells() []radio.CellKey {
	return []radio.CellKey{
		radio.MakeCellKey(3, 0, radio.C1),
		radio.MakeCellKey(7, 1, radio.C2),
		radio.MakeCellKey(11, 0, radio.C3),
		radio.MakeCellKey(13, 2, radio.C4),
	}
}

// hashLoad is a cheap deterministic load source: utilization is a hash
// of (cell, bin), so the busy-time stages do real work without the
// synthetic load model's cost dominating the measurement.
type hashLoad struct{}

func (hashLoad) Utilization(cell radio.CellKey, bin int) float64 {
	h := uint64(cell)*0x9E3779B97F4A7C15 + uint64(bin)*0xBF58476D1CE4E5B9
	h ^= h >> 31
	return float64(h%1000) / 1000
}

func (hashLoad) BusyThreshold() float64 { return 0.80 }

func parseWorkers(s string) ([]int, error) {
	var counts []int
	for _, part := range strings.Split(s, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad -workers entry %q", part)
		}
		counts = append(counts, w)
	}
	if len(counts) == 0 || counts[0] != 1 {
		return nil, fmt.Errorf("-workers must start with 1 (the speedup baseline), got %q", s)
	}
	return counts, nil
}

func round3(x float64) float64 {
	f, _ := strconv.ParseFloat(strconv.FormatFloat(x, 'f', 3, 64), 64)
	return f
}

func roundAll(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = round3(x)
	}
	return out
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		m = min(m, x)
	}
	return m
}

// spreadPct is the best-to-worst spread of the rep wall times as a
// percentage of the best: (max-min)/min*100. It is the noise floor a
// measured effect must clear before the section is marked valid.
func spreadPct(reps []float64) float64 {
	if len(reps) < 2 {
		return 0
	}
	lo, hi := reps[0], reps[0]
	for _, s := range reps[1:] {
		lo, hi = min(lo, s), max(hi, s)
	}
	if lo <= 0 {
		return 0
	}
	return (hi - lo) / lo * 100
}

func validNote(valid bool) string {
	if valid {
		return ""
	}
	return "  [INVALID: effect within noise]"
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "enginebench: "+format+"\n", args...)
	os.Exit(1)
}
