package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"cellcars/internal/analysis"
)

// Regression mode (-baseline): re-run the committed baseline's exact
// workload — record count, rep count and worker ladder all come from
// the baseline file, never from flags — and fail when fresh throughput
// falls short by more than the noise either measurement carries.
//
// The gate for each worker count is
//
//	max(baseline spread, fresh spread) + floor
//
// in percent: a slowdown claim, like the speedup claims in the main
// benchmark, must clear the rep-to-rep spread of BOTH runs before it
// means anything, and the floor adds slack for cross-run drift that
// within-run spread cannot see. Comparisons are only meaningful on the
// hardware that produced the baseline, so a GOMAXPROCS or NumCPU
// mismatch skips the check (exit 0 with a warning) instead of failing
// CI on every laptop.

// regression is one worker count whose fresh throughput fell beyond
// the noise gate.
type regression struct {
	Workers     int
	BaseRPS     float64
	FreshRPS    float64
	SlowdownPct float64
	GatePct     float64
}

// compareRuns matches fresh rows to baseline rows by worker count and
// returns the regressions. Rows with fewer than two reps on either
// side are skipped (no spread, no gate) and reported in skipped.
func compareRuns(base, fresh []workerRun, floorPct float64) (regs []regression, skipped []int) {
	freshBy := make(map[int]workerRun, len(fresh))
	for _, f := range fresh {
		freshBy[f.Workers] = f
	}
	for _, b := range base {
		f, ok := freshBy[b.Workers]
		if !ok {
			continue
		}
		if len(b.RepSeconds) < 2 || len(f.RepSeconds) < 2 {
			skipped = append(skipped, b.Workers)
			continue
		}
		if b.RecordsPerSec <= 0 {
			skipped = append(skipped, b.Workers)
			continue
		}
		slowdown := (b.RecordsPerSec - f.RecordsPerSec) / b.RecordsPerSec * 100
		gate := max(b.SpreadPct, f.SpreadPct) + floorPct
		if slowdown > gate {
			regs = append(regs, regression{
				Workers:     b.Workers,
				BaseRPS:     b.RecordsPerSec,
				FreshRPS:    f.RecordsPerSec,
				SlowdownPct: slowdown,
				GatePct:     gate,
			})
		}
	}
	return regs, skipped
}

// runRegress is the -baseline entry point; it returns the process
// exit code.
func runRegress(path string, floorPct float64) int {
	buf, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "enginebench: read baseline: %v\n", err)
		return 1
	}
	var base result
	if err := json.Unmarshal(buf, &base); err != nil {
		fmt.Fprintf(os.Stderr, "enginebench: parse baseline %s: %v\n", path, err)
		return 1
	}
	if len(base.Runs) == 0 || base.Records <= 0 {
		fmt.Fprintf(os.Stderr, "enginebench: baseline %s has no runs\n", path)
		return 1
	}
	if g, c := runtime.GOMAXPROCS(0), runtime.NumCPU(); g != base.GOMAXPROCS || c != base.NumCPU {
		fmt.Printf("enginebench: SKIP regression check: baseline was measured on gomaxprocs=%d numcpu=%d, this host is gomaxprocs=%d numcpu=%d\n",
			base.GOMAXPROCS, base.NumCPU, g, c)
		return 0
	}

	counts := make([]int, 0, len(base.Runs))
	for _, r := range base.Runs {
		counts = append(counts, r.Workers)
	}
	fmt.Printf("regression check against %s: %d records, %d reps, workers %v, floor %.1f%%\n",
		path, base.Records, base.Reps, counts, floorPct)

	records := genWorkload(base.Records)
	ctx := benchContext()
	opts := analysis.RunOptions{BusyCells: benchBusyCells(), Seed: 1, RareDays: []int{2, 5}}
	fresh, _, err := runWorkerBench(records, ctx, opts, counts, base.Reps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "enginebench: %v\n", err)
		return 1
	}

	regs, skipped := compareRuns(base.Runs, fresh, floorPct)
	for _, w := range skipped {
		fmt.Printf("workers=%d: skipped (needs >=2 reps on both sides for a noise gate)\n", w)
	}
	if len(regs) == 0 {
		fmt.Println("no regression: fresh throughput within noise of the baseline")
		return 0
	}
	for _, r := range regs {
		fmt.Fprintf(os.Stderr, "REGRESSION workers=%d: %.0f records/sec vs baseline %.0f (%.1f%% slower, gate %.1f%%)\n",
			r.Workers, r.FreshRPS, r.BaseRPS, r.SlowdownPct, r.GatePct)
	}
	return 1
}
