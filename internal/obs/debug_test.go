package obs

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDebugServer(t *testing.T) {
	reg := New()
	reg.Counter("cellcars_ingest_records_total").Add(7)

	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("GET %s: read body: %v", path, err)
		}
		return resp, string(body)
	}

	resp, body := get("/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	if !strings.Contains(body, "# TYPE cellcars_ingest_records_total counter") ||
		!strings.Contains(body, "cellcars_ingest_records_total 7") {
		t.Fatalf("/metrics body missing the counter:\n%s", body)
	}

	resp, _ = get("/debug/pprof/")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", resp.StatusCode)
	}

	resp, body = get("/debug/vars")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/vars status %d", resp.StatusCode)
	}
	if !strings.Contains(body, `"cellcars_obs_metrics"`) {
		t.Fatalf("/debug/vars missing cellcars_obs_metrics:\n%s", body)
	}

	resp, body = get("/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Fatalf("index page: status %d body %q", resp.StatusCode, body)
	}
	resp, _ = get("/nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/nope status %d, want 404", resp.StatusCode)
	}
}

// TestDebugServerGracefulClose pins the shutdown contract: Close must
// drain an in-flight request (here a 1-second pprof execution trace)
// instead of hard-closing its connection mid-response.
func TestDebugServerGracefulClose(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", New())
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	var (
		wg       sync.WaitGroup
		status   int
		getErr   error
		bodySize int
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(started)
		resp, err := http.Get("http://" + srv.Addr() + "/debug/pprof/trace?seconds=1")
		if err != nil {
			getErr = err
			return
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			getErr = err
			return
		}
		status, bodySize = resp.StatusCode, len(body)
	}()
	<-started
	time.Sleep(200 * time.Millisecond) // let the trace request reach the handler
	t0 := time.Now()
	if err := srv.Close(); err != nil {
		t.Fatalf("graceful close: %v", err)
	}
	wg.Wait()
	if getErr != nil {
		t.Fatalf("in-flight request was cut off by Close: %v", getErr)
	}
	if status != http.StatusOK || bodySize == 0 {
		t.Fatalf("in-flight request: status %d, %d bytes; want a complete 200", status, bodySize)
	}
	if waited := time.Since(t0); waited < 500*time.Millisecond {
		t.Fatalf("Close returned after %v; it cannot have drained the 1s trace", waited)
	}
}
