package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestDebugServer(t *testing.T) {
	reg := New()
	reg.Counter("cellcars_ingest_records_total").Add(7)

	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("GET %s: read body: %v", path, err)
		}
		return resp, string(body)
	}

	resp, body := get("/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	if !strings.Contains(body, "# TYPE cellcars_ingest_records_total counter") ||
		!strings.Contains(body, "cellcars_ingest_records_total 7") {
		t.Fatalf("/metrics body missing the counter:\n%s", body)
	}

	resp, _ = get("/debug/pprof/")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", resp.StatusCode)
	}

	resp, body = get("/debug/vars")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/vars status %d", resp.StatusCode)
	}
	if !strings.Contains(body, `"cellcars_obs_metrics"`) {
		t.Fatalf("/debug/vars missing cellcars_obs_metrics:\n%s", body)
	}

	resp, body = get("/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Fatalf("index page: status %d body %q", resp.StatusCode, body)
	}
	resp, _ = get("/nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/nope status %d, want 404", resp.StatusCode)
	}
}
