package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress prints periodic throughput lines for a long run:
//
//	progress: 420000/1000000 records (42.0%) | 812345 rec/s | ETA 1s
//
// The current count comes from a caller-supplied function — typically
// a closure over registry counters, so the reporter observes the
// pipeline without the pipeline knowing about it. With an unknown
// total (pass 0) the percentage and ETA are omitted. Start launches
// the ticker goroutine; Stop (idempotent) halts it and prints a final
// line.
type Progress struct {
	w        io.Writer
	unit     string
	interval time.Duration
	total    int64
	current  func() int64

	start time.Time
	lastN int64
	lastT time.Time

	once sync.Once
	stop chan struct{}
	done chan struct{}
}

// NewProgress builds a reporter. unit names the counted thing
// ("records"); interval is the line period (values below 100ms are
// clamped to 100ms); total may be 0 when unknown; current returns the
// cumulative count so far and must be safe to call from another
// goroutine.
func NewProgress(w io.Writer, unit string, interval time.Duration, total int64, current func() int64) *Progress {
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	now := time.Now()
	return &Progress{
		w: w, unit: unit, interval: interval, total: total, current: current,
		start: now, lastT: now,
		stop: make(chan struct{}), done: make(chan struct{}),
	}
}

// Start launches the reporting goroutine.
func (p *Progress) Start() {
	go func() {
		defer close(p.done)
		tick := time.NewTicker(p.interval)
		defer tick.Stop()
		for {
			select {
			case <-p.stop:
				return
			case now := <-tick.C:
				p.Report(now)
			}
		}
	}()
}

// Stop halts the ticker and prints a final line. Safe to call more
// than once.
func (p *Progress) Stop() {
	p.once.Do(func() {
		close(p.stop)
		<-p.done
		p.Report(time.Now())
	})
}

// Report prints one progress line for the given instant. Exposed so
// tests (and synchronous callers) can drive the reporter without the
// ticker.
func (p *Progress) Report(now time.Time) {
	n := p.current()
	var rate float64
	if dt := now.Sub(p.lastT).Seconds(); dt > 0 {
		rate = float64(n-p.lastN) / dt
	}
	p.lastN, p.lastT = n, now

	var b []byte
	if p.total > 0 {
		b = fmt.Appendf(b, "progress: %d/%d %s (%.1f%%) | %.0f %s/s",
			n, p.total, p.unit, float64(n)/float64(p.total)*100, rate, shortUnit(p.unit))
		if rate > 0 && n < p.total {
			eta := time.Duration(float64(p.total-n) / rate * float64(time.Second))
			b = fmt.Appendf(b, " | ETA %s", eta.Round(time.Second))
		}
	} else {
		b = fmt.Appendf(b, "progress: %d %s | %.0f %s/s", n, p.unit, rate, shortUnit(p.unit))
	}
	b = append(b, '\n')
	p.w.Write(b)
}

// shortUnit abbreviates a plural unit for the rate ("records" →
// "rec").
func shortUnit(unit string) string {
	if len(unit) > 3 {
		return unit[:3]
	}
	return unit
}
