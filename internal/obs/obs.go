// Package obs is the pipeline's observability substrate: a
// dependency-free, concurrency-safe metrics registry (counters,
// gauges, callback gauges, timing histograms), lightweight span
// tracing to a JSONL run trace, a throughput/ETA progress reporter,
// structured JSON logging with run/request correlation ids (NewLogger,
// Instrument), a named health-rule evaluator for readiness probes
// (Health), and an optional debug HTTP server exposing net/http/pprof,
// expvar, and a Prometheus-text /metrics endpoint.
//
// Every handle type is nil-safe: methods on a nil *Registry, *Counter,
// *Gauge, *Timing, *Trace or *Span are no-ops, so instrumented code
// needs no "is observability on?" branches — passing a nil registry
// turns the whole layer off.
//
// Metric names follow the convention cellcars_<area>_<name>
// (lower-case, underscore-separated, at least an area and a name after
// the cellcars prefix); Registry constructors panic on names that do
// not conform, and timing metrics must additionally end in _seconds so
// their Prometheus summary rendering is unit-correct. Labels
// discriminate within a metric (stage="presence", class="bad-field",
// worker="3") and are part of the metric identity.
package obs

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cellcars/internal/stats"
)

// nameRE is the documented metric-name convention:
// cellcars_<area>_<name>, with optional further underscore-separated
// words.
var nameRE = regexp.MustCompile(`^cellcars(_[a-z][a-z0-9]*){2,}$`)

// labelKeyRE constrains label keys to Prometheus-safe identifiers.
var labelKeyRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// ValidName reports whether a metric name follows the
// cellcars_<area>_<name> convention.
func ValidName(name string) bool { return nameRE.MatchString(name) }

// Label is one key=value dimension of a metric. Labels are part of a
// metric's identity: the same name with different labels is a
// different time series.
type Label struct {
	Key, Value string
}

// metricID renders the canonical identity of a metric: its name plus
// its labels sorted by key, in Prometheus exposition syntax.
func metricID(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// checkMetric panics on a name or label that violates the conventions;
// both indicate an instrumentation bug, not a data condition.
func checkMetric(name string, labels []Label) {
	if !ValidName(name) {
		panic(fmt.Sprintf("obs: metric name %q does not match cellcars_<area>_<name>", name))
	}
	for _, l := range labels {
		if !labelKeyRE.MatchString(l.Key) {
			panic(fmt.Sprintf("obs: metric %s label key %q invalid", name, l.Key))
		}
		if strings.ContainsAny(l.Value, "\"\n\\") {
			panic(fmt.Sprintf("obs: metric %s label %s value %q contains quote/backslash/newline", name, l.Key, l.Value))
		}
	}
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. Negative deltas panic: a counter only goes up.
func (c *Counter) Add(n int64) {
	if c == nil || n == 0 {
		return
	}
	if n < 0 {
		panic(fmt.Sprintf("obs: counter decremented by %d", n))
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 instantaneous value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores x.
func (g *Gauge) Set(x float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(x))
}

// Add shifts the gauge by d (negative deltas allowed) — the natural
// operation for level gauges like in-flight request counts.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Timing accumulates wall-time observations: exact count, sum, min and
// max, plus a logarithmic histogram (stats.LogHist over milliseconds,
// ~7% relative bin width) for quantiles.
type Timing struct {
	mu    sync.Mutex
	count int64
	sum   float64 // seconds
	min   float64 // seconds
	max   float64 // seconds
	hist  stats.LogHist
}

// Observe records one duration.
func (t *Timing) Observe(d time.Duration) {
	if t == nil {
		return
	}
	s := d.Seconds()
	t.mu.Lock()
	t.count++
	t.sum += s
	if t.count == 1 || s < t.min {
		t.min = s
	}
	if s > t.max {
		t.max = s
	}
	t.hist.Add(s * 1000)
	t.mu.Unlock()
}

// Count returns the number of observations.
func (t *Timing) Count() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}

// Sum returns the total observed seconds.
func (t *Timing) Sum() float64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sum
}

// Quantile returns the approximate q-quantile in seconds (one log-bin
// width of error; see stats.LogHist).
func (t *Timing) Quantile(q float64) float64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.hist.Quantile(q) / 1000
}

// value snapshots the timing under its lock.
func (t *Timing) value() TimingValue {
	t.mu.Lock()
	defer t.mu.Unlock()
	return TimingValue{
		Count: t.count,
		Sum:   t.sum,
		Min:   t.min,
		Max:   t.max,
		P50:   t.hist.Quantile(0.5) / 1000,
		P99:   t.hist.Quantile(0.99) / 1000,
	}
}

// Registry is a named, labeled collection of metrics. Get-or-create
// accessors make call sites self-registering; the same (name, labels)
// pair always returns the same metric, so instrumented layers running
// in parallel workers share series naturally.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*counterEntry
	gauges   map[string]*gaugeEntry
	gaugefns map[string]*gaugeFnEntry
	timings  map[string]*timingEntry
}

type counterEntry struct {
	name   string
	labels []Label
	c      *Counter
}

type gaugeEntry struct {
	name   string
	labels []Label
	g      *Gauge
}

type gaugeFnEntry struct {
	name   string
	labels []Label
	fn     func() float64
}

type timingEntry struct {
	name   string
	labels []Label
	t      *Timing
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*counterEntry),
		gauges:   make(map[string]*gaugeEntry),
		gaugefns: make(map[string]*gaugeFnEntry),
		timings:  make(map[string]*timingEntry),
	}
}

// Counter returns the counter with this name and label set, creating
// it on first use. A nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	checkMetric(name, labels)
	id := metricID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.counters[id]
	if !ok {
		r.checkKind(id, "counter")
		e = &counterEntry{name: name, labels: canonLabels(labels), c: &Counter{}}
		r.counters[id] = e
	}
	return e.c
}

// Gauge returns the gauge with this name and label set, creating it on
// first use. A nil registry returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	checkMetric(name, labels)
	id := metricID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.gauges[id]
	if !ok {
		r.checkKind(id, "gauge")
		e = &gaugeEntry{name: name, labels: canonLabels(labels), g: &Gauge{}}
		r.gauges[id] = e
	}
	return e.g
}

// GaugeFunc registers a callback gauge: fn is evaluated at every
// Snapshot (and hence every /metrics scrape), which is the right shape
// for derived instantaneous values like "seconds since the last
// ingested record" — ages advance between scrapes without anyone
// ticking a Set loop. Re-registering the same (name, labels) replaces
// the callback; the last registration wins. fn must be safe to call
// from any goroutine and must not call back into this registry.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...Label) {
	if r == nil || fn == nil {
		return
	}
	checkMetric(name, labels)
	id := metricID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkKind(id, "gaugefn")
	r.gaugefns[id] = &gaugeFnEntry{name: name, labels: canonLabels(labels), fn: fn}
}

// Timing returns the timing with this name and label set, creating it
// on first use. Timing names must end in _seconds. A nil registry
// returns a nil (no-op) timing.
func (r *Registry) Timing(name string, labels ...Label) *Timing {
	if r == nil {
		return nil
	}
	checkMetric(name, labels)
	if !strings.HasSuffix(name, "_seconds") {
		panic(fmt.Sprintf("obs: timing metric %q must end in _seconds", name))
	}
	id := metricID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.timings[id]
	if !ok {
		r.checkKind(id, "timing")
		e = &timingEntry{name: name, labels: canonLabels(labels), t: &Timing{}}
		r.timings[id] = e
	}
	return e.t
}

// checkKind panics when one id is registered under two metric kinds —
// an instrumentation bug that would corrupt rendering. Caller holds
// r.mu.
func (r *Registry) checkKind(id, kind string) {
	if _, ok := r.counters[id]; ok && kind != "counter" {
		panic(fmt.Sprintf("obs: metric %s already registered as a counter", id))
	}
	if _, ok := r.gauges[id]; ok && kind != "gauge" {
		panic(fmt.Sprintf("obs: metric %s already registered as a gauge", id))
	}
	if _, ok := r.gaugefns[id]; ok && kind != "gaugefn" {
		panic(fmt.Sprintf("obs: metric %s already registered as a gauge func", id))
	}
	if _, ok := r.timings[id]; ok && kind != "timing" {
		panic(fmt.Sprintf("obs: metric %s already registered as a timing", id))
	}
}

func canonLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// CounterValue is one counter series in a snapshot.
type CounterValue struct {
	Name   string
	Labels []Label
	Value  int64
}

// GaugeValue is one gauge series in a snapshot.
type GaugeValue struct {
	Name   string
	Labels []Label
	Value  float64
}

// TimingValue is one timing series in a snapshot. Min, Max, Sum, P50
// and P99 are in seconds; P50/P99 carry the log-histogram's ~7%
// relative error.
type TimingValue struct {
	Name   string
	Labels []Label
	Count  int64
	Sum    float64
	Min    float64
	Max    float64
	P50    float64
	P99    float64
}

// Snapshot is a point-in-time copy of every registered series, each
// section sorted by metric identity — deterministic regardless of
// registration or goroutine order.
type Snapshot struct {
	Counters []CounterValue
	Gauges   []GaugeValue
	Timings  []TimingValue
}

// Snapshot captures every registered metric. Safe to call while
// writers are active; each series is read atomically (counters,
// gauges) or under its own lock (timings).
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make([]*counterEntry, 0, len(r.counters))
	for _, e := range r.counters {
		counters = append(counters, e)
	}
	gauges := make([]*gaugeEntry, 0, len(r.gauges))
	for _, e := range r.gauges {
		gauges = append(gauges, e)
	}
	gaugefns := make([]*gaugeFnEntry, 0, len(r.gaugefns))
	for _, e := range r.gaugefns {
		gaugefns = append(gaugefns, e)
	}
	timings := make([]*timingEntry, 0, len(r.timings))
	for _, e := range r.timings {
		timings = append(timings, e)
	}
	r.mu.Unlock()

	for _, e := range counters {
		s.Counters = append(s.Counters, CounterValue{Name: e.name, Labels: e.labels, Value: e.c.Value()})
	}
	for _, e := range gauges {
		s.Gauges = append(s.Gauges, GaugeValue{Name: e.name, Labels: e.labels, Value: e.g.Value()})
	}
	// Callback gauges are evaluated outside the registry lock: a fn may
	// take its owner's lock (e.g. the query store mutex), and holding
	// r.mu across arbitrary callbacks invites ordering deadlocks.
	for _, e := range gaugefns {
		s.Gauges = append(s.Gauges, GaugeValue{Name: e.name, Labels: e.labels, Value: e.fn()})
	}
	for _, e := range timings {
		tv := e.t.value()
		tv.Name, tv.Labels = e.name, e.labels
		s.Timings = append(s.Timings, tv)
	}
	sort.Slice(s.Counters, func(i, j int) bool {
		return metricID(s.Counters[i].Name, s.Counters[i].Labels) < metricID(s.Counters[j].Name, s.Counters[j].Labels)
	})
	sort.Slice(s.Gauges, func(i, j int) bool {
		return metricID(s.Gauges[i].Name, s.Gauges[i].Labels) < metricID(s.Gauges[j].Name, s.Gauges[j].Labels)
	})
	sort.Slice(s.Timings, func(i, j int) bool {
		return metricID(s.Timings[i].Name, s.Timings[i].Labels) < metricID(s.Timings[j].Name, s.Timings[j].Labels)
	})
	return s
}

// Names returns every registered metric name (deduplicated across
// label sets), sorted — the input of the naming-convention check.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := map[string]bool{}
	for _, e := range r.counters {
		seen[e.name] = true
	}
	for _, e := range r.gauges {
		seen[e.name] = true
	}
	for _, e := range r.gaugefns {
		seen[e.name] = true
	}
	for _, e := range r.timings {
		seen[e.name] = true
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
