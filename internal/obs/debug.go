package obs

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// expvarReg holds the registry published under the process-global
// expvar name "cellcars_obs_metrics". expvar.Publish panics on duplicate
// names, so the Func is registered once and indirects through this
// pointer — the last-served registry wins, which matches the one
// registry per process that the CLIs create.
var (
	expvarReg  atomic.Pointer[Registry]
	expvarOnce sync.Once
)

// PublishExpvar exposes the registry's snapshot as the expvar variable
// "cellcars_obs_metrics" (visible on /debug/vars). Repeat calls re-point
// the variable at the new registry.
func PublishExpvar(reg *Registry) {
	expvarReg.Store(reg)
	expvarOnce.Do(func() {
		expvar.Publish("cellcars_obs_metrics", expvar.Func(func() any {
			return expvarReg.Load().Snapshot()
		}))
	})
}

// Handler returns the debug mux: a Prometheus-text /metrics endpoint
// over the registry, expvar under /debug/vars, and the full
// net/http/pprof suite under /debug/pprof/.
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, "cellcars debug server\n\n/metrics\n/debug/vars\n/debug/pprof/\n")
	})
	return mux
}

// DebugServer is a running debug HTTP endpoint.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the debug server on addr (e.g. ":6060" or
// "127.0.0.1:0") and returns once the listener is bound; requests are
// served on a background goroutine. It also publishes the registry via
// expvar.
func Serve(addr string, reg *Registry) (*DebugServer, error) {
	PublishExpvar(reg)
	return ServeHandler(addr, Handler(reg))
}

// ServeHandler starts a background HTTP server with an arbitrary
// handler — the building block behind Serve and the coordinator's
// /status endpoint server.
func ServeHandler(addr string, h http.Handler) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listener on %s: %w", addr, err)
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(ln)
	return &DebugServer{ln: ln, srv: srv}, nil
}

// Addr returns the bound listener address.
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// shutdownGrace bounds how long Close waits for in-flight requests. A
// scrape or pprof capture gets to finish; a stuck client does not hold
// shutdown hostage.
const shutdownGrace = 5 * time.Second

// Close shuts the server down gracefully: the listener stops accepting
// immediately, in-flight requests get up to shutdownGrace to drain,
// and only then are remaining connections closed hard.
func (s *DebugServer) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		return s.srv.Close()
	}
	return nil
}
