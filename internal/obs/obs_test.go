package obs

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestValidName(t *testing.T) {
	valid := []string{
		"cellcars_ingest_records_total",
		"cellcars_stage_add_seconds",
		"cellcars_engine_shard_records_total",
		"cellcars_extsort_spills_total",
	}
	for _, n := range valid {
		if !ValidName(n) {
			t.Errorf("ValidName(%q) = false, want true", n)
		}
	}
	invalid := []string{
		"cellcars_records",      // only one group after the prefix
		"ingest_records_total",  // missing prefix
		"cellcars_Ingest_total", // upper case
		"cellcars__records",     // empty group
		"cellcars_ingest_",      // trailing underscore
		"",
	}
	for _, n := range invalid {
		if ValidName(n) {
			t.Errorf("ValidName(%q) = true, want false", n)
		}
	}
}

func TestMetricIDSortsLabels(t *testing.T) {
	a := metricID("cellcars_a_b", []Label{{Key: "z", Value: "1"}, {Key: "a", Value: "2"}})
	b := metricID("cellcars_a_b", []Label{{Key: "a", Value: "2"}, {Key: "z", Value: "1"}})
	if a != b {
		t.Fatalf("label order changed identity: %q vs %q", a, b)
	}
	want := `cellcars_a_b{a="2",z="1"}`
	if a != want {
		t.Fatalf("metricID = %q, want %q", a, want)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := New()
	c1 := r.Counter("cellcars_test_total", Label{Key: "k", Value: "v"})
	c2 := r.Counter("cellcars_test_total", Label{Key: "k", Value: "v"})
	if c1 != c2 {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	c3 := r.Counter("cellcars_test_total", Label{Key: "k", Value: "other"})
	if c1 == c3 {
		t.Fatal("different labels returned the same counter")
	}
}

func TestRegistryPanics(t *testing.T) {
	r := New()
	mustPanic(t, "bad name", func() { r.Counter("bad_name") })
	mustPanic(t, "bad label key", func() { r.Counter("cellcars_test_total", Label{Key: "Bad-Key", Value: "v"}) })
	mustPanic(t, "bad label value", func() { r.Counter("cellcars_test_total", Label{Key: "k", Value: "a\"b"}) })
	mustPanic(t, "timing without _seconds", func() { r.Timing("cellcars_test_total") })
	r.Counter("cellcars_kind_total")
	mustPanic(t, "kind collision", func() { r.Gauge("cellcars_kind_total") })
	mustPanic(t, "negative counter add", func() { r.Counter("cellcars_neg_total").Add(-1) })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic, got none", what)
		}
	}()
	fn()
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("cellcars_nil_total")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	g := r.Gauge("cellcars_nil_ratio")
	g.Set(1.5)
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	tm := r.Timing("cellcars_nil_seconds")
	tm.Observe(time.Second)
	if tm.Count() != 0 || tm.Sum() != 0 || tm.Quantile(0.5) != 0 {
		t.Fatal("nil timing has observations")
	}
	if s := r.Snapshot(); len(s.Counters)+len(s.Gauges)+len(s.Timings) != 0 {
		t.Fatal("nil registry snapshot is non-empty")
	}
	if r.Names() != nil {
		t.Fatal("nil registry has names")
	}
	var tr *Trace
	sp := tr.Start("x")
	sp.AddRecords(1)
	sp.End()
	tr.Emit("y", time.Second, 1)
	if tr.Err() != nil {
		t.Fatal("nil trace has an error")
	}
}

// TestConcurrentMetrics hammers one counter, one gauge and one timing
// from many goroutines; run under -race this is the layer's
// thread-safety proof, and the final values check for lost updates.
func TestConcurrentMetrics(t *testing.T) {
	r := New()
	const goroutines, perG = 16, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Resolve inside the goroutine: get-or-create races too.
			c := r.Counter("cellcars_conc_total")
			gg := r.Gauge("cellcars_conc_ratio")
			tm := r.Timing("cellcars_conc_seconds")
			shard := r.Counter("cellcars_conc_shard_total",
				Label{Key: "worker", Value: fmt.Sprint(g % 4)})
			for i := 0; i < perG; i++ {
				c.Inc()
				gg.Set(float64(i))
				tm.Observe(time.Duration(i+1) * time.Microsecond)
				shard.Inc()
				if i%100 == 0 {
					r.Snapshot() // readers race writers
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("cellcars_conc_total").Value(); got != goroutines*perG {
		t.Fatalf("counter lost updates: got %d, want %d", got, goroutines*perG)
	}
	if got := r.Timing("cellcars_conc_seconds").Count(); got != goroutines*perG {
		t.Fatalf("timing lost observations: got %d, want %d", got, goroutines*perG)
	}
	var shardSum int64
	for w := 0; w < 4; w++ {
		shardSum += r.Counter("cellcars_conc_shard_total", Label{Key: "worker", Value: fmt.Sprint(w)}).Value()
	}
	if shardSum != goroutines*perG {
		t.Fatalf("shard counters sum %d, want %d", shardSum, goroutines*perG)
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	// Two registries populated in opposite orders must snapshot
	// identically: the scrape output cannot depend on map iteration or
	// registration order.
	build := func(reverse bool) *Registry {
		r := New()
		ops := []func(){
			func() { r.Counter("cellcars_a_total").Add(1) },
			func() { r.Counter("cellcars_b_total", Label{Key: "k", Value: "v1"}).Add(2) },
			func() { r.Counter("cellcars_b_total", Label{Key: "k", Value: "v2"}).Add(3) },
			func() { r.Gauge("cellcars_c_ratio").Set(0.5) },
			func() { r.Timing("cellcars_d_seconds").Observe(time.Millisecond) },
		}
		if reverse {
			for i := len(ops) - 1; i >= 0; i-- {
				ops[i]()
			}
		} else {
			for _, op := range ops {
				op()
			}
		}
		return r
	}
	s1, s2 := build(false).Snapshot(), build(true).Snapshot()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("snapshots differ by registration order:\n%+v\nvs\n%+v", s1, s2)
	}
}

func TestTimingStats(t *testing.T) {
	r := New()
	tm := r.Timing("cellcars_t_seconds")
	for _, ms := range []int{10, 20, 30, 40} {
		tm.Observe(time.Duration(ms) * time.Millisecond)
	}
	if got := tm.Count(); got != 4 {
		t.Fatalf("count = %d", got)
	}
	if got := tm.Sum(); got < 0.099 || got > 0.101 {
		t.Fatalf("sum = %v, want ~0.1", got)
	}
	v := tm.value()
	if v.Min < 0.009 || v.Min > 0.011 {
		t.Fatalf("min = %v, want ~0.01", v.Min)
	}
	if v.Max < 0.039 || v.Max > 0.041 {
		t.Fatalf("max = %v, want ~0.04", v.Max)
	}
	// The log histogram carries ~7% relative error.
	if p50 := tm.Quantile(0.5); p50 < 0.017 || p50 > 0.033 {
		t.Fatalf("p50 = %v, want ~0.02-0.03", p50)
	}
}

func TestNames(t *testing.T) {
	r := New()
	r.Counter("cellcars_b_total", Label{Key: "k", Value: "1"})
	r.Counter("cellcars_b_total", Label{Key: "k", Value: "2"})
	r.Gauge("cellcars_a_ratio")
	r.Timing("cellcars_c_seconds")
	got := r.Names()
	want := []string{"cellcars_a_ratio", "cellcars_b_total", "cellcars_c_seconds"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
}
