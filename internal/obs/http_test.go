package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestInstrumentTelemetry(t *testing.T) {
	reg := New()
	var logBuf bytes.Buffer
	logger := NewLogger(&logBuf, "test", "run0")

	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/missing" {
			http.NotFound(w, r)
			return
		}
		w.Write([]byte("body\n"))
	})
	label := func(r *http.Request) (string, string) {
		if strings.HasPrefix(r.URL.Path, "/report/") {
			return strings.TrimPrefix(r.URL.Path, "/"), r.URL.Query().Get("window")
		}
		return "other", "-"
	}
	srv := httptest.NewServer(Instrument(inner, reg, logger, label))
	defer srv.Close()

	get := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		return resp
	}
	r1 := get("/report/full?window=24h")
	get("/report/full?window=24h")
	get("/missing")

	if r1.Header.Get("X-Request-Id") == "" {
		t.Fatal("response missing X-Request-Id correlation header")
	}

	if n := reg.Timing("cellcars_http_request_seconds",
		Label{Key: "endpoint", Value: "report/full"},
		Label{Key: "window", Value: "24h"}).Count(); n != 2 {
		t.Fatalf("request timing count = %d, want 2", n)
	}
	if n := reg.Counter("cellcars_http_responses_total",
		Label{Key: "endpoint", Value: "report/full"},
		Label{Key: "class", Value: "2xx"}).Value(); n != 2 {
		t.Fatalf("2xx counter = %d, want 2", n)
	}
	if n := reg.Counter("cellcars_http_responses_total",
		Label{Key: "endpoint", Value: "other"},
		Label{Key: "class", Value: "4xx"}).Value(); n != 1 {
		t.Fatalf("4xx counter = %d, want 1", n)
	}
	if v := reg.Gauge("cellcars_http_requests_inflight").Value(); v != 0 {
		t.Fatalf("inflight gauge = %v after all requests done, want 0", v)
	}

	// Every log line is JSON with the correlation fields.
	sc := bufio.NewScanner(&logBuf)
	lines := 0
	for sc.Scan() {
		lines++
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("log line %d is not JSON: %v\n%s", lines, err, sc.Text())
		}
		for _, field := range []string{"request_id", "run_id", "component", "status", "endpoint"} {
			if _, ok := rec[field]; !ok {
				t.Fatalf("log line missing %q: %s", field, sc.Text())
			}
		}
	}
	if lines != 3 {
		t.Fatalf("got %d request log lines, want 3", lines)
	}
}

// TestInstrumentEchoesClientRequestID pins the correlation contract: a
// caller-supplied id flows through to the response header.
func TestInstrumentEchoesClientRequestID(t *testing.T) {
	srv := httptest.NewServer(Instrument(
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(204) }),
		nil, nil, nil))
	defer srv.Close()
	req, _ := http.NewRequest("GET", srv.URL+"/x", nil)
	req.Header.Set("X-Request-Id", "caller-chose-this")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "caller-chose-this" {
		t.Fatalf("echoed request id %q, want caller's", got)
	}
}

func TestInstrumentInflightGauge(t *testing.T) {
	reg := New()
	release := make(chan struct{})
	entered := make(chan struct{})
	srv := httptest.NewServer(Instrument(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
	}), reg, nil, nil))
	defer srv.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Get(srv.URL + "/slow")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered
	if v := reg.Gauge("cellcars_http_requests_inflight").Value(); v != 1 {
		t.Fatalf("inflight gauge mid-request = %v, want 1", v)
	}
	close(release)
	wg.Wait()
	deadline := time.Now().Add(2 * time.Second)
	for reg.Gauge("cellcars_http_requests_inflight").Value() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("inflight gauge never returned to 0")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
