package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Trace emits a JSONL run trace: one JSON object per finished span,
// appended to the writer in completion order. The schema is flat and
// stable (documented in DESIGN.md):
//
//	{"span":"analyze","start_ms":12.402,"dur_ms":8731.114,"records":1000000}
//
// start_ms is the span's start offset from the trace origin (trace
// creation time) in milliseconds; dur_ms its wall duration; records an
// optional record count (omitted when zero). Spans may start and end
// on any goroutine; the writer is serialized internally. A nil *Trace
// is a valid no-op, so call sites need no "is tracing on?" branches.
type Trace struct {
	mu     sync.Mutex
	w      io.Writer
	origin time.Time
	err    error
}

// NewTrace returns a trace writing JSONL to w. The trace origin (the
// zero of every start_ms) is the call time.
func NewTrace(w io.Writer) *Trace {
	return &Trace{w: w, origin: time.Now()}
}

// Err returns the first write error, if any; a trace keeps accepting
// spans after an error (discarding them) so instrumentation never
// aborts the run it observes.
func (t *Trace) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Span is one in-flight traced operation.
type Span struct {
	t       *Trace
	name    string
	start   time.Time
	records int64
}

// Start opens a span. End it to emit its trace line.
func (t *Trace) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, start: time.Now()}
}

// AddRecords adds to the span's record count, reported on End.
func (s *Span) AddRecords(n int64) {
	if s == nil {
		return
	}
	s.records += n
}

// End closes the span and writes its trace line.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.t.emit(s.name, s.start, time.Since(s.start), s.records)
}

// Emit writes one pre-measured span — an operation whose cost was
// captured elsewhere (e.g. the per-stage timings aggregated by the
// analysis engine). Its start_ms is the emission offset.
func (t *Trace) Emit(name string, dur time.Duration, records int64) {
	if t == nil {
		return
	}
	t.emit(name, time.Now(), dur, records)
}

func (t *Trace) emit(name string, start time.Time, dur time.Duration, records int64) {
	var b strings.Builder
	fmt.Fprintf(&b, `{"span":%q,"start_ms":%.3f,"dur_ms":%.3f`,
		name, float64(start.Sub(t.origin).Microseconds())/1000, float64(dur.Microseconds())/1000)
	if records != 0 {
		fmt.Fprintf(&b, `,"records":%d`, records)
	}
	b.WriteString("}\n")
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	if _, err := io.WriteString(t.w, b.String()); err != nil {
		t.err = err
	}
}
