package obs

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

type traceLine struct {
	Span    string   `json:"span"`
	StartMS float64  `json:"start_ms"`
	DurMS   float64  `json:"dur_ms"`
	Records *int64   `json:"records"`
	Extra   []string `json:"-"`
}

func TestTraceJSONL(t *testing.T) {
	var b strings.Builder
	tr := NewTrace(&b)

	sp := tr.Start("analyze")
	sp.AddRecords(1000)
	sp.AddRecords(500)
	time.Sleep(2 * time.Millisecond)
	sp.End()
	tr.Emit("stage:presence", 250*time.Millisecond, 0)

	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2: %q", len(lines), b.String())
	}
	var first, second traceLine
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 1 is not JSON: %v", err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatalf("line 2 is not JSON: %v", err)
	}
	if first.Span != "analyze" || first.Records == nil || *first.Records != 1500 {
		t.Fatalf("span 1 = %+v, want analyze with 1500 records", first)
	}
	if first.DurMS < 2 {
		t.Fatalf("span 1 duration %.3fms, want >= 2ms", first.DurMS)
	}
	if second.Span != "stage:presence" || second.DurMS != 250 {
		t.Fatalf("span 2 = %+v, want stage:presence at 250ms", second)
	}
	// A zero record count is omitted from the line entirely.
	if second.Records != nil {
		t.Fatalf("span 2 carries records %d, want field omitted", *second.Records)
	}
	if strings.Contains(lines[1], "records") {
		t.Fatalf("zero-record span serialized a records field: %s", lines[1])
	}
}

type failWriter struct{ err error }

func (f *failWriter) Write(p []byte) (int, error) { return 0, f.err }

func TestTraceStickyError(t *testing.T) {
	boom := errors.New("disk full")
	tr := NewTrace(&failWriter{err: boom})
	tr.Emit("a", time.Second, 0)
	if !errors.Is(tr.Err(), boom) {
		t.Fatalf("Err() = %v, want %v", tr.Err(), boom)
	}
	// Later spans are discarded, not retried; the error stays first.
	tr.Emit("b", time.Second, 0)
	if !errors.Is(tr.Err(), boom) {
		t.Fatalf("Err() after second emit = %v, want %v", tr.Err(), boom)
	}
}
