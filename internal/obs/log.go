package obs

import (
	"crypto/rand"
	"encoding/hex"
	"io"
	"log/slog"
)

// Structured logging for the long-running binaries. Every daemon log
// line is one JSON object (log/slog JSONHandler) carrying two
// correlation fields on every record:
//
//	component — which binary emitted it ("carqueryd", "cardrive")
//	run_id    — a random per-process id, so lines from one run can be
//	            grepped out of an aggregated stream
//
// Request-scoped lines add request_id (see Instrument); coordinator
// lines add shard/attempt. The JSON schema is slog's default: time,
// level, msg, then the attribute fields.

// NewRunID returns a fresh 16-hex-char random identifier, used for
// run_id and request_id correlation fields.
func NewRunID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; a constant id keeps
		// logging alive rather than killing the service.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// NewLogger returns a JSON logger writing one object per line to w,
// with the component and run_id correlation fields attached to every
// record.
func NewLogger(w io.Writer, component, runID string) *slog.Logger {
	h := slog.NewJSONHandler(w, nil)
	return slog.New(h).With("component", component, "run_id", runID)
}

// NopLogger returns a logger that discards everything — the nil-off
// equivalent for code paths that want an always-valid *slog.Logger.
func NopLogger() *slog.Logger {
	return slog.New(slog.NewJSONHandler(io.Discard, nil))
}
