package obs

import (
	"fmt"
	"strings"
	"sync"
)

// Health evaluates named readiness rules on demand. A rule is a
// closure over live service state ("watermark age under 30s", "ingest
// error budget under 80% consumed", "last snapshot cut succeeded");
// every /readyz probe runs all rules and a degraded answer names
// exactly which rules are failing and why — the difference between a
// page that says "not ready" and one that says what to fix.
//
// Rule evaluation also drives the cellcars_health_rule_failing{rule=…}
// gauge (1 = failing) when the Health was built over a registry, so
// dashboards see the same rule state the probe reports.
type Health struct {
	mu    sync.Mutex
	rules []healthRule
	reg   *Registry
}

type healthRule struct {
	name  string
	check func() (ok bool, detail string)
}

// RuleResult is one rule's evaluation outcome.
type RuleResult struct {
	Rule   string `json:"rule"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

// NewHealth returns an empty rule set. reg may be nil (no gauges).
func NewHealth(reg *Registry) *Health {
	return &Health{reg: reg}
}

// Rule registers one named rule. check returns ok plus a short detail
// string (shown on the degraded /readyz body when failing). Rules are
// evaluated in registration order. A nil *Health is a no-op.
func (h *Health) Rule(name string, check func() (ok bool, detail string)) {
	if h == nil || check == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.rules = append(h.rules, healthRule{name: name, check: check})
}

// Eval runs every rule and returns the results in registration order,
// updating the per-rule failing gauges. A nil *Health returns nil.
func (h *Health) Eval() []RuleResult {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	rules := append([]healthRule(nil), h.rules...)
	reg := h.reg
	h.mu.Unlock()
	out := make([]RuleResult, 0, len(rules))
	for _, r := range rules {
		ok, detail := r.check()
		out = append(out, RuleResult{Rule: r.name, OK: ok, Detail: detail})
		if reg != nil {
			v := 0.0
			if !ok {
				v = 1.0
			}
			reg.Gauge("cellcars_health_rule_failing", Label{Key: "rule", Value: r.name}).Set(v)
		}
	}
	return out
}

// Failing filters an Eval result down to the failing rules.
func Failing(results []RuleResult) []RuleResult {
	var out []RuleResult
	for _, r := range results {
		if !r.OK {
			out = append(out, r)
		}
	}
	return out
}

// RenderDegraded formats the plain-text degraded probe body: a
// "degraded" headline plus one "rule <name>: <detail>" line per
// failing rule.
func RenderDegraded(failing []RuleResult) string {
	var b strings.Builder
	b.WriteString("degraded\n")
	for _, r := range failing {
		fmt.Fprintf(&b, "rule %s: %s\n", r.Rule, r.Detail)
	}
	return b.String()
}
