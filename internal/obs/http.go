package obs

import (
	"log/slog"
	"net/http"
	"time"
)

// RequestLabeler maps one request to its (endpoint, window) metric
// labels. Implementations must return values from a bounded set —
// labels are series identity, and unbounded label values (raw URL
// paths, user input) would grow the registry without limit. Return
// something like ("other", "-") for unrecognized requests.
type RequestLabeler func(r *http.Request) (endpoint, window string)

// defaultLabeler uses the raw path (safe only for fixed-route muxes)
// and the "window" query parameter.
func defaultLabeler(r *http.Request) (string, string) {
	w := r.URL.Query().Get("window")
	if w == "" {
		w = "-"
	}
	return r.URL.Path, w
}

// requestIDHeader is the correlation header: honored when the client
// sends one, generated otherwise, always echoed on the response.
const requestIDHeader = "X-Request-Id"

// statusWriter captures the response status and body size for
// telemetry without changing handler behavior.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// statusClass buckets a status code into its Prometheus-friendly class
// label ("2xx", "4xx", ...).
func statusClass(code int) string {
	switch {
	case code < 200:
		return "1xx"
	case code < 300:
		return "2xx"
	case code < 400:
		return "3xx"
	case code < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

// Instrument wraps an HTTP handler with the service-side request
// telemetry every query endpoint needs:
//
//   - cellcars_http_request_seconds{endpoint,window} — latency timing
//     per (endpoint, window) pair
//   - cellcars_http_responses_total{endpoint,class} — status-class
//     counters (2xx/3xx/4xx/5xx)
//   - cellcars_http_requests_inflight — gauge of requests currently
//     being served
//
// and one structured log line per request (method, path, endpoint,
// window, status, duration, bytes) correlated by request_id: taken
// from the client's X-Request-Id header when present, generated
// otherwise, and always echoed back on the response.
//
// reg may be nil (metrics off), logger may be nil (logging off), and
// label may be nil (defaultLabeler). The wrapped handler's responses
// are byte-identical to the unwrapped handler's.
func Instrument(next http.Handler, reg *Registry, logger *slog.Logger, label RequestLabeler) http.Handler {
	if label == nil {
		label = defaultLabeler
	}
	inflight := reg.Gauge("cellcars_http_requests_inflight")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqID := r.Header.Get(requestIDHeader)
		if reqID == "" {
			reqID = NewRunID()
		}
		w.Header().Set(requestIDHeader, reqID)
		endpoint, window := label(r)
		sw := &statusWriter{ResponseWriter: w}
		inflight.Add(1)
		t0 := time.Now()
		next.ServeHTTP(sw, r)
		dur := time.Since(t0)
		inflight.Add(-1)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		if reg != nil {
			reg.Timing("cellcars_http_request_seconds",
				Label{Key: "endpoint", Value: endpoint},
				Label{Key: "window", Value: window}).Observe(dur)
			reg.Counter("cellcars_http_responses_total",
				Label{Key: "endpoint", Value: endpoint},
				Label{Key: "class", Value: statusClass(sw.status)}).Inc()
		}
		if logger != nil {
			logger.Info("http request",
				"request_id", reqID,
				"method", r.Method,
				"path", r.URL.Path,
				"endpoint", endpoint,
				"window", window,
				"status", sw.status,
				"dur_ms", float64(dur.Microseconds())/1000,
				"bytes", sw.bytes)
		}
	})
}
