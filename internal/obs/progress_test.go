package obs

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestProgressReportWithTotal(t *testing.T) {
	var n atomic.Int64
	var b strings.Builder
	p := NewProgress(&b, "records", time.Second, 1000, n.Load)

	n.Store(420)
	p.Report(time.Now().Add(time.Second))
	line := b.String()
	if !strings.HasPrefix(line, "progress: 420/1000 records (42.0%)") {
		t.Fatalf("line = %q, want 420/1000 at 42.0%%", line)
	}
	if !strings.Contains(line, "rec/s") {
		t.Fatalf("line %q missing a rate", line)
	}
	if !strings.Contains(line, "ETA") {
		t.Fatalf("line %q missing an ETA", line)
	}

	// At completion the ETA disappears.
	b.Reset()
	n.Store(1000)
	p.Report(time.Now().Add(2 * time.Second))
	line = b.String()
	if !strings.HasPrefix(line, "progress: 1000/1000 records (100.0%)") {
		t.Fatalf("final line = %q", line)
	}
	if strings.Contains(line, "ETA") {
		t.Fatalf("final line %q still shows an ETA", line)
	}
}

func TestProgressReportUnknownTotal(t *testing.T) {
	var b strings.Builder
	p := NewProgress(&b, "records", time.Second, 0, func() int64 { return 7 })
	p.Report(time.Now().Add(time.Second))
	line := b.String()
	if !strings.HasPrefix(line, "progress: 7 records") {
		t.Fatalf("line = %q", line)
	}
	if strings.Contains(line, "%") || strings.Contains(line, "ETA") {
		t.Fatalf("unknown-total line %q shows %% or ETA", line)
	}
}

func TestProgressStopIdempotent(t *testing.T) {
	var b strings.Builder
	p := NewProgress(&b, "records", time.Hour, 0, func() int64 { return 1 })
	p.Start()
	p.Stop()
	p.Stop() // second Stop must not panic or double-print
	if got := strings.Count(b.String(), "progress:"); got != 1 {
		t.Fatalf("got %d final lines, want 1: %q", got, b.String())
	}
}
