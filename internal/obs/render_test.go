package obs

import (
	"strings"
	"testing"
	"time"
)

// TestWritePrometheusGolden pins the exposition format exactly: one
// # TYPE line per name, label sets in sorted identity order, timings
// as summaries with quantile samples plus _sum and _count.
func TestWritePrometheusGolden(t *testing.T) {
	r := New()
	r.Counter("cellcars_ingest_records_total").Add(42)
	r.Counter("cellcars_ingest_quarantined_total", Label{Key: "class", Value: "bad-field"}).Add(3)
	r.Counter("cellcars_ingest_quarantined_total", Label{Key: "class", Value: "truncated"}).Add(1)
	r.Gauge("cellcars_ingest_budget_used_ratio").Set(0.25)
	tm := r.Timing("cellcars_checkpoint_write_seconds")
	for i := 0; i < 100; i++ {
		tm.Observe(100 * time.Millisecond)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	// Quantiles come from the log histogram: exact bin membership is
	// the sketch's business, so the golden text substitutes the
	// rendered values.
	p50 := formatFloat(tm.Quantile(0.5))
	p99 := formatFloat(tm.Quantile(0.99))
	sum := formatFloat(tm.Sum())
	want := strings.Join([]string{
		`# TYPE cellcars_ingest_quarantined_total counter`,
		`cellcars_ingest_quarantined_total{class="bad-field"} 3`,
		`cellcars_ingest_quarantined_total{class="truncated"} 1`,
		`# TYPE cellcars_ingest_records_total counter`,
		`cellcars_ingest_records_total 42`,
		`# TYPE cellcars_ingest_budget_used_ratio gauge`,
		`cellcars_ingest_budget_used_ratio 0.25`,
		`# TYPE cellcars_checkpoint_write_seconds summary`,
		`cellcars_checkpoint_write_seconds{quantile="0.5"} ` + p50,
		`cellcars_checkpoint_write_seconds{quantile="0.99"} ` + p99,
		`cellcars_checkpoint_write_seconds_sum ` + sum,
		`cellcars_checkpoint_write_seconds_count 100`,
	}, "\n") + "\n"
	if got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestWritePrometheusRegisteredNames asserts every name the render
// emits passes the repo naming convention (the render-side half of the
// convention check; the source-scan half lives in lint_test.go).
func TestWritePrometheusRegisteredNames(t *testing.T) {
	r := New()
	r.Counter("cellcars_engine_records_total", Label{Key: "outcome", Value: "accepted"})
	r.Timing("cellcars_stage_add_seconds", Label{Key: "stage", Value: "presence"})
	for _, name := range r.Names() {
		if !ValidName(name) {
			t.Errorf("registered name %q violates the convention", name)
		}
	}
}
