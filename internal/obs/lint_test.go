package obs

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// metricToken matches anything in the source tree that looks like a
// metric name. The convention (enforced by ValidName) is
// cellcars_<area>_<name>: at least two lowercase groups after the
// prefix, no empty groups, no trailing underscore.
var metricToken = regexp.MustCompile(`cellcars_[a-z0-9_]+`)

// TestMetricNameConvention walks every non-test Go file in the
// repository and requires each cellcars_* token to satisfy ValidName.
// This is the vet-style half of the convention check: a metric added
// anywhere in the tree with a malformed name fails here, not on a
// dashboard weeks later.
func TestMetricNameConvention(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root not at %s: %v", root, err)
	}

	checked := 0
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, tok := range metricToken.FindAllString(string(src), -1) {
			checked++
			if !ValidName(tok) {
				rel, _ := filepath.Rel(root, path)
				t.Errorf("%s: metric name %q violates cellcars_<area>_<name>", rel, tok)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if checked == 0 {
		t.Fatal("no cellcars_* tokens found in the tree; the scan is broken")
	}
}
