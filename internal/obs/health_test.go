package obs

import (
	"strings"
	"testing"
)

func TestHealthRules(t *testing.T) {
	reg := New()
	h := NewHealth(reg)
	stale := true
	h.Rule("staleness", func() (bool, string) {
		if stale {
			return false, "watermark 45s old (threshold 30s)"
		}
		return true, ""
	})
	h.Rule("error_budget", func() (bool, string) { return true, "" })

	res := h.Eval()
	if len(res) != 2 {
		t.Fatalf("Eval returned %d results, want 2", len(res))
	}
	failing := Failing(res)
	if len(failing) != 1 || failing[0].Rule != "staleness" {
		t.Fatalf("failing = %+v, want just staleness", failing)
	}
	body := RenderDegraded(failing)
	if !strings.HasPrefix(body, "degraded\n") || !strings.Contains(body, "rule staleness: watermark 45s old") {
		t.Fatalf("degraded body:\n%s", body)
	}
	if v := reg.Gauge("cellcars_health_rule_failing", Label{Key: "rule", Value: "staleness"}).Value(); v != 1 {
		t.Fatalf("failing gauge = %v, want 1", v)
	}

	stale = false
	if f := Failing(h.Eval()); len(f) != 0 {
		t.Fatalf("still failing after recovery: %+v", f)
	}
	if v := reg.Gauge("cellcars_health_rule_failing", Label{Key: "rule", Value: "staleness"}).Value(); v != 0 {
		t.Fatalf("failing gauge = %v after recovery, want 0", v)
	}
}

func TestHealthNilSafe(t *testing.T) {
	var h *Health
	h.Rule("x", func() (bool, string) { return false, "" })
	if res := h.Eval(); res != nil {
		t.Fatalf("nil Health Eval = %+v, want nil", res)
	}
}

func TestGaugeFuncAndAdd(t *testing.T) {
	reg := New()
	age := 7.5
	reg.GaugeFunc("cellcars_test_age_seconds", func() float64 { return age })
	s := reg.Snapshot()
	found := false
	for _, g := range s.Gauges {
		if g.Name == "cellcars_test_age_seconds" {
			found = true
			if g.Value != 7.5 {
				t.Fatalf("gauge func value %v, want 7.5", g.Value)
			}
		}
	}
	if !found {
		t.Fatal("gauge func missing from snapshot")
	}
	age = 9
	if v := reg.Snapshot().Gauges[0].Value; v != 9 {
		t.Fatalf("gauge func re-evaluated to %v, want 9", v)
	}

	g := reg.Gauge("cellcars_test_level_current")
	g.Add(3)
	g.Add(-1)
	if v := g.Value(); v != 2 {
		t.Fatalf("gauge after Add(3), Add(-1) = %v, want 2", v)
	}
}
