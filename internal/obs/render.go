package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): counters and gauges as single
// samples, timings as summaries (quantiles plus _sum and _count).
// Series appear in the deterministic Snapshot order, with one # TYPE
// line per metric name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return writePrometheus(w, r.Snapshot())
}

func writePrometheus(w io.Writer, s Snapshot) error {
	typed := map[string]bool{}
	writeType := func(name, kind string) string {
		if typed[name] {
			return ""
		}
		typed[name] = true
		return fmt.Sprintf("# TYPE %s %s\n", name, kind)
	}
	var b strings.Builder
	for _, c := range s.Counters {
		b.WriteString(writeType(c.Name, "counter"))
		fmt.Fprintf(&b, "%s %d\n", metricID(c.Name, c.Labels), c.Value)
	}
	for _, g := range s.Gauges {
		b.WriteString(writeType(g.Name, "gauge"))
		fmt.Fprintf(&b, "%s %s\n", metricID(g.Name, g.Labels), formatFloat(g.Value))
	}
	for _, t := range s.Timings {
		b.WriteString(writeType(t.Name, "summary"))
		for _, q := range []struct {
			q string
			v float64
		}{{"0.5", t.P50}, {"0.99", t.P99}} {
			labels := append(append([]Label(nil), t.Labels...), Label{Key: "quantile", Value: q.q})
			fmt.Fprintf(&b, "%s %s\n", metricID(t.Name, labels), formatFloat(q.v))
		}
		fmt.Fprintf(&b, "%s %s\n", metricID(t.Name+"_sum", t.Labels), formatFloat(t.Sum))
		fmt.Fprintf(&b, "%s %d\n", metricID(t.Name+"_count", t.Labels), t.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// formatFloat renders a float compactly and losslessly, matching the
// Prometheus client convention.
func formatFloat(x float64) string {
	return strconv.FormatFloat(x, 'g', -1, 64)
}
