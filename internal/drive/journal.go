package drive

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// The journal is the coordinator's write-ahead log: one JSON object
// per line, appended and fsynced before the action it records takes
// effect. A crashed coordinator re-reads it on -resume and re-plans
// only what is not yet done. Events:
//
//	plan        — shard count, inputs and study tag of the run
//	attempt     — an attempt was launched (speculative flag set for
//	              duplicates)
//	done        — a shard's snapshot was validated and promoted
//	fail        — an attempt failed, with its classification
//	quarantine  — a shard exhausted its attempt budget
//	merged      — the final merge completed
type journalEvent struct {
	Event string `json:"event"`
	Time  string `json:"time,omitempty"`

	// plan
	Shards int      `json:"shards,omitempty"`
	Inputs []string `json:"inputs,omitempty"`
	Tag    string   `json:"tag,omitempty"`

	// attempt / done / fail / quarantine
	Shard       int     `json:"shard"`
	Attempt     int     `json:"attempt,omitempty"`
	Speculative bool    `json:"speculative,omitempty"`
	Class       string  `json:"class,omitempty"`
	Err         string  `json:"error,omitempty"`
	Records     int64   `json:"records,omitempty"`
	Quarantined int64   `json:"quarantined,omitempty"`
	Seconds     float64 `json:"seconds,omitempty"`
	Failures    int     `json:"failures,omitempty"`
}

// Journal event names.
const (
	evPlan       = "plan"
	evAttempt    = "attempt"
	evDone       = "done"
	evFail       = "fail"
	evQuarantine = "quarantine"
	evMerged     = "merged"
)

type journal struct {
	f *os.File
}

// openJournal opens (appending) or creates the journal file.
func openJournal(path string) (*journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("drive: open journal: %w", err)
	}
	return &journal{f: f}, nil
}

// emit appends one event and fsyncs so the record survives a
// coordinator crash. Journal failures are fatal to the run: without a
// durable log the resume contract is void.
func (j *journal) emit(ev journalEvent) error {
	if j == nil {
		return nil
	}
	ev.Time = time.Now().UTC().Format(time.RFC3339Nano)
	b, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("drive: journal encode: %w", err)
	}
	if _, err := j.f.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("drive: journal write: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("drive: journal sync: %w", err)
	}
	return nil
}

func (j *journal) Close() error {
	if j == nil {
		return nil
	}
	return j.f.Close()
}

// readJournal loads all events from a journal file. A torn final line
// (coordinator died mid-append) is tolerated and dropped; any other
// malformed line is an error, since it means the log cannot be
// trusted.
func readJournal(path string) ([]journalEvent, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var events []journalEvent
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var bad error
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if bad != nil {
			// A malformed line followed by more lines is corruption,
			// not a torn tail.
			return nil, bad
		}
		var ev journalEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			bad = fmt.Errorf("drive: journal line %d: %w", len(events)+1, err)
			continue
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("drive: read journal: %w", err)
	}
	return events, nil
}
