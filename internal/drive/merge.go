package drive

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"cellcars/internal/analysis"
)

// mergeDone tree-merges the completed shards' snapshots with bounded
// fan-in: partials are folded in groups of MergeFanIn, each group's
// merged state is spilled back to disk as an intermediate snapshot,
// and the next level merges the intermediates. Memory is bounded by
// one group's merged state instead of the whole run, which is what
// lets a small coordinator box merge a fleet-scale shard set.
func (c *Coordinator) mergeDone(done []*shardRun) (*analysis.Partial, error) {
	t0 := time.Now()
	paths := make([]string, len(done))
	for i, s := range done {
		paths[i] = s.final
	}
	c.met.addMergeInputs(len(paths))

	var intermediates []string
	defer func() {
		for _, f := range intermediates {
			os.Remove(f)
		}
	}()

	level := 0
	for len(paths) > c.cfg.MergeFanIn {
		inc(c.met.mergeLevels)
		var next []string
		for i := 0; i < len(paths); i += c.cfg.MergeFanIn {
			group := paths[i:min(i+c.cfg.MergeFanIn, len(paths))]
			p, err := mergePaths(group)
			if err != nil {
				return nil, err
			}
			out := filepath.Join(c.cfg.WorkDir, fmt.Sprintf("merge-l%d-%03d.snap", level, i/c.cfg.MergeFanIn))
			if err := p.WriteSnapshot(out); err != nil {
				return nil, fmt.Errorf("drive: spill merge intermediate: %w", err)
			}
			intermediates = append(intermediates, out)
			next = append(next, out)
		}
		paths = next
		level++
	}
	inc(c.met.mergeLevels)
	p, err := mergePaths(paths)
	if err != nil {
		return nil, err
	}
	c.cfg.Trace.Emit("merge", time.Since(t0), p.Records())
	c.log.Info("merged", "shards", len(done), "levels", level+1, "seconds", time.Since(t0).Seconds())
	return p, nil
}

// mergePaths folds a group of snapshots sequentially, holding at most
// the accumulating state plus one incoming partial in memory. Overlap
// is never allowed: car-disjoint shards are the exactness contract,
// and a violation here means a coordinator bug, not dirty data.
func mergePaths(paths []string) (*analysis.Partial, error) {
	var merged *analysis.Partial
	for _, path := range paths {
		p, err := analysis.ReadPartialFile(path)
		if err != nil {
			return nil, fmt.Errorf("drive: merge read %s: %w", filepath.Base(path), err)
		}
		if merged == nil {
			merged = p
			continue
		}
		if err := merged.Merge(p, false); err != nil {
			return nil, fmt.Errorf("drive: merge %s: %w", filepath.Base(path), err)
		}
	}
	return merged, nil
}
