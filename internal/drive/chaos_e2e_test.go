package drive

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"cellcars/internal/analysis"
	"cellcars/internal/cdr"
	"cellcars/internal/obs"
	"cellcars/internal/radio"
	"cellcars/internal/simtime"
)

// The chaos suite re-executes the test binary as the worker process
// (the helper-binary pattern): TestMain detects the DRIVE_HELPER mode
// and runs RunWorker from environment config instead of the tests.
// This gives the coordinator real subprocesses to kill, time out and
// validate, without depending on a separately built caranalyze.

func TestMain(m *testing.M) {
	if os.Getenv("DRIVE_HELPER") == "1" {
		helperMain()
		return
	}
	os.Exit(m.Run())
}

func helperMain() {
	if os.Getenv("DRIVE_HANG") == "1" {
		select {}
	}
	if os.Getenv("DRIVE_FAIL") == "1" {
		fmt.Fprintln(os.Stderr, "injected helper failure")
		os.Exit(1)
	}
	shard, _ := strconv.Atoi(os.Getenv("DRIVE_SHARD"))
	shards, _ := strconv.Atoi(os.Getenv("DRIVE_SHARDS"))
	chaos, attempt, err := ChaosFromEnv()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	st, err := RunWorker(WorkerConfig{
		Inputs:  strings.Split(os.Getenv("DRIVE_INPUTS"), string(os.PathListSeparator)),
		Shard:   shard,
		Shards:  shards,
		Attempt: attempt,
		Out:     os.Getenv("DRIVE_OUT"),
		Ctx:     chaosTestCtx(),
		Opts:    chaosTestOpts(),
		Ingest:  cdr.ResilientConfig{MaxBadFrac: -1},
		Chaos:   chaos,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	PrintStats(os.Stdout, st)
}

func chaosTestPeriod() simtime.Period {
	return simtime.NewPeriod(time.Date(2017, 1, 2, 0, 0, 0, 0, time.UTC), 14)
}

func chaosTestCtx() analysis.Context {
	return analysis.Context{Period: chaosTestPeriod(), TZOffsetSeconds: -5 * 3600}
}

func chaosTestOpts() analysis.RunOptions {
	return analysis.RunOptions{Seed: 1, RareDays: []int{2, 5}}
}

// writeChaosInputs writes n deterministic records across two binary
// CDR files with cars interleaved between them — the layout that
// forces car-disjoint sharding to span files.
func writeChaosInputs(t *testing.T, dir string, n int) []string {
	t.Helper()
	rng := rand.New(rand.NewPCG(42, 7))
	period := chaosTestPeriod()
	paths := []string{filepath.Join(dir, "in0.cdr"), filepath.Join(dir, "in1.cdr")}
	files := make([]*os.File, len(paths))
	writers := make([]*cdr.BinaryWriter, len(paths))
	for i, p := range paths {
		f, err := os.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		files[i] = f
		writers[i] = cdr.NewBinaryWriter(f)
	}
	for i := 0; i < n; i++ {
		rec := cdr.Record{
			Car: cdr.CarID(1 + rng.Uint64N(300)),
			Cell: radio.MakeCellKey(
				radio.BSID(1+rng.Uint64N(40)),
				radio.SectorID(rng.Uint64N(3)),
				radio.C1+radio.CarrierID(rng.Uint64N(uint64(radio.NumCarriers)))),
			Start:    period.Start().Add(time.Duration(rng.Uint64N(13*24*3600)) * time.Second),
			Duration: time.Duration(10+rng.Uint64N(1200)) * time.Second,
		}
		if i%97 == 13 {
			rec.Duration = time.Hour // a ghost, so cleaning has work to do
		}
		if err := writers[i%2].Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	for i := range writers {
		if err := writers[i].Close(); err != nil {
			t.Fatal(err)
		}
		if err := files[i].Close(); err != nil {
			t.Fatal(err)
		}
	}
	return paths
}

// helperCommand builds worker processes out of this test binary.
// extraEnv entries are appended per (shard, attempt) via the hook.
func helperCommand(hook func(spec WorkerSpec) []string) func(spec WorkerSpec) *exec.Cmd {
	return func(spec WorkerSpec) *exec.Cmd {
		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(),
			"DRIVE_HELPER=1",
			"DRIVE_INPUTS="+strings.Join(spec.Inputs, string(os.PathListSeparator)),
			fmt.Sprintf("DRIVE_SHARD=%d", spec.Shard),
			fmt.Sprintf("DRIVE_SHARDS=%d", spec.Shards),
			"DRIVE_OUT="+spec.Out,
		)
		if hook != nil {
			cmd.Env = append(cmd.Env, hook(spec)...)
		}
		return cmd
	}
}

// baselineReport runs the whole input single-process, in-process — the
// ground truth the fault-tolerant distributed runs must reproduce
// bit-identically.
func baselineReport(t *testing.T, inputs []string) *analysis.Report {
	t.Helper()
	out := filepath.Join(t.TempDir(), "base.snap")
	if _, err := RunWorker(WorkerConfig{
		Inputs: inputs, Shard: 0, Shards: 1, Out: out,
		Ctx: chaosTestCtx(), Opts: chaosTestOpts(),
		Ingest: cdr.ResilientConfig{MaxBadFrac: -1},
	}); err != nil {
		t.Fatalf("baseline worker: %v", err)
	}
	p, err := analysis.ReadPartialFile(out)
	if err != nil {
		t.Fatalf("baseline read: %v", err)
	}
	return p.Finalize()
}

func chaosTestConfig(t *testing.T, inputs []string, shards int) Config {
	t.Helper()
	return Config{
		Inputs:       inputs,
		Shards:       shards,
		Parallel:     3,
		MaxAttempts:  3,
		RetryBackoff: 5 * time.Millisecond,
		MaxBackoff:   50 * time.Millisecond,
		JitterSeed:   1,
		WorkDir:      filepath.Join(t.TempDir(), "work"),
	}
}

// TestCoordinatorCleanRun: no faults — every shard completes on its
// first attempt and the merged report is bit-identical to the
// single-process run.
func TestCoordinatorCleanRun(t *testing.T) {
	inputs := writeChaosInputs(t, t.TempDir(), 30_000)
	want := baselineReport(t, inputs)

	cfg := chaosTestConfig(t, inputs, 6)
	cfg.Command = helperCommand(nil)
	reg := obs.New()
	cfg.Obs = reg
	coord, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := coord.Run(context.Background())
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	if res.Done != 6 || res.Quarantined != 0 || res.Attempts != 6 || res.Retries != 0 {
		t.Fatalf("clean run outcome: %+v", res)
	}
	if !reflect.DeepEqual(want, res.Report) {
		t.Fatal("distributed report differs from single-process report")
	}
	if got := reg.Counter("cellcars_drive_attempts_total", obs.Label{Key: "outcome", Value: "ok"}).Value(); got != 6 {
		t.Fatalf("ok attempts metric = %d, want 6", got)
	}
	if got := res.Records; got != int64(want.RawRecords) {
		t.Fatalf("result records %d, want %d", got, want.RawRecords)
	}
}

// TestCoordinatorSurvivesKills: chaos SIGKILLs a fraction of attempts
// mid-stream; the coordinator retries until every shard completes and
// the final report is still bit-identical.
func TestCoordinatorSurvivesKills(t *testing.T) {
	inputs := writeChaosInputs(t, t.TempDir(), 30_000)
	want := baselineReport(t, inputs)

	// Seed 18 is chosen so several shards die on their first attempt but
	// no shard draws MaxAttempts consecutive kills (seed 11, say, kills
	// shard 0 six times in a row and would legitimately quarantine it).
	chaos, err := ParseChaos("kill=0.4,n=2000,seed=18")
	if err != nil {
		t.Fatal(err)
	}
	// The draws are deterministic: count how many first attempts die,
	// so the retry assertion is exact, not probabilistic.
	const shards = 6
	firstAttemptKills := 0
	for s := 0; s < shards; s++ {
		if chaos.plan(s, 0).mode == chaosKill {
			firstAttemptKills++
		}
	}
	if firstAttemptKills == 0 {
		t.Fatal("chaos seed injects no faults; pick another seed")
	}

	cfg := chaosTestConfig(t, inputs, shards)
	cfg.MaxAttempts = 6 // kills are random per attempt; give room
	cfg.Chaos = chaos
	cfg.Command = helperCommand(nil)
	coord, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := coord.Run(context.Background())
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	if res.Quarantined != 0 {
		t.Fatalf("unlucky seed quarantined %d shards; excluded: %+v", res.Quarantined, res.Excluded)
	}
	if res.Retries < firstAttemptKills {
		t.Fatalf("retries %d < %d first-attempt kills", res.Retries, firstAttemptKills)
	}
	if !reflect.DeepEqual(want, res.Report) {
		t.Fatal("report after crash-retries differs from single-process report")
	}
}

// TestCoordinatorQuarantinesPoisonedShard: shard 2's output is always
// bit-flipped; after the attempt budget it must be quarantined, the
// run must still complete, and the result must name the excluded shard
// with its failure class.
func TestCoordinatorQuarantinesPoisonedShard(t *testing.T) {
	inputs := writeChaosInputs(t, t.TempDir(), 30_000)
	want := baselineReport(t, inputs)

	chaos, err := ParseChaos("poison=2,seed=3")
	if err != nil {
		t.Fatal(err)
	}
	cfg := chaosTestConfig(t, inputs, 6)
	cfg.MaxAttempts = 2
	cfg.Chaos = chaos
	cfg.Command = helperCommand(nil)
	reg := obs.New()
	cfg.Obs = reg
	coord, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := coord.Run(context.Background())
	if err != nil {
		t.Fatalf("poisoned run must degrade, not fail: %v", err)
	}
	if res.Done != 5 || res.Quarantined != 1 {
		t.Fatalf("outcome: done %d, quarantined %d", res.Done, res.Quarantined)
	}
	if len(res.Excluded) != 1 {
		t.Fatalf("excluded = %+v", res.Excluded)
	}
	ex := res.Excluded[0]
	if ex.Shard != 2 || ex.Attempts != 2 || ex.LastClass != ClassBadSnapshot {
		t.Fatalf("excluded shard = %+v", ex)
	}
	if ex.Records <= 0 {
		t.Fatalf("excluded shard reports no lost records: %+v", ex)
	}
	if got := reg.Counter("cellcars_drive_quarantined_shards_total").Value(); got != 1 {
		t.Fatalf("quarantine metric = %d, want 1", got)
	}
	// The degraded report covers fewer records than the full run and
	// still finalizes.
	if res.Report.RawRecords >= want.RawRecords || res.Report.RawRecords <= 0 {
		t.Fatalf("degraded run raw records %d vs full %d", res.Report.RawRecords, want.RawRecords)
	}
	q := &analysis.DataQuality{ExcludedShards: res.Excluded}
	if s := q.Summary(); !strings.Contains(s, "excluded shards 1") {
		t.Fatalf("quality summary does not name the exclusion: %q", s)
	}
}

// TestCoordinatorSpeculationBeatsStraggler: shard 0's first attempt
// hangs forever; with no attempt timeout only speculation can finish
// the run, and its duplicate attempt must win.
func TestCoordinatorSpeculationBeatsStraggler(t *testing.T) {
	inputs := writeChaosInputs(t, t.TempDir(), 30_000)
	want := baselineReport(t, inputs)

	cfg := chaosTestConfig(t, inputs, 6)
	cfg.SpeculativeFactor = 1.2
	cfg.SpeculativeMin = 2
	cfg.Command = helperCommand(func(spec WorkerSpec) []string {
		if spec.Shard == 0 && spec.Attempt == 0 {
			return []string{"DRIVE_HANG=1"}
		}
		return nil
	})
	reg := obs.New()
	cfg.Obs = reg
	coord, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	res, err := coord.Run(ctx)
	if err != nil {
		t.Fatalf("speculation run: %v", err)
	}
	if res.SpeculativeLaunches < 1 || res.SpeculativeWins < 1 {
		t.Fatalf("speculation did not rescue the straggler: %+v", res)
	}
	if res.Done != 6 || res.Quarantined != 0 {
		t.Fatalf("outcome: %+v", res)
	}
	if !reflect.DeepEqual(want, res.Report) {
		t.Fatal("report after speculation differs from single-process report")
	}
	if got := reg.Counter("cellcars_drive_speculative_wins_total").Value(); got < 1 {
		t.Fatalf("speculative wins metric = %d, want >= 1", got)
	}
}

// TestCoordinatorTimeoutKillsHungWorker: a hung attempt is killed at
// the deadline, classified as timeout, and the retry completes the
// shard.
func TestCoordinatorTimeoutKillsHungWorker(t *testing.T) {
	inputs := writeChaosInputs(t, t.TempDir(), 10_000)

	cfg := chaosTestConfig(t, inputs, 2)
	// Generous enough that a healthy worker never trips it, even with
	// the race detector slowing everything down ~10x.
	cfg.AttemptTimeout = 5 * time.Second
	cfg.Command = helperCommand(func(spec WorkerSpec) []string {
		if spec.Shard == 1 && spec.Attempt == 0 {
			return []string{"DRIVE_HANG=1"}
		}
		return nil
	})
	reg := obs.New()
	cfg.Obs = reg
	coord, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := coord.Run(context.Background())
	if err != nil {
		t.Fatalf("timeout run: %v", err)
	}
	if res.Done != 2 || res.Retries != 1 {
		t.Fatalf("outcome: %+v", res)
	}
	if got := reg.Counter("cellcars_drive_attempts_total", obs.Label{Key: "outcome", Value: ClassTimeout}).Value(); got != 1 {
		t.Fatalf("timeout attempts metric = %d, want 1", got)
	}
}

// TestCoordinatorResume: the first run is cancelled after two shards
// complete; a second coordinator with -resume re-plans only the
// incomplete shards and the final report is bit-identical.
func TestCoordinatorResume(t *testing.T) {
	inputs := writeChaosInputs(t, t.TempDir(), 30_000)
	want := baselineReport(t, inputs)

	cfg := chaosTestConfig(t, inputs, 6)
	cfg.Parallel = 1 // sequential, so "cancel after N launches" is well-defined
	ctx, cancel := context.WithCancel(context.Background())
	launches := 0
	base := helperCommand(nil)
	cfg.Command = func(spec WorkerSpec) *exec.Cmd {
		launches++
		if launches == 3 {
			cancel() // shards 0 and 1 are done; stop before the third finishes
		}
		return base(spec)
	}
	coord, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("first run: want context.Canceled, got %v", err)
	}

	// Second coordinator, same workdir, resume mode.
	cfg2 := cfg
	cfg2.Parallel = 3
	cfg2.Resume = true
	cfg2.Command = base
	coord2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := coord2.Run(context.Background())
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if res.Done != 6 || res.Quarantined != 0 {
		t.Fatalf("resumed outcome: %+v", res)
	}
	// The resumed run must not redo the completed shards: at most the
	// 4 incomplete ones (the cancelled third shard may or may not have
	// finished before the kill landed).
	if res.Attempts > 4 {
		t.Fatalf("resumed run launched %d attempts; done shards were redone", res.Attempts)
	}
	if !reflect.DeepEqual(want, res.Report) {
		t.Fatal("resumed report differs from single-process report")
	}
}

// TestCoordinatorRefusesStaleJournal: a work directory holding a
// previous run's journal is refused without Resume.
func TestCoordinatorRefusesStaleJournal(t *testing.T) {
	inputs := writeChaosInputs(t, t.TempDir(), 5_000)
	cfg := chaosTestConfig(t, inputs, 2)
	cfg.Command = helperCommand(nil)
	coord, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Run(context.Background()); err != nil {
		t.Fatalf("first run: %v", err)
	}
	coord2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord2.Run(context.Background()); err == nil || !strings.Contains(err.Error(), "journal") {
		t.Fatalf("second run without Resume: want journal-exists error, got %v", err)
	}
}

// TestCoordinatorTreeMergeFanIn: a fan-in smaller than the shard count
// forces a multi-level tree merge; the result must still be
// bit-identical to the single-process run.
func TestCoordinatorTreeMergeFanIn(t *testing.T) {
	inputs := writeChaosInputs(t, t.TempDir(), 30_000)
	want := baselineReport(t, inputs)

	cfg := chaosTestConfig(t, inputs, 8)
	cfg.MergeFanIn = 2 // 8 -> 4 -> 2 -> 1: three spill levels
	cfg.Command = helperCommand(nil)
	reg := obs.New()
	cfg.Obs = reg
	coord, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := coord.Run(context.Background())
	if err != nil {
		t.Fatalf("tree-merge run: %v", err)
	}
	if !reflect.DeepEqual(want, res.Report) {
		t.Fatal("tree-merged report differs from single-process report")
	}
	if got := reg.Counter("cellcars_drive_merge_inputs_total").Value(); got != 8 {
		t.Fatalf("merge inputs metric = %d, want 8", got)
	}
	if got := reg.Counter("cellcars_drive_merge_levels_total").Value(); got < 3 {
		t.Fatalf("merge levels metric = %d, want >= 3", got)
	}
	// No merge intermediates may survive the run.
	if leftovers, _ := filepath.Glob(filepath.Join(cfg.WorkDir, "merge-*.snap")); len(leftovers) != 0 {
		t.Fatalf("merge intermediates left behind: %v", leftovers)
	}
}
