package drive

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"cellcars/internal/analysis"
	"cellcars/internal/cdr"
)

// WorkerConfig describes one shard attempt as run inside a worker
// process (caranalyze -partial, or a test helper binary). Every worker
// scans ALL inputs and keeps only the records whose car hashes into
// its shard: input files may interleave cars freely, and car-disjoint
// shards are what make the partials merge bit-identically.
type WorkerConfig struct {
	// Inputs are the CDR files to scan (binary or .csv).
	Inputs []string
	// Shard/Shards select the car-hash slice: records with
	// cdr.ShardOfCar(car, Shards) == Shard are kept. Shards <= 1 keeps
	// everything.
	Shard, Shards int
	// Attempt is the coordinator's attempt ordinal, used only as the
	// chaos draw key.
	Attempt int
	// Out is the snapshot path to write. The write is atomic
	// (tmp+fsync+rename), so a killed worker never leaves a torn Out.
	Out string
	// Ctx and Opts configure the analysis accumulators.
	Ctx  analysis.Context
	Opts analysis.RunOptions
	// Ingest configures the resilient ingest layer (error budget,
	// quarantine sink, ...).
	Ingest cdr.ResilientConfig
	// Chaos, when non-nil, injects the drawn fault for this attempt.
	Chaos *Chaos
}

// WorkerStats is what a worker reports back to the coordinator on
// stdout: how many records its shard absorbed and how many the full
// input scan quarantined.
type WorkerStats struct {
	// Records counts records accepted into the shard's accumulators.
	Records int64 `json:"records"`
	// Quarantined counts records the resilient ingest rejected across
	// the worker's full scan of all inputs (not shard-scoped: every
	// worker sees every malformed record).
	Quarantined int64 `json:"quarantined"`
}

// statsPrefix marks the machine-readable stats line a worker prints on
// stdout for the coordinator to parse.
const statsPrefix = "DRIVE_STATS "

// PrintStats emits the stats line RunWorker's caller should print for
// the coordinator.
func PrintStats(w io.Writer, st WorkerStats) {
	b, _ := json.Marshal(st)
	fmt.Fprintf(w, "%s%s\n", statsPrefix, b)
}

// parseWorkerStats scans process output for the last stats line.
func parseWorkerStats(out []byte) (WorkerStats, bool) {
	var st WorkerStats
	found := false
	sc := bufio.NewScanner(bytes.NewReader(out))
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if !bytes.HasPrefix(line, []byte(statsPrefix)) {
			continue
		}
		var parsed WorkerStats
		if json.Unmarshal(line[len(statsPrefix):], &parsed) == nil {
			st, found = parsed, true
		}
	}
	return st, found
}

// RunWorker executes one shard attempt: open and concatenate the
// inputs, filter to the shard's cars through the resilient ingest
// layer, accumulate, and write the partial snapshot atomically. It is
// the single implementation behind caranalyze -partial, so a
// coordinator-spawned worker and a hand-run one behave identically.
func RunWorker(cfg WorkerConfig) (WorkerStats, error) {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.Shard < 0 || cfg.Shard >= cfg.Shards {
		return WorkerStats{}, fmt.Errorf("drive: shard %d outside [0, %d)", cfg.Shard, cfg.Shards)
	}
	if len(cfg.Inputs) == 0 {
		return WorkerStats{}, fmt.Errorf("drive: no inputs")
	}
	if cfg.Out == "" {
		return WorkerStats{}, fmt.Errorf("drive: no output path")
	}

	readers := make([]cdr.Reader, 0, len(cfg.Inputs))
	closers := make([]io.Closer, 0, len(cfg.Inputs))
	defer func() {
		for _, c := range closers {
			c.Close()
		}
	}()
	for _, path := range cfg.Inputs {
		r, cl, err := cdr.OpenFile(path)
		if err != nil {
			return WorkerStats{}, fmt.Errorf("drive: open input: %w", err)
		}
		readers = append(readers, r)
		closers = append(closers, cl)
	}

	rr := cdr.NewResilientReader(cdr.Concat(readers...), cfg.Ingest)
	var stream cdr.Reader = rr
	if cfg.Shards > 1 {
		shard, shards := cfg.Shard, cfg.Shards
		stream = cdr.FilterFunc(rr, func(rec cdr.Record) bool {
			return cdr.ShardOfCar(rec.Car, shards) == shard
		})
	}
	plan := cfg.Chaos.plan(cfg.Shard, cfg.Attempt)
	stream = plan.wrap(stream)

	acc := analysis.NewStreamingWithOptions(cfg.Ctx, cfg.Opts)
	if err := acc.AddAll(stream); err != nil {
		ist := rr.Stats()
		return WorkerStats{Records: acc.Watermark(), Quarantined: ist.QuarantinedTotal()},
			fmt.Errorf("drive: shard %d/%d ingest: %w", cfg.Shard, cfg.Shards, err)
	}
	ist := rr.Stats()
	st := WorkerStats{Records: acc.Watermark(), Quarantined: ist.QuarantinedTotal()}
	if err := acc.WriteSnapshot(cfg.Out); err != nil {
		return st, fmt.Errorf("drive: shard %d/%d snapshot: %w", cfg.Shard, cfg.Shards, err)
	}
	if plan.mode == chaosFlip {
		if err := flipFile(cfg.Out, plan.seed); err != nil {
			return st, fmt.Errorf("drive: chaos flip: %w", err)
		}
	}
	return st, nil
}
