// Package drive implements the fault-tolerant shard coordinator
// behind cmd/cardrive. It plans car-disjoint shards over a set of CDR
// input files, fans the shards out to worker subprocesses (caranalyze
// -partial), and survives the faults a real fleet-scale run hits:
// crashed workers are retried with exponential backoff and jitter,
// hung workers are killed by per-attempt timeouts, stragglers get a
// speculative duplicate attempt (first validated writer wins), and a
// shard that keeps failing — a poisoned shard — is quarantined after
// its attempt budget so the run degrades to a report that names the
// excluded shards instead of dying. A fsynced journal makes the run
// resumable: a crashed coordinator re-plans only incomplete shards.
package drive

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"math/rand/v2"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"cellcars/internal/analysis"
	"cellcars/internal/cdr"
	"cellcars/internal/obs"
)

// Failure classifications for worker attempts.
const (
	// ClassCrash: the worker exited non-zero or was killed (by the
	// chaos wrapper, the OS, or anything else).
	ClassCrash = "crash"
	// ClassTimeout: the attempt exceeded its deadline and was killed
	// by the coordinator.
	ClassTimeout = "timeout"
	// ClassBadSnapshot: the worker exited cleanly but its output
	// failed snapshot validation (ErrBadSnapshot) or belongs to a
	// different study configuration.
	ClassBadSnapshot = "bad-snapshot"
)

// Config tunes a Coordinator. Inputs, WorkDir and Command are
// required; zero values elsewhere select the documented defaults.
type Config struct {
	// Inputs are the CDR files the run covers. Every worker scans all
	// of them, keeping only its car-hash shard, so files may
	// interleave cars freely.
	Inputs []string
	// Shards is the car-hash shard count. Default 2×GOMAXPROCS.
	Shards int
	// Parallel bounds concurrently running worker processes. Default
	// GOMAXPROCS.
	Parallel int
	// MaxAttempts is the per-shard attempt budget; a shard failing
	// this many times is quarantined. Default 3.
	MaxAttempts int
	// AttemptTimeout kills an attempt running longer than this and
	// classifies it as a timeout. 0 disables deadlines.
	AttemptTimeout time.Duration
	// RetryBackoff is the base delay before a failed shard is retried;
	// it doubles per failure (capped at MaxBackoff) with ±50% jitter.
	// Default 250ms; MaxBackoff default 30s.
	RetryBackoff time.Duration
	MaxBackoff   time.Duration
	// JitterSeed seeds the backoff jitter; a fixed seed makes
	// scheduling reproducible in tests. 0 seeds from the clock.
	JitterSeed uint64
	// SpeculativeFactor triggers a duplicate attempt for a shard whose
	// sole running attempt exceeds factor × p95 of completed attempt
	// durations (once SpeculativeMin attempts have completed; default
	// 3). The first attempt to produce a valid snapshot wins; the
	// loser is killed. <= 0 disables speculation.
	SpeculativeFactor float64
	SpeculativeMin    int
	// MergeFanIn bounds how many partials are open per merge step; the
	// coordinator tree-merges with intermediate snapshots spilled to
	// WorkDir, so memory stays bounded by one fan-in group. Default 8.
	MergeFanIn int
	// WorkDir holds shard snapshots, merge intermediates and the
	// journal.
	WorkDir string
	// JournalPath overrides the journal location. Default
	// WorkDir/journal.jsonl.
	JournalPath string
	// Resume re-reads the journal and re-plans only shards not yet
	// done. Without Resume, an existing journal is an error — refusing
	// to silently clobber a previous run is part of the fault model.
	Resume bool
	// KeepPartials leaves per-shard snapshots in WorkDir after the
	// merge (merge intermediates are always removed).
	KeepPartials bool
	// Tag names the study configuration in the journal plan event;
	// resume refuses a journal whose tag differs.
	Tag string
	// Command builds the worker subprocess for one attempt. Required.
	// The coordinator sets AttemptEnv (and ChaosEnv when Chaos is
	// set) on the returned command.
	Command func(spec WorkerSpec) *exec.Cmd
	// Chaos, when non-nil, is forwarded to workers via ChaosEnv.
	Chaos *Chaos
	// Obs receives coordinator metrics (attempts, retries, speculative
	// wins, quarantined shards, merge fan-in). Nil disables.
	Obs *obs.Registry
	// Logger receives structured progress records (shard launches,
	// failures, quarantines, merge). Nil discards.
	Logger *slog.Logger
	// Trace, when non-nil, receives plan/attempt/merge spans.
	Trace *obs.Trace
}

// WorkerSpec is what Command receives to build one attempt's process.
type WorkerSpec struct {
	Shard, Shards, Attempt int
	Inputs                 []string
	// Out is the attempt-unique snapshot path the worker must write.
	Out string
}

// Result summarizes a completed run.
type Result struct {
	// Report is the merged analysis report over all completed shards.
	Report *analysis.Report
	// Header is the merged snapshot header (Watermark sums the
	// completed shards' raw record counts).
	Header analysis.SnapshotHeader
	// Excluded lists quarantined shards, ready for
	// DataQuality.ExcludedShards.
	Excluded []analysis.ExcludedShard
	// Done and Quarantined count shard outcomes.
	Done, Quarantined int
	// Attempts counts worker processes launched; Retries counts
	// re-launches after failures; SpeculativeLaunches/Wins count
	// straggler duplicates and how many beat the original.
	Attempts, Retries   int
	SpeculativeLaunches int
	SpeculativeWins     int
	// Records sums completed shards' accepted records.
	// IngestQuarantined is the quarantine count of one full input
	// scan (the max across shards — every worker scans every input,
	// so per-shard counts are parallel observations of the same bad
	// records, not additive).
	Records           int64
	IngestQuarantined int64
	// Elapsed is the wall time of the whole run including the merge.
	Elapsed time.Duration
}

// shard states.
type shardState int

const (
	shardPending shardState = iota
	shardRunning
	shardDone
	shardQuarantined
)

// attempt is one worker process.
type attempt struct {
	shard, n    int
	speculative bool
	out         string
	cmd         *exec.Cmd
	stdout      bytes.Buffer
	stderr      bytes.Buffer
	start       time.Time
	timer       *time.Timer
	// timedOut is set from the deadline timer's goroutine and read by
	// the coordinator loop after Wait returns, hence atomic.
	timedOut atomic.Bool
	// canceled is only touched by the coordinator loop.
	canceled bool
}

func (a *attempt) kill() {
	if a.cmd != nil && a.cmd.Process != nil {
		a.cmd.Process.Kill()
	}
}

type attemptResult struct {
	a       *attempt
	waitErr error
	dur     time.Duration
}

// shardRun is the coordinator's per-shard state machine.
type shardRun struct {
	id       int
	state    shardState
	attempts int // attempts launched (attempt ordinals)
	failures int
	nextTry  time.Time
	inflight map[*attempt]bool
	// speculated: a duplicate was already launched for the current
	// generation of attempts.
	speculated bool

	lastClass, lastErr string
	// stats of the winning attempt; for quarantined shards, the best
	// observation from any failed attempt.
	stats    WorkerStats
	hasStats bool
	final    string // promoted snapshot path
}

// Coordinator runs the fault-tolerant shard schedule. Use New, then
// Run once.
type Coordinator struct {
	cfg     Config
	log     *slog.Logger
	board   *statusBoard
	met     driveMetrics
	jr      *journal
	shards  []*shardRun
	results chan attemptResult
	rng     *rand.Rand
	// durations of completed (successful) attempts, seconds — the
	// speculation baseline.
	durations []float64
	inflight  int
	hdr       *analysis.SnapshotHeader // first promoted header, the study fingerprint
	res       Result
}

type driveMetrics struct {
	attempts    func(outcome string) *obs.Counter
	retries     *obs.Counter
	specLaunch  *obs.Counter
	specWins    *obs.Counter
	quarantined *obs.Counter
	attemptSec  *obs.Timing
	mergeInputs *obs.Counter
	mergeLevels *obs.Counter
	shardsDone  *obs.Gauge
}

func newDriveMetrics(reg *obs.Registry) driveMetrics {
	if reg == nil {
		return driveMetrics{}
	}
	return driveMetrics{
		attempts: func(outcome string) *obs.Counter {
			return reg.Counter("cellcars_drive_attempts_total", obs.Label{Key: "outcome", Value: outcome})
		},
		retries:     reg.Counter("cellcars_drive_retries_total"),
		specLaunch:  reg.Counter("cellcars_drive_speculative_launches_total"),
		specWins:    reg.Counter("cellcars_drive_speculative_wins_total"),
		quarantined: reg.Counter("cellcars_drive_quarantined_shards_total"),
		attemptSec:  reg.Timing("cellcars_drive_attempt_seconds"),
		mergeInputs: reg.Counter("cellcars_drive_merge_inputs_total"),
		mergeLevels: reg.Counter("cellcars_drive_merge_levels_total"),
		shardsDone:  reg.Gauge("cellcars_drive_shards_done"),
	}
}

// New validates the config and builds a Coordinator.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Inputs) == 0 {
		return nil, errors.New("drive: no inputs")
	}
	if cfg.WorkDir == "" {
		return nil, errors.New("drive: no work directory")
	}
	if cfg.Command == nil {
		return nil, errors.New("drive: no worker command factory")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 2 * runtime.GOMAXPROCS(0)
	}
	if cfg.Parallel <= 0 {
		cfg.Parallel = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 250 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 30 * time.Second
	}
	if cfg.SpeculativeMin <= 0 {
		cfg.SpeculativeMin = 3
	}
	if cfg.MergeFanIn < 2 {
		cfg.MergeFanIn = 8
	}
	if cfg.JournalPath == "" {
		cfg.JournalPath = filepath.Join(cfg.WorkDir, "journal.jsonl")
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.NopLogger()
	}
	seed := cfg.JitterSeed
	if seed == 0 {
		seed = uint64(time.Now().UnixNano())
	}
	c := &Coordinator{
		cfg:     cfg,
		log:     cfg.Logger,
		board:   newStatusBoard(cfg.Shards),
		met:     newDriveMetrics(cfg.Obs),
		rng:     rand.New(rand.NewPCG(seed, 0xD21FE)),
		results: make(chan attemptResult, cfg.Parallel*2+4),
	}
	c.shards = make([]*shardRun, cfg.Shards)
	for i := range c.shards {
		c.shards[i] = &shardRun{
			id:       i,
			inflight: make(map[*attempt]bool),
			final:    filepath.Join(cfg.WorkDir, fmt.Sprintf("shard%04d.snap", i)),
		}
	}
	return c, nil
}

// Run executes the schedule until every shard is done or quarantined,
// then tree-merges the completed partials. Cancelling ctx kills all
// inflight workers and returns ctx.Err(); the journal allows a later
// Resume run to pick up where this one stopped.
func (c *Coordinator) Run(ctx context.Context) (*Result, error) {
	t0 := time.Now()
	if err := os.MkdirAll(c.cfg.WorkDir, 0o755); err != nil {
		return nil, fmt.Errorf("drive: workdir: %w", err)
	}
	if err := c.openOrResume(); err != nil {
		return nil, err
	}
	defer c.jr.Close()
	c.cfg.Trace.Emit("plan", time.Since(t0), int64(c.cfg.Shards))

	c.board.setPhase("running")
	if err := c.schedule(ctx); err != nil {
		return nil, err
	}

	done := c.doneShards()
	if len(done) == 0 {
		return nil, errors.New("drive: every shard was quarantined; nothing to merge")
	}
	c.board.setPhase("merging")
	partial, err := c.mergeDone(done)
	if err != nil {
		return nil, err
	}
	if err := c.jr.emit(journalEvent{Event: evMerged, Shards: len(done)}); err != nil {
		return nil, err
	}
	c.finishResult(partial, t0)
	c.cleanup(done)
	c.board.setPhase("done")
	return &c.res, nil
}

// openOrResume opens the journal, enforcing the fresh-run/resume
// contract, and for resume replays the log into shard state.
func (c *Coordinator) openOrResume() error {
	_, statErr := os.Stat(c.cfg.JournalPath)
	exists := statErr == nil
	if exists && !c.cfg.Resume {
		return fmt.Errorf("drive: journal %s exists; resume the run or use a fresh work directory", c.cfg.JournalPath)
	}
	if c.cfg.Resume && exists {
		if err := c.replay(); err != nil {
			return err
		}
	}
	jr, err := openJournal(c.cfg.JournalPath)
	if err != nil {
		return err
	}
	c.jr = jr
	if !exists {
		return c.jr.emit(journalEvent{
			Event:  evPlan,
			Shards: c.cfg.Shards,
			Inputs: c.cfg.Inputs,
			Tag:    c.cfg.Tag,
		})
	}
	return nil
}

// replay folds journal events into shard state: done shards keep their
// promoted snapshots (revalidated), failed attempts keep their failure
// counts, quarantined shards get one more attempt budget only if the
// snapshot situation changed (they stay quarantined otherwise).
func (c *Coordinator) replay() error {
	events, err := readJournal(c.cfg.JournalPath)
	if err != nil {
		return err
	}
	if len(events) == 0 || events[0].Event != evPlan {
		return errors.New("drive: journal has no plan event; cannot resume")
	}
	plan := events[0]
	if plan.Shards != c.cfg.Shards {
		return fmt.Errorf("drive: journal planned %d shards, run configured %d", plan.Shards, c.cfg.Shards)
	}
	if plan.Tag != c.cfg.Tag {
		return fmt.Errorf("drive: journal tag %q does not match run tag %q", plan.Tag, c.cfg.Tag)
	}
	if len(plan.Inputs) != len(c.cfg.Inputs) {
		return fmt.Errorf("drive: journal planned %d inputs, run configured %d", len(plan.Inputs), len(c.cfg.Inputs))
	}
	for i, in := range plan.Inputs {
		if in != c.cfg.Inputs[i] {
			return fmt.Errorf("drive: journal input %d is %q, run configured %q", i, in, c.cfg.Inputs[i])
		}
	}
	for _, ev := range events[1:] {
		if ev.Shard < 0 || ev.Shard >= len(c.shards) {
			continue
		}
		s := c.shards[ev.Shard]
		switch ev.Event {
		case evAttempt:
			// Count launched attempts even without a recorded outcome
			// (coordinator died mid-attempt), so new attempt ordinals
			// — and their output paths — never collide with orphans.
			s.attempts = max(s.attempts, ev.Attempt+1)
		case evDone:
			s.state = shardDone
			s.attempts = ev.Attempt + 1
			s.stats = WorkerStats{Records: ev.Records, Quarantined: ev.Quarantined}
			s.hasStats = true
		case evFail:
			s.failures++
			s.attempts = max(s.attempts, ev.Attempt+1)
			s.lastClass, s.lastErr = ev.Class, ev.Err
			if ev.Records > 0 {
				s.stats.Records = max(s.stats.Records, ev.Records)
			}
		case evQuarantine:
			s.state = shardQuarantined
		}
	}
	resumedDone, replanned := 0, 0
	for _, s := range c.shards {
		if s.state != shardDone {
			continue
		}
		// Trust but verify: the snapshot must still exist and parse.
		if _, err := c.validateSnapshot(s.final); err != nil {
			c.log.Warn("resume: shard snapshot invalid; re-planning", "shard", s.id, "err", err.Error())
			s.state = shardPending
			s.hasStats = false
			replanned++
			continue
		}
		resumedDone++
	}
	for _, s := range c.shards {
		c.board.noteShard(s.id, s.state, s.failures, time.Time{})
	}
	c.log.Info("resume", "done", resumedDone, "replanned", replanned, "quarantined", c.quarantinedCount())
	return nil
}

func (c *Coordinator) quarantinedCount() int {
	n := 0
	for _, s := range c.shards {
		if s.state == shardQuarantined {
			n++
		}
	}
	return n
}

// schedule is the coordinator event loop.
func (c *Coordinator) schedule(ctx context.Context) error {
	tick := time.NewTicker(25 * time.Millisecond)
	defer tick.Stop()
	for {
		if err := c.launchEligible(); err != nil {
			c.abort()
			return err
		}
		if err := c.maybeSpeculate(); err != nil {
			c.abort()
			return err
		}
		if c.settled() {
			return nil
		}
		select {
		case res := <-c.results:
			if err := c.handleResult(res); err != nil {
				c.abort()
				return err
			}
		case <-ctx.Done():
			c.abort()
			return ctx.Err()
		case <-tick.C:
			// Re-evaluate backoff expiries and speculation.
		}
	}
}

// settled reports whether every shard reached a terminal state and all
// worker processes have been reaped.
func (c *Coordinator) settled() bool {
	if c.inflight > 0 {
		return false
	}
	for _, s := range c.shards {
		if s.state != shardDone && s.state != shardQuarantined {
			return false
		}
	}
	return true
}

// abort kills everything inflight and drains their results.
func (c *Coordinator) abort() {
	for _, s := range c.shards {
		for a := range s.inflight {
			a.canceled = true
			if a.timer != nil {
				a.timer.Stop()
			}
			a.kill()
		}
	}
	for c.inflight > 0 {
		res := <-c.results
		c.reap(res.a)
		os.Remove(res.a.out)
	}
}

// reap removes an attempt from its shard's inflight set.
func (c *Coordinator) reap(a *attempt) {
	s := c.shards[a.shard]
	if s.inflight[a] {
		delete(s.inflight, a)
		c.inflight--
	}
	if a.timer != nil {
		a.timer.Stop()
	}
}

// launchEligible starts attempts for pending shards whose backoff has
// expired, while parallelism slots are free.
func (c *Coordinator) launchEligible() error {
	now := time.Now()
	for _, s := range c.shards {
		if c.inflight >= c.cfg.Parallel {
			return nil
		}
		if s.state != shardPending || now.Before(s.nextTry) {
			continue
		}
		if err := c.launch(s, false); err != nil {
			return err
		}
	}
	return nil
}

// launch starts one worker attempt for a shard.
func (c *Coordinator) launch(s *shardRun, speculative bool) error {
	n := s.attempts
	s.attempts++
	a := &attempt{
		shard:       s.id,
		n:           n,
		speculative: speculative,
		out:         filepath.Join(c.cfg.WorkDir, fmt.Sprintf("shard%04d.a%02d.snap", s.id, n)),
		start:       time.Now(),
	}
	spec := WorkerSpec{Shard: s.id, Shards: c.cfg.Shards, Attempt: n, Inputs: c.cfg.Inputs, Out: a.out}
	cmd := c.cfg.Command(spec)
	if cmd == nil {
		return fmt.Errorf("drive: command factory returned nil for shard %d", s.id)
	}
	if cmd.Env == nil {
		cmd.Env = os.Environ()
	}
	cmd.Env = append(cmd.Env, fmt.Sprintf("%s=%d", AttemptEnv, n))
	if c.cfg.Chaos != nil {
		cmd.Env = append(cmd.Env, fmt.Sprintf("%s=%s", ChaosEnv, c.cfg.Chaos))
	}
	if cmd.Stdout == nil {
		cmd.Stdout = &a.stdout
	}
	if cmd.Stderr == nil {
		cmd.Stderr = &a.stderr
	}
	a.cmd = cmd

	if err := c.jr.emit(journalEvent{Event: evAttempt, Shard: s.id, Attempt: n, Speculative: speculative}); err != nil {
		return err
	}
	c.board.noteLaunch(s.id, n, speculative, a.start)
	if err := cmd.Start(); err != nil {
		// Spawn failure is a crash-class failure of this attempt, not
		// a coordinator error: the retry/quarantine machinery owns it.
		c.log.Error("worker failed to start", "shard", s.id, "attempt", n, "err", err.Error())
		return c.failAttempt(s, a, 0, ClassCrash, fmt.Sprintf("start worker: %v", err))
	}
	s.state = shardRunning
	s.inflight[a] = true
	c.inflight++
	c.res.Attempts++
	if n > 0 && !speculative {
		c.res.Retries++
		inc(c.met.retries)
	}
	if speculative {
		c.res.SpeculativeLaunches++
		inc(c.met.specLaunch)
		c.log.Info("speculative attempt launched", "shard", s.id, "attempt", n)
	}
	if c.cfg.AttemptTimeout > 0 {
		a.timer = time.AfterFunc(c.cfg.AttemptTimeout, func() {
			a.timedOut.Store(true)
			a.kill()
		})
	}
	go func() {
		err := a.cmd.Wait()
		c.results <- attemptResult{a: a, waitErr: err, dur: time.Since(a.start)}
	}()
	return nil
}

// handleResult classifies a finished attempt and advances its shard's
// state machine.
func (c *Coordinator) handleResult(res attemptResult) error {
	a := res.a
	s := c.shards[a.shard]
	c.reap(a)

	if a.canceled {
		os.Remove(a.out)
		c.met.attempt("canceled")
		c.board.noteOutcome(a.shard, a.n, "canceled", "", res.dur)
		return nil
	}
	if a.timedOut.Load() {
		os.Remove(a.out)
		return c.failAttempt(s, a, res.dur, ClassTimeout, fmt.Sprintf("attempt exceeded %s", c.cfg.AttemptTimeout))
	}
	if res.waitErr != nil {
		os.Remove(a.out)
		msg := res.waitErr.Error()
		if tail := lastLines(a.stderr.Bytes(), 3); tail != "" {
			msg += ": " + tail
		}
		return c.failAttempt(s, a, res.dur, ClassCrash, msg)
	}

	p, err := c.validateSnapshot(a.out)
	if err != nil {
		os.Remove(a.out)
		return c.failAttempt(s, a, res.dur, ClassBadSnapshot, err.Error())
	}

	if s.state == shardDone {
		// A speculative sibling already won; this valid result is
		// redundant.
		os.Remove(a.out)
		c.met.attempt("canceled")
		c.board.noteOutcome(a.shard, a.n, "canceled", "", res.dur)
		return nil
	}
	return c.promote(s, a, res, p)
}

// promote renames the validated attempt snapshot to the shard's final
// path — the atomic first-writer-wins step — and settles the shard.
func (c *Coordinator) promote(s *shardRun, a *attempt, res attemptResult, p *analysis.Partial) error {
	if err := os.Rename(a.out, s.final); err != nil {
		return fmt.Errorf("drive: promote shard %d: %w", s.id, err)
	}
	s.state = shardDone
	st, ok := parseWorkerStats(a.stdout.Bytes())
	if !ok {
		st = WorkerStats{Records: p.Records()}
	}
	s.stats, s.hasStats = st, true
	c.durations = append(c.durations, res.dur.Seconds())
	c.met.attempt("ok")
	c.met.observeAttempt(res.dur)
	c.met.setDone(c.doneCount())
	c.board.noteOutcome(a.shard, a.n, "ok", "", res.dur)
	c.board.noteShard(s.id, shardDone, s.failures, time.Time{})
	c.cfg.Trace.Emit(fmt.Sprintf("attempt:%d.%d", a.shard, a.n), res.dur, st.Records)
	if a.speculative {
		c.res.SpeculativeWins++
		inc(c.met.specWins)
		c.log.Info("speculative attempt won", "shard", s.id, "attempt", a.n, "seconds", res.dur.Seconds())
	} else {
		c.log.Info("shard done", "shard", s.id, "attempt", a.n, "seconds", res.dur.Seconds(), "records", st.Records)
	}
	// Kill the losing siblings; their results are reaped as canceled.
	for sib := range s.inflight {
		sib.canceled = true
		sib.kill()
	}
	return c.jr.emit(journalEvent{
		Event:       evDone,
		Shard:       s.id,
		Attempt:     a.n,
		Speculative: a.speculative,
		Records:     st.Records,
		Quarantined: st.Quarantined,
		Seconds:     res.dur.Seconds(),
	})
}

// failAttempt settles a failed attempt on the status board and run
// trace, then hands off to fail for the retry/quarantine decision.
func (c *Coordinator) failAttempt(s *shardRun, a *attempt, dur time.Duration, class, msg string) error {
	c.board.noteOutcome(a.shard, a.n, class, msg, dur)
	c.cfg.Trace.Emit(fmt.Sprintf("attempt:%d.%d", a.shard, a.n), dur, 0)
	return c.fail(s, a, class, msg)
}

// fail records a failed attempt, schedules the retry or quarantines
// the shard once its budget is spent.
func (c *Coordinator) fail(s *shardRun, a *attempt, class, msg string) error {
	c.met.attempt(class)
	if s.state == shardDone {
		return nil // a speculative loser failing after the win is noise
	}
	s.failures++
	s.lastClass, s.lastErr = class, msg
	// A failed attempt may still have reported how far it got; keep
	// the best observation for the excluded-shard accounting.
	if st, ok := parseWorkerStats(a.stdout.Bytes()); ok && st.Records > s.stats.Records {
		s.stats.Records = st.Records
	}
	c.log.Warn("attempt failed", "shard", s.id, "attempt", a.n, "class", class, "err", msg)
	if err := c.jr.emit(journalEvent{
		Event: evFail, Shard: s.id, Attempt: a.n, Class: class, Err: msg,
		Records: s.stats.Records, Failures: s.failures,
	}); err != nil {
		return err
	}

	if s.failures >= c.cfg.MaxAttempts {
		if len(s.inflight) > 0 {
			// A sibling attempt is still running and may yet succeed;
			// quarantine only if it also fails.
			return nil
		}
		return c.quarantine(s)
	}
	if len(s.inflight) == 0 {
		s.state = shardPending
		s.speculated = false
		s.nextTry = time.Now().Add(c.backoff(s.failures))
		c.board.noteShard(s.id, shardPending, s.failures, s.nextTry)
	} else {
		c.board.noteShard(s.id, s.state, s.failures, time.Time{})
	}
	return nil
}

// quarantine retires a shard whose attempt budget is spent.
func (c *Coordinator) quarantine(s *shardRun) error {
	s.state = shardQuarantined
	inc(c.met.quarantined)
	c.board.noteShard(s.id, shardQuarantined, s.failures, time.Time{})
	c.log.Error("shard quarantined", "shard", s.id, "failures", s.failures,
		"last_class", s.lastClass, "last_err", s.lastErr)
	return c.jr.emit(journalEvent{Event: evQuarantine, Shard: s.id, Failures: s.failures})
}

// backoff computes the jittered exponential delay after the given
// failure count (>= 1): base × 2^(failures-1), capped, ±50% jitter.
func (c *Coordinator) backoff(failures int) time.Duration {
	d := c.cfg.RetryBackoff
	for i := 1; i < failures && d < c.cfg.MaxBackoff; i++ {
		d *= 2
	}
	if d > c.cfg.MaxBackoff {
		d = c.cfg.MaxBackoff
	}
	half := d / 2
	return half + time.Duration(c.rng.Int64N(int64(d)+1))
}

// maybeSpeculate launches duplicate attempts for stragglers: shards
// whose single running attempt has exceeded SpeculativeFactor × p95 of
// completed attempt durations.
func (c *Coordinator) maybeSpeculate() error {
	if c.cfg.SpeculativeFactor <= 0 || len(c.durations) < c.cfg.SpeculativeMin {
		return nil
	}
	threshold := time.Duration(c.p95() * c.cfg.SpeculativeFactor * float64(time.Second))
	if threshold < 50*time.Millisecond {
		threshold = 50 * time.Millisecond
	}
	now := time.Now()
	for _, s := range c.shards {
		if c.inflight >= c.cfg.Parallel {
			return nil
		}
		if s.state != shardRunning || s.speculated || len(s.inflight) != 1 {
			continue
		}
		var running *attempt
		for a := range s.inflight {
			running = a
		}
		if now.Sub(running.start) <= threshold {
			continue
		}
		s.speculated = true
		if err := c.launch(s, true); err != nil {
			return err
		}
	}
	return nil
}

// p95 of completed attempt durations, in seconds.
func (c *Coordinator) p95() float64 {
	d := append([]float64(nil), c.durations...)
	sort.Float64s(d)
	idx := int(math.Ceil(0.95*float64(len(d)))) - 1
	if idx < 0 {
		idx = 0
	}
	return d[idx]
}

// validateSnapshot parses an attempt's output and checks it belongs to
// the same study as earlier promoted shards. The full parse is what
// turns a bit-flipped file into ErrBadSnapshot before it can poison
// the merge.
func (c *Coordinator) validateSnapshot(path string) (*analysis.Partial, error) {
	p, err := analysis.ReadPartialFile(path)
	if err != nil {
		return nil, err
	}
	h := p.Header
	if c.hdr == nil {
		c.hdr = &h
		return p, nil
	}
	if !h.PeriodStart.Equal(c.hdr.PeriodStart) || h.PeriodDays != c.hdr.PeriodDays ||
		h.TZOffsetSeconds != c.hdr.TZOffsetSeconds || h.Seed != c.hdr.Seed || h.HasLoad != c.hdr.HasLoad {
		return nil, fmt.Errorf("snapshot %s: study configuration differs from earlier shards", filepath.Base(path))
	}
	return p, nil
}

func (c *Coordinator) doneCount() int {
	n := 0
	for _, s := range c.shards {
		if s.state == shardDone {
			n++
		}
	}
	return n
}

// doneShards returns completed shards in shard order — merge order is
// deterministic, which keeps degraded-run reports reproducible.
func (c *Coordinator) doneShards() []*shardRun {
	var done []*shardRun
	for _, s := range c.shards {
		if s.state == shardDone {
			done = append(done, s)
		}
	}
	return done
}

// finishResult assembles the Result from the merged partial and the
// shard ledger.
func (c *Coordinator) finishResult(p *analysis.Partial, t0 time.Time) {
	c.res.Report = p.Finalize()
	c.res.Header = p.Header
	c.res.Elapsed = time.Since(t0)
	estimate := c.estimateShardRecords()
	for _, s := range c.shards {
		switch s.state {
		case shardDone:
			c.res.Done++
			c.res.Records += s.stats.Records
			if s.stats.Quarantined > c.res.IngestQuarantined {
				c.res.IngestQuarantined = s.stats.Quarantined
			}
		case shardQuarantined:
			c.res.Quarantined++
			ex := analysis.ExcludedShard{
				Shard:     s.id,
				Attempts:  s.failures,
				LastClass: s.lastClass,
				LastErr:   s.lastErr,
				Records:   s.stats.Records,
			}
			if ex.Records == 0 {
				ex.Records, ex.Estimated = estimate, true
			}
			c.res.Excluded = append(c.res.Excluded, ex)
		}
	}
}

// estimateShardRecords approximates one shard's record count from the
// binary input sizes — the fallback when a quarantined shard never
// reported its own progress. CSV inputs contribute 0 (record size is
// variable), so the estimate is a floor.
func (c *Coordinator) estimateShardRecords() int64 {
	var total int64
	for _, in := range c.cfg.Inputs {
		if strings.HasSuffix(in, ".csv") {
			continue
		}
		if fi, err := os.Stat(in); err == nil {
			total += cdr.BinaryRecordCount(fi.Size())
		}
	}
	return total / int64(c.cfg.Shards)
}

// cleanup removes attempt leftovers and, unless KeepPartials, the
// promoted shard snapshots.
func (c *Coordinator) cleanup(done []*shardRun) {
	if leftovers, err := filepath.Glob(filepath.Join(c.cfg.WorkDir, "shard*.a*.snap")); err == nil {
		for _, f := range leftovers {
			os.Remove(f)
		}
	}
	if !c.cfg.KeepPartials {
		for _, s := range done {
			os.Remove(s.final)
		}
	}
}

// lastLines returns up to n trailing non-empty lines of b, joined with
// "; " — enough stderr to diagnose a crash without flooding the log.
func lastLines(b []byte, n int) string {
	var lines []string
	for _, line := range bytes.Split(b, []byte("\n")) {
		if s := strings.TrimSpace(string(line)); s != "" {
			lines = append(lines, s)
		}
	}
	if len(lines) > n {
		lines = lines[len(lines)-n:]
	}
	return strings.Join(lines, "; ")
}

// nil-safe metric methods: a Coordinator without a registry skips all
// instrumentation.

func (m driveMetrics) attempt(outcome string) {
	if m.attempts != nil {
		m.attempts(outcome).Inc()
	}
}

func inc(c *obs.Counter) {
	if c != nil {
		c.Inc()
	}
}

func (m driveMetrics) observeAttempt(d time.Duration) {
	if m.attemptSec != nil {
		m.attemptSec.Observe(d)
	}
}

func (m driveMetrics) setDone(n int) {
	if m.shardsDone != nil {
		m.shardsDone.Set(float64(n))
	}
}

func (m driveMetrics) addMergeInputs(n int) {
	if m.mergeInputs != nil {
		m.mergeInputs.Add(int64(n))
	}
}
