package drive

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// AttemptStatus is one worker attempt on a shard's timeline.
type AttemptStatus struct {
	Attempt     int       `json:"attempt"`
	Speculative bool      `json:"speculative,omitempty"`
	Started     time.Time `json:"started"`
	// Outcome is empty while the attempt is running, then one of
	// "ok", "crash", "timeout", "bad-snapshot" or "canceled".
	Outcome string  `json:"outcome,omitempty"`
	Err     string  `json:"err,omitempty"`
	Seconds float64 `json:"seconds,omitempty"`
}

// ShardStatus is one shard's live state-machine view.
type ShardStatus struct {
	Shard    int    `json:"shard"`
	State    string `json:"state"` // pending | running | done | quarantined
	Failures int    `json:"failures"`
	// NextTry is the backoff expiry for a pending retry, omitted
	// otherwise.
	NextTry  *time.Time      `json:"next_try,omitempty"`
	Attempts []AttemptStatus `json:"attempts,omitempty"`
}

// Status is the coordinator's live run snapshot, served as JSON by
// StatusHandler.
type Status struct {
	Phase       string        `json:"phase"` // planning | running | merging | done
	Shards      []ShardStatus `json:"shards"`
	Done        int           `json:"done"`
	Quarantined int           `json:"quarantined"`
	Inflight    int           `json:"inflight"`
	Attempts    int           `json:"attempts"`
	UpdatedAt   time.Time     `json:"updated_at"`
}

// statusBoard is an event-sourced copy of the schedule-loop state,
// updated at coordinator event points under its own mutex so HTTP
// readers never contend with (or race against) the schedule loop.
type statusBoard struct {
	mu     sync.Mutex
	phase  string
	shards []ShardStatus
	total  int // attempts launched
}

func newStatusBoard(shards int) *statusBoard {
	b := &statusBoard{phase: "planning", shards: make([]ShardStatus, shards)}
	for i := range b.shards {
		b.shards[i] = ShardStatus{Shard: i, State: "pending"}
	}
	return b
}

func (b *statusBoard) setPhase(p string) {
	b.mu.Lock()
	b.phase = p
	b.mu.Unlock()
}

func stateName(s shardState) string {
	switch s {
	case shardRunning:
		return "running"
	case shardDone:
		return "done"
	case shardQuarantined:
		return "quarantined"
	default:
		return "pending"
	}
}

// noteLaunch appends a running attempt to the shard's timeline.
func (b *statusBoard) noteLaunch(shard, attempt int, speculative bool, start time.Time) {
	b.mu.Lock()
	s := &b.shards[shard]
	s.State = "running"
	s.NextTry = nil
	s.Attempts = append(s.Attempts, AttemptStatus{
		Attempt:     attempt,
		Speculative: speculative,
		Started:     start,
	})
	b.total++
	b.mu.Unlock()
}

// noteOutcome settles one attempt on the timeline.
func (b *statusBoard) noteOutcome(shard, attempt int, outcome, errMsg string, dur time.Duration) {
	b.mu.Lock()
	s := &b.shards[shard]
	for i := range s.Attempts {
		if s.Attempts[i].Attempt == attempt {
			s.Attempts[i].Outcome = outcome
			s.Attempts[i].Err = errMsg
			s.Attempts[i].Seconds = dur.Seconds()
			break
		}
	}
	b.mu.Unlock()
}

// noteShard updates a shard's state-machine fields.
func (b *statusBoard) noteShard(shard int, state shardState, failures int, nextTry time.Time) {
	b.mu.Lock()
	s := &b.shards[shard]
	s.State = stateName(state)
	s.Failures = failures
	if state == shardPending && !nextTry.IsZero() {
		t := nextTry
		s.NextTry = &t
	} else {
		s.NextTry = nil
	}
	b.mu.Unlock()
}

// snapshot returns a deep copy of the board.
func (b *statusBoard) snapshot() Status {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := Status{
		Phase:     b.phase,
		Shards:    make([]ShardStatus, len(b.shards)),
		Attempts:  b.total,
		UpdatedAt: time.Now(),
	}
	for i, s := range b.shards {
		cp := s
		cp.Attempts = append([]AttemptStatus(nil), s.Attempts...)
		if s.NextTry != nil {
			t := *s.NextTry
			cp.NextTry = &t
		}
		st.Shards[i] = cp
		switch s.State {
		case "done":
			st.Done++
		case "quarantined":
			st.Quarantined++
		}
		for _, a := range cp.Attempts {
			if a.Outcome == "" {
				st.Inflight++
			}
		}
	}
	return st
}

// Status returns a point-in-time snapshot of the run: per-shard state
// machines with full attempt timelines. Safe to call from any
// goroutine while Run is in flight.
func (c *Coordinator) Status() Status { return c.board.snapshot() }

// StatusHandler serves the coordinator's live Status as JSON — the
// body behind cardrive's -status-addr /status endpoint.
func StatusHandler(c *Coordinator) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, err := json.MarshalIndent(c.Status(), "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(append(body, '\n'))
	})
}
