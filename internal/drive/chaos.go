package drive

import (
	"fmt"
	"math/rand/v2"
	"os"
	"strconv"
	"strings"
	"syscall"

	"cellcars/internal/cdr"
)

// Chaos is the worker-side fault-injection wrapper of the coordinator
// chaos suite: with configured probabilities an attempt kills itself
// with SIGKILL at a random record offset, hangs forever (exercising
// the attempt timeout and speculation paths), or bit-flips its output
// snapshot after writing it (exercising ErrBadSnapshot validation).
// Draws are a pure function of (Seed, shard, attempt), so a chaos run
// is reproducible: the same seed injects the same faults regardless of
// scheduling.
type Chaos struct {
	// Kill, Hang and Flip are per-attempt probabilities; their sum must
	// not exceed 1.
	Kill, Hang, Flip float64
	// Records scales the random kill/hang offset: the fault triggers
	// after a uniform number of records in [1, Records].
	Records int64
	// Seed drives the per-attempt draws.
	Seed uint64
	// Poison, when >= 0, names a shard whose every attempt bit-flips
	// its output — a deterministically poisoned shard for testing the
	// quarantine path. -1 disables.
	Poison int
}

// ChaosEnv and AttemptEnv are the environment variables the
// coordinator sets on worker subprocesses to forward the chaos spec
// and the attempt ordinal (the draw key).
const (
	ChaosEnv   = "CARDRIVE_CHAOS"
	AttemptEnv = "CARDRIVE_ATTEMPT"
)

// ParseChaos parses a chaos spec of comma-separated key=value pairs:
//
//	kill=0.3,hang=0.1,flip=0.2,n=20000,seed=7,poison=3
//
// kill/hang/flip are probabilities, n the record-offset scale, seed
// the draw seed, poison a shard index (-1 none).
func ParseChaos(spec string) (*Chaos, error) {
	c := &Chaos{Records: 100_000, Poison: -1}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("drive: chaos spec entry %q is not key=value", part)
		}
		var err error
		switch key {
		case "kill":
			c.Kill, err = strconv.ParseFloat(val, 64)
		case "hang":
			c.Hang, err = strconv.ParseFloat(val, 64)
		case "flip":
			c.Flip, err = strconv.ParseFloat(val, 64)
		case "n":
			c.Records, err = strconv.ParseInt(val, 10, 64)
		case "seed":
			c.Seed, err = strconv.ParseUint(val, 10, 64)
		case "poison":
			c.Poison, err = strconv.Atoi(val)
		default:
			return nil, fmt.Errorf("drive: unknown chaos key %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("drive: chaos value %q: %v", part, err)
		}
	}
	for _, p := range []float64{c.Kill, c.Hang, c.Flip} {
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("drive: chaos probability %v outside [0, 1]", p)
		}
	}
	if sum := c.Kill + c.Hang + c.Flip; sum > 1 {
		return nil, fmt.Errorf("drive: chaos probabilities sum to %v > 1", sum)
	}
	if c.Records < 1 {
		c.Records = 1
	}
	return c, nil
}

// String renders the spec back into ParseChaos form.
func (c *Chaos) String() string {
	return fmt.Sprintf("kill=%v,hang=%v,flip=%v,n=%d,seed=%d,poison=%d",
		c.Kill, c.Hang, c.Flip, c.Records, c.Seed, c.Poison)
}

// ChaosFromEnv reads the chaos spec and attempt ordinal a coordinator
// forwarded, returning (nil, 0, nil) when no chaos is configured.
func ChaosFromEnv() (*Chaos, int, error) {
	spec := os.Getenv(ChaosEnv)
	if spec == "" {
		return nil, 0, nil
	}
	c, err := ParseChaos(spec)
	if err != nil {
		return nil, 0, err
	}
	attempt, _ := strconv.Atoi(os.Getenv(AttemptEnv))
	return c, attempt, nil
}

type chaosMode int

const (
	chaosNone chaosMode = iota
	chaosKill
	chaosHang
	chaosFlip
)

// chaosPlan is one attempt's drawn fault: what happens, and after how
// many records.
type chaosPlan struct {
	mode chaosMode
	at   int64
	seed uint64
}

// plan draws the fault for one (shard, attempt). Nil chaos plans
// nothing.
func (c *Chaos) plan(shard, attempt int) chaosPlan {
	if c == nil {
		return chaosPlan{}
	}
	// Golden-ratio mixing keeps every (shard, attempt) pair on its own
	// stream — a retried attempt must draw a fresh fate, not repeat
	// the one that just killed it.
	rng := rand.New(rand.NewPCG(c.Seed, uint64(shard)*0x9E3779B97F4A7C15+uint64(attempt)+1))
	p := chaosPlan{seed: rng.Uint64()}
	if shard == c.Poison {
		p.mode = chaosFlip
		return p
	}
	switch u := rng.Float64(); {
	case u < c.Kill:
		p.mode, p.at = chaosKill, 1+rng.Int64N(c.Records)
	case u < c.Kill+c.Hang:
		p.mode, p.at = chaosHang, 1+rng.Int64N(c.Records)
	case u < c.Kill+c.Hang+c.Flip:
		p.mode = chaosFlip
	}
	return p
}

// wrap interposes the plan on a record stream: kill and hang trigger
// at the drawn offset, flip happens after the snapshot is written (see
// RunWorker).
func (p chaosPlan) wrap(r cdr.Reader) cdr.Reader {
	if p.mode != chaosKill && p.mode != chaosHang {
		return r
	}
	return &chaosReader{r: r, plan: p}
}

type chaosReader struct {
	r    cdr.Reader
	plan chaosPlan
	n    int64
}

func (c *chaosReader) Read() (cdr.Record, error) {
	rec, err := c.r.Read()
	if err != nil {
		return rec, err
	}
	if c.n++; c.n >= c.plan.at {
		switch c.plan.mode {
		case chaosKill:
			// The real thing: no deferred cleanup, no flushes, the
			// process is simply gone mid-stream.
			syscall.Kill(os.Getpid(), syscall.SIGKILL)
			select {} // SIGKILL delivery is asynchronous; never proceed
		case chaosHang:
			select {} // a straggler that will never finish on its own
		}
	}
	return rec, nil
}

// flipFile corrupts one byte of a written file at a seed-deterministic
// offset — a simulated torn/bit-rotted snapshot that the coordinator's
// ErrBadSnapshot validation must catch.
func flipFile(path string, seed uint64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	if fi.Size() == 0 {
		return nil
	}
	rng := rand.New(rand.NewPCG(seed, 0xF11B))
	off := rng.Int64N(fi.Size())
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		return err
	}
	b[0] ^= 1 << rng.Uint64N(8)
	if _, err := f.WriteAt(b[:], off); err != nil {
		return err
	}
	return f.Sync()
}
