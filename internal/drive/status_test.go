package drive

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestStatusBoardTimeline drives the board through a retry-and-recover
// sequence and checks the snapshot's derived counters and deep-copy
// semantics.
func TestStatusBoardTimeline(t *testing.T) {
	b := newStatusBoard(3)
	st := b.snapshot()
	if st.Phase != "planning" || len(st.Shards) != 3 {
		t.Fatalf("fresh board: %+v", st)
	}
	for _, sh := range st.Shards {
		if sh.State != "pending" || len(sh.Attempts) != 0 {
			t.Fatalf("fresh shard not pending/empty: %+v", sh)
		}
	}

	b.setPhase("running")
	t0 := time.Date(2017, 1, 2, 9, 0, 0, 0, time.UTC)
	b.noteLaunch(1, 0, false, t0)
	st = b.snapshot()
	if st.Inflight != 1 || st.Attempts != 1 || st.Shards[1].State != "running" {
		t.Fatalf("after launch: %+v", st)
	}

	// First attempt crashes: outcome settles, shard returns to pending
	// with a backoff expiry.
	retry := t0.Add(400 * time.Millisecond)
	b.noteOutcome(1, 0, "crash", "signal: killed", 250*time.Millisecond)
	b.noteShard(1, shardPending, 1, retry)
	st = b.snapshot()
	sh := st.Shards[1]
	if st.Inflight != 0 || sh.State != "pending" || sh.Failures != 1 {
		t.Fatalf("after crash: %+v", st)
	}
	if sh.NextTry == nil || !sh.NextTry.Equal(retry) {
		t.Fatalf("backoff expiry not exposed: %+v", sh)
	}
	a := sh.Attempts[0]
	if a.Outcome != "crash" || a.Err != "signal: killed" || a.Seconds != 0.25 {
		t.Fatalf("crash attempt: %+v", a)
	}

	// Retry succeeds: timeline keeps both attempts, NextTry clears.
	b.noteLaunch(1, 1, false, retry)
	b.noteOutcome(1, 1, "ok", "", 300*time.Millisecond)
	b.noteShard(1, shardDone, 1, time.Time{})
	b.setPhase("done")
	st = b.snapshot()
	sh = st.Shards[1]
	if st.Done != 1 || sh.State != "done" || sh.NextTry != nil {
		t.Fatalf("after retry: %+v", st)
	}
	if len(sh.Attempts) != 2 || sh.Attempts[0].Outcome != "crash" || sh.Attempts[1].Outcome != "ok" {
		t.Fatalf("timeline lost the crash attempt: %+v", sh.Attempts)
	}

	// The snapshot must be a deep copy: mutating it cannot leak back.
	st.Shards[1].Attempts[0].Outcome = "mutated"
	if got := b.snapshot().Shards[1].Attempts[0].Outcome; got != "crash" {
		t.Fatalf("snapshot aliases board state: %q", got)
	}

	// The wire shape is stable JSON with snake_case keys.
	body, err := json.Marshal(b.snapshot())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"phase"`, `"shards"`, `"attempts"`, `"updated_at"`} {
		if !strings.Contains(string(body), key) {
			t.Fatalf("status JSON missing %s:\n%s", key, body)
		}
	}
}

// TestStatusBoardQuarantine pins the quarantined counter and state
// naming.
func TestStatusBoardQuarantine(t *testing.T) {
	b := newStatusBoard(2)
	b.noteLaunch(0, 0, false, time.Now())
	b.noteOutcome(0, 0, "bad-snapshot", "checksum mismatch", time.Second)
	b.noteShard(0, shardQuarantined, 3, time.Time{})
	st := b.snapshot()
	if st.Quarantined != 1 || st.Shards[0].State != "quarantined" {
		t.Fatalf("quarantine not reflected: %+v", st)
	}
	if stateName(shardRunning) != "running" || stateName(shardPending) != "pending" {
		t.Fatal("stateName mapping broken")
	}
}
