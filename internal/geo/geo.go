// Package geo provides the planar geography substrate used to lay out
// the synthetic cellular network and to route car trips: points in a
// flat kilometre-scaled plane, distances and headings, and rectangular
// metro regions with density classes.
//
// A flat plane is sufficient here: the analyses in the paper are
// relational (which cell, which base station, which carrier) and never
// depend on geodesy. We only need relative positions so that trips
// traverse plausible sequences of nearby base stations.
package geo

import (
	"fmt"
	"math"
)

// Point is a location on the plane, in kilometres.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance in kilometres between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Add returns p translated by (dx, dy).
func (p Point) Add(dx, dy float64) Point { return Point{p.X + dx, p.Y + dy} }

// Lerp returns the point a fraction t of the way from p to q.
// t outside [0,1] extrapolates.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// Heading returns the angle in radians of the vector from p to q,
// in (-π, π], measured from the +X axis.
func (p Point) Heading(q Point) float64 {
	return math.Atan2(q.Y-p.Y, q.X-p.X)
}

// Density classifies how built-up an area is, controlling base-station
// spacing and background load in the synthetic network.
type Density uint8

// Density classes from densest to sparsest.
const (
	Urban Density = iota
	Suburban
	Rural
)

// String returns the lowercase name of the density class.
func (d Density) String() string {
	switch d {
	case Urban:
		return "urban"
	case Suburban:
		return "suburban"
	case Rural:
		return "rural"
	default:
		return fmt.Sprintf("density(%d)", uint8(d))
	}
}

// SiteSpacingKm returns the typical distance between adjacent base
// stations for the density class. Real LTE deployments space sites a
// few hundred metres apart downtown and several kilometres apart in
// the countryside; these defaults sit in those bands.
func (d Density) SiteSpacingKm() float64 {
	switch d {
	case Urban:
		return 2.2
	case Suburban:
		return 5.0
	case Rural:
		return 12.0
	default:
		return 5.0
	}
}

// Rect is an axis-aligned rectangle on the plane.
type Rect struct {
	Min, Max Point
}

// Width returns the X extent of the rectangle.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the Y extent of the rectangle.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the area in square kilometres.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Center returns the midpoint of the rectangle.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Contains reports whether p lies inside the rectangle (min inclusive,
// max exclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X < r.Max.X && p.Y >= r.Min.Y && p.Y < r.Max.Y
}

// Clamp returns the closest point to p inside the rectangle.
func (r Rect) Clamp(p Point) Point {
	if p.X < r.Min.X {
		p.X = r.Min.X
	}
	if p.X > r.Max.X {
		p.X = r.Max.X
	}
	if p.Y < r.Min.Y {
		p.Y = r.Min.Y
	}
	if p.Y > r.Max.Y {
		p.Y = r.Max.Y
	}
	return p
}

// Region is a named rectangular area with a density class. The
// synthetic world is a set of regions (an urban core, suburban belt,
// rural fringe) tiling a bounding box.
type Region struct {
	Name    string
	Bounds  Rect
	Density Density
}

// World is the overall simulated geography: a bounding box divided
// into density regions.
type World struct {
	Bounds  Rect
	Regions []Region
}

// DensityAt returns the density class of the region containing p. The
// first matching region wins; points outside every region are Rural.
func (w *World) DensityAt(p Point) Density {
	for _, r := range w.Regions {
		if r.Bounds.Contains(p) {
			return r.Density
		}
	}
	return Rural
}

// RegionAt returns the region containing p, or nil when p is outside
// every region.
func (w *World) RegionAt(p Point) *Region {
	for i := range w.Regions {
		if w.Regions[i].Bounds.Contains(p) {
			return &w.Regions[i]
		}
	}
	return nil
}

// DefaultWorld returns the standard synthetic metro used across the
// reproduction: a square metro with a dense urban core, a suburban
// ring, and a rural remainder. sizeKm is the side length of the whole
// bounding box; it panics when non-positive.
//
// Layout (fractions of the side length):
//
//	urban core:    central 20% × 20%
//	suburban belt: central 55% × 55% minus the core
//	rural:         everything else
func DefaultWorld(sizeKm float64) *World {
	if sizeKm <= 0 {
		panic(fmt.Sprintf("geo: non-positive world size %v", sizeKm))
	}
	full := Rect{Min: Point{0, 0}, Max: Point{sizeKm, sizeKm}}
	c := full.Center()
	core := Rect{
		Min: Point{c.X - 0.10*sizeKm, c.Y - 0.10*sizeKm},
		Max: Point{c.X + 0.10*sizeKm, c.Y + 0.10*sizeKm},
	}
	belt := Rect{
		Min: Point{c.X - 0.275*sizeKm, c.Y - 0.275*sizeKm},
		Max: Point{c.X + 0.275*sizeKm, c.Y + 0.275*sizeKm},
	}
	return &World{
		Bounds: full,
		Regions: []Region{
			{Name: "core", Bounds: core, Density: Urban},
			{Name: "belt", Bounds: belt, Density: Suburban},
			{Name: "fringe", Bounds: full, Density: Rural},
		},
	}
}
