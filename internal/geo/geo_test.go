package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointDist(t *testing.T) {
	a := Point{0, 0}
	b := Point{3, 4}
	if got := a.Dist(b); got != 5 {
		t.Fatalf("Dist = %v, want 5", got)
	}
	if got := a.Dist(a); got != 0 {
		t.Fatalf("self distance = %v", got)
	}
}

func TestPointDistSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if anyNaNInf(ax, ay, bx, by) {
			return true
		}
		a, b := Point{ax, ay}, Point{bx, by}
		return a.Dist(b) == b.Dist(a) && a.Dist(b) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func anyNaNInf(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

func TestLerp(t *testing.T) {
	a, b := Point{0, 0}, Point{10, 20}
	if got := a.Lerp(b, 0); got != a {
		t.Fatalf("Lerp 0 = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Fatalf("Lerp 1 = %v", got)
	}
	if got := a.Lerp(b, 0.5); got != (Point{5, 10}) {
		t.Fatalf("Lerp 0.5 = %v", got)
	}
}

func TestHeading(t *testing.T) {
	o := Point{0, 0}
	cases := []struct {
		q    Point
		want float64
	}{
		{Point{1, 0}, 0},
		{Point{0, 1}, math.Pi / 2},
		{Point{-1, 0}, math.Pi},
		{Point{0, -1}, -math.Pi / 2},
	}
	for _, c := range cases {
		if got := o.Heading(c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Heading(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestAdd(t *testing.T) {
	if got := (Point{1, 2}).Add(3, -1); got != (Point{4, 1}) {
		t.Fatalf("Add = %v", got)
	}
}

func TestDensityString(t *testing.T) {
	if Urban.String() != "urban" || Suburban.String() != "suburban" || Rural.String() != "rural" {
		t.Fatal("density names wrong")
	}
	if Density(9).String() != "density(9)" {
		t.Fatalf("unknown density name = %q", Density(9).String())
	}
}

func TestDensitySpacingOrdered(t *testing.T) {
	if !(Urban.SiteSpacingKm() < Suburban.SiteSpacingKm() && Suburban.SiteSpacingKm() < Rural.SiteSpacingKm()) {
		t.Fatal("site spacing must grow with sparsity")
	}
	if Density(7).SiteSpacingKm() != Suburban.SiteSpacingKm() {
		t.Fatal("unknown density should fall back to suburban spacing")
	}
}

func TestRect(t *testing.T) {
	r := Rect{Min: Point{0, 0}, Max: Point{10, 20}}
	if r.Width() != 10 || r.Height() != 20 || r.Area() != 200 {
		t.Fatalf("rect geometry: w=%v h=%v a=%v", r.Width(), r.Height(), r.Area())
	}
	if r.Center() != (Point{5, 10}) {
		t.Fatalf("center = %v", r.Center())
	}
	if !r.Contains(Point{0, 0}) || r.Contains(Point{10, 5}) || r.Contains(Point{-1, 5}) {
		t.Fatal("contains semantics wrong (min inclusive, max exclusive)")
	}
	if got := r.Clamp(Point{-5, 25}); got != (Point{0, 20}) {
		t.Fatalf("clamp = %v", got)
	}
	if got := r.Clamp(Point{5, 5}); got != (Point{5, 5}) {
		t.Fatalf("interior clamp moved point: %v", got)
	}
}

func TestDefaultWorldStructure(t *testing.T) {
	w := DefaultWorld(100)
	if len(w.Regions) != 3 {
		t.Fatalf("regions = %d", len(w.Regions))
	}
	c := w.Bounds.Center()
	if got := w.DensityAt(c); got != Urban {
		t.Fatalf("center density = %v, want urban", got)
	}
	if got := w.DensityAt(Point{c.X + 15, c.Y}); got != Suburban {
		t.Fatalf("belt density = %v, want suburban", got)
	}
	if got := w.DensityAt(Point{1, 1}); got != Rural {
		t.Fatalf("corner density = %v, want rural", got)
	}
	// Outside the bounding box entirely: rural fallback.
	if got := w.DensityAt(Point{-50, -50}); got != Rural {
		t.Fatalf("outside density = %v, want rural", got)
	}
	if r := w.RegionAt(c); r == nil || r.Name != "core" {
		t.Fatalf("RegionAt(center) = %v", r)
	}
	if r := w.RegionAt(Point{-50, -50}); r != nil {
		t.Fatalf("RegionAt(outside) = %v, want nil", r)
	}
}

func TestDefaultWorldPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DefaultWorld(0)
}
