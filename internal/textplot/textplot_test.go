package textplot

import (
	"strings"
	"testing"

	"cellcars/internal/simtime"
)

func TestShade(t *testing.T) {
	if shade(0) != ' ' || shade(-1) != ' ' {
		t.Fatal("zero shade")
	}
	if shade(1) != '@' || shade(2) != '@' {
		t.Fatal("full shade")
	}
	mid := shade(0.5)
	if mid == ' ' || mid == '@' {
		t.Fatalf("mid shade = %c", mid)
	}
}

func TestChart(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{0, 0.25, 0.5, 0.75, 1}
	out := Chart("cdf", xs, ys, 40, 10)
	if !strings.Contains(out, "cdf") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "*") {
		t.Fatal("no data points drawn")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 12 {
		t.Fatalf("chart height = %d lines", len(lines))
	}
}

func TestChartDegenerate(t *testing.T) {
	if out := Chart("x", nil, nil, 10, 5); !strings.Contains(out, "no data") {
		t.Fatal("empty chart should say so")
	}
	if out := Chart("x", []float64{1}, []float64{2}, 10, 5); !strings.Contains(out, "*") {
		t.Fatal("single point should still draw")
	}
	// Flat series must not divide by zero.
	out := Chart("flat", []float64{0, 1}, []float64{3, 3}, 10, 5)
	if !strings.Contains(out, "*") {
		t.Fatal("flat series should draw")
	}
}

func TestMatrix(t *testing.T) {
	var m simtime.WeekMatrix
	m.Set(7, 0, 10)
	m.Set(17, 4, 5)
	out := Matrix("usage", &m)
	if !strings.Contains(out, "M  T  W  T  F  S  S") {
		t.Fatal("missing day header")
	}
	if !strings.Contains(out, "@@") {
		t.Fatal("max cell not rendered dark")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 26 { // title + header + 24 hours
		t.Fatalf("matrix lines = %d", len(lines))
	}
}

func TestMatrixEmpty(t *testing.T) {
	var m simtime.WeekMatrix
	out := Matrix("empty", &m)
	if strings.Contains(out, "@") {
		t.Fatal("empty matrix should have no dark cells")
	}
}

func TestBars(t *testing.T) {
	out := Bars("carriers", []string{"C1", "C2"}, []float64{0.2, 0.8}, 20)
	if !strings.Contains(out, "C1") || !strings.Contains(out, "C2") {
		t.Fatal("missing labels")
	}
	// The larger value draws the longer bar.
	lines := strings.Split(out, "\n")
	c1 := strings.Count(lines[1], "#")
	c2 := strings.Count(lines[2], "#")
	if c2 <= c1 {
		t.Fatalf("bar lengths %d vs %d", c1, c2)
	}
	if out := Bars("none", nil, nil, 10); !strings.Contains(out, "no data") {
		t.Fatal("empty bars should say so")
	}
}

func TestHistogram(t *testing.T) {
	counts := []int64{1, 5, 10, 5, 1}
	out := Histogram("days", counts, 5, 4)
	if !strings.Contains(out, "#") {
		t.Fatal("no bars")
	}
	if !strings.Contains(out, "max column 10") {
		t.Fatal("missing max annotation")
	}
	if out := Histogram("none", nil, 5, 4); !strings.Contains(out, "no data") {
		t.Fatal("empty histogram")
	}
}

func TestWeekSeries(t *testing.T) {
	conc := make([]float64, simtime.BinsPerWeek)
	util := make([]float64, simtime.BinsPerWeek)
	for i := range conc {
		if i%96 == 48 {
			conc[i] = 12
		}
		util[i] = 0.5
	}
	out := WeekSeries("cell", conc, util, 96, 6)
	if !strings.Contains(out, "#") || !strings.Contains(out, "o") {
		t.Fatal("missing impulses or load curve")
	}
	if !strings.Contains(out, "Mon") || !strings.Contains(out, "Sun") {
		t.Fatal("missing day ticks")
	}
	if out := WeekSeries("bad", conc, util[:10], 96, 6); !strings.Contains(out, "no data") {
		t.Fatal("length mismatch should be reported")
	}
}

func TestTimeline(t *testing.T) {
	spans := [][][2]float64{
		{{0.0, 0.1}},
		{{0.5, 0.6}, {0.8, 0.9}},
		{{0.95, 1.0}},
	}
	out := Timeline("cell day", spans, 48, 2)
	if !strings.Contains(out, "3 cars") {
		t.Fatal("missing car count")
	}
	if !strings.Contains(out, "... 1 more cars ...") {
		t.Fatal("missing elision note")
	}
	if !strings.Contains(out, "#") {
		t.Fatal("no spans drawn")
	}
	if !strings.Contains(out, "0:00") || !strings.Contains(out, "24:00") {
		t.Fatal("missing time axis")
	}
}

func TestResampleMax(t *testing.T) {
	xs := []float64{1, 9, 2, 2, 5, 5}
	out := resampleMax(xs, 3)
	if len(out) != 3 || out[0] != 9 || out[1] != 2 || out[2] != 5 {
		t.Fatalf("resample = %v", out)
	}
}
