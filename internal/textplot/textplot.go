// Package textplot renders the paper's figures as plain-text plots:
// CDF line charts, histograms, 24×7 heat matrices, weekly impulse
// series against load curves, and per-cell connection timelines. Every
// benchmark and CLI tool prints through this package so a reproduction
// run is inspectable in a terminal or a log file.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// shades orders glyphs from empty to full for heat rendering.
var shades = []rune{' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'}

// shade maps v in [0,1] to a glyph.
func shade(v float64) rune {
	if math.IsNaN(v) || v <= 0 {
		return shades[0]
	}
	if v >= 1 {
		return shades[len(shades)-1]
	}
	return shades[int(v*float64(len(shades)-1)+0.5)]
}

// Chart renders y = f(x) as an ASCII line chart of the given width and
// height (interior plot area), with axis labels. xs must be
// non-decreasing; xs and ys must be the same non-zero length.
func Chart(title string, xs, ys []float64, width, height int) string {
	if len(xs) != len(ys) || len(xs) == 0 {
		return title + ": (no data)\n"
	}
	if width < 8 {
		width = 8
	}
	if height < 3 {
		height = 3
	}
	minX, maxX := xs[0], xs[len(xs)-1]
	minY, maxY := ys[0], ys[0]
	for _, y := range ys {
		minY = math.Min(minY, y)
		maxY = math.Max(maxY, y)
	}
	if maxY == minY {
		maxY = minY + 1
	}
	if maxX == minX {
		maxX = minX + 1
	}

	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	// Sample one column at a time from the series by linear scan.
	j := 0
	for c := 0; c < width; c++ {
		x := minX + (maxX-minX)*float64(c)/float64(width-1)
		for j < len(xs)-1 && xs[j+1] <= x {
			j++
		}
		y := ys[j]
		if j < len(xs)-1 && xs[j+1] > xs[j] {
			frac := (x - xs[j]) / (xs[j+1] - xs[j])
			if frac > 0 && frac <= 1 {
				y = ys[j] + (ys[j+1]-ys[j])*frac
			}
		}
		row := int((y - minY) / (maxY - minY) * float64(height-1))
		if row < 0 {
			row = 0
		}
		if row >= height {
			row = height - 1
		}
		grid[height-1-row][c] = '*'
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for r, row := range grid {
		label := "        "
		if r == 0 {
			label = fmt.Sprintf("%7.3g ", maxY)
		} else if r == height-1 {
			label = fmt.Sprintf("%7.3g ", minY)
		}
		fmt.Fprintf(&b, "%s|%s|\n", label, string(row))
	}
	fmt.Fprintf(&b, "        %s\n", strings.Repeat("-", width+2))
	fmt.Fprintf(&b, "        %-*.4g%*.4g\n", width/2+1, minX, width/2+1, maxX)
	return b.String()
}

// Matrix renders a 24×7 hour-of-week matrix as the paper draws them:
// hours down the side (0–23), days across the top (M T W T F S S),
// darker glyphs for larger values (normalized to the matrix max).
type MatrixData interface {
	At(hour, day int) float64
	Max() float64
}

// Matrix renders m with a title.
func Matrix(title string, m MatrixData) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	b.WriteString("      M  T  W  T  F  S  S\n")
	max := m.Max()
	for hour := 0; hour < 24; hour++ {
		fmt.Fprintf(&b, "  %2d ", hour)
		for day := 0; day < 7; day++ {
			v := 0.0
			if max > 0 {
				v = m.At(hour, day) / max
			}
			g := shade(v)
			fmt.Fprintf(&b, " %c%c", g, g)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Bars renders labelled horizontal bars scaled to the largest value.
func Bars(title string, labels []string, values []float64, width int) string {
	if width < 4 {
		width = 4
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if len(values) == 0 {
		b.WriteString("  (no data)\n")
		return b.String()
	}
	max := values[0]
	for _, v := range values {
		max = math.Max(max, v)
	}
	for i, v := range values {
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		n := 0
		if max > 0 {
			n = int(v / max * float64(width))
		}
		fmt.Fprintf(&b, "  %-12s |%s %.4g\n", label, strings.Repeat("#", n), v)
	}
	return b.String()
}

// Histogram renders counts as vertical proportions per bin, collapsed
// into at most width columns.
func Histogram(title string, counts []int64, width, height int) string {
	if len(counts) == 0 {
		return title + ": (no data)\n"
	}
	if width <= 0 || width > len(counts) {
		width = len(counts)
	}
	if height < 2 {
		height = 2
	}
	// Aggregate bins into columns.
	cols := make([]float64, width)
	per := float64(len(counts)) / float64(width)
	for i, c := range counts {
		cols[int(float64(i)/per)] += float64(c)
	}
	max := 0.0
	for _, v := range cols {
		max = math.Max(max, v)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (max column %g)\n", title, max)
	for r := height; r >= 1; r-- {
		thresh := max * float64(r) / float64(height)
		b.WriteString("  |")
		for _, v := range cols {
			if v >= thresh && v > 0 {
				b.WriteByte('#')
			} else {
				b.WriteByte(' ')
			}
		}
		b.WriteString("|\n")
	}
	fmt.Fprintf(&b, "  +%s+\n", strings.Repeat("-", width))
	return b.String()
}

// WeekSeries renders the Figure 10 composite: per-15-minute-bin
// concurrency impulses (columns) with the utilization curve overlaid
// as 'o' marks, one row block per height level, collapsed to the given
// width. Both series must have the same length.
func WeekSeries(title string, concurrency, utilization []float64, width, height int) string {
	if len(concurrency) != len(utilization) || len(concurrency) == 0 {
		return title + ": (no data)\n"
	}
	if width <= 0 || width > len(concurrency) {
		width = len(concurrency)
	}
	if height < 3 {
		height = 3
	}
	conc := resampleMax(concurrency, width)
	util := resampleMax(utilization, width)
	maxC := 0.0
	for _, v := range conc {
		maxC = math.Max(maxC, v)
	}
	if maxC == 0 {
		maxC = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (impulses: cars, max %.0f; 'o': UPRB 0-100%%)\n", title, maxC)
	for r := height; r >= 1; r-- {
		cThresh := maxC * (float64(r) - 0.5) / float64(height)
		b.WriteString("  |")
		for c := 0; c < width; c++ {
			uRow := int(util[c]*float64(height)+0.5) == r
			switch {
			case uRow:
				b.WriteByte('o')
			case conc[c] >= cThresh && conc[c] > 0:
				b.WriteByte('#')
			default:
				b.WriteByte(' ')
			}
		}
		b.WriteString("|\n")
	}
	fmt.Fprintf(&b, "  +%s+\n", strings.Repeat("-", width))
	// Day ticks for a 672-bin week.
	if len(concurrency)%7 == 0 {
		per := width / 7
		b.WriteString("   ")
		for _, d := range []string{"Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"} {
			fmt.Fprintf(&b, "%-*s", per, d)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// resampleMax shrinks xs to n columns, taking the max within each.
func resampleMax(xs []float64, n int) []float64 {
	out := make([]float64, n)
	per := float64(len(xs)) / float64(n)
	for i, v := range xs {
		c := int(float64(i) / per)
		if c >= n {
			c = n - 1
		}
		out[c] = math.Max(out[c], v)
	}
	return out
}

// Timeline renders the Figure 8 exhibit: one row per car, '#' where
// the car is connected, over a 24-hour window split into width
// columns. spans is a per-car list of [startFrac, endFrac] pairs in
// [0,1] day fractions; rows beyond maxRows are elided with a note.
func Timeline(title string, spans [][][2]float64, width, maxRows int) string {
	if width < 24 {
		width = 24
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%d cars)\n", title, len(spans))
	rows := len(spans)
	elided := 0
	if maxRows > 0 && rows > maxRows {
		elided = rows - maxRows
		rows = maxRows
	}
	for i := 0; i < rows; i++ {
		line := make([]byte, width)
		for j := range line {
			line[j] = ' '
		}
		for _, sp := range spans[i] {
			lo := int(sp[0] * float64(width))
			hi := int(sp[1]*float64(width)) + 1
			if lo < 0 {
				lo = 0
			}
			if hi > width {
				hi = width
			}
			for j := lo; j < hi; j++ {
				line[j] = '#'
			}
		}
		fmt.Fprintf(&b, "  |%s|\n", line)
	}
	if elided > 0 {
		fmt.Fprintf(&b, "  ... %d more cars ...\n", elided)
	}
	fmt.Fprintf(&b, "  +%s+\n   0:00%s24:00\n", strings.Repeat("-", width),
		strings.Repeat(" ", width-9))
	return b.String()
}
