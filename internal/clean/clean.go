// Package clean implements the paper's §3 preprocessing over raw CDR
// streams: removal of erroneous exactly-one-hour records, truncation
// of implausibly long per-cell connections to 600 seconds, and
// concatenation of nearby connections into sessions — aggregate
// sessions (gap ≤ 30 s) for usage analyses and mobility sessions
// (gap ≤ 10 min) for handover analyses (§4.5).
package clean

import (
	"errors"
	"io"
	"slices"
	"time"

	"cellcars/internal/cdr"
	"cellcars/internal/radio"
)

// Preprocessing constants from the paper.
const (
	// GhostDuration is the duration of the erroneous records caused by
	// the network's periodic reporting feature; records lasting exactly
	// this long are dropped (§3).
	GhostDuration = time.Hour
	// TruncateLimit caps a single-cell connection's duration,
	// mitigating modems that improperly fail to disconnect (§3).
	TruncateLimit = 600 * time.Second
	// AggregateGap is the maximum gap between connections concatenated
	// into one aggregate session (§3).
	AggregateGap = 30 * time.Second
	// MobilityGap is the maximum gap between connections within one
	// mobility session for handover accounting (§4.5).
	MobilityGap = 10 * time.Minute
)

// RemoveGhosts filters out records whose duration is exactly
// GhostDuration.
func RemoveGhosts(r cdr.Reader) cdr.Reader {
	return cdr.FilterFunc(r, func(rec cdr.Record) bool {
		return rec.Duration != GhostDuration
	})
}

// Truncate caps every record's duration at limit.
func Truncate(r cdr.Reader, limit time.Duration) cdr.Reader {
	return &truncateReader{r: r, limit: limit}
}

type truncateReader struct {
	r     cdr.Reader
	limit time.Duration
}

func (t *truncateReader) Read() (cdr.Record, error) {
	rec, err := t.r.Read()
	if err != nil {
		return cdr.Record{}, err
	}
	if rec.Duration > t.limit {
		rec.Duration = t.limit
	}
	return rec, nil
}

// Standard returns the paper's standard cleaning chain: ghost removal
// followed by 600-second truncation.
func Standard(r cdr.Reader) cdr.Reader {
	return Truncate(RemoveGhosts(r), TruncateLimit)
}

// CellSpan is one cell connection within a session.
type CellSpan struct {
	Cell     radio.CellKey
	Start    time.Time
	Duration time.Duration
}

// Session is a concatenation of one car's connections whose gaps never
// exceed the sessionizer's gap parameter.
type Session struct {
	Car cdr.CarID
	// Start is the first connection's start; End is the latest
	// connection end seen (connections may overlap).
	Start, End time.Time
	// Connected is the sum of connection durations, which can exceed
	// End.Sub(Start) when connections overlap.
	Connected time.Duration
	// Spans are the individual cell connections in arrival order.
	Spans []CellSpan
}

// Duration returns the session's wall-clock extent.
func (s *Session) Duration() time.Duration { return s.End.Sub(s.Start) }

// Handovers counts the transitions between consecutive spans by kind.
// Consecutive spans on the same cell count as HandoverNone and are not
// reported.
func (s *Session) Handovers() map[radio.HandoverKind]int {
	out := make(map[radio.HandoverKind]int)
	for i := 1; i < len(s.Spans); i++ {
		k := radio.ClassifyHandover(s.Spans[i-1].Cell, s.Spans[i].Cell)
		if k != radio.HandoverNone {
			out[k]++
		}
	}
	return out
}

// NumHandovers returns the total handover count in the session.
func (s *Session) NumHandovers() int {
	n := 0
	for i := 1; i < len(s.Spans); i++ {
		if radio.ClassifyHandover(s.Spans[i-1].Cell, s.Spans[i].Cell) != radio.HandoverNone {
			n++
		}
	}
	return n
}

// Sessionizer concatenates a record stream into per-car sessions. Feed
// it records in global or per-car time order; each Add returns any
// sessions that the new record proves closed, and Flush returns the
// remainder. The zero value is unusable; construct with NewSessionizer.
type Sessionizer struct {
	gap  time.Duration
	open map[cdr.CarID]*Session
}

// NewSessionizer returns a sessionizer with the given maximum
// concatenation gap. It panics on a non-positive gap.
func NewSessionizer(gap time.Duration) *Sessionizer {
	if gap <= 0 {
		panic("clean: sessionizer gap must be positive")
	}
	return &Sessionizer{gap: gap, open: make(map[cdr.CarID]*Session)}
}

// Add feeds one record and returns the session it closed, if any.
// Records for one car must arrive in non-decreasing start order.
func (z *Sessionizer) Add(rec cdr.Record) *Session {
	cur := z.open[rec.Car]
	if cur != nil && rec.Start.Sub(cur.End) > z.gap {
		z.open[rec.Car] = newSession(rec)
		return cur
	}
	if cur == nil {
		z.open[rec.Car] = newSession(rec)
		return nil
	}
	cur.Spans = append(cur.Spans, CellSpan{Cell: rec.Cell, Start: rec.Start, Duration: rec.Duration})
	cur.Connected += rec.Duration
	if rec.End().After(cur.End) {
		cur.End = rec.End()
	}
	return nil
}

// Snapshot returns a copy of every still-open session, ordered by
// (car, start) for determinism, without closing them: unlike Flush it
// leaves the sessionizer's state untouched, so accumulators can
// finalize repeatedly while records keep arriving.
func (z *Sessionizer) Snapshot() []Session {
	out := make([]Session, 0, len(z.open))
	for _, s := range z.open {
		c := *s
		c.Spans = append([]CellSpan(nil), s.Spans...)
		out = append(out, c)
	}
	sortSessions(out)
	return out
}

// RestoreOpen replaces the sessionizer's open-session state with the
// given sessions (at most one per car, as produced by Snapshot) — the
// restore half of checkpointing. Sessions are copied in; a later
// session for the same car replaces an earlier one.
func (z *Sessionizer) RestoreOpen(sessions []Session) {
	z.open = make(map[cdr.CarID]*Session, len(sessions))
	for i := range sessions {
		s := sessions[i]
		s.Spans = append([]CellSpan(nil), sessions[i].Spans...)
		z.open[s.Car] = &s
	}
}

// Gap returns the maximum concatenation gap the sessionizer was
// constructed with.
func (z *Sessionizer) Gap() time.Duration { return z.gap }

// Open returns the live open session for one car, or nil. The caller
// may mutate it in place; the session stays open.
func (z *Sessionizer) Open(car cdr.CarID) *Session { return z.open[car] }

// Take removes and returns one car's open session without accounting
// it anywhere — the surgical half of an ordered (time-sliced) merge,
// where the caller decides whether the session closed or continues in
// an adjacent slice.
func (z *Sessionizer) Take(car cdr.CarID) *Session {
	s := z.open[car]
	delete(z.open, car)
	return s
}

// Put installs a session as one car's open session, replacing any
// current one. The session is adopted, not copied.
func (z *Sessionizer) Put(s *Session) { z.open[s.Car] = s }

// OpenCars returns the cars with an open session, ascending — the
// deterministic iteration order for ordered merges.
func (z *Sessionizer) OpenCars() []cdr.CarID {
	out := make([]cdr.CarID, 0, len(z.open))
	for car := range z.open {
		out = append(out, car)
	}
	slices.Sort(out)
	return out
}

// Flush closes and returns every open session, ordered by car id
// ascending for determinism. The sessionizer is reusable afterwards.
func (z *Sessionizer) Flush() []Session {
	out := make([]Session, 0, len(z.open))
	for _, s := range z.open {
		out = append(out, *s)
	}
	z.open = make(map[cdr.CarID]*Session)
	sortSessions(out)
	return out
}

func newSession(rec cdr.Record) *Session {
	return &Session{
		Car:       rec.Car,
		Start:     rec.Start,
		End:       rec.End(),
		Connected: rec.Duration,
		Spans:     []CellSpan{{Cell: rec.Cell, Start: rec.Start, Duration: rec.Duration}},
	}
}

// Sessions drains the reader through a sessionizer and returns every
// session, in closing order with the flush tail sorted by car.
func Sessions(r cdr.Reader, gap time.Duration) ([]Session, error) {
	z := NewSessionizer(gap)
	var out []Session
	for {
		rec, err := r.Read()
		if err != nil {
			if errors.Is(err, io.EOF) {
				out = append(out, z.Flush()...)
				return out, nil
			}
			return out, err
		}
		if s := z.Add(rec); s != nil {
			out = append(out, *s)
		}
	}
}

func sortSessions(s []Session) {
	// Insertion sort by (car, start): flush batches are small relative
	// to total work and usually nearly sorted.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && lessSession(&s[j], &s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func lessSession(a, b *Session) bool {
	if a.Car != b.Car {
		return a.Car < b.Car
	}
	return a.Start.Before(b.Start)
}
