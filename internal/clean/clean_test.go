package clean

import (
	"testing"
	"testing/quick"
	"time"

	"cellcars/internal/cdr"
	"cellcars/internal/radio"
)

var t0 = time.Date(2017, 1, 2, 0, 0, 0, 0, time.UTC)

func rec(car cdr.CarID, bs radio.BSID, start, dur time.Duration) cdr.Record {
	return cdr.Record{
		Car:      car,
		Cell:     radio.MakeCellKey(bs, 0, radio.C3),
		Start:    t0.Add(start),
		Duration: dur,
	}
}

func TestRemoveGhosts(t *testing.T) {
	in := []cdr.Record{
		rec(1, 1, 0, time.Hour), // ghost
		rec(1, 1, 2*time.Hour, 105*time.Second),
		rec(1, 1, 3*time.Hour, time.Hour+time.Second), // not exactly 1h: kept
	}
	out, err := cdr.ReadAll(RemoveGhosts(cdr.NewSliceReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("kept %d records, want 2", len(out))
	}
	for _, r := range out {
		if r.Duration == GhostDuration {
			t.Fatal("ghost survived")
		}
	}
}

func TestTruncate(t *testing.T) {
	in := []cdr.Record{
		rec(1, 1, 0, 30*time.Second),
		rec(1, 1, time.Hour, 900*time.Second),
		rec(1, 1, 2*time.Hour, 600*time.Second),
	}
	out, err := cdr.ReadAll(Truncate(cdr.NewSliceReader(in), TruncateLimit))
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Duration != 30*time.Second {
		t.Fatal("short record altered")
	}
	if out[1].Duration != 600*time.Second {
		t.Fatal("long record not truncated")
	}
	if out[2].Duration != 600*time.Second {
		t.Fatal("limit-length record altered")
	}
}

func TestStandardChain(t *testing.T) {
	in := []cdr.Record{
		rec(1, 1, 0, time.Hour),           // ghost: removed
		rec(1, 1, time.Hour, 2*time.Hour), // stuck: truncated to 600 s
		rec(1, 1, 4*time.Hour, 100*time.Second),
	}
	out, err := cdr.ReadAll(Standard(cdr.NewSliceReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("kept %d", len(out))
	}
	if out[0].Duration != TruncateLimit || out[1].Duration != 100*time.Second {
		t.Fatalf("durations %v / %v", out[0].Duration, out[1].Duration)
	}
}

func TestSessionizerConcatenatesWithinGap(t *testing.T) {
	z := NewSessionizer(30 * time.Second)
	// Three records 20 s apart: one session.
	var closed *Session
	for i, r := range []cdr.Record{
		rec(1, 1, 0, 60*time.Second),
		rec(1, 2, 80*time.Second, 60*time.Second),  // gap 20 s
		rec(1, 3, 160*time.Second, 40*time.Second), // gap 20 s
	} {
		if closed = z.Add(r); closed != nil {
			t.Fatalf("record %d closed a session early", i)
		}
	}
	sessions := z.Flush()
	if len(sessions) != 1 {
		t.Fatalf("sessions = %d", len(sessions))
	}
	s := sessions[0]
	if len(s.Spans) != 3 {
		t.Fatalf("spans = %d", len(s.Spans))
	}
	if s.Connected != 160*time.Second {
		t.Fatalf("connected = %v", s.Connected)
	}
	if s.Duration() != 200*time.Second {
		t.Fatalf("duration = %v", s.Duration())
	}
}

func TestSessionizerSplitsBeyondGap(t *testing.T) {
	z := NewSessionizer(30 * time.Second)
	if s := z.Add(rec(1, 1, 0, 60*time.Second)); s != nil {
		t.Fatal("first record closed a session")
	}
	// 31 s gap: new session, old one returned.
	s := z.Add(rec(1, 2, 91*time.Second, 60*time.Second))
	if s == nil {
		t.Fatal("session not closed across a 31 s gap")
	}
	if len(s.Spans) != 1 || s.Spans[0].Cell.BS() != 1 {
		t.Fatalf("closed session wrong: %+v", s)
	}
	rest := z.Flush()
	if len(rest) != 1 || rest[0].Spans[0].Cell.BS() != 2 {
		t.Fatalf("open tail wrong: %+v", rest)
	}
}

func TestSessionizerGapMeasuredFromSessionEnd(t *testing.T) {
	z := NewSessionizer(30 * time.Second)
	// Overlapping records extend the session end; a record 25 s after
	// the *extended* end still concatenates.
	z.Add(rec(1, 1, 0, 300*time.Second))
	z.Add(rec(1, 2, 60*time.Second, 60*time.Second)) // inside first record
	if s := z.Add(rec(1, 3, 320*time.Second, 30*time.Second)); s != nil {
		t.Fatal("record 20 s after session end should concatenate")
	}
	sessions := z.Flush()
	if len(sessions) != 1 || len(sessions[0].Spans) != 3 {
		t.Fatalf("sessions: %+v", sessions)
	}
}

func TestSessionizerPerCarIsolation(t *testing.T) {
	z := NewSessionizer(30 * time.Second)
	z.Add(rec(1, 1, 0, 60*time.Second))
	z.Add(rec(2, 5, 10*time.Second, 60*time.Second))
	z.Add(rec(1, 2, 70*time.Second, 60*time.Second))
	sessions := z.Flush()
	if len(sessions) != 2 {
		t.Fatalf("sessions = %d, want 2", len(sessions))
	}
	if sessions[0].Car != 1 || sessions[1].Car != 2 {
		t.Fatalf("flush order by car: %v %v", sessions[0].Car, sessions[1].Car)
	}
	if len(sessions[0].Spans) != 2 || len(sessions[1].Spans) != 1 {
		t.Fatal("per-car spans wrong")
	}
}

func TestSessionsHelper(t *testing.T) {
	in := []cdr.Record{
		rec(1, 1, 0, 60*time.Second),
		rec(1, 2, 70*time.Second, 60*time.Second),
		rec(1, 3, 20*time.Minute, 60*time.Second),
		rec(2, 4, 0, 30*time.Second),
	}
	cdr.Sort(in)
	sessions, err := Sessions(cdr.NewSliceReader(in), 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(sessions) != 3 {
		t.Fatalf("sessions = %d, want 3", len(sessions))
	}
}

func TestSessionHandovers(t *testing.T) {
	s := Session{
		Spans: []CellSpan{
			{Cell: radio.MakeCellKey(1, 0, radio.C3)},
			{Cell: radio.MakeCellKey(2, 0, radio.C3)}, // inter-BS
			{Cell: radio.MakeCellKey(2, 1, radio.C3)}, // inter-sector
			{Cell: radio.MakeCellKey(2, 1, radio.C4)}, // inter-carrier
			{Cell: radio.MakeCellKey(2, 1, radio.C2)}, // inter-tech (C4 4G -> C2 3G)
			{Cell: radio.MakeCellKey(2, 1, radio.C2)}, // same cell: none
		},
	}
	h := s.Handovers()
	if h[radio.HandoverInterBS] != 1 || h[radio.HandoverInterSector] != 1 ||
		h[radio.HandoverInterCarrier] != 1 || h[radio.HandoverInterTech] != 1 {
		t.Fatalf("handover counts: %v", h)
	}
	if s.NumHandovers() != 4 {
		t.Fatalf("NumHandovers = %d", s.NumHandovers())
	}
}

func TestNewSessionizerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSessionizer(0)
}

// TestSessionizerConservesRecordsProperty: every record lands in
// exactly one session, and total connected time is conserved.
func TestSessionizerConservesRecordsProperty(t *testing.T) {
	f := func(starts []uint16, durs []uint8, cars []uint8) bool {
		n := len(starts)
		if len(durs) < n {
			n = len(durs)
		}
		if len(cars) < n {
			n = len(cars)
		}
		records := make([]cdr.Record, 0, n)
		var totalDur time.Duration
		for i := 0; i < n; i++ {
			r := rec(cdr.CarID(cars[i]%5), radio.BSID(i%7),
				time.Duration(starts[i])*time.Second,
				time.Duration(durs[i])*time.Second+time.Second)
			records = append(records, r)
			totalDur += r.Duration
		}
		cdr.Sort(records)
		sessions, err := Sessions(cdr.NewSliceReader(records), AggregateGap)
		if err != nil {
			return false
		}
		var gotRecords int
		var gotDur time.Duration
		for _, s := range sessions {
			gotRecords += len(s.Spans)
			gotDur += s.Connected
			if s.End.Before(s.Start) {
				return false
			}
		}
		return gotRecords == n && gotDur == totalDur
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSessionizerGapInvariantProperty: within a session, no span starts
// more than gap after the running end of the session so far.
func TestSessionizerGapInvariantProperty(t *testing.T) {
	f := func(starts []uint16, cars []uint8) bool {
		n := len(starts)
		if len(cars) < n {
			n = len(cars)
		}
		records := make([]cdr.Record, 0, n)
		for i := 0; i < n; i++ {
			records = append(records, rec(cdr.CarID(cars[i]%3), 1,
				time.Duration(starts[i])*time.Second, 45*time.Second))
		}
		cdr.Sort(records)
		sessions, err := Sessions(cdr.NewSliceReader(records), AggregateGap)
		if err != nil {
			return false
		}
		for _, s := range sessions {
			end := s.Spans[0].Start.Add(s.Spans[0].Duration)
			for _, sp := range s.Spans[1:] {
				if sp.Start.Sub(end) > AggregateGap {
					return false
				}
				if e := sp.Start.Add(sp.Duration); e.After(end) {
					end = e
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
