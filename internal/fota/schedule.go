package fota

import (
	"fmt"
	"sort"

	"cellcars/internal/analysis"
	"cellcars/internal/cdr"
	"cellcars/internal/predict"
	"cellcars/internal/radio"
	"cellcars/internal/simtime"
)

// HourSet is a 168-bit set of hour-of-week slots.
type HourSet [3]uint64

// Set marks an hour-of-week slot. It panics out of range.
func (h *HourSet) Set(hour int) {
	if hour < 0 || hour >= predict.HoursPerWeek {
		panic(fmt.Sprintf("fota: hour-of-week %d out of range", hour))
	}
	h[hour/64] |= 1 << uint(hour%64)
}

// Contains reports whether the slot is marked.
func (h *HourSet) Contains(hour int) bool {
	if hour < 0 || hour >= predict.HoursPerWeek {
		return false
	}
	return h[hour/64]&(1<<uint(hour%64)) != 0
}

// Count returns the number of marked slots.
func (h *HourSet) Count() int {
	n := 0
	for _, w := range h {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// ScheduledPolicy refines SegmentAwarePolicy with per-car time
// windows: common cars receive bytes only during their planned
// hour-of-week slots AND while the serving cell is below the busy
// threshold — scheduling decides *when*, the load check still decides
// *where*. Cars without a window (new or unpredictable) fall back to
// the plain busy-threshold rule; rare cars are always pushed.
type ScheduledPolicy struct {
	// Period and TZOffsetSeconds convert study bins to local
	// hour-of-week.
	Period          simtime.Period
	TZOffsetSeconds int
	// Windows maps each car to its allowed slots.
	Windows map[cdr.CarID]HourSet
	// BusyThreshold gates pushes inside and outside windows.
	BusyThreshold float64
}

// Name implements Policy.
func (ScheduledPolicy) Name() string { return "scheduled" }

// Allow implements Policy.
func (s ScheduledPolicy) Allow(car cdr.CarID, seg Segment, _ radio.CellKey, bin int, u float64) bool {
	if seg.Rare {
		return true // scarce appearance windows: take what we get
	}
	if u > s.BusyThreshold {
		return false
	}
	w, ok := s.Windows[car]
	if !ok {
		return true
	}
	t := s.Period.BinStart(bin)
	return w.Contains(simtime.HourOfWeek(t, s.TZOffsetSeconds))
}

// PlanWindows learns each car's profile over trainWeeks and plans a
// per-car push window of the hoursPerCar most frequent appearance
// hours, discounting network-peak hours so downloads land off-peak
// where the car's routine allows. Cars with no history get no window.
func PlanWindows(records []cdr.Record, ctx analysis.Context, trainWeeks, hoursPerCar int) map[cdr.CarID]HourSet {
	if hoursPerCar < 1 {
		hoursPerCar = 1
	}
	byCar := make(map[cdr.CarID][]cdr.Record)
	for _, r := range records {
		byCar[r.Car] = append(byCar[r.Car], r)
	}
	_, peak, _ := analysis.ReferenceMatrices()

	out := make(map[cdr.CarID]HourSet, len(byCar))
	for car, recs := range byCar {
		profile := predict.Learn(recs, ctx.Period, ctx.TZOffsetSeconds, trainWeeks)
		type slot struct {
			hour  int
			score float64
		}
		var slots []slot
		for h, f := range profile.Freq {
			if f <= 0 {
				continue
			}
			score := f
			if peak.At(h%24, h/24) > 0 {
				score *= 0.25 // prefer off-peak appearances
			}
			slots = append(slots, slot{h, score})
		}
		if len(slots) == 0 {
			continue
		}
		sort.Slice(slots, func(i, j int) bool {
			if slots[i].score != slots[j].score {
				return slots[i].score > slots[j].score
			}
			return slots[i].hour < slots[j].hour
		})
		var w HourSet
		for i := 0; i < hoursPerCar && i < len(slots); i++ {
			w.Set(slots[i].hour)
		}
		out[car] = w
	}
	return out
}
