// Package fota builds and evaluates firmware-over-the-air update
// campaigns on top of the measurement pipeline — the management
// application the paper motivates (§1, §4.3) but does not build.
//
// A campaign must deliver an update of a given size to every car
// within a window. The planner replays a CDR stream: whenever a car is
// connected and the active policy approves, the download progresses at
// a rate set by the serving cell's free PRB capacity. Policies differ
// in when they push:
//
//   - Naive: push whenever the car is connected.
//   - Randomized: push with a fixed probability per connection,
//     spreading load over the campaign window.
//   - SegmentAware: the paper's proposal — rare cars download whenever
//     they appear (their windows are scarce); common cars only when
//     the serving cell is below the busy threshold.
//
// The simulation reports completion over time and the load pushed into
// already-busy cells — the "pouring oil onto the fire" the paper warns
// about.
package fota

import (
	"fmt"
	"time"

	"cellcars/internal/analysis"
	"cellcars/internal/cdr"
	"cellcars/internal/radio"
	"cellcars/internal/simtime"
)

// Segment summarizes what the planner knows about a car from the
// measurement pipeline.
type Segment struct {
	// Rare marks cars on the network on few days (paper: ≤ 10 of 90).
	Rare bool
	// BusyHour marks cars whose connected time concentrates in busy
	// cells (≥ 65%).
	BusyHour bool
}

// Policy decides whether to push bytes to a car during a connection
// slice.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Allow reports whether the download may proceed for the car in
	// the given cell-bin with utilization u.
	Allow(car cdr.CarID, seg Segment, cell radio.CellKey, bin int, u float64) bool
}

// NaivePolicy pushes whenever a car is connected.
type NaivePolicy struct{}

// Name implements Policy.
func (NaivePolicy) Name() string { return "naive" }

// Allow implements Policy: always true.
func (NaivePolicy) Allow(cdr.CarID, Segment, radio.CellKey, int, float64) bool { return true }

// RandomizedPolicy pushes with a fixed probability per connection
// slice, deterministically derived from (car, bin) so replays agree.
type RandomizedPolicy struct {
	// P is the per-slice push probability in (0, 1].
	P float64
	// Seed decorrelates campaigns.
	Seed uint64
}

// Name implements Policy.
func (p RandomizedPolicy) Name() string { return fmt.Sprintf("randomized(%.2f)", p.P) }

// Allow implements Policy.
func (p RandomizedPolicy) Allow(car cdr.CarID, _ Segment, _ radio.CellKey, bin int, _ float64) bool {
	h := uint64(car)*0x9E3779B97F4A7C15 ^ uint64(bin)*0xBF58476D1CE4E5B9 ^ p.Seed
	h ^= h >> 31
	h *= 0x94D049BB133111EB
	h ^= h >> 29
	return float64(h%1_000_000)/1_000_000 < p.P
}

// SegmentAwarePolicy implements the paper's §4.3 proposal: rare cars
// are prioritized unconditionally (their appearance windows are
// scarce); all other cars download only when the serving cell is below
// the busy threshold.
type SegmentAwarePolicy struct {
	// BusyThreshold is the UPRB level above which pushes are deferred
	// for common cars. Typically load.Source.BusyThreshold().
	BusyThreshold float64
}

// Name implements Policy.
func (SegmentAwarePolicy) Name() string { return "segment-aware" }

// Allow implements Policy.
func (s SegmentAwarePolicy) Allow(_ cdr.CarID, seg Segment, _ radio.CellKey, _ int, u float64) bool {
	if seg.Rare {
		return true
	}
	return u <= s.BusyThreshold
}

// Config parameterizes a campaign simulation.
type Config struct {
	// UpdateMB is the payload size per car in megabytes. FOTA images
	// range from megabytes to gigabytes; default 200.
	UpdateMB float64
	// MbpsPerFreePRBPercent converts free cell capacity into download
	// rate: a cell at 0% utilization offers roughly its full
	// per-carrier throughput. Default 0.8 Mbps per free percentage
	// point (≈ 80 Mbps on an empty 20 MHz carrier).
	MbpsPerFreePRBPercent float64
	// MaxUEMbps caps a single car's rate. Default 40.
	MaxUEMbps float64
	// Policy is the push policy. Default NaivePolicy.
	Policy Policy
}

// DefaultConfig returns standard campaign parameters with the given
// policy.
func DefaultConfig(p Policy) Config {
	return Config{UpdateMB: 200, MbpsPerFreePRBPercent: 0.8, MaxUEMbps: 40, Policy: p}
}

// Result summarizes a simulated campaign.
type Result struct {
	// Policy is the evaluated policy's name.
	Policy string
	// Cars is the number of cars in the campaign.
	Cars int
	// Completed is the number that finished the download in the window.
	Completed int
	// CompletionDay[d] is the cumulative fraction completed by the end
	// of study day d.
	CompletionDay []float64
	// DeliveredMB is the total payload delivered.
	DeliveredMB float64
	// BusyMB is the payload delivered while the serving cell was busy —
	// the network-impact figure the policies trade off.
	BusyMB float64
	// MeanDaysToComplete averages completion time over completed cars.
	MeanDaysToComplete float64
}

// BusyShare returns the fraction of delivered bytes pushed into busy
// cells.
func (r Result) BusyShare() float64 {
	if r.DeliveredMB == 0 {
		return 0
	}
	return r.BusyMB / r.DeliveredMB
}

// Simulate replays a record stream (ghost-free, any order that is
// per-car chronological) and runs the campaign under cfg. Segments
// may be nil, in which case every car is treated as common/non-busy.
// It panics without a load source.
func Simulate(records []cdr.Record, ctx analysis.Context, segments map[cdr.CarID]Segment, cfg Config) Result {
	if ctx.Load == nil {
		panic("fota: Simulate requires a load source")
	}
	if cfg.Policy == nil {
		cfg.Policy = NaivePolicy{}
	}
	if cfg.UpdateMB <= 0 {
		cfg.UpdateMB = 200
	}
	if cfg.MbpsPerFreePRBPercent <= 0 {
		cfg.MbpsPerFreePRBPercent = 0.8
	}
	if cfg.MaxUEMbps <= 0 {
		cfg.MaxUEMbps = 40
	}

	remaining := make(map[cdr.CarID]float64)
	doneDay := make(map[cdr.CarID]int)
	thresh := ctx.Load.BusyThreshold()
	res := Result{Policy: cfg.Policy.Name()}

	for _, r := range records {
		rem, seen := remaining[r.Car]
		if !seen {
			rem = cfg.UpdateMB
			remaining[r.Car] = rem
		}
		if rem <= 0 {
			continue
		}
		seg := segments[r.Car]
		first, last := ctx.Period.BinRange(r.Start, r.Duration)
		for bin := first; bin < last && rem > 0; bin++ {
			overlap := ctx.Period.OverlapWithBin(bin, r.Start, r.Duration)
			if overlap <= 0 {
				continue
			}
			u := ctx.Load.Utilization(r.Cell, bin)
			if !cfg.Policy.Allow(r.Car, seg, r.Cell, bin, u) {
				continue
			}
			rate := (1 - u) * 100 * cfg.MbpsPerFreePRBPercent
			if rate > cfg.MaxUEMbps {
				rate = cfg.MaxUEMbps
			}
			mb := rate * overlap.Seconds() / 8
			if mb > rem {
				mb = rem
			}
			rem -= mb
			res.DeliveredMB += mb
			if u > thresh {
				res.BusyMB += mb
			}
			if rem <= 0 {
				doneDay[r.Car] = bin / simtime.BinsPerDay
			}
		}
		remaining[r.Car] = rem
	}

	res.Cars = len(remaining)
	res.CompletionDay = make([]float64, ctx.Period.Days())
	var sumDays float64
	for _, day := range doneDay {
		res.Completed++
		sumDays += float64(day + 1)
		for d := day; d < len(res.CompletionDay); d++ {
			res.CompletionDay[d]++
		}
	}
	if res.Cars > 0 {
		for d := range res.CompletionDay {
			res.CompletionDay[d] /= float64(res.Cars)
		}
	}
	if res.Completed > 0 {
		res.MeanDaysToComplete = sumDays / float64(res.Completed)
	}
	return res
}

// SegmentsFromReport derives per-car segments from a pipeline report
// using the paper's thresholds: rare = on ≤ rareDays distinct days;
// busy-hour = busy-time fraction ≥ 65%.
func SegmentsFromReport(records []cdr.Record, ctx analysis.Context, rareDays int) map[cdr.CarID]Segment {
	days := analysis.DaysOnNetwork(records, ctx.Period)
	busy := analysis.BusyTimeOf(records, ctx)
	out := make(map[cdr.CarID]Segment, len(days))
	for car, d := range days {
		out[car] = Segment{
			Rare:     d <= rareDays,
			BusyHour: busy.FracByCar[car] >= analysis.BusyCarMinFrac,
		}
	}
	return out
}

// Compare runs the same campaign under several policies and returns
// the results in input order — the ablation the benchmarks report.
func Compare(records []cdr.Record, ctx analysis.Context, segments map[cdr.CarID]Segment, base Config, policies ...Policy) []Result {
	out := make([]Result, 0, len(policies))
	for _, p := range policies {
		cfg := base
		cfg.Policy = p
		out = append(out, Simulate(records, ctx, segments, cfg))
	}
	return out
}

// FormatResults renders campaign results as an aligned table.
func FormatResults(results []Result) string {
	s := fmt.Sprintf("%-18s  %6s  %9s  %10s  %9s  %10s\n",
		"policy", "cars", "completed", "mean days", "busy MB%", "delivered")
	for _, r := range results {
		s += fmt.Sprintf("%-18s  %6d  %8.1f%%  %10.2f  %8.1f%%  %8.0fMB\n",
			r.Policy, r.Cars,
			100*float64(r.Completed)/float64(max(1, r.Cars)),
			r.MeanDaysToComplete, 100*r.BusyShare(), r.DeliveredMB)
	}
	return s
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// WindowSuggestion recommends a per-car push window from its usage
// matrix: the local hour-of-week with the most historical sessions
// whose network-peak overlap is lowest — a simple scheduling aid for
// OEM campaign tools.
func WindowSuggestion(m *simtime.WeekMatrix) (hour, day int) {
	_, peak, _ := analysis.ReferenceMatrices()
	bestScore := -1.0
	for d := 0; d < 7; d++ {
		for h := 0; h < 24; h++ {
			score := m.At(h, d)
			if peak.At(h, d) > 0 {
				score *= 0.25 // discount network busy hours
			}
			if score > bestScore {
				bestScore, hour, day = score, h, d
			}
		}
	}
	return hour, day
}

// EstimateDuration returns how long a payload takes at a cell's
// current utilization under the config's rate model.
func EstimateDuration(cfg Config, u float64) time.Duration {
	rate := (1 - u) * 100 * cfg.MbpsPerFreePRBPercent
	if rate > cfg.MaxUEMbps {
		rate = cfg.MaxUEMbps
	}
	if rate <= 0 {
		return time.Duration(1<<62 - 1)
	}
	seconds := cfg.UpdateMB * 8 / rate
	return time.Duration(seconds * float64(time.Second))
}
