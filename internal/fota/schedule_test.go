package fota

import (
	"testing"
	"time"

	"cellcars/internal/cdr"
	"cellcars/internal/predict"
	"cellcars/internal/simtime"
)

func TestHourSet(t *testing.T) {
	var h HourSet
	h.Set(0)
	h.Set(100)
	h.Set(predict.HoursPerWeek - 1)
	if !h.Contains(0) || !h.Contains(100) || !h.Contains(167) {
		t.Fatal("contains")
	}
	if h.Contains(1) || h.Contains(-1) || h.Contains(200) {
		t.Fatal("spurious contains")
	}
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestHourSetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var h HourSet
	h.Set(predict.HoursPerWeek)
}

func TestScheduledPolicyWindow(t *testing.T) {
	period := simtime.NewPeriod(t0, 7) // starts Monday
	var w HourSet
	w.Set(8) // Monday 08:00 UTC
	p := ScheduledPolicy{
		Period:        period,
		Windows:       map[cdr.CarID]HourSet{1: w},
		BusyThreshold: 0.8,
	}
	// Bin at Monday 08:15 is inside the window.
	binIn := period.BinIndex(t0.Add(8*time.Hour + 15*time.Minute))
	if !p.Allow(1, Segment{}, cell(1), binIn, 0.5) {
		t.Fatal("in-window push on an idle cell rejected")
	}
	// The busy gate holds even inside the window.
	if p.Allow(1, Segment{}, cell(1), binIn, 0.95) {
		t.Fatal("in-window push on a busy cell accepted")
	}
	// Monday 09:00 is outside.
	binOut := period.BinIndex(t0.Add(9 * time.Hour))
	if p.Allow(1, Segment{}, cell(1), binOut, 0.1) {
		t.Fatal("out-of-window push accepted")
	}
	// Rare cars bypass windows.
	if !p.Allow(1, Segment{Rare: true}, cell(1), binOut, 0.95) {
		t.Fatal("rare car rejected")
	}
	// Window-less cars fall back to the busy rule.
	if !p.Allow(2, Segment{}, cell(1), binOut, 0.5) {
		t.Fatal("window-less car rejected on idle cell")
	}
	if p.Allow(2, Segment{}, cell(1), binOut, 0.95) {
		t.Fatal("window-less car accepted on busy cell")
	}
	if p.Name() != "scheduled" {
		t.Fatalf("name = %q", p.Name())
	}
}

func TestScheduledPolicyHonoursTimezone(t *testing.T) {
	period := simtime.NewPeriod(t0, 7)
	var w HourSet
	w.Set(8) // local Monday 08:00
	p := ScheduledPolicy{
		Period:          period,
		TZOffsetSeconds: -5 * 3600,
		Windows:         map[cdr.CarID]HourSet{1: w},
		BusyThreshold:   0.8,
	}
	// Local Monday 08:00 = 13:00 UTC.
	bin := period.BinIndex(t0.Add(13 * time.Hour))
	if !p.Allow(1, Segment{}, cell(1), bin, 0.2) {
		t.Fatal("tz-shifted window rejected")
	}
}

func TestPlanWindows(t *testing.T) {
	ctx := ctxWith(cell(9))
	// Car 1 appears Monday 06:00 (off-peak) and Monday 20:00 (network
	// peak) every week; the planner must prefer the off-peak hour.
	var records []cdr.Record
	// One-week period in ctxWith; use a 2-week period instead.
	ctx.Period = simtime.NewPeriod(t0, 14)
	for w := 0; w < 2; w++ {
		base := time.Duration(w*7*24) * time.Hour
		records = append(records,
			rec(1, cell(1), base+6*time.Hour, 20*time.Minute),
			rec(1, cell(1), base+20*time.Hour, 20*time.Minute),
		)
	}
	windows := PlanWindows(records, ctx, 2, 1)
	w, ok := windows[1]
	if !ok {
		t.Fatal("no window planned")
	}
	if !w.Contains(6) {
		t.Fatalf("window does not contain the off-peak hour: count=%d contains20=%v",
			w.Count(), w.Contains(20))
	}
	if w.Count() != 1 {
		t.Fatalf("window size = %d, want 1", w.Count())
	}
}

func TestPlanWindowsEmptyHistory(t *testing.T) {
	ctx := ctxWith(cell(9))
	windows := PlanWindows(nil, ctx, 1, 2)
	if len(windows) != 0 {
		t.Fatalf("windows for no cars: %v", windows)
	}
}

func TestScheduledPolicyEndToEnd(t *testing.T) {
	ctx := ctxWith(cell(9))
	ctx.Period = simtime.NewPeriod(t0, 14)
	// A car appearing Monday 06:00 weekly on an idle cell.
	var records []cdr.Record
	for w := 0; w < 2; w++ {
		base := time.Duration(w*7*24) * time.Hour
		records = append(records, rec(1, cell(1), base+6*time.Hour, 30*time.Minute))
	}
	windows := PlanWindows(records, ctx, 1, 2)
	cfg := DefaultConfig(ScheduledPolicy{
		Period:        ctx.Period,
		Windows:       windows,
		BusyThreshold: 0.8,
	})
	cfg.UpdateMB = 100
	res := Simulate(records, ctx, nil, cfg)
	if res.Completed != 1 {
		t.Fatalf("scheduled campaign completed %d/%d", res.Completed, res.Cars)
	}
	if res.BusyMB != 0 {
		t.Fatalf("busy bytes %v on an idle cell", res.BusyMB)
	}
}
