package fota

import (
	"strings"
	"testing"
	"time"

	"cellcars/internal/analysis"
	"cellcars/internal/cdr"
	"cellcars/internal/radio"
	"cellcars/internal/simtime"
)

var t0 = time.Date(2017, 1, 2, 0, 0, 0, 0, time.UTC)

func rec(car cdr.CarID, cell radio.CellKey, start, dur time.Duration) cdr.Record {
	return cdr.Record{Car: car, Cell: cell, Start: t0.Add(start), Duration: dur}
}

func cell(bs radio.BSID) radio.CellKey { return radio.MakeCellKey(bs, 0, radio.C3) }

// fixedLoad marks one cell busy (0.9) and the rest idle (0.2).
type fixedLoad struct{ busyCell radio.CellKey }

func (f *fixedLoad) Utilization(c radio.CellKey, bin int) float64 {
	if c == f.busyCell {
		return 0.9
	}
	return 0.2
}
func (f *fixedLoad) BusyThreshold() float64 { return 0.8 }

func ctxWith(busy radio.CellKey) analysis.Context {
	return analysis.Context{
		Period: simtime.NewPeriod(t0, 7),
		Load:   &fixedLoad{busyCell: busy},
	}
}

func TestNaiveCompletesFast(t *testing.T) {
	ctx := ctxWith(cell(9))
	// One car connected 30 minutes on an idle cell: at (1-0.2)*100*0.8 =
	// 64 Mbps capped at 40 → 40 Mbps → 5 MB/s → 1800 s * 5 = 9000 MB.
	records := []cdr.Record{rec(1, cell(1), time.Hour, 30*time.Minute)}
	res := Simulate(records, ctx, nil, DefaultConfig(NaivePolicy{}))
	if res.Cars != 1 || res.Completed != 1 {
		t.Fatalf("result: %+v", res)
	}
	if res.DeliveredMB != 200 {
		t.Fatalf("delivered = %v", res.DeliveredMB)
	}
	if res.BusyMB != 0 {
		t.Fatalf("busy MB = %v on an idle cell", res.BusyMB)
	}
	if res.CompletionDay[0] != 1 || res.CompletionDay[6] != 1 {
		t.Fatalf("completion curve: %v", res.CompletionDay)
	}
	if res.MeanDaysToComplete != 1 {
		t.Fatalf("mean days = %v", res.MeanDaysToComplete)
	}
}

func TestNaivePushesIntoBusyCells(t *testing.T) {
	busy := cell(9)
	ctx := ctxWith(busy)
	records := []cdr.Record{rec(1, busy, time.Hour, 30*time.Minute)}
	res := Simulate(records, ctx, nil, DefaultConfig(NaivePolicy{}))
	if res.BusyMB == 0 {
		t.Fatal("naive policy should push into the busy cell")
	}
	if res.BusyShare() != 1 {
		t.Fatalf("busy share = %v", res.BusyShare())
	}
}

func TestSegmentAwareDefersCommonCars(t *testing.T) {
	busy := cell(9)
	ctx := ctxWith(busy)
	records := []cdr.Record{
		rec(1, busy, time.Hour, 30*time.Minute),       // common car in busy cell
		rec(1, cell(1), 30*time.Hour, 30*time.Minute), // later, idle cell
		rec(2, busy, time.Hour, 30*time.Minute),       // rare car in busy cell
	}
	segments := map[cdr.CarID]Segment{
		1: {Rare: false},
		2: {Rare: true},
	}
	res := Simulate(records, ctx, segments, DefaultConfig(SegmentAwarePolicy{BusyThreshold: 0.8}))
	if res.Completed != 2 {
		t.Fatalf("completed = %d", res.Completed)
	}
	// Only the rare car's bytes may hit the busy cell.
	if res.BusyMB != 200 {
		t.Fatalf("busy MB = %v, want exactly the rare car's 200", res.BusyMB)
	}
}

func TestSegmentAwareReducesBusyShareVsNaive(t *testing.T) {
	busy := cell(9)
	ctx := ctxWith(busy)
	var records []cdr.Record
	// Ten cars alternating between busy and idle cells.
	for car := cdr.CarID(1); car <= 10; car++ {
		records = append(records,
			rec(car, busy, time.Duration(car)*time.Hour, 10*time.Minute),
			rec(car, cell(1), 30*time.Hour+time.Duration(car)*time.Hour, 30*time.Minute),
		)
	}
	results := Compare(records, ctx, nil, DefaultConfig(nil),
		NaivePolicy{}, SegmentAwarePolicy{BusyThreshold: 0.8})
	if results[0].BusyShare() <= results[1].BusyShare() {
		t.Fatalf("naive busy share %.3f not above segment-aware %.3f",
			results[0].BusyShare(), results[1].BusyShare())
	}
	if results[1].BusyMB != 0 {
		t.Fatalf("segment-aware pushed %v MB into busy cells", results[1].BusyMB)
	}
}

func TestRandomizedPolicyDeterministicAndPartial(t *testing.T) {
	p := RandomizedPolicy{P: 0.5, Seed: 7}
	allowedA, allowedB := 0, 0
	for bin := 0; bin < 1000; bin++ {
		if p.Allow(1, Segment{}, cell(1), bin, 0.2) {
			allowedA++
		}
		if p.Allow(1, Segment{}, cell(1), bin, 0.9) { // u must not matter
			allowedB++
		}
	}
	if allowedA != allowedB {
		t.Fatal("randomized policy must not depend on utilization")
	}
	if allowedA < 350 || allowedA > 650 {
		t.Fatalf("allowed %d/1000 at P=0.5", allowedA)
	}
	if p.Name() != "randomized(0.50)" {
		t.Fatalf("name = %q", p.Name())
	}
}

func TestSimulatePanicsWithoutLoad(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Simulate(nil, analysis.Context{Period: simtime.NewPeriod(t0, 7)}, nil, DefaultConfig(nil))
}

func TestSimulateDefaults(t *testing.T) {
	ctx := ctxWith(cell(9))
	res := Simulate(nil, ctx, nil, Config{})
	if res.Policy != "naive" {
		t.Fatalf("default policy = %q", res.Policy)
	}
	if res.Cars != 0 || res.Completed != 0 {
		t.Fatalf("empty campaign: %+v", res)
	}
	if res.BusyShare() != 0 {
		t.Fatal("busy share of empty campaign")
	}
}

func TestSegmentsFromReport(t *testing.T) {
	busy := cell(9)
	ctx := ctxWith(busy)
	records := []cdr.Record{
		rec(1, busy, time.Hour, 10*time.Minute), // 1 day, all busy
		rec(2, cell(1), time.Hour, 10*time.Minute),
		rec(2, cell(1), 25*time.Hour, 10*time.Minute),
		rec(2, cell(1), 49*time.Hour, 10*time.Minute), // 3 days, never busy
	}
	segs := SegmentsFromReport(records, ctx, 1)
	if !segs[1].Rare || !segs[1].BusyHour {
		t.Fatalf("car 1 segment: %+v", segs[1])
	}
	if segs[2].Rare || segs[2].BusyHour {
		t.Fatalf("car 2 segment: %+v", segs[2])
	}
}

func TestFormatResults(t *testing.T) {
	out := FormatResults([]Result{{Policy: "naive", Cars: 10, Completed: 5, DeliveredMB: 100, BusyMB: 25, MeanDaysToComplete: 2}})
	if !strings.Contains(out, "naive") || !strings.Contains(out, "50.0%") || !strings.Contains(out, "25.0%") {
		t.Fatalf("format output:\n%s", out)
	}
}

func TestWindowSuggestionAvoidsPeaks(t *testing.T) {
	var m simtime.WeekMatrix
	// Heavy usage Monday 20:00 (network peak) and light usage Monday
	// 06:00 (off peak).
	m.Set(20, 0, 10)
	m.Set(6, 0, 4)
	h, d := WindowSuggestion(&m)
	if h != 6 || d != 0 {
		t.Fatalf("suggested %d:00 day %d, want 6:00 Monday", h, d)
	}
}

func TestEstimateDuration(t *testing.T) {
	cfg := DefaultConfig(NaivePolicy{})
	fast := EstimateDuration(cfg, 0.0)
	slow := EstimateDuration(cfg, 0.95)
	if fast >= slow {
		t.Fatalf("duration at idle %v not below busy %v", fast, slow)
	}
	// 200 MB at 40 Mbps = 40 s.
	if fast != 40*time.Second {
		t.Fatalf("fast = %v, want 40s", fast)
	}
	// Fully saturated cell: effectively forever.
	if EstimateDuration(cfg, 1.0) < time.Hour*24*365 {
		t.Fatal("saturated cell should be near-infinite")
	}
}

func TestCompareKeepsOrder(t *testing.T) {
	ctx := ctxWith(cell(9))
	records := []cdr.Record{rec(1, cell(1), time.Hour, 10*time.Minute)}
	results := Compare(records, ctx, nil, DefaultConfig(nil),
		NaivePolicy{}, RandomizedPolicy{P: 0.3}, SegmentAwarePolicy{BusyThreshold: 0.8})
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	if results[0].Policy != "naive" || results[2].Policy != "segment-aware" {
		t.Fatalf("order: %v %v %v", results[0].Policy, results[1].Policy, results[2].Policy)
	}
}
