package snapshot

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzReader: arbitrary input must either parse as a frame stream or
// return an error wrapping ErrBadSnapshot — never panic, never report
// a frame whose CRC did not validate.
func FuzzReader(f *testing.F) {
	// Seed with a valid stream and a few near-valid mutations.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	e := w.Begin("header")
	e.Uvarint(14)
	e.Varint(-18000)
	e.F64(1.5)
	e.String("seed")
	w.End()
	w.RawFrame("stage:days", bytes.Repeat([]byte{0xAB}, 64))
	_ = w.Close()
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	mut := append([]byte(nil), valid...)
	mut[9] ^= 0x10
	f.Add(mut)
	f.Add([]byte("CCARSNAP"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadSnapshot) {
				t.Fatalf("NewReader error %v does not wrap ErrBadSnapshot", err)
			}
			return
		}
		for {
			_, d, err := r.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				if !errors.Is(err, ErrBadSnapshot) {
					t.Fatalf("Next error %v does not wrap ErrBadSnapshot", err)
				}
				return
			}
			// Exercise the primitive decoders on the frame; they must
			// not panic regardless of payload contents.
			_ = d.Uvarint()
			_ = d.Varint()
			_ = d.F64()
			_ = d.String()
			_ = d.Len(1 << 20)
			_ = d.Err()
		}
	})
}
