// Package snapshot is the binary codec under the pipeline's durable
// checkpoints: a versioned, length-prefixed frame container with
// per-frame CRC-32 integrity, plus sticky-error primitive encoders
// for the values the analysis accumulators persist.
//
// A snapshot file is
//
//	magic "CCARSNAP" | uvarint version | frame* | end marker
//
// where each frame is
//
//	uvarint len(name) (> 0) | name | uvarint len(payload) | crc32(payload) | payload
//
// and the end marker is a single zero byte (a zero-length name). The
// container knows nothing about frame contents; the analysis layer
// names frames ("header", "worker", "stage:presence", …) and encodes
// payloads with Encoder/Decoder. Length prefixes make unknown frames
// skippable; the CRC makes bit flips a detected error instead of a
// silently corrupt report.
//
// Every malformed-input condition — bad magic, unsupported version,
// truncated stream, CRC mismatch, over-limit lengths, or a primitive
// read past the end of a frame — is reported as an error wrapping
// ErrBadSnapshot and never as a panic.
package snapshot

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// ErrBadSnapshot marks a snapshot stream that is malformed or corrupt:
// truncated, bit-flipped, wrong magic, or an unsupported version.
var ErrBadSnapshot = errors.New("snapshot: malformed or corrupt snapshot")

// Version is the current snapshot schema version. Readers refuse
// other versions: partial-state layouts are not forward compatible.
const Version = 1

var magic = [8]byte{'C', 'C', 'A', 'R', 'S', 'N', 'A', 'P'}

const (
	// maxNameLen bounds a frame name; names are short stage labels.
	maxNameLen = 255
	// maxFrameLen bounds one frame's payload (1 GiB). Real stage
	// payloads are far smaller; the bound keeps a forged length from
	// turning into an allocation bomb.
	maxFrameLen = 1 << 30
)

// badf returns a formatted error wrapping ErrBadSnapshot.
func badf(format string, args ...any) error {
	return fmt.Errorf("snapshot: "+format+": %w", append(args, ErrBadSnapshot)...)
}

// ---------------------------------------------------------------------------
// Primitive encoder

// Encoder appends primitive values to an io.Writer with a sticky
// error: the first write failure latches and subsequent calls are
// no-ops, so encoding code reads straight-line and checks Err once.
type Encoder struct {
	w   io.Writer
	buf [binary.MaxVarintLen64]byte
	err error
}

// NewEncoder returns an encoder over w.
func NewEncoder(w io.Writer) *Encoder { return &Encoder{w: w} }

// Err returns the first write error, or nil.
func (e *Encoder) Err() error { return e.err }

func (e *Encoder) write(b []byte) {
	if e.err != nil {
		return
	}
	_, e.err = e.w.Write(b)
}

// Uvarint appends an unsigned varint.
func (e *Encoder) Uvarint(x uint64) {
	n := binary.PutUvarint(e.buf[:], x)
	e.write(e.buf[:n])
}

// Varint appends a zig-zag signed varint.
func (e *Encoder) Varint(x int64) {
	n := binary.PutVarint(e.buf[:], x)
	e.write(e.buf[:n])
}

// F64 appends a float64 as its fixed 8-byte little-endian bit pattern.
func (e *Encoder) F64(x float64) {
	binary.LittleEndian.PutUint64(e.buf[:8], math.Float64bits(x))
	e.write(e.buf[:8])
}

// Bool appends a boolean as one byte.
func (e *Encoder) Bool(b bool) {
	if b {
		e.write([]byte{1})
	} else {
		e.write([]byte{0})
	}
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.write([]byte(s))
}

// ---------------------------------------------------------------------------
// Primitive decoder

// Decoder reads primitive values with a sticky error: the first
// failure latches, subsequent reads return zero values, and decoding
// code checks Err once at the end. Any read past the end of input is
// an ErrBadSnapshot, never a panic.
type Decoder struct {
	r   io.ByteReader
	rd  io.Reader
	err error
}

// NewDecoder returns a decoder over r.
func NewDecoder(r io.Reader) *Decoder {
	if br, ok := r.(interface {
		io.ByteReader
		io.Reader
	}); ok {
		return &Decoder{r: br, rd: br}
	}
	br := bufio.NewReader(r)
	return &Decoder{r: br, rd: br}
}

// Err returns the first decode error, or nil.
func (d *Decoder) Err() error { return d.err }

// Failf records a validation failure (wrapping ErrBadSnapshot) unless
// an error is already latched.
func (d *Decoder) Failf(format string, args ...any) {
	if d.err == nil {
		d.err = badf(format, args...)
	}
}

func (d *Decoder) fail(err error) {
	if d.err != nil {
		return
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		d.err = badf("unexpected end of snapshot data")
		return
	}
	d.err = err
}

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	x, err := binary.ReadUvarint(d.r)
	if err != nil {
		d.fail(err)
		return 0
	}
	return x
}

// Varint reads a zig-zag signed varint.
func (d *Decoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	x, err := binary.ReadVarint(d.r)
	if err != nil {
		d.fail(err)
		return 0
	}
	return x
}

// F64 reads a fixed 8-byte little-endian float64.
func (d *Decoder) F64() float64 {
	if d.err != nil {
		return 0
	}
	var b [8]byte
	if _, err := io.ReadFull(d.rd, b[:]); err != nil {
		d.fail(err)
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b[:]))
}

// Bool reads a one-byte boolean; any value other than 0 or 1 is a
// decode failure.
func (d *Decoder) Bool() bool {
	if d.err != nil {
		return false
	}
	b, err := d.r.ReadByte()
	if err != nil {
		d.fail(err)
		return false
	}
	if b > 1 {
		d.Failf("bad boolean byte %d", b)
		return false
	}
	return b == 1
}

// String reads a length-prefixed string of at most maxNameLen bytes.
func (d *Decoder) String() string {
	n := d.Uvarint()
	if d.err != nil {
		return ""
	}
	if n > maxNameLen {
		d.Failf("string length %d exceeds limit %d", n, maxNameLen)
		return ""
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(d.rd, b); err != nil {
		d.fail(err)
		return ""
	}
	return string(b)
}

// Len reads a collection length and validates it against max,
// returning -1 on failure. Decoding loops use it so that a corrupt
// count can never drive an allocation or iteration bomb.
func (d *Decoder) Len(max int) int {
	n := d.Uvarint()
	if d.err != nil {
		return -1
	}
	if max >= 0 && n > uint64(max) {
		d.Failf("length %d exceeds limit %d", n, max)
		return -1
	}
	if n > math.MaxInt32 {
		d.Failf("length %d not representable", n)
		return -1
	}
	return int(n)
}

// ---------------------------------------------------------------------------
// Frame container writer

// Writer emits a snapshot frame stream. Frames buffer in memory until
// End so each carries an exact length prefix and CRC. Like the
// encoders, Writer latches the first error; Close reports it.
type Writer struct {
	dst    io.Writer
	frame  bytes.Buffer
	enc    *Encoder
	name   string
	closed bool
	err    error
}

// NewWriter starts a snapshot stream on dst, writing the magic and
// version immediately.
func NewWriter(dst io.Writer) *Writer {
	w := &Writer{dst: dst}
	w.enc = NewEncoder(&w.frame)
	if _, err := dst.Write(magic[:]); err != nil {
		w.err = err
		return w
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], Version)
	if _, err := dst.Write(buf[:n]); err != nil {
		w.err = err
	}
	return w
}

// Begin opens a named frame and returns the encoder for its payload.
// Frames do not nest; Begin before End of the previous frame panics
// (a programming bug, not a data condition).
func (w *Writer) Begin(name string) *Encoder {
	if w.name != "" {
		panic(fmt.Sprintf("snapshot: Begin(%q) inside open frame %q", name, w.name))
	}
	if name == "" || len(name) > maxNameLen {
		panic(fmt.Sprintf("snapshot: bad frame name %q", name))
	}
	w.name = name
	w.frame.Reset()
	return w.enc
}

// End closes the open frame and writes it to the stream.
func (w *Writer) End() {
	if w.name == "" {
		panic("snapshot: End without Begin")
	}
	name := w.name
	w.name = ""
	if w.err == nil {
		w.err = w.enc.Err()
	}
	w.writeFrame(name, w.frame.Bytes())
}

// RawFrame writes a frame with an externally encoded payload — the
// path the analysis layer uses for accumulator SnapshotTo output.
func (w *Writer) RawFrame(name string, payload []byte) {
	if w.name != "" {
		panic(fmt.Sprintf("snapshot: RawFrame(%q) inside open frame %q", name, w.name))
	}
	if name == "" || len(name) > maxNameLen {
		panic(fmt.Sprintf("snapshot: bad frame name %q", name))
	}
	w.writeFrame(name, payload)
}

func (w *Writer) writeFrame(name string, payload []byte) {
	if w.err != nil {
		return
	}
	if len(payload) > maxFrameLen {
		w.err = fmt.Errorf("snapshot: frame %q payload %d bytes exceeds limit", name, len(payload))
		return
	}
	e := NewEncoder(w.dst)
	e.Uvarint(uint64(len(name)))
	e.write([]byte(name))
	e.Uvarint(uint64(len(payload)))
	// The CRC covers the name as well as the payload so that a bit
	// flip in either is detected.
	sum := crc32.ChecksumIEEE([]byte(name))
	sum = crc32.Update(sum, crc32.IEEETable, payload)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], sum)
	e.write(crc[:])
	e.write(payload)
	w.err = e.Err()
}

// Close writes the end marker and returns the first error seen. The
// writer is unusable afterwards.
func (w *Writer) Close() error {
	if w.closed {
		return errors.New("snapshot: writer already closed")
	}
	if w.name != "" {
		panic(fmt.Sprintf("snapshot: Close inside open frame %q", w.name))
	}
	w.closed = true
	if w.err == nil {
		_, w.err = w.dst.Write([]byte{0})
	}
	return w.err
}

// ---------------------------------------------------------------------------
// Frame container reader

// Reader consumes a snapshot frame stream written by Writer.
type Reader struct {
	br      *bufio.Reader
	version int
	done    bool
}

// NewReader validates the magic and version of the stream and returns
// a frame reader. A bad header is reported as ErrBadSnapshot.
func NewReader(src io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(src, 1<<16)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, badf("header truncated")
	}
	if m != magic {
		return nil, badf("bad magic %q", m)
	}
	v, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, badf("version truncated")
	}
	if v != Version {
		return nil, badf("unsupported snapshot version %d (want %d)", v, Version)
	}
	return &Reader{br: br, version: int(v)}, nil
}

// SchemaVersion returns the stream's schema version.
func (r *Reader) SchemaVersion() int { return r.version }

// Next reads the next frame, validates its CRC, and returns its name
// and a decoder over the payload. It returns io.EOF at the end marker;
// a stream that stops without one is ErrBadSnapshot.
func (r *Reader) Next() (string, *Decoder, error) {
	name, payload, err := r.NextFrame()
	if err != nil {
		return "", nil, err
	}
	return name, NewDecoder(bytes.NewReader(payload)), nil
}

// NextFrame is Next returning the raw validated payload instead of a
// decoder — the path for frames whose payload is itself a nested
// encoding (accumulator snapshots).
func (r *Reader) NextFrame() (string, []byte, error) {
	if r.done {
		return "", nil, io.EOF
	}
	nameLen, err := binary.ReadUvarint(r.br)
	if err != nil {
		return "", nil, badf("frame header truncated")
	}
	if nameLen == 0 {
		r.done = true
		return "", nil, io.EOF
	}
	if nameLen > maxNameLen {
		return "", nil, badf("frame name length %d exceeds limit", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(r.br, name); err != nil {
		return "", nil, badf("frame name truncated")
	}
	payLen, err := binary.ReadUvarint(r.br)
	if err != nil {
		return "", nil, badf("frame %q length truncated", name)
	}
	if payLen > maxFrameLen {
		return "", nil, badf("frame %q payload %d bytes exceeds limit", name, payLen)
	}
	var crc [4]byte
	if _, err := io.ReadFull(r.br, crc[:]); err != nil {
		return "", nil, badf("frame %q checksum truncated", name)
	}
	// CopyN grows the buffer as bytes actually arrive, so a forged
	// length cannot allocate ahead of the data.
	var payload bytes.Buffer
	if _, err := io.CopyN(&payload, r.br, int64(payLen)); err != nil {
		return "", nil, badf("frame %q payload truncated", name)
	}
	sum := crc32.ChecksumIEEE(name)
	sum = crc32.Update(sum, crc32.IEEETable, payload.Bytes())
	if sum != binary.LittleEndian.Uint32(crc[:]) {
		return "", nil, badf("frame %q checksum mismatch", name)
	}
	return string(name), payload.Bytes(), nil
}
