package snapshot

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Dir manages a directory of rotated snapshot cuts for a long-running
// process: each cut is written atomically under a monotonically
// numbered name, old cuts are pruned down to Keep, and restart picks
// the newest cut that still validates — so a crash mid-write (a torn
// tail) silently falls back to the previous good cut instead of
// refusing to start.
type Dir struct {
	// Path is the snapshot directory; WriteCut creates it on demand.
	Path string
	// Keep is how many cuts to retain, newest first. Values below 1
	// mean 1: the directory always keeps the latest good cut.
	Keep int
}

// cutPrefix and cutSuffix frame a cut file name: cut-000042.snap.
const (
	cutPrefix = "cut-"
	cutSuffix = ".snap"
)

func cutName(seq uint64) string {
	return fmt.Sprintf("%s%06d%s", cutPrefix, seq, cutSuffix)
}

// cutSeq parses a cut file name, reporting ok=false for foreign files.
func cutSeq(name string) (uint64, bool) {
	if !strings.HasPrefix(name, cutPrefix) || !strings.HasSuffix(name, cutSuffix) {
		return 0, false
	}
	mid := name[len(cutPrefix) : len(name)-len(cutSuffix)]
	if mid == "" {
		return 0, false
	}
	seq, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// Cuts returns the directory's cut sequence numbers, ascending. A
// missing directory is an empty list, not an error.
func (d *Dir) Cuts() ([]uint64, error) {
	entries, err := os.ReadDir(d.Path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	var seqs []uint64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := cutSeq(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// CutPath returns the file path of one cut.
func (d *Dir) CutPath(seq uint64) string {
	return filepath.Join(d.Path, cutName(seq))
}

// WriteCut writes the next cut atomically — tmp file, fsync, rename —
// and prunes old cuts down to Keep. write receives the destination
// stream; any error it returns aborts the cut and leaves the directory
// unchanged. The new cut's sequence number is returned.
func (d *Dir) WriteCut(write func(w io.Writer) error) (uint64, error) {
	if err := os.MkdirAll(d.Path, 0o755); err != nil {
		return 0, err
	}
	seqs, err := d.Cuts()
	if err != nil {
		return 0, err
	}
	seq := uint64(1)
	if len(seqs) > 0 {
		seq = seqs[len(seqs)-1] + 1
	}
	final := d.CutPath(seq)
	tmp := final + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return 0, err
	}
	err = write(f)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, final)
	}
	if err != nil {
		os.Remove(tmp)
		return 0, err
	}
	d.prune(append(seqs, seq))
	return seq, nil
}

// prune removes the oldest cuts beyond Keep. Removal failures are
// ignored: a stale extra cut is harmless, and the next cut retries.
func (d *Dir) prune(seqs []uint64) {
	keep := d.Keep
	if keep < 1 {
		keep = 1
	}
	for len(seqs) > keep {
		os.Remove(d.CutPath(seqs[0]))
		seqs = seqs[1:]
	}
}

// LatestValid opens cuts newest-first until validate accepts one,
// returning its sequence number and validate's result. A cut whose
// validation fails (torn tail from a crash mid-rename-window, CRC
// damage) is skipped, not deleted — the next WriteCut rotates past it.
// ok=false with a nil error means no valid cut exists, the cold-start
// case.
func (d *Dir) LatestValid(validate func(seq uint64, r io.Reader) (any, error)) (seq uint64, result any, ok bool, err error) {
	seqs, err := d.Cuts()
	if err != nil {
		return 0, nil, false, err
	}
	for i := len(seqs) - 1; i >= 0; i-- {
		f, err := os.Open(d.CutPath(seqs[i]))
		if err != nil {
			continue
		}
		res, verr := validate(seqs[i], f)
		f.Close()
		if verr == nil {
			return seqs[i], res, true, nil
		}
	}
	return 0, nil, false, nil
}
