package snapshot

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func writeTestCut(t *testing.T, d *Dir, payload string) uint64 {
	t.Helper()
	seq, err := d.WriteCut(func(w io.Writer) error {
		sw := NewWriter(w)
		e := sw.Begin("data")
		e.String(payload)
		sw.End()
		return sw.Close()
	})
	if err != nil {
		t.Fatalf("WriteCut: %v", err)
	}
	return seq
}

// readTestCut validates the container end-to-end and returns the
// payload string.
func readTestCut(_ uint64, r io.Reader) (any, error) {
	sr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	name, d, err := sr.Next()
	if err != nil {
		return nil, err
	}
	if name != "data" {
		return nil, fmt.Errorf("unexpected frame %q", name)
	}
	s := d.String()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if _, _, err := sr.Next(); err != io.EOF {
		return nil, fmt.Errorf("expected clean end marker, got %v", err)
	}
	return s, nil
}

func TestDirRotationAndPrune(t *testing.T) {
	d := &Dir{Path: filepath.Join(t.TempDir(), "snaps"), Keep: 3}

	// Cold start: no directory, no cuts, no error.
	if seq, _, ok, err := d.LatestValid(readTestCut); err != nil || ok || seq != 0 {
		t.Fatalf("cold start: seq=%d ok=%v err=%v", seq, ok, err)
	}

	for i := 1; i <= 5; i++ {
		if seq := writeTestCut(t, d, fmt.Sprintf("cut %d", i)); seq != uint64(i) {
			t.Fatalf("cut %d got sequence %d", i, seq)
		}
	}
	seqs, err := d.Cuts()
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 3 || seqs[0] != 3 || seqs[2] != 5 {
		t.Fatalf("after 5 cuts with Keep=3, have %v", seqs)
	}

	seq, res, ok, err := d.LatestValid(readTestCut)
	if err != nil || !ok {
		t.Fatalf("LatestValid: ok=%v err=%v", ok, err)
	}
	if seq != 5 || res.(string) != "cut 5" {
		t.Fatalf("LatestValid returned seq=%d payload=%v", seq, res)
	}
}

func TestDirTornTailFallsBack(t *testing.T) {
	d := &Dir{Path: filepath.Join(t.TempDir(), "snaps"), Keep: 4}
	writeTestCut(t, d, "good")
	writeTestCut(t, d, "newer")

	// Simulate a crash that left a torn newest cut: truncate it.
	data, err := os.ReadFile(d.CutPath(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(d.CutPath(2), data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	seq, res, ok, err := d.LatestValid(readTestCut)
	if err != nil || !ok {
		t.Fatalf("LatestValid: ok=%v err=%v", ok, err)
	}
	if seq != 1 || res.(string) != "good" {
		t.Fatalf("expected fallback to cut 1, got seq=%d payload=%v", seq, res)
	}

	// The next cut rotates past the torn one.
	if seq := writeTestCut(t, d, "recovered"); seq != 3 {
		t.Fatalf("post-crash cut got sequence %d, want 3", seq)
	}
	if seq, res, ok, _ := d.LatestValid(readTestCut); !ok || seq != 3 || res.(string) != "recovered" {
		t.Fatalf("after recovery: seq=%d ok=%v payload=%v", seq, ok, res)
	}
}

func TestDirIgnoresForeignFiles(t *testing.T) {
	d := &Dir{Path: t.TempDir(), Keep: 2}
	for _, name := range []string{"README", "cut-.snap", "cut-xyz.snap", "cut-1.tmp"} {
		if err := os.WriteFile(filepath.Join(d.Path, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	seqs, err := d.Cuts()
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 0 {
		t.Fatalf("foreign files leaked into cut list: %v", seqs)
	}
	if seq := writeTestCut(t, d, "first"); seq != 1 {
		t.Fatalf("first cut in dirty dir got sequence %d", seq)
	}
}
