package snapshot

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
)

// buildStream writes a two-frame snapshot exercising every primitive.
func buildStream(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	e := w.Begin("header")
	e.Uvarint(90)
	e.Varint(-5 * 3600)
	e.F64(math.Pi)
	e.Bool(true)
	e.String("study")
	w.End()
	w.RawFrame("stage:presence", []byte{1, 2, 3, 4})
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	return buf.Bytes()
}

func TestContainerRoundTrip(t *testing.T) {
	data := buildStream(t)
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if r.SchemaVersion() != Version {
		t.Fatalf("version %d", r.SchemaVersion())
	}

	name, d, err := r.Next()
	if err != nil || name != "header" {
		t.Fatalf("frame 1: %q, %v", name, err)
	}
	if got := d.Uvarint(); got != 90 {
		t.Fatalf("uvarint %d", got)
	}
	if got := d.Varint(); got != -5*3600 {
		t.Fatalf("varint %d", got)
	}
	if got := d.F64(); got != math.Pi {
		t.Fatalf("f64 %v", got)
	}
	if !d.Bool() {
		t.Fatal("bool")
	}
	if got := d.String(); got != "study" {
		t.Fatalf("string %q", got)
	}
	if d.Err() != nil {
		t.Fatalf("decode err: %v", d.Err())
	}

	name, d, err = r.Next()
	if err != nil || name != "stage:presence" {
		t.Fatalf("frame 2: %q, %v", name, err)
	}
	var payload [4]byte
	if d.Uvarint() != 1 {
		t.Fatalf("raw payload: %v", payload)
	}

	if _, _, err := r.Next(); err != io.EOF {
		t.Fatalf("want io.EOF at end marker, got %v", err)
	}
	// Next after EOF stays EOF.
	if _, _, err := r.Next(); err != io.EOF {
		t.Fatalf("second Next: %v", err)
	}
}

// TestTruncationsReturnErrBadSnapshot: every strict prefix of a valid
// stream must produce ErrBadSnapshot (from NewReader or Next), never a
// panic and never a clean EOF.
func TestTruncationsReturnErrBadSnapshot(t *testing.T) {
	data := buildStream(t)
	for cut := 0; cut < len(data); cut++ {
		err := drain(data[:cut])
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes parsed cleanly", cut, len(data))
		}
		if !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("prefix %d: error %v does not wrap ErrBadSnapshot", cut, err)
		}
	}
	if err := drain(data); err != nil {
		t.Fatalf("full stream: %v", err)
	}
}

// TestBitFlipsReturnErrBadSnapshot: flipping any single bit of a valid
// stream must surface as an error (CRC or framing), never a panic.
// Flips inside frame payloads must specifically be caught by the CRC.
func TestBitFlipsReturnErrBadSnapshot(t *testing.T) {
	data := buildStream(t)
	for i := range data {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), data...)
			mut[i] ^= 1 << bit
			if err := drain(mut); err == nil {
				t.Fatalf("flip byte %d bit %d parsed cleanly", i, bit)
			} else if !errors.Is(err, ErrBadSnapshot) {
				t.Fatalf("flip byte %d bit %d: %v does not wrap ErrBadSnapshot", i, bit, err)
			}
		}
	}
}

// drain parses a stream to completion, decoding nothing (framing and
// CRC only), and returns the first error. A clean stream returns nil.
func drain(data []byte) error {
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		return err
	}
	for {
		_, _, err := r.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

func TestDecoderLimits(t *testing.T) {
	// A claimed string longer than the limit fails instead of
	// allocating.
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	e.Uvarint(1 << 40)
	d := NewDecoder(bytes.NewReader(buf.Bytes()))
	if s := d.String(); d.Err() == nil {
		t.Fatalf("oversized string length accepted: %q", s)
	}
	if !errors.Is(d.Err(), ErrBadSnapshot) {
		t.Fatalf("error %v does not wrap ErrBadSnapshot", d.Err())
	}

	// Len enforces the caller's bound.
	buf.Reset()
	NewEncoder(&buf).Uvarint(5000)
	d = NewDecoder(bytes.NewReader(buf.Bytes()))
	if n := d.Len(100); n != -1 || d.Err() == nil {
		t.Fatalf("Len(100) over 5000 = %d, err %v", n, d.Err())
	}

	// Bad boolean byte.
	d = NewDecoder(bytes.NewReader([]byte{7}))
	if d.Bool(); !errors.Is(d.Err(), ErrBadSnapshot) {
		t.Fatalf("bad bool byte: %v", d.Err())
	}
}

func TestDecoderStickyError(t *testing.T) {
	d := NewDecoder(bytes.NewReader(nil))
	_ = d.Uvarint()
	first := d.Err()
	if first == nil {
		t.Fatal("no error on empty input")
	}
	_ = d.Varint()
	_ = d.F64()
	if d.Err() != first {
		t.Fatal("error not sticky")
	}
}
