// Package simtime provides the time substrate for the connected-car
// measurement pipeline: the fixed study window, the 15-minute binning
// used for radio load and concurrency analyses, hour-of-week (24×7)
// matrices, and simple local-time handling for cars in different
// time zones.
//
// The paper analyzes a 90-day study period and aggregates most
// network-side measurements into 15-minute bins (96 per day, 672 per
// week). All library code takes explicit times; nothing reads the
// wall clock.
package simtime

import (
	"fmt"
	"time"
)

// BinWidth is the width of a load/concurrency time bin. The paper uses
// 15-minute bins for PRB utilization and car concurrency.
const BinWidth = 15 * time.Minute

// Bin layout constants derived from BinWidth.
const (
	BinsPerHour = int(time.Hour / BinWidth) // 4
	BinsPerDay  = 24 * BinsPerHour          // 96
	BinsPerWeek = 7 * BinsPerDay            // 672
	HoursPerDay = 24                        //
	DaySeconds  = int64(24 * time.Hour / time.Second)
)

// DefaultStudyDays is the length of the paper's measurement window.
const DefaultStudyDays = 90

// Period is a fixed study window starting at midnight UTC of Start and
// spanning Days whole days. The zero Period is not valid; construct one
// with NewPeriod.
type Period struct {
	start time.Time
	days  int
}

// NewPeriod returns a study period of the given number of days starting
// at midnight UTC on the day containing start. It panics if days is not
// positive, mirroring the contract of time.Duration arithmetic rather
// than returning an error: a non-positive study window is a programming
// error, never a data condition.
func NewPeriod(start time.Time, days int) Period {
	if days <= 0 {
		panic(fmt.Sprintf("simtime: non-positive study length %d", days))
	}
	u := start.UTC()
	mid := time.Date(u.Year(), u.Month(), u.Day(), 0, 0, 0, 0, time.UTC)
	return Period{start: mid, days: days}
}

// DefaultPeriod returns the 90-day study window used throughout the
// reproduction. The concrete start date is arbitrary (the paper only
// says "90-day period in 2017"); we pin it so that every run is
// deterministic. January 2 2017 is a Monday, which makes weekday
// indices easy to reason about in tests.
func DefaultPeriod() Period {
	return NewPeriod(time.Date(2017, time.January, 2, 0, 0, 0, 0, time.UTC), DefaultStudyDays)
}

// Start returns the first instant of the period (midnight UTC).
func (p Period) Start() time.Time { return p.start }

// End returns the first instant after the period.
func (p Period) End() time.Time { return p.start.AddDate(0, 0, p.days) }

// Days returns the number of whole days in the period.
func (p Period) Days() int { return p.days }

// Duration returns the total length of the period.
func (p Period) Duration() time.Duration { return p.End().Sub(p.start) }

// Seconds returns the total length of the period in seconds.
func (p Period) Seconds() int64 { return int64(p.Duration() / time.Second) }

// Contains reports whether t falls inside the period (start inclusive,
// end exclusive).
func (p Period) Contains(t time.Time) bool {
	return !t.Before(p.start) && t.Before(p.End())
}

// Clamp trims the interval [t, t+d) to the period and returns the
// clamped start and duration. The returned duration is zero when the
// interval does not overlap the period.
func (p Period) Clamp(t time.Time, d time.Duration) (time.Time, time.Duration) {
	if d < 0 {
		d = 0
	}
	end := t.Add(d)
	if t.Before(p.start) {
		t = p.start
	}
	if end.After(p.End()) {
		end = p.End()
	}
	if !end.After(t) {
		return t, 0
	}
	return t, end.Sub(t)
}

// DayIndex returns the zero-based day of the period containing t, or
// -1 when t is outside the period.
func (p Period) DayIndex(t time.Time) int {
	if !p.Contains(t) {
		return -1
	}
	return int(t.Sub(p.start) / (24 * time.Hour))
}

// DayStart returns the first instant of the zero-based day index. It
// panics when the index is out of range.
func (p Period) DayStart(day int) time.Time {
	if day < 0 || day >= p.days {
		panic(fmt.Sprintf("simtime: day index %d out of range [0,%d)", day, p.days))
	}
	return p.start.AddDate(0, 0, day)
}

// Weekday returns the weekday of the zero-based day index.
func (p Period) Weekday(day int) time.Weekday {
	return p.DayStart(day).Weekday()
}

// NumBins returns the number of 15-minute bins in the whole period.
func (p Period) NumBins() int { return p.days * BinsPerDay }

// BinIndex returns the zero-based 15-minute bin containing t, or -1
// when t is outside the period.
func (p Period) BinIndex(t time.Time) int {
	if !p.Contains(t) {
		return -1
	}
	return int(t.Sub(p.start) / BinWidth)
}

// BinStart returns the first instant of the zero-based bin index. It
// panics when the index is out of range.
func (p Period) BinStart(bin int) time.Time {
	if bin < 0 || bin >= p.NumBins() {
		panic(fmt.Sprintf("simtime: bin index %d out of range [0,%d)", bin, p.NumBins()))
	}
	return p.start.Add(time.Duration(bin) * BinWidth)
}

// BinRange returns the half-open range of bin indices overlapped by the
// interval [t, t+d). Both bounds are clamped to the period; when the
// interval does not overlap the period the returned range is empty
// (first >= last).
func (p Period) BinRange(t time.Time, d time.Duration) (first, last int) {
	t, d = p.Clamp(t, d)
	if d <= 0 {
		return 0, 0
	}
	first = int(t.Sub(p.start) / BinWidth)
	end := t.Add(d)
	last = int((end.Sub(p.start) + BinWidth - 1) / BinWidth)
	if last > p.NumBins() {
		last = p.NumBins()
	}
	return first, last
}

// OverlapWithBin returns how much of the interval [t, t+d) falls inside
// the given bin.
func (p Period) OverlapWithBin(bin int, t time.Time, d time.Duration) time.Duration {
	bs := p.BinStart(bin)
	be := bs.Add(BinWidth)
	s, e := t, t.Add(d)
	if s.Before(bs) {
		s = bs
	}
	if e.After(be) {
		e = be
	}
	if !e.After(s) {
		return 0
	}
	return e.Sub(s)
}

// WeekBin maps an instant to its bin-of-week in [0, BinsPerWeek), with
// week starting on Monday to match the paper's 24×7 matrices (columns
// M T W T F S S). The mapping uses the supplied fixed offset from UTC
// in seconds so that a car's local time of day is honoured.
func WeekBin(t time.Time, utcOffsetSeconds int) int {
	lt := t.Add(time.Duration(utcOffsetSeconds) * time.Second)
	wd := (int(lt.Weekday()) + 6) % 7 // Monday=0 ... Sunday=6
	secOfDay := lt.Hour()*3600 + lt.Minute()*60 + lt.Second()
	return wd*BinsPerDay + secOfDay/int(BinWidth/time.Second)
}

// HourOfWeek maps an instant to its hour-of-week in [0, 168) with the
// week starting on Monday, using the supplied fixed offset from UTC in
// seconds.
func HourOfWeek(t time.Time, utcOffsetSeconds int) int {
	lt := t.Add(time.Duration(utcOffsetSeconds) * time.Second)
	wd := (int(lt.Weekday()) + 6) % 7
	return wd*24 + lt.Hour()
}
