package simtime

import (
	"encoding/json"
	"fmt"
)

// WeekMatrix is a 24×7 hour-of-week accumulation matrix, the encoding
// the paper uses for commute peaks, network peaks, weekend windows
// (Fig 4) and per-car usage patterns (Fig 5). Rows are hours of the day
// (0–23), columns are days of the week starting Monday. The zero value
// is an empty matrix ready to use.
type WeekMatrix struct {
	cells [HoursPerDay * 7]float64
}

// At returns the accumulated value for the given hour (0–23) and
// day-of-week column (0=Monday … 6=Sunday).
func (m *WeekMatrix) At(hour, day int) float64 {
	return m.cells[m.index(hour, day)]
}

// Add accumulates v into the cell for the given hour and day column.
func (m *WeekMatrix) Add(hour, day int, v float64) {
	m.cells[m.index(hour, day)] += v
}

// Set overwrites the cell for the given hour and day column.
func (m *WeekMatrix) Set(hour, day int, v float64) {
	m.cells[m.index(hour, day)] = v
}

// AddHourOfWeek accumulates v into the cell addressed by an hour-of-week
// index in [0, 168) as produced by HourOfWeek.
func (m *WeekMatrix) AddHourOfWeek(how int, v float64) {
	if how < 0 || how >= HoursPerDay*7 {
		panic(fmt.Sprintf("simtime: hour-of-week %d out of range", how))
	}
	day := how / 24
	hour := how % 24
	m.Add(hour, day, v)
}

func (m *WeekMatrix) index(hour, day int) int {
	if hour < 0 || hour >= HoursPerDay || day < 0 || day >= 7 {
		panic(fmt.Sprintf("simtime: matrix cell (%d,%d) out of range", hour, day))
	}
	return hour*7 + day
}

// MarshalJSON renders the matrix as 24 hour-rows of 7 day columns
// (Monday first), so reports carrying matrices survive a JSON round
// trip instead of collapsing to an empty object.
func (m WeekMatrix) MarshalJSON() ([]byte, error) {
	rows := make([][7]float64, HoursPerDay)
	for hour := 0; hour < HoursPerDay; hour++ {
		for day := 0; day < 7; day++ {
			rows[hour][day] = m.At(hour, day)
		}
	}
	return json.Marshal(rows)
}

// UnmarshalJSON restores a matrix marshaled by MarshalJSON.
func (m *WeekMatrix) UnmarshalJSON(data []byte) error {
	var rows [][7]float64
	if err := json.Unmarshal(data, &rows); err != nil {
		return err
	}
	if len(rows) != HoursPerDay {
		return fmt.Errorf("simtime: week matrix needs %d hour rows, got %d", HoursPerDay, len(rows))
	}
	var out WeekMatrix
	for hour := range rows {
		for day := 0; day < 7; day++ {
			out.Set(hour, day, rows[hour][day])
		}
	}
	*m = out
	return nil
}

// Max returns the largest cell value, or 0 for an empty matrix.
func (m *WeekMatrix) Max() float64 {
	var max float64
	for _, v := range m.cells {
		if v > max {
			max = v
		}
	}
	return max
}

// Sum returns the total of all cells.
func (m *WeekMatrix) Sum() float64 {
	var s float64
	for _, v := range m.cells {
		s += v
	}
	return s
}

// Normalized returns a copy scaled so the largest cell is 1. An empty
// matrix normalizes to itself.
func (m *WeekMatrix) Normalized() WeekMatrix {
	out := *m
	max := m.Max()
	if max == 0 {
		return out
	}
	for i := range out.cells {
		out.cells[i] /= max
	}
	return out
}

// Scale multiplies every cell by f in place.
func (m *WeekMatrix) Scale(f float64) {
	for i := range m.cells {
		m.cells[i] *= f
	}
}

// Merge adds every cell of other into m.
func (m *WeekMatrix) Merge(other *WeekMatrix) {
	for i := range m.cells {
		m.cells[i] += other.cells[i]
	}
}

// ActiveCells returns the number of cells with a value strictly above
// threshold. The paper's "white box" (no connections that hour) test is
// ActiveCells with threshold 0 against the total 168.
func (m *WeekMatrix) ActiveCells(threshold float64) int {
	n := 0
	for _, v := range m.cells {
		if v > threshold {
			n++
		}
	}
	return n
}

// DayVector is an accumulation over the BinsPerDay 15-minute bins of a
// single day, used for per-cell daily load and concurrency curves.
type DayVector [BinsPerDay]float64

// WeekVector is an accumulation over the BinsPerWeek 15-minute bins of
// a week (Monday-start). Figure 11's clustering runs over 96-bin
// day-of-week-folded vectors; FoldToDay produces those.
type WeekVector [BinsPerWeek]float64

// FoldToDay sums the week vector into a 96-bin day vector, averaging
// over the 7 days. This matches the paper's "96-sized vector" per radio
// used as k-means input.
func (w *WeekVector) FoldToDay() DayVector {
	var d DayVector
	for i, v := range w {
		d[i%BinsPerDay] += v
	}
	for i := range d {
		d[i] /= 7
	}
	return d
}

// Max returns the largest bin value.
func (w *WeekVector) Max() float64 {
	var max float64
	for _, v := range w {
		if v > max {
			max = v
		}
	}
	return max
}

// Mean returns the average bin value.
func (w *WeekVector) Mean() float64 {
	var s float64
	for _, v := range w {
		s += v
	}
	return s / float64(len(w))
}
