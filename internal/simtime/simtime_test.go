package simtime

import (
	"testing"
	"testing/quick"
	"time"
)

func TestNewPeriodMidnightAlignment(t *testing.T) {
	p := NewPeriod(time.Date(2017, 3, 15, 13, 45, 12, 0, time.UTC), 10)
	if got := p.Start(); got != time.Date(2017, 3, 15, 0, 0, 0, 0, time.UTC) {
		t.Fatalf("start not aligned to midnight: %v", got)
	}
	if p.Days() != 10 {
		t.Fatalf("days = %d, want 10", p.Days())
	}
	if got, want := p.End(), p.Start().AddDate(0, 0, 10); got != want {
		t.Fatalf("end = %v, want %v", got, want)
	}
}

func TestNewPeriodPanicsOnNonPositiveDays(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for days=0")
		}
	}()
	NewPeriod(time.Now(), 0)
}

func TestDefaultPeriodStartsMonday(t *testing.T) {
	p := DefaultPeriod()
	if p.Start().Weekday() != time.Monday {
		t.Fatalf("default period starts on %v, want Monday", p.Start().Weekday())
	}
	if p.Days() != DefaultStudyDays {
		t.Fatalf("default period is %d days, want %d", p.Days(), DefaultStudyDays)
	}
}

func TestContains(t *testing.T) {
	p := DefaultPeriod()
	cases := []struct {
		t    time.Time
		want bool
	}{
		{p.Start(), true},
		{p.Start().Add(-time.Nanosecond), false},
		{p.End().Add(-time.Nanosecond), true},
		{p.End(), false},
		{p.Start().AddDate(0, 0, 45), true},
	}
	for _, c := range cases {
		if got := p.Contains(c.t); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestDayIndexRoundTrip(t *testing.T) {
	p := DefaultPeriod()
	for day := 0; day < p.Days(); day += 7 {
		start := p.DayStart(day)
		if got := p.DayIndex(start); got != day {
			t.Fatalf("DayIndex(DayStart(%d)) = %d", day, got)
		}
		if got := p.DayIndex(start.Add(23*time.Hour + 59*time.Minute)); got != day {
			t.Fatalf("late-day index = %d, want %d", got, day)
		}
	}
	if got := p.DayIndex(p.End()); got != -1 {
		t.Fatalf("DayIndex(end) = %d, want -1", got)
	}
}

func TestWeekdayProgression(t *testing.T) {
	p := DefaultPeriod()
	want := []time.Weekday{
		time.Monday, time.Tuesday, time.Wednesday, time.Thursday,
		time.Friday, time.Saturday, time.Sunday, time.Monday,
	}
	for i, w := range want {
		if got := p.Weekday(i); got != w {
			t.Fatalf("Weekday(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestBinIndexAndStart(t *testing.T) {
	p := DefaultPeriod()
	if p.NumBins() != 90*96 {
		t.Fatalf("NumBins = %d, want %d", p.NumBins(), 90*96)
	}
	for _, bin := range []int{0, 1, 95, 96, 97, p.NumBins() - 1} {
		start := p.BinStart(bin)
		if got := p.BinIndex(start); got != bin {
			t.Fatalf("BinIndex(BinStart(%d)) = %d", bin, got)
		}
		if got := p.BinIndex(start.Add(14*time.Minute + 59*time.Second)); got != bin {
			t.Fatalf("BinIndex at bin end = %d, want %d", got, bin)
		}
	}
}

func TestBinRange(t *testing.T) {
	p := DefaultPeriod()
	cases := []struct {
		name        string
		start       time.Time
		d           time.Duration
		first, last int
	}{
		{"one bin interior", p.Start().Add(5 * time.Minute), 5 * time.Minute, 0, 1},
		{"exactly one bin", p.Start(), BinWidth, 0, 1},
		{"straddles two bins", p.Start().Add(10 * time.Minute), 10 * time.Minute, 0, 2},
		{"full day", p.Start(), 24 * time.Hour, 0, 96},
		{"before period", p.Start().Add(-2 * time.Hour), time.Hour, 0, 0},
		{"clamped at end", p.End().Add(-time.Minute), time.Hour, p.NumBins() - 1, p.NumBins()},
	}
	for _, c := range cases {
		first, last := p.BinRange(c.start, c.d)
		if first != c.first || last != c.last {
			t.Errorf("%s: BinRange = [%d,%d), want [%d,%d)", c.name, first, last, c.first, c.last)
		}
	}
}

func TestBinRangeCoversDurationProperty(t *testing.T) {
	p := DefaultPeriod()
	// The sum of per-bin overlaps over the returned bin range must equal
	// the clamped duration, for any interval.
	f := func(startOffsetMin uint32, durMin uint16) bool {
		start := p.Start().Add(time.Duration(startOffsetMin%200000) * time.Minute)
		d := time.Duration(durMin%2000) * time.Minute
		_, clamped := p.Clamp(start, d)
		first, last := p.BinRange(start, d)
		var sum time.Duration
		for b := first; b < last; b++ {
			sum += p.OverlapWithBin(b, start, d)
		}
		return sum == clamped
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestClamp(t *testing.T) {
	p := DefaultPeriod()
	start, d := p.Clamp(p.Start().Add(-time.Hour), 2*time.Hour)
	if start != p.Start() || d != time.Hour {
		t.Fatalf("clamp before start: got (%v,%v)", start, d)
	}
	start, d = p.Clamp(p.End().Add(-time.Minute), time.Hour)
	if d != time.Minute {
		t.Fatalf("clamp at end: duration %v, want 1m", d)
	}
	_, d = p.Clamp(p.End().Add(time.Hour), time.Hour)
	if d != 0 {
		t.Fatalf("clamp outside: duration %v, want 0", d)
	}
	_, d = p.Clamp(p.Start(), -time.Minute)
	if d != 0 {
		t.Fatalf("negative duration clamps to %v, want 0", d)
	}
}

func TestWeekBinMondayStart(t *testing.T) {
	// 2017-01-02 is a Monday.
	mon := time.Date(2017, 1, 2, 0, 0, 0, 0, time.UTC)
	if got := WeekBin(mon, 0); got != 0 {
		t.Fatalf("Monday 00:00 week bin = %d, want 0", got)
	}
	if got := WeekBin(mon.Add(15*time.Minute), 0); got != 1 {
		t.Fatalf("Monday 00:15 week bin = %d, want 1", got)
	}
	sun := mon.AddDate(0, 0, 6).Add(23*time.Hour + 45*time.Minute)
	if got := WeekBin(sun, 0); got != BinsPerWeek-1 {
		t.Fatalf("Sunday 23:45 week bin = %d, want %d", got, BinsPerWeek-1)
	}
}

func TestWeekBinHonoursUTCOffset(t *testing.T) {
	// Monday 02:00 UTC is Sunday 21:00 in UTC-5.
	mon := time.Date(2017, 1, 2, 2, 0, 0, 0, time.UTC)
	got := WeekBin(mon, -5*3600)
	want := 6*BinsPerDay + 21*BinsPerHour
	if got != want {
		t.Fatalf("WeekBin with UTC-5 = %d, want %d", got, want)
	}
}

func TestHourOfWeek(t *testing.T) {
	mon := time.Date(2017, 1, 2, 7, 30, 0, 0, time.UTC)
	if got := HourOfWeek(mon, 0); got != 7 {
		t.Fatalf("Monday 07:30 hour-of-week = %d, want 7", got)
	}
	if got := HourOfWeek(mon, -8*3600); got != 6*24+23 {
		t.Fatalf("UTC-8 hour-of-week = %d, want %d", got, 6*24+23)
	}
}

func TestWeekMatrixBasics(t *testing.T) {
	var m WeekMatrix
	m.Add(7, 0, 2)
	m.Add(7, 0, 3)
	m.Add(23, 6, 1)
	if got := m.At(7, 0); got != 5 {
		t.Fatalf("At(7,0) = %v, want 5", got)
	}
	if got := m.Max(); got != 5 {
		t.Fatalf("Max = %v, want 5", got)
	}
	if got := m.Sum(); got != 6 {
		t.Fatalf("Sum = %v, want 6", got)
	}
	if got := m.ActiveCells(0); got != 2 {
		t.Fatalf("ActiveCells = %d, want 2", got)
	}
	n := m.Normalized()
	if n.At(7, 0) != 1 || n.At(23, 6) != 0.2 {
		t.Fatalf("Normalized = %v / %v", n.At(7, 0), n.At(23, 6))
	}
	// Normalizing must not mutate the original.
	if m.At(7, 0) != 5 {
		t.Fatal("Normalized mutated receiver")
	}
}

func TestWeekMatrixAddHourOfWeek(t *testing.T) {
	var m WeekMatrix
	m.AddHourOfWeek(0, 1)       // Monday hour 0
	m.AddHourOfWeek(24+5, 2)    // Tuesday hour 5
	m.AddHourOfWeek(6*24+23, 4) // Sunday hour 23
	if m.At(0, 0) != 1 || m.At(5, 1) != 2 || m.At(23, 6) != 4 {
		t.Fatalf("unexpected matrix contents: %v %v %v", m.At(0, 0), m.At(5, 1), m.At(23, 6))
	}
}

func TestWeekMatrixMergeScale(t *testing.T) {
	var a, b WeekMatrix
	a.Set(1, 1, 2)
	b.Set(1, 1, 3)
	b.Set(2, 2, 4)
	a.Merge(&b)
	if a.At(1, 1) != 5 || a.At(2, 2) != 4 {
		t.Fatalf("merge failed: %v %v", a.At(1, 1), a.At(2, 2))
	}
	a.Scale(0.5)
	if a.At(1, 1) != 2.5 {
		t.Fatalf("scale failed: %v", a.At(1, 1))
	}
}

func TestWeekMatrixPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var m WeekMatrix
	m.At(24, 0)
}

func TestWeekVectorFoldToDay(t *testing.T) {
	var w WeekVector
	// Put 7 in the same bin-of-day on every day; fold should average to 7.
	for d := 0; d < 7; d++ {
		w[d*BinsPerDay+10] = 7
	}
	day := w.FoldToDay()
	if day[10] != 7 {
		t.Fatalf("fold bin 10 = %v, want 7", day[10])
	}
	if day[11] != 0 {
		t.Fatalf("fold bin 11 = %v, want 0", day[11])
	}
	if w.Max() != 7 {
		t.Fatalf("Max = %v", w.Max())
	}
	wantMean := 7.0 * 7 / float64(BinsPerWeek)
	if diff := w.Mean() - wantMean; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("Mean = %v, want %v", w.Mean(), wantMean)
	}
}
