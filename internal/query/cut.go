package query

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"cellcars/internal/analysis"
	"cellcars/internal/snapshot"
)

// A cut is one snapshot container holding the whole store:
//
//	"queryheader"  bucket width, watermark, live index, bucket count
//	"bucket:<i>"   bucket i's full Streaming snapshot stream, embedded
//
// Consistency comes from the encode step: every bucket's encoding is
// refreshed under the store mutex in one critical section, so the
// frames written afterwards describe a single instant of the ingest
// even while records keep arriving.
const (
	cutHeaderFrame = "queryheader"
	cutBucketPfx   = "bucket:"
)

// ErrNoSnapshots marks durability calls on a store configured without
// a snapshot directory.
var ErrNoSnapshots = errors.New("query: no snapshot directory configured")

// cutState is one consistent encoding of the store, taken under the
// lock and written outside it.
type cutState struct {
	watermark int64
	live      int
	idxs      []int
	encs      [][]byte
}

func (s *Store) cutLocked() (cutState, error) {
	st := cutState{watermark: s.watermark, live: s.live}
	for idx := range s.buckets {
		st.idxs = append(st.idxs, idx)
	}
	sort.Ints(st.idxs)
	for _, idx := range st.idxs {
		enc, err := s.buckets[idx].encodeLocked()
		if err != nil {
			return cutState{}, fmt.Errorf("query: encode bucket %d: %w", idx, err)
		}
		st.encs = append(st.encs, enc)
	}
	return st, nil
}

func (s *Store) writeCut(w io.Writer, st cutState) error {
	sw := snapshot.NewWriter(w)
	e := sw.Begin(cutHeaderFrame)
	e.Varint(int64(s.width))
	e.Varint(st.watermark)
	e.Varint(int64(st.live))
	e.Uvarint(uint64(len(st.idxs)))
	sw.End()
	for i, idx := range st.idxs {
		sw.RawFrame(cutBucketPfx+strconv.Itoa(idx), st.encs[i])
	}
	return sw.Close()
}

// Checkpoint writes one consistent cut of every live bucket to the
// snapshot directory and prunes old cuts. It returns the new cut's
// sequence number. Success and failure both update the freshness SLIs
// (last-cut age/duration, last cut error, cut-failure counter).
func (s *Store) Checkpoint() (uint64, error) {
	if s.snaps == nil {
		return 0, ErrNoSnapshots
	}
	t0 := time.Now()
	s.mu.Lock()
	st, err := s.cutLocked()
	s.mu.Unlock()
	if err != nil {
		return 0, s.noteCutFailure(err)
	}
	seq, err := s.snaps.WriteCut(func(w io.Writer) error {
		return s.writeCut(w, st)
	})
	if err != nil {
		return 0, s.noteCutFailure(err)
	}
	dur := time.Since(t0)
	if s.met != nil {
		s.met.cuts.Inc()
		s.met.cutSeconds.Observe(dur)
	}
	s.trace.Emit("cut", dur, st.watermark)
	s.mu.Lock()
	s.lastCutAt = time.Now()
	s.lastCutSeq = seq
	s.lastCutDur = dur
	s.lastCutErr = ""
	s.mu.Unlock()
	return seq, nil
}

// noteCutFailure records a failed cut in the freshness SLIs and passes
// the error through.
func (s *Store) noteCutFailure(err error) error {
	if s.met != nil {
		s.met.cutFailures.Inc()
	}
	s.mu.Lock()
	s.lastCutErr = err.Error()
	s.mu.Unlock()
	return err
}

// restoredCut is a validated cut, decoded off disk but not yet
// installed.
type restoredCut struct {
	watermark int64
	live      int
	buckets   map[int]*bucket
}

// readCut parses and fully validates one cut stream: container
// integrity, header sanity, every bucket restorable under the store's
// study configuration, and the header watermark equal to the sum of
// bucket record counts. Any failure means "try the previous cut".
func (s *Store) readCut(r io.Reader) (*restoredCut, error) {
	sr, err := snapshot.NewReader(r)
	if err != nil {
		return nil, err
	}
	name, d, err := sr.Next()
	if err != nil {
		return nil, err
	}
	if name != cutHeaderFrame {
		return nil, fmt.Errorf("query: cut starts with frame %q, want %q", name, cutHeaderFrame)
	}
	width := time.Duration(d.Varint())
	watermark := d.Varint()
	live := int(d.Varint())
	n := d.Len(1 << 20)
	if err := d.Err(); err != nil {
		return nil, err
	}
	if width != s.width {
		return nil, fmt.Errorf("query: cut bucket width %v, store configured for %v", width, s.width)
	}
	if watermark < 0 || live < -1 || live > s.maxIdx {
		return nil, fmt.Errorf("query: cut header implausible (watermark %d, live %d)", watermark, live)
	}

	out := &restoredCut{watermark: watermark, live: live, buckets: make(map[int]*bucket, n)}
	var sum int64
	for i := 0; i < n; i++ {
		name, payload, err := sr.NextFrame()
		if err != nil {
			return nil, err
		}
		idxStr, ok := strings.CutPrefix(name, cutBucketPfx)
		if !ok {
			return nil, fmt.Errorf("query: unexpected cut frame %q", name)
		}
		idx, err := strconv.Atoi(idxStr)
		if err != nil || idx < 0 || idx > s.maxIdx {
			return nil, fmt.Errorf("query: cut bucket index %q out of range", idxStr)
		}
		if _, dup := out.buckets[idx]; dup {
			return nil, fmt.Errorf("query: duplicate cut bucket %d", idx)
		}
		stream, err := analysis.RestoreStreaming(s.ctx, s.opts, bytes.NewReader(payload))
		if err != nil {
			return nil, fmt.Errorf("query: restore cut bucket %d: %w", idx, err)
		}
		out.buckets[idx] = &bucket{stream: stream, encoded: payload}
		sum += stream.Watermark()
	}
	if _, _, err := sr.NextFrame(); err != io.EOF {
		return nil, fmt.Errorf("query: trailing cut frames: %v", err)
	}
	if sum != watermark {
		return nil, fmt.Errorf("query: cut watermark %d but buckets hold %d records", watermark, sum)
	}
	return out, nil
}

// Restore warm-starts the store from the newest valid cut in the
// snapshot directory, skipping torn or corrupt cuts. It returns the
// restored watermark — the record count the caller must cdr.Skip on
// the re-opened stream — and ok=false on a cold start (no valid cut).
// The store must be empty (freshly built) when Restore is called.
func (s *Store) Restore() (watermark int64, ok bool, err error) {
	if s.snaps == nil {
		return 0, false, ErrNoSnapshots
	}
	_, res, ok, err := s.snaps.LatestValid(func(_ uint64, r io.Reader) (any, error) {
		return s.readCut(r)
	})
	if err != nil || !ok {
		return 0, false, err
	}
	cut := res.(*restoredCut)
	s.mu.Lock()
	s.buckets = cut.buckets
	s.live = cut.live
	s.watermark = cut.watermark
	s.restored = cut.watermark
	s.reports = make(map[string]cachedReport)
	if s.met != nil {
		s.met.buckets.Set(float64(len(s.buckets)))
		s.met.epoch.Set(float64(s.live))
	}
	s.mu.Unlock()
	if s.met != nil {
		s.met.restores.Inc()
	}
	return cut.watermark, true, nil
}
