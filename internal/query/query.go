// Package query is the serving layer over the measurement pipeline: a
// time-bucketed store of streaming accumulators that ingests CDR
// records continuously and answers the paper's report queries over
// rolling windows.
//
// The store slices the study period into fixed-width buckets (an hour
// by default). Each bucket is a full analysis.Streaming accumulator
// built with TrackHeads, fed only the records whose start falls in its
// slice. A window query restores the covered buckets from their cached
// snapshot encodings and left-folds them with MergeOrdered, so a
// served 24h report is bit-identical to a batch run over the same
// records (the TestMergeOrderedEquivalence property).
//
// Readers are lock-light: the store mutex covers only bucket routing,
// snapshot-encoding, and the response cache; the expensive
// restore+fold+finalize+marshal runs outside the lock on immutable
// encoded bytes. Responses are cached per (endpoint, window) and
// invalidated when the live bucket advances, so a response can be
// stale by at most one bucket width — the deliberate trade the bucket
// model makes.
//
// Durability rides on snapshot.Dir: Checkpoint writes one consistent
// cut holding every bucket's snapshot, Restore warm-starts from the
// newest valid cut, and the daemon replays only the post-watermark
// tail of its input.
package query

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"cellcars/internal/analysis"
	"cellcars/internal/cdr"
	"cellcars/internal/obs"
	"cellcars/internal/snapshot"
)

// Window names a rolling span of trailing buckets, e.g. {"24h", 24h}.
type Window struct {
	Name string
	Span time.Duration
}

// DefaultWindows are the rolling spans the paper's operational story
// needs: a day, a week, and the full 90-day study scale.
func DefaultWindows() []Window {
	return []Window{
		{Name: "24h", Span: 24 * time.Hour},
		{Name: "7d", Span: 7 * 24 * time.Hour},
		{Name: "90d", Span: 90 * 24 * time.Hour},
	}
}

// Config assembles a Store.
type Config struct {
	// Ctx is the study configuration every bucket shares.
	Ctx analysis.Context
	// Opts are the analysis options. TrackHeads is forced on (the
	// window fold requires it) and Obs is stripped from the per-bucket
	// accumulators — the store reports through its own query-area
	// metrics instead.
	Opts analysis.RunOptions
	// Bucket is the slice width; 0 means one hour.
	Bucket time.Duration
	// Windows are the queryable rolling spans; empty means
	// DefaultWindows. Every span must be a positive multiple of the
	// bucket width.
	Windows []Window
	// Snapshots, when non-nil, is the rotated cut directory behind
	// Checkpoint and Restore. Nil disables durability.
	Snapshots *snapshot.Dir
	// Obs, when non-nil, receives the store's metrics, including the
	// freshness SLI callback gauges (watermark age, last-cut age, tail
	// replay).
	Obs *obs.Registry
	// Trace, when non-nil, receives compose/cut spans.
	Trace *obs.Trace
}

// Store is the bucketed accumulator set behind the query service.
// Methods are safe for concurrent use.
type Store struct {
	ctx     analysis.Context
	opts    analysis.RunOptions
	width   time.Duration
	maxIdx  int
	windows []Window
	snaps   *snapshot.Dir

	mu        sync.Mutex
	buckets   map[int]*bucket
	live      int // highest bucket index fed so far; -1 cold
	watermark int64
	reports   map[string]cachedReport

	// Freshness SLI state. lastAdd is the wall time of the newest
	// ingested record (startedAt before any); restored is the watermark
	// the last warm restart recovered (-1: cold start), so
	// watermark-restored is the tail replayed/ingested since. The
	// lastCut* fields describe the most recent snapshot cut attempt.
	startedAt  time.Time
	lastAdd    time.Time
	restored   int64
	lastCutAt  time.Time
	lastCutSeq uint64
	lastCutDur time.Duration
	lastCutErr string

	met   *storeMetrics
	trace *obs.Trace
}

type bucket struct {
	stream *analysis.Streaming
	// dirty marks records added since encoded was produced.
	dirty   bool
	encoded []byte
}

type cachedReport struct {
	epoch int
	body  []byte
}

type storeMetrics struct {
	records     *obs.Counter
	requests    *obs.Counter
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	foldSeconds *obs.Timing
	buckets     *obs.Gauge
	epoch       *obs.Gauge
	cuts        *obs.Counter
	cutSeconds  *obs.Timing
	cutFailures *obs.Counter
	restores    *obs.Counter
}

func newStoreMetrics(reg *obs.Registry) *storeMetrics {
	if reg == nil {
		return nil
	}
	return &storeMetrics{
		records:     reg.Counter("cellcars_query_records_total"),
		requests:    reg.Counter("cellcars_query_requests_total"),
		cacheHits:   reg.Counter("cellcars_query_cache_hits_total"),
		cacheMisses: reg.Counter("cellcars_query_cache_misses_total"),
		foldSeconds: reg.Timing("cellcars_query_fold_seconds"),
		buckets:     reg.Gauge("cellcars_query_buckets"),
		epoch:       reg.Gauge("cellcars_query_epoch"),
		cuts:        reg.Counter("cellcars_query_cuts_total"),
		cutSeconds:  reg.Timing("cellcars_query_cut_seconds"),
		cutFailures: reg.Counter("cellcars_query_cut_failures_total"),
		restores:    reg.Counter("cellcars_query_restores_total"),
	}
}

// New validates the configuration and builds an empty store.
func New(cfg Config) (*Store, error) {
	if cfg.Ctx.Period.Days() <= 0 {
		return nil, errors.New("query: context has no study period")
	}
	width := cfg.Bucket
	if width == 0 {
		width = time.Hour
	}
	if width <= 0 {
		return nil, fmt.Errorf("query: bucket width %v not positive", width)
	}
	span := cfg.Ctx.Period.End().Sub(cfg.Ctx.Period.Start())
	if span%width != 0 {
		return nil, fmt.Errorf("query: bucket width %v does not divide the %v study period", width, span)
	}
	windows := cfg.Windows
	if len(windows) == 0 {
		windows = DefaultWindows()
	}
	seen := make(map[string]bool, len(windows))
	for _, w := range windows {
		if w.Name == "" {
			return nil, errors.New("query: window with empty name")
		}
		if seen[w.Name] {
			return nil, fmt.Errorf("query: duplicate window %q", w.Name)
		}
		seen[w.Name] = true
		if w.Span <= 0 || w.Span%width != 0 {
			return nil, fmt.Errorf("query: window %q span %v is not a positive multiple of the %v bucket", w.Name, w.Span, width)
		}
	}
	opts := cfg.Opts
	opts.TrackHeads = true
	opts.Obs = nil
	now := time.Now()
	s := &Store{
		ctx:       cfg.Ctx,
		opts:      opts,
		width:     width,
		maxIdx:    int(span/width) - 1,
		windows:   windows,
		snaps:     cfg.Snapshots,
		buckets:   make(map[int]*bucket),
		live:      -1,
		reports:   make(map[string]cachedReport),
		startedAt: now,
		lastAdd:   now,
		restored:  -1,
		met:       newStoreMetrics(cfg.Obs),
		trace:     cfg.Trace,
	}
	if cfg.Obs != nil {
		// Freshness SLIs as callback gauges: ages advance between
		// scrapes without a ticker, and each scrape sees a consistent
		// point-in-time value read under the store mutex.
		cfg.Obs.GaugeFunc("cellcars_query_watermark_age_seconds", func() float64 {
			return s.WatermarkAge().Seconds()
		})
		cfg.Obs.GaugeFunc("cellcars_query_last_cut_age_seconds", func() float64 {
			f := s.Freshness()
			return f.LastCutAgeSeconds
		})
		cfg.Obs.GaugeFunc("cellcars_query_tail_replay_records", func() float64 {
			return float64(s.TailReplay())
		})
	}
	return s, nil
}

// Windows returns the configured rolling windows.
func (s *Store) Windows() []Window { return append([]Window(nil), s.windows...) }

// BucketWidth returns the bucket slice width.
func (s *Store) BucketWidth() time.Duration { return s.width }

// bucketIndex routes a record start to its bucket. Starts outside the
// study period clamp to the edge buckets; the accumulators there count
// them out-of-period exactly as a batch run would.
func (s *Store) bucketIndex(t time.Time) int {
	d := t.Sub(s.ctx.Period.Start())
	if d < 0 {
		return 0
	}
	idx := int(d / s.width)
	if idx > s.maxIdx {
		return s.maxIdx
	}
	return idx
}

// Add ingests one record into its time bucket. Records must arrive in
// the stream's start order (the Sessionizer contract each bucket
// inherits); a late record into an already-passed bucket is accepted
// and invalidates that bucket's cached encoding.
func (s *Store) Add(r cdr.Record) {
	idx := s.bucketIndex(r.Start)
	s.mu.Lock()
	b := s.buckets[idx]
	if b == nil {
		b = &bucket{stream: analysis.NewStreamingWithOptions(s.ctx, s.opts)}
		s.buckets[idx] = b
		if s.met != nil {
			s.met.buckets.Set(float64(len(s.buckets)))
		}
	}
	b.stream.Add(r)
	b.dirty = true
	s.watermark++
	s.lastAdd = time.Now()
	if idx > s.live {
		s.live = idx
		if s.met != nil {
			s.met.epoch.Set(float64(idx))
		}
	}
	s.mu.Unlock()
	if s.met != nil {
		s.met.records.Inc()
	}
}

// Watermark returns the records ingested so far — the count a warm
// restart must skip on the re-opened stream.
func (s *Store) Watermark() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.watermark
}

// Epoch returns the live (highest fed) bucket index, -1 when cold.
func (s *Store) Epoch() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.live
}

// window returns the named window, or false.
func (s *Store) window(name string) (Window, bool) {
	for _, w := range s.windows {
		if w.Name == name {
			return w, true
		}
	}
	return Window{}, false
}

// encodeLocked refreshes one bucket's snapshot encoding. Callers hold
// the store mutex; the returned bytes are immutable thereafter.
func (b *bucket) encodeLocked() ([]byte, error) {
	if !b.dirty && b.encoded != nil {
		return b.encoded, nil
	}
	var buf bytes.Buffer
	if err := b.stream.SnapshotTo(&buf); err != nil {
		return nil, err
	}
	b.encoded = buf.Bytes()
	b.dirty = false
	return b.encoded, nil
}

// windowSlices collects the encoded buckets a window covers, ascending
// by bucket index, refreshing stale encodings under the lock.
func (s *Store) windowSlices(w Window) (encs [][]byte, epoch int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	epoch = s.live
	if s.live < 0 {
		return nil, epoch, nil
	}
	lo := s.live - int(w.Span/s.width) + 1
	if lo < 0 {
		lo = 0
	}
	idxs := make([]int, 0, len(s.buckets))
	for idx := range s.buckets {
		if idx >= lo && idx <= s.live {
			idxs = append(idxs, idx)
		}
	}
	sort.Ints(idxs)
	for _, idx := range idxs {
		enc, err := s.buckets[idx].encodeLocked()
		if err != nil {
			return nil, epoch, fmt.Errorf("query: encode bucket %d: %w", idx, err)
		}
		encs = append(encs, enc)
	}
	return encs, epoch, nil
}

// fold restores each encoded bucket and left-folds them in time order,
// returning the finalized window report. An empty window finalizes a
// fresh accumulator: the zero report. windowName labels the compose
// span in the run trace.
func (s *Store) fold(windowName string, encs [][]byte) (*analysis.StreamReport, error) {
	t0 := time.Now()
	var acc *analysis.Streaming
	for i, enc := range encs {
		restored, err := analysis.RestoreStreaming(s.ctx, s.opts, bytes.NewReader(enc))
		if err != nil {
			return nil, fmt.Errorf("query: restore window bucket %d: %w", i, err)
		}
		if acc == nil {
			acc = restored
			continue
		}
		if err := acc.MergeOrdered(restored); err != nil {
			return nil, fmt.Errorf("query: fold window bucket %d: %w", i, err)
		}
	}
	if acc == nil {
		acc = analysis.NewStreamingWithOptions(s.ctx, s.opts)
	}
	rep := acc.Finalize()
	if s.met != nil {
		s.met.foldSeconds.Observe(time.Since(t0))
	}
	s.trace.Emit("compose:"+windowName, time.Since(t0), rep.Records)
	return &rep, nil
}

// ErrUnknownWindow and ErrUnknownEndpoint classify bad queries for the
// HTTP layer's 404s.
var (
	ErrUnknownWindow   = errors.New("query: unknown window")
	ErrUnknownEndpoint = errors.New("query: unknown endpoint")
)

// Report answers one endpoint over one window, serving from the
// (endpoint, window) cache while the live bucket has not advanced.
// The returned bytes are shared and must not be modified.
func (s *Store) Report(endpoint, windowName string) ([]byte, error) {
	view, ok := viewFor(endpoint)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownEndpoint, endpoint)
	}
	w, ok := s.window(windowName)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownWindow, windowName)
	}
	if s.met != nil {
		s.met.requests.Inc()
	}
	key := endpoint + "|" + w.Name

	s.mu.Lock()
	if c, ok := s.reports[key]; ok && c.epoch == s.live {
		s.mu.Unlock()
		if s.met != nil {
			s.met.cacheHits.Inc()
		}
		return c.body, nil
	}
	s.mu.Unlock()
	if s.met != nil {
		s.met.cacheMisses.Inc()
	}

	encs, epoch, err := s.windowSlices(w)
	if err != nil {
		return nil, err
	}
	rep, err := s.fold(endpoint+"/"+w.Name, encs)
	if err != nil {
		return nil, err
	}
	body, err := view(rep)
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	// A concurrent Add may have advanced the live bucket while we
	// folded; only cache a response that is still current.
	if epoch == s.live {
		s.reports[key] = cachedReport{epoch: epoch, body: body}
	}
	s.mu.Unlock()
	return body, nil
}

// WindowReport folds one window and returns the full report value —
// the programmatic face of /report/full.
func (s *Store) WindowReport(windowName string) (*analysis.StreamReport, error) {
	w, ok := s.window(windowName)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownWindow, windowName)
	}
	encs, _, err := s.windowSlices(w)
	if err != nil {
		return nil, err
	}
	return s.fold("full/"+w.Name, encs)
}

// WatermarkAge returns how long ago the newest record was ingested —
// the primary freshness SLI. Before any record arrives it measures the
// time since the store was built.
func (s *Store) WatermarkAge() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return time.Since(s.lastAdd)
}

// TailReplay returns the records ingested since the last warm restart
// — the post-watermark tail the daemon replayed plus live arrivals. On
// a cold start (no restore) it is the full record count.
func (s *Store) TailReplay() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.restored < 0 {
		return s.watermark
	}
	return s.watermark - s.restored
}

// Freshness is the data-freshness SLI block: how stale the served
// window reports can be and how the durability machinery is keeping
// up. All ages are measured at call time.
type Freshness struct {
	// WatermarkAgeSeconds is the age of the newest ingested record.
	WatermarkAgeSeconds float64 `json:"watermark_age_seconds"`
	// RestoredWatermark is the record count recovered by the last warm
	// restart, -1 on a cold start.
	RestoredWatermark int64 `json:"restored_watermark"`
	// TailReplayRecords counts records ingested past the restored
	// watermark (the replayed tail plus live arrivals).
	TailReplayRecords int64 `json:"tail_replay_records"`
	// LastCutSeq is the sequence of the newest successful snapshot cut,
	// 0 when none has completed.
	LastCutSeq uint64 `json:"last_cut_seq"`
	// LastCutAgeSeconds is the age of that cut, -1 when none yet.
	LastCutAgeSeconds float64 `json:"last_cut_age_seconds"`
	// LastCutSeconds is how long the last successful cut took.
	LastCutSeconds float64 `json:"last_cut_seconds"`
	// LastCutError is the most recent cut failure, cleared by the next
	// success.
	LastCutError string `json:"last_cut_error,omitempty"`
}

// Freshness returns the point-in-time freshness SLIs.
func (s *Store) Freshness() Freshness {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.freshnessLocked()
}

func (s *Store) freshnessLocked() Freshness {
	tail := s.watermark
	if s.restored >= 0 {
		tail = s.watermark - s.restored
	}
	f := Freshness{
		WatermarkAgeSeconds: time.Since(s.lastAdd).Seconds(),
		RestoredWatermark:   s.restored,
		TailReplayRecords:   tail,
		LastCutSeq:          s.lastCutSeq,
		LastCutAgeSeconds:   -1,
		LastCutError:        s.lastCutErr,
	}
	if !s.lastCutAt.IsZero() {
		f.LastCutAgeSeconds = time.Since(s.lastCutAt).Seconds()
		f.LastCutSeconds = s.lastCutDur.Seconds()
	}
	return f
}

// Stats is a cheap point-in-time summary for /stats and /readyz.
type Stats struct {
	Records     int64         `json:"records"`
	Buckets     int           `json:"buckets"`
	Epoch       int           `json:"epoch"`
	BucketWidth time.Duration `json:"bucket_width_ns"`
	Windows     []string      `json:"windows"`
	Freshness   Freshness     `json:"freshness"`
}

// Snapshot returns the store's ingest counters and freshness SLIs.
func (s *Store) SnapshotStats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.windows))
	for _, w := range s.windows {
		names = append(names, w.Name)
	}
	return Stats{
		Records:     s.watermark,
		Buckets:     len(s.buckets),
		Epoch:       s.live,
		BucketWidth: s.width,
		Windows:     names,
		Freshness:   s.freshnessLocked(),
	}
}
