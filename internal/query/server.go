package query

import (
	"encoding/json"
	"errors"
	"log/slog"
	"net/http"
	"strings"
	"sync/atomic"

	"cellcars/internal/obs"
)

// Server is the HTTP face of a Store: the report endpoints, liveness
// and readiness probes, and (when a registry is supplied) the standard
// obs surface — Prometheus /metrics, /debug/vars, and pprof. When
// built with options it also carries request telemetry (per-endpoint
// latency timings, status-class counters, in-flight gauge, correlated
// request logs) and a health-rule evaluator that degrades /readyz.
type Server struct {
	store   *Store
	mux     *http.ServeMux
	handler http.Handler
	health  *obs.Health
	ready   atomic.Bool
}

// ServerOptions extends NewServer with the observability surface.
type ServerOptions struct {
	// Logger, when non-nil, receives one structured line per request
	// through the obs.Instrument middleware.
	Logger *slog.Logger
	// Health, when non-nil, is evaluated on every /readyz: any failing
	// rule degrades the probe to 503 with a body naming the rules.
	Health *obs.Health
}

// NewServer builds the handler. reg may be nil; the obs surface is
// mounted only when it is not.
func NewServer(store *Store, reg *obs.Registry) *Server {
	return NewServerWithOptions(store, reg, ServerOptions{})
}

// NewServerWithOptions builds the handler with request telemetry and
// health-gated readiness.
func NewServerWithOptions(store *Store, reg *obs.Registry, opts ServerOptions) *Server {
	s := &Server{store: store, mux: http.NewServeMux(), health: opts.Health}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/windows", s.handleWindows)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/report/", s.handleReport)
	if reg != nil {
		s.mux.Handle("/metrics", obs.Handler(reg))
		s.mux.Handle("/debug/", obs.Handler(reg))
	}
	s.handler = obs.Instrument(s.mux, reg, opts.Logger, endpointLabel)
	return s
}

// endpointLabel keeps the (endpoint, window) metric space bounded: the
// report view name and the fixed probe paths pass through; anything
// else — including unknown report endpoints, which 404 — collapses to
// "other". Window comes from the query parameter ("-" when absent) and
// is bounded by the store's configured window set plus one 404 bucket.
func endpointLabel(r *http.Request) (endpoint, window string) {
	window = r.URL.Query().Get("window")
	if window == "" {
		window = "-"
	}
	p := r.URL.Path
	if name := strings.TrimPrefix(p, "/report/"); name != p {
		if _, ok := viewFor(name); ok {
			return "report/" + name, window
		}
		return "other", "-"
	}
	switch p {
	case "/healthz", "/readyz", "/windows", "/stats", "/metrics":
		return strings.TrimPrefix(p, "/"), "-"
	}
	return "other", "-"
}

// SetReady flips the /readyz answer; the daemon marks ready once the
// warm restart (if any) finished and ingest is attached.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte("ok\n"))
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte("warming up\n"))
		return
	}
	if failing := obs.Failing(s.health.Eval()); len(failing) > 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(obs.RenderDegraded(failing)))
		return
	}
	w.Write([]byte("ready\n"))
}

func (s *Server) handleWindows(w http.ResponseWriter, _ *http.Request) {
	type windowInfo struct {
		Name    string `json:"name"`
		SpanNS  int64  `json:"span_ns"`
		Buckets int    `json:"buckets"`
	}
	width := s.store.BucketWidth()
	var wins []windowInfo
	for _, win := range s.store.Windows() {
		wins = append(wins, windowInfo{
			Name:    win.Name,
			SpanNS:  int64(win.Span),
			Buckets: int(win.Span / width),
		})
	}
	writeJSON(w, map[string]any{
		"bucket_width_ns": int64(width),
		"windows":         wins,
		"endpoints":       Endpoints(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.store.SnapshotStats())
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	endpoint := strings.TrimPrefix(r.URL.Path, "/report/")
	if endpoint == "" || strings.Contains(endpoint, "/") {
		http.NotFound(w, r)
		return
	}
	windowName := r.URL.Query().Get("window")
	if windowName == "" {
		windows := s.store.Windows()
		if len(windows) == 0 {
			http.Error(w, "no windows configured", http.StatusInternalServerError)
			return
		}
		windowName = windows[0].Name
	}
	body, err := s.store.Report(endpoint, windowName)
	if err != nil {
		switch {
		case errors.Is(err, ErrUnknownEndpoint), errors.Is(err, ErrUnknownWindow):
			http.Error(w, err.Error(), http.StatusNotFound)
		default:
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Cellcars-Window", windowName)
	w.Write(body)
}

func writeJSON(w http.ResponseWriter, v any) {
	body, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(body, '\n'))
}
