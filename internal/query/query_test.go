package query

import (
	"bytes"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"cellcars/internal/analysis"
	"cellcars/internal/cdr"
	"cellcars/internal/clean"
	"cellcars/internal/obs"
	"cellcars/internal/radio"
	"cellcars/internal/simtime"
	"cellcars/internal/snapshot"
)

var qt0 = time.Date(2017, 3, 6, 0, 0, 0, 0, time.UTC) // a Monday

func queryCtx(days int) analysis.Context {
	return analysis.Context{
		Period:          simtime.NewPeriod(qt0, days),
		TZOffsetSeconds: -5 * 3600,
	}
}

// queryWorkload builds a time-sorted stream with per-car
// non-overlapping records — the MergeOrdered precondition — spread
// over the given number of days, session gaps straddling both
// thresholds so sessions cross bucket boundaries.
func queryWorkload(n, days int) []cdr.Record {
	rng := rand.New(rand.NewPCG(7, 11))
	records := make([]cdr.Record, 0, n)
	next := make(map[cdr.CarID]time.Time)
	for len(records) < n {
		car := cdr.CarID(rng.Uint64N(120))
		start, ok := next[car]
		if !ok {
			start = qt0.Add(time.Duration(rng.Uint64N(uint64(days)*6*3600)) * time.Second)
		}
		dur := time.Duration(5+rng.Uint64N(700)) * time.Second
		records = append(records, cdr.Record{
			Car:      car,
			Cell:     radio.MakeCellKey(radio.BSID(rng.Uint64N(40)), radio.SectorID(rng.Uint64N(3)), radio.C1+radio.CarrierID(rng.Uint64N(uint64(radio.NumCarriers)))),
			Start:    start,
			Duration: dur,
		})
		var gap time.Duration
		switch rng.Uint64N(4) {
		case 0:
			gap = time.Duration(rng.Uint64N(30)) * time.Second
		case 1:
			gap = time.Duration(35+rng.Uint64N(500)) * time.Second
		case 2:
			gap = clean.MobilityGap + time.Duration(1+rng.Uint64N(7200))*time.Second
		case 3:
			gap = time.Duration(rng.Uint64N(uint64(days)*12*3600)) * time.Second
		}
		next[car] = start.Add(dur + gap)
	}
	sort.SliceStable(records, func(i, j int) bool {
		return records[i].Start.Before(records[j].Start)
	})
	return records
}

func feed(t *testing.T, s *Store, records []cdr.Record) {
	t.Helper()
	for _, r := range records {
		s.Add(r)
	}
}

// TestWindowReportMatchesBatch is the serving half of the tentpole
// property: a window covering the whole stream must render, endpoint
// by endpoint, byte-identically to a single batch accumulator over the
// same records.
func TestWindowReportMatchesBatch(t *testing.T) {
	ctx := queryCtx(2)
	records := queryWorkload(8000, 2)

	s, err := New(Config{
		Ctx:     ctx,
		Windows: []Window{{Name: "48h", Span: 48 * time.Hour}, {Name: "6h", Span: 6 * time.Hour}},
	})
	if err != nil {
		t.Fatal(err)
	}
	feed(t, s, records)

	batch := analysis.NewStreamingWithOptions(ctx, analysis.RunOptions{})
	if err := batch.AddAll(cdr.NewSliceReader(records)); err != nil {
		t.Fatal(err)
	}
	rep := batch.Finalize()
	if rep.Records == 0 || rep.Handovers.Sessions == 0 {
		t.Fatal("degenerate workload")
	}
	want, err := MarshalReport(&rep)
	if err != nil {
		t.Fatal(err)
	}

	got, err := s.Report("full", "48h")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("served full report differs from batch:\n%s\nvs\n%s", got, want)
	}

	// Every endpoint view over the same window must also match its
	// batch rendering.
	for _, endpoint := range Endpoints() {
		view, _ := viewFor(endpoint)
		want, err := view(&rep)
		if err != nil {
			t.Fatalf("%s: batch view: %v", endpoint, err)
		}
		got, err := s.Report(endpoint, "48h")
		if err != nil {
			t.Fatalf("%s: %v", endpoint, err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("%s view differs from batch:\n%s\nvs\n%s", endpoint, got, want)
		}
	}

	// A shorter window must actually trim: it covers only the trailing
	// buckets, so it sees fewer records than the whole stream.
	short, err := s.WindowReport("6h")
	if err != nil {
		t.Fatal(err)
	}
	if short.Records >= rep.Records {
		t.Fatalf("6h window saw %d records, whole stream has %d — no trimming happened", short.Records, rep.Records)
	}
	if short.Records == 0 {
		t.Fatal("6h window empty; workload should populate the trailing buckets")
	}
}

// TestReportCacheInvalidation: a repeated query inside one epoch is
// served from cache (same backing bytes); a record advancing the live
// bucket invalidates it.
func TestReportCacheInvalidation(t *testing.T) {
	ctx := queryCtx(2)
	reg := obs.New()
	s, err := New(Config{Ctx: ctx, Obs: reg, Windows: []Window{{Name: "48h", Span: 48 * time.Hour}}})
	if err != nil {
		t.Fatal(err)
	}
	rec := func(offset time.Duration) cdr.Record {
		return cdr.Record{Car: 1, Cell: radio.MakeCellKey(1, 0, radio.C1), Start: qt0.Add(offset), Duration: 30 * time.Second}
	}
	s.Add(rec(10 * time.Minute))

	a, err := s.Report("summary", "48h")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Report("summary", "48h")
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Fatal("second query within one epoch was not served from cache")
	}

	// A record in the same bucket does NOT invalidate (bounded
	// staleness by design)...
	s.Add(rec(11 * time.Minute))
	c, _ := s.Report("summary", "48h")
	if &a[0] != &c[0] {
		t.Fatal("cache invalidated without a bucket advance")
	}
	// ...but advancing the live bucket does.
	s.Add(rec(2 * time.Hour))
	d, err := s.Report("summary", "48h")
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] == &d[0] {
		t.Fatal("cache survived a bucket advance")
	}
	if hits := reg.Counter("cellcars_query_cache_hits_total").Value(); hits != 2 {
		t.Fatalf("cache hits = %d, want 2", hits)
	}
}

// TestCheckpointRestore: a cut written mid-stream restores into a
// fresh store that, after replaying only the post-watermark tail,
// serves byte-identical reports.
func TestCheckpointRestore(t *testing.T) {
	ctx := queryCtx(2)
	records := queryWorkload(6000, 2)
	dir := &snapshot.Dir{Path: filepath.Join(t.TempDir(), "cuts"), Keep: 2}
	cfg := Config{Ctx: ctx, Snapshots: dir, Windows: []Window{{Name: "48h", Span: 48 * time.Hour}}}

	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cutAt := len(records) * 2 / 3
	feed(t, s, records[:cutAt])
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	feed(t, s, records[cutAt:])
	want, err := s.Report("full", "48h")
	if err != nil {
		t.Fatal(err)
	}

	restored, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	watermark, ok, err := restored.Restore()
	if err != nil || !ok {
		t.Fatalf("restore: ok=%v err=%v", ok, err)
	}
	if watermark != int64(cutAt) {
		t.Fatalf("restored watermark %d, want %d", watermark, cutAt)
	}
	feed(t, restored, records[watermark:]) // the tail replay
	got, err := restored.Report("full", "48h")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("restored store serves a different report")
	}
}

// TestRestoreSkipsTornCut: a truncated newest cut falls back to the
// previous valid one.
func TestRestoreSkipsTornCut(t *testing.T) {
	ctx := queryCtx(1)
	records := queryWorkload(2000, 1)
	dir := &snapshot.Dir{Path: filepath.Join(t.TempDir(), "cuts"), Keep: 4}
	cfg := Config{Ctx: ctx, Snapshots: dir, Windows: []Window{{Name: "24h", Span: 24 * time.Hour}}}

	s, _ := New(cfg)
	feed(t, s, records[:1000])
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	feed(t, s, records[1000:])
	seq, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	// Tear the newest cut as a crash mid-write would.
	data, err := os.ReadFile(dir.CutPath(seq))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir.CutPath(seq), data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	restored, _ := New(cfg)
	watermark, ok, err := restored.Restore()
	if err != nil || !ok {
		t.Fatalf("restore: ok=%v err=%v", ok, err)
	}
	if watermark != 1000 {
		t.Fatalf("fell back to watermark %d, want 1000", watermark)
	}
}

// TestServerEndpoints covers the HTTP surface: probes, listings,
// report routing, and error mapping.
func TestServerEndpoints(t *testing.T) {
	ctx := queryCtx(1)
	reg := obs.New()
	s, err := New(Config{Ctx: ctx, Obs: reg, Windows: []Window{{Name: "24h", Span: 24 * time.Hour}}})
	if err != nil {
		t.Fatal(err)
	}
	feed(t, s, queryWorkload(500, 1))
	srv := NewServer(s, reg)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.String()
	}

	if code, body := get("/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("/healthz: %d %q", code, body)
	}
	if code, _ := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before ready: %d", code)
	}
	srv.SetReady(true)
	if code, _ := get("/readyz"); code != 200 {
		t.Fatalf("/readyz after ready: %d", code)
	}
	if code, body := get("/windows"); code != 200 || !bytes.Contains([]byte(body), []byte(`"24h"`)) {
		t.Fatalf("/windows: %d %q", code, body)
	}
	if code, body := get("/stats"); code != 200 || !bytes.Contains([]byte(body), []byte(`"records": 500`)) {
		t.Fatalf("/stats: %d %q", code, body)
	}
	if code, _ := get("/report/summary?window=24h"); code != 200 {
		t.Fatalf("/report/summary: %d", code)
	}
	if code, _ := get("/report/summary"); code != 200 {
		t.Fatalf("/report/summary default window: %d", code)
	}
	if code, _ := get("/report/nope?window=24h"); code != http.StatusNotFound {
		t.Fatalf("unknown endpoint: %d", code)
	}
	if code, _ := get("/report/summary?window=99d"); code != http.StatusNotFound {
		t.Fatalf("unknown window: %d", code)
	}
	if code, body := get("/metrics"); code != 200 || !bytes.Contains([]byte(body), []byte("cellcars_query_records_total")) {
		t.Fatalf("/metrics: %d", code)
	}
}

// TestConfigValidation pins the constructor's rejection paths.
func TestConfigValidation(t *testing.T) {
	ctx := queryCtx(1)
	bad := []Config{
		{},
		{Ctx: ctx, Bucket: -time.Hour},
		{Ctx: ctx, Bucket: 7 * time.Minute},
		{Ctx: ctx, Windows: []Window{{Name: "", Span: time.Hour}}},
		{Ctx: ctx, Windows: []Window{{Name: "x", Span: 90 * time.Minute}}},
		{Ctx: ctx, Windows: []Window{{Name: "x", Span: time.Hour}, {Name: "x", Span: 2 * time.Hour}}},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted, want error", i)
		}
	}
	if _, err := New(Config{Ctx: ctx}); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}
