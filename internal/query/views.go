package query

import (
	"encoding/json"
	"sort"

	"cellcars/internal/analysis"
)

// A view renders one endpoint's slice of a window report as JSON.
// Every view is deterministic — equal reports marshal to equal bytes
// (encoding/json sorts map keys) — which is what makes the e2e
// "served report ≡ batch report" comparison byte-exact.
type view func(*analysis.StreamReport) ([]byte, error)

// MarshalReport renders a full report exactly as /report/full serves
// it. caranalyze -json uses the same function, so a daemon answer and
// a batch answer over the same records are comparable byte for byte.
func MarshalReport(rep *analysis.StreamReport) ([]byte, error) {
	body, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(body, '\n'), nil
}

func marshalView(v any) ([]byte, error) {
	body, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(body, '\n'), nil
}

// Endpoints lists the report endpoints, sorted, for /windows and docs.
func Endpoints() []string {
	names := make([]string, 0, len(views))
	for name := range views {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func viewFor(endpoint string) (view, bool) {
	v, ok := views[endpoint]
	return v, ok
}

var views = map[string]view{
	"full": MarshalReport,
	"summary": func(r *analysis.StreamReport) ([]byte, error) {
		return marshalView(map[string]any{
			"records":           r.Records,
			"ghosts_dropped":    r.GhostsDropped,
			"out_of_period":     r.OutOfPeriod,
			"total_cars":        r.Presence.TotalCars,
			"total_cells":       r.Presence.TotalCells,
			"usage_sessions":    r.UsageSessions,
			"mobility_sessions": r.Handovers.Sessions,
			"stage_errors":      len(r.StageErrors),
		})
	},
	"presence": func(r *analysis.StreamReport) ([]byte, error) {
		return marshalView(map[string]any{
			"presence": r.Presence,
			"weekdays": r.WeekdayRows,
		})
	},
	"connected": func(r *analysis.StreamReport) ([]byte, error) {
		return marshalView(r.Connected)
	},
	"days": func(r *analysis.StreamReport) ([]byte, error) {
		return marshalView(map[string]any{"days_count": r.DaysCount})
	},
	"segments": func(r *analysis.StreamReport) ([]byte, error) {
		return marshalView(map[string]any{"segments": r.Segments})
	},
	"busy": func(r *analysis.StreamReport) ([]byte, error) {
		return marshalView(r.Busy)
	},
	"durations": func(r *analysis.StreamReport) ([]byte, error) {
		return marshalView(map[string]any{
			"median":     r.DurMedian,
			"p73":        r.DurP73,
			"full_mean":  r.DurFullMean,
			"trunc_mean": r.DurTruncMean,
		})
	},
	"handovers": func(r *analysis.StreamReport) ([]byte, error) {
		return marshalView(r.Handovers)
	},
	"carriers": func(r *analysis.StreamReport) ([]byte, error) {
		return marshalView(r.Carriers)
	},
	"usage": func(r *analysis.StreamReport) ([]byte, error) {
		return marshalView(map[string]any{
			"matrix":   r.FleetUsage,
			"sessions": r.UsageSessions,
		})
	},
}
