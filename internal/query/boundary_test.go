package query

import (
	"bytes"
	"testing"
	"time"

	"cellcars/internal/analysis"
	"cellcars/internal/cdr"
	"cellcars/internal/radio"
	"cellcars/internal/snapshot"
)

// TestBucketEdgeRouting pins the half-open bucket intervals: a record
// starting exactly on a bucket edge belongs to the NEW bucket (and
// advances the epoch), while one a nanosecond earlier stays in the old
// one. Out-of-period starts clamp to the edge buckets.
func TestBucketEdgeRouting(t *testing.T) {
	s, err := New(Config{Ctx: queryCtx(2)})
	if err != nil {
		t.Fatal(err)
	}
	cell := radio.MakeCellKey(1, 0, radio.C1)

	if idx := s.bucketIndex(qt0); idx != 0 {
		t.Fatalf("period start → bucket %d, want 0", idx)
	}
	if idx := s.bucketIndex(qt0.Add(time.Hour - time.Nanosecond)); idx != 0 {
		t.Fatalf("edge-1ns → bucket %d, want 0", idx)
	}
	if idx := s.bucketIndex(qt0.Add(time.Hour)); idx != 1 {
		t.Fatalf("exact edge → bucket %d, want 1", idx)
	}
	// Clamps: before the period and at/after its end (the end itself
	// is outside the half-open study window).
	if idx := s.bucketIndex(qt0.Add(-time.Minute)); idx != 0 {
		t.Fatalf("pre-period → bucket %d, want 0", idx)
	}
	if idx := s.bucketIndex(qt0.Add(48 * time.Hour)); idx != 47 {
		t.Fatalf("period end → bucket %d, want 47 (clamped)", idx)
	}

	s.Add(cdr.Record{Car: 1, Cell: cell, Start: qt0.Add(time.Hour - time.Second), Duration: time.Second})
	if got := s.Epoch(); got != 0 {
		t.Fatalf("epoch after last in-bucket record = %d, want 0", got)
	}
	s.Add(cdr.Record{Car: 1, Cell: cell, Start: qt0.Add(time.Hour), Duration: time.Second})
	if got := s.Epoch(); got != 1 {
		t.Fatalf("epoch after exact-edge record = %d, want 1", got)
	}
}

// TestRestoreAtBucketEdgeWatermark is the resume-at-boundary case for
// the query store: the checkpoint watermark lands exactly on a bucket
// (and 24h-window) edge — every record of buckets 0..23 is covered,
// none of bucket 24 — and a warm restart plus tail replay must still
// produce the batch bytes. The first replayed record opens a brand-new
// bucket on the restored store.
func TestRestoreAtBucketEdgeWatermark(t *testing.T) {
	ctx := queryCtx(2)
	records := queryWorkload(6000, 2)
	edge := qt0.Add(24 * time.Hour)
	cut := len(records)
	for i, r := range records {
		if !r.Start.Before(edge) {
			cut = i
			break
		}
	}
	if cut == 0 || cut == len(records) {
		t.Fatalf("degenerate workload: cut %d of %d", cut, len(records))
	}

	dir := &snapshot.Dir{Path: t.TempDir() + "/cuts", Keep: 2}
	cfg := Config{Ctx: ctx, Windows: []Window{{Name: "48h", Span: 48 * time.Hour}}, Snapshots: dir}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, s, records[:cut])
	if got, want := s.Epoch(), 23; got != want {
		t.Fatalf("epoch at the edge = %d, want %d (bucket 24 must not exist yet)", got, want)
	}
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	restored, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wm, ok, err := restored.Restore()
	if err != nil || !ok {
		t.Fatalf("restore: ok=%v err=%v", ok, err)
	}
	if wm != int64(cut) {
		t.Fatalf("restored watermark %d, want %d", wm, cut)
	}
	if got := restored.Epoch(); got != 23 {
		t.Fatalf("restored epoch %d, want 23", got)
	}
	feed(t, restored, records[cut:])
	if got := restored.Epoch(); got <= 23 {
		t.Fatalf("epoch after tail replay = %d, want > 23", got)
	}

	batch := analysis.NewStreamingWithOptions(ctx, analysis.RunOptions{})
	if err := batch.AddAll(cdr.NewSliceReader(records)); err != nil {
		t.Fatal(err)
	}
	rep := batch.Finalize()
	want, err := MarshalReport(&rep)
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.Report("full", "48h")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("report after edge-watermark restore differs from batch (%d vs %d bytes)", len(got), len(want))
	}
}
