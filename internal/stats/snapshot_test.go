package stats

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"reflect"
	"testing"

	"cellcars/internal/snapshot"
)

// roundTrip encodes via snap, decodes via restore, and fails on any
// codec error.
func roundTrip(t *testing.T, snap func(*snapshot.Encoder), restore func(*snapshot.Decoder)) {
	t.Helper()
	var buf bytes.Buffer
	e := snapshot.NewEncoder(&buf)
	snap(e)
	if e.Err() != nil {
		t.Fatalf("encode: %v", e.Err())
	}
	d := snapshot.NewDecoder(bytes.NewReader(buf.Bytes()))
	restore(d)
	if d.Err() != nil {
		t.Fatalf("restore: %v", d.Err())
	}
}

func TestMomentsSnapshotRoundTrip(t *testing.T) {
	var m Moments
	rng := rand.New(rand.NewPCG(7, 7))
	for i := 0; i < 1000; i++ {
		m.Add(rng.Float64()*100 - 50)
	}
	var got Moments
	roundTrip(t, m.Snapshot, got.Restore)
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip: %+v vs %+v", m, got)
	}
	// Merge-equivalence: restored state keeps accumulating identically.
	var extra Moments
	for i := 0; i < 100; i++ {
		extra.Add(float64(i))
	}
	m.Merge(&extra)
	got.Merge(&extra)
	if !reflect.DeepEqual(m, got) {
		t.Fatal("merge after restore diverged")
	}
}

func TestHistogramSnapshotRoundTrip(t *testing.T) {
	h := NewHistogram(0.5, 1, 90)
	rng := rand.New(rand.NewPCG(8, 8))
	for i := 0; i < 5000; i++ {
		h.Add(rng.Float64()*100 - 3)
	}
	got := NewHistogram(0.5, 1, 90)
	roundTrip(t, h.Snapshot, got.Restore)
	if !reflect.DeepEqual(h, got) {
		t.Fatalf("round trip mismatch")
	}

	// A layout mismatch is a detected error, not silent corruption.
	other := NewHistogram(0, 2, 90)
	var buf bytes.Buffer
	e := snapshot.NewEncoder(&buf)
	h.Snapshot(e)
	d := snapshot.NewDecoder(bytes.NewReader(buf.Bytes()))
	other.Restore(d)
	if !errors.Is(d.Err(), snapshot.ErrBadSnapshot) {
		t.Fatalf("layout mismatch: %v", d.Err())
	}
}

func TestLogHistSnapshotRoundTrip(t *testing.T) {
	var h LogHist
	rng := rand.New(rand.NewPCG(9, 9))
	for i := 0; i < 20000; i++ {
		h.Add(rng.Float64() * 2000)
	}
	var got LogHist
	roundTrip(t, h.Snapshot, got.Restore)
	if !reflect.DeepEqual(h, got) {
		t.Fatal("round trip mismatch")
	}
	for q := 0.0; q <= 1.0; q += 0.1 {
		if h.Quantile(q) != got.Quantile(q) {
			t.Fatalf("quantile %v differs", q)
		}
	}

	// Corrupt total: counts no longer sum to it.
	var buf bytes.Buffer
	e := snapshot.NewEncoder(&buf)
	e.Varint(h.total + 5)
	e.Varint(h.zero)
	e.Uvarint(0)
	var bad LogHist
	d := snapshot.NewDecoder(bytes.NewReader(buf.Bytes()))
	bad.Restore(d)
	if !errors.Is(d.Err(), snapshot.ErrBadSnapshot) {
		t.Fatalf("inconsistent total accepted: %v", d.Err())
	}
}

func TestSampleSnapshotRoundTrip(t *testing.T) {
	s := NewSample(256)
	rng := rand.New(rand.NewPCG(10, 10))
	for i := 0; i < 5000; i++ {
		s.Add(rng.Uint64(), rng.Float64()*600)
	}
	got := NewSample(256)
	roundTrip(t, s.Snapshot, got.Restore)
	if got.N() != s.N() || got.Complete() != s.Complete() {
		t.Fatalf("population: %d vs %d", got.N(), s.N())
	}
	if !reflect.DeepEqual(s.Values(), got.Values()) {
		t.Fatal("kept values differ")
	}

	// The restored sample must keep the bottom-k property under
	// further adds: feed both the same extra stream and compare.
	for i := 0; i < 2000; i++ {
		k, v := rng.Uint64(), rng.Float64()*600
		s.Add(k, v)
		got.Add(k, v)
	}
	if !reflect.DeepEqual(s.Values(), got.Values()) {
		t.Fatal("post-restore adds diverged")
	}

	// Capacity mismatch is detected.
	var buf bytes.Buffer
	e := snapshot.NewEncoder(&buf)
	s.Snapshot(e)
	wrong := NewSample(16)
	d := snapshot.NewDecoder(bytes.NewReader(buf.Bytes()))
	wrong.Restore(d)
	if !errors.Is(d.Err(), snapshot.ErrBadSnapshot) {
		t.Fatalf("capacity mismatch accepted: %v", d.Err())
	}
}

// TestSampleSnapshotDeterministic: two samples holding the same item
// set in different heap layouts must encode to identical bytes.
func TestSampleSnapshotDeterministic(t *testing.T) {
	a := NewSample(64)
	b := NewSample(64)
	rng := rand.New(rand.NewPCG(11, 11))
	items := make([]sampleItem, 500)
	for i := range items {
		items[i] = sampleItem{key: rng.Uint64(), val: rng.Float64()}
	}
	for _, it := range items {
		a.Add(it.key, it.val)
	}
	for i := len(items) - 1; i >= 0; i-- {
		b.Add(items[i].key, items[i].val)
	}
	var ba, bb bytes.Buffer
	a.Snapshot(snapshot.NewEncoder(&ba))
	b.Snapshot(snapshot.NewEncoder(&bb))
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Fatal("same sample content encoded differently")
	}
}
