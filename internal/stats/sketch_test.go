package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestLogHistQuantileCeilRank(t *testing.T) {
	// Two observations: the median is the 1st smallest (ceil(0.5·2)=1),
	// not the 2nd as the old floor-based target computed.
	var h LogHist
	h.Add(10)
	h.Add(1000)
	med := h.Quantile(0.5)
	if med > 20 {
		t.Fatalf("median of {10, 1000} = %v; ceil rank must select the smaller", med)
	}
	// One observation: every quantile is that observation's bin.
	var h1 LogHist
	h1.Add(100)
	lo, hi := h1.Quantile(0), h1.Quantile(1)
	if lo != hi {
		t.Fatalf("single observation: q0 %v != q1 %v", lo, hi)
	}
	if lo < 90 || lo > 112 {
		t.Fatalf("single observation quantile = %v, want ≈100", lo)
	}
}

func TestLogHistQuantileOneDoesNotOvershoot(t *testing.T) {
	var h LogHist
	for i := 0; i < 100; i++ {
		h.Add(50)
	}
	q := h.Quantile(1.0)
	if q < 45 || q > 56 {
		t.Fatalf("q=1.0 of constant-50 data = %v; must stay in the occupied bin", q)
	}
	// Out-of-range q clamps instead of panicking or overshooting.
	if got := h.Quantile(1.5); got != q {
		t.Fatalf("q=1.5 (clamped) = %v, want %v", got, q)
	}
	if got := h.Quantile(-0.5); got > q {
		t.Fatalf("q=-0.5 (clamped) = %v above maximum %v", got, q)
	}
}

func TestLogHistEdges(t *testing.T) {
	var empty LogHist
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v", got)
	}
	// Sub-unit values land in the zero bin.
	var h LogHist
	h.Add(0.5)
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("sub-unit quantile = %v", got)
	}
	// Huge values clamp to the last bin, never to ±Inf.
	var h2 LogHist
	h2.Add(1e12)
	if got := h2.Quantile(1); math.IsInf(got, 0) || got <= 0 {
		t.Fatalf("clamped quantile = %v", got)
	}
}

func TestLogHistMergeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 0))
	var whole, a, b LogHist
	for i := 0; i < 5000; i++ {
		x := math.Exp(rng.Float64() * 10)
		whole.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	if a.Total() != whole.Total() {
		t.Fatalf("merged total %d vs %d", a.Total(), whole.Total())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.73, 0.9, 1} {
		if a.Quantile(q) != whole.Quantile(q) {
			t.Fatalf("q%v: merged %v vs whole %v", q, a.Quantile(q), whole.Quantile(q))
		}
	}
}

func TestSampleCompleteIsExact(t *testing.T) {
	s := NewSample(100)
	for i := 0; i < 50; i++ {
		s.Add(uint64(i*2654435761), float64(i))
	}
	if !s.Complete() {
		t.Fatal("50 of 100 must be complete")
	}
	vals := s.Values()
	if len(vals) != 50 || vals[0] != 0 || vals[49] != 49 {
		t.Fatalf("complete sample wrong: %v..%v n=%d", vals[0], vals[len(vals)-1], len(vals))
	}
}

func TestSampleMergeOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 9))
	type item struct {
		key uint64
		val float64
	}
	items := make([]item, 10000)
	for i := range items {
		items[i] = item{key: rng.Uint64(), val: rng.Float64() * 1000}
	}

	// One shard vs eight shards merged in two different orders.
	one := NewSample(256)
	for _, it := range items {
		one.Add(it.key, it.val)
	}
	shards := make([]*Sample, 8)
	for i := range shards {
		shards[i] = NewSample(256)
	}
	for i, it := range items {
		shards[i%8].Add(it.key, it.val)
	}
	fwd := NewSample(256)
	for i := 0; i < 8; i++ {
		fwd.Merge(shards[i])
	}
	rev := NewSample(256)
	for i := 7; i >= 0; i-- {
		rev.Merge(shards[i])
	}

	a, b, c := one.Values(), fwd.Values(), rev.Values()
	if len(a) != 256 || len(b) != 256 || len(c) != 256 {
		t.Fatalf("sizes: %d %d %d", len(a), len(b), len(c))
	}
	for i := range a {
		if a[i] != b[i] || a[i] != c[i] {
			t.Fatalf("item %d differs: %v %v %v", i, a[i], b[i], c[i])
		}
	}
	if one.N() != fwd.N() || fwd.N() != rev.N() {
		t.Fatalf("counts differ: %d %d %d", one.N(), fwd.N(), rev.N())
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(0, 1, 10)
	b := NewHistogram(0, 1, 10)
	a.Add(0.5)
	a.Add(-1)
	b.Add(0.5)
	b.Add(9.5)
	b.Add(100)
	a.Merge(b)
	if a.Counts[0] != 2 || a.Counts[9] != 1 || a.Under != 1 || a.Over != 1 {
		t.Fatalf("merged: %v under %d over %d", a.Counts, a.Under, a.Over)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("layout mismatch must panic")
		}
	}()
	a.Merge(NewHistogram(0, 2, 10))
}
