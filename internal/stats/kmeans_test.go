package stats

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func rng() *rand.Rand { return rand.New(rand.NewPCG(7, 11)) }

func TestKMeansTwoObviousClusters(t *testing.T) {
	var points [][]float64
	// 40 points near (0,0), 10 points near (100,100): mirrors Figure 11's
	// 4:1 size ratio between clusters.
	r := rng()
	for i := 0; i < 40; i++ {
		points = append(points, []float64{r.Float64(), r.Float64()})
	}
	for i := 0; i < 10; i++ {
		points = append(points, []float64{100 + r.Float64(), 100 + r.Float64()})
	}
	res := KMeans(points, 2, 100, r)
	if len(res.Sizes) != 2 {
		t.Fatalf("sizes = %v", res.Sizes)
	}
	small, large := res.Sizes[0], res.Sizes[1]
	if small > large {
		small, large = large, small
	}
	if small != 10 || large != 40 {
		t.Fatalf("cluster sizes = %v, want {10,40}", res.Sizes)
	}
	// All points in a cluster must share the assignment of their peers.
	first := res.Assignments[0]
	for i := 1; i < 40; i++ {
		if res.Assignments[i] != first {
			t.Fatalf("point %d assigned %d, want %d", i, res.Assignments[i], first)
		}
	}
}

func TestKMeansK1(t *testing.T) {
	points := [][]float64{{1}, {3}, {5}}
	res := KMeans(points, 1, 10, rng())
	if res.Sizes[0] != 3 {
		t.Fatalf("sizes = %v", res.Sizes)
	}
	if got := res.Centroids[0][0]; got != 3 {
		t.Fatalf("centroid = %v, want 3", got)
	}
}

func TestKMeansKEqualsN(t *testing.T) {
	points := [][]float64{{0}, {10}, {20}}
	res := KMeans(points, 3, 50, rng())
	for _, s := range res.Sizes {
		if s != 1 {
			t.Fatalf("sizes = %v, want all 1", res.Sizes)
		}
	}
	if res.Inertia != 0 {
		t.Fatalf("inertia = %v, want 0", res.Inertia)
	}
}

func TestKMeansIdenticalPoints(t *testing.T) {
	points := [][]float64{{5, 5}, {5, 5}, {5, 5}, {5, 5}}
	res := KMeans(points, 2, 20, rng())
	if res.Inertia != 0 {
		t.Fatalf("inertia = %v", res.Inertia)
	}
	total := res.Sizes[0] + res.Sizes[1]
	if total != 4 {
		t.Fatalf("sizes sum to %d", total)
	}
}

func TestKMeansPanics(t *testing.T) {
	cases := map[string]func(){
		"no points": func() { KMeans(nil, 1, 1, rng()) },
		"k zero":    func() { KMeans([][]float64{{1}}, 0, 1, rng()) },
		"k > n":     func() { KMeans([][]float64{{1}}, 2, 1, rng()) },
		"dim mix":   func() { KMeans([][]float64{{1}, {1, 2}}, 1, 1, rng()) },
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

// TestKMeansAssignmentOptimality verifies the core invariant: after
// convergence every point is assigned to its nearest centroid.
func TestKMeansAssignmentOptimality(t *testing.T) {
	f := func(seed uint64, nRaw, kRaw uint8) bool {
		n := int(nRaw%50) + 2
		k := int(kRaw%4) + 1
		if k > n {
			k = n
		}
		r := rand.New(rand.NewPCG(seed, 99))
		points := make([][]float64, n)
		for i := range points {
			points[i] = []float64{r.Float64() * 100, r.Float64() * 100}
		}
		res := KMeans(points, k, 200, r)
		for i, p := range points {
			for c := range res.Centroids {
				if SqDist(p, res.Centroids[c]) < SqDist(p, res.Centroids[res.Assignments[i]])-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestKMeansSizesSumToN(t *testing.T) {
	f := func(seed uint64, nRaw, kRaw uint8) bool {
		n := int(nRaw%80) + 1
		k := int(kRaw%5) + 1
		if k > n {
			k = n
		}
		r := rand.New(rand.NewPCG(seed, 3))
		points := make([][]float64, n)
		for i := range points {
			points[i] = []float64{r.Float64()}
		}
		res := KMeans(points, k, 100, r)
		sum := 0
		for _, s := range res.Sizes {
			sum += s
		}
		return sum == n && len(res.Assignments) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestKMeansDeterministicForFixedSeed(t *testing.T) {
	mk := func() KMeansResult {
		r := rand.New(rand.NewPCG(42, 42))
		points := make([][]float64, 30)
		pr := rand.New(rand.NewPCG(1, 1))
		for i := range points {
			points[i] = []float64{pr.Float64() * 10, pr.Float64() * 10}
		}
		return KMeans(points, 3, 100, r)
	}
	a, b := mk(), mk()
	for i := range a.Assignments {
		if a.Assignments[i] != b.Assignments[i] {
			t.Fatalf("nondeterministic assignment at %d", i)
		}
	}
	if a.Inertia != b.Inertia {
		t.Fatalf("nondeterministic inertia %v vs %v", a.Inertia, b.Inertia)
	}
}

func TestSqDistPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SqDist([]float64{1}, []float64{1, 2})
}
