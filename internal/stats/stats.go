// Package stats provides the statistics substrate for the measurement
// pipeline: streaming moments, empirical CDFs and quantiles, fixed-width
// histograms, simple linear regression (the trend lines of Figure 2),
// and k-means clustering (Figure 11).
//
// Everything here is deterministic; the only stochastic routine,
// k-means++ seeding, takes an explicit random source.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// Moments accumulates count, mean and variance online using Welford's
// algorithm, so a single pass over arbitrarily many records needs O(1)
// memory. The zero value is an empty accumulator ready to use.
type Moments struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add accumulates one observation.
func (m *Moments) Add(x float64) {
	m.n++
	if m.n == 1 {
		m.min, m.max = x, x
	} else {
		if x < m.min {
			m.min = x
		}
		if x > m.max {
			m.max = x
		}
	}
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
}

// N returns the number of observations.
func (m *Moments) N() int64 { return m.n }

// Mean returns the running mean, or 0 with no observations.
func (m *Moments) Mean() float64 { return m.mean }

// Var returns the population variance, or 0 with fewer than two
// observations.
func (m *Moments) Var() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n)
}

// SampleVar returns the sample (Bessel-corrected) variance.
func (m *Moments) SampleVar() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n-1)
}

// StdDev returns the population standard deviation.
func (m *Moments) StdDev() float64 { return math.Sqrt(m.Var()) }

// SampleStdDev returns the sample standard deviation, which is what the
// paper's Table 1 reports for day-of-week variability.
func (m *Moments) SampleStdDev() float64 { return math.Sqrt(m.SampleVar()) }

// Min returns the smallest observation, or 0 with no observations.
func (m *Moments) Min() float64 { return m.min }

// Max returns the largest observation, or 0 with no observations.
func (m *Moments) Max() float64 { return m.max }

// Merge combines another accumulator into m (parallel Welford merge).
func (m *Moments) Merge(o *Moments) {
	if o.n == 0 {
		return
	}
	if m.n == 0 {
		*m = *o
		return
	}
	n := m.n + o.n
	d := o.mean - m.mean
	m.m2 += o.m2 + d*d*float64(m.n)*float64(o.n)/float64(n)
	m.mean += d * float64(o.n) / float64(n)
	if o.min < m.min {
		m.min = o.min
	}
	if o.max > m.max {
		m.max = o.max
	}
	m.n = n
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the data using linear
// interpolation between order statistics (type-7, the R/NumPy default).
// The slice is sorted in place. It panics on an empty slice or a
// quantile outside [0, 1]: both indicate a caller bug, not a data
// condition.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v outside [0,1]", q))
	}
	if !sort.Float64sAreSorted(sorted) {
		sort.Float64s(sorted)
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Deciles returns the 11 values at quantiles 0, 0.1, …, 1.0, the
// summary the paper plots in Figure 7.
func Deciles(values []float64) [11]float64 {
	var out [11]float64
	if len(values) == 0 {
		return out
	}
	sort.Float64s(values)
	for i := 0; i <= 10; i++ {
		out[i] = Quantile(values, float64(i)/10)
	}
	return out
}

// Mean returns the arithmetic mean of values, or 0 for an empty slice.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var s float64
	for _, v := range values {
		s += v
	}
	return s / float64(len(values))
}

// CDF is an empirical cumulative distribution over a fixed sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from the sample. The input slice is
// copied, then sorted.
func NewCDF(values []float64) *CDF {
	s := make([]float64, len(values))
	copy(s, values)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// N returns the sample size.
func (c *CDF) N() int { return len(c.sorted) }

// MarshalJSON renders the CDF as its sorted sample array, so reports
// carrying CDFs survive a JSON round trip instead of collapsing to an
// empty object (the fields are unexported by design).
func (c *CDF) MarshalJSON() ([]byte, error) {
	return json.Marshal(c.sorted)
}

// UnmarshalJSON restores a CDF marshaled by MarshalJSON. The values
// are re-sorted, so hand-written input is accepted too.
func (c *CDF) UnmarshalJSON(data []byte) error {
	var values []float64
	if err := json.Unmarshal(data, &values); err != nil {
		return err
	}
	sort.Float64s(values)
	c.sorted = values
	return nil
}

// At returns P(X ≤ x), the fraction of the sample at or below x.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(c.sorted, x)
	// SearchFloat64s returns the first index with sorted[i] >= x; walk
	// forward over equal values to make the CDF right-continuous.
	for idx < len(c.sorted) && c.sorted[idx] == x {
		idx++
	}
	return float64(idx) / float64(len(c.sorted))
}

// Quantile returns the q-quantile of the sample.
func (c *CDF) Quantile(q float64) float64 { return Quantile(c.sorted, q) }

// Mean returns the sample mean.
func (c *CDF) Mean() float64 { return Mean(c.sorted) }

// Points samples the CDF at n evenly spaced x positions across the data
// range, returning (x, P(X≤x)) pairs for plotting. n must be at least 2.
func (c *CDF) Points(n int) (xs, ps []float64) {
	if n < 2 {
		panic("stats: CDF.Points needs n >= 2")
	}
	if len(c.sorted) == 0 {
		return nil, nil
	}
	lo, hi := c.sorted[0], c.sorted[len(c.sorted)-1]
	xs = make([]float64, n)
	ps = make([]float64, n)
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		xs[i] = x
		ps[i] = c.At(x)
	}
	return xs, ps
}

// Histogram counts observations into fixed-width bins covering
// [Lo, Lo + Width·len(Counts)). Out-of-range observations are counted
// in Under/Over.
type Histogram struct {
	Lo     float64
	Width  float64
	Counts []int64
	Under  int64
	Over   int64
}

// NewHistogram creates a histogram with nbins bins of the given width
// starting at lo. It panics when nbins or width is not positive.
func NewHistogram(lo, width float64, nbins int) *Histogram {
	if nbins <= 0 || width <= 0 {
		panic("stats: histogram needs positive bins and width")
	}
	return &Histogram{Lo: lo, Width: width, Counts: make([]int64, nbins)}
}

// Add counts one observation.
func (h *Histogram) Add(x float64) {
	if x < h.Lo {
		h.Under++
		return
	}
	bin := int((x - h.Lo) / h.Width)
	if bin >= len(h.Counts) {
		h.Over++
		return
	}
	h.Counts[bin]++
}

// Merge adds another histogram's counts into h. Both histograms must
// share the same layout (origin, width, bin count); merging mismatched
// layouts is a caller bug and panics.
func (h *Histogram) Merge(o *Histogram) {
	if h.Lo != o.Lo || h.Width != o.Width || len(h.Counts) != len(o.Counts) {
		panic(fmt.Sprintf("stats: merging histograms with different layouts: [%v,%v)×%d vs [%v,%v)×%d",
			h.Lo, h.Width, len(h.Counts), o.Lo, o.Width, len(o.Counts)))
	}
	for i, c := range o.Counts {
		h.Counts[i] += c
	}
	h.Under += o.Under
	h.Over += o.Over
}

// Total returns the number of in-range observations.
func (h *Histogram) Total() int64 {
	var t int64
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// MaxCount returns the largest bin count.
func (h *Histogram) MaxCount() int64 {
	var m int64
	for _, c := range h.Counts {
		if c > m {
			m = c
		}
	}
	return m
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + h.Width*(float64(i)+0.5)
}

// LinReg holds an ordinary-least-squares fit y = Intercept + Slope·x,
// with the coefficient of determination R². Figure 2's trend lines are
// this fit over day index vs daily percentage.
type LinReg struct {
	Slope     float64
	Intercept float64
	R2        float64
	N         int
}

// Fit computes the least-squares line through the points (xs[i], ys[i]).
// It panics when the slices differ in length; it returns a degenerate
// flat fit when there are fewer than two points or x has no variance.
func Fit(xs, ys []float64) LinReg {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("stats: Fit length mismatch %d vs %d", len(xs), len(ys)))
	}
	n := len(xs)
	if n == 0 {
		return LinReg{}
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinReg{Intercept: my, N: n}
	}
	slope := sxy / sxx
	r2 := 0.0
	if syy > 0 {
		r2 = (sxy * sxy) / (sxx * syy)
	}
	return LinReg{Slope: slope, Intercept: my - slope*mx, R2: r2, N: n}
}

// Predict evaluates the fitted line at x.
func (l LinReg) Predict(x float64) float64 { return l.Intercept + l.Slope*x }
