package stats

import (
	"fmt"
	"math"
	"sort"
)

// This file holds the mergeable sketches that make every analysis
// accumulator shard-parallel: a logarithmic histogram whose quantiles
// are approximate to one bin width, and a deterministic bottom-k
// uniform sample whose merge result is independent of shard order.
// Both types merge commutatively, so an engine can split a record
// stream across workers and combine partials without changing the
// result.

// LogHist is a mergeable logarithmic histogram over positive values
// 1 .. ~1e5 with LogHistBase bin growth (~7% relative bin width).
// Values below 1 land in a dedicated zero bin. The zero value is
// ready to use.
type LogHist struct {
	counts [LogHistBins]int64
	total  int64
	zero   int64
}

// Logarithmic layout: LogHistBase^LogHistBins ≈ 1e5, covering one
// full day of seconds with ~7% resolution.
const (
	LogHistBase = 1.07
	LogHistBins = 170
)

// Add counts one observation.
func (h *LogHist) Add(x float64) {
	h.total++
	if x < 1 {
		h.zero++
		return
	}
	bin := int(math.Log(x) / math.Log(LogHistBase))
	if bin >= LogHistBins {
		bin = LogHistBins - 1
	}
	h.counts[bin]++
}

// Total returns the number of observations.
func (h *LogHist) Total() int64 { return h.total }

// Merge adds another histogram's counts into h.
func (h *LogHist) Merge(o *LogHist) {
	h.total += o.total
	h.zero += o.zero
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
}

// Quantile returns the approximate q-quantile: the midpoint (in log
// space) of the bin containing the ceil(q·n)-th smallest observation.
// q is clamped to [0, 1]; q = 1 lands in the highest occupied bin
// rather than overshooting the histogram range. An empty histogram
// returns 0.
func (h *LogHist) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	// Standard ceil rank: the k-th smallest with k = ceil(q·n), at
	// least 1. The previous floor-based target was biased at small
	// totals (e.g. the median of 2 observations selected the 2nd).
	rank := int64(math.Ceil(q * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.total {
		rank = h.total
	}
	cum := h.zero
	if cum >= rank {
		return 0
	}
	last := 0.0
	for bin := 0; bin < LogHistBins; bin++ {
		c := h.counts[bin]
		if c == 0 {
			continue
		}
		cum += c
		last = math.Pow(LogHistBase, float64(bin)+0.5)
		if cum >= rank {
			return last
		}
	}
	// Unreachable when counts are consistent with total; return the
	// highest occupied bin rather than the histogram's top edge.
	return last
}

// Sample is a deterministic mergeable uniform sample: it keeps the k
// items whose keys hash smallest (a bottom-k sketch). Feeding every
// item with a content-derived key makes the kept set — and therefore
// any statistic computed from it — independent of insertion and merge
// order, which is what lets sharded workers produce bit-identical
// results regardless of worker count. When the population is no
// larger than k the sample is the complete population and statistics
// over it are exact.
type Sample struct {
	k     int
	n     int64
	items []sampleItem // max-heap by (key, value)
}

type sampleItem struct {
	key uint64
	val float64
}

// NewSample returns a sample keeping at most k items. It panics on a
// non-positive k.
func NewSample(k int) *Sample {
	if k <= 0 {
		panic(fmt.Sprintf("stats: sample size %d must be positive", k))
	}
	preallocate := k
	if preallocate > 1024 {
		preallocate = 1024
	}
	return &Sample{k: k, items: make([]sampleItem, 0, preallocate)}
}

// Add offers one (key, value) item. Keys should be well-distributed
// hashes of item identity; ties on key are broken by value so the
// result stays deterministic under collisions.
func (s *Sample) Add(key uint64, v float64) {
	s.n++
	it := sampleItem{key: key, val: v}
	if len(s.items) < s.k {
		s.items = append(s.items, it)
		s.up(len(s.items) - 1)
		return
	}
	if !itemLess(it, s.items[0]) {
		return
	}
	s.items[0] = it
	s.down(0)
}

// itemLess orders items by (key, value) ascending.
func itemLess(a, b sampleItem) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	return a.val < b.val
}

func (s *Sample) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !itemLess(s.items[p], s.items[i]) {
			return
		}
		s.items[p], s.items[i] = s.items[i], s.items[p]
		i = p
	}
}

func (s *Sample) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < len(s.items) && itemLess(s.items[largest], s.items[l]) {
			largest = l
		}
		if r < len(s.items) && itemLess(s.items[largest], s.items[r]) {
			largest = r
		}
		if largest == i {
			return
		}
		s.items[i], s.items[largest] = s.items[largest], s.items[i]
		i = largest
	}
}

// Merge folds another sample into s. Both must have the same k.
func (s *Sample) Merge(o *Sample) {
	if s.k != o.k {
		panic(fmt.Sprintf("stats: merging samples of size %d and %d", s.k, o.k))
	}
	s.n += o.n
	for _, it := range o.items {
		if len(s.items) < s.k {
			s.items = append(s.items, it)
			s.up(len(s.items) - 1)
			continue
		}
		if itemLess(it, s.items[0]) {
			s.items[0] = it
			s.down(0)
		}
	}
}

// N returns the number of items offered (the population size).
func (s *Sample) N() int64 { return s.n }

// Complete reports whether the sample holds the entire population, in
// which case statistics over Values are exact.
func (s *Sample) Complete() bool { return s.n == int64(len(s.items)) }

// Values returns the sampled values in ascending order.
func (s *Sample) Values() []float64 {
	out := make([]float64, len(s.items))
	for i, it := range s.items {
		out[i] = it.val
	}
	sort.Float64s(out)
	return out
}
