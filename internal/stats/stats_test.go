package stats

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestMomentsBasic(t *testing.T) {
	var m Moments
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		m.Add(x)
	}
	if m.N() != 8 {
		t.Fatalf("N = %d", m.N())
	}
	if !almostEqual(m.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v", m.Mean())
	}
	if !almostEqual(m.Var(), 4, 1e-12) {
		t.Fatalf("Var = %v", m.Var())
	}
	if !almostEqual(m.StdDev(), 2, 1e-12) {
		t.Fatalf("StdDev = %v", m.StdDev())
	}
	if m.Min() != 2 || m.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", m.Min(), m.Max())
	}
}

func TestMomentsEmptyAndSingle(t *testing.T) {
	var m Moments
	if m.Mean() != 0 || m.Var() != 0 || m.N() != 0 {
		t.Fatal("zero-value Moments should report zeros")
	}
	m.Add(42)
	if m.Mean() != 42 || m.Var() != 0 || m.SampleVar() != 0 {
		t.Fatalf("single obs: mean=%v var=%v", m.Mean(), m.Var())
	}
	if m.Min() != 42 || m.Max() != 42 {
		t.Fatal("single obs min/max")
	}
}

func TestMomentsMergeMatchesSequential(t *testing.T) {
	f := func(a, b []float64) bool {
		var whole, left, right Moments
		for _, x := range a {
			sane := math.Mod(x, 1e6)
			whole.Add(sane)
			left.Add(sane)
		}
		for _, x := range b {
			sane := math.Mod(x, 1e6)
			whole.Add(sane)
			right.Add(sane)
		}
		left.Merge(&right)
		if whole.N() != left.N() {
			return false
		}
		if whole.N() == 0 {
			return true
		}
		scale := math.Max(1, math.Abs(whole.Mean()))
		return almostEqual(whole.Mean(), left.Mean(), 1e-9*scale) &&
			almostEqual(whole.Var(), left.Var(), 1e-6*math.Max(1, whole.Var()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 10}, {0.5, 5.5}, {0.25, 3.25}, {0.73, 7.57},
	}
	for _, c := range cases {
		if got := Quantile(data, c.q); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Quantile([]float64{7}, 0.9); got != 7 {
		t.Fatalf("single-element quantile = %v", got)
	}
}

func TestQuantilePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"empty": func() { Quantile(nil, 0.5) },
		"q>1":   func() { Quantile([]float64{1}, 1.5) },
		"q<0":   func() { Quantile([]float64{1}, -0.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestQuantileBoundsProperty(t *testing.T) {
	f := func(raw []float64, qRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			vals = append(vals, x)
		}
		if len(vals) == 0 {
			return true
		}
		q := float64(qRaw) / 255
		got := Quantile(vals, q)
		sort.Float64s(vals)
		return got >= vals[0] && got <= vals[len(vals)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDeciles(t *testing.T) {
	vals := make([]float64, 101)
	for i := range vals {
		vals[i] = float64(i)
	}
	d := Deciles(vals)
	for i := 0; i <= 10; i++ {
		if !almostEqual(d[i], float64(i*10), 1e-9) {
			t.Fatalf("decile %d = %v, want %d", i, d[i], i*10)
		}
	}
	var zero [11]float64
	if Deciles(nil) != zero {
		t.Fatal("Deciles(nil) should be all zeros")
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3, 4})
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 0.2}, {2, 0.6}, {2.5, 0.6}, {4, 1}, {10, 1},
	}
	for _, cse := range cases {
		if got := c.At(cse.x); !almostEqual(got, cse.want, 1e-12) {
			t.Errorf("At(%v) = %v, want %v", cse.x, got, cse.want)
		}
	}
	if got := c.Quantile(0.5); got != 2 {
		t.Fatalf("median = %v", got)
	}
	if got := c.Mean(); !almostEqual(got, 2.4, 1e-12) {
		t.Fatalf("mean = %v", got)
	}
	if c.N() != 5 {
		t.Fatalf("N = %d", c.N())
	}
}

func TestCDFDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	NewCDF(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatal("NewCDF mutated its input")
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{0, 10})
	xs, ps := c.Points(11)
	if len(xs) != 11 || len(ps) != 11 {
		t.Fatalf("points lengths %d/%d", len(xs), len(ps))
	}
	if xs[0] != 0 || xs[10] != 10 {
		t.Fatalf("x range [%v,%v]", xs[0], xs[10])
	}
	if ps[10] != 1 {
		t.Fatalf("final p = %v", ps[10])
	}
	if !sort.Float64sAreSorted(ps) {
		t.Fatal("CDF points must be nondecreasing")
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		vals := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) {
				vals = append(vals, x)
			}
		}
		c := NewCDF(vals)
		if a > b {
			a, b = b, a
		}
		return c.At(a) <= c.At(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 9) // bins [0,90)
	for d := 0.0; d <= 95; d += 5 {
		h.Add(d)
	}
	// 0..85 in-range (18 values), 90 and 95 over.
	if h.Total() != 18 {
		t.Fatalf("Total = %d", h.Total())
	}
	if h.Over != 2 || h.Under != 0 {
		t.Fatalf("Over/Under = %d/%d", h.Over, h.Under)
	}
	h.Add(-1)
	if h.Under != 1 {
		t.Fatalf("Under = %d", h.Under)
	}
	if h.Counts[0] != 2 { // 0 and 5
		t.Fatalf("bin0 = %d", h.Counts[0])
	}
	if got := h.BinCenter(0); got != 5 {
		t.Fatalf("BinCenter(0) = %v", got)
	}
	if h.MaxCount() != 2 {
		t.Fatalf("MaxCount = %d", h.MaxCount())
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(0, 0, 10)
}

func TestFitPerfectLine(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{1, 3, 5, 7, 9} // y = 1 + 2x
	l := Fit(xs, ys)
	if !almostEqual(l.Slope, 2, 1e-12) || !almostEqual(l.Intercept, 1, 1e-12) {
		t.Fatalf("fit = %+v", l)
	}
	if !almostEqual(l.R2, 1, 1e-12) {
		t.Fatalf("R2 = %v", l.R2)
	}
	if got := l.Predict(10); !almostEqual(got, 21, 1e-12) {
		t.Fatalf("Predict(10) = %v", got)
	}
}

func TestFitNoise(t *testing.T) {
	// Nearly flat noisy data should give near-zero slope and tiny R²,
	// like Figure 2's trend lines (R² ≈ 0.03 and 0.001).
	rng := rand.New(rand.NewPCG(1, 2))
	xs := make([]float64, 90)
	ys := make([]float64, 90)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 0.76 + 0.0001*float64(i) + 0.02*(rng.Float64()-0.5)
	}
	l := Fit(xs, ys)
	if l.Slope < 0 || l.Slope > 0.001 {
		t.Fatalf("slope = %v", l.Slope)
	}
	if l.R2 < 0 || l.R2 > 1 {
		t.Fatalf("R2 = %v out of range", l.R2)
	}
}

func TestFitDegenerate(t *testing.T) {
	l := Fit(nil, nil)
	if l.Slope != 0 || l.Intercept != 0 || l.N != 0 {
		t.Fatalf("empty fit = %+v", l)
	}
	l = Fit([]float64{2, 2, 2}, []float64{1, 5, 9})
	if l.Slope != 0 || !almostEqual(l.Intercept, 5, 1e-12) {
		t.Fatalf("no-variance fit = %+v", l)
	}
}

func TestFitPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Fit([]float64{1}, []float64{1, 2})
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
}
