package stats

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// KMeansResult is the outcome of Lloyd's algorithm: per-point cluster
// assignments, the final centroids, per-cluster sizes, the total
// within-cluster sum of squared distances, and the number of iterations
// performed before convergence.
type KMeansResult struct {
	Assignments []int
	Centroids   [][]float64
	Sizes       []int
	Inertia     float64
	Iterations  int
}

// KMeans clusters points (all of equal dimension) into k clusters using
// k-means++ seeding followed by Lloyd iterations, stopping after
// maxIter iterations or when no assignment changes. The random source
// drives only the seeding, so results are reproducible for a fixed
// source. It panics on invalid inputs (no points, mismatched dimension,
// k outside [1, len(points)]) — all caller bugs.
//
// The paper's Figure 11 runs "the classic k-means algorithm" with k=2
// over 96-element concurrency vectors of busy cells.
func KMeans(points [][]float64, k, maxIter int, rng *rand.Rand) KMeansResult {
	if len(points) == 0 {
		panic("stats: KMeans with no points")
	}
	if k < 1 || k > len(points) {
		panic(fmt.Sprintf("stats: KMeans k=%d outside [1,%d]", k, len(points)))
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			panic(fmt.Sprintf("stats: KMeans point %d has dim %d, want %d", i, len(p), dim))
		}
	}
	if maxIter < 1 {
		maxIter = 1
	}

	centroids := seedPlusPlus(points, k, rng)
	assign := make([]int, len(points))
	for i := range assign {
		assign[i] = -1
	}
	sizes := make([]int, k)

	var iter int
	for iter = 1; iter <= maxIter; iter++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c := range centroids {
				if d := sqDist(p, centroids[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed {
			break
		}
		// Recompute centroids.
		for c := range centroids {
			for j := range centroids[c] {
				centroids[c][j] = 0
			}
			sizes[c] = 0
		}
		for i, p := range points {
			c := assign[i]
			sizes[c]++
			for j, v := range p {
				centroids[c][j] += v
			}
		}
		for c := range centroids {
			if sizes[c] == 0 {
				// Re-seed an empty cluster at the point farthest from its
				// centroid, a standard fix that keeps k clusters alive.
				centroids[c] = append([]float64(nil), farthestPoint(points, centroids, assign)...)
				continue
			}
			inv := 1 / float64(sizes[c])
			for j := range centroids[c] {
				centroids[c][j] *= inv
			}
		}
	}

	// Final sizes and inertia from the last assignment.
	for c := range sizes {
		sizes[c] = 0
	}
	var inertia float64
	for i, p := range points {
		sizes[assign[i]]++
		inertia += sqDist(p, centroids[assign[i]])
	}
	return KMeansResult{
		Assignments: assign,
		Centroids:   centroids,
		Sizes:       sizes,
		Inertia:     inertia,
		Iterations:  iter,
	}
}

// seedPlusPlus picks k initial centroids with the k-means++ rule:
// first uniformly, then each subsequent proportional to squared
// distance from the nearest chosen centroid.
func seedPlusPlus(points [][]float64, k int, rng *rand.Rand) [][]float64 {
	centroids := make([][]float64, 0, k)
	first := points[rng.IntN(len(points))]
	centroids = append(centroids, append([]float64(nil), first...))

	d2 := make([]float64, len(points))
	for len(centroids) < k {
		var total float64
		last := centroids[len(centroids)-1]
		for i, p := range points {
			d := sqDist(p, last)
			if len(centroids) == 1 || d < d2[i] {
				d2[i] = d
			}
			total += d2[i]
		}
		var idx int
		if total == 0 {
			// All remaining points coincide with a centroid; pick any.
			idx = rng.IntN(len(points))
		} else {
			target := rng.Float64() * total
			var cum float64
			for i, d := range d2 {
				cum += d
				if cum >= target {
					idx = i
					break
				}
			}
		}
		centroids = append(centroids, append([]float64(nil), points[idx]...))
	}
	return centroids
}

// farthestPoint returns the point with the largest distance to its
// assigned centroid.
func farthestPoint(points [][]float64, centroids [][]float64, assign []int) []float64 {
	bestI, bestD := 0, -1.0
	for i, p := range points {
		d := sqDist(p, centroids[assign[i]])
		if d > bestD {
			bestI, bestD = i, d
		}
	}
	return points[bestI]
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// SqDist returns the squared Euclidean distance between two equal-length
// vectors. It panics on a length mismatch.
func SqDist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("stats: SqDist length mismatch %d vs %d", len(a), len(b)))
	}
	return sqDist(a, b)
}
