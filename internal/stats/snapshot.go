package stats

import (
	"sort"

	"cellcars/internal/snapshot"
)

// This file gives every mergeable statistics structure a snapshot
// codec, so analysis accumulators can persist their partial state and
// resume it bit-identically. Encoding is deterministic (sparse layouts
// are emitted in ascending key order) and every Restore validates the
// decoded shape, reporting corruption through the decoder's sticky
// ErrBadSnapshot instead of panicking.

// Snapshot serializes the accumulated moments.
func (m *Moments) Snapshot(e *snapshot.Encoder) {
	e.Varint(m.n)
	e.F64(m.mean)
	e.F64(m.m2)
	e.F64(m.min)
	e.F64(m.max)
}

// Restore replaces m with state written by Snapshot.
func (m *Moments) Restore(d *snapshot.Decoder) {
	n := d.Varint()
	mean, m2, min, max := d.F64(), d.F64(), d.F64(), d.F64()
	if d.Err() != nil {
		return
	}
	if n < 0 {
		d.Failf("moments count %d negative", n)
		return
	}
	m.n, m.mean, m.m2, m.min, m.max = n, mean, m2, min, max
}

// Snapshot serializes the histogram, including its layout, as a
// sparse (bin, count) list.
func (h *Histogram) Snapshot(e *snapshot.Encoder) {
	e.F64(h.Lo)
	e.F64(h.Width)
	e.Uvarint(uint64(len(h.Counts)))
	nonzero := 0
	for _, c := range h.Counts {
		if c != 0 {
			nonzero++
		}
	}
	e.Uvarint(uint64(nonzero))
	for bin, c := range h.Counts {
		if c != 0 {
			e.Uvarint(uint64(bin))
			e.Varint(c)
		}
	}
	e.Varint(h.Under)
	e.Varint(h.Over)
}

// Restore replaces h with state written by Snapshot. The stored layout
// must match h's (same origin, width, and bin count).
func (h *Histogram) Restore(d *snapshot.Decoder) {
	lo, width := d.F64(), d.F64()
	nbins := d.Len(1 << 24)
	if d.Err() != nil {
		return
	}
	if lo != h.Lo || width != h.Width || nbins != len(h.Counts) {
		d.Failf("histogram layout [%v,%v)×%d does not match [%v,%v)×%d",
			lo, width, nbins, h.Lo, h.Width, len(h.Counts))
		return
	}
	counts := make([]int64, nbins)
	n := d.Len(nbins)
	for i := 0; i < n; i++ {
		bin := d.Len(nbins - 1)
		c := d.Varint()
		if d.Err() != nil {
			return
		}
		if c < 0 {
			d.Failf("histogram bin %d count %d negative", bin, c)
			return
		}
		counts[bin] = c
	}
	under, over := d.Varint(), d.Varint()
	if d.Err() != nil {
		return
	}
	if under < 0 || over < 0 {
		d.Failf("histogram under/over counts negative")
		return
	}
	h.Counts, h.Under, h.Over = counts, under, over
}

// Snapshot serializes the log histogram as a sparse (bin, count) list.
func (h *LogHist) Snapshot(e *snapshot.Encoder) {
	e.Varint(h.total)
	e.Varint(h.zero)
	nonzero := 0
	for _, c := range h.counts {
		if c != 0 {
			nonzero++
		}
	}
	e.Uvarint(uint64(nonzero))
	for bin, c := range h.counts {
		if c != 0 {
			e.Uvarint(uint64(bin))
			e.Varint(c)
		}
	}
}

// Restore replaces h with state written by Snapshot.
func (h *LogHist) Restore(d *snapshot.Decoder) {
	total, zero := d.Varint(), d.Varint()
	n := d.Len(LogHistBins)
	if d.Err() != nil {
		return
	}
	if total < 0 || zero < 0 {
		d.Failf("log histogram totals negative")
		return
	}
	var counts [LogHistBins]int64
	sum := zero
	for i := 0; i < n; i++ {
		bin := d.Len(LogHistBins - 1)
		c := d.Varint()
		if d.Err() != nil {
			return
		}
		if c < 0 {
			d.Failf("log histogram bin %d count %d negative", bin, c)
			return
		}
		counts[bin] = c
		sum += c
	}
	if sum != total {
		d.Failf("log histogram counts sum %d but total is %d", sum, total)
		return
	}
	h.total, h.zero, h.counts = total, zero, counts
}

// Snapshot serializes the bottom-k sample. Items are emitted in
// ascending (key, value) order so equal samples encode identically
// regardless of internal heap layout.
func (s *Sample) Snapshot(e *snapshot.Encoder) {
	e.Uvarint(uint64(s.k))
	e.Varint(s.n)
	items := append([]sampleItem(nil), s.items...)
	sort.Slice(items, func(i, j int) bool { return itemLess(items[i], items[j]) })
	e.Uvarint(uint64(len(items)))
	for _, it := range items {
		e.Uvarint(it.key)
		e.F64(it.val)
	}
}

// Restore replaces s with state written by Snapshot. The stored
// capacity must match s's.
func (s *Sample) Restore(d *snapshot.Decoder) {
	k := d.Len(1 << 30)
	n := d.Varint()
	if d.Err() != nil {
		return
	}
	if k != s.k {
		d.Failf("sample capacity %d does not match %d", k, s.k)
		return
	}
	count := d.Len(k)
	if d.Err() != nil {
		return
	}
	if n < int64(count) {
		d.Failf("sample population %d below kept size %d", n, count)
		return
	}
	items := make([]sampleItem, 0, count)
	for i := 0; i < count; i++ {
		key := d.Uvarint()
		val := d.F64()
		if d.Err() != nil {
			return
		}
		items = append(items, sampleItem{key: key, val: val})
	}
	s.n = 0
	s.items = s.items[:0]
	for _, it := range items {
		s.Add(it.key, it.val)
	}
	s.n = n
}
