package predict

import (
	"math"
	"math/rand/v2"
	"sort"

	"cellcars/internal/cdr"
	"cellcars/internal/simtime"
	"cellcars/internal/stats"
)

// CarCluster is one behavioural group of cars found by clustering
// their weekly appearance profiles.
type CarCluster struct {
	// Cars are the member ids, ascending.
	Cars []cdr.CarID
	// Centroid is the group's mean hour-of-week frequency profile.
	Centroid [HoursPerWeek]float64
	// MeanPredictability averages the members' scores.
	MeanPredictability float64
}

// PeakHour returns the centroid's strongest hour-of-week.
func (c *CarCluster) PeakHour() int {
	best, bestV := 0, -1.0
	for h, v := range c.Centroid {
		if v > bestV {
			best, bestV = h, v
		}
	}
	return best
}

// WeekendShare returns the fraction of the centroid's mass on
// Saturday and Sunday.
func (c *CarCluster) WeekendShare() float64 {
	var wk, total float64
	for h, v := range c.Centroid {
		total += v
		if h >= 5*24 {
			wk += v
		}
	}
	if total == 0 {
		return 0
	}
	return wk / total
}

// ClusterCars groups cars by their weekly appearance profiles using
// k-means over L2-normalized frequency vectors — the clustering the
// paper's introduction promises ("cars can be clustered according to
// predictability in their behavior"). Cars with no training-window
// records are skipped. Clusters are ordered by descending size.
// It panics when k < 1; cars fewer than k yields one cluster per car.
func ClusterCars(records []cdr.Record, period simtime.Period, tzOffset, trainWeeks, k int, rng *rand.Rand) []CarCluster {
	if k < 1 {
		panic("predict: ClusterCars needs k >= 1")
	}
	byCar := make(map[cdr.CarID][]cdr.Record)
	for _, r := range records {
		byCar[r.Car] = append(byCar[r.Car], r)
	}
	cars := make([]cdr.CarID, 0, len(byCar))
	for car := range byCar {
		cars = append(cars, car)
	}
	sort.Slice(cars, func(i, j int) bool { return cars[i] < cars[j] })

	var ids []cdr.CarID
	var vectors [][]float64
	var scores []float64
	for _, car := range cars {
		p := Learn(byCar[car], period, tzOffset, trainWeeks)
		v := normalize(p.Freq[:])
		if v == nil {
			continue
		}
		ids = append(ids, car)
		vectors = append(vectors, v)
		scores = append(scores, p.Predictability)
	}
	if len(vectors) == 0 {
		return nil
	}
	if k > len(vectors) {
		k = len(vectors)
	}
	km := stats.KMeans(vectors, k, 100, rng)

	clusters := make([]CarCluster, k)
	for i, a := range km.Assignments {
		clusters[a].Cars = append(clusters[a].Cars, ids[i])
		clusters[a].MeanPredictability += scores[i]
		for h, v := range vectors[i] {
			clusters[a].Centroid[h] += v
		}
	}
	for c := range clusters {
		n := float64(len(clusters[c].Cars))
		if n == 0 {
			continue
		}
		clusters[c].MeanPredictability /= n
		for h := range clusters[c].Centroid {
			clusters[c].Centroid[h] /= n
		}
	}
	sort.SliceStable(clusters, func(i, j int) bool {
		return len(clusters[i].Cars) > len(clusters[j].Cars)
	})
	return clusters
}

// normalize returns the L2-normalized copy of v, or nil when v is all
// zeros.
func normalize(v []float64) []float64 {
	var norm float64
	for _, x := range v {
		norm += x * x
	}
	if norm == 0 {
		return nil
	}
	norm = math.Sqrt(norm)
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = x / norm
	}
	return out
}
