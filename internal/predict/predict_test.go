package predict

import (
	"math/rand/v2"
	"testing"
	"time"

	"cellcars/internal/cdr"
	"cellcars/internal/radio"
	"cellcars/internal/simtime"
)

var t0 = time.Date(2017, 1, 2, 0, 0, 0, 0, time.UTC) // a Monday

func period(weeks int) simtime.Period { return simtime.NewPeriod(t0, weeks*7) }

func rec(car cdr.CarID, start time.Duration, dur time.Duration) cdr.Record {
	return cdr.Record{
		Car:      car,
		Cell:     radio.MakeCellKey(1, 0, radio.C3),
		Start:    t0.Add(start),
		Duration: dur,
	}
}

// weeklyCommuter returns records for a car appearing every Monday and
// Wednesday at 08:00 UTC for 30 minutes over the given weeks.
func weeklyCommuter(car cdr.CarID, weeks int) []cdr.Record {
	var out []cdr.Record
	for w := 0; w < weeks; w++ {
		for _, day := range []int{0, 2} {
			start := time.Duration(w*7+day)*24*time.Hour + 8*time.Hour
			out = append(out, rec(car, start, 30*time.Minute))
		}
	}
	return out
}

func TestLearnPerfectlyRegularCar(t *testing.T) {
	p := Learn(weeklyCommuter(1, 4), period(6), 0, 4)
	if p.Car != 1 || p.Weeks != 4 {
		t.Fatalf("profile header: %+v", p)
	}
	// Monday 08:00 = hour-of-week 8; Wednesday 08:00 = 2*24+8.
	if f := p.Freq[8]; f < 0.999 || f > 1.001 {
		t.Fatalf("Monday 08 freq = %v, want 1", f)
	}
	if f := p.Freq[2*24+8]; f < 0.999 {
		t.Fatalf("Wednesday 08 freq = %v, want 1", f)
	}
	if p.Freq[9] != 0 {
		t.Fatalf("Monday 09 freq = %v, want 0 (sub-hour session)", p.Freq[9])
	}
	if p.Predictability != 1 {
		t.Fatalf("perfectly regular car predictability = %v, want 1", p.Predictability)
	}
	active := p.ActiveHours(0.5)
	if len(active) != 2 || active[0] != 8 || active[1] != 2*24+8 {
		t.Fatalf("active hours = %v", active)
	}
}

func TestLearnIrregularCarScoresLower(t *testing.T) {
	// A car appearing in a different hour each week.
	var recs []cdr.Record
	for w := 0; w < 4; w++ {
		start := time.Duration(w*7)*24*time.Hour + time.Duration(5+w*3)*time.Hour
		recs = append(recs, rec(2, start, 30*time.Minute))
	}
	irregular := Learn(recs, period(6), 0, 4)
	regular := Learn(weeklyCommuter(1, 4), period(6), 0, 4)
	if irregular.Predictability >= regular.Predictability {
		t.Fatalf("irregular %.3f >= regular %.3f", irregular.Predictability, regular.Predictability)
	}
}

func TestLearnEmptyHistory(t *testing.T) {
	p := Learn(nil, period(4), 0, 2)
	if p.Predictability != 0 {
		t.Fatalf("empty car predictability = %v", p.Predictability)
	}
	if len(p.ActiveHours(0.1)) != 0 {
		t.Fatal("empty car has active hours")
	}
}

func TestLearnPanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Learn(nil, period(2), 0, 3)
}

func TestPredictPanicsOutOfRange(t *testing.T) {
	p := Learn(nil, period(2), 0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Predict(HoursPerWeek, 0.5)
}

func TestLearnHonoursTimezone(t *testing.T) {
	// 13:00 UTC at UTC-5 is 08:00 local.
	recs := []cdr.Record{rec(3, 13*time.Hour, 30*time.Minute)}
	p := Learn(recs, period(2), -5*3600, 1)
	if p.Freq[8] != 1 {
		t.Fatalf("local hour 8 freq = %v", p.Freq[8])
	}
	if p.Freq[13] != 0 {
		t.Fatal("UTC hour wrongly marked")
	}
}

func TestBacktestPerfectCar(t *testing.T) {
	// Regular over 6 weeks: train 4, evaluate 2 → every prediction hits.
	recs := weeklyCommuter(1, 6)
	o := Backtest(recs, period(6), 0, 4, 2, 0.5)
	if o.TruePositive != 4 { // 2 hours × 2 eval weeks
		t.Fatalf("TP = %d, want 4", o.TruePositive)
	}
	if o.FalsePositive != 0 || o.FalseNegative != 0 {
		t.Fatalf("FP/FN = %d/%d, want 0/0", o.FalsePositive, o.FalseNegative)
	}
	if o.Precision() != 1 || o.Recall() != 1 || o.F1() != 1 {
		t.Fatalf("P/R/F1 = %v/%v/%v", o.Precision(), o.Recall(), o.F1())
	}
	wantTN := int64(2*HoursPerWeek - 4)
	if o.TrueNegative != wantTN {
		t.Fatalf("TN = %d, want %d", o.TrueNegative, wantTN)
	}
}

func TestBacktestCarThatStops(t *testing.T) {
	// Active during training, silent during evaluation: all FP.
	recs := weeklyCommuter(1, 4)
	o := Backtest(recs, period(6), 0, 4, 2, 0.5)
	if o.TruePositive != 0 || o.FalsePositive != 4 {
		t.Fatalf("TP/FP = %d/%d, want 0/4", o.TruePositive, o.FalsePositive)
	}
	if o.Precision() != 0 {
		t.Fatalf("precision = %v", o.Precision())
	}
}

func TestBacktestCarThatStarts(t *testing.T) {
	// Silent during training, active during evaluation: all FN.
	var recs []cdr.Record
	for w := 4; w < 6; w++ {
		recs = append(recs, rec(1, time.Duration(w*7)*24*time.Hour+8*time.Hour, 30*time.Minute))
	}
	o := Backtest(recs, period(6), 0, 4, 2, 0.5)
	if o.FalseNegative != 2 || o.TruePositive != 0 {
		t.Fatalf("FN/TP = %d/%d, want 2/0", o.FalseNegative, o.TruePositive)
	}
	if o.Recall() != 0 || o.F1() != 0 {
		t.Fatalf("recall = %v, F1 = %v", o.Recall(), o.F1())
	}
}

func TestBacktestPanicsOnWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Backtest(nil, period(4), 0, 3, 2, 0.5)
}

func TestOutcomeEdgeCases(t *testing.T) {
	var o Outcome
	if o.Precision() != 0 || o.Recall() != 0 || o.F1() != 0 {
		t.Fatal("empty outcome must report zeros")
	}
}

func TestBacktestFleet(t *testing.T) {
	var records []cdr.Record
	// 8 regular cars and 4 erratic ones.
	for car := cdr.CarID(1); car <= 8; car++ {
		records = append(records, weeklyCommuter(car, 6)...)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	for car := cdr.CarID(9); car <= 12; car++ {
		for w := 0; w < 6; w++ {
			h := time.Duration(rng.IntN(24*7)) * time.Hour
			records = append(records, rec(car, time.Duration(w*7)*24*time.Hour+h, 30*time.Minute))
		}
	}
	res := BacktestFleet(records, period(6), 0, 4, 2, 0.5)
	if res.Cars != 12 {
		t.Fatalf("cars = %d", res.Cars)
	}
	if res.Overall.TruePositive == 0 {
		t.Fatal("no true positives across a mostly regular fleet")
	}
	if res.MeanPredictability <= 0 || res.MeanPredictability > 1 {
		t.Fatalf("mean predictability = %v", res.MeanPredictability)
	}
	// The top predictability quartile should outperform the bottom.
	bottom, top := res.ByPredictability[0], res.ByPredictability[3]
	if top.F1() <= bottom.F1() {
		t.Fatalf("top quartile F1 %.3f not above bottom %.3f", top.F1(), bottom.F1())
	}
}

func TestBacktestFleetEmpty(t *testing.T) {
	res := BacktestFleet(nil, period(6), 0, 4, 2, 0.5)
	if res.Cars != 0 {
		t.Fatalf("cars = %d", res.Cars)
	}
}

func TestClusterCarsSeparatesBehaviours(t *testing.T) {
	var records []cdr.Record
	// Ten weekday-morning cars and ten weekend-afternoon cars.
	for car := cdr.CarID(1); car <= 10; car++ {
		records = append(records, weeklyCommuter(car, 4)...)
	}
	for car := cdr.CarID(11); car <= 20; car++ {
		for w := 0; w < 4; w++ {
			start := time.Duration(w*7+5)*24*time.Hour + 14*time.Hour // Saturday 14:00
			records = append(records, rec(car, start, 45*time.Minute))
		}
	}
	clusters := ClusterCars(records, period(4), 0, 4, 2, rand.New(rand.NewPCG(3, 4)))
	if len(clusters) != 2 {
		t.Fatalf("clusters = %d", len(clusters))
	}
	if len(clusters[0].Cars)+len(clusters[1].Cars) != 20 {
		t.Fatalf("cluster sizes: %d + %d", len(clusters[0].Cars), len(clusters[1].Cars))
	}
	// One cluster must be weekend-dominated, the other weekday.
	var weekendCluster, weekdayCluster *CarCluster
	for i := range clusters {
		if clusters[i].WeekendShare() > 0.5 {
			weekendCluster = &clusters[i]
		} else {
			weekdayCluster = &clusters[i]
		}
	}
	if weekendCluster == nil || weekdayCluster == nil {
		t.Fatalf("weekend shares: %.2f / %.2f",
			clusters[0].WeekendShare(), clusters[1].WeekendShare())
	}
	if len(weekendCluster.Cars) != 10 || len(weekdayCluster.Cars) != 10 {
		t.Fatalf("cluster membership: weekend %d, weekday %d",
			len(weekendCluster.Cars), len(weekdayCluster.Cars))
	}
	// Peak hours land in the right part of the week.
	if ph := weekendCluster.PeakHour(); ph < 5*24 {
		t.Fatalf("weekend cluster peak hour %d not on a weekend", ph)
	}
	if ph := weekdayCluster.PeakHour(); ph >= 5*24 {
		t.Fatalf("weekday cluster peak hour %d on a weekend", ph)
	}
}

func TestClusterCarsDegenerate(t *testing.T) {
	if got := ClusterCars(nil, period(2), 0, 1, 2, rand.New(rand.NewPCG(1, 1))); got != nil {
		t.Fatal("no cars should yield no clusters")
	}
	// One car, k=3: one cluster per car.
	records := weeklyCommuter(1, 2)
	clusters := ClusterCars(records, period(2), 0, 2, 3, rand.New(rand.NewPCG(1, 1)))
	if len(clusters) != 1 || len(clusters[0].Cars) != 1 {
		t.Fatalf("clusters: %+v", clusters)
	}
}

func TestClusterCarsPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ClusterCars(nil, period(2), 0, 1, 0, rand.New(rand.NewPCG(1, 1)))
}

func TestNormalize(t *testing.T) {
	if normalize([]float64{0, 0}) != nil {
		t.Fatal("zero vector should normalize to nil")
	}
	v := normalize([]float64{3, 4})
	if v[0] != 0.6 || v[1] != 0.8 {
		t.Fatalf("normalize = %v", v)
	}
}

func TestPredictabilityBounds(t *testing.T) {
	if p := predictability([]float64{1, 1, 1}); p != 1 {
		t.Fatalf("always-on predictability = %v", p)
	}
	if p := predictability([]float64{0.5, 0.5}); p != 0 {
		t.Fatalf("coin-flip predictability = %v", p)
	}
	if p := predictability(nil); p != 0 {
		t.Fatalf("empty predictability = %v", p)
	}
}
