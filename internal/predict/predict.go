// Package predict builds per-car appearance prediction on top of the
// measurement pipeline — the capability the paper's discussion calls
// for ("possible per-car prediction models for efficient content
// delivery", §4.7) and its introduction previews ("cars can be
// clustered according to predictability in their behavior", §1).
//
// The model is deliberately simple and interpretable, in the spirit of
// the paper's 24×7 matrices: a car's history is folded into an
// hour-of-week frequency matrix; hours whose appearance frequency
// clears a threshold are predicted active. Predictability is the
// week-over-week consistency of that matrix, and backtesting splits
// the study into a training prefix and evaluation suffix.
package predict

import (
	"fmt"
	"math"
	"sort"
	"time"

	"cellcars/internal/cdr"
	"cellcars/internal/clean"
	"cellcars/internal/simtime"
)

// HoursPerWeek is the prediction resolution: one slot per hour of the
// week, matching the paper's matrices.
const HoursPerWeek = 24 * 7

// Profile is a car's learned weekly appearance profile.
type Profile struct {
	Car cdr.CarID
	// Weeks is the number of training weeks observed.
	Weeks int
	// Freq[h] is the fraction of training weeks in which the car was
	// on the network during hour-of-week h.
	Freq [HoursPerWeek]float64
	// Predictability in [0, 1]: 1 means the car appears in exactly the
	// same hours every week, 0 means appearances are spread uniformly
	// at random. Defined as 1 - H(active hours)/H(uniform), where H is
	// computed over the frequency profile restricted to hours the car
	// ever used.
	Predictability float64
}

// ActiveHours returns the hour-of-week slots whose frequency is at
// least threshold, the car's predicted weekly appearance set.
func (p *Profile) ActiveHours(threshold float64) []int {
	var out []int
	for h, f := range p.Freq {
		if f >= threshold {
			out = append(out, h)
		}
	}
	return out
}

// Predict reports whether the car is expected on the network during
// the given hour-of-week at the given frequency threshold.
func (p *Profile) Predict(hourOfWeek int, threshold float64) bool {
	if hourOfWeek < 0 || hourOfWeek >= HoursPerWeek {
		panic(fmt.Sprintf("predict: hour-of-week %d out of range", hourOfWeek))
	}
	return p.Freq[hourOfWeek] >= threshold
}

// hourSetsByWeek folds one car's sessions into per-week sets of active
// hour-of-week slots. Records must belong to a single car.
func hourSetsByWeek(records []cdr.Record, period simtime.Period, tzOffset int, fromWeek, toWeek int) []map[int]struct{} {
	nWeeks := toWeek - fromWeek
	sets := make([]map[int]struct{}, nWeeks)
	for i := range sets {
		sets[i] = make(map[int]struct{})
	}
	sessions, err := clean.Sessions(cdr.NewSliceReader(records), clean.AggregateGap)
	if err != nil {
		return sets // slice reader cannot fail
	}
	for _, s := range sessions {
		end := s.End
		if end.Sub(s.Start) > 7*24*time.Hour {
			end = s.Start.Add(7 * 24 * time.Hour)
		}
		for t := s.Start.Truncate(time.Hour); t.Before(end); t = t.Add(time.Hour) {
			day := period.DayIndex(t)
			if day < 0 {
				continue
			}
			week := day / 7
			if week < fromWeek || week >= toWeek {
				continue
			}
			sets[week-fromWeek][simtime.HourOfWeek(t, tzOffset)] = struct{}{}
		}
	}
	return sets
}

// Learn builds a car's profile from its records restricted to study
// weeks [0, trainWeeks). Records must belong to a single car and be
// ghost-free. It panics when trainWeeks does not fit in the period.
func Learn(records []cdr.Record, period simtime.Period, tzOffset int, trainWeeks int) Profile {
	if trainWeeks < 1 || trainWeeks*7 > period.Days() {
		panic(fmt.Sprintf("predict: trainWeeks %d outside period of %d days", trainWeeks, period.Days()))
	}
	p := Profile{Weeks: trainWeeks}
	if len(records) > 0 {
		p.Car = records[0].Car
	}
	sets := hourSetsByWeek(records, period, tzOffset, 0, trainWeeks)
	for _, set := range sets {
		for h := range set {
			p.Freq[h] += 1 / float64(trainWeeks)
		}
	}
	p.Predictability = predictability(p.Freq[:])
	return p
}

// predictability maps a frequency profile to [0, 1]. Hours the car
// never used are ignored; among used hours, frequencies near 0.5 are
// maximally uncertain and frequencies near 0 or 1 are maximally
// certain. The score is 1 - mean binary entropy.
func predictability(freq []float64) float64 {
	var hsum float64
	n := 0
	for _, f := range freq {
		if f <= 0 {
			continue
		}
		n++
		hsum += binaryEntropy(f)
	}
	if n == 0 {
		return 0
	}
	return 1 - hsum/float64(n)
}

func binaryEntropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

// Outcome is a backtest confusion matrix over (car, hour-of-week,
// evaluation-week) triples.
type Outcome struct {
	TruePositive  int64
	FalsePositive int64
	FalseNegative int64
	TrueNegative  int64
}

// Precision returns TP/(TP+FP), or 0 when nothing was predicted.
func (o Outcome) Precision() float64 {
	d := o.TruePositive + o.FalsePositive
	if d == 0 {
		return 0
	}
	return float64(o.TruePositive) / float64(d)
}

// Recall returns TP/(TP+FN), or 0 when nothing was active.
func (o Outcome) Recall() float64 {
	d := o.TruePositive + o.FalseNegative
	if d == 0 {
		return 0
	}
	return float64(o.TruePositive) / float64(d)
}

// F1 returns the harmonic mean of precision and recall.
func (o Outcome) F1() float64 {
	p, r := o.Precision(), o.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Backtest learns a profile on weeks [0, trainWeeks) and evaluates
// hourly presence prediction on weeks [trainWeeks, trainWeeks+evalWeeks),
// using the given frequency threshold. Records must belong to a single
// car. It panics when the window does not fit the period.
func Backtest(records []cdr.Record, period simtime.Period, tzOffset int, trainWeeks, evalWeeks int, threshold float64) Outcome {
	if evalWeeks < 1 || (trainWeeks+evalWeeks)*7 > period.Days() {
		panic(fmt.Sprintf("predict: eval window %d+%d weeks outside period of %d days",
			trainWeeks, evalWeeks, period.Days()))
	}
	profile := Learn(records, period, tzOffset, trainWeeks)
	actualSets := hourSetsByWeek(records, period, tzOffset, trainWeeks, trainWeeks+evalWeeks)

	var o Outcome
	for _, actual := range actualSets {
		for h := 0; h < HoursPerWeek; h++ {
			predicted := profile.Predict(h, threshold)
			_, active := actual[h]
			switch {
			case predicted && active:
				o.TruePositive++
			case predicted && !active:
				o.FalsePositive++
			case !predicted && active:
				o.FalseNegative++
			default:
				o.TrueNegative++
			}
		}
	}
	return o
}

// FleetResult is a population-level backtest summary.
type FleetResult struct {
	Cars    int
	Overall Outcome
	// ByPredictability holds per-quartile outcomes: cars are ranked by
	// profile predictability and split into four equal groups, lowest
	// quartile first. The paper's premise — predictable cars enable
	// intelligent management — shows up as monotonically increasing F1.
	ByPredictability [4]Outcome
	// MeanPredictability is the fleet average score.
	MeanPredictability float64
}

// BacktestFleet runs Backtest for every car in a (car-grouped or
// globally sorted) stream and aggregates.
func BacktestFleet(records []cdr.Record, period simtime.Period, tzOffset int, trainWeeks, evalWeeks int, threshold float64) FleetResult {
	byCar := make(map[cdr.CarID][]cdr.Record)
	for _, r := range records {
		byCar[r.Car] = append(byCar[r.Car], r)
	}
	type carScore struct {
		car     cdr.CarID
		score   float64
		outcome Outcome
	}
	scored := make([]carScore, 0, len(byCar))
	var res FleetResult
	for car, recs := range byCar {
		profile := Learn(recs, period, tzOffset, trainWeeks)
		out := Backtest(recs, period, tzOffset, trainWeeks, evalWeeks, threshold)
		res.Overall.TruePositive += out.TruePositive
		res.Overall.FalsePositive += out.FalsePositive
		res.Overall.FalseNegative += out.FalseNegative
		res.Overall.TrueNegative += out.TrueNegative
		res.MeanPredictability += profile.Predictability
		scored = append(scored, carScore{car, profile.Predictability, out})
	}
	res.Cars = len(scored)
	if res.Cars == 0 {
		return res
	}
	res.MeanPredictability /= float64(res.Cars)
	sort.Slice(scored, func(i, j int) bool {
		if scored[i].score != scored[j].score {
			return scored[i].score < scored[j].score
		}
		return scored[i].car < scored[j].car
	})
	for i, cs := range scored {
		q := i * 4 / len(scored)
		res.ByPredictability[q].TruePositive += cs.outcome.TruePositive
		res.ByPredictability[q].FalsePositive += cs.outcome.FalsePositive
		res.ByPredictability[q].FalseNegative += cs.outcome.FalseNegative
		res.ByPredictability[q].TrueNegative += cs.outcome.TrueNegative
	}
	return res
}
