package analysis

import (
	"fmt"
	"time"

	"cellcars/internal/cdr"
	"cellcars/internal/radio"
)

// CarrierUsage is Table 3: per carrier, the fraction of cars that ever
// connected to it and the fraction of total connected time spent on it.
type CarrierUsage struct {
	// CarsFrac[c] is the fraction of all cars ever seen on carrier c.
	CarsFrac map[radio.CarrierID]float64
	// TimeFrac[c] is the fraction of total connected time on carrier c.
	TimeFrac map[radio.CarrierID]float64
	// TotalCars is the distinct car count (the CarsFrac denominator).
	TotalCars int
}

// CarrierUsageOf computes Table 3 from ghost-free records.
func CarrierUsageOf(records []cdr.Record) CarrierUsage {
	carsOn := make(map[radio.CarrierID]map[cdr.CarID]struct{})
	timeOn := make(map[radio.CarrierID]time.Duration)
	allCars := make(map[cdr.CarID]struct{})
	var total time.Duration
	forEachRecord(records, func(r cdr.Record) {
		c := r.Cell.Carrier()
		set, ok := carsOn[c]
		if !ok {
			set = make(map[cdr.CarID]struct{})
			carsOn[c] = set
		}
		set[r.Car] = struct{}{}
		allCars[r.Car] = struct{}{}
		timeOn[c] += r.Duration
		total += r.Duration
	})

	u := CarrierUsage{
		CarsFrac:  make(map[radio.CarrierID]float64, radio.NumCarriers),
		TimeFrac:  make(map[radio.CarrierID]float64, radio.NumCarriers),
		TotalCars: len(allCars),
	}
	for c := radio.C1; c <= radio.C5; c++ {
		if len(allCars) > 0 {
			u.CarsFrac[c] = float64(len(carsOn[c])) / float64(len(allCars))
		}
		if total > 0 {
			u.TimeFrac[c] = float64(timeOn[c]) / float64(total)
		}
	}
	return u
}

// FormatTable3 renders carrier usage in the paper's Table 3 layout.
func FormatTable3(u CarrierUsage) string {
	s := fmt.Sprintf("%-8s", "Carrier")
	for c := radio.C1; c <= radio.C5; c++ {
		s += fmt.Sprintf("  %8s", c)
	}
	s += fmt.Sprintf("\n%-8s", "Cars(%)")
	for c := radio.C1; c <= radio.C5; c++ {
		s += fmt.Sprintf("  %7.3f%%", u.CarsFrac[c]*100)
	}
	s += fmt.Sprintf("\n%-8s", "Time(%)")
	for c := radio.C1; c <= radio.C5; c++ {
		s += fmt.Sprintf("  %7.3f%%", u.TimeFrac[c]*100)
	}
	return s + "\n"
}
