package analysis

import (
	"fmt"

	"cellcars/internal/cdr"
	"cellcars/internal/radio"
)

// CarrierUsage is Table 3: per carrier, the fraction of cars that ever
// connected to it and the fraction of total connected time spent on it.
type CarrierUsage struct {
	// CarsFrac[c] is the fraction of all cars ever seen on carrier c.
	CarsFrac map[radio.CarrierID]float64
	// TimeFrac[c] is the fraction of total connected time on carrier c.
	TimeFrac map[radio.CarrierID]float64
	// TotalCars is the distinct car count (the CarsFrac denominator).
	TotalCars int
}

// CarrierUsageOf computes Table 3 from ghost-free records.
func CarrierUsageOf(records []cdr.Record) CarrierUsage {
	return runAccum(newCarriersAcc(), records).Carriers
}

// FormatTable3 renders carrier usage in the paper's Table 3 layout.
func FormatTable3(u CarrierUsage) string {
	s := fmt.Sprintf("%-8s", "Carrier")
	for c := radio.C1; c <= radio.C5; c++ {
		s += fmt.Sprintf("  %8s", c)
	}
	s += fmt.Sprintf("\n%-8s", "Cars(%)")
	for c := radio.C1; c <= radio.C5; c++ {
		s += fmt.Sprintf("  %7.3f%%", u.CarsFrac[c]*100)
	}
	s += fmt.Sprintf("\n%-8s", "Time(%)")
	for c := radio.C1; c <= radio.C5; c++ {
		s += fmt.Sprintf("  %7.3f%%", u.TimeFrac[c]*100)
	}
	return s + "\n"
}
