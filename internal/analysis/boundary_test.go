package analysis

import (
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"cellcars/internal/cdr"
	"cellcars/internal/radio"
	"cellcars/internal/simtime"
)

// TestResumeAtSliceBoundary is the sharpest resume-at-boundary case:
// the earlier slice is checkpointed with a session whose End lands
// EXACTLY on the slice edge, and the later slice's first record starts
// EXACTLY on that edge (gap zero). The snapshot → ResumeStreaming →
// MergeOrdered path must stitch them into one session, matching the
// uninterrupted run bit for bit.
func TestResumeAtSliceBoundary(t *testing.T) {
	t0 := time.Date(2017, 3, 6, 0, 0, 0, 0, time.UTC)
	ctx := Context{Period: simtime.NewPeriod(t0, 2), TZOffsetSeconds: -5 * 3600}
	edge := t0.Add(24 * time.Hour)
	cellA := radio.MakeCellKey(1, 0, radio.C1)
	cellB := radio.MakeCellKey(2, 1, radio.C2)
	before := []cdr.Record{
		// Ends exactly at the edge: still open in the sessionizer when
		// the slice is cut (no gap evidence yet).
		{Car: 7, Cell: cellA, Start: edge.Add(-90 * time.Second), Duration: 90 * time.Second},
	}
	after := []cdr.Record{
		// Starts exactly at the edge: zero gap, must join the earlier
		// tail, not open a second session.
		{Car: 7, Cell: cellB, Start: edge, Duration: 60 * time.Second},
		// Real gap evidence later, so the stitched session closes.
		{Car: 7, Cell: cellA, Start: edge.Add(2 * time.Hour), Duration: 30 * time.Second},
	}

	tracked := RunOptions{TrackHeads: true}
	s1 := NewStreamingWithOptions(ctx, tracked)
	for _, r := range before {
		s1.Add(r)
	}
	path := filepath.Join(t.TempDir(), "edge.snap")
	if err := s1.WriteSnapshot(path); err != nil {
		t.Fatal(err)
	}
	s1r, err := ResumeStreaming(ctx, tracked, path)
	if err != nil {
		t.Fatal(err)
	}
	if s1r.Watermark() != int64(len(before)) {
		t.Fatalf("restored watermark %d, want %d", s1r.Watermark(), len(before))
	}

	s2 := NewStreamingWithOptions(ctx, tracked)
	for _, r := range after {
		s2.Add(r)
	}
	if err := s1r.MergeOrdered(s2); err != nil {
		t.Fatal(err)
	}
	got := s1r.Finalize()

	whole := NewStreamingWithOptions(ctx, RunOptions{})
	for _, r := range append(append([]cdr.Record(nil), before...), after...) {
		whole.Add(r)
	}
	want := whole.Finalize()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed-at-boundary report differs from uninterrupted run\ngot  %+v\nwant %+v", got, want)
	}
	// The zero-gap join is what makes this case sharp: one mobility
	// session crossing the edge with a single A→B handover (the later
	// A record is a separate session past the 10-minute gap).
	if got.Handovers.Sessions != 2 {
		t.Fatalf("mobility sessions = %d, want 2", got.Handovers.Sessions)
	}
	var total int64
	for _, n := range got.Handovers.ByKind {
		total += n
	}
	if total != 1 {
		t.Fatalf("handovers = %d, want 1 (the boundary-crossing A→B)", total)
	}
}
