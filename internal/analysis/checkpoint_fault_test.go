package analysis

import (
	"errors"
	"fmt"
	"os"
	"testing"
	"time"

	"cellcars/internal/cdr"
	"cellcars/internal/obs"
	"cellcars/internal/radio"
	"cellcars/internal/simtime"
)

// stubCheckpointIO replaces the checkpoint I/O hooks for one test and
// restores them on cleanup. Tests using it must not run in parallel.
func stubCheckpointIO(t *testing.T, create func(string) (*os.File, error), rename func(string, string) error) {
	t.Helper()
	origCreate, origRename, origSleep := createSnapshotFile, renameSnapshotFile, checkpointSleep
	if create != nil {
		createSnapshotFile = create
	}
	if rename != nil {
		renameSnapshotFile = rename
	}
	checkpointSleep = func(time.Duration) {}
	t.Cleanup(func() {
		createSnapshotFile, renameSnapshotFile, checkpointSleep = origCreate, origRename, origSleep
	})
}

func faultTestStreaming(t *testing.T) *Streaming {
	t.Helper()
	period := simtime.NewPeriod(time.Date(2017, 1, 2, 0, 0, 0, 0, time.UTC), 7)
	s := NewStreaming(period)
	for i := 0; i < 100; i++ {
		s.Add(cdr.Record{
			Car:      cdr.CarID(i % 7),
			Cell:     radio.MakeCellKey(radio.BSID(1+i%5), 0, radio.C1),
			Start:    period.Start().Add(time.Duration(i) * time.Hour),
			Duration: 90 * time.Second,
		})
	}
	return s
}

// TestCheckpointWriteRetriesTransientCreate injects transient create
// failures and expects the atomic write to succeed after retries, with
// the retries counted in the registry.
func TestCheckpointWriteRetriesTransientCreate(t *testing.T) {
	fails := 2
	stubCheckpointIO(t, func(name string) (*os.File, error) {
		if fails > 0 {
			fails--
			return nil, fmt.Errorf("injected create fault: %w", cdr.ErrTransient)
		}
		return os.Create(name)
	}, nil)

	reg := obs.New()
	s := faultTestStreaming(t)
	s.opts.Obs = reg
	path := t.TempDir() + "/ckpt.snap"
	if err := s.WriteSnapshot(path); err != nil {
		t.Fatalf("WriteSnapshot after transient faults: %v", err)
	}
	if fails != 0 {
		t.Fatalf("create stub called too few times; %d injected faults unused", fails)
	}
	if got := reg.Counter("cellcars_checkpoint_retries_total").Value(); got != 2 {
		t.Fatalf("retries counter = %d, want 2", got)
	}
	if got := reg.Counter("cellcars_checkpoint_writes_total").Value(); got != 1 {
		t.Fatalf("writes counter = %d, want 1", got)
	}
	if p, err := ReadPartialFile(path); err != nil {
		t.Fatalf("snapshot written under faults does not restore: %v", err)
	} else if p.Records() != 100 {
		t.Fatalf("restored %d records, want 100", p.Records())
	}
}

// TestCheckpointWriteRetriesTransientRename injects transient rename
// failures: the retried attempt rewrites a fresh temp file and the
// final file must restore cleanly, with no temp file left behind.
func TestCheckpointWriteRetriesTransientRename(t *testing.T) {
	fails := 1
	stubCheckpointIO(t, nil, func(oldpath, newpath string) error {
		if fails > 0 {
			fails--
			return fmt.Errorf("injected rename fault: %w", cdr.ErrTransient)
		}
		return os.Rename(oldpath, newpath)
	})

	s := faultTestStreaming(t)
	path := t.TempDir() + "/ckpt.snap"
	if err := s.WriteSnapshot(path); err != nil {
		t.Fatalf("WriteSnapshot after transient rename fault: %v", err)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp file left behind after retried rename (stat err %v)", err)
	}
	if _, err := ReadPartialFile(path); err != nil {
		t.Fatalf("snapshot does not restore: %v", err)
	}
}

// TestCheckpointWriteGivesUpAfterBudget exhausts the retry budget and
// expects the transient error to surface, not an infinite loop.
func TestCheckpointWriteGivesUpAfterBudget(t *testing.T) {
	calls := 0
	stubCheckpointIO(t, func(string) (*os.File, error) {
		calls++
		return nil, fmt.Errorf("injected persistent fault: %w", cdr.ErrTransient)
	}, nil)

	s := faultTestStreaming(t)
	err := s.WriteSnapshot(t.TempDir() + "/ckpt.snap")
	if err == nil || !cdr.IsTransient(err) {
		t.Fatalf("want surfaced transient error, got %v", err)
	}
	if want := checkpointRetryAttempts + 1; calls != want {
		t.Fatalf("create attempted %d times, want %d", calls, want)
	}
}

// TestCheckpointWriteNonTransientFailsFast: a permanent failure is not
// retried at all.
func TestCheckpointWriteNonTransientFailsFast(t *testing.T) {
	calls := 0
	permanent := errors.New("disk on fire")
	stubCheckpointIO(t, func(string) (*os.File, error) {
		calls++
		return nil, permanent
	}, nil)

	s := faultTestStreaming(t)
	err := s.WriteSnapshot(t.TempDir() + "/ckpt.snap")
	if !errors.Is(err, permanent) {
		t.Fatalf("want the permanent error surfaced, got %v", err)
	}
	if calls != 1 {
		t.Fatalf("create attempted %d times, want 1 (no retries on permanent errors)", calls)
	}
}
