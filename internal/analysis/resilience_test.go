package analysis

import (
	"errors"
	"io"
	"math"
	"strings"
	"testing"
	"time"

	"cellcars/internal/cdr"
	"cellcars/internal/simtime"
	"cellcars/internal/synth"
)

// genWorkload produces a deterministic synthetic data set for the
// chaos acceptance tests: a small fleet over two weeks, no
// data-loss window (that is exercised separately).
func genWorkload(t *testing.T) ([]cdr.Record, simtime.Period) {
	t.Helper()
	period := simtime.NewPeriod(t0, 14)
	w := synth.NewWorld(synth.Config{
		Seed:     7,
		NumCars:  30,
		Period:   period,
		LossDays: []int{}, // non-nil: disable the default loss window
	})
	records, _, err := w.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) < 1000 {
		t.Fatalf("workload too small for a meaningful chaos run: %d records", len(records))
	}
	return records, period
}

// relDiff returns |a-b| relative to b (0 when both are 0).
func relDiff(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}

// TestStreamingSurvivesChaos is the headline acceptance test: corrupt
// ~1% of the records of a generated data set, run the streaming
// pipeline end to end behind the resilient reader, and require that
// (a) the run completes, (b) the quarantine accounts for at least the
// injected corruption, and (c) Table 1 presence and the Figure 9
// duration median stay within 2% of the clean run.
func TestStreamingSurvivesChaos(t *testing.T) {
	records, period := genWorkload(t)

	clean := NewStreaming(period)
	if err := clean.AddAll(cdr.NewSliceReader(records)); err != nil {
		t.Fatal(err)
	}
	cleanRep := clean.Finalize()

	chaos := cdr.NewChaosReader(cdr.NewSliceReader(records), cdr.ChaosConfig{
		Seed:        99,
		CorruptProb: 0.01,
	})
	rr := cdr.NewResilientReader(chaos, cdr.ResilientConfig{MaxBadFrac: 0.05})
	dirty := NewStreaming(period)
	if err := dirty.AddAll(rr); err != nil {
		t.Fatalf("streaming pipeline died under 1%% corruption: %v", err)
	}
	dirtyRep := dirty.Finalize()

	injected := chaos.Stats().Corrupted
	if injected == 0 {
		t.Fatal("chaos injected nothing; the test proves nothing")
	}
	stats := rr.Stats()
	if got := stats.QuarantinedTotal(); got < injected {
		t.Fatalf("quarantined %d < injected %d: corrupted records leaked into analysis", got, injected)
	}
	if stats.Read != int64(len(records))-injected {
		t.Fatalf("read %d records, want %d - %d", stats.Read, len(records), injected)
	}

	// Table 1: every weekday row of the presence table within 2%.
	if len(dirtyRep.WeekdayRows) != len(cleanRep.WeekdayRows) {
		t.Fatalf("weekday rows %d vs %d", len(dirtyRep.WeekdayRows), len(cleanRep.WeekdayRows))
	}
	for i, want := range cleanRep.WeekdayRows {
		got := dirtyRep.WeekdayRows[i]
		if relDiff(got.CarsMean, want.CarsMean) > 0.02 {
			t.Errorf("%s cars mean %.4f vs clean %.4f (>2%%)", want.Label, got.CarsMean, want.CarsMean)
		}
		if relDiff(got.CellsMean, want.CellsMean) > 0.02 {
			t.Errorf("%s cells mean %.4f vs clean %.4f (>2%%)", want.Label, got.CellsMean, want.CellsMean)
		}
	}

	// Figure 9: truncated-duration median within 2%.
	if cleanRep.DurMedian <= 0 {
		t.Fatal("clean run produced no duration median")
	}
	if relDiff(dirtyRep.DurMedian, cleanRep.DurMedian) > 0.02 {
		t.Fatalf("duration median %.2f vs clean %.2f (>2%%)", dirtyRep.DurMedian, cleanRep.DurMedian)
	}
}

// TestStreamingBeyondBudgetFailsFast proves the error budget: with
// corruption far above the configured budget the pipeline must abort
// quickly with a diagnostic naming the dominant corruption class
// instead of producing a silently wrong report.
func TestStreamingBeyondBudgetFailsFast(t *testing.T) {
	records, period := genWorkload(t)
	chaos := cdr.NewChaosReader(cdr.NewSliceReader(records), cdr.ChaosConfig{
		Seed:        5,
		CorruptProb: 0.30,
	})
	rr := cdr.NewResilientReader(chaos, cdr.ResilientConfig{MaxBadFrac: 0.05, MinRecords: 100})
	s := NewStreaming(period)
	err := s.AddAll(rr)
	var be *cdr.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *cdr.BudgetError", err)
	}
	if !strings.Contains(err.Error(), "bad-field") {
		t.Fatalf("budget abort must name the dominant corruption class: %q", err)
	}
	// Fail fast: the abort must come well before the stream ends.
	if be.Stats.Attempted() > int64(len(records))/2 {
		t.Fatalf("abort after %d of %d records is not fast", be.Stats.Attempted(), len(records))
	}
}

// TestRunStageIsolation proves graceful degradation of the batch
// pipeline: one artificially failing stage is reported in StageErrors
// while every other table and figure is still produced.
func TestRunStageIsolation(t *testing.T) {
	var records []cdr.Record
	for d := 0; d < 14; d++ {
		base := time.Duration(d) * 24 * time.Hour
		records = append(records,
			rec(1, cell(1), base+8*time.Hour, 2*time.Minute),
			rec(1, cell(2), base+8*time.Hour+3*time.Minute, 2*time.Minute),
			rec(2, cell(2), base+9*time.Hour, 5*time.Minute),
		)
	}
	ctx := Context{Period: simtime.NewPeriod(t0, 14)}

	r, err := Run(records, ctx, RunOptions{FailStage: "durations"})
	if err != nil {
		t.Fatal(err)
	}
	fail := r.Failed("durations")
	if fail == nil || !strings.Contains(fail.Err, "injected") {
		t.Fatalf("failed stage not recorded: %+v", r.StageErrors)
	}
	if len(r.StageErrors) != 1 {
		t.Fatalf("extra stage failures: %+v", r.StageErrors)
	}
	// The other stages still delivered.
	if r.Presence.TotalCars != 2 {
		t.Fatalf("presence skipped: %+v", r.Presence)
	}
	if r.DaysHist == nil {
		t.Fatal("days histogram skipped")
	}
	if r.Handovers.Sessions == 0 {
		t.Fatal("handovers skipped")
	}
	if r.Carriers.TotalCars != 2 {
		t.Fatal("carriers skipped")
	}
	// The failed stage's output stays at its zero value.
	if r.Durations.Truncated != nil || r.Durations.Median != 0 {
		t.Fatalf("failed stage still produced output: %+v", r.Durations)
	}
}

// panicAcc is a stage accumulator that explodes on its first record.
type panicAcc struct{}

func (panicAcc) Stage() string               { return "presence" }
func (panicAcc) Add(cdr.Record)              { panic("stage exploded") }
func (panicAcc) Merge(Accumulator)           {}
func (panicAcc) Finalize(*Report) error      { return nil }
func (panicAcc) SnapshotTo(io.Writer) error  { return nil }
func (panicAcc) RestoreFrom(io.Reader) error { return nil }

// TestRunStageRecoversPanic proves a panicking stage degrades to a
// diagnostic instead of killing the run: the engine drops the stage,
// records the panic, and the other stages keep absorbing records.
func TestRunStageRecoversPanic(t *testing.T) {
	s := newAccumSet(Context{Period: simtime.NewPeriod(t0, 7)}, EngineOptions{}, 0)
	s.stages[0] = panicAcc{}
	s.add(rec(1, cell(1), time.Hour, time.Minute))
	s.flush()
	rep := s.finalize()
	if len(rep.StageErrors) != 1 || !strings.Contains(rep.StageErrors[0].Err, "stage exploded") {
		t.Fatalf("panic not captured: %+v", rep.StageErrors)
	}
	if rep.StageErrors[0].Stage != "presence" {
		t.Fatalf("wrong stage blamed: %+v", rep.StageErrors)
	}
	// A sibling stage still processed the record.
	if rep.Carriers.TotalCars != 1 {
		t.Fatalf("sibling stage lost the record: %+v", rep.Carriers)
	}
}
