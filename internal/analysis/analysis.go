// Package analysis implements the paper's measurement pipeline — the
// primary contribution being reproduced. Every analysis of §4 is a
// function over a CDR record stream plus side context (study period,
// per-cell PRB load source, local-time offset):
//
//	Figure 2 / Table 1  → DailyPresence, Table1
//	Figure 3            → ConnectedTime
//	Figure 4            → ReferenceMatrices
//	Figure 5            → UsageMatrix
//	Figure 6 / Table 2  → DaysHistogram, Segmentation
//	Figure 7            → BusyTime
//	Figure 8            → CellDay
//	Figure 9            → CellDurations
//	Figure 10           → CellWeek
//	Figure 11           → ClusterBusyCells
//	§4.5                → Handovers
//	Table 3             → CarrierUsage
//
// (Figure 1 is the load-model saturation experiment; see
// internal/load.Saturate.)
//
// Unless noted otherwise, analyses expect records with the erroneous
// exactly-one-hour ghosts already removed (clean.RemoveGhosts); each
// function documents whether it applies the 600-second truncation
// itself, since the paper reports several distributions both ways.
package analysis

import (
	"cellcars/internal/cdr"
	"cellcars/internal/load"
	"cellcars/internal/simtime"
)

// Context carries the side information analyses need beyond the CDR
// stream itself.
type Context struct {
	// Period is the study window.
	Period simtime.Period
	// Load is the per-cell PRB utilization source used for busy-cell
	// classification. Required by BusyTime, Segmentation, CellWeek and
	// ClusterBusyCells; other analyses ignore it.
	Load load.Source
	// TZOffsetSeconds converts record timestamps to local time for the
	// 24×7 matrices. The paper renders usage matrices "in respective
	// local times".
	TZOffsetSeconds int
}

// forEachRecord iterates records, applying fn.
func forEachRecord(records []cdr.Record, fn func(cdr.Record)) {
	for _, r := range records {
		fn(r)
	}
}

// truncDur caps d at the paper's 600-second limit.
func truncDur(d, limit int64) int64 {
	if d > limit {
		return limit
	}
	return d
}
