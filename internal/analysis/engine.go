package analysis

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"cellcars/internal/cdr"
	"cellcars/internal/clean"
	"cellcars/internal/simtime"
)

// Engine executes the full §4 analysis pipeline over a CDR source by
// sharding the stream by car hash across workers, running one complete
// accumulator set per shard, and merging the partials into a Report.
// Because shards are car-disjoint and every accumulator merges by
// union, the report is bit-identical for any worker count on the exact
// stages; only the Figure 9 duration quantiles may switch to a
// deterministic sketch at large scale (see CellDurations).
//
// Record handling policy, shared by Run, Streaming and the engine:
// exactly-one-hour ghosts are dropped (§3), and records starting
// outside the study period are excluded from every analysis and
// counted in Report.OutOfPeriod. (Historically the batch path fed
// out-of-period records to period-less stages like Table 3 while the
// streaming path partially excluded them; the engine makes exclusion
// the single documented behavior.)
type Engine struct {
	ctx  Context
	opts EngineOptions
}

// EngineOptions configures an Engine run.
type EngineOptions struct {
	RunOptions
	// Workers is the shard/goroutine count. Values below 1 mean 1.
	Workers int
}

// NewEngine returns an engine over the context. Defaults mirror Run:
// RareDays {10, 30}, Seed 1, Workers 1.
func NewEngine(ctx Context, opts EngineOptions) *Engine {
	if opts.RareDays == nil {
		opts.RareDays = []int{10, 30}
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	return &Engine{ctx: ctx, opts: opts}
}

// Run analyzes an in-memory record slice. The input is not modified.
func (e *Engine) Run(records []cdr.Record) (*Report, error) {
	n := e.opts.Workers
	shards := cdr.ShardSlices(records, n)
	sets := make([]*accumSet, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		sets[i] = newAccumSet(e.ctx, e.opts, i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			sets[i].addRecords(shards[i])
		}()
	}
	wg.Wait()
	return e.merge(sets), nil
}

// RunReader analyzes a streaming source without materializing it. A
// source read error aborts the run.
func (e *Engine) RunReader(r cdr.Reader) (*Report, error) {
	n := e.opts.Workers
	readers := cdr.ShardReaders(r, n)
	sets := make([]*accumSet, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		sets[i] = newAccumSet(e.ctx, e.opts, i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = sets[i].addReader(readers[i])
		}()
	}
	wg.Wait()
	// Every shard reader observes the same source error; report one.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return e.merge(sets), nil
}

// merge folds worker partials (in shard order, for determinism) and
// finalizes the report.
func (e *Engine) merge(sets []*accumSet) *Report {
	root := sets[0]
	for _, s := range sets[1:] {
		root.merge(s)
	}
	return root.finalize()
}

// engineStageOrder is the canonical stage sequence; finalization and
// FailStage naming follow it.
var engineStageOrder = []string{
	"presence", "connected", "days", "segments", "busy",
	"durations", "handovers", "carriers", "usage", "clusters",
}

// accumSet is one worker's full set of stage accumulators plus the
// shared ingest counters. Stage isolation from the batch pipeline is
// preserved: a stage that panics while absorbing records is dropped
// from the set and recorded as a StageError; the other stages keep
// running.
type accumSet struct {
	period simtime.Period

	raw         int64
	ghosts      int64
	outOfPeriod int64
	accepted    int64

	// stages holds the live accumulators in engineStageOrder positions;
	// a failed or disabled stage is nil.
	stages []Accumulator
	errs   []StageError

	batch []cdr.Record

	// met is the observability hook (nil when no registry was
	// configured): per-stage wall time and record counts, ingest
	// outcome counters, shard balance.
	met *setMetrics
}

// accumBatchSize bounds how many records one isolated stage Add call
// covers; one recover per (stage, batch) amortizes the defer cost.
const accumBatchSize = 1024

// newAccumSet builds the accumulators a context supports. Load-less
// contexts skip the load-dependent stages, mirroring Run; FailStage
// marks its stage failed up front. worker indexes the set for the
// shard-balance metric when opts.Obs is configured.
func newAccumSet(ctx Context, opts EngineOptions, worker int) *accumSet {
	s := &accumSet{
		period: ctx.Period,
		stages: make([]Accumulator, len(engineStageOrder)),
		batch:  make([]cdr.Record, 0, accumBatchSize),
		met:    newSetMetrics(opts.Obs, worker),
	}
	for i, name := range engineStageOrder {
		var acc Accumulator
		switch name {
		case "presence":
			acc = newPresenceAcc(ctx.Period)
		case "connected":
			acc = newConnectedAcc(ctx.Period)
		case "days":
			acc = newDaysAcc(ctx.Period)
		case "segments":
			if ctx.Load != nil {
				acc = newSegmentsAcc(ctx, opts.RareDays)
			}
		case "busy":
			if ctx.Load != nil {
				acc = newBusyAcc(ctx)
			}
		case "durations":
			acc = newDurationsAcc()
		case "handovers":
			h := newHandoverAcc(true)
			h.setTrackHeads(opts.TrackHeads)
			acc = h
		case "carriers":
			acc = newCarriersAcc()
		case "usage":
			u := newUsageAcc(ctx.TZOffsetSeconds)
			u.setTrackHeads(opts.TrackHeads)
			acc = u
		case "clusters":
			if ctx.Load != nil && len(opts.BusyCells) >= 2 {
				acc = newClustersAcc(ctx, opts.BusyCells, opts.Seed)
			}
		}
		if acc != nil && name == opts.FailStage {
			s.stages[i] = nil
			s.errs = append(s.errs, StageError{Stage: name, Err: "injected failure (FailStage)"})
			continue
		}
		s.stages[i] = acc
	}
	return s
}

// add buffers one raw record, applying the ghost and study-period
// filters, and flushes full batches into the stages.
func (s *accumSet) add(r cdr.Record) {
	s.raw++
	// Metrics sync happens at flush; this extra beat covers streams
	// dominated by filtered records, which never fill a batch, so the
	// live counters still advance.
	if s.met != nil && s.raw&1023 == 0 {
		s.met.sync(s)
	}
	if r.Duration == clean.GhostDuration {
		s.ghosts++
		return
	}
	if s.period.DayIndex(r.Start) < 0 {
		s.outOfPeriod++
		return
	}
	s.accepted++
	s.batch = append(s.batch, r)
	if len(s.batch) >= accumBatchSize {
		s.flush()
	}
}

func (s *accumSet) addRecords(records []cdr.Record) {
	for _, r := range records {
		s.add(r)
	}
	s.flush()
}

func (s *accumSet) addReader(r cdr.Reader) error {
	for {
		rec, err := r.Read()
		if err != nil {
			s.flush()
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		s.add(rec)
	}
}

// flush feeds the buffered batch to every live stage, isolating each:
// a stage that panics is dropped and recorded, the rest continue.
// With metrics on, each stage's batch cost lands in its add timing —
// two clock reads per (stage, batch), amortized over accumBatchSize
// records.
func (s *accumSet) flush() {
	if len(s.batch) == 0 {
		if s.met != nil {
			s.met.sync(s)
		}
		return
	}
	for i, acc := range s.stages {
		if acc == nil {
			continue
		}
		var t0 time.Time
		if s.met != nil {
			t0 = time.Now()
		}
		err := s.feedStage(acc, s.batch)
		if s.met != nil {
			s.met.stageAdd[i].Observe(time.Since(t0))
			s.met.stageRecs[i].Add(int64(len(s.batch)))
		}
		if err != nil {
			s.stages[i] = nil
			s.errs = append(s.errs, StageError{Stage: acc.Stage(), Err: err.Error()})
		}
	}
	s.batch = s.batch[:0]
	if s.met != nil {
		s.met.sync(s)
	}
}

// feedStage adds one batch to one accumulator, converting a panic into
// an error.
func (s *accumSet) feedStage(acc Accumulator, batch []cdr.Record) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("panic: %v", p)
		}
	}()
	for _, r := range batch {
		acc.Add(r)
	}
	return nil
}

// merge folds another worker's partials into s. A stage failed in
// either worker is failed in the result (first error wins).
func (s *accumSet) merge(o *accumSet) {
	// Both sides flush: o so its partial state is complete, s so its
	// unsynced tail reaches the metrics before rebase below swallows
	// the delta (the checkpointed dispatcher path does not flush worker
	// sets at end of stream).
	s.flush()
	o.flush()
	s.raw += o.raw
	s.ghosts += o.ghosts
	s.outOfPeriod += o.outOfPeriod
	s.accepted += o.accepted
	for _, e := range o.errs {
		if !s.hasError(e.Stage) {
			s.errs = append(s.errs, e)
		}
	}
	for i := range s.stages {
		switch {
		case s.hasError(engineStageOrder[i]):
			s.stages[i] = nil
		case s.stages[i] == nil || o.stages[i] == nil:
			// Stage disabled by context in both workers (or failed,
			// handled above).
		default:
			var t0 time.Time
			if s.met != nil {
				t0 = time.Now()
			}
			s.stages[i].Merge(o.stages[i])
			if s.met != nil {
				s.met.stageMerge[i].Observe(time.Since(t0))
			}
		}
	}
	// o's records were already counted by its own metrics; realign the
	// watermarks so the folded-in values are not re-emitted.
	if s.met != nil {
		s.met.rebase(s)
	}
}

func (s *accumSet) hasError(stage string) bool {
	for i := range s.errs {
		if s.errs[i].Stage == stage {
			return true
		}
	}
	return false
}

// finalize produces the report, isolating each stage's Finalize like
// its Adds.
func (s *accumSet) finalize() *Report {
	s.flush()
	rep := &Report{
		RawRecords:   int(s.raw),
		CleanRecords: int(s.raw - s.ghosts),
		OutOfPeriod:  s.outOfPeriod,
	}
	rep.StageErrors = append(rep.StageErrors, s.errs...)
	for i, acc := range s.stages {
		if acc == nil {
			continue
		}
		var t0 time.Time
		if s.met != nil {
			t0 = time.Now()
		}
		err := finalizeStage(acc, rep)
		if s.met != nil {
			s.met.stageFinalize[i].Observe(time.Since(t0))
		}
		if err != nil {
			rep.StageErrors = append(rep.StageErrors, StageError{Stage: engineStageOrder[i], Err: err.Error()})
		}
	}
	if s.met != nil {
		rep.Profile = s.met.profile(s)
	}
	return rep
}

func finalizeStage(acc Accumulator, rep *Report) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("panic: %v", p)
		}
	}()
	return acc.Finalize(rep)
}
