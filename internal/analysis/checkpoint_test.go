package analysis

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"cellcars/internal/cdr"
	"cellcars/internal/clean"
	"cellcars/internal/snapshot"
)

// cleanAccepted filters a raw workload the way accumSet.add does:
// ghosts out, out-of-period out — the records stage accumulators
// actually observe.
func cleanAccepted(ctx Context, records []cdr.Record) []cdr.Record {
	out := make([]cdr.Record, 0, len(records))
	for _, r := range records {
		if r.Duration == clean.GhostDuration || ctx.Period.DayIndex(r.Start) < 0 {
			continue
		}
		out = append(out, r)
	}
	return out
}

// TestAccumulatorSnapshotRoundTrip is the per-stage property
// Restore(Snapshot(a)) ≡ a, proven by merge-equivalence: feed half the
// workload, snapshot, restore into a fresh accumulator, feed the other
// half to both, and demand identical finalized reports. It also pins
// snapshot determinism: the restored accumulator re-encodes to the
// exact bytes it was restored from.
func TestAccumulatorSnapshotRoundTrip(t *testing.T) {
	ctx := engineCtx()
	records := cleanAccepted(ctx, engineWorkload(20000))
	half := len(records) / 2
	opts := EngineOptions{
		RunOptions: RunOptions{RareDays: []int{2, 5}, Seed: 1, BusyCells: engineBusyCells()},
		Workers:    1,
	}
	for i, name := range engineStageOrder {
		i, name := i, name
		t.Run(name, func(t *testing.T) {
			a := newAccumSet(ctx, opts, 0).stages[i]
			if a == nil {
				t.Fatalf("stage %s not enabled by test context", name)
			}
			for _, r := range records[:half] {
				a.Add(r)
			}
			var buf bytes.Buffer
			if err := a.SnapshotTo(&buf); err != nil {
				t.Fatalf("snapshot: %v", err)
			}
			b := newStageForRestore(ctx, opts, name)
			if err := b.RestoreFrom(bytes.NewReader(buf.Bytes())); err != nil {
				t.Fatalf("restore: %v", err)
			}
			var again bytes.Buffer
			if err := b.SnapshotTo(&again); err != nil {
				t.Fatalf("re-snapshot: %v", err)
			}
			if !bytes.Equal(buf.Bytes(), again.Bytes()) {
				t.Fatal("restored state does not re-encode to identical bytes")
			}
			for _, r := range records[half:] {
				a.Add(r)
				b.Add(r)
			}
			repA, repB := &Report{}, &Report{}
			if err := a.Finalize(repA); err != nil {
				t.Fatalf("finalize original: %v", err)
			}
			if err := b.Finalize(repB); err != nil {
				t.Fatalf("finalize restored: %v", err)
			}
			if !reflect.DeepEqual(repA, repB) {
				t.Fatalf("reports diverge after restore:\n%+v\nvs\n%+v", repA, repB)
			}
		})
	}
}

// faultReader simulates a crash: it serves n records and then fails.
type faultReader struct {
	r   cdr.Reader
	n   int
	err error
}

func (f *faultReader) Read() (cdr.Record, error) {
	if f.n <= 0 {
		return cdr.Record{}, f.err
	}
	f.n--
	return f.r.Read()
}

var errKilled = errors.New("simulated crash")

// TestStreamingKillAndResume kills a checkpointed streaming run at
// awkward offsets (between checkpoints), resumes from the snapshot
// file, and demands the final report be bit-identical with an
// uninterrupted run. Run under -race this also proves the checkpoint
// write path is data-race free.
func TestStreamingKillAndResume(t *testing.T) {
	records := engineWorkload(20000)
	ctx := engineCtx()
	opts := RunOptions{BusyCells: engineBusyCells()}

	base := NewStreamingWithOptions(ctx, opts)
	if err := base.AddAll(cdr.NewSliceReader(records)); err != nil {
		t.Fatal(err)
	}
	want := base.Finalize()

	for _, kill := range []int{1, 1500, 7777, 19999} {
		path := filepath.Join(t.TempDir(), "stream.snap")
		s := NewStreamingWithOptions(ctx, opts)
		cfg := CheckpointConfig{Path: path, Every: 1500}
		err := s.AddAllCheckpointed(
			&faultReader{r: cdr.NewSliceReader(records), n: kill, err: errKilled}, cfg)
		if !errors.Is(err, errKilled) {
			t.Fatalf("kill=%d: want simulated crash, got %v", kill, err)
		}

		// New process: restore from the last checkpoint and replay the
		// stream from the start; the watermark skip realigns it.
		cfg.Resume = true
		s2 := NewStreamingWithOptions(ctx, opts)
		if err := s2.AddAllCheckpointed(cdr.NewSliceReader(records), cfg); err != nil {
			t.Fatalf("kill=%d resume: %v", kill, err)
		}
		if got := s2.Finalize(); !reflect.DeepEqual(want, got) {
			t.Fatalf("kill=%d: resumed report differs from uninterrupted run", kill)
		}
		if s2.Watermark() != int64(len(records)) {
			t.Fatalf("kill=%d: watermark %d, want %d", kill, s2.Watermark(), len(records))
		}
	}
}

// TestStreamingTriggerCheckpoint covers the SIGTERM path: a fired
// trigger makes the run write a final checkpoint and stop with
// ErrCheckpointStop, and that checkpoint resumes cleanly.
func TestStreamingTriggerCheckpoint(t *testing.T) {
	records := engineWorkload(5000)
	ctx := engineCtx()
	opts := RunOptions{BusyCells: engineBusyCells()}
	path := filepath.Join(t.TempDir(), "stream.snap")

	trig := make(chan struct{})
	close(trig)
	s := NewStreamingWithOptions(ctx, opts)
	err := s.AddAllCheckpointed(cdr.NewSliceReader(records), CheckpointConfig{Path: path, Trigger: trig})
	if !errors.Is(err, ErrCheckpointStop) {
		t.Fatalf("want ErrCheckpointStop, got %v", err)
	}

	s2 := NewStreamingWithOptions(ctx, opts)
	err = s2.AddAllCheckpointed(cdr.NewSliceReader(records), CheckpointConfig{Path: path, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	base := NewStreamingWithOptions(ctx, opts)
	if err := base.AddAll(cdr.NewSliceReader(records)); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.Finalize(), s2.Finalize()) {
		t.Fatal("trigger-checkpointed run differs from uninterrupted run")
	}
}

// TestEngineKillAndResume is the multi-worker acceptance criterion:
// a 4-worker checkpointed engine run killed mid-stream (twice) and
// resumed produces a report bit-identical with an uninterrupted run.
// The checkpoint barrier and snapshot write run under -race in CI.
func TestEngineKillAndResume(t *testing.T) {
	records := engineWorkload(40000)
	ctx := engineCtx()
	eopts := EngineOptions{RunOptions: RunOptions{BusyCells: engineBusyCells()}, Workers: 4}

	want, err := NewEngine(ctx, eopts).RunReader(cdr.NewSliceReader(records))
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "engine.snap")
	cfg := CheckpointConfig{Path: path, Every: 3000}
	for i, kill := range []int{9500, 26111} {
		e := NewEngine(ctx, eopts)
		cfg.Resume = i > 0
		_, err := e.RunReaderCheckpointed(
			&faultReader{r: cdr.NewSliceReader(records), n: kill, err: errKilled}, cfg)
		if !errors.Is(err, errKilled) {
			t.Fatalf("kill=%d: want simulated crash, got %v", kill, err)
		}
	}

	cfg.Resume = true
	got, err := NewEngine(ctx, eopts).RunReaderCheckpointed(cdr.NewSliceReader(records), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("resumed engine report differs from uninterrupted run")
	}

	// Worker-count mismatch is refused, not silently re-sharded.
	_, err = NewEngine(ctx, EngineOptions{RunOptions: eopts.RunOptions, Workers: 2}).
		RunReaderCheckpointed(cdr.NewSliceReader(records), CheckpointConfig{Path: path, Resume: true})
	if err == nil {
		t.Fatal("resume with different worker count accepted")
	}
}

// TestPartialMergeEquivalence is the map-reduce acceptance criterion:
// for N ∈ {1, 3, 8}, per-shard partials written by independent
// streaming runs and merged equal the single-process report.
func TestPartialMergeEquivalence(t *testing.T) {
	records := engineWorkload(40000)
	ctx := engineCtx()
	opts := RunOptions{BusyCells: engineBusyCells()}

	want, err := NewEngine(ctx, EngineOptions{RunOptions: opts, Workers: 1}).Run(records)
	if err != nil {
		t.Fatal(err)
	}

	for _, n := range []int{1, 3, 8} {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			shards := cdr.ShardSlices(records, n)
			var partials []*Partial
			for _, shard := range shards {
				s := NewStreamingWithOptions(ctx, opts)
				if err := s.AddAll(cdr.NewSliceReader(shard)); err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := s.SnapshotTo(&buf); err != nil {
					t.Fatal(err)
				}
				p, err := ReadPartial(bytes.NewReader(buf.Bytes()))
				if err != nil {
					t.Fatal(err)
				}
				partials = append(partials, p)
			}
			root := partials[0]
			for _, p := range partials[1:] {
				if err := root.Merge(p, false); err != nil {
					t.Fatal(err)
				}
			}
			if got := root.Finalize(); !reflect.DeepEqual(want, got) {
				t.Fatal("merged partial report differs from single-process run")
			}
			if root.Records() != int64(len(records)) {
				t.Fatalf("merged partial absorbed %d records, want %d", root.Records(), len(records))
			}
		})
	}
}

// TestPartialMergeGuards covers the merge refusals: overlapping car
// shards need allow-overlap, and partials from a different study
// configuration are rejected outright.
func TestPartialMergeGuards(t *testing.T) {
	records := engineWorkload(5000)
	ctx := engineCtx()
	opts := RunOptions{BusyCells: engineBusyCells()}

	partial := func(recs []cdr.Record, o RunOptions) *Partial {
		t.Helper()
		s := NewStreamingWithOptions(ctx, o)
		if err := s.AddAll(cdr.NewSliceReader(recs)); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := s.SnapshotTo(&buf); err != nil {
			t.Fatal(err)
		}
		p, err := ReadPartial(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	// The same records twice share every car.
	a, b := partial(records, opts), partial(records, opts)
	if err := a.Merge(b, false); err == nil {
		t.Fatal("overlapping partials merged without allow-overlap")
	}
	if err := a.Merge(b, true); err != nil {
		t.Fatalf("allow-overlap merge refused: %v", err)
	}

	// A different clustering seed is a different study configuration.
	seeded := opts
	seeded.Seed = 99
	c := partial(records, seeded)
	if err := partial(records, opts).Merge(c, true); err == nil {
		t.Fatal("partials with different seeds merged")
	}
}

// TestPartialFileRoundTrip pins the file workflow carmerge uses:
// write, read, merge, re-write merged, read again, finalize.
func TestPartialFileRoundTrip(t *testing.T) {
	records := engineWorkload(8000)
	ctx := engineCtx()
	opts := RunOptions{BusyCells: engineBusyCells()}
	dir := t.TempDir()

	shards := cdr.ShardSlices(records, 2)
	paths := make([]string, 2)
	for i, shard := range shards {
		s := NewStreamingWithOptions(ctx, opts)
		if err := s.AddAll(cdr.NewSliceReader(shard)); err != nil {
			t.Fatal(err)
		}
		paths[i] = filepath.Join(dir, fmt.Sprintf("shard%d.snap", i))
		if err := s.WriteSnapshot(paths[i]); err != nil {
			t.Fatal(err)
		}
	}
	a, err := ReadPartialFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReadPartialFile(paths[1])
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(b, false); err != nil {
		t.Fatal(err)
	}
	merged := filepath.Join(dir, "merged.snap")
	if err := a.WriteSnapshot(merged); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPartialFile(merged)
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewEngine(ctx, EngineOptions{RunOptions: opts, Workers: 1}).Run(records)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Finalize(); !reflect.DeepEqual(want, got) {
		t.Fatal("file round-tripped merged partial differs from single-process run")
	}
}

// TestSnapshotDeterministicBytes: the same state serializes to the
// same bytes, including across a restore cycle.
func TestSnapshotDeterministicBytes(t *testing.T) {
	records := engineWorkload(5000)
	ctx := engineCtx()
	opts := RunOptions{BusyCells: engineBusyCells()}
	s := NewStreamingWithOptions(ctx, opts)
	if err := s.AddAll(cdr.NewSliceReader(records)); err != nil {
		t.Fatal(err)
	}
	var one, two bytes.Buffer
	if err := s.SnapshotTo(&one); err != nil {
		t.Fatal(err)
	}
	if err := s.SnapshotTo(&two); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one.Bytes(), two.Bytes()) {
		t.Fatal("same state encoded differently twice")
	}
	p, err := ReadPartial(bytes.NewReader(one.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var three bytes.Buffer
	if err := p.SnapshotTo(&three); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one.Bytes(), three.Bytes()) {
		t.Fatal("restored state re-encoded differently")
	}
}

// TestAnalysisSnapshotTruncation: every strict prefix of a valid
// analysis snapshot is a detected ErrBadSnapshot, never a partial
// success or a panic.
func TestAnalysisSnapshotTruncation(t *testing.T) {
	records := engineWorkload(60)
	ctx := engineCtx()
	s := NewStreamingWithOptions(ctx, RunOptions{BusyCells: engineBusyCells()})
	if err := s.AddAll(cdr.NewSliceReader(records)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.SnapshotTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for cut := 0; cut < len(data); cut++ {
		if _, err := ReadPartial(bytes.NewReader(data[:cut])); !errors.Is(err, snapshot.ErrBadSnapshot) {
			t.Fatalf("truncation at %d/%d: got %v", cut, len(data), err)
		}
	}
}
