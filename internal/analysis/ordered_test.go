package analysis

import (
	"bytes"
	"math/rand/v2"
	"reflect"
	"sort"
	"testing"
	"time"

	"cellcars/internal/cdr"
	"cellcars/internal/clean"
	"cellcars/internal/radio"
)

// orderedWorkload builds a time-sorted stream whose per-car records
// never overlap — the MergeOrdered exactness precondition (see
// ordered.go). Each car is a chain of records separated by gaps drawn
// to straddle every sessionization threshold, including the exact
// AggregateGap and MobilityGap boundaries; ghosts and out-of-period
// records ride along to exercise the ingest filters.
func orderedWorkload(n int) []cdr.Record {
	rng := rand.New(rand.NewPCG(2024, 7))
	records := make([]cdr.Record, 0, n)
	next := make(map[cdr.CarID]time.Time)
	for len(records) < n {
		car := cdr.CarID(rng.Uint64N(300))
		start, ok := next[car]
		if !ok {
			start = t0.Add(time.Duration(rng.Uint64N(24*3600)) * time.Second)
		}
		dur := time.Duration(5+rng.Uint64N(900)) * time.Second
		records = append(records, cdr.Record{
			Car:      car,
			Cell:     radio.MakeCellKey(radio.BSID(rng.Uint64N(60)), radio.SectorID(rng.Uint64N(3)), radio.C1+radio.CarrierID(rng.Uint64N(uint64(radio.NumCarriers)))),
			Start:    start,
			Duration: dur,
		})
		var gap time.Duration
		switch rng.Uint64N(6) {
		case 0: // within the aggregate gap: joins both session kinds
			gap = time.Duration(rng.Uint64N(30)) * time.Second
		case 1: // exactly AggregateGap: still joins (close needs > gap)
			gap = clean.AggregateGap
		case 2: // between the gaps: splits usage, joins mobility
			gap = time.Duration(35+rng.Uint64N(500)) * time.Second
		case 3: // exactly MobilityGap: still joins mobility
			gap = clean.MobilityGap
		case 4: // beyond both gaps: splits everything
			gap = clean.MobilityGap + time.Duration(1+rng.Uint64N(3600))*time.Second
		case 5: // a long silence, pushing some cars past the period
			gap = time.Duration(rng.Uint64N(3*24*3600)) * time.Second
		}
		next[car] = start.Add(dur + gap)
	}
	// Ghosts and pre-period records are filtered before any stage sees
	// them, so they need not respect the per-car chains.
	for i := 0; i < n/100; i++ {
		records = append(records, cdr.Record{
			Car:      cdr.CarID(rng.Uint64N(300)),
			Cell:     radio.MakeCellKey(radio.BSID(rng.Uint64N(60)), 0, radio.C1),
			Start:    t0.Add(time.Duration(rng.Uint64N(14*24*3600)) * time.Second),
			Duration: clean.GhostDuration,
		})
		records = append(records, cdr.Record{
			Car:      cdr.CarID(rng.Uint64N(300)),
			Cell:     radio.MakeCellKey(radio.BSID(rng.Uint64N(60)), 0, radio.C2),
			Start:    t0.Add(-time.Duration(1+rng.Uint64N(48*3600)) * time.Second),
			Duration: 60 * time.Second,
		})
	}
	sort.SliceStable(records, func(i, j int) bool {
		return records[i].Start.Before(records[j].Start)
	})
	return records
}

// TestMergeOrderedEquivalence is the tentpole property behind the
// query service's rolling windows: a left-fold of MergeOrdered over
// consecutive time slices of a stream — each slice snapshotted and
// restored, as the window composer does — finalizes bit-identically to
// one uninterrupted pass, for any cut placement, including sessions
// spanning every cut.
func TestMergeOrderedEquivalence(t *testing.T) {
	records := orderedWorkload(20000)
	ctx := engineCtx()
	opts := RunOptions{RareDays: []int{2, 5}, Seed: 1, BusyCells: engineBusyCells()}

	base := NewStreamingWithOptions(ctx, opts)
	if err := base.AddAll(cdr.NewSliceReader(records)); err != nil {
		t.Fatal(err)
	}
	want := base.Finalize()
	if want.Handovers.Sessions == 0 || want.UsageSessions == 0 {
		t.Fatal("degenerate workload: no sessions")
	}

	tracked := opts
	tracked.TrackHeads = true

	for _, cuts := range [][]int{
		{len(records) / 2},
		{1, 2, 3},
		{0, 5000, 10000, 15000}, // leading empty slice
		{4000, 4001, 12000, len(records) - 1},
	} {
		bounds := append(append([]int{0}, cuts...), len(records))
		var fold *Streaming
		for b := 0; b+1 < len(bounds); b++ {
			s := NewStreamingWithOptions(ctx, tracked)
			if err := s.AddAll(cdr.NewSliceReader(records[bounds[b]:bounds[b+1]])); err != nil {
				t.Fatal(err)
			}
			// Round-trip each slice through its snapshot so the fold
			// exercises the persisted head/tail state, not just the
			// live one.
			var buf bytes.Buffer
			if err := s.SnapshotTo(&buf); err != nil {
				t.Fatalf("cuts %v: snapshot slice %d: %v", cuts, b, err)
			}
			restored, err := RestoreStreaming(ctx, tracked, bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("cuts %v: restore slice %d: %v", cuts, b, err)
			}
			if fold == nil {
				fold = restored
				continue
			}
			if err := fold.MergeOrdered(restored); err != nil {
				t.Fatalf("cuts %v: merge slice %d: %v", cuts, b, err)
			}
		}
		got := fold.Finalize()
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("cuts %v: folded report diverges from single pass\nwant %+v\ngot  %+v", cuts, want, got)
		}
		if again := fold.Finalize(); !reflect.DeepEqual(got, again) {
			t.Fatalf("cuts %v: Finalize not repeatable after ordered fold", cuts)
		}
	}
}

// TestMergeOrderedStitchesBoundarySession pins the mechanism on a
// hand-built case: one car whose four records form a single mobility
// session, cut down the middle. A car-disjoint Merge would count two
// sessions; MergeOrdered must rebuild one.
func TestMergeOrderedStitchesBoundarySession(t *testing.T) {
	ctx := engineCtx()
	cell := func(bs radio.BSID) radio.CellKey { return radio.MakeCellKey(bs, 0, radio.C1) }
	rec := func(offset time.Duration, bs radio.BSID) cdr.Record {
		return cdr.Record{Car: 1, Cell: cell(bs), Start: t0.Add(offset), Duration: 60 * time.Second}
	}
	records := []cdr.Record{
		rec(0, 1), rec(70*time.Second, 2),
		rec(140*time.Second, 3), rec(210*time.Second, 4),
	}

	tracked := RunOptions{TrackHeads: true}
	a := NewStreamingWithOptions(ctx, tracked)
	b := NewStreamingWithOptions(ctx, tracked)
	for _, r := range records[:2] {
		a.Add(r)
	}
	for _, r := range records[2:] {
		b.Add(r)
	}
	if err := a.MergeOrdered(b); err != nil {
		t.Fatal(err)
	}
	got := a.Finalize()
	if got.Handovers.Sessions != 1 {
		t.Fatalf("stitched fold counts %d mobility sessions, want 1", got.Handovers.Sessions)
	}
	// All three handovers (1→2, 2→3, 3→4) must survive the stitch,
	// including the 2→3 transition that crosses the cut itself.
	total := int64(0)
	for _, c := range got.Handovers.ByKind {
		total += c
	}
	if total != 3 {
		t.Fatalf("stitched fold counts %d handovers, want 3", total)
	}
}

// TestMergeOrderedRequiresTrackHeads: folding a slice built without
// head tracking must fail loudly instead of double-counting.
func TestMergeOrderedRequiresTrackHeads(t *testing.T) {
	ctx := engineCtx()
	a := NewStreamingWithOptions(ctx, RunOptions{TrackHeads: true})
	b := NewStreamingWithOptions(ctx, RunOptions{})
	if err := a.MergeOrdered(b); err == nil {
		t.Fatal("MergeOrdered accepted a slice built without TrackHeads")
	}
}
