package analysis

import (
	"strconv"

	"cellcars/internal/obs"
)

// This file wires the engine into the observability layer
// (internal/obs). One setMetrics per worker accumulator set
// pre-resolves every series it touches, so the hot path costs one
// pointer check when metrics are off and a few atomic adds per batch
// when they are on. Counter series are shared across workers (same
// name and labels resolve to the same metric), which is what makes
// Report.Profile an aggregate over the whole run; only the
// shard-balance counter is labeled per worker.
//
// Engine metric names (see DESIGN.md for the full table):
//
//	cellcars_engine_records_total{outcome}   accepted | ghost | out_of_period
//	cellcars_engine_shard_records_total{worker}
//	cellcars_stage_records_total{stage}
//	cellcars_stage_add_seconds{stage}
//	cellcars_stage_merge_seconds{stage}
//	cellcars_stage_finalize_seconds{stage}
type setMetrics struct {
	stageAdd      []*obs.Timing
	stageMerge    []*obs.Timing
	stageFinalize []*obs.Timing
	stageRecs     []*obs.Counter

	accepted    *obs.Counter
	ghosts      *obs.Counter
	outOfPeriod *obs.Counter
	shard       *obs.Counter

	// last* are the set-local values already flushed into the shared
	// counters, so sync adds deltas and rebase (after a merge folds
	// another set's already-counted records in) realigns without
	// double counting.
	lastRaw, lastGhosts, lastOOP, lastAccepted int64
}

// newSetMetrics resolves the engine series for one worker. A nil
// registry returns nil, and every use site checks for that.
func newSetMetrics(reg *obs.Registry, worker int) *setMetrics {
	if reg == nil {
		return nil
	}
	m := &setMetrics{}
	for _, name := range engineStageOrder {
		l := obs.Label{Key: "stage", Value: name}
		m.stageAdd = append(m.stageAdd, reg.Timing("cellcars_stage_add_seconds", l))
		m.stageMerge = append(m.stageMerge, reg.Timing("cellcars_stage_merge_seconds", l))
		m.stageFinalize = append(m.stageFinalize, reg.Timing("cellcars_stage_finalize_seconds", l))
		m.stageRecs = append(m.stageRecs, reg.Counter("cellcars_stage_records_total", l))
	}
	m.accepted = reg.Counter("cellcars_engine_records_total", obs.Label{Key: "outcome", Value: "accepted"})
	m.ghosts = reg.Counter("cellcars_engine_records_total", obs.Label{Key: "outcome", Value: "ghost"})
	m.outOfPeriod = reg.Counter("cellcars_engine_records_total", obs.Label{Key: "outcome", Value: "out_of_period"})
	m.shard = reg.Counter("cellcars_engine_shard_records_total",
		obs.Label{Key: "worker", Value: strconv.Itoa(worker)})
	return m
}

// sync flushes the set's ingest-outcome deltas into the shared
// counters. Called per batch flush and every 1024 raw records, so the
// live /metrics view lags the pipeline by at most one batch.
func (m *setMetrics) sync(s *accumSet) {
	m.accepted.Add(s.accepted - m.lastAccepted)
	m.ghosts.Add(s.ghosts - m.lastGhosts)
	m.outOfPeriod.Add(s.outOfPeriod - m.lastOOP)
	m.shard.Add(s.raw - m.lastRaw)
	m.lastRaw, m.lastGhosts = s.raw, s.ghosts
	m.lastOOP, m.lastAccepted = s.outOfPeriod, s.accepted
}

// rebase realigns the flushed-value watermarks with the set's current
// counters without emitting deltas — called after merge folds another
// set (whose records its own metrics already counted) into this one.
func (m *setMetrics) rebase(s *accumSet) {
	m.lastRaw, m.lastGhosts = s.raw, s.ghosts
	m.lastOOP, m.lastAccepted = s.outOfPeriod, s.accepted
}

// creditRestored folds a snapshot-restored set's counts into the
// shared series, so a resumed run's outcome counters, progress
// percentage and final profile cover the whole logical run rather than
// just the resumed process's share. Stage record counters are credited
// only for stages whose state frame was actually restored (a failed
// stage keeps no state and does no further work). Timings are not
// reconstructed — wall time in the profile is always time spent in
// this process. sync leaves the watermarks at the restored values, so
// later flushes emit only new work.
func (m *setMetrics) creditRestored(s *accumSet, restoredStages map[string]bool) {
	if m == nil {
		return
	}
	for i, name := range engineStageOrder {
		if restoredStages[name] {
			m.stageRecs[i].Add(s.accepted)
		}
	}
	m.sync(s)
}

// profile assembles the per-stage cost table from the shared series.
// Because counter and timing series aggregate across workers, this is
// the whole run's profile regardless of which set builds it.
func (m *setMetrics) profile(s *accumSet) []StageProfile {
	var out []StageProfile
	for i, name := range engineStageOrder {
		recs := m.stageRecs[i].Value()
		batches := m.stageAdd[i].Count()
		if recs == 0 && batches == 0 && s.stages[i] == nil {
			continue
		}
		out = append(out, StageProfile{
			Stage:           name,
			Records:         recs,
			Batches:         batches,
			AddSeconds:      m.stageAdd[i].Sum(),
			MergeSeconds:    m.stageMerge[i].Sum(),
			FinalizeSeconds: m.stageFinalize[i].Sum(),
		})
	}
	return out
}
