package analysis

import (
	"strings"
	"testing"

	"cellcars/internal/cdr"
	"cellcars/internal/simtime"
	"cellcars/internal/synth"
)

func presenceWith(fracs []float64) DailyPresence {
	return DailyPresence{TotalCars: 100, CarsFrac: fracs}
}

func TestDetectCoverageGapsFlagsDip(t *testing.T) {
	// 28 days around 0.8 with a 3-day collapse — the shape of the
	// paper's Figure 2 data-loss window.
	fracs := make([]float64, 28)
	for d := range fracs {
		fracs[d] = 0.8
		if d%7 >= 5 { // weekend variation must NOT be flagged
			fracs[d] = 0.7
		}
	}
	fracs[15], fracs[16], fracs[17] = 0.2, 0.15, 0.25
	period := simtime.NewPeriod(t0, 28)

	gaps := DetectCoverageGaps(presenceWith(fracs), period, 0)
	if len(gaps) != 3 {
		t.Fatalf("gaps = %+v, want the 3 dip days", gaps)
	}
	for i, wantDay := range []int{15, 16, 17} {
		g := gaps[i]
		if g.Day != wantDay {
			t.Fatalf("gap %d flagged day %d, want %d", i, g.Day, wantDay)
		}
		if !g.Date.Equal(period.DayStart(wantDay)) {
			t.Fatalf("gap %d date %v", i, g.Date)
		}
		if g.Baseline < 0.7 || g.Baseline > 0.8 {
			t.Fatalf("gap %d baseline %v", i, g.Baseline)
		}
	}
}

func TestDetectCoverageGapsUniformSeries(t *testing.T) {
	fracs := make([]float64, 28)
	for d := range fracs {
		fracs[d] = 0.75
	}
	if gaps := DetectCoverageGaps(presenceWith(fracs), simtime.NewPeriod(t0, 28), 0); gaps != nil {
		t.Fatalf("uniform coverage flagged: %+v", gaps)
	}
	if gaps := DetectCoverageGaps(presenceWith(nil), simtime.NewPeriod(t0, 28), 0); gaps != nil {
		t.Fatalf("empty series flagged: %+v", gaps)
	}
}

// TestSynthLossWindowDetected closes the loop with the generator: a
// synthetic data set carrying the paper's 3-day data-loss window must
// have its loss days rediscovered from presence alone.
func TestSynthLossWindowDetected(t *testing.T) {
	period := simtime.NewPeriod(t0, 14)
	w := synth.NewWorld(synth.Config{
		Seed:     3,
		NumCars:  40,
		Period:   period,
		LossFrac: 1.0, // total loss so presence unambiguously craters
	})
	records, _, err := w.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	s := NewStreaming(period)
	if err := s.AddAll(cdr.NewSliceReader(records)); err != nil {
		t.Fatal(err)
	}
	rep := s.Finalize()

	gaps := DetectCoverageGaps(rep.Presence, period, 0)
	// NewWorld places the window at days/2 + days/6 for 3 days.
	lossStart := period.Days()/2 + period.Days()/6
	if len(gaps) != 3 {
		t.Fatalf("gaps = %+v, want the 3-day window at %d", gaps, lossStart)
	}
	for i, g := range gaps {
		if g.Day != lossStart+i {
			t.Fatalf("flagged day %d, want %d", g.Day, lossStart+i)
		}
	}
}

func TestNewDataQuality(t *testing.T) {
	var stats cdr.IngestStats
	stats.Read = 1000
	stats.Quarantined[cdr.ClassBadField] = 7
	stats.Quarantined[cdr.ClassTruncated] = 1
	stats.Retries = 3

	fracs := make([]float64, 14)
	for d := range fracs {
		fracs[d] = 0.8
	}
	fracs[6] = 0.1
	q := NewDataQuality(stats, 42, presenceWith(fracs), simtime.NewPeriod(t0, 14))

	if q.RecordsRead != 1000 || q.GhostsDropped != 42 || q.QuarantinedTotal != 8 || q.Retries != 3 {
		t.Fatalf("quality = %+v", q)
	}
	if q.Quarantined["bad-field"] != 7 || q.Quarantined["truncated"] != 1 {
		t.Fatalf("breakdown = %+v", q.Quarantined)
	}
	if len(q.Gaps) != 1 || q.Gaps[0].Day != 6 {
		t.Fatalf("gaps = %+v", q.Gaps)
	}
	sum := q.Summary()
	for _, want := range []string{"read 1000", "ghosts 42", "quarantined 8", "gap days 1"} {
		if !strings.Contains(sum, want) {
			t.Fatalf("summary %q missing %q", sum, want)
		}
	}
}
