package analysis

import (
	"math/rand/v2"
	"sort"
	"time"

	"cellcars/internal/cdr"
	"cellcars/internal/radio"
	"cellcars/internal/simtime"
	"cellcars/internal/stats"
)

// CarSpan is one car's connection interval within a cell-day timeline.
type CarSpan struct {
	Car   cdr.CarID
	Start time.Time
	End   time.Time
}

// CellDayResult is Figure 8: one cell over 24 hours — every car's
// connection spans plus the 15-minute concurrency profile.
type CellDayResult struct {
	Cell radio.CellKey
	Day  int
	// Spans are the connection intervals, clamped to the day, ordered
	// by start.
	Spans []CarSpan
	// UniqueCars is the number of distinct cars (paper example: 377).
	UniqueCars int
	// Concurrency[b] is the number of distinct cars whose connections
	// straddle 15-minute bin b of the day (paper example peak: 16).
	Concurrency simtime.DayVector
	// PeakBin and PeakCars locate the busiest 15-minute bin.
	PeakBin  int
	PeakCars int
}

// CellDay computes Figure 8 for the given cell and study day.
func CellDay(records []cdr.Record, ctx Context, cell radio.CellKey, day int) CellDayResult {
	res := CellDayResult{Cell: cell, Day: day}
	dayStart := ctx.Period.DayStart(day)
	dayEnd := dayStart.Add(24 * time.Hour)
	cars := make(map[cdr.CarID]struct{})
	perBin := make([]map[cdr.CarID]struct{}, simtime.BinsPerDay)

	forEachRecord(records, func(r cdr.Record) {
		if r.Cell != cell {
			return
		}
		s, e := r.Start, r.End()
		if !e.After(dayStart) || !s.Before(dayEnd) {
			return
		}
		if s.Before(dayStart) {
			s = dayStart
		}
		if e.After(dayEnd) {
			e = dayEnd
		}
		res.Spans = append(res.Spans, CarSpan{Car: r.Car, Start: s, End: e})
		cars[r.Car] = struct{}{}
		first, last := ctx.Period.BinRange(s, e.Sub(s))
		for b := first; b < last; b++ {
			bod := b - day*simtime.BinsPerDay
			if bod < 0 || bod >= simtime.BinsPerDay {
				continue
			}
			if perBin[bod] == nil {
				perBin[bod] = make(map[cdr.CarID]struct{})
			}
			perBin[bod][r.Car] = struct{}{}
		}
	})

	res.UniqueCars = len(cars)
	for b := range perBin {
		n := len(perBin[b])
		res.Concurrency[b] = float64(n)
		if n > res.PeakCars {
			res.PeakCars, res.PeakBin = n, b
		}
	}
	sort.Slice(res.Spans, func(i, j int) bool {
		if !res.Spans[i].Start.Equal(res.Spans[j].Start) {
			return res.Spans[i].Start.Before(res.Spans[j].Start)
		}
		return res.Spans[i].Car < res.Spans[j].Car
	})
	return res
}

// BusiestCellDay scans the stream for the (cell, day) pair with the
// most distinct cars — a good Figure 8 exhibit. Returns the zero cell
// on an empty stream.
func BusiestCellDay(records []cdr.Record, ctx Context) (radio.CellKey, int) {
	type key struct {
		cell radio.CellKey
		day  int
	}
	counts := make(map[key]map[cdr.CarID]struct{})
	forEachRecord(records, func(r cdr.Record) {
		day := ctx.Period.DayIndex(r.Start)
		if day < 0 {
			return
		}
		k := key{r.Cell, day}
		set, ok := counts[k]
		if !ok {
			set = make(map[cdr.CarID]struct{})
			counts[k] = set
		}
		set[r.Car] = struct{}{}
	})
	var bestK key
	best := 0
	for k, set := range counts {
		if len(set) > best || (len(set) == best && (k.cell < bestK.cell || (k.cell == bestK.cell && k.day < bestK.day))) {
			best, bestK = len(set), k
		}
	}
	return bestK.cell, bestK.day
}

// CellDurations is Figure 9: the distribution of per-cell connection
// durations, reported on the truncated-at-600 s data (the figure's
// x-axis) alongside the full-duration mean the paper quotes.
type CellDurations struct {
	// Truncated is the CDF of durations capped at 600 s.
	Truncated *stats.CDF
	// Median and P73 are quantiles of the truncated distribution
	// (paper: 105 s and 600 s).
	Median, P73 float64
	// FullMean and TruncMean are the means of the raw and truncated
	// durations (paper: 625 s and 238 s).
	FullMean, TruncMean float64
}

// CellDurationsOf computes Figure 9 from ghost-free records. The means
// are always exact; the CDF and quantiles are exact up to the duration
// sample capacity (32768 records) and deterministically sketched
// beyond it (see CellDurations.Truncated).
func CellDurationsOf(records []cdr.Record) CellDurations {
	return runAccum(newDurationsAcc(), records).Durations
}

// CellWeekResult is Figure 10: one cell over one week — concurrent
// cars per 15-minute bin (impulses) against the cell's average PRB
// utilization (line).
type CellWeekResult struct {
	Cell radio.CellKey
	// Week is the index of the Monday-aligned week within the period.
	Week int
	// Concurrency[b] is distinct cars straddling week bin b.
	Concurrency simtime.WeekVector
	// Utilization[b] is the cell's UPRB in week bin b.
	Utilization simtime.WeekVector
}

// CellWeek computes Figure 10 for the given cell and week (0-based
// Monday-aligned week within the period). It panics without a load
// source or when the week is out of range.
func CellWeek(records []cdr.Record, ctx Context, cell radio.CellKey, week int) CellWeekResult {
	if ctx.Load == nil {
		panic("analysis: CellWeek requires a load source")
	}
	if week < 0 || (week+1)*7 > ctx.Period.Days() {
		panic("analysis: week outside period")
	}
	res := CellWeekResult{Cell: cell, Week: week}
	firstBin := week * 7 * simtime.BinsPerDay
	perBin := make([]map[cdr.CarID]struct{}, simtime.BinsPerWeek)

	forEachRecord(records, func(r cdr.Record) {
		if r.Cell != cell {
			return
		}
		first, last := ctx.Period.BinRange(r.Start, r.Duration)
		for b := first; b < last; b++ {
			wb := b - firstBin
			if wb < 0 || wb >= simtime.BinsPerWeek {
				continue
			}
			if perBin[wb] == nil {
				perBin[wb] = make(map[cdr.CarID]struct{})
			}
			perBin[wb][r.Car] = struct{}{}
		}
	})
	for b := range perBin {
		res.Concurrency[b] = float64(len(perBin[b]))
		res.Utilization[b] = ctx.Load.Utilization(cell, firstBin+b)
	}
	return res
}

// BusyClusters is Figure 11: k-means over the busy-cell concurrency
// vectors.
type BusyClusters struct {
	// Cells are the clustered cells, aligned with Assignments.
	Cells []radio.CellKey
	// Vectors[i] is cell i's 96-bin mean-concurrency-by-time-of-day.
	Vectors [][]float64
	// Assignments, Sizes and Centroids come from k-means (k=2), with
	// clusters reordered so cluster 0 is the smaller-peak one.
	Assignments []int
	Sizes       []int
	Centroids   [][]float64
}

// PeakRatio returns the ratio of the larger cluster-centroid peak to
// the smaller (paper: cluster 2 runs ~5× cluster 1).
func (b BusyClusters) PeakRatio() float64 {
	if len(b.Centroids) != 2 {
		return 0
	}
	p0, p1 := maxOf(b.Centroids[0]), maxOf(b.Centroids[1])
	if p0 == 0 {
		return 0
	}
	return p1 / p0
}

func maxOf(xs []float64) float64 {
	var m float64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// ClusterBusyCells computes Figure 11: for every cell in busyCells it
// builds the 96-bin vector of mean concurrent cars per time-of-day bin
// (averaged over study days), then runs k-means with k=2. The rng
// seeds k-means++. Cells with no traffic still participate (as zero
// vectors), as they would in the paper's pipeline. Returns an empty
// result when fewer than two cells are given.
func ClusterBusyCells(records []cdr.Record, ctx Context, busyCells []radio.CellKey, rng *rand.Rand) BusyClusters {
	if len(busyCells) < 2 {
		return BusyClusters{}
	}
	a := newClustersAcc(ctx, busyCells, 1)
	for _, r := range records {
		a.Add(r)
	}
	return a.finish(rng)
}
