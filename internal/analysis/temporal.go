package analysis

import (
	"cellcars/internal/cdr"
	"cellcars/internal/clean"
	"cellcars/internal/simtime"
)

// ReferenceMatrices returns the three Figure 4 reference encodings as
// 24×7 matrices with 1 in significant hours and 0 elsewhere (in local
// time): weekday commute peaks, network busy hours, and weekend time.
func ReferenceMatrices() (commute, networkPeak, weekend simtime.WeekMatrix) {
	for day := 0; day < 7; day++ {
		for hour := 0; hour < 24; hour++ {
			if day < 5 {
				if (hour >= 7 && hour < 9) || (hour >= 16 && hour < 19) {
					commute.Set(hour, day, 1)
				}
			}
			// Network load peaks from afternoon into the evening every
			// day (the paper's example car "connects during network busy
			// hours (14-24h)").
			if hour >= 14 {
				networkPeak.Set(hour, day, 1)
			}
			if day >= 5 {
				weekend.Set(hour, day, 1)
			}
		}
	}
	return commute, networkPeak, weekend
}

// UsageMatrix builds a car's Figure 5 matrix: for each hour of the
// local week, the number of that car's aggregate sessions (gap ≤ 30 s)
// touching the hour. Records must belong to a single car and be
// time-ordered; ghosts should be removed first.
func UsageMatrix(records []cdr.Record, ctx Context) simtime.WeekMatrix {
	var m simtime.WeekMatrix
	sessions, err := clean.Sessions(cdr.NewSliceReader(records), clean.AggregateGap)
	if err != nil {
		// The slice reader cannot fail; keep the matrix empty on the
		// impossible path rather than panicking inside an analysis.
		return m
	}
	for i := range sessions {
		markSessionHours(&m, &sessions[i], ctx.TZOffsetSeconds)
	}
	return m
}

// RecordsOfCar extracts one car's records from a stream, preserving
// order.
func RecordsOfCar(records []cdr.Record, car cdr.CarID) []cdr.Record {
	var out []cdr.Record
	for _, r := range records {
		if r.Car == car {
			out = append(out, r)
		}
	}
	return out
}
