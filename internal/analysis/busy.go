package analysis

import (
	"fmt"

	"cellcars/internal/cdr"
)

// BusyTime is Figure 7: the distribution over cars of the fraction of
// connected time spent in busy cells (UPRB above the busy threshold in
// the overlapped 15-minute bins).
type BusyTime struct {
	// FracByCar maps each car to its busy-time fraction.
	FracByCar map[cdr.CarID]float64
	// Deciles are the 0,10,…,100% quantiles of the fractions (Fig 7a).
	Deciles [11]float64
	// OverHalf is the proportion of cars with > 50% busy time
	// (paper: ~2.4%).
	OverHalf float64
	// AllBusy is the proportion of cars with ≥ 99% busy time
	// (paper: ~1%).
	AllBusy float64
}

// BusyTimeOf computes Figure 7. For every record it apportions the
// connected time across the 15-minute bins it overlaps and classifies
// each slice busy or not using the context's load source. It panics
// without a load source.
func BusyTimeOf(records []cdr.Record, ctx Context) BusyTime {
	if ctx.Load == nil {
		panic("analysis: BusyTimeOf requires a load source")
	}
	return runAccum(newBusyAcc(ctx), records).Busy
}

// Histogram7a buckets the busy-time fractions into the Figure 7a bars:
// proportion of cars per 10-percentage-point bucket of busy time.
func (bt BusyTime) Histogram7a() [10]float64 {
	var out [10]float64
	if len(bt.FracByCar) == 0 {
		return out
	}
	for _, f := range bt.FracByCar {
		b := int(f * 10)
		if b >= 10 {
			b = 9
		}
		out[b]++
	}
	n := float64(len(bt.FracByCar))
	for i := range out {
		out[i] /= n
	}
	return out
}

// Histogram7b buckets cars with at least 50% busy time by decade
// (50-60 … 90-100), as proportions of that subpopulation (Fig 7b).
func (bt BusyTime) Histogram7b() [5]float64 {
	var out [5]float64
	n := 0.0
	for _, f := range bt.FracByCar {
		if f < 0.5 {
			continue
		}
		b := int((f - 0.5) * 10)
		if b >= 5 {
			b = 4
		}
		out[b]++
		n++
	}
	if n > 0 {
		for i := range out {
			out[i] /= n
		}
	}
	return out
}

// Segment is a Table 2 row bucket: how much of the car population is
// rare vs common, split by whether their connected time concentrates
// in busy hours, non-busy hours, or both.
type Segment struct {
	RareDays int // the "rare" threshold in days (10 or 30 in the paper)
	// Fractions of the whole car population.
	RareBusy, RareNonBusy, RareBoth       float64
	CommonBusy, CommonNonBusy, CommonBoth float64
}

// RareTotal returns the total rare fraction.
func (s Segment) RareTotal() float64 { return s.RareBusy + s.RareNonBusy + s.RareBoth }

// CommonTotal returns the total common fraction.
func (s Segment) CommonTotal() float64 { return s.CommonBusy + s.CommonNonBusy + s.CommonBoth }

// SegmentationThresholds are the paper's §4.3 classification bounds: a
// car is a busy-hour car when ≥ 65% of its connected time is on busy
// cells, a non-busy-hour car when ≤ 35%, otherwise balanced ("both").
const (
	BusyCarMinFrac    = 0.65
	NonBusyCarMaxFrac = 0.35
)

// Segmentation produces Table 2 for the given rare-day thresholds
// (the paper uses 10 and 30). It panics without a load source.
func Segmentation(records []cdr.Record, ctx Context, rareDays ...int) []Segment {
	return runAccum(newSegmentsAcc(ctx, rareDays), records).Segments
}

// FormatTable2 renders segmentation rows in the paper's Table 2 layout.
func FormatTable2(segments []Segment) string {
	s := fmt.Sprintf("%-22s  %6s  %8s  %6s  %6s\n", "Segment", "Busy", "Non-Busy", "Both", "Total")
	for _, seg := range segments {
		s += fmt.Sprintf("Rare (<= %2d days)       %5.1f%%  %7.1f%%  %5.1f%%  %5.1f%%\n",
			seg.RareDays, seg.RareBusy*100, seg.RareNonBusy*100, seg.RareBoth*100, seg.RareTotal()*100)
		s += fmt.Sprintf("Common (%2d+ days)       %5.1f%%  %7.1f%%  %5.1f%%  %5.1f%%\n",
			seg.RareDays, seg.CommonBusy*100, seg.CommonNonBusy*100, seg.CommonBoth*100, seg.CommonTotal()*100)
	}
	return s
}
