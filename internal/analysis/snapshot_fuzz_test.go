package analysis

import (
	"bytes"
	"testing"

	"cellcars/internal/cdr"
)

// fuzzSnapshotSeed builds one small but fully populated analysis
// snapshot for the fuzz corpus.
func fuzzSnapshotSeed() []byte {
	s := NewStreamingWithOptions(engineCtx(), RunOptions{BusyCells: engineBusyCells()})
	if err := s.AddAll(cdr.NewSliceReader(engineWorkload(80))); err != nil {
		panic(err)
	}
	var buf bytes.Buffer
	if err := s.SnapshotTo(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzReadPartial hammers the full snapshot restore path — container
// parsing, header validation, every accumulator's RestoreFrom — with
// arbitrary bytes. The invariant: ReadPartial either returns an error
// or a partial whose Finalize succeeds; it never panics.
func FuzzReadPartial(f *testing.F) {
	seed := fuzzSnapshotSeed()
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add(seed[:9])
	f.Add([]byte{})
	flipped := append([]byte(nil), seed...)
	flipped[len(flipped)/3] ^= 0x10
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ReadPartial(bytes.NewReader(data))
		if err != nil {
			return
		}
		rep := p.Finalize()
		if rep == nil {
			t.Fatal("clean restore finalized to nil report")
		}
	})
}
