package analysis

import (
	"math/rand/v2"
	"reflect"
	"sort"
	"testing"
	"time"

	"cellcars/internal/cdr"
	"cellcars/internal/clean"
	"cellcars/internal/radio"
	"cellcars/internal/simtime"
)

// engineWorkload generates a deterministic raw workload that exercises
// every stage and both ingest filters: many cars across many cells and
// carriers, ghost records, and records outside the study period.
func engineWorkload(n int) []cdr.Record {
	rng := rand.New(rand.NewPCG(42, 1))
	records := make([]cdr.Record, 0, n)
	for i := 0; i < n; i++ {
		car := cdr.CarID(rng.Uint64N(400))
		bs := radio.BSID(rng.Uint64N(120))
		sector := radio.SectorID(rng.Uint64N(3))
		carrier := radio.C1 + radio.CarrierID(rng.Uint64N(uint64(radio.NumCarriers)))
		start := time.Duration(rng.Uint64N(14*24*3600)) * time.Second
		dur := time.Duration(5+rng.Uint64N(1200)) * time.Second
		switch i % 97 {
		case 13: // ghost
			dur = clean.GhostDuration
		case 29: // before the period
			start = -time.Duration(1+rng.Uint64N(48*3600)) * time.Second
		case 71: // after the period
			start = time.Duration(14*24*3600+rng.Uint64N(48*3600)) * time.Second
		}
		records = append(records, cdr.Record{
			Car:      car,
			Cell:     radio.MakeCellKey(bs, sector, carrier),
			Start:    t0.Add(start),
			Duration: dur,
		})
	}
	// Keep per-car time order (required by the sessionizing stages):
	// sort by start, stable to preserve generation order on ties.
	sort.SliceStable(records, func(i, j int) bool {
		return records[i].Start.Before(records[j].Start)
	})
	return records
}

func engineCtx() Context {
	return Context{
		Period: simtime.NewPeriod(t0, 14),
		Load: &fixedLoad{busy: map[radio.CellKey]bool{
			radio.MakeCellKey(3, 0, radio.C1): true,
			radio.MakeCellKey(3, 1, radio.C2): true,
			radio.MakeCellKey(7, 0, radio.C3): true,
		}},
		TZOffsetSeconds: -5 * 3600,
	}
}

func engineBusyCells() []radio.CellKey {
	return []radio.CellKey{
		radio.MakeCellKey(3, 0, radio.C1),
		radio.MakeCellKey(3, 1, radio.C2),
		radio.MakeCellKey(7, 0, radio.C3),
		radio.MakeCellKey(11, 0, radio.C4),
	}
}

// TestEngineWorkerCountEquivalence is the core determinism guarantee:
// the full report is bit-identical for any worker count. The workload
// is large enough that the duration quantiles use the sketch path, so
// the sketch's merge determinism is covered too.
func TestEngineWorkerCountEquivalence(t *testing.T) {
	records := engineWorkload(40000)
	ctx := engineCtx()
	opts := RunOptions{BusyCells: engineBusyCells()}

	var reports []*Report
	for _, workers := range []int{1, 3, 8} {
		e := NewEngine(ctx, EngineOptions{RunOptions: opts, Workers: workers})
		rep, err := e.Run(records)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(rep.StageErrors) != 0 {
			t.Fatalf("workers=%d: stage errors %+v", workers, rep.StageErrors)
		}
		reports = append(reports, rep)
	}
	for i := 1; i < len(reports); i++ {
		if !reflect.DeepEqual(reports[0], reports[i]) {
			t.Fatalf("report for worker count %d differs from workers=1", []int{1, 3, 8}[i])
		}
	}

	// Sanity: the workload exercised every filter and stage.
	rep := reports[0]
	if rep.OutOfPeriod == 0 || rep.RawRecords == rep.CleanRecords {
		t.Fatalf("workload did not exercise filters: %+v", rep)
	}
	if rep.Presence.TotalCars == 0 || rep.Handovers.Sessions == 0 ||
		len(rep.Segments) != 2 || len(rep.Clusters.Sizes) != 2 || rep.UsageSessions == 0 {
		t.Fatal("workload did not exercise every stage")
	}
	if rep.Durations.Median <= 0 {
		t.Fatal("no duration median")
	}
}

// TestEngineMatchesRun pins Run as a thin adapter: Run with Workers=8
// equals the engine, equals Run sequential.
func TestEngineMatchesRun(t *testing.T) {
	records := engineWorkload(8000)
	ctx := engineCtx()

	seq, err := Run(records, ctx, RunOptions{BusyCells: engineBusyCells()})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(records, ctx, RunOptions{BusyCells: engineBusyCells(), Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("Run(Workers=8) differs from sequential Run")
	}
}

// TestEngineReaderMatchesSlices: the streaming shard-reader path must
// produce the identical report to the in-memory path.
func TestEngineReaderMatchesSlices(t *testing.T) {
	records := engineWorkload(8000)
	ctx := engineCtx()
	opts := EngineOptions{RunOptions: RunOptions{BusyCells: engineBusyCells()}, Workers: 4}

	mem, err := NewEngine(ctx, opts).Run(records)
	if err != nil {
		t.Fatal(err)
	}
	str, err := NewEngine(ctx, opts).RunReader(cdr.NewSliceReader(records))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mem, str) {
		t.Fatal("RunReader differs from Run")
	}
}

// TestEngineDurationQuantileTolerance documents the sketch contract:
// beyond the exact-sample capacity the duration quantiles come from
// the log histogram and must stay within one ~7% bin of the exact
// value computed from the full data.
func TestEngineDurationQuantileTolerance(t *testing.T) {
	records := engineWorkload(40000)
	ctx := engineCtx()
	rep, err := NewEngine(ctx, EngineOptions{Workers: 4}).Run(records)
	if err != nil {
		t.Fatal(err)
	}

	// Exact reference over the accepted (ghost-free, in-period) stream.
	var trunc []float64
	for _, r := range records {
		if r.Duration == clean.GhostDuration || ctx.Period.DayIndex(r.Start) < 0 {
			continue
		}
		sec := r.Duration.Seconds()
		if sec > 600 {
			sec = 600
		}
		trunc = append(trunc, sec)
	}
	if len(trunc) <= durSampleCap {
		t.Fatalf("workload too small to exercise the sketch: %d", len(trunc))
	}
	sort.Float64s(trunc)
	med := trunc[(len(trunc)-1)/2]
	ratio := rep.Durations.Median / med
	if ratio < 0.90 || ratio > 1.12 {
		t.Fatalf("sketched median %v vs exact %v (ratio %v)", rep.Durations.Median, med, ratio)
	}
}

// TestEngineFailStageAcrossWorkers: chaos injection must drop exactly
// the named stage in every worker and leave independent stages —
// notably segments, which derives busy fractions itself — intact.
func TestEngineFailStageAcrossWorkers(t *testing.T) {
	records := engineWorkload(4000)
	ctx := engineCtx()
	e := NewEngine(ctx, EngineOptions{RunOptions: RunOptions{FailStage: "busy"}, Workers: 8})
	rep, err := e.Run(records)
	if err != nil {
		t.Fatal(err)
	}
	if fail := rep.Failed("busy"); fail == nil {
		t.Fatalf("injected failure not recorded: %+v", rep.StageErrors)
	}
	if len(rep.StageErrors) != 1 {
		t.Fatalf("extra failures: %+v", rep.StageErrors)
	}
	if len(rep.Busy.FracByCar) != 0 {
		t.Fatal("failed stage still produced output")
	}
	if len(rep.Segments) != 2 || rep.Segments[0].RareTotal()+rep.Segments[0].CommonTotal() < 0.99 {
		t.Fatalf("segments must survive a busy-stage failure: %+v", rep.Segments)
	}
	if rep.Presence.TotalCars == 0 {
		t.Fatal("presence lost")
	}
}

// TestEngineOutOfPeriodPolicy is the regression test for the unified
// record-handling policy: a record outside the study period appears in
// no analysis — not even the period-less ones like Table 3 — and is
// counted in OutOfPeriod. Historically batch and streaming diverged
// here.
func TestEngineOutOfPeriodPolicy(t *testing.T) {
	period := simtime.NewPeriod(t0, 7)
	ctx := Context{Period: period}
	in := rec(1, cell(1), 24*time.Hour, 100*time.Second)
	before := rec(2, cell(2), -48*time.Hour, 100*time.Second)
	after := rec(3, cell(3), 9*24*time.Hour, 100*time.Second)

	for _, workers := range []int{1, 4} {
		rep, err := NewEngine(ctx, EngineOptions{Workers: workers}).Run([]cdr.Record{before, in, after})
		if err != nil {
			t.Fatal(err)
		}
		if rep.OutOfPeriod != 2 {
			t.Fatalf("workers=%d: OutOfPeriod = %d, want 2", workers, rep.OutOfPeriod)
		}
		if rep.Presence.TotalCars != 1 {
			t.Fatalf("workers=%d: presence sees %d cars", workers, rep.Presence.TotalCars)
		}
		if rep.Carriers.TotalCars != 1 {
			t.Fatalf("workers=%d: carriers see %d cars, want out-of-period cars excluded", workers, rep.Carriers.TotalCars)
		}
		if got := rep.Connected.Full.N(); got != 1 {
			t.Fatalf("workers=%d: connected CDF over %d cars", workers, got)
		}
		if rep.CleanRecords != 3 {
			t.Fatalf("workers=%d: clean records = %d", workers, rep.CleanRecords)
		}
	}

	// Streaming applies the identical policy.
	s := NewStreaming(period)
	s.Add(before)
	s.Add(in)
	s.Add(after)
	srep := s.Finalize()
	if srep.OutOfPeriod != 2 || srep.Carriers.TotalCars != 1 {
		t.Fatalf("streaming policy differs: out=%d cars=%d", srep.OutOfPeriod, srep.Carriers.TotalCars)
	}
}

// TestStreamingWithContextCoversLoadStages: the streaming adapter now
// covers Table 2 and Figure 7 when given a load source, matching the
// batch pipeline exactly.
func TestStreamingWithContextCoversLoadStages(t *testing.T) {
	records := engineWorkload(4000)
	ctx := engineCtx()

	s := NewStreamingWithContext(ctx)
	if err := s.AddAll(cdr.NewSliceReader(records)); err != nil {
		t.Fatal(err)
	}
	srep := s.Finalize()

	rep, err := Run(records, ctx, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(srep.Busy, rep.Busy) {
		t.Fatal("streaming busy time differs from batch")
	}
	if !reflect.DeepEqual(srep.Segments, rep.Segments) {
		t.Fatal("streaming segmentation differs from batch")
	}
	if !reflect.DeepEqual(srep.Handovers, rep.Handovers) {
		t.Fatal("streaming handovers differ from batch")
	}
	if !reflect.DeepEqual(srep.FleetUsage, rep.FleetUsage) {
		t.Fatal("streaming fleet usage differs from batch")
	}
}
