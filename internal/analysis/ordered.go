// Ordered (time-sliced) merging. The plain Merge contract assumes
// car-disjoint shards: each side closes its open sessions because "the
// other shard never sees this car again". Time slicing breaks that —
// the same car's stream continues in the next slice, and a session
// spanning the slice boundary would be counted twice (once per half)
// by the session stages (handovers, usage).
//
// MergeOrdered repairs the boundary. A slice built with
// RunOptions.TrackHeads stashes each car's *first* closed session
// unaccounted (its head) and keeps its last session open in the
// sessionizer (its tail). Folding slice k+1 into the accumulation of
// slices 0..k stitches, per car, the earlier open tail with the later
// head (or open fragment) under the ordinary gap rule, so every
// session is rebuilt exactly as a single pass over the concatenated
// stream would have built it.
//
// Exactness precondition: the concatenated stream must satisfy the
// Sessionizer contract (per-car non-decreasing start order across the
// slice boundary), and each car's records must be non-overlapping in
// time so span ends are monotone. Real CDRs are; a pathological
// overlap (an earlier slice's open tail ending *after* the later
// slice's records) would stitch differently from a single pass. All
// non-session stages are order-insensitive and merge exactly with
// their plain Merge under any time split.
package analysis

import (
	"fmt"
	"slices"
	"time"

	"cellcars/internal/cdr"
	"cellcars/internal/clean"
)

// orderedMerger is implemented by accumulators whose plain Merge is
// inexact under time-sliced (car-overlapping) folds and that therefore
// provide a boundary-stitching variant.
type orderedMerger interface {
	Accumulator
	// MergeOrdered folds a later, time-adjacent slice into the
	// receiver. The later slice must have been built with TrackHeads.
	MergeOrdered(other Accumulator)
}

// stitchOrdered folds a later slice's session fragments into the
// receiver's sessionizer: per car (ascending, for determinism), the
// later head joins or closes the earlier open tail and is then closed
// itself; the later open tail joins or replaces it and stays open.
// closeFn receives every session the stitch proves closed.
func stitchOrdered(z *clean.Sessionizer, closeFn func(*clean.Session), heads map[cdr.CarID]*clean.Session, later *clean.Sessionizer) {
	// join applies the sessionizer's gap rule at the boundary: a
	// fragment starting within gap of the earlier open tail's end
	// continues that session; otherwise the tail is closed and the
	// fragment becomes the car's open session.
	join := func(frag *clean.Session) {
		cur := z.Open(frag.Car)
		if cur != nil && frag.Start.Sub(cur.End) > z.Gap() {
			z.Take(frag.Car)
			closeFn(cur)
			cur = nil
		}
		if cur == nil {
			z.Put(frag)
			return
		}
		cur.Spans = append(cur.Spans, frag.Spans...)
		cur.Connected += frag.Connected
		if frag.End.After(cur.End) {
			cur.End = frag.End
		}
	}
	cars := sortedKeys(heads)
	cars = append(cars, later.OpenCars()...)
	slices.Sort(cars)
	cars = slices.Compact(cars)
	for _, car := range cars {
		if h, ok := heads[car]; ok {
			// The head was closed by real gap evidence inside the later
			// slice, so whatever it stitched onto is complete.
			join(h)
			closeFn(z.Take(car))
		}
		if tail := later.Take(car); tail != nil {
			join(tail) // stays open: the next slice may continue it
		}
	}
}

// MergeOrdered folds a later, time-adjacent handover slice into a.
// The later slice's accounted aggregates are interior to its slice and
// fold as-is; only the boundary sessions need stitching.
func (a *handoverAcc) MergeOrdered(other Accumulator) {
	o := mergeAs[*handoverAcc](other)
	if !o.trackHeads {
		panic("analysis: MergeOrdered needs the later slice built with TrackHeads")
	}
	stitchOrdered(a.z, a.closeSession, o.heads, o.z)
	for kind, c := range o.byKind {
		a.byKind[kind] += c
	}
	a.counts = append(a.counts, o.counts...)
}

// MergeOrdered folds a later, time-adjacent usage slice into a; see
// handoverAcc.MergeOrdered.
func (a *usageAcc) MergeOrdered(other Accumulator) {
	o := mergeAs[*usageAcc](other)
	if !o.trackHeads {
		panic("analysis: MergeOrdered needs the later slice built with TrackHeads")
	}
	stitchOrdered(a.z, a.closeSession, o.heads, o.z)
	a.matrix.Merge(&o.matrix)
	a.sessions += o.sessions
}

// mergeOrdered is accumSet.merge for time-sliced folds: stages that
// implement orderedMerger stitch the slice boundary; every other stage
// is order-insensitive and merges plainly.
func (s *accumSet) mergeOrdered(o *accumSet) {
	s.flush()
	o.flush()
	s.raw += o.raw
	s.ghosts += o.ghosts
	s.outOfPeriod += o.outOfPeriod
	s.accepted += o.accepted
	for _, e := range o.errs {
		if !s.hasError(e.Stage) {
			s.errs = append(s.errs, e)
		}
	}
	for i := range s.stages {
		switch {
		case s.hasError(engineStageOrder[i]):
			s.stages[i] = nil
		case s.stages[i] == nil || o.stages[i] == nil:
			// Stage disabled by context on both sides (or failed,
			// handled above).
		default:
			var t0 time.Time
			if s.met != nil {
				t0 = time.Now()
			}
			if om, ok := s.stages[i].(orderedMerger); ok {
				om.MergeOrdered(o.stages[i])
			} else {
				s.stages[i].Merge(o.stages[i])
			}
			if s.met != nil {
				s.met.stageMerge[i].Observe(time.Since(t0))
			}
		}
	}
	if s.met != nil {
		s.met.rebase(s)
	}
}

// MergeOrdered folds a later, time-adjacent slice into s, stitching
// sessions that span the slice boundary — the composition step behind
// rolling-window queries. later must cover records at or after every
// record s has seen (per car), must share s's study configuration, and
// must have been built with RunOptions.TrackHeads. later is consumed.
//
// Unlike the car-disjoint Merge, a left-fold of MergeOrdered over
// consecutive time slices finalizes bit-identically to one pass over
// the concatenated stream (see package comment for the precondition).
func (s *Streaming) MergeOrdered(later *Streaming) error {
	if err := s.header().sameStudy(later.header()); err != nil {
		return err
	}
	if !later.tracksHeads() {
		return fmt.Errorf("analysis: MergeOrdered needs the later slice built with TrackHeads")
	}
	s.set.mergeOrdered(later.set)
	return nil
}

// tracksHeads reports whether the live session stages carry the
// head-stash state MergeOrdered stitches with. The flag is read from
// the accumulators, not the options: a restored slice's tracking state
// comes from its snapshot payload.
func (s *Streaming) tracksHeads() bool {
	for _, name := range []string{"handovers", "usage"} {
		switch t := s.set.stages[stageIndex(name)].(type) {
		case *handoverAcc:
			if !t.trackHeads {
				return false
			}
		case *usageAcc:
			if !t.trackHeads {
				return false
			}
		}
	}
	return true
}
