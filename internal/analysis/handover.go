package analysis

import (
	"cellcars/internal/cdr"
	"cellcars/internal/clean"
	"cellcars/internal/radio"
	"cellcars/internal/stats"
)

// HandoverStats is §4.5: handover counts within mobility sessions
// (connections concatenated across gaps of up to 10 minutes).
type HandoverStats struct {
	// Sessions is the number of mobility sessions analyzed.
	Sessions int
	// Median, P70, P90 are the per-session handover-count percentiles
	// (paper: 2, 4, 9).
	Median, P70, P90 float64
	// ByKind counts every handover by kind across all sessions; the
	// paper finds inter-base-station dominant and the rest negligible.
	ByKind map[radio.HandoverKind]int64
	// PerSession is the CDF of per-session handover counts.
	PerSession *stats.CDF
}

// HandoversOf computes §4.5 from ghost-free, time-sorted records.
// Sessions with a single connection (zero possible handovers) count
// toward the distribution, as the paper's lower-bound methodology
// implies.
func HandoversOf(records []cdr.Record) (HandoverStats, error) {
	hs := HandoverStats{ByKind: make(map[radio.HandoverKind]int64)}
	sessions, err := clean.Sessions(cdr.NewSliceReader(records), clean.MobilityGap)
	if err != nil {
		return hs, err
	}
	counts := make([]float64, 0, len(sessions))
	for i := range sessions {
		n := 0
		for kind, c := range sessions[i].Handovers() {
			hs.ByKind[kind] += int64(c)
			n += c
		}
		counts = append(counts, float64(n))
	}
	hs.Sessions = len(sessions)
	hs.PerSession = stats.NewCDF(counts)
	if len(counts) > 0 {
		hs.Median = hs.PerSession.Quantile(0.5)
		hs.P70 = hs.PerSession.Quantile(0.7)
		hs.P90 = hs.PerSession.Quantile(0.9)
	}
	return hs, nil
}

// InterBSShare returns the fraction of all handovers that cross base
// stations.
func (h HandoverStats) InterBSShare() float64 {
	var total, bs int64
	for kind, c := range h.ByKind {
		total += c
		if kind == radio.HandoverInterBS {
			bs += c
		}
	}
	if total == 0 {
		return 0
	}
	return float64(bs) / float64(total)
}
