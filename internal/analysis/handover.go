package analysis

import (
	"cellcars/internal/cdr"
	"cellcars/internal/radio"
	"cellcars/internal/stats"
)

// HandoverStats is §4.5: handover counts within mobility sessions
// (connections concatenated across gaps of up to 10 minutes).
type HandoverStats struct {
	// Sessions is the number of mobility sessions analyzed.
	Sessions int
	// Median, P70, P90 are the per-session handover-count percentiles
	// (paper: 2, 4, 9).
	Median, P70, P90 float64
	// ByKind counts every handover by kind across all sessions; the
	// paper finds inter-base-station dominant and the rest negligible.
	ByKind map[radio.HandoverKind]int64
	// PerSession is the CDF of per-session handover counts.
	PerSession *stats.CDF
}

// HandoversOf computes §4.5 from ghost-free, time-sorted records.
// Sessions with a single connection (zero possible handovers) count
// toward the distribution, as the paper's lower-bound methodology
// implies. Durations are used as given; the full pipeline applies the
// §3 truncation before sessionizing (see Engine).
func HandoversOf(records []cdr.Record) (HandoverStats, error) {
	return runAccum(newHandoverAcc(false), records).Handovers, nil
}

// InterBSShare returns the fraction of all handovers that cross base
// stations.
func (h HandoverStats) InterBSShare() float64 {
	var total, bs int64
	for kind, c := range h.ByKind {
		total += c
		if kind == radio.HandoverInterBS {
			bs += c
		}
	}
	if total == 0 {
		return 0
	}
	return float64(bs) / float64(total)
}
