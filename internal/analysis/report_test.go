package analysis

import (
	"testing"
	"time"

	"cellcars/internal/cdr"
	"cellcars/internal/radio"
	"cellcars/internal/simtime"
)

func TestRunFullPipeline(t *testing.T) {
	ctx := testCtx()
	busyCell := cell(99)
	idleCell := cell(1)
	var records []cdr.Record
	// A week of activity for three cars, plus a ghost and a stuck record.
	for d := 0; d < 7; d++ {
		base := time.Duration(d) * 24 * time.Hour
		records = append(records,
			rec(1, idleCell, base+8*time.Hour, 2*time.Minute),
			rec(1, cell(2), base+8*time.Hour+3*time.Minute, 2*time.Minute),
			rec(2, busyCell, base+18*time.Hour, 5*time.Minute),
		)
	}
	records = append(records,
		rec(3, idleCell, 30*time.Hour, time.Hour),   // ghost
		rec(3, idleCell, 50*time.Hour, 2*time.Hour), // stuck (truncated for handovers)
	)
	cdr.Sort(records)

	report, err := Run(records, ctx, RunOptions{
		RareDays:  []int{1, 3},
		BusyCells: []radio.CellKey{busyCell, idleCell},
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.RawRecords != len(records) || report.CleanRecords != len(records)-1 {
		t.Fatalf("counts: raw %d clean %d", report.RawRecords, report.CleanRecords)
	}
	if report.Presence.TotalCars != 3 {
		t.Fatalf("cars = %d", report.Presence.TotalCars)
	}
	if len(report.WeekdayRows) != 8 {
		t.Fatalf("weekday rows = %d", len(report.WeekdayRows))
	}
	if report.Connected.FullMean <= 0 {
		t.Fatal("no connected time")
	}
	if report.DaysHist.Total() != 3 {
		t.Fatalf("days hist total = %d", report.DaysHist.Total())
	}
	if len(report.Segments) != 2 {
		t.Fatalf("segments = %d", len(report.Segments))
	}
	// Car 2 lives on the busy cell → busy fraction 1.
	if f := report.Busy.FracByCar[2]; f != 1 {
		t.Fatalf("car 2 busy frac = %v", f)
	}
	if report.Durations.Median <= 0 {
		t.Fatal("no durations")
	}
	if report.Handovers.Sessions == 0 {
		t.Fatal("no mobility sessions")
	}
	// Car 1 hops bs1 → bs2 every day.
	if report.Handovers.ByKind[radio.HandoverInterBS] < 7 {
		t.Fatalf("inter-BS = %d", report.Handovers.ByKind[radio.HandoverInterBS])
	}
	if report.Carriers.TotalCars != 3 {
		t.Fatalf("carrier cars = %d", report.Carriers.TotalCars)
	}
	if len(report.Clusters.Sizes) != 2 {
		t.Fatalf("clusters = %v", report.Clusters.Sizes)
	}
}

func TestRunDefaults(t *testing.T) {
	ctx := testCtx()
	records := []cdr.Record{rec(1, cell(1), time.Hour, time.Minute)}
	report, err := Run(records, ctx, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Default rare thresholds are {10, 30}.
	if len(report.Segments) != 2 || report.Segments[0].RareDays != 10 || report.Segments[1].RareDays != 30 {
		t.Fatalf("default segments: %+v", report.Segments)
	}
	// No busy cells supplied: clustering skipped.
	if report.Clusters.Cells != nil {
		t.Fatal("clustering should be skipped without busy cells")
	}
}

func TestRunWithoutLoadSource(t *testing.T) {
	ctx := Context{Period: simtime.NewPeriod(t0, 7)}
	records := []cdr.Record{rec(1, cell(1), time.Hour, time.Minute)}
	report, err := Run(records, ctx, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if report.Segments != nil {
		t.Fatal("segmentation should be skipped without a load source")
	}
	if report.Presence.TotalCars != 1 {
		t.Fatal("record-level analyses must still run")
	}
}

// TestPresenceLongPeriod exercises the map-fallback path used when the
// study exceeds the 64-day bitmap capacity (the paper's 90-day window).
func TestPresenceLongPeriod(t *testing.T) {
	period := simtime.NewPeriod(t0, 90)
	var records []cdr.Record
	// Car 1 on days 0, 63, 64, 89 — straddling the word boundary.
	for _, d := range []int{0, 63, 64, 89} {
		records = append(records, rec(1, cell(1), time.Duration(d)*24*time.Hour, time.Minute))
		// Duplicate on the same day must not double count.
		records = append(records, rec(1, cell(1), time.Duration(d)*24*time.Hour+time.Hour, time.Minute))
	}
	p := DailyPresenceOf(records, period)
	if p.TotalCars != 1 || p.TotalCells != 1 {
		t.Fatalf("totals: %d/%d", p.TotalCars, p.TotalCells)
	}
	for _, d := range []int{0, 63, 64, 89} {
		if p.CarsFrac[d] != 1 {
			t.Fatalf("day %d frac = %v", d, p.CarsFrac[d])
		}
	}
	if p.CarsFrac[1] != 0 {
		t.Fatal("phantom presence on day 1")
	}
	days := DaysOnNetwork(records, period)
	if days[1] != 4 {
		t.Fatalf("days on network = %d, want 4", days[1])
	}
}
