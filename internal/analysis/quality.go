package analysis

import (
	"fmt"
	"sort"
	"time"

	"cellcars/internal/cdr"
	"cellcars/internal/simtime"
)

// This file implements the data-quality accounting layer. The paper's
// own data set carries a 3-day partial data-loss window that shows up
// as a dip in Figure 2's daily-presence curve (§3); rather than
// hard-coding that knowledge, we detect coverage gaps from the data
// itself and report them alongside ingest quarantine statistics, so a
// production run of the pipeline documents how dirty its input was.

// CoverageGap flags one study day whose on-network car fraction fell
// far below the period's typical level — the signature of partial
// data loss on the collection side rather than of cars staying home.
type CoverageGap struct {
	// Day is the zero-based day index within the study period.
	Day int
	// Date is the UTC midnight starting the day.
	Date time.Time
	// CarsFrac is the observed fraction of the population seen that
	// day.
	CarsFrac float64
	// Baseline is the period's median daily fraction, for scale.
	Baseline float64
}

// GapThreshold is the default coverage-gap cutoff: a day is flagged
// when its car fraction drops below this multiple of the period
// median. 0.5 separates the paper's data-loss dip (roughly half the
// usual presence) from ordinary weekend variation (~10%).
const GapThreshold = 0.5

// DetectCoverageGaps scans a daily-presence series for days whose car
// fraction falls below threshold×median (threshold <= 0 uses
// GapThreshold). It returns flagged days in order; an empty result
// means coverage looked uniform.
func DetectCoverageGaps(p DailyPresence, period simtime.Period, threshold float64) []CoverageGap {
	if threshold <= 0 {
		threshold = GapThreshold
	}
	if len(p.CarsFrac) == 0 {
		return nil
	}
	sorted := append([]float64(nil), p.CarsFrac...)
	sort.Float64s(sorted)
	median := sorted[len(sorted)/2]
	if median <= 0 {
		return nil
	}
	var gaps []CoverageGap
	for d, frac := range p.CarsFrac {
		if frac < threshold*median && d < period.Days() {
			gaps = append(gaps, CoverageGap{
				Day:      d,
				Date:     period.DayStart(d),
				CarsFrac: frac,
				Baseline: median,
			})
		}
	}
	return gaps
}

// DataQuality aggregates everything the pipeline knows about the
// health of one input stream: ingest counters, quarantine breakdown,
// ghost-record removals, detected coverage gaps, and any analysis
// stages that had to be skipped.
type DataQuality struct {
	// RecordsRead counts records accepted by ingest.
	RecordsRead int64
	// GhostsDropped counts the exactly-one-hour erroneous records
	// removed per §3.
	GhostsDropped int64
	// QuarantinedTotal counts records rejected by the resilient
	// ingest layer; Quarantined breaks them down by failure class.
	QuarantinedTotal int64
	Quarantined      map[string]int64
	// Retries counts transient-failure retries during ingest.
	Retries int64
	// Gaps are the detected coverage-loss days.
	Gaps []CoverageGap
	// StageErrors lists analysis stages that failed and were skipped.
	StageErrors []StageError
	// ExcludedShards lists shards a distributed run quarantined after
	// exhausting their attempt budget — data the report does NOT cover.
	ExcludedShards []ExcludedShard
}

// ExcludedShard names one shard of a distributed run that was
// quarantined: every attempt failed, so its cars are absent from the
// merged report. Naming the hole is what makes a degraded run honest.
type ExcludedShard struct {
	// Shard is the car-hash shard index.
	Shard int
	// Attempts is how many times the shard was tried before the
	// coordinator gave up.
	Attempts int
	// LastClass is the final attempt's failure classification (crash,
	// timeout, bad-snapshot).
	LastClass string
	// LastErr is the final attempt's error detail.
	LastErr string
	// Records is the raw record count lost with the shard — observed
	// from a failed attempt's own accounting when available, otherwise
	// estimated from the input size (see Estimated).
	Records int64
	// Estimated is true when Records is an input-size estimate rather
	// than an observed count.
	Estimated bool
}

// NewDataQuality assembles a DataQuality from ingest stats, the
// post-cleaning ghost count, and a presence series (pass a zero
// DailyPresence to skip gap detection).
func NewDataQuality(stats cdr.IngestStats, ghosts int64, p DailyPresence, period simtime.Period) *DataQuality {
	q := &DataQuality{
		RecordsRead:      stats.Read,
		GhostsDropped:    ghosts,
		QuarantinedTotal: stats.QuarantinedTotal(),
		Quarantined:      stats.ByClass(),
		Retries:          stats.Retries,
	}
	if len(p.CarsFrac) > 0 {
		q.Gaps = DetectCoverageGaps(p, period, 0)
	}
	return q
}

// Summary returns a one-line human rendering, for CLI output.
func (q *DataQuality) Summary() string {
	s := fmt.Sprintf("read %d, ghosts %d, quarantined %d, retries %d, gap days %d, failed stages %d",
		q.RecordsRead, q.GhostsDropped, q.QuarantinedTotal, q.Retries, len(q.Gaps), len(q.StageErrors))
	if len(q.ExcludedShards) > 0 {
		s += fmt.Sprintf(", excluded shards %d", len(q.ExcludedShards))
	}
	return s
}
