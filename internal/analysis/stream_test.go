package analysis

import (
	"math"
	"testing"
	"time"

	"cellcars/internal/cdr"
	radioPkg "cellcars/internal/radio"
	"cellcars/internal/simtime"
)

func TestStreamingMatchesBatchOnBasics(t *testing.T) {
	period := simtime.NewPeriod(t0, 14)
	var records []cdr.Record
	// A small deterministic workload: 20 cars, varied days/durations.
	for car := cdr.CarID(1); car <= 20; car++ {
		for d := 0; d < int(car); d++ {
			records = append(records,
				rec(car, cell(radioPkg.BSID(car%7)), time.Duration(d)*24*time.Hour+time.Duration(car)*time.Hour,
					time.Duration(50+10*int(car))*time.Second))
		}
	}
	// Plus a ghost that must be dropped.
	records = append(records, rec(1, cell(1), time.Hour, time.Hour))

	s := NewStreaming(period)
	if err := s.AddAll(cdr.NewSliceReader(records)); err != nil {
		t.Fatal(err)
	}
	rep := s.Finalize()
	if rep.GhostsDropped != 1 {
		t.Fatalf("ghosts dropped = %d", rep.GhostsDropped)
	}

	// The pipeline's out-of-period policy: ghost-free records starting
	// outside the study period are excluded from every analysis and
	// counted. The batch reference below therefore runs on the
	// in-period subset — the standalone stage functions are period-less
	// primitives that analyze exactly what they are given.
	all := records[:len(records)-1]
	var ghostFree []cdr.Record
	for _, r := range all {
		if period.DayIndex(r.Start) >= 0 {
			ghostFree = append(ghostFree, r)
		}
	}
	if want := int64(len(all) - len(ghostFree)); rep.OutOfPeriod != want || want == 0 {
		t.Fatalf("out-of-period = %d, want %d (and the workload must exercise the policy)", rep.OutOfPeriod, want)
	}
	batchPresence := DailyPresenceOf(ghostFree, period)
	if rep.Presence.TotalCars != batchPresence.TotalCars {
		t.Fatalf("total cars %d vs %d", rep.Presence.TotalCars, batchPresence.TotalCars)
	}
	for d := range batchPresence.CarsFrac {
		if math.Abs(rep.Presence.CarsFrac[d]-batchPresence.CarsFrac[d]) > 1e-12 {
			t.Fatalf("day %d cars frac %v vs %v", d, rep.Presence.CarsFrac[d], batchPresence.CarsFrac[d])
		}
	}

	batchCT := ConnectedTimeOf(ghostFree, period)
	if math.Abs(rep.Connected.FullMean-batchCT.FullMean) > 1e-12 {
		t.Fatalf("full mean %v vs %v", rep.Connected.FullMean, batchCT.FullMean)
	}
	if math.Abs(rep.Connected.TruncMean-batchCT.TruncMean) > 1e-12 {
		t.Fatalf("trunc mean %v vs %v", rep.Connected.TruncMean, batchCT.TruncMean)
	}

	batchDays := DaysOnNetwork(ghostFree, period)
	for car, n := range batchDays {
		_ = car
		if n < 1 || n > 14 {
			t.Fatalf("days %d out of range", n)
		}
	}
	var totalCars int64
	for _, c := range rep.DaysCount {
		totalCars += c
	}
	if int(totalCars) != len(batchDays) {
		t.Fatalf("days histogram covers %d cars, want %d", totalCars, len(batchDays))
	}

	batchCarr := CarrierUsageOf(ghostFree)
	for c, f := range batchCarr.TimeFrac {
		if math.Abs(rep.Carriers.TimeFrac[c]-f) > 1e-12 {
			t.Fatalf("carrier %v time frac %v vs %v", c, rep.Carriers.TimeFrac[c], f)
		}
	}

	batchDur := CellDurationsOf(ghostFree)
	if math.Abs(rep.DurFullMean-batchDur.FullMean) > 1e-9 {
		t.Fatalf("full dur mean %v vs %v", rep.DurFullMean, batchDur.FullMean)
	}
	if math.Abs(rep.DurTruncMean-batchDur.TruncMean) > 1e-9 {
		t.Fatalf("trunc dur mean %v vs %v", rep.DurTruncMean, batchDur.TruncMean)
	}
	// Approximate quantiles within one log-bin (~7%) of exact.
	if batchDur.Median > 0 {
		ratio := rep.DurMedian / batchDur.Median
		if ratio < 0.90 || ratio > 1.12 {
			t.Fatalf("median approx %v vs exact %v", rep.DurMedian, batchDur.Median)
		}
	}
}

func TestStreamingEmpty(t *testing.T) {
	s := NewStreaming(simtime.NewPeriod(t0, 7))
	rep := s.Finalize()
	if rep.Records != 0 || rep.Presence.TotalCars != 0 {
		t.Fatalf("empty report: %+v", rep)
	}
	if rep.DurMedian != 0 {
		t.Fatalf("empty median = %v", rep.DurMedian)
	}
}

func TestStreamingReFinalize(t *testing.T) {
	period := simtime.NewPeriod(t0, 7)
	s := NewStreaming(period)
	s.Add(rec(1, cell(1), time.Hour, time.Minute))
	a := s.Finalize()
	s.Add(rec(2, cell(2), 2*time.Hour, time.Minute))
	b := s.Finalize()
	if a.Presence.TotalCars != 1 || b.Presence.TotalCars != 2 {
		t.Fatalf("re-finalize: %d then %d cars", a.Presence.TotalCars, b.Presence.TotalCars)
	}
}

func TestDaysBits(t *testing.T) {
	var d daysBits
	if !d.set(0) || d.set(0) {
		t.Fatal("set idempotence")
	}
	if !d.set(89) {
		t.Fatal("day 89")
	}
	if d.count() != 2 {
		t.Fatalf("count = %d", d.count())
	}
}

// The log-histogram quantile tests moved to internal/stats with the
// sketch itself (see stats.LogHist).

// TestStreamingLargeEquivalence runs streaming vs batch over a bigger
// synthetic-ish random workload to catch accumulation drift.
func TestStreamingLargeEquivalence(t *testing.T) {
	period := simtime.NewPeriod(t0, 28)
	var records []cdr.Record
	for i := 0; i < 20000; i++ {
		car := cdr.CarID(i % 311)
		bs := radioPkg.BSID(i % 97)
		start := time.Duration(i%24*28) * time.Hour
		dur := time.Duration(30+i%900) * time.Second
		records = append(records, rec(car, cell(bs), start, dur))
	}
	s := NewStreaming(period)
	for _, r := range records {
		s.Add(r)
	}
	rep := s.Finalize()
	batch := ConnectedTimeOf(records, period)
	if math.Abs(rep.Connected.FullMean-batch.FullMean) > 1e-12 {
		t.Fatalf("drift: %v vs %v", rep.Connected.FullMean, batch.FullMean)
	}
	if rep.Records != int64(len(records)) {
		t.Fatalf("records = %d", rep.Records)
	}
}
