package analysis

import (
	"fmt"
	"io"
	"math/bits"
	"math/rand/v2"
	"time"

	"cellcars/internal/cdr"
	"cellcars/internal/clean"
	"cellcars/internal/radio"
	"cellcars/internal/simtime"
	"cellcars/internal/stats"
)

// This file is the single implementation of every per-record analysis
// stage, expressed as mergeable accumulators. Batch (Run), streaming
// (Streaming) and parallel (Engine) execution are all thin drivers
// over the same accumulators, so the stage arithmetic exists exactly
// once.
//
// The mergeability contract: workers feed car-disjoint shards of the
// record stream (cdr.ShardOfCar), each worker owns a full accumulator
// set, and partials combine with Merge. Because no car's state is
// ever split across shards, merging is a union of disjoint per-car
// state plus integer count addition — results are bit-identical
// regardless of worker count. The only approximated quantities are
// the Figure 9 duration quantiles, which fall back to a mergeable
// log-histogram sketch (±one ~7% bin) once the record population
// exceeds the exact-sample capacity; the sketch itself is still
// deterministic across worker counts.

// Accumulator is one paper stage as a mergeable aggregation:
// Add observes a record, Merge folds in a same-stage accumulator fed
// from a car-disjoint shard, and Finalize writes the stage's results
// into the report. Finalize must be non-destructive: accumulators can
// keep absorbing records and finalize again.
type Accumulator interface {
	// Stage returns the stable stage name (see RunOptions.FailStage).
	Stage() string
	// Add observes one ghost-free record.
	Add(r cdr.Record)
	// Merge folds another accumulator of the same stage into the
	// receiver. The other accumulator must have been fed a
	// car-disjoint shard and is consumed by the merge.
	Merge(o Accumulator)
	// Finalize computes the stage's results into rep.
	Finalize(rep *Report) error
	// SnapshotTo serializes the accumulator's partial state — enough
	// to resume Adds or Merge on another machine. Snapshots are
	// deterministic: equal state encodes to equal bytes.
	SnapshotTo(w io.Writer) error
	// RestoreFrom replaces the accumulator's state with a snapshot
	// written by SnapshotTo on an accumulator of the same stage and
	// configuration. Corrupt input is reported as an error wrapping
	// snapshot.ErrBadSnapshot; the receiver is unspecified afterwards.
	RestoreFrom(r io.Reader) error
}

// runAccum feeds a record slice to one accumulator and finalizes it
// into a scratch report — the backing for the standalone per-stage
// functions, which are thin wrappers over the accumulators. Unlike the
// engine, wrappers apply no ghost or period filtering: they are
// period-less primitives over exactly the records given.
func runAccum(acc Accumulator, records []cdr.Record) *Report {
	for _, r := range records {
		acc.Add(r)
	}
	rep := &Report{}
	if err := acc.Finalize(rep); err != nil {
		// No accumulator in this package returns a finalize error; a
		// non-nil error here is a programming bug.
		panic(err)
	}
	return rep
}

// mergeAs asserts o to the receiver's concrete type; a mismatch is an
// engine bug, not a data condition.
func mergeAs[T Accumulator](o Accumulator) T {
	t, ok := o.(T)
	if !ok {
		panic(fmt.Sprintf("analysis: merging %T into %T", o, t))
	}
	return t
}

// daysBits is a variable-length day bitmap.
type daysBits struct {
	bits []uint64
}

func (d *daysBits) set(day int) bool {
	w, b := day/64, uint(day%64)
	for len(d.bits) <= w {
		d.bits = append(d.bits, 0)
	}
	if d.bits[w]&(1<<b) != 0 {
		return false
	}
	d.bits[w] |= 1 << b
	return true
}

func (d *daysBits) count() int {
	n := 0
	for _, w := range d.bits {
		n += bits.OnesCount64(w)
	}
	return n
}

// or unions another bitmap into d.
func (d *daysBits) or(o *daysBits) {
	for len(d.bits) < len(o.bits) {
		d.bits = append(d.bits, 0)
	}
	for i, w := range o.bits {
		d.bits[i] |= w
	}
}

// forEach calls fn for every set day, ascending.
func (d *daysBits) forEach(fn func(day int)) {
	for w, word := range d.bits {
		for ; word != 0; word &= word - 1 {
			fn(w*64 + bits.TrailingZeros64(word))
		}
	}
}

// ---------------------------------------------------------------------------
// presence — Figure 2 / Table 1

type presenceAcc struct {
	period   simtime.Period
	carDays  map[cdr.CarID]*daysBits
	cellDays map[radio.CellKey]*daysBits
}

func newPresenceAcc(period simtime.Period) *presenceAcc {
	return &presenceAcc{
		period:   period,
		carDays:  make(map[cdr.CarID]*daysBits),
		cellDays: make(map[radio.CellKey]*daysBits),
	}
}

func (a *presenceAcc) Stage() string { return "presence" }

func (a *presenceAcc) Add(r cdr.Record) {
	day := a.period.DayIndex(r.Start)
	if day < 0 {
		return
	}
	db := a.carDays[r.Car]
	if db == nil {
		db = &daysBits{}
		a.carDays[r.Car] = db
	}
	db.set(day)
	cb := a.cellDays[r.Cell]
	if cb == nil {
		cb = &daysBits{}
		a.cellDays[r.Cell] = cb
	}
	cb.set(day)
}

func (a *presenceAcc) Merge(other Accumulator) {
	o := mergeAs[*presenceAcc](other)
	for car, db := range o.carDays {
		if own := a.carDays[car]; own != nil {
			own.or(db)
		} else {
			a.carDays[car] = db
		}
	}
	for cell, db := range o.cellDays {
		if own := a.cellDays[cell]; own != nil {
			own.or(db)
		} else {
			a.cellDays[cell] = db
		}
	}
}

func (a *presenceAcc) Finalize(rep *Report) error {
	days := a.period.Days()
	carsPerDay := make([]int, days)
	for _, db := range a.carDays {
		db.forEach(func(day int) { carsPerDay[day]++ })
	}
	cellsPerDay := make([]int, days)
	for _, db := range a.cellDays {
		db.forEach(func(day int) { cellsPerDay[day]++ })
	}

	p := DailyPresence{
		TotalCars:  len(a.carDays),
		TotalCells: len(a.cellDays),
		CarsFrac:   make([]float64, days),
		CellsFrac:  make([]float64, days),
	}
	xs := make([]float64, days)
	for d := 0; d < days; d++ {
		xs[d] = float64(d)
		if p.TotalCars > 0 {
			p.CarsFrac[d] = float64(carsPerDay[d]) / float64(p.TotalCars)
		}
		if p.TotalCells > 0 {
			p.CellsFrac[d] = float64(cellsPerDay[d]) / float64(p.TotalCells)
		}
	}
	p.CarsTrend = stats.Fit(xs, p.CarsFrac)
	p.CellsTrend = stats.Fit(xs, p.CellsFrac)
	rep.Presence = p
	rep.WeekdayRows = Table1(p, a.period)
	return nil
}

// ---------------------------------------------------------------------------
// connected — Figure 3

type connectedAcc struct {
	period   simtime.Period
	fullSec  map[cdr.CarID]int64
	truncSec map[cdr.CarID]int64
}

func newConnectedAcc(period simtime.Period) *connectedAcc {
	return &connectedAcc{
		period:   period,
		fullSec:  make(map[cdr.CarID]int64),
		truncSec: make(map[cdr.CarID]int64),
	}
}

func (a *connectedAcc) Stage() string { return "connected" }

func (a *connectedAcc) Add(r cdr.Record) {
	sec := int64(r.Duration / time.Second)
	a.fullSec[r.Car] += sec
	a.truncSec[r.Car] += truncDur(sec, 600)
}

func (a *connectedAcc) Merge(other Accumulator) {
	o := mergeAs[*connectedAcc](other)
	for car, sec := range o.fullSec {
		a.fullSec[car] += sec
	}
	for car, sec := range o.truncSec {
		a.truncSec[car] += sec
	}
}

func (a *connectedAcc) Finalize(rep *Report) error {
	total := float64(a.period.Seconds())
	full := make([]float64, 0, len(a.fullSec))
	trunc := make([]float64, 0, len(a.truncSec))
	for car, sec := range a.fullSec {
		full = append(full, float64(sec)/total)
		trunc = append(trunc, float64(a.truncSec[car])/total)
	}
	ct := ConnectedTime{Full: stats.NewCDF(full), Truncated: stats.NewCDF(trunc)}
	if len(full) > 0 {
		ct.FullMean = ct.Full.Mean()
		ct.TruncMean = ct.Truncated.Mean()
		ct.FullP995 = ct.Full.Quantile(0.995)
		ct.TruncP995 = ct.Truncated.Quantile(0.995)
	}
	rep.Connected = ct
	return nil
}

// ---------------------------------------------------------------------------
// days — Figure 6

type daysAcc struct {
	period  simtime.Period
	carDays map[cdr.CarID]*daysBits
}

func newDaysAcc(period simtime.Period) *daysAcc {
	return &daysAcc{period: period, carDays: make(map[cdr.CarID]*daysBits)}
}

func (a *daysAcc) Stage() string { return "days" }

func (a *daysAcc) Add(r cdr.Record) {
	day := a.period.DayIndex(r.Start)
	if day < 0 {
		return
	}
	db := a.carDays[r.Car]
	if db == nil {
		db = &daysBits{}
		a.carDays[r.Car] = db
	}
	db.set(day)
}

func (a *daysAcc) Merge(other Accumulator) {
	o := mergeAs[*daysAcc](other)
	for car, db := range o.carDays {
		if own := a.carDays[car]; own != nil {
			own.or(db)
		} else {
			a.carDays[car] = db
		}
	}
}

// perCar returns the distinct-day count per car.
func (a *daysAcc) perCar() map[cdr.CarID]int {
	out := make(map[cdr.CarID]int, len(a.carDays))
	for car, db := range a.carDays {
		out[car] = db.count()
	}
	return out
}

func (a *daysAcc) Finalize(rep *Report) error {
	h := stats.NewHistogram(0.5, 1, a.period.Days())
	for _, db := range a.carDays {
		h.Add(float64(db.count()))
	}
	rep.DaysHist = h
	return nil
}

// ---------------------------------------------------------------------------
// busy — Figure 7

type busyAcc struct {
	ctx   Context
	busy  map[cdr.CarID]time.Duration
	total map[cdr.CarID]time.Duration
}

func newBusyAcc(ctx Context) *busyAcc {
	if ctx.Load == nil {
		panic("analysis: busy-time accumulation requires a load source")
	}
	return &busyAcc{
		ctx:   ctx,
		busy:  make(map[cdr.CarID]time.Duration),
		total: make(map[cdr.CarID]time.Duration),
	}
}

func (a *busyAcc) Stage() string { return "busy" }

func (a *busyAcc) Add(r cdr.Record) {
	busy, total := busyOverlap(a.ctx, r)
	if total > 0 {
		a.total[r.Car] += total
		a.busy[r.Car] += busy
	}
}

// busyOverlap apportions one record's connected time across the
// 15-minute bins it overlaps and splits it into busy vs total using
// the context's load source — the shared kernel of Figure 7 and the
// Table 2 segmentation.
func busyOverlap(ctx Context, r cdr.Record) (busy, total time.Duration) {
	thresh := ctx.Load.BusyThreshold()
	first, last := ctx.Period.BinRange(r.Start, r.Duration)
	for bin := first; bin < last; bin++ {
		overlap := ctx.Period.OverlapWithBin(bin, r.Start, r.Duration)
		if overlap <= 0 {
			continue
		}
		total += overlap
		if ctx.Load.Utilization(r.Cell, bin) > thresh {
			busy += overlap
		}
	}
	return busy, total
}

func (a *busyAcc) Merge(other Accumulator) {
	o := mergeAs[*busyAcc](other)
	for car, d := range o.busy {
		a.busy[car] += d
	}
	for car, d := range o.total {
		a.total[car] += d
	}
}

func (a *busyAcc) Finalize(rep *Report) error {
	bt := BusyTime{FracByCar: make(map[cdr.CarID]float64, len(a.total))}
	fracs := make([]float64, 0, len(a.total))
	var overHalf, allBusy int
	for car, tot := range a.total {
		if tot <= 0 {
			continue
		}
		f := float64(a.busy[car]) / float64(tot)
		bt.FracByCar[car] = f
		fracs = append(fracs, f)
		if f > 0.5 {
			overHalf++
		}
		if f >= 0.99 {
			allBusy++
		}
	}
	if len(fracs) > 0 {
		bt.Deciles = stats.Deciles(fracs)
		bt.OverHalf = float64(overHalf) / float64(len(fracs))
		bt.AllBusy = float64(allBusy) / float64(len(fracs))
	}
	rep.Busy = bt
	return nil
}

// ---------------------------------------------------------------------------
// segments — Table 2

// carSegState is one car's segmentation inputs: how many distinct
// study days it appeared, and how its binned connected time splits
// busy vs total.
type carSegState struct {
	days        daysBits
	busy, total time.Duration
}

type segmentsAcc struct {
	ctx      Context
	rareDays []int
	cars     map[cdr.CarID]*carSegState
}

func newSegmentsAcc(ctx Context, rareDays []int) *segmentsAcc {
	if ctx.Load == nil {
		panic("analysis: segmentation requires a load source")
	}
	return &segmentsAcc{ctx: ctx, rareDays: rareDays, cars: make(map[cdr.CarID]*carSegState)}
}

func (a *segmentsAcc) Stage() string { return "segments" }

func (a *segmentsAcc) Add(r cdr.Record) {
	st := a.cars[r.Car]
	if st == nil {
		st = &carSegState{}
		a.cars[r.Car] = st
	}
	if day := a.ctx.Period.DayIndex(r.Start); day >= 0 {
		st.days.set(day)
	}
	busy, total := busyOverlap(a.ctx, r)
	st.busy += busy
	st.total += total
}

func (a *segmentsAcc) Merge(other Accumulator) {
	o := mergeAs[*segmentsAcc](other)
	for car, st := range o.cars {
		own := a.cars[car]
		if own == nil {
			a.cars[car] = st
			continue
		}
		own.days.or(&st.days)
		own.busy += st.busy
		own.total += st.total
	}
}

func (a *segmentsAcc) Finalize(rep *Report) error {
	// The population is cars seen on at least one study day, matching
	// the Figure 6 universe.
	n := 0.0
	for _, st := range a.cars {
		if st.days.count() > 0 {
			n++
		}
	}
	out := make([]Segment, 0, len(a.rareDays))
	for _, rd := range a.rareDays {
		seg := Segment{RareDays: rd}
		if n == 0 {
			out = append(out, seg)
			continue
		}
		for _, st := range a.cars {
			d := st.days.count()
			if d == 0 {
				continue
			}
			f := 0.0
			classified := st.total > 0
			if classified {
				f = float64(st.busy) / float64(st.total)
			}
			var bucket *float64
			rare := d <= rd
			switch {
			case classified && f >= BusyCarMinFrac:
				if rare {
					bucket = &seg.RareBusy
				} else {
					bucket = &seg.CommonBusy
				}
			case !classified || f <= NonBusyCarMaxFrac:
				if rare {
					bucket = &seg.RareNonBusy
				} else {
					bucket = &seg.CommonNonBusy
				}
			default:
				if rare {
					bucket = &seg.RareBoth
				} else {
					bucket = &seg.CommonBoth
				}
			}
			*bucket += 1 / n
		}
		out = append(out, seg)
	}
	rep.Segments = out
	return nil
}

// ---------------------------------------------------------------------------
// durations — Figure 9

// durSampleCap bounds the exact duration sample: populations at or
// below it yield exact quantiles and an exact CDF; above it the CDF is
// a uniform 32k-record sample and the quantiles come from the
// log-histogram sketch (±one ~7% bin).
const durSampleCap = 1 << 15

type durationsAcc struct {
	hist   stats.LogHist // truncated durations, for sketched quantiles
	sample *stats.Sample // truncated durations, for the CDF (exact when complete)

	n                   int64
	fullSec, fullNano   int64 // exact sums of raw durations
	truncSec, truncNano int64 // exact sums of 600 s-truncated durations
}

func newDurationsAcc() *durationsAcc {
	return &durationsAcc{sample: stats.NewSample(durSampleCap)}
}

func (a *durationsAcc) Stage() string { return "durations" }

func (a *durationsAcc) Add(r cdr.Record) {
	d := r.Duration
	td := d
	if td > clean.TruncateLimit {
		td = clean.TruncateLimit
	}
	a.n++
	a.fullSec += int64(d / time.Second)
	a.fullNano += int64(d % time.Second)
	a.truncSec += int64(td / time.Second)
	a.truncNano += int64(td % time.Second)
	a.hist.Add(td.Seconds())
	a.sample.Add(cdr.RecordHash(r), td.Seconds())
}

func (a *durationsAcc) Merge(other Accumulator) {
	o := mergeAs[*durationsAcc](other)
	a.hist.Merge(&o.hist)
	a.sample.Merge(o.sample)
	a.n += o.n
	a.fullSec += o.fullSec
	a.fullNano += o.fullNano
	a.truncSec += o.truncSec
	a.truncNano += o.truncNano
}

func (a *durationsAcc) Finalize(rep *Report) error {
	values := a.sample.Values()
	cd := CellDurations{Truncated: stats.NewCDF(values)}
	if a.n > 0 {
		if a.sample.Complete() {
			cd.Median = cd.Truncated.Quantile(0.5)
			cd.P73 = cd.Truncated.Quantile(0.73)
		} else {
			limit := clean.TruncateLimit.Seconds()
			cd.Median = minF(a.hist.Quantile(0.5), limit)
			cd.P73 = minF(a.hist.Quantile(0.73), limit)
		}
		nf := float64(a.n)
		cd.FullMean = (float64(a.fullSec) + float64(a.fullNano)*1e-9) / nf
		cd.TruncMean = (float64(a.truncSec) + float64(a.truncNano)*1e-9) / nf
	}
	rep.Durations = cd
	return nil
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// ---------------------------------------------------------------------------
// handovers — §4.5

type handoverAcc struct {
	// truncate applies the paper's 600 s cap before sessionizing, as
	// the full pipeline does; the standalone HandoversOf keeps the
	// caller's durations.
	truncate bool
	z        *clean.Sessionizer
	byKind   map[radio.HandoverKind]int64
	counts   []float64
	// trackHeads defers accounting of each car's first closed session
	// into heads, keeping it stitchable by MergeOrdered (see
	// ordered.go). Nil heads means tracking is off.
	trackHeads bool
	heads      map[cdr.CarID]*clean.Session
}

func newHandoverAcc(truncate bool) *handoverAcc {
	return &handoverAcc{
		truncate: truncate,
		z:        clean.NewSessionizer(clean.MobilityGap),
		byKind:   make(map[radio.HandoverKind]int64),
	}
}

func (a *handoverAcc) setTrackHeads(on bool) {
	a.trackHeads = on
	if on && a.heads == nil {
		a.heads = make(map[cdr.CarID]*clean.Session)
	}
}

func (a *handoverAcc) Stage() string { return "handovers" }

func (a *handoverAcc) Add(r cdr.Record) {
	if a.truncate && r.Duration > clean.TruncateLimit {
		r.Duration = clean.TruncateLimit
	}
	if s := a.z.Add(r); s != nil {
		a.closeSession(s)
	}
}

// closeSession routes a closed session: with head tracking on, each
// car's first closed session is stashed unaccounted (it may still join
// the open tail of an earlier time slice); everything else is
// accounted immediately.
func (a *handoverAcc) closeSession(s *clean.Session) {
	if a.trackHeads {
		if _, seen := a.heads[s.Car]; !seen {
			a.heads[s.Car] = s
			return
		}
	}
	a.account(s)
}

func (a *handoverAcc) account(s *clean.Session) {
	n := 0
	for kind, c := range s.Handovers() {
		a.byKind[kind] += int64(c)
		n += c
	}
	a.counts = append(a.counts, float64(n))
}

func (a *handoverAcc) Merge(other Accumulator) {
	o := mergeAs[*handoverAcc](other)
	// Car-disjoint merge: the other shard's heads stay heads (still the
	// first session of cars this side has never seen), and its open
	// sessions are closed as the contract's "stream complete" demands —
	// routed through closeSession so a car whose only session was open
	// keeps a stitchable head.
	for _, car := range sortedKeys(o.heads) {
		h := o.heads[car]
		if a.trackHeads {
			if _, seen := a.heads[car]; !seen {
				a.heads[car] = h
				continue
			}
		}
		a.account(h)
	}
	for _, s := range o.z.Flush() {
		s := s
		a.closeSession(&s)
	}
	for kind, c := range o.byKind {
		a.byKind[kind] += c
	}
	a.counts = append(a.counts, o.counts...)
}

func (a *handoverAcc) Finalize(rep *Report) error {
	// Work on copies so unaccounted sessions (stashed heads, still-open
	// tails) are counted without being closed — Finalize must stay
	// repeatable.
	byKind := make(map[radio.HandoverKind]int64, len(a.byKind))
	for k, v := range a.byKind {
		byKind[k] = v
	}
	counts := append([]float64(nil), a.counts...)
	countInto := func(s *clean.Session) {
		n := 0
		for kind, c := range s.Handovers() {
			byKind[kind] += int64(c)
			n += c
		}
		counts = append(counts, float64(n))
	}
	for _, car := range sortedKeys(a.heads) {
		countInto(a.heads[car])
	}
	open := a.z.Snapshot()
	for i := range open {
		countInto(&open[i])
	}

	hs := HandoverStats{ByKind: byKind, Sessions: len(counts)}
	hs.PerSession = stats.NewCDF(counts)
	if len(counts) > 0 {
		hs.Median = hs.PerSession.Quantile(0.5)
		hs.P70 = hs.PerSession.Quantile(0.7)
		hs.P90 = hs.PerSession.Quantile(0.9)
	}
	rep.Handovers = hs
	return nil
}

// ---------------------------------------------------------------------------
// carriers — Table 3

type carriersAcc struct {
	carsOn  map[radio.CarrierID]map[cdr.CarID]struct{}
	timeOn  map[radio.CarrierID]time.Duration
	allCars map[cdr.CarID]struct{}
	total   time.Duration
}

func newCarriersAcc() *carriersAcc {
	return &carriersAcc{
		carsOn:  make(map[radio.CarrierID]map[cdr.CarID]struct{}),
		timeOn:  make(map[radio.CarrierID]time.Duration),
		allCars: make(map[cdr.CarID]struct{}),
	}
}

func (a *carriersAcc) Stage() string { return "carriers" }

func (a *carriersAcc) Add(r cdr.Record) {
	c := r.Cell.Carrier()
	set, ok := a.carsOn[c]
	if !ok {
		set = make(map[cdr.CarID]struct{})
		a.carsOn[c] = set
	}
	set[r.Car] = struct{}{}
	a.allCars[r.Car] = struct{}{}
	a.timeOn[c] += r.Duration
	a.total += r.Duration
}

func (a *carriersAcc) Merge(other Accumulator) {
	o := mergeAs[*carriersAcc](other)
	for c, set := range o.carsOn {
		own, ok := a.carsOn[c]
		if !ok {
			a.carsOn[c] = set
			continue
		}
		for car := range set {
			own[car] = struct{}{}
		}
	}
	for car := range o.allCars {
		a.allCars[car] = struct{}{}
	}
	for c, d := range o.timeOn {
		a.timeOn[c] += d
	}
	a.total += o.total
}

func (a *carriersAcc) Finalize(rep *Report) error {
	u := CarrierUsage{
		CarsFrac:  make(map[radio.CarrierID]float64, radio.NumCarriers),
		TimeFrac:  make(map[radio.CarrierID]float64, radio.NumCarriers),
		TotalCars: len(a.allCars),
	}
	for c := radio.C1; c <= radio.C5; c++ {
		if len(a.allCars) > 0 {
			u.CarsFrac[c] = float64(len(a.carsOn[c])) / float64(len(a.allCars))
		}
		if a.total > 0 {
			u.TimeFrac[c] = float64(a.timeOn[c]) / float64(a.total)
		}
	}
	rep.Carriers = u
	return nil
}

// ---------------------------------------------------------------------------
// usage — fleet-aggregate 24×7 matrix (the Figure 4/5 encoding over
// the whole population)

type usageAcc struct {
	tzOffset int
	z        *clean.Sessionizer
	matrix   simtime.WeekMatrix
	sessions int64
	// trackHeads mirrors handoverAcc: each car's first closed session
	// is stashed for ordered-merge stitching instead of being marked
	// into the matrix immediately.
	trackHeads bool
	heads      map[cdr.CarID]*clean.Session
}

func newUsageAcc(tzOffsetSeconds int) *usageAcc {
	return &usageAcc{tzOffset: tzOffsetSeconds, z: clean.NewSessionizer(clean.AggregateGap)}
}

func (a *usageAcc) setTrackHeads(on bool) {
	a.trackHeads = on
	if on && a.heads == nil {
		a.heads = make(map[cdr.CarID]*clean.Session)
	}
}

func (a *usageAcc) Stage() string { return "usage" }

func (a *usageAcc) Add(r cdr.Record) {
	if s := a.z.Add(r); s != nil {
		a.closeSession(s)
	}
}

// closeSession mirrors handoverAcc.closeSession: first closed session
// per car becomes the stitchable head under tracking, the rest are
// accounted.
func (a *usageAcc) closeSession(s *clean.Session) {
	if a.trackHeads {
		if _, seen := a.heads[s.Car]; !seen {
			a.heads[s.Car] = s
			return
		}
	}
	a.account(s)
}

func (a *usageAcc) account(s *clean.Session) {
	markSessionHours(&a.matrix, s, a.tzOffset)
	a.sessions++
}

// markSessionHours marks every local hour-of-week a session touches,
// once per session — the Figure 5 encoding.
func markSessionHours(m *simtime.WeekMatrix, s *clean.Session, tzOffsetSeconds int) {
	start := s.Start
	end := s.End
	if end.Sub(start) > 7*24*time.Hour {
		end = start.Add(7 * 24 * time.Hour) // cap runaway stuck sessions
	}
	// Walk hour boundaries so each touched hour is marked exactly
	// once per session; the truncated first step guarantees the
	// starting hour is included even for sub-hour sessions.
	seen := make(map[int]struct{}, 4)
	for t := start.Truncate(time.Hour); t.Before(end); t = t.Add(time.Hour) {
		how := simtime.HourOfWeek(t, tzOffsetSeconds)
		if _, ok := seen[how]; !ok {
			seen[how] = struct{}{}
			m.AddHourOfWeek(how, 1)
		}
	}
}

func (a *usageAcc) Merge(other Accumulator) {
	o := mergeAs[*usageAcc](other)
	// Car-disjoint merge; see handoverAcc.Merge for the head routing.
	for _, car := range sortedKeys(o.heads) {
		h := o.heads[car]
		if a.trackHeads {
			if _, seen := a.heads[car]; !seen {
				a.heads[car] = h
				continue
			}
		}
		a.account(h)
	}
	// The other shard's stream is complete: close its open sessions.
	for _, s := range o.z.Flush() {
		s := s
		a.closeSession(&s)
	}
	a.matrix.Merge(&o.matrix)
	a.sessions += o.sessions
}

func (a *usageAcc) Finalize(rep *Report) error {
	// Count stashed heads and still-open sessions on a matrix copy so
	// Finalize stays repeatable as records keep arriving.
	m := a.matrix
	sessions := a.sessions
	for _, car := range sortedKeys(a.heads) {
		markSessionHours(&m, a.heads[car], a.tzOffset)
		sessions++
	}
	open := a.z.Snapshot()
	for i := range open {
		markSessionHours(&m, &open[i], a.tzOffset)
		sessions++
	}
	rep.FleetUsage = m
	rep.UsageSessions = sessions
	return nil
}

// ---------------------------------------------------------------------------
// clusters — Figure 11

type clustersAcc struct {
	ctx       Context
	seed      uint64
	busyCells []radio.CellKey
	idx       map[radio.CellKey]int
	perCell   [][]map[cdr.CarID]struct{}
}

func newClustersAcc(ctx Context, busyCells []radio.CellKey, seed uint64) *clustersAcc {
	a := &clustersAcc{
		ctx:       ctx,
		seed:      seed,
		busyCells: append([]radio.CellKey(nil), busyCells...),
		idx:       make(map[radio.CellKey]int, len(busyCells)),
		perCell:   make([][]map[cdr.CarID]struct{}, len(busyCells)),
	}
	for i, c := range a.busyCells {
		a.idx[c] = i
		a.perCell[i] = make([]map[cdr.CarID]struct{}, ctx.Period.NumBins())
	}
	return a
}

func (a *clustersAcc) Stage() string { return "clusters" }

func (a *clustersAcc) Add(r cdr.Record) {
	i, ok := a.idx[r.Cell]
	if !ok {
		return
	}
	first, last := a.ctx.Period.BinRange(r.Start, r.Duration)
	for b := first; b < last; b++ {
		if a.perCell[i][b] == nil {
			a.perCell[i][b] = make(map[cdr.CarID]struct{}, 4)
		}
		a.perCell[i][b][r.Car] = struct{}{}
	}
}

func (a *clustersAcc) Merge(other Accumulator) {
	o := mergeAs[*clustersAcc](other)
	for i := range a.perCell {
		for b, set := range o.perCell[i] {
			if set == nil {
				continue
			}
			own := a.perCell[i][b]
			if own == nil {
				a.perCell[i][b] = set
				continue
			}
			for car := range set {
				own[car] = struct{}{}
			}
		}
	}
}

func (a *clustersAcc) Finalize(rep *Report) error {
	rep.Clusters = a.finish(rand.New(rand.NewPCG(a.seed, 0xF16)))
	return nil
}

// finish folds the per-bin car sets into 96-bin mean-concurrency
// vectors and clusters them with k-means (k=2), reordering so cluster
// 0 has the smaller centroid peak. A fresh rng per call keeps
// Finalize repeatable.
func (a *clustersAcc) finish(rng *rand.Rand) BusyClusters {
	res := BusyClusters{}
	if len(a.busyCells) < 2 {
		return res
	}
	days := a.ctx.Period.Days()
	vectors := make([][]float64, len(a.busyCells))
	for i := range a.perCell {
		v := make([]float64, simtime.BinsPerDay)
		for b, set := range a.perCell[i] {
			v[b%simtime.BinsPerDay] += float64(len(set))
		}
		for b := range v {
			v[b] /= float64(days)
		}
		vectors[i] = v
	}

	km := stats.KMeans(vectors, 2, 100, rng)
	// Order clusters by centroid peak: cluster 0 = smaller.
	if maxOf(km.Centroids[0]) > maxOf(km.Centroids[1]) {
		km.Centroids[0], km.Centroids[1] = km.Centroids[1], km.Centroids[0]
		km.Sizes[0], km.Sizes[1] = km.Sizes[1], km.Sizes[0]
		for i := range km.Assignments {
			km.Assignments[i] = 1 - km.Assignments[i]
		}
	}
	res.Cells = append([]radio.CellKey(nil), a.busyCells...)
	res.Vectors = vectors
	res.Assignments = km.Assignments
	res.Sizes = km.Sizes
	res.Centroids = km.Centroids
	return res
}
