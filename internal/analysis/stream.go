package analysis

import (
	"errors"
	"io"
	"math"
	"time"

	"cellcars/internal/cdr"
	"cellcars/internal/clean"
	"cellcars/internal/radio"
	"cellcars/internal/simtime"
	"cellcars/internal/stats"
)

// Streaming is a single-pass, bounded-memory analyzer for data sets
// too large to hold in memory — the paper's own scale is 1.1 billion
// records. It accumulates the record-level analyses (Figure 2/Table 1
// presence, Figure 3 connected time, Figure 6 days histogram, Figure 9
// durations, Table 3 carriers) with O(cars + cells) state; the
// duration distribution uses a logarithmic histogram, so its quantiles
// are approximate to one bin width (~7%).
//
// Feed records in any order with Add (the erroneous one-hour ghosts
// are filtered inline), then call Finalize.
type Streaming struct {
	period simtime.Period

	records int64
	ghosts  int64

	carDays  map[cdr.CarID]*daysBits
	cellDays map[radio.CellKey]*daysBits
	carsDay  []int
	cellsDay []int

	fullSec  map[cdr.CarID]int64
	truncSec map[cdr.CarID]int64

	carrierTime map[radio.CarrierID]time.Duration
	carrierCars map[radio.CarrierID]map[cdr.CarID]struct{}
	totalTime   time.Duration

	durHist *logHist
	durFull stats.Moments
	durTrnc stats.Moments
}

// daysBits is a variable-length day bitmap.
type daysBits struct {
	bits []uint64
}

func (d *daysBits) set(day int) bool {
	w, b := day/64, uint(day%64)
	for len(d.bits) <= w {
		d.bits = append(d.bits, 0)
	}
	if d.bits[w]&(1<<b) != 0 {
		return false
	}
	d.bits[w] |= 1 << b
	return true
}

func (d *daysBits) count() int {
	n := 0
	for _, w := range d.bits {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// NewStreaming returns an empty accumulator over the period.
func NewStreaming(period simtime.Period) *Streaming {
	return &Streaming{
		period:      period,
		carDays:     make(map[cdr.CarID]*daysBits),
		cellDays:    make(map[radio.CellKey]*daysBits),
		carsDay:     make([]int, period.Days()),
		cellsDay:    make([]int, period.Days()),
		fullSec:     make(map[cdr.CarID]int64),
		truncSec:    make(map[cdr.CarID]int64),
		carrierTime: make(map[radio.CarrierID]time.Duration),
		carrierCars: make(map[radio.CarrierID]map[cdr.CarID]struct{}),
		durHist:     newLogHist(),
	}
}

// Add accumulates one raw record; exactly-one-hour ghosts are dropped
// inline, mirroring the paper's §3 preprocessing.
func (s *Streaming) Add(r cdr.Record) {
	if r.Duration == clean.GhostDuration {
		s.ghosts++
		return
	}
	s.records++

	day := s.period.DayIndex(r.Start)
	if day >= 0 {
		db := s.carDays[r.Car]
		if db == nil {
			db = &daysBits{}
			s.carDays[r.Car] = db
		}
		if db.set(day) {
			s.carsDay[day]++
		}
		cb := s.cellDays[r.Cell]
		if cb == nil {
			cb = &daysBits{}
			s.cellDays[r.Cell] = cb
		}
		if cb.set(day) {
			s.cellsDay[day]++
		}
	}

	sec := int64(r.Duration / time.Second)
	s.fullSec[r.Car] += sec
	s.truncSec[r.Car] += truncDur(sec, 600)

	c := r.Cell.Carrier()
	s.carrierTime[c] += r.Duration
	s.totalTime += r.Duration
	set := s.carrierCars[c]
	if set == nil {
		set = make(map[cdr.CarID]struct{})
		s.carrierCars[c] = set
	}
	set[r.Car] = struct{}{}

	s.durHist.add(float64(sec))
	s.durFull.Add(float64(sec))
	s.durTrnc.Add(float64(truncDur(sec, 600)))
}

// AddAll drains a reader into the accumulator.
func (s *Streaming) AddAll(r cdr.Reader) error {
	for {
		rec, err := r.Read()
		if err != nil {
			if isEOF(err) {
				return nil
			}
			return err
		}
		s.Add(rec)
	}
}

// StreamReport is the Finalize output: the record-level subset of
// Report, with approximate duration quantiles.
type StreamReport struct {
	Records, GhostsDropped int64

	Presence    DailyPresence
	WeekdayRows []WeekdayRow

	Connected ConnectedTime

	// DaysCount[n] is the number of cars seen on exactly n+1 days.
	DaysCount []int64

	Carriers CarrierUsage

	// DurMedian and DurP73 are log-histogram-approximate quantiles of
	// the truncated per-cell durations; DurFullMean and DurTruncMean
	// are exact.
	DurMedian, DurP73         float64
	DurFullMean, DurTruncMean float64
}

// Finalize computes the report. The accumulator remains usable (more
// Adds re-finalize cleanly).
func (s *Streaming) Finalize() StreamReport {
	rep := StreamReport{Records: s.records, GhostsDropped: s.ghosts}

	// Presence.
	days := s.period.Days()
	p := DailyPresence{
		TotalCars:  len(s.carDays),
		TotalCells: len(s.cellDays),
		CarsFrac:   make([]float64, days),
		CellsFrac:  make([]float64, days),
	}
	xs := make([]float64, days)
	for d := 0; d < days; d++ {
		xs[d] = float64(d)
		if p.TotalCars > 0 {
			p.CarsFrac[d] = float64(s.carsDay[d]) / float64(p.TotalCars)
		}
		if p.TotalCells > 0 {
			p.CellsFrac[d] = float64(s.cellsDay[d]) / float64(p.TotalCells)
		}
	}
	p.CarsTrend = stats.Fit(xs, p.CarsFrac)
	p.CellsTrend = stats.Fit(xs, p.CellsFrac)
	rep.Presence = p
	rep.WeekdayRows = Table1(p, s.period)

	// Connected time.
	total := float64(s.period.Seconds())
	full := make([]float64, 0, len(s.fullSec))
	trunc := make([]float64, 0, len(s.truncSec))
	for car, sec := range s.fullSec {
		full = append(full, float64(sec)/total)
		trunc = append(trunc, float64(s.truncSec[car])/total)
	}
	rep.Connected = ConnectedTime{Full: stats.NewCDF(full), Truncated: stats.NewCDF(trunc)}
	if len(full) > 0 {
		rep.Connected.FullMean = rep.Connected.Full.Mean()
		rep.Connected.TruncMean = rep.Connected.Truncated.Mean()
		rep.Connected.FullP995 = rep.Connected.Full.Quantile(0.995)
		rep.Connected.TruncP995 = rep.Connected.Truncated.Quantile(0.995)
	}

	// Days histogram.
	rep.DaysCount = make([]int64, days)
	for _, db := range s.carDays {
		n := db.count()
		if n >= 1 && n <= days {
			rep.DaysCount[n-1]++
		}
	}

	// Carriers.
	u := CarrierUsage{
		CarsFrac:  make(map[radio.CarrierID]float64, radio.NumCarriers),
		TimeFrac:  make(map[radio.CarrierID]float64, radio.NumCarriers),
		TotalCars: len(s.carDays),
	}
	for c := radio.C1; c <= radio.C5; c++ {
		if u.TotalCars > 0 {
			u.CarsFrac[c] = float64(len(s.carrierCars[c])) / float64(u.TotalCars)
		}
		if s.totalTime > 0 {
			u.TimeFrac[c] = float64(s.carrierTime[c]) / float64(s.totalTime)
		}
	}
	rep.Carriers = u

	// Durations.
	rep.DurMedian = math.Min(s.durHist.quantile(0.5), 600)
	rep.DurP73 = math.Min(s.durHist.quantile(0.73), 600)
	rep.DurFullMean = s.durFull.Mean()
	rep.DurTruncMean = s.durTrnc.Mean()
	return rep
}

// logHist is a logarithmic histogram over durations 1 s .. ~86400 s
// with ~7% bin width.
type logHist struct {
	counts []int64
	total  int64
	zero   int64
}

const (
	logHistBase = 1.07
	logHistBins = 170 // 1.07^170 ≈ 1e5 s
)

func newLogHist() *logHist {
	return &logHist{counts: make([]int64, logHistBins)}
}

func (h *logHist) add(sec float64) {
	if sec < 1 {
		h.zero++
		h.total++
		return
	}
	bin := int(math.Log(sec) / math.Log(logHistBase))
	if bin >= logHistBins {
		bin = logHistBins - 1
	}
	h.counts[bin]++
	h.total++
}

// quantile returns the approximate q-quantile in seconds.
func (h *logHist) quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	target := int64(q * float64(h.total))
	cum := h.zero
	if cum > target {
		return 0
	}
	for bin, c := range h.counts {
		cum += c
		if cum > target {
			// Bin midpoint in log space.
			return math.Pow(logHistBase, float64(bin)+0.5)
		}
	}
	return math.Pow(logHistBase, logHistBins)
}

func isEOF(err error) bool { return errors.Is(err, io.EOF) }
