package analysis

import (
	"cellcars/internal/cdr"
	"cellcars/internal/simtime"
)

// Streaming is a single-pass, bounded-memory analyzer for data sets
// too large to hold in memory — the paper's own scale is 1.1 billion
// records. It is a thin adapter over the same accumulator set the
// batch pipeline and the parallel Engine use, so every covered stage
// (Figure 2/Table 1 presence, Figure 3 connected time, Figure 6 days
// histogram, Table 2 segmentation, Figure 7 busy time, Figure 9
// durations, §4.5 handovers, Table 3 carriers, fleet usage matrix)
// is computed by exactly the code Run uses. Duration quantiles fall
// back to a logarithmic sketch (~7% bin width) beyond the exact-sample
// capacity; everything else is exact.
//
// Feed records in time order with Add (the erroneous one-hour ghosts
// are filtered inline, and records outside the study period are
// excluded and counted — see Engine for the policy), then call
// Finalize. The load-dependent stages (Table 2, Figure 7) run only
// when constructed with a load source via NewStreamingWithContext.
type Streaming struct {
	ctx  Context
	opts EngineOptions
	set  *accumSet
}

// NewStreaming returns an empty accumulator over the period. The
// load-dependent stages (segments, busy, clusters) are disabled;
// use NewStreamingWithContext to enable them.
func NewStreaming(period simtime.Period) *Streaming {
	return NewStreamingWithContext(Context{Period: period})
}

// NewStreamingWithContext returns an empty accumulator with full
// context: a load source enables the Table 2 and Figure 7 stages.
// Options take their defaults (RareDays {10, 30}, Seed 1); use
// NewStreamingWithOptions to override them.
func NewStreamingWithContext(ctx Context) *Streaming {
	return NewStreamingWithOptions(ctx, RunOptions{})
}

// NewStreamingWithOptions returns an empty accumulator with explicit
// run options — rare-day thresholds, clustering cells and seed, the
// FailStage chaos hook. Zero-value options default as in NewEngine.
// Workers is ignored: a Streaming accumulator is one worker's set.
func NewStreamingWithOptions(ctx Context, opts RunOptions) *Streaming {
	if opts.RareDays == nil {
		opts.RareDays = []int{10, 30}
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	eo := EngineOptions{RunOptions: opts, Workers: 1}
	return &Streaming{ctx: ctx, opts: eo, set: newAccumSet(ctx, eo, 0)}
}

// Add accumulates one raw record; exactly-one-hour ghosts are dropped
// inline, mirroring the paper's §3 preprocessing.
func (s *Streaming) Add(r cdr.Record) {
	s.set.add(r)
}

// AddAll drains a reader into the accumulator.
func (s *Streaming) AddAll(r cdr.Reader) error {
	return s.set.addReader(r)
}

// StreamReport is the Finalize output: the streaming-covered subset of
// Report, with possibly sketched duration quantiles.
type StreamReport struct {
	// Records counts ghost-free records seen; GhostsDropped the ghosts;
	// OutOfPeriod the ghost-free records excluded for starting outside
	// the study period.
	Records, GhostsDropped int64
	OutOfPeriod            int64

	Presence    DailyPresence
	WeekdayRows []WeekdayRow

	Connected ConnectedTime

	// DaysCount[n] is the number of cars seen on exactly n+1 days.
	DaysCount []int64

	// Segments and Busy are populated only when a load source was
	// provided at construction.
	Segments []Segment
	Busy     BusyTime

	Handovers HandoverStats

	Carriers CarrierUsage

	// FleetUsage and UsageSessions mirror Report.
	FleetUsage    simtime.WeekMatrix
	UsageSessions int64

	// DurMedian and DurP73 are quantiles of the truncated per-cell
	// durations — exact while the population fits the duration sample,
	// log-histogram-approximate (~7%) beyond it. DurFullMean and
	// DurTruncMean are always exact.
	DurMedian, DurP73         float64
	DurFullMean, DurTruncMean float64

	// StageErrors lists stages that failed and were skipped.
	StageErrors []StageError

	// Profile mirrors Report.Profile: the per-stage cost table, present
	// only when the run was observed (RunOptions.Obs).
	Profile []StageProfile
}

// Finalize computes the report. The accumulator remains usable (more
// Adds re-finalize cleanly).
func (s *Streaming) Finalize() StreamReport {
	rep := s.set.finalize()
	out := StreamReport{
		Records:       s.set.raw - s.set.ghosts,
		GhostsDropped: s.set.ghosts,
		OutOfPeriod:   rep.OutOfPeriod,
		Presence:      rep.Presence,
		WeekdayRows:   rep.WeekdayRows,
		Connected:     rep.Connected,
		Segments:      rep.Segments,
		Busy:          rep.Busy,
		Handovers:     rep.Handovers,
		Carriers:      rep.Carriers,
		FleetUsage:    rep.FleetUsage,
		UsageSessions: rep.UsageSessions,
		DurMedian:     rep.Durations.Median,
		DurP73:        rep.Durations.P73,
		DurFullMean:   rep.Durations.FullMean,
		DurTruncMean:  rep.Durations.TruncMean,
		StageErrors:   rep.StageErrors,
		Profile:       rep.Profile,
	}
	if rep.DaysHist != nil {
		out.DaysCount = append([]int64(nil), rep.DaysHist.Counts...)
	} else {
		out.DaysCount = make([]int64, s.set.period.Days())
	}
	return out
}
