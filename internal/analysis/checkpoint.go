package analysis

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"slices"
	"strings"
	"sync"
	"time"

	"cellcars/internal/cdr"
	"cellcars/internal/obs"
	"cellcars/internal/radio"
	"cellcars/internal/simtime"
	"cellcars/internal/snapshot"
)

// This file is the durable-state layer over the accumulator engine:
// it frames every worker's partial stage state into a versioned
// snapshot file (package snapshot), drives periodic checkpointing of
// Engine and Streaming runs with atomic write-rename and a
// record-offset watermark, and implements the map-reduce workflow —
// per-shard partials (caranalyze -partial) merged and finalized by
// carmerge. Because the accumulators merge by car-disjoint union, a
// resumed or merged run finalizes to a report bit-identical with an
// uninterrupted single-process run.
//
// Snapshot file layout (inside the snapshot container):
//
//	"header"  study configuration + worker count + watermark
//	"worker"  one per worker set: index, ingest counters, stage errors
//	"stage:X" one per live stage of the preceding worker, in
//	          engineStageOrder, payload = the accumulator's SnapshotTo
//
// The header pins everything that must match for two snapshots to be
// mergeable or for a checkpoint to be resumable: study period, time
// zone, rare-day thresholds, clustering seed and cell set, and whether
// the load-dependent stages ran. The watermark is the count of raw
// records consumed; resuming skips exactly that many records of the
// re-opened stream.

// ErrCheckpointStop reports that a checkpointed run stopped on its
// trigger after writing a final checkpoint, rather than reaching the
// end of its input.
var ErrCheckpointStop = errors.New("analysis: run stopped at checkpoint trigger")

// CheckpointConfig configures periodic state snapshots of a run.
type CheckpointConfig struct {
	// Path is the snapshot file. Checkpoints replace it atomically
	// (write to Path+".tmp", fsync, rename). Empty disables writes.
	Path string
	// Every writes a checkpoint after each N raw records consumed.
	// Zero means no periodic checkpoints (trigger-only).
	Every int64
	// Trigger, when it becomes readable, makes the run write a final
	// checkpoint and stop with ErrCheckpointStop — the SIGTERM hook.
	Trigger <-chan struct{}
	// Resume restores state from Path before consuming the input and
	// skips the watermark's worth of records. A missing file starts a
	// fresh run, so a crash-restart loop needs no first-run special
	// case.
	Resume bool
}

// SnapshotHeader is the study configuration a snapshot was produced
// under, plus its progress watermark. Two snapshots are mergeable, and
// a checkpoint resumable, only when the configuration fields agree.
type SnapshotHeader struct {
	PeriodStart     time.Time
	PeriodDays      int
	TZOffsetSeconds int
	Seed            uint64
	RareDays        []int
	BusyCells       []radio.CellKey
	// Workers is the accumulator-set count stored in the file.
	Workers int
	// Watermark counts raw input records consumed when the snapshot
	// was taken.
	Watermark int64
	// HasLoad records whether the load-dependent stages (segments,
	// busy, clusters) were running.
	HasLoad bool
}

// Period reconstructs the study period the snapshot was taken under.
func (h SnapshotHeader) Period() simtime.Period {
	return simtime.NewPeriod(h.PeriodStart, h.PeriodDays)
}

// sameStudy reports whether two snapshots were produced under the same
// study configuration — the precondition for merging them.
func (h SnapshotHeader) sameStudy(o SnapshotHeader) error {
	switch {
	case !h.PeriodStart.Equal(o.PeriodStart) || h.PeriodDays != o.PeriodDays:
		return fmt.Errorf("analysis: study periods differ (%s+%dd vs %s+%dd)",
			h.PeriodStart.Format("2006-01-02"), h.PeriodDays,
			o.PeriodStart.Format("2006-01-02"), o.PeriodDays)
	case h.TZOffsetSeconds != o.TZOffsetSeconds:
		return fmt.Errorf("analysis: time-zone offsets differ (%d vs %d)", h.TZOffsetSeconds, o.TZOffsetSeconds)
	case h.Seed != o.Seed:
		return fmt.Errorf("analysis: clustering seeds differ (%d vs %d)", h.Seed, o.Seed)
	case !slices.Equal(h.RareDays, o.RareDays):
		return fmt.Errorf("analysis: rare-day thresholds differ (%v vs %v)", h.RareDays, o.RareDays)
	case !slices.Equal(h.BusyCells, o.BusyCells):
		return fmt.Errorf("analysis: busy-cell sets differ (%d vs %d cells)", len(h.BusyCells), len(o.BusyCells))
	case h.HasLoad != o.HasLoad:
		return fmt.Errorf("analysis: load-dependent stages ran in one snapshot but not the other")
	}
	return nil
}

func headerFor(ctx Context, opts EngineOptions, workers int, watermark int64) SnapshotHeader {
	return SnapshotHeader{
		PeriodStart:     ctx.Period.Start(),
		PeriodDays:      ctx.Period.Days(),
		TZOffsetSeconds: ctx.TZOffsetSeconds,
		Seed:            opts.Seed,
		RareDays:        opts.RareDays,
		BusyCells:       opts.BusyCells,
		Workers:         workers,
		Watermark:       watermark,
		HasLoad:         ctx.Load != nil,
	}
}

const (
	maxHeaderDays    = 36500
	maxHeaderWorkers = 1 << 12
	maxHeaderRare    = 1024
	maxHeaderCells   = 1 << 20
	// maxStageErrLen truncates stored stage-error messages to fit the
	// codec's string limit.
	maxStageErrLen = 200
)

func encodeHeader(e *snapshot.Encoder, h SnapshotHeader) {
	e.Varint(h.PeriodStart.Unix())
	e.Uvarint(uint64(h.PeriodDays))
	e.Varint(int64(h.TZOffsetSeconds))
	e.Uvarint(h.Seed)
	e.Uvarint(uint64(len(h.RareDays)))
	for _, rd := range h.RareDays {
		e.Varint(int64(rd))
	}
	e.Uvarint(uint64(len(h.BusyCells)))
	for _, c := range h.BusyCells {
		e.Uvarint(uint64(c))
	}
	e.Uvarint(uint64(h.Workers))
	e.Varint(h.Watermark)
	e.Bool(h.HasLoad)
}

func decodeHeader(payload []byte) (SnapshotHeader, error) {
	d := snapshot.NewDecoder(bytes.NewReader(payload))
	var h SnapshotHeader
	h.PeriodStart = time.Unix(d.Varint(), 0).UTC()
	h.PeriodDays = d.Len(maxHeaderDays)
	h.TZOffsetSeconds = int(d.Varint())
	h.Seed = d.Uvarint()
	nr := d.Len(maxHeaderRare)
	for i := 0; i < nr && d.Err() == nil; i++ {
		h.RareDays = append(h.RareDays, int(d.Varint()))
	}
	ncells := d.Len(maxHeaderCells)
	for i := 0; i < ncells && d.Err() == nil; i++ {
		h.BusyCells = append(h.BusyCells, radio.CellKey(d.Uvarint()))
	}
	h.Workers = d.Len(maxHeaderWorkers)
	h.Watermark = d.Varint()
	h.HasLoad = d.Bool()
	if d.Err() != nil {
		return h, d.Err()
	}
	if h.PeriodDays < 1 {
		d.Failf("header period of %d days", h.PeriodDays)
	}
	if h.Workers < 1 {
		d.Failf("header worker count %d", h.Workers)
	}
	if h.Watermark < 0 {
		d.Failf("header watermark %d negative", h.Watermark)
	}
	return h, d.Err()
}

// expectedStages returns the stage set a snapshot's configuration
// enables; restore demands a frame (or a recorded failure) for exactly
// these.
func expectedStages(h SnapshotHeader) map[string]bool {
	exp := map[string]bool{
		"presence": true, "connected": true, "days": true,
		"durations": true, "handovers": true, "carriers": true, "usage": true,
	}
	if h.HasLoad {
		exp["segments"], exp["busy"] = true, true
		if len(h.BusyCells) >= 2 {
			exp["clusters"] = true
		}
	}
	return exp
}

func stageIndex(name string) int {
	for i, s := range engineStageOrder {
		if s == name {
			return i
		}
	}
	return -1
}

// newStageForRestore constructs an empty accumulator for a stage being
// restored. Unlike newAccumSet it does not gate the load-dependent
// stages on ctx.Load: restore followed by Merge/Finalize never calls
// Add, which is the only path that touches the load source — this is
// what lets carmerge finalize partials without re-opening load data.
func newStageForRestore(ctx Context, opts EngineOptions, name string) Accumulator {
	switch name {
	case "presence":
		return newPresenceAcc(ctx.Period)
	case "connected":
		return newConnectedAcc(ctx.Period)
	case "days":
		return newDaysAcc(ctx.Period)
	case "segments":
		return &segmentsAcc{ctx: ctx, rareDays: opts.RareDays, cars: make(map[cdr.CarID]*carSegState)}
	case "busy":
		return &busyAcc{ctx: ctx, busy: make(map[cdr.CarID]time.Duration), total: make(map[cdr.CarID]time.Duration)}
	case "durations":
		return newDurationsAcc()
	case "handovers":
		return newHandoverAcc(true)
	case "carriers":
		return newCarriersAcc()
	case "usage":
		return newUsageAcc(ctx.TZOffsetSeconds)
	case "clusters":
		return newClustersAcc(ctx, opts.BusyCells, opts.Seed)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Snapshot writing

// writeSnapshotStream frames the header and every worker set into w.
func writeSnapshotStream(w io.Writer, hdr SnapshotHeader, sets []*accumSet) error {
	sw := snapshot.NewWriter(w)
	enc := sw.Begin("header")
	encodeHeader(enc, hdr)
	sw.End()
	var buf bytes.Buffer
	for i, set := range sets {
		set.flush()
		enc := sw.Begin("worker")
		enc.Uvarint(uint64(i))
		enc.Varint(set.raw)
		enc.Varint(set.ghosts)
		enc.Varint(set.outOfPeriod)
		enc.Varint(set.accepted)
		enc.Uvarint(uint64(len(set.errs)))
		for _, se := range set.errs {
			msg := se.Err
			if len(msg) > maxStageErrLen {
				msg = msg[:maxStageErrLen]
			}
			enc.String(se.Stage)
			enc.String(msg)
		}
		sw.End()
		for j, name := range engineStageOrder {
			acc := set.stages[j]
			if acc == nil {
				continue
			}
			buf.Reset()
			if err := acc.SnapshotTo(&buf); err != nil {
				return fmt.Errorf("analysis: snapshot stage %s: %w", name, err)
			}
			sw.RawFrame("stage:"+name, buf.Bytes())
		}
	}
	return sw.Close()
}

// Checkpoint writes retry transient failures with the same policy the
// ExternalSort spill path uses: a bounded number of attempts with
// exponential backoff. A checkpoint landing on flaky storage (NFS
// hiccup, throttled volume) should cost a retry, not the run.
const (
	checkpointRetryAttempts = 3
	checkpointRetryBackoff  = 5 * time.Millisecond
)

// createSnapshotFile, renameSnapshotFile and checkpointSleep are
// stubbed by tests to inject checkpoint I/O faults and skip the
// wall-clock backoff.
var (
	createSnapshotFile = os.Create
	renameSnapshotFile = os.Rename
	checkpointSleep    = time.Sleep
)

// writeSnapshotFile writes a snapshot atomically: the bytes land in
// path+".tmp", are fsynced, and replace path with a rename, so a crash
// mid-checkpoint leaves the previous checkpoint intact. Transient
// failures (cdr.IsTransient) of any step — create, write, sync, rename
// — are retried with exponential backoff; each failed attempt removes
// its own temp file, so retries never leak. A non-nil registry records
// the write count, byte size, wall duration and retries under the
// checkpoint metrics (cellcars_checkpoint_writes_total and kin).
func writeSnapshotFile(path string, hdr SnapshotHeader, sets []*accumSet, reg *obs.Registry) error {
	t0 := time.Now()
	var n int64
	var err error
	for attempt := 0; ; attempt++ {
		n, err = writeSnapshotAttempt(path, hdr, sets)
		if err == nil || !cdr.IsTransient(err) || attempt >= checkpointRetryAttempts {
			break
		}
		if reg != nil {
			reg.Counter("cellcars_checkpoint_retries_total").Inc()
		}
		checkpointSleep(checkpointRetryBackoff << attempt)
	}
	if err != nil {
		return err
	}
	if reg != nil {
		reg.Counter("cellcars_checkpoint_writes_total").Inc()
		reg.Counter("cellcars_checkpoint_bytes_total").Add(n)
		reg.Timing("cellcars_checkpoint_write_seconds").Observe(time.Since(t0))
	}
	return nil
}

// writeSnapshotAttempt performs one full write-fsync-rename cycle,
// returning the byte count on success and cleaning up its temp file on
// failure.
func writeSnapshotAttempt(path string, hdr SnapshotHeader, sets []*accumSet) (n int64, err error) {
	tmp := path + ".tmp"
	f, err := createSnapshotFile(tmp)
	if err != nil {
		return 0, err
	}
	defer func() {
		if err != nil {
			os.Remove(tmp)
		}
	}()
	cw := &countingWriter{w: f}
	if err = writeSnapshotStream(cw, hdr, sets); err != nil {
		f.Close()
		return 0, err
	}
	if err = f.Sync(); err != nil {
		f.Close()
		return 0, err
	}
	if err = f.Close(); err != nil {
		return 0, err
	}
	if err = renameSnapshotFile(tmp, path); err != nil {
		return 0, err
	}
	return cw.n, nil
}

// countingWriter counts bytes on their way to the underlying writer,
// for the checkpoint size metric.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// ---------------------------------------------------------------------------
// Snapshot reading

// readSnapshotSets parses a snapshot stream and restores its worker
// sets. The config callback sees the decoded header and returns the
// context and options to build accumulators under — derived from the
// header itself (merge path) or validated against a live run's own
// configuration (resume path).
func readSnapshotSets(r io.Reader, config func(SnapshotHeader) (Context, EngineOptions, error)) (SnapshotHeader, []*accumSet, error) {
	sr, err := snapshot.NewReader(r)
	if err != nil {
		return SnapshotHeader{}, nil, err
	}
	name, payload, err := sr.NextFrame()
	if err != nil {
		if errors.Is(err, io.EOF) {
			err = badSnapf("snapshot has no header frame")
		}
		return SnapshotHeader{}, nil, err
	}
	if name != "header" {
		return SnapshotHeader{}, nil, badSnapf("first frame is %q, not the header", name)
	}
	hdr, err := decodeHeader(payload)
	if err != nil {
		return SnapshotHeader{}, nil, err
	}
	ctx, opts, err := config(hdr)
	if err != nil {
		return hdr, nil, err
	}

	expected := expectedStages(hdr)
	var sets []*accumSet
	var cur *accumSet
	restored := map[string]bool{}
	finishWorker := func() error {
		if cur == nil {
			return nil
		}
		for name := range expected {
			if !restored[name] && !cur.hasError(name) {
				return badSnapf("worker %d missing stage %s", len(sets)-1, name)
			}
		}
		cur.met.creditRestored(cur, restored)
		return nil
	}
	for {
		name, payload, err := sr.NextFrame()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return hdr, nil, err
		}
		switch {
		case name == "worker":
			if err := finishWorker(); err != nil {
				return hdr, nil, err
			}
			cur = &accumSet{
				period: ctx.Period,
				stages: make([]Accumulator, len(engineStageOrder)),
				batch:  make([]cdr.Record, 0, accumBatchSize),
			}
			d := snapshot.NewDecoder(bytes.NewReader(payload))
			idx := d.Len(maxHeaderWorkers)
			cur.raw = d.Varint()
			cur.ghosts = d.Varint()
			cur.outOfPeriod = d.Varint()
			cur.accepted = d.Varint()
			nerrs := d.Len(len(engineStageOrder))
			for i := 0; i < nerrs && d.Err() == nil; i++ {
				se := StageError{Stage: d.String(), Err: d.String()}
				if stageIndex(se.Stage) < 0 {
					d.Failf("unknown failed stage %q", se.Stage)
					break
				}
				if cur.hasError(se.Stage) {
					d.Failf("duplicate failed stage %q", se.Stage)
					break
				}
				cur.errs = append(cur.errs, se)
			}
			if d.Err() != nil {
				return hdr, nil, d.Err()
			}
			if idx != len(sets) {
				return hdr, nil, badSnapf("worker frame %d out of order (want %d)", idx, len(sets))
			}
			if cur.ghosts < 0 || cur.outOfPeriod < 0 || cur.accepted < 0 ||
				cur.ghosts+cur.outOfPeriod+cur.accepted != cur.raw {
				return hdr, nil, badSnapf("worker %d counters inconsistent (raw=%d ghosts=%d oop=%d accepted=%d)",
					idx, cur.raw, cur.ghosts, cur.outOfPeriod, cur.accepted)
			}
			// A resumed observed run keeps instrumenting; the restored
			// counts are credited into the shared series once the
			// worker's stage frames are in (see finishWorker).
			cur.met = newSetMetrics(opts.Obs, idx)
			sets = append(sets, cur)
			restored = map[string]bool{}
		case strings.HasPrefix(name, "stage:"):
			stage := strings.TrimPrefix(name, "stage:")
			if cur == nil {
				return hdr, nil, badSnapf("stage frame %q before any worker frame", stage)
			}
			if !expected[stage] {
				return hdr, nil, badSnapf("stage %q not enabled by the snapshot's configuration", stage)
			}
			if restored[stage] {
				return hdr, nil, badSnapf("duplicate stage frame %q", stage)
			}
			if cur.hasError(stage) {
				return hdr, nil, badSnapf("stage %q has both a failure record and a state frame", stage)
			}
			acc := newStageForRestore(ctx, opts, stage)
			if err := acc.RestoreFrom(bytes.NewReader(payload)); err != nil {
				return hdr, nil, fmt.Errorf("analysis: restore stage %s: %w", stage, err)
			}
			cur.stages[stageIndex(stage)] = acc
			restored[stage] = true
		default:
			return hdr, nil, badSnapf("unknown frame %q", name)
		}
	}
	if err := finishWorker(); err != nil {
		return hdr, nil, err
	}
	if len(sets) != hdr.Workers {
		return hdr, nil, badSnapf("snapshot holds %d worker sets, header says %d", len(sets), hdr.Workers)
	}
	var raw int64
	for _, s := range sets {
		raw += s.raw
	}
	if raw != hdr.Watermark {
		return hdr, nil, badSnapf("worker raw counts sum to %d, watermark is %d", raw, hdr.Watermark)
	}
	return hdr, sets, nil
}

func badSnapf(format string, args ...any) error {
	return fmt.Errorf("analysis: "+format+": %w", append(args, snapshot.ErrBadSnapshot)...)
}

// ---------------------------------------------------------------------------
// Partials: the map-reduce workflow

// Partial is the restored partial state of an analysis run — the unit
// carmerge works on. Partials produced under the same study
// configuration over car-disjoint record shards merge into exactly the
// state a single process would have accumulated over the union.
type Partial struct {
	Header SnapshotHeader

	ctx  Context
	opts EngineOptions
	set  *accumSet
}

// ReadPartial restores a partial from a snapshot stream, folding the
// stored worker sets into one. No load source is needed: merging and
// finalizing never re-observe records.
func ReadPartial(r io.Reader) (*Partial, error) {
	var pctx Context
	var popts EngineOptions
	hdr, sets, err := readSnapshotSets(r, func(h SnapshotHeader) (Context, EngineOptions, error) {
		pctx = Context{Period: h.Period(), TZOffsetSeconds: h.TZOffsetSeconds}
		popts = EngineOptions{
			RunOptions: RunOptions{RareDays: h.RareDays, BusyCells: h.BusyCells, Seed: h.Seed},
			Workers:    h.Workers,
		}
		return pctx, popts, nil
	})
	if err != nil {
		return nil, err
	}
	root := sets[0]
	for _, o := range sets[1:] {
		root.merge(o)
	}
	hdr.Workers = 1
	return &Partial{Header: hdr, ctx: pctx, opts: popts, set: root}, nil
}

// ReadPartialFile restores a partial from a snapshot file.
func ReadPartialFile(path string) (*Partial, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	p, err := ReadPartial(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}

// Records returns the raw record count the partial has absorbed.
func (p *Partial) Records() int64 { return p.set.raw }

// cars returns the partial's connected-time car map, the exact car set
// every accepted record contributes to — nil when the connected stage
// failed.
func (p *Partial) cars() map[cdr.CarID]int64 {
	acc, _ := p.set.stages[stageIndex("connected")].(*connectedAcc)
	if acc == nil {
		return nil
	}
	return acc.fullSec
}

// SharedCars counts cars present in both partials. ok is false when
// either side's connected stage failed, leaving the overlap unknown.
func (p *Partial) SharedCars(o *Partial) (n int, ok bool) {
	a, b := p.cars(), o.cars()
	if a == nil || b == nil {
		return 0, false
	}
	if len(b) < len(a) {
		a, b = b, a
	}
	for car := range a {
		if _, hit := b[car]; hit {
			n++
		}
	}
	return n, true
}

// Merge folds another partial into p. It refuses partials from a
// different study configuration, and — unless allowOverlap — partials
// whose car sets intersect, since the mergeable-accumulator contract
// requires car-disjoint shards for exact results.
func (p *Partial) Merge(o *Partial, allowOverlap bool) error {
	if err := p.Header.sameStudy(o.Header); err != nil {
		return err
	}
	if !allowOverlap {
		if n, ok := p.SharedCars(o); ok && n > 0 {
			return fmt.Errorf("analysis: partials share %d cars; shard inputs by car, or force with allow-overlap", n)
		}
	}
	p.set.merge(o.set)
	p.Header.Watermark += o.Header.Watermark
	return nil
}

// Finalize computes the merged report. Like every accumulator
// finalize, it is repeatable.
func (p *Partial) Finalize() *Report { return p.set.finalize() }

// SnapshotTo re-serializes the (possibly merged) partial.
func (p *Partial) SnapshotTo(w io.Writer) error {
	return writeSnapshotStream(w, p.Header, []*accumSet{p.set})
}

// WriteSnapshot writes the partial to a file atomically.
func (p *Partial) WriteSnapshot(path string) error {
	return writeSnapshotFile(path, p.Header, []*accumSet{p.set}, p.opts.Obs)
}

// ---------------------------------------------------------------------------
// Streaming checkpointing

// Watermark returns the raw record count consumed so far — the number
// of records a resumed run must skip on the re-opened stream.
func (s *Streaming) Watermark() int64 { return s.set.raw }

func (s *Streaming) header() SnapshotHeader {
	return headerFor(s.ctx, s.opts, 1, s.set.raw)
}

// SnapshotTo serializes the accumulator's full partial state,
// producing a stream readable by both ResumeStreaming and ReadPartial.
func (s *Streaming) SnapshotTo(w io.Writer) error {
	return writeSnapshotStream(w, s.header(), []*accumSet{s.set})
}

// WriteSnapshot writes the state to a file atomically.
func (s *Streaming) WriteSnapshot(path string) error {
	return writeSnapshotFile(path, s.header(), []*accumSet{s.set}, s.opts.Obs)
}

// RestoreStreaming restores a streaming accumulator from a snapshot
// stream written under the same context and options — ResumeStreaming
// without the file handling, for callers (the query service) that keep
// snapshots inside larger containers. The caller must advance its
// input past the restored Watermark (cdr.Skip) before feeding more
// records.
func RestoreStreaming(ctx Context, opts RunOptions, r io.Reader) (*Streaming, error) {
	s := NewStreamingWithOptions(ctx, opts)
	want := s.header()
	_, sets, err := readSnapshotSets(r, func(h SnapshotHeader) (Context, EngineOptions, error) {
		if err := want.sameStudy(h); err != nil {
			return Context{}, EngineOptions{}, err
		}
		if h.Workers != 1 {
			return Context{}, EngineOptions{}, fmt.Errorf("analysis: snapshot holds %d worker sets; streaming resume needs 1", h.Workers)
		}
		return s.ctx, s.opts, nil
	})
	if err != nil {
		return nil, err
	}
	s.set = sets[0]
	return s, nil
}

// ResumeStreaming restores a streaming accumulator from a snapshot
// file written under the same context and options. The caller must
// advance its input past the restored Watermark (cdr.Skip) before
// feeding more records.
func ResumeStreaming(ctx Context, opts RunOptions, path string) (*Streaming, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := RestoreStreaming(ctx, opts, f)
	if err != nil {
		return nil, fmt.Errorf("resume %s: %w", path, err)
	}
	return s, nil
}

// AddAllCheckpointed drains a reader like AddAll, writing a state
// snapshot to cfg.Path every cfg.Every raw records. When cfg.Trigger
// fires, it writes a final checkpoint and stops with ErrCheckpointStop.
// With cfg.Resume, state is restored from cfg.Path first (when the file
// exists) and the watermark's worth of records is skipped.
func (s *Streaming) AddAllCheckpointed(r cdr.Reader, cfg CheckpointConfig) error {
	if cfg.Resume && cfg.Path != "" {
		if _, err := os.Stat(cfg.Path); err == nil {
			resumed, err := ResumeStreaming(s.ctx, s.opts.RunOptions, cfg.Path)
			if err != nil {
				return err
			}
			s.set = resumed.set
			if err := cdr.Skip(r, s.Watermark()); err != nil {
				return err
			}
		} else if !errors.Is(err, os.ErrNotExist) {
			return err
		}
	}
	for {
		if cfg.Trigger != nil && s.set.raw&1023 == 0 {
			select {
			case <-cfg.Trigger:
				if cfg.Path != "" {
					if err := s.WriteSnapshot(cfg.Path); err != nil {
						return err
					}
				}
				return ErrCheckpointStop
			default:
			}
		}
		rec, err := r.Read()
		if err != nil {
			s.set.flush()
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		s.set.add(rec)
		if cfg.Every > 0 && cfg.Path != "" && s.set.raw%cfg.Every == 0 {
			if err := s.WriteSnapshot(cfg.Path); err != nil {
				return err
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Engine checkpointing

// workerMsg is one dispatch to an engine worker: a record batch, or a
// barrier carrying an ack channel. After acking a barrier the worker
// does not touch its accumulator set until the next message arrives,
// which is what lets the dispatcher snapshot all sets race-free.
type workerMsg struct {
	batch []cdr.Record
	ack   chan<- struct{}
}

// engineDispatchBatch is the per-shard batch size of the checkpointing
// dispatcher.
const engineDispatchBatch = 512

func (e *Engine) checkpointHeader(watermark int64) SnapshotHeader {
	return headerFor(e.ctx, e.opts, e.opts.Workers, watermark)
}

// RunReaderCheckpointed is RunReader with periodic checkpointing: the
// dispatcher reads the stream, shards records by car across workers,
// and at each checkpoint runs an ack barrier so every worker's set is
// quiescent, then writes all partial state atomically to cfg.Path. On
// cfg.Trigger it writes a final checkpoint and returns
// ErrCheckpointStop. With cfg.Resume it restores from cfg.Path (same
// configuration and worker count required) and skips the watermark's
// worth of records; a resumed run's final report is bit-identical with
// an uninterrupted one.
func (e *Engine) RunReaderCheckpointed(r cdr.Reader, cfg CheckpointConfig) (*Report, error) {
	n := e.opts.Workers
	var sets []*accumSet
	var read int64
	if cfg.Resume && cfg.Path != "" {
		switch _, err := os.Stat(cfg.Path); {
		case err == nil:
			f, err := os.Open(cfg.Path)
			if err != nil {
				return nil, err
			}
			want := e.checkpointHeader(0)
			hdr, restored, err := readSnapshotSets(f, func(h SnapshotHeader) (Context, EngineOptions, error) {
				if err := want.sameStudy(h); err != nil {
					return Context{}, EngineOptions{}, err
				}
				if h.Workers != n {
					return Context{}, EngineOptions{}, fmt.Errorf("analysis: checkpoint has %d workers, run has %d", h.Workers, n)
				}
				return e.ctx, e.opts, nil
			})
			f.Close()
			if err != nil {
				return nil, fmt.Errorf("resume %s: %w", cfg.Path, err)
			}
			sets = restored
			read = hdr.Watermark
			if err := cdr.Skip(r, read); err != nil {
				return nil, err
			}
		case errors.Is(err, os.ErrNotExist):
			// Fresh run below.
		default:
			return nil, err
		}
	}
	if sets == nil {
		sets = make([]*accumSet, n)
		for i := range sets {
			sets[i] = newAccumSet(e.ctx, e.opts, i)
		}
	}

	chans := make([]chan workerMsg, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		chans[i] = make(chan workerMsg, 4)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for msg := range chans[i] {
				for _, rec := range msg.batch {
					sets[i].add(rec)
				}
				if msg.ack != nil {
					msg.ack <- struct{}{}
				}
			}
		}(i)
	}
	stop := func() {
		for i := range chans {
			close(chans[i])
		}
		wg.Wait()
	}

	bufs := make([][]cdr.Record, n)
	flushShard := func(i int) {
		if len(bufs[i]) == 0 {
			return
		}
		chans[i] <- workerMsg{batch: bufs[i]}
		bufs[i] = nil
	}
	checkpoint := func() error {
		ack := make(chan struct{}, n)
		for i := 0; i < n; i++ {
			flushShard(i)
			chans[i] <- workerMsg{ack: ack}
		}
		for i := 0; i < n; i++ {
			<-ack
		}
		// Workers are parked on their channels; the sets are quiescent
		// until the next dispatch, so writing them here is race-free.
		return writeSnapshotFile(cfg.Path, e.checkpointHeader(read), sets, e.opts.Obs)
	}

	for {
		if cfg.Trigger != nil && read&1023 == 0 {
			select {
			case <-cfg.Trigger:
				if cfg.Path != "" {
					if err := checkpoint(); err != nil {
						stop()
						return nil, err
					}
				}
				stop()
				return nil, ErrCheckpointStop
			default:
			}
		}
		rec, err := r.Read()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			stop()
			return nil, err
		}
		read++
		shard := cdr.ShardOfCar(rec.Car, n)
		bufs[shard] = append(bufs[shard], rec)
		if len(bufs[shard]) >= engineDispatchBatch {
			flushShard(shard)
		}
		if cfg.Every > 0 && cfg.Path != "" && read%cfg.Every == 0 {
			if err := checkpoint(); err != nil {
				stop()
				return nil, err
			}
		}
	}
	for i := range bufs {
		flushShard(i)
	}
	stop()
	return e.merge(sets), nil
}
