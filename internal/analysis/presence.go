package analysis

import (
	"fmt"
	"time"

	"cellcars/internal/cdr"
	"cellcars/internal/radio"
	"cellcars/internal/simtime"
	"cellcars/internal/stats"
)

// DailyPresence is Figure 2: the fraction of the car population on the
// network and of the touched cell population with cars, per study day,
// with least-squares trend lines.
type DailyPresence struct {
	// TotalCars and TotalCells are the distinct cars and cells seen in
	// the whole data set (the denominators).
	TotalCars, TotalCells int
	// CarsFrac[d] is the fraction of TotalCars seen on day d; CellsFrac
	// likewise for cells.
	CarsFrac, CellsFrac []float64
	// CarsTrend and CellsTrend are the Figure 2 trend lines over day
	// index.
	CarsTrend, CellsTrend stats.LinReg
}

// DailyPresenceOf computes Figure 2 from a record stream. A car or
// cell counts as present on the day a connection starts.
func DailyPresenceOf(records []cdr.Record, period simtime.Period) DailyPresence {
	days := period.Days()
	carDay := make(map[cdr.CarID]uint64)
	cellDay := make(map[radio.CellKey]uint64)
	carsPerDay := make([]int, days)
	cellsPerDay := make([]int, days)

	// Presence bitmaps keyed per car/cell: uint64 words, enough for the
	// 90-day default; longer periods fall back to day-count dedup below.
	useBitmap := days <= 64
	type daySet map[int]struct{}
	var carDays map[cdr.CarID]daySet
	var cellDays map[radio.CellKey]daySet
	if !useBitmap {
		carDays = make(map[cdr.CarID]daySet)
		cellDays = make(map[radio.CellKey]daySet)
	}

	forEachRecord(records, func(r cdr.Record) {
		day := period.DayIndex(r.Start)
		if day < 0 {
			return
		}
		if useBitmap {
			bit := uint64(1) << uint(day)
			if carDay[r.Car]&bit == 0 {
				carDay[r.Car] |= bit
				carsPerDay[day]++
			}
			if cellDay[r.Cell]&bit == 0 {
				cellDay[r.Cell] |= bit
				cellsPerDay[day]++
			}
		} else {
			cs, ok := carDays[r.Car]
			if !ok {
				cs = make(daySet)
				carDays[r.Car] = cs
			}
			if _, seen := cs[day]; !seen {
				cs[day] = struct{}{}
				carsPerDay[day]++
			}
			ls, ok := cellDays[r.Cell]
			if !ok {
				ls = make(daySet)
				cellDays[r.Cell] = ls
			}
			if _, seen := ls[day]; !seen {
				ls[day] = struct{}{}
				cellsPerDay[day]++
			}
		}
	})

	var p DailyPresence
	if useBitmap {
		p.TotalCars, p.TotalCells = len(carDay), len(cellDay)
	} else {
		p.TotalCars, p.TotalCells = len(carDays), len(cellDays)
	}
	p.CarsFrac = make([]float64, days)
	p.CellsFrac = make([]float64, days)
	xs := make([]float64, days)
	for d := 0; d < days; d++ {
		xs[d] = float64(d)
		if p.TotalCars > 0 {
			p.CarsFrac[d] = float64(carsPerDay[d]) / float64(p.TotalCars)
		}
		if p.TotalCells > 0 {
			p.CellsFrac[d] = float64(cellsPerDay[d]) / float64(p.TotalCells)
		}
	}
	p.CarsTrend = stats.Fit(xs, p.CarsFrac)
	p.CellsTrend = stats.Fit(xs, p.CellsFrac)
	return p
}

// WeekdayRow is one row of Table 1: mean and sample standard deviation
// of the daily fractions grouped by day of week.
type WeekdayRow struct {
	Label               string
	CellsMean, CellsStd float64
	CarsMean, CarsStd   float64
}

// Table1 groups a DailyPresence by weekday, reproducing Table 1:
// "% cells with cars" and "% cars on network" per day of week plus an
// overall row. Rows are ordered Monday..Sunday, then Overall.
func Table1(p DailyPresence, period simtime.Period) []WeekdayRow {
	labels := []string{"Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday", "Sunday"}
	var cells, cars [8]stats.Moments
	for d := 0; d < period.Days() && d < len(p.CarsFrac); d++ {
		w := (int(period.Weekday(d)) + 6) % 7
		cells[w].Add(p.CellsFrac[d])
		cars[w].Add(p.CarsFrac[d])
		cells[7].Add(p.CellsFrac[d])
		cars[7].Add(p.CarsFrac[d])
	}
	rows := make([]WeekdayRow, 0, 8)
	for w := 0; w < 7; w++ {
		rows = append(rows, WeekdayRow{
			Label:     labels[w],
			CellsMean: cells[w].Mean(), CellsStd: cells[w].SampleStdDev(),
			CarsMean: cars[w].Mean(), CarsStd: cars[w].SampleStdDev(),
		})
	}
	rows = append(rows, WeekdayRow{
		Label:     "Overall",
		CellsMean: cells[7].Mean(), CellsStd: cells[7].SampleStdDev(),
		CarsMean: cars[7].Mean(), CarsStd: cars[7].SampleStdDev(),
	})
	return rows
}

// FormatTable1 renders Table 1 rows in the paper's layout.
func FormatTable1(rows []WeekdayRow) string {
	s := fmt.Sprintf("%-10s  %%cells-mean  %%cells-std  %%cars-mean  %%cars-std\n", "Day")
	for _, r := range rows {
		s += fmt.Sprintf("%-10s  %10.1f%%  %9.1f%%  %9.1f%%  %8.1f%%\n",
			r.Label, r.CellsMean*100, r.CellsStd*100, r.CarsMean*100, r.CarsStd*100)
	}
	return s
}

// DaysOnNetwork returns, per car, the number of distinct study days
// with at least one connection — the quantity of Figure 6.
func DaysOnNetwork(records []cdr.Record, period simtime.Period) map[cdr.CarID]int {
	days := make(map[cdr.CarID]uint64)
	spill := make(map[cdr.CarID]map[int]struct{})
	useBitmap := period.Days() <= 64
	forEachRecord(records, func(r cdr.Record) {
		day := period.DayIndex(r.Start)
		if day < 0 {
			return
		}
		if useBitmap {
			days[r.Car] |= uint64(1) << uint(day)
		} else {
			s, ok := spill[r.Car]
			if !ok {
				s = make(map[int]struct{})
				spill[r.Car] = s
			}
			s[day] = struct{}{}
		}
	})
	out := make(map[cdr.CarID]int)
	if useBitmap {
		for car, bits := range days {
			out[car] = popcount(bits)
		}
	} else {
		for car, s := range spill {
			out[car] = len(s)
		}
	}
	return out
}

// DaysHistogram bins DaysOnNetwork counts into a Figure 6 histogram
// with one bin per possible day count (1..Days).
func DaysHistogram(records []cdr.Record, period simtime.Period) *stats.Histogram {
	h := stats.NewHistogram(0.5, 1, period.Days())
	for _, n := range DaysOnNetwork(records, period) {
		h.Add(float64(n))
	}
	return h
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// ConnectedTime is Figure 3: the distribution over cars of total time
// on the network as a fraction of the study period, with and without
// the 600-second per-connection truncation.
type ConnectedTime struct {
	// Full and Truncated are the per-car fraction CDFs.
	Full, Truncated *stats.CDF
	// FullMean/TruncMean are the population means (paper: ~8% / ~4%).
	FullMean, TruncMean float64
	// FullP995/TruncP995 are the 99.5th percentiles (paper: 27% / 15%).
	FullP995, TruncP995 float64
}

// ConnectedTimeOf computes Figure 3. Records should be ghost-free; the
// function derives the truncated variant itself.
func ConnectedTimeOf(records []cdr.Record, period simtime.Period) ConnectedTime {
	const limitSec = 600
	fullByCar := make(map[cdr.CarID]int64)
	truncByCar := make(map[cdr.CarID]int64)
	forEachRecord(records, func(r cdr.Record) {
		sec := int64(r.Duration / time.Second)
		fullByCar[r.Car] += sec
		truncByCar[r.Car] += truncDur(sec, limitSec)
	})
	total := float64(period.Seconds())
	full := make([]float64, 0, len(fullByCar))
	trunc := make([]float64, 0, len(truncByCar))
	for car, sec := range fullByCar {
		full = append(full, float64(sec)/total)
		trunc = append(trunc, float64(truncByCar[car])/total)
	}
	ct := ConnectedTime{Full: stats.NewCDF(full), Truncated: stats.NewCDF(trunc)}
	if len(full) > 0 {
		ct.FullMean = ct.Full.Mean()
		ct.TruncMean = ct.Truncated.Mean()
		ct.FullP995 = ct.Full.Quantile(0.995)
		ct.TruncP995 = ct.Truncated.Quantile(0.995)
	}
	return ct
}
