package analysis

import (
	"fmt"

	"cellcars/internal/cdr"
	"cellcars/internal/simtime"
	"cellcars/internal/stats"
)

// DailyPresence is Figure 2: the fraction of the car population on the
// network and of the touched cell population with cars, per study day,
// with least-squares trend lines.
type DailyPresence struct {
	// TotalCars and TotalCells are the distinct cars and cells seen in
	// the whole data set (the denominators).
	TotalCars, TotalCells int
	// CarsFrac[d] is the fraction of TotalCars seen on day d; CellsFrac
	// likewise for cells.
	CarsFrac, CellsFrac []float64
	// CarsTrend and CellsTrend are the Figure 2 trend lines over day
	// index.
	CarsTrend, CellsTrend stats.LinReg
}

// DailyPresenceOf computes Figure 2 from a record stream. A car or
// cell counts as present on the day a connection starts.
func DailyPresenceOf(records []cdr.Record, period simtime.Period) DailyPresence {
	return runAccum(newPresenceAcc(period), records).Presence
}

// WeekdayRow is one row of Table 1: mean and sample standard deviation
// of the daily fractions grouped by day of week.
type WeekdayRow struct {
	Label               string
	CellsMean, CellsStd float64
	CarsMean, CarsStd   float64
}

// Table1 groups a DailyPresence by weekday, reproducing Table 1:
// "% cells with cars" and "% cars on network" per day of week plus an
// overall row. Rows are ordered Monday..Sunday, then Overall.
func Table1(p DailyPresence, period simtime.Period) []WeekdayRow {
	labels := []string{"Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday", "Sunday"}
	var cells, cars [8]stats.Moments
	for d := 0; d < period.Days() && d < len(p.CarsFrac); d++ {
		w := (int(period.Weekday(d)) + 6) % 7
		cells[w].Add(p.CellsFrac[d])
		cars[w].Add(p.CarsFrac[d])
		cells[7].Add(p.CellsFrac[d])
		cars[7].Add(p.CarsFrac[d])
	}
	rows := make([]WeekdayRow, 0, 8)
	for w := 0; w < 7; w++ {
		rows = append(rows, WeekdayRow{
			Label:     labels[w],
			CellsMean: cells[w].Mean(), CellsStd: cells[w].SampleStdDev(),
			CarsMean: cars[w].Mean(), CarsStd: cars[w].SampleStdDev(),
		})
	}
	rows = append(rows, WeekdayRow{
		Label:     "Overall",
		CellsMean: cells[7].Mean(), CellsStd: cells[7].SampleStdDev(),
		CarsMean: cars[7].Mean(), CarsStd: cars[7].SampleStdDev(),
	})
	return rows
}

// FormatTable1 renders Table 1 rows in the paper's layout.
func FormatTable1(rows []WeekdayRow) string {
	s := fmt.Sprintf("%-10s  %%cells-mean  %%cells-std  %%cars-mean  %%cars-std\n", "Day")
	for _, r := range rows {
		s += fmt.Sprintf("%-10s  %10.1f%%  %9.1f%%  %9.1f%%  %8.1f%%\n",
			r.Label, r.CellsMean*100, r.CellsStd*100, r.CarsMean*100, r.CarsStd*100)
	}
	return s
}

// DaysOnNetwork returns, per car, the number of distinct study days
// with at least one connection — the quantity of Figure 6.
func DaysOnNetwork(records []cdr.Record, period simtime.Period) map[cdr.CarID]int {
	a := newDaysAcc(period)
	for _, r := range records {
		a.Add(r)
	}
	return a.perCar()
}

// DaysHistogram bins DaysOnNetwork counts into a Figure 6 histogram
// with one bin per possible day count (1..Days).
func DaysHistogram(records []cdr.Record, period simtime.Period) *stats.Histogram {
	return runAccum(newDaysAcc(period), records).DaysHist
}

// ConnectedTime is Figure 3: the distribution over cars of total time
// on the network as a fraction of the study period, with and without
// the 600-second per-connection truncation.
type ConnectedTime struct {
	// Full and Truncated are the per-car fraction CDFs.
	Full, Truncated *stats.CDF
	// FullMean/TruncMean are the population means (paper: ~8% / ~4%).
	FullMean, TruncMean float64
	// FullP995/TruncP995 are the 99.5th percentiles (paper: 27% / 15%).
	FullP995, TruncP995 float64
}

// ConnectedTimeOf computes Figure 3. Records should be ghost-free; the
// function derives the truncated variant itself.
func ConnectedTimeOf(records []cdr.Record, period simtime.Period) ConnectedTime {
	return runAccum(newConnectedAcc(period), records).Connected
}
