package analysis

import (
	"errors"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"

	"cellcars/internal/cdr"
	"cellcars/internal/obs"
)

// TestEngineProfileConsistency runs the instrumented engine and checks
// that the per-stage profile, the registry counters and the report's
// own ingest totals all tell the same story, for both the sequential
// and the sharded path.
func TestEngineProfileConsistency(t *testing.T) {
	records := engineWorkload(20000)
	ctx := engineCtx()

	for _, workers := range []int{1, 4} {
		reg := obs.New()
		opts := RunOptions{BusyCells: engineBusyCells(), Obs: reg, Workers: workers}
		rep, err := Run(records, ctx, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}

		accepted := int64(rep.CleanRecords) - rep.OutOfPeriod
		ghosts := int64(rep.RawRecords - rep.CleanRecords)
		if accepted <= 0 || ghosts <= 0 || rep.OutOfPeriod <= 0 {
			t.Fatalf("workers=%d: workload did not exercise all outcomes: %+v", workers, rep)
		}

		// Profile rows: every stage saw exactly the accepted records.
		if len(rep.Profile) == 0 {
			t.Fatalf("workers=%d: no pipeline profile", workers)
		}
		for _, p := range rep.Profile {
			if p.Records != accepted {
				t.Errorf("workers=%d: stage %s saw %d records, want %d",
					workers, p.Stage, p.Records, accepted)
			}
			if p.Batches <= 0 {
				t.Errorf("workers=%d: stage %s has no batches", workers, p.Stage)
			}
			if p.AddSeconds < 0 || p.MergeSeconds < 0 || p.FinalizeSeconds < 0 {
				t.Errorf("workers=%d: stage %s has negative timing: %+v", workers, p.Stage, p)
			}
			if p.TotalSeconds() < p.AddSeconds {
				t.Errorf("workers=%d: stage %s TotalSeconds < AddSeconds", workers, p.Stage)
			}
		}

		// Registry outcome counters reconcile with the report totals.
		outcome := func(v string) int64 {
			return reg.Counter("cellcars_engine_records_total",
				obs.Label{Key: "outcome", Value: v}).Value()
		}
		if got := outcome("accepted"); got != accepted {
			t.Errorf("workers=%d: accepted counter %d, want %d", workers, got, accepted)
		}
		if got := outcome("ghost"); got != ghosts {
			t.Errorf("workers=%d: ghost counter %d, want %d", workers, got, ghosts)
		}
		if got := outcome("out_of_period"); got != rep.OutOfPeriod {
			t.Errorf("workers=%d: out_of_period counter %d, want %d", workers, got, rep.OutOfPeriod)
		}

		// Shard balance counters sum to the raw stream length.
		var shardSum int64
		for w := 0; w < workers; w++ {
			shardSum += reg.Counter("cellcars_engine_shard_records_total",
				obs.Label{Key: "worker", Value: strconv.Itoa(w)}).Value()
		}
		if shardSum != int64(rep.RawRecords) {
			t.Errorf("workers=%d: shard counters sum %d, want %d raw records",
				workers, shardSum, rep.RawRecords)
		}

		// The stage record counters behind the profile agree with it.
		for _, p := range rep.Profile {
			c := reg.Counter("cellcars_stage_records_total",
				obs.Label{Key: "stage", Value: p.Stage}).Value()
			if c != p.Records {
				t.Errorf("workers=%d: stage %s counter %d != profile %d",
					workers, p.Stage, c, p.Records)
			}
		}
	}
}

func withObs(o RunOptions, reg *obs.Registry) RunOptions {
	o.Obs = reg
	return o
}

// TestResumedRunProfileReconciles pins the creditRestored semantics: a
// run resumed from a checkpoint in a fresh process (fresh registry)
// still reports whole-logical-run record counts in its profile and
// outcome counters, so the "Pipeline profile" reconciliation with the
// Data Quality totals survives a crash/resume cycle.
func TestResumedRunProfileReconciles(t *testing.T) {
	records := engineWorkload(20000)
	ctx := engineCtx()
	base := RunOptions{BusyCells: engineBusyCells()}

	path := filepath.Join(t.TempDir(), "engine.snap")
	kills := CheckpointConfig{Path: path, Every: 2000}
	_, err := NewEngine(ctx, EngineOptions{RunOptions: withObs(base, obs.New()), Workers: 4}).
		RunReaderCheckpointed(&faultReader{r: cdr.NewSliceReader(records), n: 7500, err: errKilled}, kills)
	if !errors.Is(err, errKilled) {
		t.Fatalf("want simulated crash, got %v", err)
	}

	// Resume in a "new process": a fresh registry with no history.
	reg := obs.New()
	rep, err := NewEngine(ctx, EngineOptions{RunOptions: withObs(base, reg), Workers: 4}).
		RunReaderCheckpointed(cdr.NewSliceReader(records), CheckpointConfig{Path: path, Resume: true})
	if err != nil {
		t.Fatal(err)
	}

	accepted := int64(rep.CleanRecords) - rep.OutOfPeriod
	for _, p := range rep.Profile {
		if p.Records != accepted {
			t.Errorf("stage %s saw %d records after resume, want %d", p.Stage, p.Records, accepted)
		}
	}
	if got := reg.Counter("cellcars_engine_records_total",
		obs.Label{Key: "outcome", Value: "accepted"}).Value(); got != accepted {
		t.Errorf("accepted counter %d after resume, want %d", got, accepted)
	}
	if got := reg.Counter("cellcars_engine_records_total",
		obs.Label{Key: "outcome", Value: "ghost"}).Value(); got != int64(rep.RawRecords-rep.CleanRecords) {
		t.Errorf("ghost counter %d after resume, want %d", got, rep.RawRecords-rep.CleanRecords)
	}
}

// TestEngineObsDoesNotChangeResults pins the zero-interference
// guarantee: the instrumented report, profile aside, is bit-identical
// to the uninstrumented one.
func TestEngineObsDoesNotChangeResults(t *testing.T) {
	records := engineWorkload(8000)
	ctx := engineCtx()

	base, err := Run(records, ctx, RunOptions{BusyCells: engineBusyCells(), Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := Run(records, ctx, RunOptions{BusyCells: engineBusyCells(), Workers: 4, Obs: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.Profile) == 0 {
		t.Fatal("instrumented run produced no profile")
	}
	inst.Profile = nil
	if !reflect.DeepEqual(base, inst) {
		t.Fatal("instrumentation changed the analysis results")
	}
}
