package analysis

import (
	"math/rand/v2"
	"testing"
	"time"

	"cellcars/internal/cdr"
	"cellcars/internal/clean"
	"cellcars/internal/radio"
	"cellcars/internal/simtime"
)

var t0 = time.Date(2017, 1, 2, 0, 0, 0, 0, time.UTC)

func rec(car cdr.CarID, cell radio.CellKey, start, dur time.Duration) cdr.Record {
	return cdr.Record{Car: car, Cell: cell, Start: t0.Add(start), Duration: dur}
}

func cell(bs radio.BSID) radio.CellKey { return radio.MakeCellKey(bs, 0, radio.C3) }

// fixedLoad is a synthetic load.Source for unit tests: a set of
// (cell) → busy flag, with busy cells at 0.9 and idle at 0.2.
type fixedLoad struct {
	busy map[radio.CellKey]bool
}

func (f *fixedLoad) Utilization(c radio.CellKey, bin int) float64 {
	if f.busy[c] {
		return 0.9
	}
	return 0.2
}
func (f *fixedLoad) BusyThreshold() float64 { return 0.8 }

func testCtx() Context {
	return Context{
		Period:          simtime.NewPeriod(t0, 14),
		Load:            &fixedLoad{busy: map[radio.CellKey]bool{cell(99): true}},
		TZOffsetSeconds: -5 * 3600,
	}
}

func TestDailyPresence(t *testing.T) {
	period := simtime.NewPeriod(t0, 7)
	records := []cdr.Record{
		rec(1, cell(1), 0, time.Minute),              // day 0
		rec(2, cell(1), time.Hour, time.Minute),      // day 0
		rec(1, cell(2), 25*time.Hour, time.Minute),   // day 1
		rec(1, cell(2), 26*time.Hour, time.Minute),   // day 1 dup
		rec(3, cell(3), 6*24*time.Hour, time.Minute), // day 6
	}
	p := DailyPresenceOf(records, period)
	if p.TotalCars != 3 || p.TotalCells != 3 {
		t.Fatalf("totals: %d cars, %d cells", p.TotalCars, p.TotalCells)
	}
	wantCars := []float64{2.0 / 3, 1.0 / 3, 0, 0, 0, 0, 1.0 / 3}
	for d, w := range wantCars {
		if diff := p.CarsFrac[d] - w; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("day %d cars frac = %v, want %v", d, p.CarsFrac[d], w)
		}
	}
	if p.CellsFrac[0] != 1.0/3 {
		t.Fatalf("day 0 cells frac = %v", p.CellsFrac[0])
	}
	if p.CarsTrend.N != 7 {
		t.Fatalf("trend over %d days", p.CarsTrend.N)
	}
}

func TestDailyPresenceIgnoresOutOfPeriod(t *testing.T) {
	period := simtime.NewPeriod(t0, 7)
	records := []cdr.Record{rec(1, cell(1), -48*time.Hour, time.Minute)}
	p := DailyPresenceOf(records, period)
	if p.TotalCars != 0 {
		t.Fatal("out-of-period record counted")
	}
}

func TestTable1Grouping(t *testing.T) {
	period := simtime.NewPeriod(t0, 14) // two full Mon-Sun weeks
	var records []cdr.Record
	// Car 1 appears every day; car 2 appears only on Mondays.
	for d := 0; d < 14; d++ {
		records = append(records, rec(1, cell(1), time.Duration(d)*24*time.Hour, time.Minute))
		if d%7 == 0 {
			records = append(records, rec(2, cell(1), time.Duration(d)*24*time.Hour+time.Hour, time.Minute))
		}
	}
	rows := Table1(DailyPresenceOf(records, period), period)
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Label != "Monday" || rows[7].Label != "Overall" {
		t.Fatalf("labels: %v %v", rows[0].Label, rows[7].Label)
	}
	if rows[0].CarsMean != 1 { // both cars on both Mondays
		t.Fatalf("Monday cars mean = %v", rows[0].CarsMean)
	}
	if rows[1].CarsMean != 0.5 { // only car 1 on Tuesdays
		t.Fatalf("Tuesday cars mean = %v", rows[1].CarsMean)
	}
	if rows[0].CarsStd != 0 {
		t.Fatalf("Monday std = %v, want 0", rows[0].CarsStd)
	}
	if s := FormatTable1(rows); len(s) == 0 {
		t.Fatal("empty format")
	}
}

func TestConnectedTime(t *testing.T) {
	period := simtime.NewPeriod(t0, 1) // 86400 s
	records := []cdr.Record{
		rec(1, cell(1), 0, 864*time.Second),          // 1% of day
		rec(2, cell(1), time.Hour, 8640*time.Second), // 10%, truncated to 600 s
	}
	ct := ConnectedTimeOf(records, period)
	if ct.Full.N() != 2 {
		t.Fatalf("cars = %d", ct.Full.N())
	}
	wantFull := (0.01 + 0.10) / 2
	if diff := ct.FullMean - wantFull; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("full mean = %v, want %v", ct.FullMean, wantFull)
	}
	wantTrunc := (600.0/86400 + 600.0/86400) / 2 // both connections truncate
	if diff := ct.TruncMean - wantTrunc; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("trunc mean = %v, want %v", ct.TruncMean, wantTrunc)
	}
	if ct.FullMean <= ct.TruncMean {
		t.Fatal("truncation must reduce the mean")
	}
}

func TestReferenceMatrices(t *testing.T) {
	commute, peak, weekend := ReferenceMatrices()
	if commute.At(8, 2) != 1 || commute.At(8, 6) != 0 || commute.At(12, 2) != 0 {
		t.Fatal("commute matrix wrong")
	}
	if peak.At(20, 0) != 1 || peak.At(3, 0) != 0 {
		t.Fatal("network peak matrix wrong")
	}
	if weekend.At(10, 5) != 1 || weekend.At(10, 4) != 0 {
		t.Fatal("weekend matrix wrong")
	}
}

func TestUsageMatrix(t *testing.T) {
	ctx := testCtx()
	// Monday 12:00 UTC = Monday 07:00 local (UTC-5).
	records := []cdr.Record{
		rec(1, cell(1), 12*time.Hour, 10*time.Minute),
		rec(1, cell(2), 12*time.Hour+11*time.Minute, 10*time.Minute), // same session (gap 60 s > 30? no: 60s gap)
	}
	// Gap between records is 1 min > 30 s: two sessions, same hour.
	m := UsageMatrix(records, ctx)
	if got := m.At(7, 0); got != 2 {
		t.Fatalf("Monday 07 local = %v, want 2 sessions", got)
	}
	if m.Sum() != 2 {
		t.Fatalf("matrix sum = %v", m.Sum())
	}
}

func TestUsageMatrixSessionSpanningHours(t *testing.T) {
	ctx := testCtx()
	// One 2.5-hour session starting Monday 11:30 UTC = 06:30 local:
	// touches local hours 6, 7, 8.
	records := []cdr.Record{rec(1, cell(1), 11*time.Hour+30*time.Minute, 150*time.Minute)}
	m := UsageMatrix(records, ctx)
	for _, h := range []int{6, 7, 8} {
		if m.At(h, 0) != 1 {
			t.Fatalf("hour %d = %v, want 1", h, m.At(h, 0))
		}
	}
	if m.Sum() != 3 {
		t.Fatalf("sum = %v", m.Sum())
	}
}

func TestDaysOnNetworkAndHistogram(t *testing.T) {
	period := simtime.NewPeriod(t0, 14)
	var records []cdr.Record
	for d := 0; d < 10; d++ {
		records = append(records, rec(1, cell(1), time.Duration(d)*24*time.Hour, time.Minute))
	}
	records = append(records, rec(2, cell(1), 0, time.Minute))
	days := DaysOnNetwork(records, period)
	if days[1] != 10 || days[2] != 1 {
		t.Fatalf("days: %v", days)
	}
	h := DaysHistogram(records, period)
	if h.Counts[0] != 1 || h.Counts[9] != 1 {
		t.Fatalf("histogram: %v", h.Counts)
	}
	if h.Total() != 2 {
		t.Fatalf("total = %d", h.Total())
	}
}

func TestBusyTime(t *testing.T) {
	ctx := testCtx()
	busy := cell(99)
	idle := cell(1)
	records := []cdr.Record{
		// Car 1: 100% busy. Car 2: 0% busy. Car 3: half and half.
		rec(1, busy, time.Hour, 10*time.Minute),
		rec(2, idle, time.Hour, 10*time.Minute),
		rec(3, busy, time.Hour, 10*time.Minute),
		rec(3, idle, 2*time.Hour, 10*time.Minute),
	}
	bt := BusyTimeOf(records, ctx)
	if f := bt.FracByCar[1]; f != 1 {
		t.Fatalf("car 1 busy frac = %v", f)
	}
	if f := bt.FracByCar[2]; f != 0 {
		t.Fatalf("car 2 busy frac = %v", f)
	}
	if f := bt.FracByCar[3]; f != 0.5 {
		t.Fatalf("car 3 busy frac = %v", f)
	}
	if bt.OverHalf != 1.0/3 {
		t.Fatalf("over half = %v", bt.OverHalf)
	}
	if bt.AllBusy != 1.0/3 {
		t.Fatalf("all busy = %v", bt.AllBusy)
	}
	h := bt.Histogram7a()
	if h[0] == 0 || h[9] == 0 {
		t.Fatalf("7a histogram: %v", h)
	}
	hb := bt.Histogram7b()
	var sum float64
	for _, v := range hb {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("7b not normalized: %v", hb)
	}
}

func TestBusyTimePanicsWithoutLoad(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BusyTimeOf(nil, Context{Period: simtime.NewPeriod(t0, 7)})
}

func TestSegmentation(t *testing.T) {
	ctx := testCtx()
	busy := cell(99)
	idle := cell(1)
	var records []cdr.Record
	// Car 1: 20 days, always busy. Car 2: 5 days, never busy.
	// Car 3: 12 days, balanced.
	for d := 0; d < 10; d++ {
		records = append(records,
			rec(1, busy, time.Duration(d)*24*time.Hour, 10*time.Minute))
	}
	for d := 0; d < 5; d++ {
		records = append(records,
			rec(2, idle, time.Duration(d)*24*time.Hour+time.Hour, 10*time.Minute))
	}
	for d := 0; d < 12; d++ {
		c := busy
		if d%2 == 0 {
			c = idle
		}
		records = append(records,
			rec(3, c, time.Duration(d)*24*time.Hour+2*time.Hour, 10*time.Minute))
	}
	segs := Segmentation(records, ctx, 6)
	if len(segs) != 1 {
		t.Fatalf("segments = %d", len(segs))
	}
	s := segs[0]
	third := 1.0 / 3
	if diff := s.CommonBusy - third; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("common busy = %v", s.CommonBusy)
	}
	if diff := s.RareNonBusy - third; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("rare non-busy = %v", s.RareNonBusy)
	}
	if diff := s.CommonBoth - third; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("common both = %v", s.CommonBoth)
	}
	if tot := s.RareTotal() + s.CommonTotal(); tot < 0.999 || tot > 1.001 {
		t.Fatalf("segments don't partition: %v", tot)
	}
	if out := FormatTable2(segs); len(out) == 0 {
		t.Fatal("empty table 2")
	}
}

func TestCellDay(t *testing.T) {
	ctx := testCtx()
	target := cell(5)
	records := []cdr.Record{
		rec(1, target, 10*time.Hour, 5*time.Minute),
		rec(2, target, 10*time.Hour+2*time.Minute, 5*time.Minute),
		rec(3, target, 20*time.Hour, 5*time.Minute),
		rec(1, cell(6), 11*time.Hour, 5*time.Minute), // other cell: ignored
		rec(4, target, 30*time.Hour, 5*time.Minute),  // next day: ignored
	}
	res := CellDay(records, ctx, target, 0)
	if res.UniqueCars != 3 {
		t.Fatalf("unique cars = %d", res.UniqueCars)
	}
	if len(res.Spans) != 3 {
		t.Fatalf("spans = %d", len(res.Spans))
	}
	if res.PeakCars != 2 {
		t.Fatalf("peak cars = %d", res.PeakCars)
	}
	wantPeakBin := 10 * simtime.BinsPerHour
	if res.PeakBin != wantPeakBin {
		t.Fatalf("peak bin = %d, want %d", res.PeakBin, wantPeakBin)
	}
}

func TestCellDayClampsMidnightSpans(t *testing.T) {
	ctx := testCtx()
	target := cell(5)
	// A connection starting 23:50 day 0 and running 20 minutes.
	records := []cdr.Record{rec(1, target, 23*time.Hour+50*time.Minute, 20*time.Minute)}
	res0 := CellDay(records, ctx, target, 0)
	if len(res0.Spans) != 1 || !res0.Spans[0].End.Equal(t0.Add(24*time.Hour)) {
		t.Fatalf("day 0 span: %+v", res0.Spans)
	}
	res1 := CellDay(records, ctx, target, 1)
	if len(res1.Spans) != 1 || !res1.Spans[0].Start.Equal(t0.Add(24*time.Hour)) {
		t.Fatalf("day 1 span: %+v", res1.Spans)
	}
}

func TestBusiestCellDay(t *testing.T) {
	ctx := testCtx()
	target := cell(5)
	records := []cdr.Record{
		rec(1, target, time.Hour, time.Minute),
		rec(2, target, 2*time.Hour, time.Minute),
		rec(3, target, 3*time.Hour, time.Minute),
		rec(1, cell(6), time.Hour, time.Minute),
	}
	c, day := BusiestCellDay(records, ctx)
	if c != target || day != 0 {
		t.Fatalf("busiest = %v day %d", c, day)
	}
}

func TestCellDurations(t *testing.T) {
	var records []cdr.Record
	for i := 0; i < 73; i++ {
		records = append(records, rec(1, cell(1), time.Duration(i)*time.Hour, 100*time.Second))
	}
	for i := 0; i < 27; i++ {
		records = append(records, rec(1, cell(1), time.Duration(100+i)*time.Hour, 2000*time.Second))
	}
	cd := CellDurationsOf(records)
	if cd.Median != 100 {
		t.Fatalf("median = %v", cd.Median)
	}
	if cd.P73 > 600.1 || cd.P73 < 100 {
		t.Fatalf("p73 = %v", cd.P73)
	}
	if cd.FullMean <= cd.TruncMean {
		t.Fatal("full mean must exceed truncated mean")
	}
	wantFull := (73*100.0 + 27*2000.0) / 100
	if diff := cd.FullMean - wantFull; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("full mean = %v, want %v", cd.FullMean, wantFull)
	}
}

func TestCellWeek(t *testing.T) {
	ctx := testCtx()
	target := cell(99)
	records := []cdr.Record{
		rec(1, target, 10*time.Hour, 10*time.Minute),
		rec(2, target, 10*time.Hour+5*time.Minute, 10*time.Minute),
	}
	res := CellWeek(records, ctx, target, 0)
	bin := 10 * simtime.BinsPerHour
	if res.Concurrency[bin] != 2 {
		t.Fatalf("concurrency at bin %d = %v", bin, res.Concurrency[bin])
	}
	if res.Utilization[bin] != 0.9 {
		t.Fatalf("utilization = %v", res.Utilization[bin])
	}
}

func TestCellWeekPanics(t *testing.T) {
	ctx := testCtx()
	cases := map[string]func(){
		"no load":  func() { CellWeek(nil, Context{Period: ctx.Period}, cell(1), 0) },
		"bad week": func() { CellWeek(nil, ctx, cell(1), 5) },
		"neg week": func() { CellWeek(nil, ctx, cell(1), -1) },
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestClusterBusyCells(t *testing.T) {
	ctx := testCtx()
	// Six quiet cells (1 car at noon), two hot cells (8 cars at noon).
	var records []cdr.Record
	var cells []radio.CellKey
	for b := radio.BSID(1); b <= 6; b++ {
		c := cell(b)
		cells = append(cells, c)
		records = append(records, rec(cdr.CarID(b), c, 12*time.Hour, 10*time.Minute))
	}
	for b := radio.BSID(7); b <= 8; b++ {
		c := cell(b)
		cells = append(cells, c)
		for car := cdr.CarID(0); car < 8; car++ {
			records = append(records, rec(100+car, c, 12*time.Hour+time.Duration(car)*time.Minute, 10*time.Minute))
		}
	}
	res := ClusterBusyCells(records, ctx, cells, rand.New(rand.NewPCG(1, 2)))
	if len(res.Sizes) != 2 {
		t.Fatalf("sizes = %v", res.Sizes)
	}
	if res.Sizes[0] != 6 || res.Sizes[1] != 2 {
		t.Fatalf("cluster sizes = %v, want [6 2]", res.Sizes)
	}
	if r := res.PeakRatio(); r < 3 {
		t.Fatalf("peak ratio = %v, want >= 3", r)
	}
}

func TestClusterBusyCellsDegenerate(t *testing.T) {
	ctx := testCtx()
	res := ClusterBusyCells(nil, ctx, []radio.CellKey{cell(1)}, rand.New(rand.NewPCG(1, 1)))
	if res.Cells != nil {
		t.Fatal("single-cell input should return empty result")
	}
	if res.PeakRatio() != 0 {
		t.Fatal("empty result peak ratio")
	}
}

func TestHandovers(t *testing.T) {
	// One car, one mobility session crossing 3 base stations, then a
	// separate session after a >10 min gap with no handover.
	records := []cdr.Record{
		rec(1, cell(1), 0, 2*time.Minute),
		rec(1, cell(2), 3*time.Minute, 2*time.Minute),
		rec(1, cell(3), 6*time.Minute, 2*time.Minute),
		rec(1, cell(7), time.Hour, 2*time.Minute),
	}
	hs, err := HandoversOf(records)
	if err != nil {
		t.Fatal(err)
	}
	if hs.Sessions != 2 {
		t.Fatalf("sessions = %d", hs.Sessions)
	}
	if hs.ByKind[radio.HandoverInterBS] != 2 {
		t.Fatalf("inter-BS = %d", hs.ByKind[radio.HandoverInterBS])
	}
	if hs.InterBSShare() != 1 {
		t.Fatalf("inter-BS share = %v", hs.InterBSShare())
	}
	if hs.Median != 1 { // sessions have 2 and 0 handovers
		t.Fatalf("median = %v", hs.Median)
	}
}

func TestHandoversEmpty(t *testing.T) {
	hs, err := HandoversOf(nil)
	if err != nil {
		t.Fatal(err)
	}
	if hs.Sessions != 0 || hs.InterBSShare() != 0 {
		t.Fatal("empty stream handling")
	}
}

func TestCarrierUsage(t *testing.T) {
	c3 := radio.MakeCellKey(1, 0, radio.C3)
	c4 := radio.MakeCellKey(1, 0, radio.C4)
	records := []cdr.Record{
		rec(1, c3, 0, 300*time.Second),
		rec(1, c4, time.Hour, 100*time.Second),
		rec(2, c3, 2*time.Hour, 100*time.Second),
	}
	u := CarrierUsageOf(records)
	if u.TotalCars != 2 {
		t.Fatalf("cars = %d", u.TotalCars)
	}
	if u.CarsFrac[radio.C3] != 1 || u.CarsFrac[radio.C4] != 0.5 || u.CarsFrac[radio.C5] != 0 {
		t.Fatalf("cars frac: %v", u.CarsFrac)
	}
	if diff := u.TimeFrac[radio.C3] - 0.8; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("C3 time frac = %v", u.TimeFrac[radio.C3])
	}
	if s := FormatTable3(u); len(s) == 0 {
		t.Fatal("empty table 3")
	}
}

func TestRecordsOfCar(t *testing.T) {
	records := []cdr.Record{
		rec(1, cell(1), 0, time.Minute),
		rec(2, cell(1), time.Hour, time.Minute),
		rec(1, cell(2), 2*time.Hour, time.Minute),
	}
	got := RecordsOfCar(records, 1)
	if len(got) != 2 || got[0].Cell != cell(1) || got[1].Cell != cell(2) {
		t.Fatalf("records of car 1: %v", got)
	}
}

func TestUsageMatrixRespectsGhostCleaning(t *testing.T) {
	ctx := testCtx()
	raw := []cdr.Record{
		rec(1, cell(1), 12*time.Hour, time.Hour), // ghost
		rec(1, cell(1), 15*time.Hour, time.Minute),
	}
	cleaned, err := cdr.ReadAll(clean.RemoveGhosts(cdr.NewSliceReader(raw)))
	if err != nil {
		t.Fatal(err)
	}
	m := UsageMatrix(cleaned, ctx)
	if m.Sum() != 1 {
		t.Fatalf("sum = %v after ghost cleaning", m.Sum())
	}
}
