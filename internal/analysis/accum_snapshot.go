package analysis

import (
	"cmp"
	"io"
	"slices"
	"time"

	"cellcars/internal/cdr"
	"cellcars/internal/clean"
	"cellcars/internal/radio"
	"cellcars/internal/simtime"
	"cellcars/internal/snapshot"
	"cellcars/internal/stats"
)

// This file implements the Accumulator snapshot contract for every
// stage: SnapshotTo serializes exactly the mutable partial state (maps,
// bitmaps, sketches, open sessions), never the configuration (period,
// load source, rare-day thresholds, seeds) — configuration travels in
// the checkpoint header and is re-validated there. Encodings are
// deterministic: map keys are emitted in ascending order, so equal
// state always produces equal bytes, which is what lets tests compare
// snapshots directly and lets merge results be diffed byte-for-byte.
//
// Every RestoreFrom validates what it decodes — bounds, orderings,
// arithmetic invariants like busy ≤ total — and reports corruption
// through the decoder's sticky error (wrapping snapshot.ErrBadSnapshot)
// rather than building an acc that fails much later.

const (
	// maxSnapEntries bounds any one decoded collection (cars, cells,
	// sessions, per-session counts). Far above any real fleet, low
	// enough that a forged count cannot drive an iteration bomb.
	maxSnapEntries = 1 << 27
	// maxSnapSpans bounds the spans of one open session.
	maxSnapSpans = 1 << 22
	// snapPrealloc caps how much a decode loop preallocates ahead of
	// the data it has actually read.
	snapPrealloc = 4096
)

func preallocN(n int) int {
	if n > snapPrealloc {
		return snapPrealloc
	}
	return n
}

// sortedKeys returns m's keys in ascending order, the iteration order
// every map encoder uses.
func sortedKeys[K cmp.Ordered, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// daysWords is the maximum bitmap length a period's day indices can
// occupy — the bound decoders enforce on stored bitmaps.
func daysWords(p simtime.Period) int { return (p.Days() + 63) / 64 }

func encodeDaysBits(e *snapshot.Encoder, d *daysBits) {
	e.Uvarint(uint64(len(d.bits)))
	for _, w := range d.bits {
		e.Uvarint(w)
	}
}

func decodeDaysBits(d *snapshot.Decoder, maxWords int) *daysBits {
	n := d.Len(maxWords)
	if n < 0 {
		return nil
	}
	out := &daysBits{bits: make([]uint64, n)}
	for i := 0; i < n; i++ {
		out.bits[i] = d.Uvarint()
	}
	if n > 0 && d.Err() == nil && out.bits[n-1] == 0 {
		// set()/or() never leave trailing zero words; a stored one
		// would make equal states encode differently.
		d.Failf("day bitmap has trailing zero word")
		return nil
	}
	return out
}

func encodeCarDays(e *snapshot.Encoder, m map[cdr.CarID]*daysBits) {
	e.Uvarint(uint64(len(m)))
	for _, car := range sortedKeys(m) {
		e.Uvarint(uint64(car))
		encodeDaysBits(e, m[car])
	}
}

func decodeCarDays(d *snapshot.Decoder, maxWords int) map[cdr.CarID]*daysBits {
	n := d.Len(maxSnapEntries)
	if n < 0 {
		return nil
	}
	m := make(map[cdr.CarID]*daysBits, preallocN(n))
	for i := 0; i < n; i++ {
		car := cdr.CarID(d.Uvarint())
		db := decodeDaysBits(d, maxWords)
		if d.Err() != nil {
			return nil
		}
		if _, dup := m[car]; dup {
			d.Failf("duplicate car %d in day map", car)
			return nil
		}
		m[car] = db
	}
	return m
}

// ---------------------------------------------------------------------------
// presence

func (a *presenceAcc) SnapshotTo(w io.Writer) error {
	e := snapshot.NewEncoder(w)
	encodeCarDays(e, a.carDays)
	e.Uvarint(uint64(len(a.cellDays)))
	for _, cell := range sortedKeys(a.cellDays) {
		e.Uvarint(uint64(cell))
		encodeDaysBits(e, a.cellDays[cell])
	}
	return e.Err()
}

func (a *presenceAcc) RestoreFrom(r io.Reader) error {
	d := snapshot.NewDecoder(r)
	maxW := daysWords(a.period)
	carDays := decodeCarDays(d, maxW)
	n := d.Len(maxSnapEntries)
	if d.Err() != nil {
		return d.Err()
	}
	cellDays := make(map[radio.CellKey]*daysBits, preallocN(n))
	for i := 0; i < n; i++ {
		cell := radio.CellKey(d.Uvarint())
		db := decodeDaysBits(d, maxW)
		if d.Err() != nil {
			return d.Err()
		}
		if _, dup := cellDays[cell]; dup {
			d.Failf("duplicate cell %d in day map", cell)
			return d.Err()
		}
		cellDays[cell] = db
	}
	if d.Err() != nil {
		return d.Err()
	}
	a.carDays, a.cellDays = carDays, cellDays
	return nil
}

// ---------------------------------------------------------------------------
// connected

func (a *connectedAcc) SnapshotTo(w io.Writer) error {
	// Every Add writes both maps, so they share a key set and one
	// sorted pass covers both.
	e := snapshot.NewEncoder(w)
	e.Uvarint(uint64(len(a.fullSec)))
	for _, car := range sortedKeys(a.fullSec) {
		e.Uvarint(uint64(car))
		e.Varint(a.fullSec[car])
		e.Varint(a.truncSec[car])
	}
	return e.Err()
}

func (a *connectedAcc) RestoreFrom(r io.Reader) error {
	d := snapshot.NewDecoder(r)
	n := d.Len(maxSnapEntries)
	if d.Err() != nil {
		return d.Err()
	}
	full := make(map[cdr.CarID]int64, preallocN(n))
	trunc := make(map[cdr.CarID]int64, preallocN(n))
	for i := 0; i < n; i++ {
		car := cdr.CarID(d.Uvarint())
		f, t := d.Varint(), d.Varint()
		if d.Err() != nil {
			return d.Err()
		}
		if t < 0 || f < t {
			// Per-record truncation can only shrink: 0 ≤ trunc ≤ full.
			d.Failf("car %d connected seconds full=%d trunc=%d inconsistent", car, f, t)
			return d.Err()
		}
		if _, dup := full[car]; dup {
			d.Failf("duplicate car %d in connected map", car)
			return d.Err()
		}
		full[car], trunc[car] = f, t
	}
	a.fullSec, a.truncSec = full, trunc
	return nil
}

// ---------------------------------------------------------------------------
// days

func (a *daysAcc) SnapshotTo(w io.Writer) error {
	e := snapshot.NewEncoder(w)
	encodeCarDays(e, a.carDays)
	return e.Err()
}

func (a *daysAcc) RestoreFrom(r io.Reader) error {
	d := snapshot.NewDecoder(r)
	carDays := decodeCarDays(d, daysWords(a.period))
	if d.Err() != nil {
		return d.Err()
	}
	a.carDays = carDays
	return nil
}

// ---------------------------------------------------------------------------
// busy

func (a *busyAcc) SnapshotTo(w io.Writer) error {
	// Add writes busy and total together, so the key sets coincide.
	e := snapshot.NewEncoder(w)
	e.Uvarint(uint64(len(a.total)))
	for _, car := range sortedKeys(a.total) {
		e.Uvarint(uint64(car))
		e.Varint(int64(a.busy[car]))
		e.Varint(int64(a.total[car]))
	}
	return e.Err()
}

func (a *busyAcc) RestoreFrom(r io.Reader) error {
	d := snapshot.NewDecoder(r)
	n := d.Len(maxSnapEntries)
	if d.Err() != nil {
		return d.Err()
	}
	busy := make(map[cdr.CarID]time.Duration, preallocN(n))
	total := make(map[cdr.CarID]time.Duration, preallocN(n))
	for i := 0; i < n; i++ {
		car := cdr.CarID(d.Uvarint())
		b, t := d.Varint(), d.Varint()
		if d.Err() != nil {
			return d.Err()
		}
		if b < 0 || t < b {
			d.Failf("car %d busy=%d total=%d inconsistent", car, b, t)
			return d.Err()
		}
		if _, dup := total[car]; dup {
			d.Failf("duplicate car %d in busy map", car)
			return d.Err()
		}
		busy[car], total[car] = time.Duration(b), time.Duration(t)
	}
	a.busy, a.total = busy, total
	return nil
}

// ---------------------------------------------------------------------------
// segments

func (a *segmentsAcc) SnapshotTo(w io.Writer) error {
	e := snapshot.NewEncoder(w)
	e.Uvarint(uint64(len(a.cars)))
	for _, car := range sortedKeys(a.cars) {
		st := a.cars[car]
		e.Uvarint(uint64(car))
		encodeDaysBits(e, &st.days)
		e.Varint(int64(st.busy))
		e.Varint(int64(st.total))
	}
	return e.Err()
}

func (a *segmentsAcc) RestoreFrom(r io.Reader) error {
	d := snapshot.NewDecoder(r)
	maxW := daysWords(a.ctx.Period)
	n := d.Len(maxSnapEntries)
	if d.Err() != nil {
		return d.Err()
	}
	cars := make(map[cdr.CarID]*carSegState, preallocN(n))
	for i := 0; i < n; i++ {
		car := cdr.CarID(d.Uvarint())
		db := decodeDaysBits(d, maxW)
		b, t := d.Varint(), d.Varint()
		if d.Err() != nil {
			return d.Err()
		}
		if b < 0 || t < b {
			d.Failf("car %d segment busy=%d total=%d inconsistent", car, b, t)
			return d.Err()
		}
		if _, dup := cars[car]; dup {
			d.Failf("duplicate car %d in segment map", car)
			return d.Err()
		}
		cars[car] = &carSegState{days: *db, busy: time.Duration(b), total: time.Duration(t)}
	}
	a.cars = cars
	return nil
}

// ---------------------------------------------------------------------------
// durations

func (a *durationsAcc) SnapshotTo(w io.Writer) error {
	e := snapshot.NewEncoder(w)
	a.hist.Snapshot(e)
	a.sample.Snapshot(e)
	e.Varint(a.n)
	e.Varint(a.fullSec)
	e.Varint(a.fullNano)
	e.Varint(a.truncSec)
	e.Varint(a.truncNano)
	return e.Err()
}

func (a *durationsAcc) RestoreFrom(r io.Reader) error {
	d := snapshot.NewDecoder(r)
	var hist stats.LogHist
	hist.Restore(d)
	sample := stats.NewSample(durSampleCap)
	sample.Restore(d)
	n := d.Varint()
	fullSec, fullNano := d.Varint(), d.Varint()
	truncSec, truncNano := d.Varint(), d.Varint()
	if d.Err() != nil {
		return d.Err()
	}
	if n < 0 || fullSec < 0 || truncSec < 0 || truncSec > fullSec {
		d.Failf("duration sums n=%d full=%d trunc=%d inconsistent", n, fullSec, truncSec)
		return d.Err()
	}
	a.hist, a.sample = hist, sample
	a.n = n
	a.fullSec, a.fullNano = fullSec, fullNano
	a.truncSec, a.truncNano = truncSec, truncNano
	return nil
}

// ---------------------------------------------------------------------------
// open sessions (shared by handovers and usage)

// encodeSessions writes still-open sessions as their span lists;
// Start/End/Connected are derived on decode, so the stored form cannot
// contradict the sessionizer's invariants. Sessions must be the output
// of Sessionizer.Snapshot: at most one per car, ascending car order.
func encodeSessions(e *snapshot.Encoder, sessions []clean.Session) {
	e.Uvarint(uint64(len(sessions)))
	for i := range sessions {
		s := &sessions[i]
		e.Uvarint(uint64(s.Car))
		e.Uvarint(uint64(len(s.Spans)))
		for _, sp := range s.Spans {
			e.Uvarint(uint64(sp.Cell))
			e.Varint(sp.Start.UnixNano())
			e.Varint(int64(sp.Duration))
		}
	}
}

func decodeSessions(d *snapshot.Decoder) []clean.Session {
	n := d.Len(maxSnapEntries)
	if n < 0 {
		return nil
	}
	out := make([]clean.Session, 0, preallocN(n))
	var lastCar cdr.CarID
	for i := 0; i < n; i++ {
		car := cdr.CarID(d.Uvarint())
		nspans := d.Len(maxSnapSpans)
		if d.Err() != nil {
			return nil
		}
		if nspans < 1 {
			d.Failf("open session for car %d has no spans", car)
			return nil
		}
		if i > 0 && car <= lastCar {
			d.Failf("open sessions out of car order (%d after %d)", car, lastCar)
			return nil
		}
		lastCar = car
		spans := make([]clean.CellSpan, 0, preallocN(nspans))
		var connected time.Duration
		var end time.Time
		for j := 0; j < nspans; j++ {
			cell := radio.CellKey(d.Uvarint())
			startNano := d.Varint()
			dur := d.Varint()
			if d.Err() != nil {
				return nil
			}
			if !cell.Carrier().Valid() {
				d.Failf("open session span on invalid cell %d", cell)
				return nil
			}
			if dur < 0 {
				d.Failf("open session span duration %d negative", dur)
				return nil
			}
			// All pipeline timestamps are UTC; UnixNano round-trips
			// them exactly, and .UTC() keeps local-time-dependent
			// arithmetic (hour-of-week) identical after restore.
			sp := clean.CellSpan{
				Cell:     cell,
				Start:    time.Unix(0, startNano).UTC(),
				Duration: time.Duration(dur),
			}
			spans = append(spans, sp)
			connected += sp.Duration
			if spEnd := sp.Start.Add(sp.Duration); spEnd.After(end) {
				end = spEnd
			}
		}
		out = append(out, clean.Session{
			Car:       car,
			Start:     spans[0].Start,
			End:       end,
			Connected: connected,
			Spans:     spans,
		})
	}
	return out
}

// encodeHeads writes the head-session stash of a TrackHeads
// accumulator: the tracking flag, then the heads in ascending car
// order using the open-session wire form. A non-tracking accumulator
// writes just the flag.
func encodeHeads(e *snapshot.Encoder, trackHeads bool, heads map[cdr.CarID]*clean.Session) {
	e.Bool(trackHeads)
	if !trackHeads {
		return
	}
	out := make([]clean.Session, 0, len(heads))
	for _, car := range sortedKeys(heads) {
		out = append(out, *heads[car])
	}
	encodeSessions(e, out)
}

// decodeHeads reads what encodeHeads wrote, returning the tracking
// flag and the rebuilt stash (nil when tracking is off).
func decodeHeads(d *snapshot.Decoder) (bool, map[cdr.CarID]*clean.Session) {
	if !d.Bool() {
		return false, nil
	}
	sessions := decodeSessions(d)
	if d.Err() != nil {
		return false, nil
	}
	heads := make(map[cdr.CarID]*clean.Session, len(sessions))
	for i := range sessions {
		heads[sessions[i].Car] = &sessions[i]
	}
	return true, heads
}

// ---------------------------------------------------------------------------
// handovers

func (a *handoverAcc) SnapshotTo(w io.Writer) error {
	e := snapshot.NewEncoder(w)
	encodeSessions(e, a.z.Snapshot())
	encodeHeads(e, a.trackHeads, a.heads)
	e.Uvarint(uint64(len(a.byKind)))
	for _, kind := range sortedKeys(a.byKind) {
		e.Uvarint(uint64(kind))
		e.Varint(a.byKind[kind])
	}
	e.Uvarint(uint64(len(a.counts)))
	for _, c := range a.counts {
		e.F64(c)
	}
	return e.Err()
}

func (a *handoverAcc) RestoreFrom(r io.Reader) error {
	d := snapshot.NewDecoder(r)
	sessions := decodeSessions(d)
	trackHeads, heads := decodeHeads(d)
	nk := d.Len(radio.NumHandoverKinds)
	if d.Err() != nil {
		return d.Err()
	}
	byKind := make(map[radio.HandoverKind]int64, nk)
	for i := 0; i < nk; i++ {
		kind := radio.HandoverKind(d.Uvarint())
		c := d.Varint()
		if d.Err() != nil {
			return d.Err()
		}
		if c < 0 {
			d.Failf("handover kind %d count %d negative", kind, c)
			return d.Err()
		}
		if _, dup := byKind[kind]; dup {
			d.Failf("duplicate handover kind %d", kind)
			return d.Err()
		}
		byKind[kind] = c
	}
	nc := d.Len(maxSnapEntries)
	if d.Err() != nil {
		return d.Err()
	}
	counts := make([]float64, 0, preallocN(nc))
	for i := 0; i < nc; i++ {
		counts = append(counts, d.F64())
	}
	if d.Err() != nil {
		return d.Err()
	}
	a.z.RestoreOpen(sessions)
	a.trackHeads, a.heads = trackHeads, heads
	a.byKind, a.counts = byKind, counts
	return nil
}

// ---------------------------------------------------------------------------
// carriers

func (a *carriersAcc) SnapshotTo(w io.Writer) error {
	// carsOn and timeOn share a key set (Add writes both); allCars is
	// the union of the per-carrier sets and total the sum of timeOn,
	// so neither needs to be stored.
	e := snapshot.NewEncoder(w)
	e.Uvarint(uint64(len(a.carsOn)))
	for _, carrier := range sortedKeys(a.carsOn) {
		e.Uvarint(uint64(carrier))
		e.Varint(int64(a.timeOn[carrier]))
		set := a.carsOn[carrier]
		e.Uvarint(uint64(len(set)))
		for _, car := range sortedKeys(set) {
			e.Uvarint(uint64(car))
		}
	}
	return e.Err()
}

func (a *carriersAcc) RestoreFrom(r io.Reader) error {
	d := snapshot.NewDecoder(r)
	n := d.Len(radio.NumCarriers)
	if d.Err() != nil {
		return d.Err()
	}
	carsOn := make(map[radio.CarrierID]map[cdr.CarID]struct{}, n)
	timeOn := make(map[radio.CarrierID]time.Duration, n)
	allCars := make(map[cdr.CarID]struct{})
	var total time.Duration
	for i := 0; i < n; i++ {
		carrier := radio.CarrierID(d.Uvarint())
		dur := d.Varint()
		nc := d.Len(maxSnapEntries)
		if d.Err() != nil {
			return d.Err()
		}
		if !carrier.Valid() {
			d.Failf("invalid carrier %d", carrier)
			return d.Err()
		}
		if dur < 0 {
			d.Failf("carrier %d time %d negative", carrier, dur)
			return d.Err()
		}
		if _, dup := carsOn[carrier]; dup {
			d.Failf("duplicate carrier %d", carrier)
			return d.Err()
		}
		set := make(map[cdr.CarID]struct{}, preallocN(nc))
		for j := 0; j < nc; j++ {
			car := cdr.CarID(d.Uvarint())
			if d.Err() != nil {
				return d.Err()
			}
			set[car] = struct{}{}
			allCars[car] = struct{}{}
		}
		if len(set) != nc {
			d.Failf("carrier %d car set has duplicates", carrier)
			return d.Err()
		}
		carsOn[carrier] = set
		timeOn[carrier] = time.Duration(dur)
		total += time.Duration(dur)
	}
	a.carsOn, a.timeOn, a.allCars, a.total = carsOn, timeOn, allCars, total
	return nil
}

// ---------------------------------------------------------------------------
// usage

func (a *usageAcc) SnapshotTo(w io.Writer) error {
	e := snapshot.NewEncoder(w)
	encodeSessions(e, a.z.Snapshot())
	encodeHeads(e, a.trackHeads, a.heads)
	for hour := 0; hour < simtime.HoursPerDay; hour++ {
		for day := 0; day < 7; day++ {
			e.F64(a.matrix.At(hour, day))
		}
	}
	e.Varint(a.sessions)
	return e.Err()
}

func (a *usageAcc) RestoreFrom(r io.Reader) error {
	d := snapshot.NewDecoder(r)
	sessions := decodeSessions(d)
	trackHeads, heads := decodeHeads(d)
	var m simtime.WeekMatrix
	for hour := 0; hour < simtime.HoursPerDay; hour++ {
		for day := 0; day < 7; day++ {
			m.Set(hour, day, d.F64())
		}
	}
	count := d.Varint()
	if d.Err() != nil {
		return d.Err()
	}
	if count < 0 {
		d.Failf("closed session count %d negative", count)
		return d.Err()
	}
	a.z.RestoreOpen(sessions)
	a.trackHeads, a.heads = trackHeads, heads
	a.matrix = m
	a.sessions = count
	return nil
}

// ---------------------------------------------------------------------------
// clusters

func (a *clustersAcc) SnapshotTo(w io.Writer) error {
	e := snapshot.NewEncoder(w)
	e.Uvarint(uint64(len(a.busyCells)))
	for i := range a.perCell {
		nonEmpty := 0
		for _, set := range a.perCell[i] {
			if len(set) > 0 {
				nonEmpty++
			}
		}
		e.Uvarint(uint64(nonEmpty))
		for bin, set := range a.perCell[i] {
			if len(set) == 0 {
				continue
			}
			e.Uvarint(uint64(bin))
			e.Uvarint(uint64(len(set)))
			for _, car := range sortedKeys(set) {
				e.Uvarint(uint64(car))
			}
		}
	}
	return e.Err()
}

func (a *clustersAcc) RestoreFrom(r io.Reader) error {
	d := snapshot.NewDecoder(r)
	nc := d.Len(maxSnapEntries)
	if d.Err() != nil {
		return d.Err()
	}
	if nc != len(a.busyCells) {
		d.Failf("snapshot covers %d busy cells, accumulator has %d", nc, len(a.busyCells))
		return d.Err()
	}
	numBins := a.ctx.Period.NumBins()
	perCell := make([][]map[cdr.CarID]struct{}, nc)
	for i := 0; i < nc; i++ {
		perCell[i] = make([]map[cdr.CarID]struct{}, numBins)
		nb := d.Len(numBins)
		if d.Err() != nil {
			return d.Err()
		}
		lastBin := -1
		for j := 0; j < nb; j++ {
			bin := d.Len(numBins - 1)
			ncar := d.Len(maxSnapEntries)
			if d.Err() != nil {
				return d.Err()
			}
			if bin <= lastBin {
				d.Failf("cell %d bins out of order", i)
				return d.Err()
			}
			lastBin = bin
			if ncar < 1 {
				d.Failf("cell %d bin %d has empty car set", i, bin)
				return d.Err()
			}
			set := make(map[cdr.CarID]struct{}, preallocN(ncar))
			for k := 0; k < ncar; k++ {
				set[cdr.CarID(d.Uvarint())] = struct{}{}
			}
			if d.Err() != nil {
				return d.Err()
			}
			if len(set) != ncar {
				d.Failf("cell %d bin %d car set has duplicates", i, bin)
				return d.Err()
			}
			perCell[i][bin] = set
		}
	}
	a.perCell = perCell
	return nil
}
