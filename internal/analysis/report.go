package analysis

import (
	"cellcars/internal/cdr"
	"cellcars/internal/obs"
	"cellcars/internal/radio"
	"cellcars/internal/simtime"
	"cellcars/internal/stats"
)

// Report bundles every analysis of §4 computed over one data set — the
// output of a full pipeline run.
type Report struct {
	// Presence and WeekdayRows cover Figure 2 and Table 1.
	Presence    DailyPresence
	WeekdayRows []WeekdayRow
	// Connected covers Figure 3.
	Connected ConnectedTime
	// DaysHist covers Figure 6.
	DaysHist *stats.Histogram
	// Segments covers Table 2 (rare thresholds 10 and 30 days).
	Segments []Segment
	// Busy covers Figure 7.
	Busy BusyTime
	// Durations covers Figure 9.
	Durations CellDurations
	// Handovers covers §4.5.
	Handovers HandoverStats
	// Carriers covers Table 3.
	Carriers CarrierUsage
	// FleetUsage is the fleet-wide 24×7 usage matrix (the Figure 5
	// encoding aggregated over the whole population): per local hour of
	// week, the number of aggregate sessions touching it. UsageSessions
	// is the total aggregate-session count.
	FleetUsage    simtime.WeekMatrix
	UsageSessions int64
	// Clusters covers Figure 11; empty when no busy cells were supplied.
	Clusters BusyClusters

	// RawRecords and CleanRecords count the stream before and after
	// ghost removal.
	RawRecords, CleanRecords int
	// OutOfPeriod counts ghost-free records excluded because they start
	// outside the study period. The pipeline's policy is uniform: such
	// records contribute to no analysis (see Engine).
	OutOfPeriod int64

	// StageErrors lists the analysis stages that failed (error or
	// panic) and were skipped; the rest of the report is still valid.
	StageErrors []StageError

	// Profile is the per-stage cost table — wall time and record
	// counts for every stage's Add/Merge/Finalize, aggregated over all
	// workers, in engine stage order. Populated only when the run was
	// observed (RunOptions.Obs non-nil); timings make it
	// non-deterministic, so bit-identity checks must ignore it.
	Profile []StageProfile
}

// StageProfile is one row of the pipeline cost table (the "Pipeline
// profile" report section, in the spirit of the paper's Table 1
// accounting): where a run spent its time, stage by stage.
type StageProfile struct {
	// Stage is the stable stage name.
	Stage string
	// Records counts records offered to the stage's Add path; on a
	// clean run this equals the engine's accepted-record count for
	// every live stage.
	Records int64
	// Batches counts timed Add batches.
	Batches int64
	// AddSeconds, MergeSeconds and FinalizeSeconds are the wall time
	// spent in the stage's three accumulator operations, summed across
	// workers (concurrent stage work can sum past the run's elapsed
	// wall time).
	AddSeconds, MergeSeconds, FinalizeSeconds float64
}

// TotalSeconds returns the stage's summed wall cost.
func (p StageProfile) TotalSeconds() float64 {
	return p.AddSeconds + p.MergeSeconds + p.FinalizeSeconds
}

// StageError records one skipped analysis stage.
type StageError struct {
	// Stage is the stable stage name (see Run).
	Stage string
	// Err is the rendered failure.
	Err string
}

// Failed returns the error for a named stage, or nil when the stage
// ran cleanly.
func (r *Report) Failed(stage string) *StageError {
	for i := range r.StageErrors {
		if r.StageErrors[i].Stage == stage {
			return &r.StageErrors[i]
		}
	}
	return nil
}

// RunOptions tunes a full pipeline run.
type RunOptions struct {
	// RareDays are the Table 2 thresholds. Defaults to {10, 30}.
	RareDays []int
	// BusyCells is the Figure 11 clustering population (cells whose
	// average weekly UPRB is at least 70%); clustering is skipped when
	// empty.
	BusyCells []radio.CellKey
	// Seed drives k-means++ initialization. Default 1.
	Seed uint64
	// FailStage, when non-empty, makes the named stage fail
	// artificially — a chaos hook proving that one broken analysis
	// degrades to a diagnostic instead of killing the run. Stage
	// names: presence, connected, days, segments, busy, durations,
	// handovers, carriers, usage, clusters.
	FailStage string
	// Workers is the parallel shard count; values below 1 mean 1. The
	// report is identical for any worker count on the exact stages.
	Workers int
	// Obs, when non-nil, receives pipeline metrics — per-stage wall
	// time and record counts, ingest outcome counters, shard balance,
	// checkpoint costs — and enables Report.Profile. Nil turns the
	// observability layer off at zero cost.
	Obs *obs.Registry
	// TrackHeads makes the session stages (handovers, usage) stash
	// each car's first closed session instead of accounting it
	// immediately, so time-adjacent accumulator slices can be stitched
	// back together exactly with Streaming.MergeOrdered. Plain Merge
	// and Finalize still account the stashed heads, so a TrackHeads
	// run finalized alone produces the ordinary report. Only the
	// time-bucketed query service needs this; batch runs leave it off.
	TrackHeads bool
}

// Run executes the complete measurement pipeline over a raw record
// stream: ghost removal (§3), then every analysis in §4. The input
// slice is not modified. Run is a thin adapter over Engine — one
// accumulator set per worker shard, merged into the report — so batch,
// streaming and parallel execution share a single implementation of
// every stage.
//
// Each analysis stage runs isolated: a stage that returns an error or
// panics is recorded in Report.StageErrors and skipped, and every
// other table and figure is still produced. Run itself only returns
// an error when the input stream cannot be read at all.
func Run(records []cdr.Record, ctx Context, opts RunOptions) (*Report, error) {
	return NewEngine(ctx, EngineOptions{RunOptions: opts, Workers: opts.Workers}).Run(records)
}
