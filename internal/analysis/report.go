package analysis

import (
	"math/rand/v2"

	"cellcars/internal/cdr"
	"cellcars/internal/clean"
	"cellcars/internal/radio"
	"cellcars/internal/stats"
)

// Report bundles every analysis of §4 computed over one data set — the
// output of a full pipeline run.
type Report struct {
	// Presence and WeekdayRows cover Figure 2 and Table 1.
	Presence    DailyPresence
	WeekdayRows []WeekdayRow
	// Connected covers Figure 3.
	Connected ConnectedTime
	// DaysHist covers Figure 6.
	DaysHist *stats.Histogram
	// Segments covers Table 2 (rare thresholds 10 and 30 days).
	Segments []Segment
	// Busy covers Figure 7.
	Busy BusyTime
	// Durations covers Figure 9.
	Durations CellDurations
	// Handovers covers §4.5.
	Handovers HandoverStats
	// Carriers covers Table 3.
	Carriers CarrierUsage
	// Clusters covers Figure 11; empty when no busy cells were supplied.
	Clusters BusyClusters

	// RawRecords and CleanRecords count the stream before and after
	// ghost removal.
	RawRecords, CleanRecords int
}

// RunOptions tunes a full pipeline run.
type RunOptions struct {
	// RareDays are the Table 2 thresholds. Defaults to {10, 30}.
	RareDays []int
	// BusyCells is the Figure 11 clustering population (cells whose
	// average weekly UPRB is at least 70%); clustering is skipped when
	// empty.
	BusyCells []radio.CellKey
	// Seed drives k-means++ initialization. Default 1.
	Seed uint64
}

// Run executes the complete measurement pipeline over a raw record
// stream: ghost removal (§3), then every analysis in §4. The input
// slice is not modified.
func Run(records []cdr.Record, ctx Context, opts RunOptions) (*Report, error) {
	if opts.RareDays == nil {
		opts.RareDays = []int{10, 30}
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	cleaned, err := cdr.ReadAll(clean.RemoveGhosts(cdr.NewSliceReader(records)))
	if err != nil {
		return nil, err
	}

	r := &Report{RawRecords: len(records), CleanRecords: len(cleaned)}
	r.Presence = DailyPresenceOf(cleaned, ctx.Period)
	r.WeekdayRows = Table1(r.Presence, ctx.Period)
	r.Connected = ConnectedTimeOf(cleaned, ctx.Period)
	r.DaysHist = DaysHistogram(cleaned, ctx.Period)
	if ctx.Load != nil {
		r.Segments = Segmentation(cleaned, ctx, opts.RareDays...)
		r.Busy = BusyTimeOf(cleaned, ctx)
	}
	r.Durations = CellDurationsOf(cleaned)
	// Handover accounting runs on the truncated stream: the paper's §3
	// truncation exists precisely so stuck sessions do not bridge
	// otherwise-separate mobility sessions.
	truncated, err := cdr.ReadAll(clean.Truncate(cdr.NewSliceReader(cleaned), clean.TruncateLimit))
	if err != nil {
		return nil, err
	}
	r.Handovers, err = HandoversOf(truncated)
	if err != nil {
		return nil, err
	}
	r.Carriers = CarrierUsageOf(cleaned)
	if ctx.Load != nil && len(opts.BusyCells) >= 2 {
		rng := rand.New(rand.NewPCG(opts.Seed, 0xF16))
		r.Clusters = ClusterBusyCells(cleaned, ctx, opts.BusyCells, rng)
	}
	return r, nil
}
