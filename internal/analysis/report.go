package analysis

import (
	"fmt"
	"math/rand/v2"

	"cellcars/internal/cdr"
	"cellcars/internal/clean"
	"cellcars/internal/radio"
	"cellcars/internal/stats"
)

// Report bundles every analysis of §4 computed over one data set — the
// output of a full pipeline run.
type Report struct {
	// Presence and WeekdayRows cover Figure 2 and Table 1.
	Presence    DailyPresence
	WeekdayRows []WeekdayRow
	// Connected covers Figure 3.
	Connected ConnectedTime
	// DaysHist covers Figure 6.
	DaysHist *stats.Histogram
	// Segments covers Table 2 (rare thresholds 10 and 30 days).
	Segments []Segment
	// Busy covers Figure 7.
	Busy BusyTime
	// Durations covers Figure 9.
	Durations CellDurations
	// Handovers covers §4.5.
	Handovers HandoverStats
	// Carriers covers Table 3.
	Carriers CarrierUsage
	// Clusters covers Figure 11; empty when no busy cells were supplied.
	Clusters BusyClusters

	// RawRecords and CleanRecords count the stream before and after
	// ghost removal.
	RawRecords, CleanRecords int

	// StageErrors lists the analysis stages that failed (error or
	// panic) and were skipped; the rest of the report is still valid.
	StageErrors []StageError
}

// StageError records one skipped analysis stage.
type StageError struct {
	// Stage is the stable stage name (see Run).
	Stage string
	// Err is the rendered failure.
	Err string
}

// Failed returns the error for a named stage, or nil when the stage
// ran cleanly.
func (r *Report) Failed(stage string) *StageError {
	for i := range r.StageErrors {
		if r.StageErrors[i].Stage == stage {
			return &r.StageErrors[i]
		}
	}
	return nil
}

// RunOptions tunes a full pipeline run.
type RunOptions struct {
	// RareDays are the Table 2 thresholds. Defaults to {10, 30}.
	RareDays []int
	// BusyCells is the Figure 11 clustering population (cells whose
	// average weekly UPRB is at least 70%); clustering is skipped when
	// empty.
	BusyCells []radio.CellKey
	// Seed drives k-means++ initialization. Default 1.
	Seed uint64
	// FailStage, when non-empty, makes the named stage fail
	// artificially — a chaos hook proving that one broken analysis
	// degrades to a diagnostic instead of killing the run. Stage
	// names: presence, connected, days, segments, busy, durations,
	// handovers, carriers, clusters.
	FailStage string
}

// Run executes the complete measurement pipeline over a raw record
// stream: ghost removal (§3), then every analysis in §4. The input
// slice is not modified.
//
// Each analysis stage runs isolated: a stage that returns an error or
// panics is recorded in Report.StageErrors and skipped, and every
// other table and figure is still produced. Run itself only returns
// an error when the input stream cannot be read at all.
func Run(records []cdr.Record, ctx Context, opts RunOptions) (*Report, error) {
	if opts.RareDays == nil {
		opts.RareDays = []int{10, 30}
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	cleaned, err := cdr.ReadAll(clean.RemoveGhosts(cdr.NewSliceReader(records)))
	if err != nil {
		return nil, err
	}

	r := &Report{RawRecords: len(records), CleanRecords: len(cleaned)}
	r.runStage("presence", opts, func() error {
		r.Presence = DailyPresenceOf(cleaned, ctx.Period)
		r.WeekdayRows = Table1(r.Presence, ctx.Period)
		return nil
	})
	r.runStage("connected", opts, func() error {
		r.Connected = ConnectedTimeOf(cleaned, ctx.Period)
		return nil
	})
	r.runStage("days", opts, func() error {
		r.DaysHist = DaysHistogram(cleaned, ctx.Period)
		return nil
	})
	if ctx.Load != nil {
		r.runStage("segments", opts, func() error {
			r.Segments = Segmentation(cleaned, ctx, opts.RareDays...)
			return nil
		})
		r.runStage("busy", opts, func() error {
			r.Busy = BusyTimeOf(cleaned, ctx)
			return nil
		})
	}
	r.runStage("durations", opts, func() error {
		r.Durations = CellDurationsOf(cleaned)
		return nil
	})
	r.runStage("handovers", opts, func() error {
		// Handover accounting runs on the truncated stream: the
		// paper's §3 truncation exists precisely so stuck sessions do
		// not bridge otherwise-separate mobility sessions.
		truncated, err := cdr.ReadAll(clean.Truncate(cdr.NewSliceReader(cleaned), clean.TruncateLimit))
		if err != nil {
			return err
		}
		r.Handovers, err = HandoversOf(truncated)
		return err
	})
	r.runStage("carriers", opts, func() error {
		r.Carriers = CarrierUsageOf(cleaned)
		return nil
	})
	if ctx.Load != nil && len(opts.BusyCells) >= 2 {
		r.runStage("clusters", opts, func() error {
			rng := rand.New(rand.NewPCG(opts.Seed, 0xF16))
			r.Clusters = ClusterBusyCells(cleaned, ctx, opts.BusyCells, rng)
			return nil
		})
	}
	return r, nil
}

// runStage executes one analysis stage isolated: errors and panics
// are captured into StageErrors, leaving the stage's report fields at
// their zero values.
func (r *Report) runStage(name string, opts RunOptions, fn func() error) {
	defer func() {
		if p := recover(); p != nil {
			r.StageErrors = append(r.StageErrors, StageError{Stage: name, Err: fmt.Sprintf("panic: %v", p)})
		}
	}()
	if name == opts.FailStage {
		r.StageErrors = append(r.StageErrors, StageError{Stage: name, Err: "injected failure (FailStage)"})
		return
	}
	if err := fn(); err != nil {
		r.StageErrors = append(r.StageErrors, StageError{Stage: name, Err: err.Error()})
	}
}
