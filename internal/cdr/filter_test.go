package cdr

import (
	"testing"
	"time"
)

func TestFilterTimeRange(t *testing.T) {
	in := []Record{
		rec(1, 1, 0, time.Minute),
		rec(2, 1, time.Hour, time.Minute),
		rec(3, 1, 2*time.Hour, time.Minute),
	}
	out, err := ReadAll(FilterTimeRange(NewSliceReader(in), t0.Add(time.Hour), t0.Add(2*time.Hour)))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Car != 2 {
		t.Fatalf("filtered: %v", out)
	}
	// Boundaries: from inclusive, to exclusive.
	out, err = ReadAll(FilterTimeRange(NewSliceReader(in), t0, t0.Add(time.Hour)))
	if err != nil || len(out) != 1 || out[0].Car != 1 {
		t.Fatalf("boundary: %v %v", out, err)
	}
}

func TestFilterCars(t *testing.T) {
	in := []Record{
		rec(1, 1, 0, time.Minute),
		rec(2, 1, time.Hour, time.Minute),
		rec(1, 2, 2*time.Hour, time.Minute),
	}
	keep := map[CarID]struct{}{1: {}}
	out, err := ReadAll(FilterCars(NewSliceReader(in), keep))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("kept %d records", len(out))
	}
	for _, r := range out {
		if r.Car != 1 {
			t.Fatalf("wrong car %d", r.Car)
		}
	}
}

func TestSampleCarsFractionAndConsistency(t *testing.T) {
	// 10000 cars, one record each.
	var in []Record
	for car := CarID(0); car < 10000; car++ {
		in = append(in, rec(car, 1, time.Duration(car)*time.Second, time.Minute))
	}
	out, err := ReadAll(SampleCars(NewSliceReader(in), 0.25, 7))
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(len(out)) / float64(len(in))
	if frac < 0.22 || frac > 0.28 {
		t.Fatalf("sample fraction %.3f, want ~0.25", frac)
	}
	// Same key: same cars. Record-level predicate must agree.
	for _, r := range out {
		if !InSample(r.Car, 0.25, 7) {
			t.Fatalf("car %d sampled but InSample says no", r.Car)
		}
	}
	out2, err := ReadAll(SampleCars(NewSliceReader(in), 0.25, 7))
	if err != nil || len(out2) != len(out) {
		t.Fatalf("sampling not deterministic: %d vs %d", len(out2), len(out))
	}
	// Different key: different sample (overlap ~ frac²·N, not equal).
	out3, _ := ReadAll(SampleCars(NewSliceReader(in), 0.25, 8))
	same := 0
	set := map[CarID]struct{}{}
	for _, r := range out {
		set[r.Car] = struct{}{}
	}
	for _, r := range out3 {
		if _, ok := set[r.Car]; ok {
			same++
		}
	}
	if same == len(out) {
		t.Fatal("different keys selected identical samples")
	}
}

func TestSampleCarsKeepsWholeCars(t *testing.T) {
	var in []Record
	for car := CarID(0); car < 100; car++ {
		for k := 0; k < 5; k++ {
			in = append(in, rec(car, 1, time.Duration(int(car)*10+k)*time.Minute, time.Minute))
		}
	}
	out, err := ReadAll(SampleCars(NewSliceReader(in), 0.5, 3))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[CarID]int{}
	for _, r := range out {
		counts[r.Car]++
	}
	for car, n := range counts {
		if n != 5 {
			t.Fatalf("car %d partially sampled: %d/5 records", car, n)
		}
	}
}

func TestSampleCarsEdges(t *testing.T) {
	in := []Record{rec(1, 1, 0, time.Minute)}
	out, err := ReadAll(SampleCars(NewSliceReader(in), 0, 1))
	if err != nil || len(out) != 0 {
		t.Fatalf("frac 0: %v %v", out, err)
	}
	out, err = ReadAll(SampleCars(NewSliceReader(in), 1, 1))
	if err != nil || len(out) != 1 {
		t.Fatalf("frac 1: %v %v", out, err)
	}
	if InSample(1, 0, 1) || !InSample(1, 1, 1) {
		t.Fatal("InSample edges")
	}
}
