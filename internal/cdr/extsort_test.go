package cdr

import (
	"math/rand/v2"
	"os"
	"path/filepath"
	"testing"
	"time"

	"cellcars/internal/radio"
)

func randomRecords(n int, seed uint64) []Record {
	rng := rand.New(rand.NewPCG(seed, 77))
	out := make([]Record, n)
	for i := range out {
		out[i] = Record{
			Car:      CarID(rng.Uint64N(500)),
			Cell:     radio.MakeCellKey(radio.BSID(rng.Uint32N(100)), radio.SectorID(rng.UintN(3)), radio.CarrierID(rng.UintN(5)+1)),
			Start:    t0.Add(time.Duration(rng.Uint64N(90*24*3600)) * time.Second),
			Duration: time.Duration(rng.Uint64N(600)) * time.Second,
		}
	}
	return out
}

func TestExternalSortInMemoryPath(t *testing.T) {
	in := randomRecords(1000, 1)
	var out SliceWriter
	if err := ExternalSort(NewSliceReader(in), &out, ExternalSortConfig{ChunkRecords: 10000}); err != nil {
		t.Fatal(err)
	}
	if len(out.Records) != len(in) {
		t.Fatalf("records = %d, want %d", len(out.Records), len(in))
	}
	if !Sorted(out.Records) {
		t.Fatal("output not sorted")
	}
}

func TestExternalSortSpillsAndMerges(t *testing.T) {
	in := randomRecords(5000, 2)
	tmp := t.TempDir()
	var out SliceWriter
	// Tiny chunks force many spills.
	if err := ExternalSort(NewSliceReader(in), &out, ExternalSortConfig{ChunkRecords: 333, TempDir: tmp}); err != nil {
		t.Fatal(err)
	}
	if len(out.Records) != len(in) {
		t.Fatalf("records = %d, want %d", len(out.Records), len(in))
	}
	if !Sorted(out.Records) {
		t.Fatal("output not sorted")
	}
	// Multiset equality: same records in, possibly different order.
	seen := map[Record]int{}
	for _, r := range in {
		seen[r]++
	}
	for _, r := range out.Records {
		seen[r]--
	}
	for r, c := range seen {
		if c != 0 {
			t.Fatalf("record %v count imbalance %d", r, c)
		}
	}
	// Spill files cleaned up.
	entries, err := os.ReadDir(tmp)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("%d temp files left behind", len(entries))
	}
}

func TestExternalSortExactChunkBoundary(t *testing.T) {
	in := randomRecords(600, 3)
	var out SliceWriter
	if err := ExternalSort(NewSliceReader(in), &out, ExternalSortConfig{ChunkRecords: 300, TempDir: t.TempDir()}); err != nil {
		t.Fatal(err)
	}
	if len(out.Records) != 600 || !Sorted(out.Records) {
		t.Fatalf("boundary case: %d records, sorted=%v", len(out.Records), Sorted(out.Records))
	}
}

func TestExternalSortEmpty(t *testing.T) {
	var out SliceWriter
	if err := ExternalSort(NewSliceReader(nil), &out, ExternalSortConfig{}); err != nil {
		t.Fatal(err)
	}
	if len(out.Records) != 0 {
		t.Fatalf("records = %d", len(out.Records))
	}
}

func TestSortFile(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "in.cdr")
	dst := filepath.Join(dir, "out.cdr")

	in := randomRecords(2000, 4)
	f, err := os.Create(src)
	if err != nil {
		t.Fatal(err)
	}
	w := NewBinaryWriter(f)
	if err := WriteAll(w, in); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	if err := SortFile(src, dst, ExternalSortConfig{ChunkRecords: 500}); err != nil {
		t.Fatal(err)
	}
	out, err := os.Open(dst)
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	records, err := ReadAll(NewBinaryReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != len(in) || !Sorted(records) {
		t.Fatalf("sorted file: %d records, sorted=%v", len(records), Sorted(records))
	}
}

func TestSortFileMissingSource(t *testing.T) {
	if err := SortFile("/nonexistent/in.cdr", filepath.Join(t.TempDir(), "out.cdr"), ExternalSortConfig{}); err == nil {
		t.Fatal("missing source accepted")
	}
}
