package cdr

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"time"

	"cellcars/internal/obs"
)

// This file implements the resilient ingest layer: a Reader wrapper
// that treats malformed records as expected input rather than fatal
// errors. The paper's own data set is dirty by construction —
// exactly-one-hour ghost records, stuck-teardown modems, and a 3-day
// partial data-loss window are first-class phenomena in §3 — and a
// carrier-scale pipeline must quarantine and account for bad records
// instead of dying on the first one.

// FailureClass labels why a record was quarantined.
type FailureClass int

// The failure classes, ordered roughly by how often real CDR feeds
// produce them.
const (
	// ClassBadField: an unparseable or invalid field value — bad CSV
	// syntax, a non-numeric column, an unknown carrier, a negative
	// duration, a zero start.
	ClassBadField FailureClass = iota
	// ClassTruncated: a partial trailing binary frame or header. The
	// stream ends after one such record.
	ClassTruncated
	// ClassTimeRange: a structurally valid record whose start falls
	// outside the configured time window.
	ClassTimeRange
	// ClassDuplicate: a record identical to the immediately preceding
	// one, as produced by at-least-once transport replays.
	ClassDuplicate
	// ClassRegression: a record whose start precedes the previous
	// record's start in a stream declared sorted.
	ClassRegression
	// ClassIO: an underlying I/O failure. Terminal unless transient
	// and retried.
	ClassIO
	// NumFailureClasses bounds the class enum for per-class arrays.
	NumFailureClasses
)

// String returns a short stable name for the class.
func (c FailureClass) String() string {
	switch c {
	case ClassBadField:
		return "bad-field"
	case ClassTruncated:
		return "truncated"
	case ClassTimeRange:
		return "time-range"
	case ClassDuplicate:
		return "duplicate"
	case ClassRegression:
		return "regression"
	case ClassIO:
		return "io-error"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// ErrTransient marks a retryable failure: wrapping an error with it
// (see Transient) tells retry loops — ResilientReader and
// ExternalSort — that the operation may succeed if repeated.
var ErrTransient = errors.New("transient")

// Transient wraps err as retryable.
func Transient(err error) error {
	return fmt.Errorf("%w: %w", ErrTransient, err)
}

// IsTransient reports whether err is marked retryable.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// IngestStats accumulates the outcome of a resilient ingest pass.
type IngestStats struct {
	// Read counts records delivered downstream.
	Read int64
	// Quarantined counts rejected records by class.
	Quarantined [NumFailureClasses]int64
	// Retries counts transient-failure retries that were attempted.
	Retries int64
}

// Attempted returns the number of records seen: delivered plus
// quarantined.
func (s *IngestStats) Attempted() int64 { return s.Read + s.QuarantinedTotal() }

// QuarantinedTotal returns the total number of quarantined records.
func (s *IngestStats) QuarantinedTotal() int64 {
	var n int64
	for _, c := range s.Quarantined {
		n += c
	}
	return n
}

// Dominant returns the most populous failure class and its count.
func (s *IngestStats) Dominant() (FailureClass, int64) {
	best, n := ClassBadField, int64(0)
	for c, count := range s.Quarantined {
		if count > n {
			best, n = FailureClass(c), count
		}
	}
	return best, n
}

// ByClass returns the non-zero quarantine counts keyed by class name,
// for report rendering.
func (s *IngestStats) ByClass() map[string]int64 {
	out := make(map[string]int64)
	for c, count := range s.Quarantined {
		if count > 0 {
			out[FailureClass(c).String()] = count
		}
	}
	return out
}

// Quarantined describes one rejected record.
type Quarantined struct {
	// Index is the zero-based position in the input stream, counting
	// both delivered and quarantined records.
	Index int64
	// Class labels the failure.
	Class FailureClass
	// Err is the classification error; always non-nil.
	Err error
	// Record holds the decoded record for classes detected after a
	// successful decode (time-range, duplicate, regression, and
	// re-validation failures); it is the zero Record when the decode
	// itself failed.
	Record Record
}

// QuarantineSink receives rejected records. A sink error aborts the
// ingest: losing quarantine evidence silently would defeat its
// purpose.
type QuarantineSink interface {
	Quarantine(Quarantined) error
}

// QuarantineWriter is a QuarantineSink writing one tab-separated line
// per rejected record (index, class, car, cell, start, duration,
// error) — a grep-able audit trail.
type QuarantineWriter struct {
	w *bufio.Writer
}

// NewQuarantineWriter returns a line-oriented sink over w.
func NewQuarantineWriter(w io.Writer) *QuarantineWriter {
	return &QuarantineWriter{w: bufio.NewWriter(w)}
}

// Quarantine writes one line.
func (q *QuarantineWriter) Quarantine(rec Quarantined) error {
	_, err := fmt.Fprintf(q.w, "%d\t%s\t%d\t%d\t%d\t%d\t%s\n",
		rec.Index, rec.Class, rec.Record.Car, uint64(rec.Record.Cell),
		rec.Record.Start.Unix(), int64(rec.Record.Duration/time.Second), rec.Err)
	return err
}

// Close flushes buffered lines.
func (q *QuarantineWriter) Close() error { return q.w.Flush() }

// BudgetError reports that the malformed-record fraction exceeded the
// configured error budget. The ingest stops at the first record that
// tips the budget; Stats describes the stream up to that point.
type BudgetError struct {
	// Stats is the ingest state at abort time.
	Stats IngestStats
	// Budget is the configured maximum malformed fraction.
	Budget float64
}

// Error names the dominant corruption class so operators can tell a
// truncated transfer from a schema drift at a glance.
func (e *BudgetError) Error() string {
	class, n := e.Stats.Dominant()
	return fmt.Sprintf(
		"cdr: error budget exceeded: %d of %d records malformed (budget %.2f%%), dominant class %s (%d records)",
		e.Stats.QuarantinedTotal(), e.Stats.Attempted(), e.Budget*100, class, n)
}

// ResilientConfig tunes a ResilientReader. The zero value quarantines
// silently with a 1% error budget and no duplicate/regression/time
// checks.
type ResilientConfig struct {
	// Sink receives quarantined records; nil discards them (they are
	// still counted).
	Sink QuarantineSink
	// MaxBadFrac is the error budget: the ingest aborts with a
	// *BudgetError once quarantined/attempted exceeds it (checked
	// after MinRecords records). 0 means the default 1%; negative
	// disables the budget entirely.
	MaxBadFrac float64
	// MinRecords is the number of records attempted before the budget
	// is enforced, so a bad record at the head of a stream does not
	// abort on a 100% instantaneous rate. Default 1000.
	MinRecords int
	// Strict aborts on the first malformed record, regardless of
	// budget — the paper-faithful mode for curated inputs.
	Strict bool
	// MinStart and MaxStart, when non-zero, quarantine records whose
	// start falls outside [MinStart, MaxStart) as ClassTimeRange.
	MinStart, MaxStart time.Time
	// FlagDuplicates quarantines records identical to the immediately
	// preceding delivered record.
	FlagDuplicates bool
	// FlagRegressions quarantines records whose start precedes the
	// previous delivered record's start. Only meaningful on streams
	// contractually sorted by start time.
	FlagRegressions bool
	// TransientRetries is how many times a transient I/O failure
	// (IsTransient) is retried before being returned. Default 3;
	// negative disables retries.
	TransientRetries int
	// RetryBackoff is the initial delay between transient retries,
	// doubling per attempt. Default 5ms; it exists so tests can run
	// retries without wall-clock cost.
	RetryBackoff time.Duration
	// Obs, when non-nil, receives live ingest metrics: delivered and
	// per-class quarantined record counts, transient retries, and the
	// error-budget consumption gauge. Nil (the default) costs nothing.
	Obs *obs.Registry
}

func (cfg *ResilientConfig) fill() {
	if cfg.MaxBadFrac == 0 {
		cfg.MaxBadFrac = 0.01
	}
	if cfg.MinRecords == 0 {
		cfg.MinRecords = 1000
	}
	if cfg.TransientRetries == 0 {
		cfg.TransientRetries = 3
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = 5 * time.Millisecond
	}
}

// ResilientReader wraps a Reader and converts record-level failures
// into quarantine events instead of stream death. It classifies every
// failure (bad field, truncated frame, out-of-range time, duplicate,
// timestamp regression, I/O), forwards rejects to an optional sink,
// retries transient I/O errors with backoff, and enforces an error
// budget so a systematically corrupt input still fails fast with a
// diagnosis instead of quietly dropping most of its records.
//
// Decoded records are re-validated on the way through, so chaos or
// transport layers between the codec and this wrapper cannot smuggle
// structurally invalid records downstream.
type ResilientReader struct {
	r    Reader
	cfg  ResilientConfig
	stat IngestStats

	index int64 // records attempted so far (delivered + quarantined)
	prev  Record
	have  bool
	done  error // sticky terminal state: io.EOF or a fatal error

	met *ingestMetrics
}

// ingestMetrics holds the pre-resolved ingest series so the Read hot
// path never touches the registry maps. All handles are nil-safe.
type ingestMetrics struct {
	read        *obs.Counter
	quarantined [NumFailureClasses]*obs.Counter
	retries     *obs.Counter
	budgetUsed  *obs.Gauge
}

func newIngestMetrics(reg *obs.Registry) *ingestMetrics {
	if reg == nil {
		return nil
	}
	m := &ingestMetrics{
		read:       reg.Counter("cellcars_ingest_records_total"),
		retries:    reg.Counter("cellcars_ingest_retries_total"),
		budgetUsed: reg.Gauge("cellcars_ingest_budget_used_ratio"),
	}
	for c := FailureClass(0); c < NumFailureClasses; c++ {
		m.quarantined[c] = reg.Counter("cellcars_ingest_quarantined_total",
			obs.Label{Key: "class", Value: c.String()})
	}
	return m
}

// NewResilientReader wraps r with the given config.
func NewResilientReader(r Reader, cfg ResilientConfig) *ResilientReader {
	cfg.fill()
	return &ResilientReader{r: r, cfg: cfg, met: newIngestMetrics(cfg.Obs)}
}

// Stats returns a snapshot of the ingest counters. Valid at any
// point, including after an abort.
func (r *ResilientReader) Stats() IngestStats { return r.stat }

// Read returns the next acceptable record. It returns io.EOF at end
// of stream (including after a truncated tail, which is quarantined),
// a *BudgetError when the error budget is exhausted, or the
// underlying error for unrecoverable I/O failures. All terminal
// conditions are sticky.
func (r *ResilientReader) Read() (Record, error) {
	if r.done != nil {
		return Record{}, r.done
	}
	retries := 0
	for {
		rec, err := r.r.Read()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return r.finish(io.EOF)
			}
			switch {
			case errors.Is(err, ErrTruncated):
				// One partial record, then nothing more can be framed:
				// quarantine it and end the stream.
				r.index++
				if qerr := r.quarantine(ClassTruncated, err, Record{}); qerr != nil {
					return r.finish(qerr)
				}
				return r.finish(io.EOF)
			case errors.Is(err, ErrBadRecord):
				r.index++
				if qerr := r.quarantine(ClassBadField, err, Record{}); qerr != nil {
					return r.finish(qerr)
				}
				continue
			case IsTransient(err) && retries < r.cfg.TransientRetries:
				r.stat.Retries++
				r.met.Retries()
				sleepFn(r.cfg.RetryBackoff << retries)
				retries++
				continue
			default:
				r.stat.Quarantined[ClassIO]++
				r.met.Quarantined(r, ClassIO)
				return r.finish(err)
			}
		}
		retries = 0
		r.index++

		if verr := rec.Validate(); verr != nil {
			if qerr := r.quarantine(ClassBadField, verr, rec); qerr != nil {
				return r.finish(qerr)
			}
			continue
		}
		if !r.cfg.MinStart.IsZero() && rec.Start.Before(r.cfg.MinStart) ||
			!r.cfg.MaxStart.IsZero() && !rec.Start.Before(r.cfg.MaxStart) {
			err := fmt.Errorf("cdr: start %s outside window [%s, %s)",
				rec.Start.Format(time.RFC3339), r.cfg.MinStart.Format(time.RFC3339),
				r.cfg.MaxStart.Format(time.RFC3339))
			if qerr := r.quarantine(ClassTimeRange, err, rec); qerr != nil {
				return r.finish(qerr)
			}
			continue
		}
		if r.have && r.cfg.FlagDuplicates && sameRecord(rec, r.prev) {
			err := fmt.Errorf("cdr: duplicate of previous record (car %d, cell %d, start %d)",
				rec.Car, uint64(rec.Cell), rec.Start.Unix())
			if qerr := r.quarantine(ClassDuplicate, err, rec); qerr != nil {
				return r.finish(qerr)
			}
			continue
		}
		if r.have && r.cfg.FlagRegressions && rec.Start.Before(r.prev.Start) {
			err := fmt.Errorf("cdr: start %d regresses behind previous %d in sorted stream",
				rec.Start.Unix(), r.prev.Start.Unix())
			if qerr := r.quarantine(ClassRegression, err, rec); qerr != nil {
				return r.finish(qerr)
			}
			continue
		}

		r.prev, r.have = rec, true
		r.stat.Read++
		r.met.Read()
		return rec, nil
	}
}

// finish latches a terminal state and returns it.
func (r *ResilientReader) finish(err error) (Record, error) {
	r.done = err
	return Record{}, err
}

// quarantine records one reject, forwards it to the sink, and checks
// the error budget. A non-nil return is terminal.
func (r *ResilientReader) quarantine(class FailureClass, cause error, rec Record) error {
	r.stat.Quarantined[class]++
	r.met.Quarantined(r, class)
	if r.cfg.Sink != nil {
		q := Quarantined{Index: r.index - 1, Class: class, Err: cause, Record: rec}
		if err := r.cfg.Sink.Quarantine(q); err != nil {
			return fmt.Errorf("cdr: quarantine sink: %w", err)
		}
	}
	if r.cfg.Strict {
		return fmt.Errorf("cdr: strict mode: %w", cause)
	}
	if r.cfg.MaxBadFrac < 0 {
		return nil
	}
	attempted := r.stat.Attempted()
	if attempted < int64(r.cfg.MinRecords) {
		return nil
	}
	if frac := float64(r.stat.QuarantinedTotal()) / float64(attempted); frac > r.cfg.MaxBadFrac {
		return &BudgetError{Stats: r.stat, Budget: r.cfg.MaxBadFrac}
	}
	return nil
}

// Read records one delivered record.
func (m *ingestMetrics) Read() {
	if m == nil {
		return
	}
	m.read.Inc()
}

// Retries records one transient-retry attempt.
func (m *ingestMetrics) Retries() {
	if m == nil {
		return
	}
	m.retries.Inc()
}

// Quarantined records one reject and refreshes the budget-used gauge
// (quarantined fraction of attempted records, relative to the budget).
func (m *ingestMetrics) Quarantined(r *ResilientReader, class FailureClass) {
	if m == nil {
		return
	}
	m.quarantined[class].Inc()
	if budget := r.cfg.MaxBadFrac; budget > 0 {
		if attempted := r.stat.Attempted(); attempted > 0 {
			frac := float64(r.stat.QuarantinedTotal()) / float64(attempted)
			m.budgetUsed.Set(frac / budget)
		}
	}
}

// sameRecord compares records field-wise, using time.Time.Equal so
// that wall-clock-equal starts with different internal representations
// still match.
func sameRecord(a, b Record) bool {
	return a.Car == b.Car && a.Cell == b.Cell && a.Duration == b.Duration && a.Start.Equal(b.Start)
}

// sleepFn is stubbed by tests to avoid wall-clock backoff delays.
var sleepFn = time.Sleep
