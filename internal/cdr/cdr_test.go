package cdr

import (
	"bytes"
	"errors"
	"io"
	"math/rand/v2"
	"testing"
	"testing/quick"
	"time"

	"cellcars/internal/radio"
)

var t0 = time.Date(2017, 1, 2, 0, 0, 0, 0, time.UTC)

func rec(car CarID, bs radio.BSID, start time.Duration, dur time.Duration) Record {
	return Record{
		Car:      car,
		Cell:     radio.MakeCellKey(bs, 0, radio.C3),
		Start:    t0.Add(start),
		Duration: dur,
	}
}

func TestRecordEnd(t *testing.T) {
	r := rec(1, 2, time.Hour, 90*time.Second)
	if got := r.End(); !got.Equal(t0.Add(time.Hour + 90*time.Second)) {
		t.Fatalf("End = %v", got)
	}
}

func TestRecordValidate(t *testing.T) {
	good := rec(1, 2, 0, time.Minute)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
	bad := good
	bad.Duration = -time.Second
	if bad.Validate() == nil {
		t.Fatal("negative duration accepted")
	}
	bad = good
	bad.Cell = radio.CellKey(7 << 16) // carrier 0
	if bad.Validate() == nil {
		t.Fatal("invalid carrier accepted")
	}
	bad = good
	bad.Start = time.Time{}
	if bad.Validate() == nil {
		t.Fatal("zero start accepted")
	}
}

func TestRecordBeforeTotalOrder(t *testing.T) {
	a := rec(1, 1, 0, time.Minute)
	b := rec(2, 1, 0, time.Minute)
	c := rec(1, 1, time.Second, time.Minute)
	if !a.Before(b) || b.Before(a) {
		t.Fatal("car tiebreak wrong")
	}
	if !a.Before(c) || c.Before(a) {
		t.Fatal("time order wrong")
	}
	d := a
	d.Cell = radio.MakeCellKey(9, 0, radio.C3)
	if !a.Before(d) {
		t.Fatal("cell tiebreak wrong")
	}
	if a.Before(a) {
		t.Fatal("irreflexivity violated")
	}
}

func TestSliceReaderWriter(t *testing.T) {
	in := []Record{rec(1, 1, 0, time.Minute), rec(2, 2, time.Hour, time.Second)}
	var w SliceWriter
	if err := WriteAll(&w, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadAll(NewSliceReader(w.Records))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0] != in[0] || out[1] != in[1] {
		t.Fatalf("round trip mismatch: %v", out)
	}
	// Draining again yields EOF immediately.
	r := NewSliceReader(nil)
	if _, err := r.Read(); !errors.Is(err, io.EOF) {
		t.Fatalf("empty reader error = %v", err)
	}
}

func TestSortAndSorted(t *testing.T) {
	records := []Record{
		rec(3, 1, 2*time.Hour, time.Minute),
		rec(1, 1, 0, time.Minute),
		rec(2, 1, time.Hour, time.Minute),
	}
	if Sorted(records) {
		t.Fatal("unsorted records reported sorted")
	}
	Sort(records)
	if !Sorted(records) {
		t.Fatal("sorted records reported unsorted")
	}
	if records[0].Car != 1 || records[2].Car != 3 {
		t.Fatalf("wrong order: %v", records)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	in := []Record{
		rec(10, 1, 0, 105*time.Second),
		rec(11, 2, 26*time.Hour, 600*time.Second),
		rec(1<<60, 3, 48*time.Hour, 0),
	}
	var buf bytes.Buffer
	w := NewCSVWriter(&buf)
	if err := WriteAll(w, in); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	out, err := ReadAll(NewCSVReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("rows = %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("row %d: %+v != %+v", i, out[i], in[i])
		}
	}
}

func TestCSVReaderHeaderOptional(t *testing.T) {
	// A file without the header line must also parse.
	raw := "5,196611,1483315200,60\n"
	// cell 196611 = bs3/s0/C3.
	out, err := ReadAll(NewCSVReader(bytes.NewBufferString(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Car != 5 || out[0].Cell.BS() != 3 {
		t.Fatalf("parsed %+v", out)
	}
}

func TestCSVReaderRejectsGarbage(t *testing.T) {
	cases := []string{
		"car,cell,start_unix,duration_s\nx,1,2,3\n",
		"car,cell,start_unix,duration_s\n1,x,2,3\n",
		"car,cell,start_unix,duration_s\n1,2,x,3\n",
		"car,cell,start_unix,duration_s\n1,196611,1483315200,x\n",
		"car,cell,start_unix,duration_s\n1,196611,1483315200,-5\n", // negative duration
		"car,cell,start_unix,duration_s\n1,7,1483315200,5\n",       // carrier 7 invalid
	}
	for i, raw := range cases {
		if _, err := ReadAll(NewCSVReader(bytes.NewBufferString(raw))); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestCSVWriterClosed(t *testing.T) {
	w := NewCSVWriter(&bytes.Buffer{})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(rec(1, 1, 0, time.Second)); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after close = %v", err)
	}
	if err := w.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double close = %v", err)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	var in []Record
	rng := rand.New(rand.NewPCG(3, 4))
	for i := 0; i < 1000; i++ {
		in = append(in, Record{
			Car:      CarID(rng.Uint64()),
			Cell:     radio.MakeCellKey(radio.BSID(rng.Uint32()), radio.SectorID(rng.UintN(3)), radio.CarrierID(rng.UintN(5)+1)),
			Start:    t0.Add(time.Duration(rng.UintN(90*24*3600)) * time.Second),
			Duration: time.Duration(rng.UintN(7200)) * time.Second,
		})
	}
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	if err := WriteAll(w, in); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.Len(), 8+1000*binRecordSize; got != want {
		t.Fatalf("encoded size = %d, want %d", got, want)
	}
	out, err := ReadAll(NewBinaryReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("records = %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestBinaryEmptyStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	out, err := ReadAll(NewBinaryReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("records = %d", len(out))
	}
}

func TestBinaryBadMagic(t *testing.T) {
	if _, err := ReadAll(NewBinaryReader(bytes.NewBufferString("NOTMAGIC___"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestBinaryTruncated(t *testing.T) {
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	if err := w.Write(rec(1, 1, 0, time.Minute)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadAll(NewBinaryReader(bytes.NewReader(trunc))); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(car uint64, bs uint32, sector uint8, carrierRaw, durMin uint16, startOff uint32) bool {
		in := Record{
			Car:      CarID(car),
			Cell:     radio.MakeCellKey(radio.BSID(bs), radio.SectorID(sector), radio.CarrierID(carrierRaw%5)+radio.C1),
			Start:    t0.Add(time.Duration(startOff) * time.Second),
			Duration: time.Duration(durMin) * time.Second,
		}
		var buf bytes.Buffer
		w := NewBinaryWriter(&buf)
		if err := w.Write(in); err != nil {
			return false
		}
		if err := w.Close(); err != nil {
			return false
		}
		out, err := ReadAll(NewBinaryReader(&buf))
		return err == nil && len(out) == 1 && out[0] == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMerge(t *testing.T) {
	a := []Record{rec(1, 1, 0, time.Minute), rec(1, 1, 2*time.Hour, time.Minute)}
	b := []Record{rec(2, 1, time.Hour, time.Minute), rec(2, 1, 3*time.Hour, time.Minute)}
	c := []Record{rec(3, 1, 30*time.Minute, time.Minute)}
	out, err := ReadAll(Merge(NewSliceReader(a), NewSliceReader(b), NewSliceReader(c)))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 5 {
		t.Fatalf("merged %d records", len(out))
	}
	if !Sorted(out) {
		t.Fatalf("merge output not sorted: %v", out)
	}
}

func TestMergeEmptyInputs(t *testing.T) {
	out, err := ReadAll(Merge())
	if err != nil || len(out) != 0 {
		t.Fatalf("empty merge: %v %v", out, err)
	}
	out, err = ReadAll(Merge(NewSliceReader(nil), NewSliceReader(nil)))
	if err != nil || len(out) != 0 {
		t.Fatalf("merge of empties: %v %v", out, err)
	}
}

func TestMergeProperty(t *testing.T) {
	f := func(seed uint64, sizes [4]uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 17))
		var readers []Reader
		total := 0
		for _, sz := range sizes {
			n := int(sz % 50)
			total += n
			records := make([]Record, n)
			for i := range records {
				records[i] = rec(CarID(rng.Uint64N(100)), radio.BSID(rng.Uint32N(50)),
					time.Duration(rng.Uint64N(3600))*time.Second, time.Minute)
			}
			Sort(records)
			readers = append(readers, NewSliceReader(records))
		}
		out, err := ReadAll(Merge(readers...))
		return err == nil && len(out) == total && Sorted(out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFilterFunc(t *testing.T) {
	in := []Record{rec(1, 1, 0, time.Minute), rec(2, 1, time.Hour, time.Minute), rec(3, 1, 2*time.Hour, time.Minute)}
	out, err := ReadAll(FilterFunc(NewSliceReader(in), func(r Record) bool { return r.Car != 2 }))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Car != 1 || out[1].Car != 3 {
		t.Fatalf("filter output: %v", out)
	}
}

func TestAnonymizerStableAndKeyed(t *testing.T) {
	a := NewAnonymizer(42)
	if a.Anonymize(7) != a.Anonymize(7) {
		t.Fatal("anonymization not stable")
	}
	if a.Anonymize(7) == a.Anonymize(8) {
		t.Fatal("adjacent ids collide")
	}
	b := NewAnonymizer(43)
	if a.Anonymize(7) == b.Anonymize(7) {
		t.Fatal("different keys must give different ids")
	}
}

func TestAnonymizerNoSmallCollisions(t *testing.T) {
	a := NewAnonymizer(1)
	seen := make(map[CarID]bool, 100000)
	for i := uint64(0); i < 100000; i++ {
		id := a.Anonymize(i)
		if seen[id] {
			t.Fatalf("collision at %d", i)
		}
		seen[id] = true
	}
}

func TestAnonymizeReader(t *testing.T) {
	a := NewAnonymizer(9)
	in := []Record{rec(100, 1, 0, time.Minute)}
	out, err := ReadAll(AnonymizeReader(NewSliceReader(in), a))
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Car != a.Anonymize(100) {
		t.Fatal("reader did not anonymize")
	}
	if out[0].Cell != in[0].Cell || !out[0].Start.Equal(in[0].Start) {
		t.Fatal("reader corrupted other fields")
	}
}

// TestCSVRoundTripProperty mirrors the binary round-trip property for
// the CSV codec.
func TestCSVRoundTripProperty(t *testing.T) {
	f := func(car uint64, bs uint32, sector uint8, carrierRaw uint8, durMin uint16, startOff uint32) bool {
		in := Record{
			Car:      CarID(car),
			Cell:     radio.MakeCellKey(radio.BSID(bs), radio.SectorID(sector), radio.CarrierID(carrierRaw%5)+radio.C1),
			Start:    t0.Add(time.Duration(startOff) * time.Second),
			Duration: time.Duration(durMin) * time.Second,
		}
		var buf bytes.Buffer
		w := NewCSVWriter(&buf)
		if err := w.Write(in); err != nil {
			return false
		}
		if err := w.Close(); err != nil {
			return false
		}
		out, err := ReadAll(NewCSVReader(&buf))
		return err == nil && len(out) == 1 && out[0] == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestMergeWithFailingReader verifies the k-way merge surfaces reader
// errors instead of swallowing them.
func TestMergeWithFailingReader(t *testing.T) {
	good := NewSliceReader([]Record{rec(1, 1, 0, time.Minute), rec(1, 1, time.Hour, time.Minute)})
	bad := &failAfter{records: []Record{rec(2, 2, time.Minute, time.Minute)}, failAt: 1}
	_, err := ReadAll(Merge(good, bad))
	if err == nil {
		t.Fatal("merge swallowed a reader error")
	}
}

type failAfter struct {
	records []Record
	pos     int
	failAt  int
}

func (f *failAfter) Read() (Record, error) {
	if f.pos == f.failAt {
		return Record{}, errors.New("reader exploded")
	}
	if f.pos >= len(f.records) {
		return Record{}, io.EOF
	}
	r := f.records[f.pos]
	f.pos++
	return r, nil
}
