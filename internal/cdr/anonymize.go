package cdr

import "encoding/binary"

// Anonymizer maps raw device identifiers to stable anonymized CarIDs
// using a keyed 64-bit FNV-1a style hash. The same (key, raw id) pair
// always yields the same CarID, so longitudinal per-car analyses still
// work, while the raw identifier cannot be recovered without the key.
// This mirrors the paper's methodology: "records are anonymized ... and
// do not contain sensitive personal or identifiable information" (§3).
type Anonymizer struct {
	key uint64
}

// NewAnonymizer returns an anonymizer with the given secret key.
func NewAnonymizer(key uint64) *Anonymizer {
	return &Anonymizer{key: key}
}

// Anonymize maps a raw identifier to its anonymized CarID.
func (a *Anonymizer) Anonymize(raw uint64) CarID {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[0:], a.key)
	binary.LittleEndian.PutUint64(buf[8:], raw)
	h := uint64(offset64)
	for _, b := range buf {
		h ^= uint64(b)
		h *= prime64
	}
	// Avalanche finalizer (from SplitMix64) so sequential raw ids do not
	// produce correlated hashes.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return CarID(h)
}

// AnonymizeReader wraps a reader, rewriting every record's Car through
// the anonymizer.
func AnonymizeReader(r Reader, a *Anonymizer) Reader {
	return &anonReader{r: r, a: a}
}

type anonReader struct {
	r Reader
	a *Anonymizer
}

func (ar *anonReader) Read() (Record, error) {
	rec, err := ar.r.Read()
	if err != nil {
		return Record{}, err
	}
	rec.Car = ar.a.Anonymize(uint64(rec.Car))
	return rec, nil
}
