package cdr

import (
	"fmt"
	"io"
)

// This file implements car-hash sharding: splitting a CDR stream into
// n sub-streams such that every record of one car lands in the same
// shard, each shard preserves the source's relative record order, and
// the shard of a car is a pure function of its id. Car-disjoint shards
// are what make the analysis accumulators mergeable by simple union —
// no car's state is ever split across workers.

// shardKey keys the car hash used for shard assignment. It is fixed
// (not configurable) so a car's shard is stable across runs, files and
// processes — required for deterministic parallel analysis.
const shardKey = 0xCE11CA25

// ShardOfCar returns the shard index in [0, n) for a car. It panics on
// a non-positive n.
func ShardOfCar(car CarID, n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("cdr: shard count %d must be positive", n))
	}
	if n == 1 {
		return 0
	}
	return int(carHash(uint64(car), shardKey) % uint64(n))
}

// ShardSlices partitions records into n car-disjoint shards, keeping
// the source order within each shard. The input slice is not modified;
// records are not copied deeply.
func ShardSlices(records []Record, n int) [][]Record {
	if n <= 0 {
		panic(fmt.Sprintf("cdr: shard count %d must be positive", n))
	}
	out := make([][]Record, n)
	if n == 1 {
		out[0] = records
		return out
	}
	for _, r := range records {
		s := ShardOfCar(r.Car, n)
		out[s] = append(out[s], r)
	}
	return out
}

// shardBatch is the unit pushed from the demux goroutine to a shard
// reader; batching amortizes channel synchronization over many
// records.
const shardBatchSize = 512

// ShardReaders splits a single streaming source into n car-disjoint
// shard readers fed by one background demultiplexer goroutine. Each
// returned reader yields only its shard's records, in source order,
// and returns io.EOF once the source is drained. A source read error
// is delivered to every shard reader after its buffered records.
//
// All shard readers must be drained (or the process exited): the
// demultiplexer blocks once a shard's buffer fills, so abandoning one
// reader while consuming another can deadlock the rest.
func ShardReaders(r Reader, n int) []Reader {
	if n <= 0 {
		panic(fmt.Sprintf("cdr: shard count %d must be positive", n))
	}
	shards := make([]*shardReader, n)
	chans := make([]chan []Record, n)
	errs := make([]chan error, n)
	for i := range shards {
		chans[i] = make(chan []Record, 8)
		errs[i] = make(chan error, 1)
		shards[i] = &shardReader{ch: chans[i], errc: errs[i]}
	}
	go func() {
		batches := make([][]Record, n)
		var err error
		for {
			rec, rerr := r.Read()
			if rerr != nil {
				if rerr != io.EOF {
					err = rerr
				}
				break
			}
			s := ShardOfCar(rec.Car, n)
			batches[s] = append(batches[s], rec)
			if len(batches[s]) >= shardBatchSize {
				chans[s] <- batches[s]
				batches[s] = nil
			}
		}
		for i := range chans {
			if len(batches[i]) > 0 {
				chans[i] <- batches[i]
			}
			if err != nil {
				errs[i] <- err
			}
			close(chans[i])
		}
	}()
	out := make([]Reader, n)
	for i := range shards {
		out[i] = shards[i]
	}
	return out
}

type shardReader struct {
	ch   chan []Record
	errc chan error
	cur  []Record
	pos  int
	done bool
}

func (s *shardReader) Read() (Record, error) {
	for {
		if s.pos < len(s.cur) {
			r := s.cur[s.pos]
			s.pos++
			return r, nil
		}
		if s.done {
			return Record{}, io.EOF
		}
		batch, ok := <-s.ch
		if !ok {
			s.done = true
			select {
			case err := <-s.errc:
				return Record{}, err
			default:
				return Record{}, io.EOF
			}
		}
		s.cur, s.pos = batch, 0
	}
}

// RecordHash returns a well-distributed 64-bit hash of a record's
// content, usable as a deterministic sampling key: the same record
// hashes identically regardless of stream position, shard, or worker
// count.
func RecordHash(r Record) uint64 {
	h := carHash(uint64(r.Car), 0x5EED0001)
	h = carHash(h^uint64(r.Cell), 0x5EED0002)
	h = carHash(h^uint64(r.Start.UnixNano()), 0x5EED0003)
	h = carHash(h^uint64(r.Duration), 0x5EED0004)
	return h
}
