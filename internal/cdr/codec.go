package cdr

import (
	"bufio"
	"encoding/binary"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"cellcars/internal/radio"
)

// CSV format: a header line followed by one record per line with the
// columns car, cell, start_unix, duration_s. Cell is the packed
// CellKey in decimal; times are Unix seconds UTC.
var csvHeader = []string{"car", "cell", "start_unix", "duration_s"}

// Sentinel errors for record-level decode failures. Both codecs wrap
// their malformed-input errors so that callers (notably
// ResilientReader) can classify a failure without string matching.
var (
	// ErrBadRecord marks a record that decoded structurally but is
	// malformed: an unparseable field, a wrong column count, or a
	// failed Validate. The stream remains readable past it.
	ErrBadRecord = errors.New("malformed record")
	// ErrTruncated marks a binary stream that ends mid-record (or
	// mid-header): a partial trailing frame. No further records can be
	// recovered after it.
	ErrTruncated = errors.New("truncated stream")
)

// isHeaderRow reports whether row is exactly the standard CSV header.
// Header detection is strict — every column name must match — so that
// a data-like first row is never silently swallowed and a
// wrong-schema header is surfaced as a parse error instead of being
// skipped.
func isHeaderRow(row []string) bool {
	if len(row) != len(csvHeader) {
		return false
	}
	for i, f := range row {
		if f != csvHeader[i] {
			return false
		}
	}
	return true
}

// CSVWriter streams records as CSV.
type CSVWriter struct {
	w      *csv.Writer
	header bool
	closed bool
}

// NewCSVWriter returns a writer emitting the standard CDR CSV format
// to w. The header is written with the first record.
func NewCSVWriter(w io.Writer) *CSVWriter {
	return &CSVWriter{w: csv.NewWriter(w)}
}

// Write emits one record.
func (c *CSVWriter) Write(r Record) error {
	if c.closed {
		return ErrClosed
	}
	if !c.header {
		if err := c.w.Write(csvHeader); err != nil {
			return err
		}
		c.header = true
	}
	row := []string{
		strconv.FormatUint(uint64(r.Car), 10),
		strconv.FormatUint(uint64(r.Cell), 10),
		strconv.FormatInt(r.Start.Unix(), 10),
		strconv.FormatInt(int64(r.Duration/time.Second), 10),
	}
	return c.w.Write(row)
}

// Close flushes buffered rows. The writer is unusable afterwards.
func (c *CSVWriter) Close() error {
	if c.closed {
		return ErrClosed
	}
	c.closed = true
	c.w.Flush()
	return c.w.Error()
}

// CSVReader streams records from the standard CDR CSV format.
type CSVReader struct {
	r      *csv.Reader
	header bool
}

// NewCSVReader returns a reader over the standard CDR CSV format.
func NewCSVReader(r io.Reader) *CSVReader {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	cr.ReuseRecord = true
	return &CSVReader{r: cr}
}

// Read returns the next record or io.EOF. Malformed rows (wrong
// column count, unparseable fields, failed validation) are reported
// as errors wrapping ErrBadRecord; the reader stays usable and the
// next Read resumes on the following row.
func (c *CSVReader) Read() (Record, error) {
	for {
		row, err := c.r.Read()
		if err != nil {
			var pe *csv.ParseError
			if errors.As(err, &pe) {
				return Record{}, fmt.Errorf("cdr: bad csv row: %v: %w", err, ErrBadRecord)
			}
			return Record{}, err
		}
		if !c.header {
			c.header = true
			if isHeaderRow(row) {
				continue
			}
		}
		car, err := strconv.ParseUint(row[0], 10, 64)
		if err != nil {
			return Record{}, fmt.Errorf("cdr: bad car id %q: %w", row[0], ErrBadRecord)
		}
		cell, err := strconv.ParseUint(row[1], 10, 64)
		if err != nil {
			return Record{}, fmt.Errorf("cdr: bad cell %q: %w", row[1], ErrBadRecord)
		}
		start, err := strconv.ParseInt(row[2], 10, 64)
		if err != nil {
			return Record{}, fmt.Errorf("cdr: bad start %q: %w", row[2], ErrBadRecord)
		}
		dur, err := strconv.ParseInt(row[3], 10, 64)
		if err != nil {
			return Record{}, fmt.Errorf("cdr: bad duration %q: %w", row[3], ErrBadRecord)
		}
		// Guard the seconds→Duration multiply: a forged value past
		// ~292 years would wrap int64 and could slip through
		// validation as a positive garbage duration.
		if dur < 0 || dur > math.MaxInt64/int64(time.Second) {
			return Record{}, fmt.Errorf("cdr: duration %q out of range: %w", row[3], ErrBadRecord)
		}
		rec := Record{
			Car:      CarID(car),
			Cell:     radio.CellKey(cell),
			Start:    time.Unix(start, 0).UTC(),
			Duration: time.Duration(dur) * time.Second,
		}
		if err := rec.Validate(); err != nil {
			return Record{}, fmt.Errorf("%v: %w", err, ErrBadRecord)
		}
		return rec, nil
	}
}

// Binary format: a 8-byte magic, then records of fixed 28-byte layout
// (car uint64, cell uint64, start int64 unix seconds, duration uint32
// seconds), all little endian. The format is dense enough for
// hundred-million-record data sets and trivially seekable.
var binMagic = [8]byte{'C', 'C', 'A', 'R', 'C', 'D', 'R', '1'}

const binRecordSize = 8 + 8 + 8 + 4

// OpenFile opens a CDR file with the codec its extension names:
// ".csv" gets the CSV reader, everything else the binary reader. The
// returned closer owns the underlying file.
func OpenFile(path string) (Reader, io.Closer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	if strings.HasSuffix(path, ".csv") {
		return NewCSVReader(f), f, nil
	}
	return NewBinaryReader(f), f, nil
}

// BinaryRecordCount returns the number of records a well-formed binary
// CDR file of the given size holds — a cheap total for progress
// estimation. Returns 0 for sizes smaller than the magic header.
func BinaryRecordCount(fileSize int64) int64 {
	if fileSize <= int64(len(binMagic)) {
		return 0
	}
	return (fileSize - int64(len(binMagic))) / binRecordSize
}

// BinaryWriter streams records in the binary CDR format.
type BinaryWriter struct {
	w      *bufio.Writer
	magic  bool
	closed bool
	buf    [binRecordSize]byte
}

// NewBinaryWriter returns a writer emitting the binary CDR format.
func NewBinaryWriter(w io.Writer) *BinaryWriter {
	return &BinaryWriter{w: bufio.NewWriterSize(w, 1<<16)}
}

// Write emits one record.
func (b *BinaryWriter) Write(r Record) error {
	if b.closed {
		return ErrClosed
	}
	if !b.magic {
		if _, err := b.w.Write(binMagic[:]); err != nil {
			return err
		}
		b.magic = true
	}
	secs := int64(r.Duration / time.Second)
	if secs < 0 || secs > int64(^uint32(0)) {
		return fmt.Errorf("cdr: duration %v out of binary range", r.Duration)
	}
	binary.LittleEndian.PutUint64(b.buf[0:], uint64(r.Car))
	binary.LittleEndian.PutUint64(b.buf[8:], uint64(r.Cell))
	binary.LittleEndian.PutUint64(b.buf[16:], uint64(r.Start.Unix()))
	binary.LittleEndian.PutUint32(b.buf[24:], uint32(secs))
	_, err := b.w.Write(b.buf[:])
	return err
}

// Close flushes buffered records. The writer is unusable afterwards.
func (b *BinaryWriter) Close() error {
	if b.closed {
		return ErrClosed
	}
	b.closed = true
	// An empty stream still carries the magic so readers can identify it.
	if !b.magic {
		if _, err := b.w.Write(binMagic[:]); err != nil {
			return err
		}
		b.magic = true
	}
	return b.w.Flush()
}

// BinaryReader streams records from the binary CDR format.
type BinaryReader struct {
	r     *bufio.Reader
	magic bool
	buf   [binRecordSize]byte
}

// NewBinaryReader returns a reader over the binary CDR format.
func NewBinaryReader(r io.Reader) *BinaryReader {
	return &BinaryReader{r: bufio.NewReaderSize(r, 1<<16)}
}

// Read returns the next record or io.EOF. A partial trailing record
// (or header) is reported as an error wrapping ErrTruncated; a record
// with malformed field values wraps ErrBadRecord and — since the
// fixed-size framing keeps the stream aligned — the next Read resumes
// on the following record.
func (b *BinaryReader) Read() (Record, error) {
	if !b.magic {
		var m [8]byte
		if n, err := io.ReadFull(b.r, m[:]); err != nil {
			if errors.Is(err, io.ErrUnexpectedEOF) {
				return Record{}, fmt.Errorf("cdr: binary header cut at %d of %d bytes: %w", n, len(m), ErrTruncated)
			}
			return Record{}, err
		}
		if m != binMagic {
			return Record{}, fmt.Errorf("cdr: bad binary magic %q", m)
		}
		b.magic = true
	}
	if n, err := io.ReadFull(b.r, b.buf[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return Record{}, fmt.Errorf("cdr: binary record cut at %d of %d bytes: %w", n, binRecordSize, ErrTruncated)
		}
		return Record{}, err
	}
	rec := Record{
		Car:      CarID(binary.LittleEndian.Uint64(b.buf[0:])),
		Cell:     radio.CellKey(binary.LittleEndian.Uint64(b.buf[8:])),
		Start:    time.Unix(int64(binary.LittleEndian.Uint64(b.buf[16:])), 0).UTC(),
		Duration: time.Duration(binary.LittleEndian.Uint32(b.buf[24:])) * time.Second,
	}
	if err := rec.Validate(); err != nil {
		return Record{}, fmt.Errorf("%v: %w", err, ErrBadRecord)
	}
	return rec, nil
}
