package cdr

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"
)

// noBudget disables the error budget so classification tests don't
// trip it.
func noBudget() ResilientConfig { return ResilientConfig{MaxBadFrac: -1} }

// memSink collects quarantined records in memory.
type memSink struct {
	got  []Quarantined
	fail error // returned from Quarantine when non-nil
}

func (m *memSink) Quarantine(q Quarantined) error {
	if m.fail != nil {
		return m.fail
	}
	m.got = append(m.got, q)
	return nil
}

func TestResilientQuarantinesBadCSVRows(t *testing.T) {
	raw := "car,cell,start_unix,duration_s\n" +
		"5,196611,1483315200,60\n" +
		"garbage,x,y,z\n" +
		"6,196611,1483315260,30\n"
	sink := &memSink{}
	cfg := noBudget()
	cfg.Sink = sink
	r := NewResilientReader(NewCSVReader(strings.NewReader(raw)), cfg)
	out, err := ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("records = %d, want 2", len(out))
	}
	stats := r.Stats()
	if stats.Read != 2 || stats.Quarantined[ClassBadField] != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if len(sink.got) != 1 || sink.got[0].Class != ClassBadField || sink.got[0].Index != 1 {
		t.Fatalf("sink = %+v", sink.got)
	}
}

func TestResilientTruncatedTailEndsStreamCleanly(t *testing.T) {
	in := []Record{rec(1, 1, 0, time.Minute), rec(2, 2, time.Hour, time.Minute)}
	data := encodeBinary(t, in)
	data = data[:len(data)-5] // tear the second record

	r := NewResilientReader(NewBinaryReader(bytes.NewReader(data)), noBudget())
	out, err := ReadAll(r)
	if err != nil {
		t.Fatalf("truncated tail must degrade to EOF, got %v", err)
	}
	if len(out) != 1 {
		t.Fatalf("records = %d, want 1", len(out))
	}
	if got := r.Stats().Quarantined[ClassTruncated]; got != 1 {
		t.Fatalf("truncated quarantine = %d, want 1", got)
	}
	// Terminal state is sticky.
	if _, err := r.Read(); !errors.Is(err, io.EOF) {
		t.Fatalf("post-EOF read = %v", err)
	}
}

func TestResilientTimeWindow(t *testing.T) {
	cfg := noBudget()
	cfg.MinStart = t0
	cfg.MaxStart = t0.AddDate(0, 0, 90)
	in := []Record{
		rec(1, 1, 0, time.Minute),
		rec(2, 2, -48*time.Hour, time.Minute),     // before window
		rec(3, 3, 91*24*time.Hour, time.Minute),   // after window
		rec(4, 4, 89*24*time.Hour, 2*time.Minute), // inside
	}
	r := NewResilientReader(NewSliceReader(in), cfg)
	out, err := ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Car != 1 || out[1].Car != 4 {
		t.Fatalf("records = %+v", out)
	}
	if got := r.Stats().Quarantined[ClassTimeRange]; got != 2 {
		t.Fatalf("time-range quarantine = %d, want 2", got)
	}
}

func TestResilientDuplicatesAndRegressions(t *testing.T) {
	cfg := noBudget()
	cfg.FlagDuplicates = true
	cfg.FlagRegressions = true
	in := []Record{
		rec(1, 1, time.Hour, time.Minute),
		rec(1, 1, time.Hour, time.Minute), // exact duplicate
		rec(2, 2, 2*time.Hour, time.Minute),
		rec(3, 3, time.Hour, time.Minute), // start regresses
		rec(4, 4, 3*time.Hour, time.Minute),
	}
	r := NewResilientReader(NewSliceReader(in), cfg)
	out, err := ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("records = %d, want 3", len(out))
	}
	stats := r.Stats()
	if stats.Quarantined[ClassDuplicate] != 1 || stats.Quarantined[ClassRegression] != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestResilientBudgetAbortNamesDominantClass(t *testing.T) {
	// 50 good records then a run of bad rows: with a 10% budget and
	// MinRecords 10 the reader must abort and name bad-field as the
	// dominant class.
	var buf bytes.Buffer
	w := NewCSVWriter(&buf)
	for i := 0; i < 50; i++ {
		if err := w.Write(rec(CarID(i), 1, time.Duration(i)*time.Minute, time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw := buf.String()
	for i := 0; i < 20; i++ {
		raw += fmt.Sprintf("bad%d,x,y,z\n", i)
	}

	cfg := ResilientConfig{MaxBadFrac: 0.10, MinRecords: 10}
	r := NewResilientReader(NewCSVReader(strings.NewReader(raw)), cfg)
	_, err := ReadAll(r)
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BudgetError", err)
	}
	if class, _ := be.Stats.Dominant(); class != ClassBadField {
		t.Fatalf("dominant class = %v, want bad-field", class)
	}
	if !strings.Contains(err.Error(), "bad-field") {
		t.Fatalf("error must name the dominant class: %q", err.Error())
	}
	// The abort is sticky.
	if _, err2 := r.Read(); !errors.As(err2, &be) {
		t.Fatalf("post-abort read = %v", err2)
	}
}

func TestResilientStrictAbortsOnFirstBadRecord(t *testing.T) {
	raw := "5,196611,1483315200,60\ngarbage,x,y,z\n6,196611,1483315300,30\n"
	cfg := ResilientConfig{Strict: true}
	r := NewResilientReader(NewCSVReader(strings.NewReader(raw)), cfg)
	out, err := ReadAll(r)
	if err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("strict mode accepted a bad record (err=%v)", err)
	}
	if len(out) != 1 {
		t.Fatalf("records before abort = %d, want 1", len(out))
	}
}

func TestResilientTransientRetry(t *testing.T) {
	defer stubSleep(t)()
	in := randomRecords(40, 9)
	flaky := NewFlakyReader(NewSliceReader(in), 7)
	r := NewResilientReader(flaky, noBudget())
	out, err := ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("records = %d, want %d", len(out), len(in))
	}
	if r.Stats().Retries == 0 {
		t.Fatal("no retries recorded")
	}
}

func TestResilientTransientExhaustion(t *testing.T) {
	defer stubSleep(t)()
	// A permanently transient source must eventually surface its error
	// instead of retrying forever.
	perma := readerFunc(func() (Record, error) {
		return Record{}, Transient(errors.New("flappy disk"))
	})
	cfg := noBudget()
	cfg.TransientRetries = 2
	r := NewResilientReader(perma, cfg)
	_, err := r.Read()
	if err == nil || !IsTransient(err) {
		t.Fatalf("err = %v, want the transient error surfaced", err)
	}
	if got := r.Stats().Retries; got != 2 {
		t.Fatalf("retries = %d, want 2", got)
	}
}

func TestResilientSinkFailureIsFatal(t *testing.T) {
	raw := "garbage,x,y,z\n5,196611,1483315200,60\n"
	cfg := noBudget()
	cfg.Sink = &memSink{fail: errors.New("disk full")}
	r := NewResilientReader(NewCSVReader(strings.NewReader(raw)), cfg)
	if _, err := ReadAll(r); err == nil || !strings.Contains(err.Error(), "quarantine sink") {
		t.Fatalf("err = %v, want sink failure", err)
	}
}

func TestResilientRevalidatesDecodedRecords(t *testing.T) {
	// Records arriving from a non-codec source (or mutated in
	// transit) must still be validated.
	bad := rec(1, 1, time.Hour, time.Minute)
	bad.Start = time.Time{}
	r := NewResilientReader(NewSliceReader([]Record{rec(2, 2, 0, time.Minute), bad}), noBudget())
	out, err := ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || r.Stats().Quarantined[ClassBadField] != 1 {
		t.Fatalf("records = %d, quarantined = %+v", len(out), r.Stats().Quarantined)
	}
}

func TestQuarantineWriterFormat(t *testing.T) {
	var buf bytes.Buffer
	qw := NewQuarantineWriter(&buf)
	q := Quarantined{Index: 3, Class: ClassDuplicate, Err: errors.New("dup"), Record: rec(9, 1, time.Hour, time.Minute)}
	if err := qw.Quarantine(q); err != nil {
		t.Fatal(err)
	}
	if err := qw.Close(); err != nil {
		t.Fatal(err)
	}
	line := buf.String()
	for _, want := range []string{"3\t", "duplicate", "dup"} {
		if !strings.Contains(line, want) {
			t.Fatalf("line %q missing %q", line, want)
		}
	}
}

// readerFunc adapts a closure to the Reader interface.
type readerFunc func() (Record, error)

func (f readerFunc) Read() (Record, error) { return f() }

// stubSleep replaces the retry backoff sleep for the test's duration.
func stubSleep(t *testing.T) func() {
	t.Helper()
	old := sleepFn
	sleepFn = func(time.Duration) {}
	return func() { sleepFn = old }
}
