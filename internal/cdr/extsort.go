package cdr

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"cellcars/internal/obs"
)

// ExternalSortConfig controls disk-backed sorting of CDR streams too
// large for memory — the paper's data set is 1.1 billion records,
// which at 28 bytes each is ~31 GB.
type ExternalSortConfig struct {
	// ChunkRecords is the number of records sorted in memory per spill
	// chunk. Default 4 << 20 (~112 MB resident per chunk).
	ChunkRecords int
	// TempDir holds the spill files. Defaults to os.TempDir().
	TempDir string
	// RetryAttempts is how many times a transient failure (see
	// IsTransient) of a stream read or a spill write is retried before
	// the sort gives up. Default 3; negative disables retries.
	RetryAttempts int
	// RetryBackoff is the initial delay between retries, doubling per
	// attempt. Default 5ms.
	RetryBackoff time.Duration
	// Obs, when non-nil, receives spill metrics: spill file and record
	// counts, spill wall time, and transient retries.
	Obs *obs.Registry
}

func (cfg *ExternalSortConfig) fill() {
	if cfg.ChunkRecords <= 0 {
		cfg.ChunkRecords = 4 << 20
	}
	if cfg.TempDir == "" {
		cfg.TempDir = os.TempDir()
	}
	if cfg.RetryAttempts == 0 {
		cfg.RetryAttempts = 3
	}
	if cfg.RetryAttempts < 0 {
		cfg.RetryAttempts = 0
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = 5 * time.Millisecond
	}
}

// ExternalSort reads every record from r, sorts the stream by
// (start, car, cell), and writes it to w, spilling sorted chunks to
// temporary files in the binary format and k-way merging them.
// Transient read and spill failures are retried with exponential
// backoff per the config. Temporary files are always cleaned up, even
// when a reader or writer panics (the panic is converted into an
// error). Small inputs (one chunk) never touch the disk.
func ExternalSort(r Reader, w Writer, cfg ExternalSortConfig) (err error) {
	cfg.fill()

	// Registered first so it runs last: by then the cleanup defers
	// below have already removed spill files and closed merge inputs,
	// panicking or not.
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("cdr: external sort panicked: %v", p)
		}
	}()

	var spills []string
	defer func() {
		for _, path := range spills {
			os.Remove(path)
		}
	}()

	chunk := make([]Record, 0, min(cfg.ChunkRecords, 1<<16))
	for {
		rec, rerr := readRetry(r, cfg)
		if rerr != nil {
			if errors.Is(rerr, io.EOF) {
				break
			}
			return rerr
		}
		chunk = append(chunk, rec)
		if len(chunk) >= cfg.ChunkRecords {
			path, serr := spillRetry(chunk, cfg, len(spills))
			if serr != nil {
				return serr
			}
			spills = append(spills, path)
			chunk = chunk[:0]
		}
	}
	Sort(chunk)

	if len(spills) == 0 {
		// Single in-memory chunk: write directly.
		return WriteAll(w, chunk)
	}

	// Open every spill plus the resident tail chunk and merge.
	readers := make([]Reader, 0, len(spills)+1)
	files := make([]*os.File, 0, len(spills))
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	for _, path := range spills {
		f, oerr := os.Open(path)
		if oerr != nil {
			return oerr
		}
		files = append(files, f)
		readers = append(readers, NewBinaryReader(f))
	}
	if len(chunk) > 0 {
		readers = append(readers, NewSliceReader(chunk))
	}

	merged := Merge(readers...)
	for {
		rec, merr := merged.Read()
		if merr != nil {
			if errors.Is(merr, io.EOF) {
				return nil
			}
			return merr
		}
		if werr := w.Write(rec); werr != nil {
			return werr
		}
	}
}

// readRetry reads one record, retrying transient failures with
// backoff.
func readRetry(r Reader, cfg ExternalSortConfig) (Record, error) {
	var rec Record
	var err error
	for attempt := 0; ; attempt++ {
		rec, err = r.Read()
		if err == nil || !IsTransient(err) || attempt >= cfg.RetryAttempts {
			return rec, err
		}
		if cfg.Obs != nil {
			cfg.Obs.Counter("cellcars_extsort_retries_total").Inc()
		}
		sleepFn(cfg.RetryBackoff << attempt)
	}
}

// spillRetry spills one chunk, retrying transient failures with
// backoff. Each attempt writes a fresh temp file; failed attempts
// remove their own file, so retries never leak.
func spillRetry(chunk []Record, cfg ExternalSortConfig, index int) (string, error) {
	var path string
	var err error
	t0 := time.Now()
	for attempt := 0; ; attempt++ {
		path, err = spillChunk(chunk, cfg.TempDir, index)
		if err == nil || !IsTransient(err) || attempt >= cfg.RetryAttempts {
			if err == nil && cfg.Obs != nil {
				cfg.Obs.Counter("cellcars_extsort_spills_total").Inc()
				cfg.Obs.Counter("cellcars_extsort_spill_records_total").Add(int64(len(chunk)))
				cfg.Obs.Timing("cellcars_extsort_spill_seconds").Observe(time.Since(t0))
			}
			return path, err
		}
		if cfg.Obs != nil {
			cfg.Obs.Counter("cellcars_extsort_retries_total").Inc()
		}
		sleepFn(cfg.RetryBackoff << attempt)
	}
}

// createSpillFile is stubbed by tests to inject spill I/O faults.
var createSpillFile = os.CreateTemp

// spillChunk sorts and writes one chunk to a temporary binary file,
// returning its path.
func spillChunk(chunk []Record, dir string, index int) (string, error) {
	Sort(chunk)
	f, err := createSpillFile(dir, fmt.Sprintf("cdrsort-%04d-*.bin", index))
	if err != nil {
		return "", err
	}
	path := f.Name()
	w := NewBinaryWriter(f)
	if err := WriteAll(w, chunk); err != nil {
		f.Close()
		os.Remove(path)
		return "", err
	}
	if err := w.Close(); err != nil {
		f.Close()
		os.Remove(path)
		return "", err
	}
	if err := f.Close(); err != nil {
		os.Remove(path)
		return "", err
	}
	return path, nil
}

// SortFile sorts a binary CDR file on disk into dst (which may equal
// src only if the filesystem allows replacing an open file; prefer a
// distinct destination).
func SortFile(src, dst string, cfg ExternalSortConfig) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	if cfg.TempDir == "" {
		cfg.TempDir = filepath.Dir(dst)
	}
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	w := NewBinaryWriter(out)
	if err := ExternalSort(NewBinaryReader(in), w, cfg); err != nil {
		out.Close()
		os.Remove(dst)
		return err
	}
	if err := w.Close(); err != nil {
		out.Close()
		os.Remove(dst)
		return err
	}
	return out.Close()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
