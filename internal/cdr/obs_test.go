package cdr

import (
	"math"
	"strings"
	"testing"

	"cellcars/internal/obs"
)

// TestIngestMetrics runs a dirty CSV stream through the resilient
// reader with a registry attached and checks the delivered/quarantined
// counters and the budget gauge against the reader's own Stats.
func TestIngestMetrics(t *testing.T) {
	// Two good rows, then a bad one last so the final budget-gauge
	// update sees the stream's final counts.
	raw := "5,196611,1483315200,60\n" +
		"6,196611,1483315260,30\n" +
		"garbage,x,y,z\n"
	reg := obs.New()
	cfg := ResilientConfig{MaxBadFrac: 0.5, MinRecords: 10, Obs: reg}
	r := NewResilientReader(NewCSVReader(strings.NewReader(raw)), cfg)
	out, err := ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("records = %d, want 2", len(out))
	}

	if got := reg.Counter("cellcars_ingest_records_total").Value(); got != 2 {
		t.Errorf("ingest records counter = %d, want 2", got)
	}
	if got := reg.Counter("cellcars_ingest_quarantined_total",
		obs.Label{Key: "class", Value: "bad-field"}).Value(); got != 1 {
		t.Errorf("bad-field quarantine counter = %d, want 1", got)
	}
	// One bad of three attempted against a 0.5 budget: (1/3)/0.5.
	want := (1.0 / 3.0) / 0.5
	if got := reg.Gauge("cellcars_ingest_budget_used_ratio").Value(); math.Abs(got-want) > 1e-9 {
		t.Errorf("budget gauge = %v, want %v", got, want)
	}
}

// TestIngestRetryMetric asserts transient retries land in the counter
// and agree with the reader's stats.
func TestIngestRetryMetric(t *testing.T) {
	defer stubSleep(t)()
	in := randomRecords(40, 9)
	reg := obs.New()
	cfg := noBudget()
	cfg.Obs = reg
	r := NewResilientReader(NewFlakyReader(NewSliceReader(in), 7), cfg)
	if _, err := ReadAll(r); err != nil {
		t.Fatal(err)
	}
	got := reg.Counter("cellcars_ingest_retries_total").Value()
	if got == 0 {
		t.Fatal("no retries in the counter")
	}
	if want := r.Stats().Retries; got != want {
		t.Fatalf("retry counter = %d, stats say %d", got, want)
	}
}

// TestExternalSortSpillMetrics forces spills and checks the spill
// counters and timing match the chunk arithmetic.
func TestExternalSortSpillMetrics(t *testing.T) {
	in := randomRecords(1000, 3)
	reg := obs.New()
	var out SliceWriter
	cfg := ExternalSortConfig{ChunkRecords: 300, TempDir: t.TempDir(), Obs: reg}
	if err := ExternalSort(NewSliceReader(in), &out, cfg); err != nil {
		t.Fatal(err)
	}
	if !Sorted(out.Records) || len(out.Records) != len(in) {
		t.Fatalf("sort broken: %d records, sorted=%v", len(out.Records), Sorted(out.Records))
	}

	// 1000 records at 300 per chunk: three full chunks spill, the
	// 100-record tail stays resident.
	if got := reg.Counter("cellcars_extsort_spills_total").Value(); got != 3 {
		t.Errorf("spills counter = %d, want 3", got)
	}
	if got := reg.Counter("cellcars_extsort_spill_records_total").Value(); got != 900 {
		t.Errorf("spilled records counter = %d, want 900", got)
	}
	tm := reg.Timing("cellcars_extsort_spill_seconds")
	if got := tm.Count(); got != 3 {
		t.Errorf("spill timing count = %d, want 3", got)
	}
	if got := reg.Counter("cellcars_extsort_retries_total").Value(); got != 0 {
		t.Errorf("retries counter = %d, want 0 on a healthy run", got)
	}
}
