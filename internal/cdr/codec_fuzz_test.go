package cdr

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"cellcars/internal/radio"
)

// drainAll reads every record until EOF or a terminal error,
// tolerating resumable per-record errors the way ResilientReader
// does. It bounds iterations so a decoder bug can never hang the
// fuzzer.
func drainAll(t *testing.T, r Reader, limit int) []Record {
	t.Helper()
	var out []Record
	for i := 0; i < limit; i++ {
		rec, err := r.Read()
		if errors.Is(err, io.EOF) {
			return out
		}
		if err != nil {
			if errors.Is(err, ErrBadRecord) {
				continue // resumable
			}
			return out // terminal: truncation, bad magic, I/O
		}
		out = append(out, rec)
	}
	t.Fatalf("reader did not terminate within %d reads", limit)
	return nil
}

// FuzzCSVReader asserts the CSV codec never panics on arbitrary
// bytes, and that whatever it accepts round-trips bit-exactly.
func FuzzCSVReader(f *testing.F) {
	f.Add([]byte("car,cell,start_unix,duration_s\n5,196611,1483315200,60\n"))
	f.Add([]byte("5,196611,1483315200,60\n6,196611,1483315300,0\n"))
	f.Add([]byte("car,cell,start_unix,duration_s\n"))
	f.Add([]byte(""))
	f.Add([]byte("car,cell\nstray\n\"unterminated"))
	f.Add([]byte("-1,-2,-3,-4\n99999999999999999999,1,2,3\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		decoded := drainAll(t, NewCSVReader(bytes.NewReader(data)), len(data)+16)
		for _, rec := range decoded {
			if err := rec.Validate(); err != nil {
				t.Fatalf("codec emitted invalid record %+v: %v", rec, err)
			}
		}
		if len(decoded) == 0 {
			return
		}
		// Round-trip: accepted records re-encode and re-decode exactly.
		var buf bytes.Buffer
		w := NewCSVWriter(&buf)
		if err := WriteAll(w, decoded); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		again, err := ReadAll(NewCSVReader(&buf))
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if len(again) != len(decoded) {
			t.Fatalf("round-trip %d != %d records", len(again), len(decoded))
		}
		for i := range again {
			if !sameRecord(again[i], decoded[i]) {
				t.Fatalf("round-trip record %d: %+v != %+v", i, again[i], decoded[i])
			}
		}
	})
}

// FuzzBinaryReader asserts the binary codec never panics on arbitrary
// bytes, and that whatever it accepts round-trips bit-exactly.
func FuzzBinaryReader(f *testing.F) {
	valid := func(recs ...Record) []byte {
		var buf bytes.Buffer
		w := NewBinaryWriter(&buf)
		for _, r := range recs {
			if err := w.Write(r); err != nil {
				f.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	r1 := Record{Car: 5, Cell: radio.MakeCellKey(3, 0, radio.C3), Start: time.Unix(1483315200, 0).UTC(), Duration: time.Minute}
	full := valid(r1, Record{Car: 6, Cell: radio.MakeCellKey(4, 1, radio.C1), Start: time.Unix(1483315260, 0).UTC(), Duration: 0})
	f.Add(full)
	f.Add(full[:len(full)-5]) // torn tail
	f.Add(valid())            // magic only
	f.Add([]byte("CCARCDR1"))
	f.Add([]byte("not a cdr file"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		decoded := drainAll(t, NewBinaryReader(bytes.NewReader(data)), len(data)/binRecordSize+16)
		for _, rec := range decoded {
			if err := rec.Validate(); err != nil {
				t.Fatalf("codec emitted invalid record %+v: %v", rec, err)
			}
		}
		if len(decoded) == 0 {
			return
		}
		var buf bytes.Buffer
		w := NewBinaryWriter(&buf)
		if err := WriteAll(w, decoded); err != nil {
			// Records decoded from arbitrary bytes can carry durations
			// beyond the uint32 encoding range only if the decoder is
			// broken — the wire format is 32-bit.
			t.Fatalf("re-encode rejected decoded record: %v", err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		again, err := ReadAll(NewBinaryReader(&buf))
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if len(again) != len(decoded) {
			t.Fatalf("round-trip %d != %d records", len(again), len(decoded))
		}
		for i := range again {
			if !sameRecord(again[i], decoded[i]) {
				t.Fatalf("round-trip record %d: %+v != %+v", i, again[i], decoded[i])
			}
		}
	})
}
