package cdr

import (
	"errors"
	"io"
	"testing"
	"time"

	"cellcars/internal/radio"
)

func shardRec(car CarID, i int) Record {
	return Record{
		Car:      car,
		Cell:     radio.MakeCellKey(radio.BSID(i%13), 0, radio.C1),
		Start:    time.Date(2017, 1, 2, 0, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Minute),
		Duration: time.Duration(10+i%50) * time.Second,
	}
}

func TestShardOfCarStableAndBounded(t *testing.T) {
	for car := CarID(0); car < 1000; car++ {
		s := ShardOfCar(car, 8)
		if s < 0 || s >= 8 {
			t.Fatalf("car %d shard %d out of range", car, s)
		}
		if s != ShardOfCar(car, 8) {
			t.Fatalf("car %d shard unstable", car)
		}
	}
	if ShardOfCar(123, 1) != 0 {
		t.Fatal("single shard must be 0")
	}
}

func TestShardSlicesPartition(t *testing.T) {
	var records []Record
	for i := 0; i < 2000; i++ {
		records = append(records, shardRec(CarID(i%97), i))
	}
	shards := ShardSlices(records, 8)
	total := 0
	for si, shard := range shards {
		total += len(shard)
		// Car-disjointness + order preservation.
		for i, r := range shard {
			if ShardOfCar(r.Car, 8) != si {
				t.Fatalf("car %d in wrong shard %d", r.Car, si)
			}
			if i > 0 && shard[i-1].Start.After(r.Start) {
				// Source was time-ordered per construction index, so
				// shards must be too.
				t.Fatalf("shard %d order broken at %d", si, i)
			}
		}
	}
	if total != len(records) {
		t.Fatalf("shards cover %d of %d records", total, len(records))
	}
}

func TestShardReadersEquivalentToSlices(t *testing.T) {
	var records []Record
	for i := 0; i < 3000; i++ {
		records = append(records, shardRec(CarID(i%311), i))
	}
	want := ShardSlices(records, 4)
	readers := ShardReaders(NewSliceReader(records), 4)

	// Drain concurrently, as the engine does.
	got := make([][]Record, 4)
	errc := make(chan error, 4)
	for i, r := range readers {
		go func(i int, r Reader) {
			recs, err := ReadAll(r)
			got[i] = recs
			errc <- err
		}(i, r)
	}
	for i := 0; i < 4; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("shard %d: %d vs %d records", i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("shard %d record %d differs", i, j)
			}
		}
	}
}

// errAfterReader yields n records then a non-EOF error.
type errAfterReader struct {
	n   int
	err error
}

func (e *errAfterReader) Read() (Record, error) {
	if e.n <= 0 {
		return Record{}, e.err
	}
	e.n--
	return shardRec(CarID(e.n), e.n), nil
}

func TestShardReadersPropagateError(t *testing.T) {
	boom := errors.New("boom")
	readers := ShardReaders(&errAfterReader{n: 100, err: boom}, 3)
	sawErr := 0
	errc := make(chan error, 3)
	for _, r := range readers {
		go func(r Reader) {
			_, err := ReadAll(r)
			errc <- err
		}(r)
	}
	for i := 0; i < 3; i++ {
		if err := <-errc; errors.Is(err, boom) {
			sawErr++
		}
	}
	if sawErr != 3 {
		t.Fatalf("error delivered to %d of 3 shards", sawErr)
	}
}

func TestShardReadersEmptySource(t *testing.T) {
	readers := ShardReaders(NewSliceReader(nil), 2)
	for i, r := range readers {
		if _, err := r.Read(); !errors.Is(err, io.EOF) {
			t.Fatalf("shard %d: %v, want EOF", i, err)
		}
	}
}

func TestRecordHashDeterministic(t *testing.T) {
	a := shardRec(5, 17)
	b := shardRec(5, 17)
	if RecordHash(a) != RecordHash(b) {
		t.Fatal("identical records must hash identically")
	}
	if RecordHash(a) == RecordHash(shardRec(5, 18)) {
		t.Fatal("distinct records should hash differently")
	}
}
