package cdr

import "time"

// FilterTimeRange keeps records whose start falls in [from, to).
func FilterTimeRange(r Reader, from, to time.Time) Reader {
	return FilterFunc(r, func(rec Record) bool {
		return !rec.Start.Before(from) && rec.Start.Before(to)
	})
}

// FilterCars keeps records belonging to the given cars.
func FilterCars(r Reader, cars map[CarID]struct{}) Reader {
	return FilterFunc(r, func(rec Record) bool {
		_, ok := cars[rec.Car]
		return ok
	})
}

// SampleCars keeps a deterministic pseudo-random fraction of the car
// population: a car is in the sample iff a keyed hash of its id falls
// below frac. This is the paper's own methodology — "a random sample
// of 1 million cars" — as a stream operation: the same (key, frac)
// always selects the same cars, every record of a selected car is
// kept, and no car list needs to be materialized. frac outside [0, 1]
// is clamped.
func SampleCars(r Reader, frac float64, key uint64) Reader {
	if frac <= 0 {
		return FilterFunc(r, func(Record) bool { return false })
	}
	if frac >= 1 {
		return r
	}
	threshold := uint64(frac * float64(1<<63) * 2)
	return FilterFunc(r, func(rec Record) bool {
		return carHash(uint64(rec.Car), key) < threshold
	})
}

// InSample reports whether a car belongs to the (frac, key) sample —
// the predicate SampleCars applies per record.
func InSample(car CarID, frac float64, key uint64) bool {
	if frac <= 0 {
		return false
	}
	if frac >= 1 {
		return true
	}
	threshold := uint64(frac * float64(1<<63) * 2)
	return carHash(uint64(car), key) < threshold
}

// carHash is a SplitMix64-style keyed hash.
func carHash(id, key uint64) uint64 {
	x := id*0x9E3779B97F4A7C15 ^ key
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}
