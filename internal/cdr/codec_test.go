package cdr

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

// encodeBinary writes records to an in-memory binary stream.
func encodeBinary(t *testing.T, records []Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	if err := WriteAll(w, records); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// encodeCSV writes records to an in-memory CSV stream.
func encodeCSV(t *testing.T, records []Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewCSVWriter(&buf)
	if err := WriteAll(w, records); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestBinaryTruncatedTailSentinel(t *testing.T) {
	// N whole records plus half of one more: the whole records decode,
	// then the partial tail surfaces as ErrTruncated, not a bare
	// io.ErrUnexpectedEOF.
	in := []Record{
		rec(1, 1, 0, time.Minute),
		rec(2, 2, time.Hour, 2*time.Minute),
		rec(3, 3, 2*time.Hour, 3*time.Minute),
	}
	data := encodeBinary(t, in)
	half := append([]byte(nil), data...)
	half = append(half, encodeBinary(t, []Record{rec(4, 4, 3*time.Hour, time.Minute)})[8:8+binRecordSize/2]...)

	r := NewBinaryReader(bytes.NewReader(half))
	for i := range in {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != in[i] {
			t.Fatalf("record %d: %+v != %+v", i, got, in[i])
		}
	}
	_, err := r.Read()
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("partial tail error = %v, want ErrTruncated", err)
	}
	if errors.Is(err, io.EOF) {
		t.Fatalf("truncation must not be confused with clean EOF: %v", err)
	}
}

func TestBinaryTruncatedHeaderSentinel(t *testing.T) {
	_, err := NewBinaryReader(bytes.NewReader(binMagic[:3])).Read()
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("partial header error = %v, want ErrTruncated", err)
	}
}

func TestBinaryBadValueKeepsAlignment(t *testing.T) {
	// A record with an invalid carrier is reported as ErrBadRecord and
	// the fixed framing lets the next record decode cleanly.
	good := rec(7, 7, time.Hour, time.Minute)
	bad := good
	bad.Cell &^= 0xff // carrier 0
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	if err := w.Write(good); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(bad); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(good); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r := NewBinaryReader(&buf)
	if _, err := r.Read(); err != nil {
		t.Fatalf("first record: %v", err)
	}
	if _, err := r.Read(); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("bad record error = %v, want ErrBadRecord", err)
	}
	got, err := r.Read()
	if err != nil || got != good {
		t.Fatalf("post-error record = %+v, %v; want clean decode", got, err)
	}
}

func TestCSVHeaderStrict(t *testing.T) {
	body := "5,196611,1483315200,60\n"
	cases := []struct {
		name    string
		raw     string
		records int
		wantErr bool
	}{
		{"header", "car,cell,start_unix,duration_s\n" + body, 1, false},
		{"no header", body, 1, false},
		{"header only", "car,cell,start_unix,duration_s\n", 0, false},
		{"empty file", "", 0, false},
		// A first row that merely starts like the header is data, not a
		// header: it must surface as a parse error rather than being
		// silently swallowed.
		{"header-like prefix", "car,cell,start_unix,wrong\n" + body, 1, true},
		{"reordered header", "cell,car,start_unix,duration_s\n" + body, 1, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewCSVReader(strings.NewReader(tc.raw))
			var n int
			var firstErr error
			for {
				_, err := r.Read()
				if errors.Is(err, io.EOF) {
					break
				}
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					continue
				}
				n++
			}
			if n != tc.records {
				t.Fatalf("records = %d, want %d", n, tc.records)
			}
			if tc.wantErr && !errors.Is(firstErr, ErrBadRecord) {
				t.Fatalf("err = %v, want ErrBadRecord", firstErr)
			}
			if !tc.wantErr && firstErr != nil {
				t.Fatalf("unexpected error %v", firstErr)
			}
		})
	}
}

func TestCSVBadRowsAreResumable(t *testing.T) {
	raw := "car,cell,start_unix,duration_s\n" +
		"5,196611,1483315200,60\n" +
		"not,a,valid,row\n" +
		"too,few,fields\n" +
		"6,196611,1483315300,30\n"
	r := NewCSVReader(strings.NewReader(raw))
	var cars []CarID
	var badRows int
	for {
		recd, err := r.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			if !errors.Is(err, ErrBadRecord) {
				t.Fatalf("unexpected error class: %v", err)
			}
			badRows++
			continue
		}
		cars = append(cars, recd.Car)
	}
	if badRows != 2 || len(cars) != 2 || cars[0] != 5 || cars[1] != 6 {
		t.Fatalf("bad=%d cars=%v, want 2 bad rows and cars [5 6]", badRows, cars)
	}
}
