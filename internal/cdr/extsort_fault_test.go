package cdr

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// countFiles returns the number of entries in dir.
func countFiles(t *testing.T, dir string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return len(entries)
}

func TestExternalSortUnwritableTempDir(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("root ignores directory permissions")
	}
	dir := t.TempDir()
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	in := randomRecords(1000, 11)
	var out SliceWriter
	err := ExternalSort(NewSliceReader(in), &out, ExternalSortConfig{ChunkRecords: 100, TempDir: dir})
	if err == nil {
		t.Fatal("unwritable temp dir accepted")
	}
}

func TestExternalSortUnwritableTempDirRootSafe(t *testing.T) {
	// A nonexistent temp dir fails for any uid, covering the
	// unwritable-spill-path branch even when running as root.
	in := randomRecords(1000, 11)
	var out SliceWriter
	err := ExternalSort(NewSliceReader(in), &out,
		ExternalSortConfig{ChunkRecords: 100, TempDir: filepath.Join(t.TempDir(), "missing", "deep")})
	if err == nil {
		t.Fatal("nonexistent temp dir accepted")
	}
}

func TestExternalSortReaderErrorMidStreamCleansUp(t *testing.T) {
	dir := t.TempDir()
	in := randomRecords(900, 12)
	boom := errors.New("mid-stream failure")
	n := 0
	r := readerFunc(func() (Record, error) {
		if n >= 600 {
			return Record{}, boom
		}
		rec := in[n]
		n++
		return rec, nil
	})
	var out SliceWriter
	err := ExternalSort(r, &out, ExternalSortConfig{ChunkRecords: 100, TempDir: dir})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the reader failure", err)
	}
	if got := countFiles(t, dir); got != 0 {
		t.Fatalf("%d spill files leaked after reader error", got)
	}
}

func TestExternalSortWriterErrorCleansUp(t *testing.T) {
	dir := t.TempDir()
	in := randomRecords(900, 13)
	boom := errors.New("sink failure")
	w := writerFunc(func(Record) error { return boom })
	err := ExternalSort(NewSliceReader(in), w, ExternalSortConfig{ChunkRecords: 100, TempDir: dir})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the writer failure", err)
	}
	if got := countFiles(t, dir); got != 0 {
		t.Fatalf("%d spill files leaked after writer error", got)
	}
}

func TestExternalSortPanicIsRecoveredAndCleansUp(t *testing.T) {
	dir := t.TempDir()
	in := randomRecords(900, 14)
	n := 0
	r := readerFunc(func() (Record, error) {
		if n >= 600 {
			panic("reader exploded")
		}
		rec := in[n]
		n++
		return rec, nil
	})
	var out SliceWriter
	err := ExternalSort(r, &out, ExternalSortConfig{ChunkRecords: 100, TempDir: dir})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v, want recovered panic", err)
	}
	if got := countFiles(t, dir); got != 0 {
		t.Fatalf("%d spill files leaked after panic", got)
	}
}

func TestExternalSortRetriesTransientReads(t *testing.T) {
	defer stubSleep(t)()
	in := randomRecords(3000, 15)
	flaky := NewFlakyReader(NewSliceReader(in), 10)
	var out SliceWriter
	err := ExternalSort(flaky, &out, ExternalSortConfig{ChunkRecords: 500, TempDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Records) != len(in) || !Sorted(out.Records) {
		t.Fatalf("records = %d sorted=%v, want %d", len(out.Records), Sorted(out.Records), len(in))
	}
}

func TestExternalSortRetriesTransientSpills(t *testing.T) {
	defer stubSleep(t)()
	fails := 0
	old := createSpillFile
	createSpillFile = func(dir, pattern string) (*os.File, error) {
		if fails < 2 {
			fails++
			return nil, Transient(errors.New("spill device busy"))
		}
		return os.CreateTemp(dir, pattern)
	}
	defer func() { createSpillFile = old }()

	dir := t.TempDir()
	in := randomRecords(1500, 16)
	var out SliceWriter
	err := ExternalSort(NewSliceReader(in), &out, ExternalSortConfig{ChunkRecords: 300, TempDir: dir})
	if err != nil {
		t.Fatalf("transient spill faults not retried: %v", err)
	}
	if fails != 2 {
		t.Fatalf("fault injector fired %d times, want 2", fails)
	}
	if len(out.Records) != len(in) || !Sorted(out.Records) {
		t.Fatalf("records = %d sorted=%v", len(out.Records), Sorted(out.Records))
	}
	if got := countFiles(t, dir); got != 0 {
		t.Fatalf("%d spill files leaked", got)
	}
}

func TestExternalSortTransientSpillExhaustion(t *testing.T) {
	defer stubSleep(t)()
	old := createSpillFile
	createSpillFile = func(string, string) (*os.File, error) {
		return nil, Transient(errors.New("spill device gone"))
	}
	defer func() { createSpillFile = old }()

	in := randomRecords(1500, 17)
	var out SliceWriter
	err := ExternalSort(NewSliceReader(in), &out,
		ExternalSortConfig{ChunkRecords: 300, TempDir: t.TempDir(), RetryAttempts: 2})
	if err == nil || !IsTransient(err) {
		t.Fatalf("err = %v, want exhausted transient failure", err)
	}
}

// writerFunc adapts a closure to the Writer interface.
type writerFunc func(Record) error

func (f writerFunc) Write(r Record) error { return f(r) }
