package cdr

import (
	"fmt"
	"io"
	"math/rand/v2"
	"time"
)

// This file is the chaos harness: deterministic fault injectors for
// both the record layer (Reader) and the byte layer (io.Reader). They
// exist so tests can prove that every downstream consumer — cleaning,
// streaming analysis, external sort — degrades gracefully on the
// corruption patterns real carrier feeds exhibit, instead of only
// ever seeing pristine synthetic data.

// ChaosConfig sets per-record fault probabilities. All injections are
// driven by a PCG seeded from Seed, so a given (stream, config) pair
// always produces the same faults.
type ChaosConfig struct {
	// Seed drives the fault RNG.
	Seed uint64
	// CorruptProb mutates a record so it fails Validate (invalid
	// carrier, zero start, or negative duration).
	CorruptProb float64
	// DuplicateProb re-emits the delivered record once more.
	DuplicateProb float64
	// ReorderProb swaps the record with its successor.
	ReorderProb float64
	// TransientProb returns a transient (retryable) error before
	// delivering the record; a retry succeeds.
	TransientProb float64
}

// ChaosStats counts the faults actually injected.
type ChaosStats struct {
	Corrupted, Duplicated, Reordered, Transients int64
}

// ChaosReader wraps a Reader and injects record-level faults per
// ChaosConfig.
type ChaosReader struct {
	r     Reader
	cfg   ChaosConfig
	rng   *rand.Rand
	queue []Record // records to deliver before reading the source again
	err   error    // deferred source error discovered while reordering
	stats ChaosStats
}

// NewChaosReader wraps r with deterministic fault injection.
func NewChaosReader(r Reader, cfg ChaosConfig) *ChaosReader {
	return &ChaosReader{r: r, cfg: cfg, rng: rand.New(rand.NewPCG(cfg.Seed, 0xC4A05))}
}

// Stats returns the faults injected so far.
func (c *ChaosReader) Stats() ChaosStats { return c.stats }

func (c *ChaosReader) roll(p float64) bool { return p > 0 && c.rng.Float64() < p }

// Read returns the next (possibly faulty) record.
func (c *ChaosReader) Read() (Record, error) {
	if len(c.queue) > 0 {
		rec := c.queue[0]
		c.queue = c.queue[1:]
		return rec, nil
	}
	if c.err != nil {
		err := c.err
		c.err = nil
		return Record{}, err
	}
	rec, err := c.r.Read()
	if err != nil {
		return Record{}, err
	}
	if c.roll(c.cfg.ReorderProb) {
		next, nerr := c.r.Read()
		if nerr != nil {
			c.err = nerr // deliver rec now, surface the error after
		} else {
			c.queue = append(c.queue, rec)
			rec = next
			c.stats.Reordered++
		}
	}
	if c.roll(c.cfg.CorruptProb) {
		rec = c.corrupt(rec)
		c.stats.Corrupted++
	}
	if c.roll(c.cfg.DuplicateProb) {
		c.queue = append(c.queue, rec)
		c.stats.Duplicated++
	}
	if c.roll(c.cfg.TransientProb) {
		c.queue = append([]Record{rec}, c.queue...)
		c.stats.Transients++
		return Record{}, Transient(fmt.Errorf("cdr: chaos: injected fault before record"))
	}
	return rec, nil
}

// corrupt mutates one field so the record fails Validate.
func (c *ChaosReader) corrupt(rec Record) Record {
	switch c.rng.IntN(3) {
	case 0:
		rec.Cell &^= 0xff // carrier 0: invalid
	case 1:
		rec.Start = time.Time{} // zero start
	default:
		rec.Duration = -rec.Duration - 1 // negative duration
	}
	return rec
}

// FlipReader wraps an io.Reader and flips one random bit in each byte
// with probability prob, deterministically per seed — the classic
// storage/transport bit-rot model for exercising the binary codec.
type FlipReader struct {
	r    io.Reader
	prob float64
	rng  *rand.Rand
}

// NewFlipReader returns a bit-flipping wrapper over r.
func NewFlipReader(r io.Reader, prob float64, seed uint64) *FlipReader {
	return &FlipReader{r: r, prob: prob, rng: rand.New(rand.NewPCG(seed, 0xB17F11))}
}

// Read reads from the source and damages the returned bytes in place.
func (f *FlipReader) Read(p []byte) (int, error) {
	n, err := f.r.Read(p)
	for i := 0; i < n; i++ {
		if f.prob > 0 && f.rng.Float64() < f.prob {
			p[i] ^= 1 << f.rng.IntN(8)
		}
	}
	return n, err
}

// TruncateReader ends the stream cleanly after n bytes, simulating a
// partial file transfer or a torn tail.
type TruncateReader struct {
	r    io.Reader
	left int64
}

// NewTruncateReader returns a reader delivering at most n bytes of r.
func NewTruncateReader(r io.Reader, n int64) *TruncateReader {
	return &TruncateReader{r: r, left: n}
}

// Read reads up to the remaining byte allowance.
func (t *TruncateReader) Read(p []byte) (int, error) {
	if t.left <= 0 {
		return 0, io.EOF
	}
	if int64(len(p)) > t.left {
		p = p[:t.left]
	}
	n, err := t.r.Read(p)
	t.left -= int64(n)
	return n, err
}

// FaultReader delivers n bytes of r and then fails every subsequent
// Read with err, simulating a mid-stream I/O failure (pass a
// Transient-wrapped error to simulate a retryable one).
type FaultReader struct {
	r    io.Reader
	left int64
	err  error
}

// NewFaultReader returns a reader failing with err after n bytes.
func NewFaultReader(r io.Reader, n int64, err error) *FaultReader {
	return &FaultReader{r: r, left: n, err: err}
}

// Read reads until the fault offset, then returns the fault.
func (f *FaultReader) Read(p []byte) (int, error) {
	if f.left <= 0 {
		return 0, f.err
	}
	if int64(len(p)) > f.left {
		p = p[:f.left]
	}
	n, err := f.r.Read(p)
	f.left -= int64(n)
	return n, err
}

// FlakyReader wraps a Reader and fails every period-th Read with a
// transient error before succeeding on retry — the record-level
// analogue of a lossy RPC transport. Used to exercise retry paths in
// ExternalSort and ResilientReader.
type FlakyReader struct {
	r      Reader
	period int
	calls  int
}

// NewFlakyReader returns a reader that injects one transient failure
// every period calls (period <= 0 disables injection).
func NewFlakyReader(r Reader, period int) *FlakyReader {
	return &FlakyReader{r: r, period: period}
}

// Read fails transiently on schedule, otherwise delegates.
func (f *FlakyReader) Read() (Record, error) {
	f.calls++
	if f.period > 0 && f.calls%f.period == 0 {
		return Record{}, Transient(fmt.Errorf("cdr: chaos: flaky read %d", f.calls))
	}
	return f.r.Read()
}
