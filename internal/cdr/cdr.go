// Package cdr defines the Call Detail Record substrate: the radio-level
// connection record schema used throughout the pipeline, streaming
// readers and writers in CSV and binary formats, k-way merging of
// time-sorted streams, and keyed anonymization of car identifiers.
//
// A record describes one radio-level connection: which car, which cell
// (base station/sector/carrier), when it started, and how long it
// lasted. As in the paper's data set (§3), records carry no data
// volumes and no personal information.
package cdr

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"cellcars/internal/radio"
)

// CarID is an anonymized car identifier.
type CarID uint64

// Record is one radio-level connection event.
type Record struct {
	Car      CarID
	Cell     radio.CellKey
	Start    time.Time
	Duration time.Duration
}

// End returns the instant the connection ended.
func (r Record) End() time.Time { return r.Start.Add(r.Duration) }

// Validate checks structural invariants: a known carrier, a
// non-negative duration, and a non-zero start.
func (r Record) Validate() error {
	if !r.Cell.Carrier().Valid() {
		return fmt.Errorf("cdr: record for car %d has invalid carrier %d", r.Car, r.Cell.Carrier())
	}
	if r.Duration < 0 {
		return fmt.Errorf("cdr: record for car %d has negative duration %v", r.Car, r.Duration)
	}
	if r.Start.IsZero() {
		return fmt.Errorf("cdr: record for car %d has zero start time", r.Car)
	}
	return nil
}

// Before orders records by start time, breaking ties by car then cell,
// giving a total deterministic order.
func (r Record) Before(o Record) bool {
	if !r.Start.Equal(o.Start) {
		return r.Start.Before(o.Start)
	}
	if r.Car != o.Car {
		return r.Car < o.Car
	}
	return r.Cell < o.Cell
}

// Reader is the streaming source abstraction for CDR records. Read
// returns io.EOF after the last record.
type Reader interface {
	Read() (Record, error)
}

// Writer is the streaming sink abstraction for CDR records.
type Writer interface {
	Write(Record) error
}

// ErrClosed is returned by operations on a closed reader or writer.
var ErrClosed = errors.New("cdr: closed")

// SliceReader streams records from an in-memory slice.
type SliceReader struct {
	records []Record
	pos     int
}

// NewSliceReader returns a Reader over the given records. The slice is
// not copied; callers must not mutate it while reading.
func NewSliceReader(records []Record) *SliceReader {
	return &SliceReader{records: records}
}

// Read returns the next record or io.EOF.
func (s *SliceReader) Read() (Record, error) {
	if s.pos >= len(s.records) {
		return Record{}, io.EOF
	}
	r := s.records[s.pos]
	s.pos++
	return r, nil
}

// SliceWriter collects records into memory.
type SliceWriter struct {
	Records []Record
}

// Write appends the record.
func (s *SliceWriter) Write(r Record) error {
	s.Records = append(s.Records, r)
	return nil
}

// ReadAll drains a reader into a slice.
func ReadAll(r Reader) ([]Record, error) {
	var out []Record
	for {
		rec, err := r.Read()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return out, nil
			}
			return out, err
		}
		out = append(out, rec)
	}
}

// Concat returns a reader that drains each source in order, as if the
// streams were one file — the multi-input side of a sharded map run,
// where every worker scans the same file list. A source error ends the
// concatenated stream with that error.
func Concat(readers ...Reader) Reader {
	return &concatReader{readers: readers}
}

type concatReader struct {
	readers []Reader
	pos     int
}

func (c *concatReader) Read() (Record, error) {
	for c.pos < len(c.readers) {
		rec, err := c.readers[c.pos].Read()
		if err == nil {
			return rec, nil
		}
		if !errors.Is(err, io.EOF) {
			return Record{}, err
		}
		c.pos++
	}
	return Record{}, io.EOF
}

// Skip consumes and discards n records from r — the replay fast-path
// a checkpoint resume uses to advance a freshly opened stream to its
// watermark. A stream that ends before n records is reported as an
// error wrapping ErrTruncated: resuming past the end of the input
// means the checkpoint and the data file do not belong together.
func Skip(r Reader, n int64) error {
	for i := int64(0); i < n; i++ {
		if _, err := r.Read(); err != nil {
			if errors.Is(err, io.EOF) {
				return fmt.Errorf("cdr: stream ended after %d of %d skipped records: %w", i, n, ErrTruncated)
			}
			return err
		}
	}
	return nil
}

// WriteAll writes every record to w.
func WriteAll(w Writer, records []Record) error {
	for _, r := range records {
		if err := w.Write(r); err != nil {
			return err
		}
	}
	return nil
}

// Sort orders records in place by (start, car, cell).
func Sort(records []Record) {
	sort.Slice(records, func(i, j int) bool { return records[i].Before(records[j]) })
}

// Sorted reports whether records are ordered by (start, car, cell).
func Sorted(records []Record) bool {
	return sort.SliceIsSorted(records, func(i, j int) bool { return records[i].Before(records[j]) })
}

// Merge returns a Reader yielding the union of the given time-sorted
// readers in global (start, car, cell) order, using a k-way heap merge
// with O(k) memory. Input readers must each be sorted; Merge returns
// records as-is otherwise, with no guarantee of global order.
func Merge(readers ...Reader) Reader {
	m := &mergeReader{}
	for _, r := range readers {
		rec, err := r.Read()
		if err != nil {
			if errors.Is(err, io.EOF) {
				continue
			}
			m.err = err
			continue
		}
		m.heap = append(m.heap, mergeItem{rec: rec, src: r})
	}
	m.init()
	return m
}

type mergeItem struct {
	rec Record
	src Reader
}

type mergeReader struct {
	heap []mergeItem
	err  error
}

func (m *mergeReader) init() {
	for i := len(m.heap)/2 - 1; i >= 0; i-- {
		m.down(i)
	}
}

func (m *mergeReader) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(m.heap) && m.heap[l].rec.Before(m.heap[smallest].rec) {
			smallest = l
		}
		if r < len(m.heap) && m.heap[r].rec.Before(m.heap[smallest].rec) {
			smallest = r
		}
		if smallest == i {
			return
		}
		m.heap[i], m.heap[smallest] = m.heap[smallest], m.heap[i]
		i = smallest
	}
}

// Read returns the next record in global order.
func (m *mergeReader) Read() (Record, error) {
	if m.err != nil {
		err := m.err
		m.err = nil
		return Record{}, err
	}
	if len(m.heap) == 0 {
		return Record{}, io.EOF
	}
	top := m.heap[0]
	next, err := top.src.Read()
	if err != nil {
		if !errors.Is(err, io.EOF) {
			m.err = err
		}
		last := len(m.heap) - 1
		m.heap[0] = m.heap[last]
		m.heap = m.heap[:last]
	} else {
		m.heap[0].rec = next
	}
	m.down(0)
	return top.rec, nil
}

// FilterFunc adapts a reader to drop records for which keep returns
// false.
func FilterFunc(r Reader, keep func(Record) bool) Reader {
	return &filterReader{r: r, keep: keep}
}

type filterReader struct {
	r    Reader
	keep func(Record) bool
}

func (f *filterReader) Read() (Record, error) {
	for {
		rec, err := f.r.Read()
		if err != nil {
			return Record{}, err
		}
		if f.keep(rec) {
			return rec, nil
		}
	}
}
