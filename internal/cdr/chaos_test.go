package cdr

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestChaosReaderDeterministicAndCounted(t *testing.T) {
	in := randomRecords(2000, 5)
	cfg := ChaosConfig{Seed: 42, CorruptProb: 0.01, DuplicateProb: 0.01, ReorderProb: 0.01, TransientProb: 0.01}

	drain := func() (records []Record, transients int, stats ChaosStats) {
		c := NewChaosReader(NewSliceReader(in), cfg)
		for {
			rec, err := c.Read()
			if errors.Is(err, io.EOF) {
				return records, transients, c.Stats()
			}
			if err != nil {
				if !IsTransient(err) {
					t.Fatalf("unexpected non-transient error: %v", err)
				}
				transients++
				continue
			}
			records = append(records, rec)
		}
	}

	r1, t1, s1 := drain()
	r2, t2, s2 := drain()
	if len(r1) != len(r2) || t1 != t2 || s1 != s2 {
		t.Fatalf("chaos not deterministic: %d/%d records, %d/%d transients, %+v vs %+v",
			len(r1), len(r2), t1, t2, s1, s2)
	}
	if s1.Corrupted == 0 || s1.Duplicated == 0 || s1.Reordered == 0 || s1.Transients == 0 {
		t.Fatalf("expected every fault kind at 1%% over 2000 records: %+v", s1)
	}
	// No record lost: delivered = input + duplicates (corruption and
	// reordering never drop records; transients retry into delivery).
	if want := int64(len(in)) + s1.Duplicated; int64(len(r1)) != want {
		t.Fatalf("delivered %d records, want %d", len(r1), want)
	}
	if t1 != int(s1.Transients) {
		t.Fatalf("observed %d transients, stats say %d", t1, s1.Transients)
	}
	// Corrupted records fail validation (a duplicate of a corrupted
	// record is invalid too, hence the upper bound).
	var invalid int64
	for _, r := range r1 {
		if r.Validate() != nil {
			invalid++
		}
	}
	if invalid < s1.Corrupted || invalid > s1.Corrupted+s1.Duplicated {
		t.Fatalf("invalid records %d outside [%d, %d]", invalid, s1.Corrupted, s1.Corrupted+s1.Duplicated)
	}
}

func TestFlipReaderDamagesBinaryStreamSafely(t *testing.T) {
	// A bit-rotted binary stream must produce errors, never panics,
	// and the resilient wrapper must survive everything short of the
	// error budget.
	in := randomRecords(500, 6)
	data := encodeBinary(t, in)
	flip := NewFlipReader(bytes.NewReader(data), 0.001, 7)
	r := NewResilientReader(NewBinaryReader(flip), noBudget())
	out, err := ReadAll(r)
	if err != nil && !errors.Is(err, io.EOF) {
		// Bad magic from a header flip is a legitimate hard failure;
		// anything else should have been absorbed.
		if !bytes.Contains([]byte(err.Error()), []byte("magic")) {
			t.Fatalf("unexpected error: %v", err)
		}
		return
	}
	if len(out) > len(in) {
		t.Fatalf("bit flips created records: %d > %d", len(out), len(in))
	}
}

func TestTruncateReaderEndsBinaryStream(t *testing.T) {
	in := randomRecords(100, 7)
	data := encodeBinary(t, in)
	cut := int64(len(data) - binRecordSize/2) // tear the last record
	r := NewResilientReader(NewBinaryReader(NewTruncateReader(bytes.NewReader(data), cut)), noBudget())
	out, err := ReadAll(r)
	if err != nil {
		t.Fatalf("torn tail must degrade to EOF, got %v", err)
	}
	if len(out) != len(in)-1 {
		t.Fatalf("records = %d, want %d", len(out), len(in)-1)
	}
	if r.Stats().Quarantined[ClassTruncated] != 1 {
		t.Fatalf("stats = %+v", r.Stats())
	}
}

func TestFaultReaderSurfacesIOError(t *testing.T) {
	in := randomRecords(100, 8)
	data := encodeBinary(t, in)
	boom := errors.New("io pressure")
	r := NewBinaryReader(NewFaultReader(bytes.NewReader(data), int64(len(data)/2), boom))
	_, err := ReadAll(r)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the injected fault", err)
	}
}

func TestFlakyReaderRecoversWithRetry(t *testing.T) {
	in := randomRecords(50, 9)
	f := NewFlakyReader(NewSliceReader(in), 5)
	var out []Record
	for {
		rec, err := f.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			if !IsTransient(err) {
				t.Fatalf("non-transient fault: %v", err)
			}
			continue // retry
		}
		out = append(out, rec)
	}
	if len(out) != len(in) {
		t.Fatalf("records = %d, want %d (no loss through transient faults)", len(out), len(in))
	}
}
