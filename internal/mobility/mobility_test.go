package mobility

import (
	"math/rand/v2"
	"testing"
	"time"

	"cellcars/internal/fleet"
	"cellcars/internal/geo"
	"cellcars/internal/radio"
	"cellcars/internal/simtime"
)

func testSetup(t *testing.T) (*Planner, []fleet.Car) {
	t.Helper()
	world := geo.DefaultWorld(40)
	net := radio.Build(radio.Config{World: world}, rand.New(rand.NewPCG(1, 2)))
	period := simtime.NewPeriod(time.Date(2017, 1, 2, 0, 0, 0, 0, time.UTC), 14)
	cars := fleet.Generate(fleet.DefaultConfig(200), world, rand.New(rand.NewPCG(3, 4)))
	return NewPlanner(net, period), cars
}

func TestSpeedOrdering(t *testing.T) {
	if !(SpeedKmh(geo.Urban) < SpeedKmh(geo.Suburban) && SpeedKmh(geo.Suburban) < SpeedKmh(geo.Rural)) {
		t.Fatal("speeds must increase with sparsity")
	}
	if SpeedKmh(geo.Density(9)) != SpeedKmh(geo.Suburban) {
		t.Fatal("unknown density should fall back to suburban speed")
	}
}

func TestDayTripsStructure(t *testing.T) {
	p, cars := testSetup(t)
	rng := rand.New(rand.NewPCG(5, 6))
	total := 0
	for ci := range cars {
		for day := 0; day < 7; day++ {
			trips := p.DayTrips(&cars[ci], day, rng)
			total += len(trips)
			var prevStart time.Time
			for ti, trip := range trips {
				if ti > 0 && trip.Start.Before(prevStart) {
					t.Fatalf("car %d day %d: trips out of order", ci, day)
				}
				prevStart = trip.Start
				if len(trip.Visits) == 0 {
					t.Fatalf("car %d day %d: empty trip", ci, day)
				}
				// Visits contiguous, starting at 0, monotone.
				if trip.Visits[0].Enter != 0 {
					t.Fatalf("first visit enters at %v", trip.Visits[0].Enter)
				}
				for vi, v := range trip.Visits {
					if v.Exit <= v.Enter {
						t.Fatalf("visit %d has non-positive duration [%v,%v)", vi, v.Enter, v.Exit)
					}
					if vi > 0 {
						prev := trip.Visits[vi-1]
						if v.Enter != prev.Exit {
							t.Fatalf("visit %d not contiguous: enter %v after exit %v", vi, v.Enter, prev.Exit)
						}
						if v.BS == prev.BS {
							t.Fatalf("visit %d repeats base station %d", vi, v.BS)
						}
					}
				}
				if trip.Duration() <= 0 {
					t.Fatalf("trip duration %v", trip.Duration())
				}
				if got := trip.End(); !got.Equal(trip.Start.Add(trip.Duration())) {
					t.Fatalf("End mismatch")
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("no trips generated for 200 cars over a week")
	}
}

func TestCommuterWeekdayPattern(t *testing.T) {
	p, _ := testSetup(t)
	world := geo.DefaultWorld(40)
	car := fleet.Car{
		ID: 1, Archetype: fleet.CommuterBusy,
		Home: geo.Point{X: 8, Y: 20}, Work: world.Bounds.Center(),
		TZOffsetSeconds: -5 * 3600,
	}
	rng := rand.New(rand.NewPCG(7, 8))
	weekdayTrips, weekendTrips := 0, 0
	for rep := 0; rep < 5; rep++ {
		for day := 0; day < 7; day++ {
			n := len(p.DayTrips(&car, day, rng))
			if day < 5 {
				weekdayTrips += n
			} else {
				weekendTrips += n
			}
		}
	}
	if weekdayTrips <= weekendTrips {
		t.Fatalf("commuter: weekday trips %d not above weekend %d", weekdayTrips, weekendTrips)
	}
	// ~2 commute legs per weekday across 25 weekdays → expect >= 30.
	if weekdayTrips < 30 {
		t.Fatalf("commuter made only %d weekday trips in 25 days", weekdayTrips)
	}
}

func TestCommuteCrossesMultipleStations(t *testing.T) {
	p, _ := testSetup(t)
	world := geo.DefaultWorld(40)
	// A suburban home ~12 km from the core.
	car := fleet.Car{
		ID: 2, Archetype: fleet.CommuterBusy,
		Home: geo.Point{X: 10, Y: 20}, Work: world.Bounds.Center(),
		TZOffsetSeconds: -5 * 3600,
	}
	rng := rand.New(rand.NewPCG(9, 10))
	maxVisits := 0
	for day := 0; day < 5; day++ {
		for _, trip := range p.DayTrips(&car, day, rng) {
			if trip.Kind == fleet.KindCommuteOut && len(trip.Visits) > maxVisits {
				maxVisits = len(trip.Visits)
			}
		}
	}
	if maxVisits < 3 {
		t.Fatalf("a 10 km commute visits only %d stations; expected >= 3 for handover analysis", maxVisits)
	}
}

func TestErrandIsRoundTrip(t *testing.T) {
	p, _ := testSetup(t)
	car := fleet.Car{
		ID: 3, Archetype: fleet.Occasional,
		Home: geo.Point{X: 20, Y: 12}, Work: geo.Point{X: 22, Y: 12},
		TZOffsetSeconds: -5 * 3600,
	}
	rng := rand.New(rand.NewPCG(11, 12))
	for day := 0; day < 14; day++ {
		trips := p.DayTrips(&car, day%7, rng)
		if len(trips) == 0 {
			continue
		}
		if len(trips)%2 != 0 {
			t.Fatalf("errand produced %d legs, want out+back pairs", len(trips))
		}
		// The return leg starts after the outbound leg ends (dwell > 0).
		if !trips[1].Start.After(trips[0].End()) {
			t.Fatal("return leg overlaps outbound leg")
		}
		return
	}
	t.Skip("occasional car never drove in 14 sampled days")
}

func TestTimeZoneShiftsUTCStart(t *testing.T) {
	p, _ := testSetup(t)
	car := fleet.Car{
		ID: 4, Archetype: fleet.CommuterEarly,
		Home: geo.Point{X: 12, Y: 20}, Work: geo.Point{X: 20, Y: 20},
		TZOffsetSeconds: -5 * 3600,
	}
	rng := rand.New(rand.NewPCG(13, 14))
	for day := 0; day < 5; day++ {
		for _, trip := range p.DayTrips(&car, day, rng) {
			if trip.Kind != fleet.KindCommuteOut {
				continue
			}
			// Local 5:36 ± noise → UTC = local + 5 h, so ~10:36 UTC.
			utcHour := trip.Start.UTC().Sub(p.period.DayStart(day)).Hours()
			if utcHour < 9 || utcHour > 13 {
				t.Fatalf("commute-out at UTC hour %.1f, want ~10.6", utcHour)
			}
			return
		}
	}
	t.Fatal("no commute-out generated in 5 weekdays")
}

func TestDegenerateRouteStillConnects(t *testing.T) {
	p, _ := testSetup(t)
	trip := p.route(geo.Point{X: 20, Y: 20}, geo.Point{X: 20.1, Y: 20}, p.period.Start(), fleet.KindErrand)
	if len(trip.Visits) != 1 {
		t.Fatalf("degenerate route visits = %d, want 1", len(trip.Visits))
	}
	if trip.Visits[0].Duration() <= 0 {
		t.Fatal("degenerate visit has no duration")
	}
}

func TestRouteTravelTimePlausible(t *testing.T) {
	p, _ := testSetup(t)
	a := geo.Point{X: 5, Y: 20}
	b := geo.Point{X: 35, Y: 20}
	trip := p.route(a, b, p.period.Start(), fleet.KindLong)
	dist := a.Dist(b)
	hours := trip.Duration().Hours()
	// 30 km across mixed densities: between 30/90=0.33h (all rural) and
	// 30/30=1h (all urban).
	if hours < dist/95 || hours > dist/25 {
		t.Fatalf("30 km leg took %.2f h", hours)
	}
}

func TestDayTripsPanicsOutsidePeriod(t *testing.T) {
	p, cars := testSetup(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.DayTrips(&cars[0], 99, rand.New(rand.NewPCG(1, 1)))
}

func TestNewPlannerPanicsOnNilNetwork(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPlanner(nil, simtime.DefaultPeriod())
}

func TestVisitDuration(t *testing.T) {
	v := Visit{Enter: time.Minute, Exit: 3 * time.Minute}
	if v.Duration() != 2*time.Minute {
		t.Fatalf("Duration = %v", v.Duration())
	}
}

func TestEmptyTripDuration(t *testing.T) {
	var trip Trip
	if trip.Duration() != 0 {
		t.Fatal("empty trip duration")
	}
}

// TestTripsMayCrossMidnightUTC: a late-evening local trip starts the
// next UTC day; the planner must emit it (clamping to the period is
// the generator's job).
func TestTripsMayCrossMidnightUTC(t *testing.T) {
	p, _ := testSetup(t)
	car := fleet.Car{
		ID: 9, Archetype: fleet.NightShift,
		Home: geo.Point{X: 15, Y: 20}, Work: geo.Point{X: 20, Y: 20},
		TZOffsetSeconds: -5 * 3600,
	}
	rng := rand.New(rand.NewPCG(31, 32))
	crossed := false
	for day := 0; day < 5; day++ {
		for _, trip := range p.DayTrips(&car, day, rng) {
			// 21:30 local = 02:30 UTC next day.
			if p.period.DayIndex(trip.Start) != day && p.period.Contains(trip.Start) {
				crossed = true
			}
		}
	}
	if !crossed {
		t.Fatal("night-shift trips never crossed midnight UTC")
	}
}
