// Package mobility turns fleet trip plans into concrete trips: timed
// sequences of base-station visits along routes through the world.
// A trip is one driving leg; round-trip plans (errands, weekend
// drives) expand into an outbound and a return leg separated by a
// dwell with the engine off.
//
// Routes are straight-line paths sampled at sub-spacing resolution;
// each sample snaps to the nearest base station, and consecutive
// samples under the same station collapse into one visit. Travel
// speed follows the local density class (slow downtown, fast rural),
// so visit durations — and therefore per-cell connection durations
// (Figure 9) and handover counts (§4.5) — fall out of the geography
// rather than being drawn from a target distribution.
package mobility

import (
	"fmt"
	"math/rand/v2"
	"time"

	"cellcars/internal/fleet"
	"cellcars/internal/geo"
	"cellcars/internal/radio"
	"cellcars/internal/simtime"
)

// Visit is one contiguous stretch of a trip spent under a single base
// station.
type Visit struct {
	// BS is the serving base station.
	BS radio.BSID
	// Enter and Exit are offsets from the trip start.
	Enter, Exit time.Duration
	// Pos is a representative position during the visit, used for
	// sector selection.
	Pos geo.Point
}

// Duration returns the time spent in the visit.
func (v Visit) Duration() time.Duration { return v.Exit - v.Enter }

// Trip is one driving leg.
type Trip struct {
	// Start is the (UTC) instant the engine starts.
	Start time.Time
	// Kind is the plan kind that produced the leg.
	Kind fleet.TripKind
	// Visits is the base-station sequence, in time order, covering
	// [0, Duration) without gaps.
	Visits []Visit
}

// Duration returns the total driving time of the leg.
func (t *Trip) Duration() time.Duration {
	if len(t.Visits) == 0 {
		return 0
	}
	return t.Visits[len(t.Visits)-1].Exit
}

// End returns the instant the leg ends.
func (t *Trip) End() time.Time { return t.Start.Add(t.Duration()) }

// SpeedKmh returns the modelled driving speed for a density class.
func SpeedKmh(d geo.Density) float64 {
	switch d {
	case geo.Urban:
		return 20
	case geo.Suburban:
		return 35
	case geo.Rural:
		return 70
	default:
		return 35
	}
}

// Planner generates daily trips for cars over a network and study
// period.
type Planner struct {
	net    *radio.Network
	period simtime.Period

	// stepKm is the route sampling resolution.
	stepKm float64
}

// NewPlanner returns a planner over the network and period.
func NewPlanner(net *radio.Network, period simtime.Period) *Planner {
	if net == nil {
		panic("mobility: NewPlanner requires a network")
	}
	return &Planner{net: net, period: period, stepKm: 0.5}
}

// DayTrips generates the car's trips for the given study day, in start
// order. Trips whose plan dictates a local start late in the day may
// begin after midnight UTC of the next day; callers clamp to the
// period. It panics on a day outside the period.
func (p *Planner) DayTrips(car *fleet.Car, day int, rng *rand.Rand) []Trip {
	if day < 0 || day >= p.period.Days() {
		panic(fmt.Sprintf("mobility: day %d outside period", day))
	}
	weekday := (int(p.period.Weekday(day)) + 6) % 7 // Monday=0

	var trips []Trip
	for _, plan := range car.Archetype.Plans() {
		if !plan.Days[weekday] || rng.Float64() >= plan.Prob {
			continue
		}
		startLocal := plan.StartHour + rng.NormFloat64()*plan.StartStd
		if startLocal < 0 {
			startLocal = 0
		}
		if startLocal > 23.9 {
			startLocal = 23.9
		}
		start := p.period.DayStart(day).
			Add(time.Duration(startLocal*3600) * time.Second).
			Add(-time.Duration(car.TZOffsetSeconds) * time.Second)

		from, to := p.endpoints(car, plan, rng)
		out := p.route(from, to, start, plan.Kind)
		if len(out.Visits) == 0 {
			continue
		}
		trips = append(trips, out)

		if plan.Kind == fleet.KindErrand || plan.Kind == fleet.KindLong {
			// Round trip: dwell at the destination with the engine off,
			// then drive home.
			dwell := time.Duration(15+rng.Float64()*90) * time.Minute
			back := p.route(to, from, out.End().Add(dwell), plan.Kind)
			if len(back.Visits) > 0 {
				trips = append(trips, back)
			}
		}
	}
	sortTrips(trips)
	return trips
}

// endpoints resolves a plan's origin and destination for the car.
func (p *Planner) endpoints(car *fleet.Car, plan fleet.TripPlan, rng *rand.Rand) (from, to geo.Point) {
	b := p.net.World.Bounds
	switch plan.Dest {
	case fleet.DestWork:
		return car.Home, car.Work
	case fleet.DestHome:
		return car.Work, car.Home
	case fleet.DestLocal:
		r := 1.5 + rng.Float64()*4.5
		dst := b.Clamp(car.Home.Add((rng.Float64()*2-1)*r, (rng.Float64()*2-1)*r))
		return car.Home, dst
	default: // DestFar
		r := 8 + rng.Float64()*22
		dst := b.Clamp(car.Home.Add((rng.Float64()*2-1)*r, (rng.Float64()*2-1)*r))
		return car.Home, dst
	}
}

// route builds the visit sequence for a leg from a to b starting at
// start. A degenerate leg (a ≈ b) still produces one short visit under
// the local station: the engine ran, so the car appeared on the
// network.
func (p *Planner) route(a, b geo.Point, start time.Time, kind fleet.TripKind) Trip {
	trip := Trip{Start: start, Kind: kind}
	dist := a.Dist(b)
	if dist < p.stepKm {
		bs := p.net.NearestStation(a)
		trip.Visits = []Visit{{BS: bs, Enter: 0, Exit: 2 * time.Minute, Pos: a}}
		return trip
	}

	n := int(dist/p.stepKm) + 1
	elapsed := time.Duration(0)
	var visits []Visit
	prev := a
	for i := 0; i <= n; i++ {
		pos := a.Lerp(b, float64(i)/float64(n))
		segKm := prev.Dist(pos)
		speed := SpeedKmh(p.net.World.DensityAt(pos))
		dt := time.Duration(segKm / speed * float64(time.Hour))
		elapsed += dt
		bs := p.net.NearestStation(pos)
		if len(visits) > 0 && visits[len(visits)-1].BS == bs {
			visits[len(visits)-1].Exit = elapsed
		} else {
			if len(visits) > 0 {
				visits[len(visits)-1].Exit = elapsed
			}
			visits = append(visits, Visit{BS: bs, Enter: elapsed, Exit: elapsed, Pos: pos})
		}
		prev = pos
	}
	// Normalize: first visit starts at 0; final exit is total travel time.
	if len(visits) > 0 {
		visits[0].Enter = 0
		if visits[len(visits)-1].Exit == visits[len(visits)-1].Enter {
			visits[len(visits)-1].Exit += 30 * time.Second
		}
	}
	trip.Visits = visits
	return trip
}

func sortTrips(trips []Trip) {
	// Insertion sort: daily trip counts are tiny.
	for i := 1; i < len(trips); i++ {
		for j := i; j > 0 && trips[j].Start.Before(trips[j-1].Start); j-- {
			trips[j], trips[j-1] = trips[j-1], trips[j]
		}
	}
}
