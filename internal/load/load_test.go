package load

import (
	"math/rand/v2"
	"testing"
	"time"

	"cellcars/internal/geo"
	"cellcars/internal/radio"
	"cellcars/internal/simtime"
)

func testModel(t *testing.T) (*Model, *radio.Network) {
	t.Helper()
	net := radio.Build(radio.Config{World: geo.DefaultWorld(80)}, rand.New(rand.NewPCG(1, 2)))
	period := simtime.NewPeriod(time.Date(2017, 1, 2, 0, 0, 0, 0, time.UTC), 14)
	return New(net, period, DefaultConfig()), net
}

func TestUtilizationInRange(t *testing.T) {
	m, net := testModel(t)
	cells := net.AllCells()
	for _, cell := range cells[:10] {
		for bin := 0; bin < m.Period().NumBins(); bin += 13 {
			u := m.Utilization(cell, bin)
			if u < 0.01 || u > 0.995 {
				t.Fatalf("utilization %v out of range for %v bin %d", u, cell, bin)
			}
		}
	}
}

func TestUtilizationDeterministic(t *testing.T) {
	m, net := testModel(t)
	cell := net.AllCells()[3]
	a := m.Utilization(cell, 100)
	b := m.Utilization(cell, 100)
	if a != b {
		t.Fatalf("nondeterministic utilization: %v vs %v", a, b)
	}
	m2 := New(net, m.Period(), DefaultConfig())
	if m2.Utilization(cell, 100) != a {
		t.Fatal("same config must give same utilization")
	}
	cfg := DefaultConfig()
	cfg.Seed = 999
	m3 := New(net, m.Period(), cfg)
	diff := false
	for bin := 0; bin < 50; bin++ {
		if m3.Utilization(cell, bin) != m.Utilization(cell, bin) {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seed should change utilization")
	}
}

func TestUtilizationPanicsOutsidePeriod(t *testing.T) {
	m, net := testModel(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Utilization(net.AllCells()[0], m.Period().NumBins())
}

func TestArchetypeAssignment(t *testing.T) {
	m, net := testModel(t)
	counts := map[Archetype]int{}
	chronicOutsideUrban := 0
	for _, cell := range net.AllCells() {
		a := m.ArchetypeOf(cell)
		counts[a]++
		if a == Chronic && net.Station(cell.BS()).Density != geo.Urban {
			chronicOutsideUrban++
		}
	}
	if counts[Chronic] == 0 {
		t.Fatal("no chronic cells assigned")
	}
	if chronicOutsideUrban > 0 {
		t.Fatalf("%d chronic cells outside urban core", chronicOutsideUrban)
	}
	for _, a := range []Archetype{Residential, Business, Highway, Venue} {
		if counts[a] == 0 {
			t.Fatalf("archetype %v never assigned: %v", a, counts)
		}
	}
}

func TestArchetypeStable(t *testing.T) {
	m, net := testModel(t)
	for _, cell := range net.AllCells()[:20] {
		if m.ArchetypeOf(cell) != m.ArchetypeOf(cell) {
			t.Fatal("archetype not stable")
		}
	}
}

func TestDiurnalShapePeaks(t *testing.T) {
	// Business cells must be busier at 13:00 than 03:00 on a weekday.
	if shapeOf(Business, 13, 2) <= shapeOf(Business, 3, 2) {
		t.Fatal("business shape lacks daytime peak")
	}
	// Highway cells must show commute peaks above midday on weekdays.
	if shapeOf(Highway, 8, 1) <= shapeOf(Highway, 12, 1)*0.9 {
		t.Fatal("highway shape lacks morning commute peak")
	}
	if shapeOf(Highway, 17.5, 1) <= shapeOf(Highway, 3, 1) {
		t.Fatal("highway shape lacks evening commute peak")
	}
	// Venue cells peak on weekends.
	if shapeOf(Venue, 15, 5) <= shapeOf(Venue, 15, 2) {
		t.Fatal("venue shape must peak on weekends")
	}
	// Business cells are quieter on weekends.
	if shapeOf(Business, 13, 6) >= shapeOf(Business, 13, 2) {
		t.Fatal("business shape must drop on weekends")
	}
	// Chronic cells stay high overnight relative to others.
	if shapeOf(Chronic, 2, 2) < 0.2 {
		t.Fatalf("chronic overnight shape = %v, want >= 0.2", shapeOf(Chronic, 2, 2))
	}
	// Unknown archetype shape is 0.
	if shapeOf(Archetype(99), 12, 0) != 0 {
		t.Fatal("unknown archetype shape should be 0")
	}
}

func TestArchetypeString(t *testing.T) {
	want := map[Archetype]string{
		Residential: "residential", Business: "business", Highway: "highway",
		Venue: "venue", Chronic: "chronic",
	}
	for a, s := range want {
		if a.String() != s {
			t.Fatalf("%d = %q", a, a.String())
		}
	}
	if Archetype(42).String() != "archetype(42)" {
		t.Fatal("unknown archetype name")
	}
}

func TestChronicCellsAreVeryBusy(t *testing.T) {
	m, net := testModel(t)
	var chronicAvg, otherAvg float64
	var nChronic, nOther int
	for _, cell := range net.AllCells() {
		avg := m.AvgUtilization(cell)
		if m.ArchetypeOf(cell) == Chronic {
			chronicAvg += avg
			nChronic++
		} else {
			otherAvg += avg
			nOther++
		}
	}
	if nChronic == 0 {
		t.Skip("no chronic cells in this topology seed")
	}
	chronicAvg /= float64(nChronic)
	otherAvg /= float64(nOther)
	if chronicAvg <= otherAvg+0.15 {
		t.Fatalf("chronic avg %v not clearly above others %v", chronicAvg, otherAvg)
	}
	if chronicAvg < 0.60 {
		t.Fatalf("chronic avg %v too low to ever exceed the very-busy threshold", chronicAvg)
	}
}

func TestVeryBusyCellsMostlyChronic(t *testing.T) {
	m, _ := testModel(t)
	vb := m.VeryBusyCells()
	if len(vb) == 0 {
		t.Fatal("no very busy cells; Figure 11 needs a non-empty population")
	}
	chronic := 0
	for _, cell := range vb {
		if m.ArchetypeOf(cell) == Chronic {
			chronic++
		}
	}
	if float64(chronic) < 0.8*float64(len(vb)) {
		t.Fatalf("only %d/%d very-busy cells are chronic", chronic, len(vb))
	}
}

func TestIsBusyMatchesThreshold(t *testing.T) {
	m, net := testModel(t)
	cell := net.AllCells()[0]
	busyCount := 0
	for bin := 0; bin < m.Period().NumBins(); bin++ {
		if m.IsBusy(cell, bin) != (m.Utilization(cell, bin) > m.BusyThreshold()) {
			t.Fatal("IsBusy inconsistent with threshold")
		}
		if m.IsBusy(cell, bin) {
			busyCount++
		}
	}
	_ = busyCount
}

func TestWeekCurveAveragesDays(t *testing.T) {
	m, net := testModel(t)
	cell := net.AllCells()[5]
	wc := m.WeekCurve(cell)
	if wc.Max() <= 0 {
		t.Fatal("week curve empty")
	}
	for i, v := range wc {
		if v < 0 || v > 1 {
			t.Fatalf("week curve bin %d = %v out of range", i, v)
		}
	}
}

func TestBusinessCellWeekdayOverWeekend(t *testing.T) {
	m, net := testModel(t)
	var cell radio.CellKey
	found := false
	for _, c := range net.AllCells() {
		if m.ArchetypeOf(c) == Business {
			cell, found = c, true
			break
		}
	}
	if !found {
		t.Skip("no business cell")
	}
	wc := m.WeekCurve(cell)
	// Wednesday 13:00 vs Sunday 13:00.
	wed := wc[2*simtime.BinsPerDay+13*simtime.BinsPerHour]
	sun := wc[6*simtime.BinsPerDay+13*simtime.BinsPerHour]
	if wed <= sun {
		t.Fatalf("business cell: Wednesday 13:00 (%v) not above Sunday (%v)", wed, sun)
	}
}

func TestSaturate(t *testing.T) {
	m, net := testModel(t)
	cells := net.AllCells()[:2]
	// The paper's test: download starts 20:45 UTC, lasts 4 hours. The
	// window runs off the end of the day and is clamped, as in Figure 1.
	res := Saturate(m, cells, 3, 20*time.Hour+45*time.Minute, 4*time.Hour, 0.97)
	if res.StartBin != 83 || res.EndBin != simtime.BinsPerDay {
		t.Fatalf("window [%d,%d), want [83,%d)", res.StartBin, res.EndBin, simtime.BinsPerDay)
	}
	if got := res.PeakTestUtilization(0); got < 0.9 {
		t.Fatalf("peak utilization %v during greedy window", got)
	}
}

func TestSaturatePinsUtilizationHigh(t *testing.T) {
	m, net := testModel(t)
	cells := net.AllCells()[:2]
	res := Saturate(m, cells, 3, 18*time.Hour, 4*time.Hour, 0.97)
	for i := range cells {
		peak := res.PeakTestUtilization(i)
		if peak < 0.9 {
			t.Fatalf("cell %d peak %v; greedy flow should pin near 100%%", i, peak)
		}
		// Outside the window the test curve matches the plain model.
		day := res.Day
		for b := 0; b < res.StartBin; b++ {
			want := m.Utilization(cells[i], day*simtime.BinsPerDay+b)
			if res.Test[i][b] != clamp(want, 0, 1) {
				t.Fatalf("test curve altered outside window at bin %d", b)
			}
		}
		// Average curve should look like a normal day: its mean must be
		// well below the saturated peak.
		var avgMean float64
		for _, v := range res.Average[i] {
			avgMean += v
		}
		avgMean /= float64(simtime.BinsPerDay)
		if avgMean > peak-0.1 {
			t.Fatalf("average curve (%v) too close to saturated peak (%v)", avgMean, peak)
		}
	}
}

func TestSaturatePanics(t *testing.T) {
	m, net := testModel(t)
	cells := net.AllCells()[:1]
	cases := map[string]func(){
		"day out of range": func() { Saturate(m, cells, 99, 0, time.Hour, 0.9) },
		"start outside":    func() { Saturate(m, cells, 0, 25*time.Hour, time.Hour, 0.9) },
		"zero duration":    func() { Saturate(m, cells, 0, time.Hour, 0, 0.9) },
		"bad share":        func() { Saturate(m, cells, 0, time.Hour, time.Hour, 0) },
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSaturateWindowBins(t *testing.T) {
	m, net := testModel(t)
	res := Saturate(m, net.AllCells()[:1], 0, 0, simtime.BinWidth, 0.5)
	if res.StartBin != 0 || res.EndBin != 1 {
		t.Fatalf("window [%d,%d), want [0,1)", res.StartBin, res.EndBin)
	}
}
