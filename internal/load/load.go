// Package load models radio-cell PRB (Physical Resource Block)
// utilization over the study period: per-cell diurnal/weekly curves
// with deterministic noise, the busy-cell classification used for car
// segmentation (Table 2), and the single-greedy-download saturation
// experiment of Figure 1.
//
// In a real deployment this package would be replaced by a feed of
// measured per-cell UPRB counters; the model reproduces their *shape*
// (diurnal peaks, weekday/weekend structure, a small population of
// chronically busy cells) so every downstream analysis exercises the
// same code path it would with production data.
//
// All values are deterministic functions of (cell, time bin, seed):
// the model stores no per-bin state, so it scales to arbitrarily many
// cells and days with O(1) memory.
package load

import (
	"fmt"
	"math"

	"cellcars/internal/geo"
	"cellcars/internal/radio"
	"cellcars/internal/simtime"
)

// Archetype is the daily/weekly load shape class of a cell.
type Archetype uint8

// Load archetypes. Mixes of these cover the qualitative cell
// behaviours in the paper's figures: commute-peaked highway cells,
// business-hour office cells, evening residential cells, weekend-heavy
// venue cells, and the small set of chronically busy cells whose
// average weekly utilization exceeds 70% (the Figure 11 population).
const (
	Residential Archetype = iota
	Business
	Highway
	Venue
	Chronic
)

// NumArchetypes is the number of archetype classes.
const NumArchetypes = 5

// String returns the lowercase archetype name.
func (a Archetype) String() string {
	switch a {
	case Residential:
		return "residential"
	case Business:
		return "business"
	case Highway:
		return "highway"
	case Venue:
		return "venue"
	case Chronic:
		return "chronic"
	default:
		return fmt.Sprintf("archetype(%d)", uint8(a))
	}
}

// Config parameterizes the load model.
type Config struct {
	// Seed drives all deterministic noise. Two models with the same
	// seed, network and period produce identical utilization values.
	Seed uint64
	// BusyThreshold is the UPRB level above which a cell-bin counts as
	// busy. The paper uses 80% (§4.3).
	BusyThreshold float64
	// VeryBusyAvg is the average weekly utilization at or above which a
	// cell joins the Figure 11 clustering population. The paper uses 70%.
	VeryBusyAvg float64
	// ChronicFrac is the fraction of urban cells assigned the Chronic
	// archetype. Default 0.06.
	ChronicFrac float64
	// NoiseAmp is the amplitude of per-bin deterministic noise. Default
	// 0.06.
	NoiseAmp float64
}

// DefaultConfig returns the standard model parameters, including the
// paper's 80% busy threshold and 70% very-busy average.
func DefaultConfig() Config {
	return Config{
		Seed:          1,
		BusyThreshold: 0.80,
		VeryBusyAvg:   0.70,
		ChronicFrac:   0.10,
		NoiseAmp:      0.06,
	}
}

// Source is the abstraction the analyses consume: per-cell utilization
// in a 15-minute study bin, in [0, 1]. *Model implements Source; a
// production deployment would implement it over measured counters.
type Source interface {
	// Utilization returns UPRB for the cell in the given study bin.
	Utilization(cell radio.CellKey, bin int) float64
	// BusyThreshold returns the classification threshold in [0,1].
	BusyThreshold() float64
}

// Model is the synthetic PRB utilization model.
type Model struct {
	net    *radio.Network
	period simtime.Period
	cfg    Config
}

// New builds a model over the network and study period. The config's
// zero values are replaced by defaults.
func New(net *radio.Network, period simtime.Period, cfg Config) *Model {
	def := DefaultConfig()
	if cfg.BusyThreshold == 0 {
		cfg.BusyThreshold = def.BusyThreshold
	}
	if cfg.VeryBusyAvg == 0 {
		cfg.VeryBusyAvg = def.VeryBusyAvg
	}
	if cfg.ChronicFrac == 0 {
		cfg.ChronicFrac = def.ChronicFrac
	}
	if cfg.NoiseAmp == 0 {
		cfg.NoiseAmp = def.NoiseAmp
	}
	return &Model{net: net, period: period, cfg: cfg}
}

// Period returns the study period the model is defined over.
func (m *Model) Period() simtime.Period { return m.period }

// BusyThreshold returns the busy classification threshold.
func (m *Model) BusyThreshold() float64 { return m.cfg.BusyThreshold }

// VeryBusyAvg returns the very-busy average threshold (Figure 11).
func (m *Model) VeryBusyAvg() float64 { return m.cfg.VeryBusyAvg }

// ArchetypeOf returns the load archetype of a cell. Assignment hashes
// the host base station (not the individual cell), so all sectors and
// carriers of a site share one archetype — a downtown site is
// congested as a whole — conditioned on density: chronic sites occur
// only in urban cores, highway sites dominate rural areas.
func (m *Model) ArchetypeOf(cell radio.CellKey) Archetype {
	st := m.net.Station(cell.BS())
	d := st.Density
	h := mix(uint64(cell.BS()), m.cfg.Seed, 0xA0)
	u := float64(h%10000) / 10000
	switch d {
	case geo.Urban:
		// Chronic congestion concentrates in one downtown district so
		// that cars living there spend essentially all their connected
		// time on busy radios (Figure 7's ~1% tail), rather than being
		// scattered across isolated sites.
		c := m.net.World.Bounds.Center()
		coreHalf := 0.1 * m.net.World.Bounds.Width()
		radius := math.Sqrt(m.cfg.ChronicFrac) * coreHalf
		// Never let the district shrink below one site spacing, or small
		// test worlds would have no chronic sites at all.
		if minR := 1.1 * geo.Urban.SiteSpacingKm(); radius < minR {
			radius = minR
		}
		if st.Loc.Dist(c) <= radius {
			return Chronic
		}
		switch {
		case u < 0.45:
			return Business
		case u < 0.75:
			return Residential
		case u < 0.90:
			return Venue
		default:
			return Highway
		}
	case geo.Suburban:
		switch {
		case u < 0.40:
			return Residential
		case u < 0.65:
			return Highway
		case u < 0.85:
			return Business
		default:
			return Venue
		}
	default: // rural
		switch {
		case u < 0.55:
			return Highway
		case u < 0.85:
			return Residential
		default:
			return Venue
		}
	}
}

// levelOf returns the per-cell (base, amplitude) utilization levels.
// Base is the overnight floor; amplitude scales the diurnal shape.
func (m *Model) levelOf(cell radio.CellKey) (base, amp float64) {
	a := m.ArchetypeOf(cell)
	h := mix(uint64(cell), m.cfg.Seed, 0xB1)
	jitter := (float64(h%1000)/1000 - 0.5) * 0.12 // ±0.06
	// Peak levels are set so that commute-corridor and office cells
	// regularly cross the 80% busy threshold during their peaks — the
	// paper's Table 2 finds ~37% of cars with a *balanced* busy/non-busy
	// split, which requires busy hours to be widespread, while Figure 7
	// still needs most connected time to fall outside busy cells.
	switch a {
	case Chronic:
		return clamp(0.68+jitter*0.5, 0, 1), 0.30
	case Business:
		return clamp(0.25+jitter, 0, 1), 0.65
	case Residential:
		return clamp(0.28+jitter, 0, 1), 0.62
	case Highway:
		return clamp(0.25+jitter, 0, 1), 0.70
	default: // Venue
		return clamp(0.15+jitter, 0, 1), 0.75
	}
}

// Utilization returns the modelled UPRB of the cell during the given
// study bin, in [0.01, 0.995]. It panics on a bin outside the period.
func (m *Model) Utilization(cell radio.CellKey, bin int) float64 {
	if bin < 0 || bin >= m.period.NumBins() {
		panic(fmt.Sprintf("load: bin %d outside period", bin))
	}
	day := bin / simtime.BinsPerDay
	binOfDay := bin % simtime.BinsPerDay
	weekday := int((int(m.period.Weekday(day)) + 6) % 7) // Monday=0
	hour := float64(binOfDay) / float64(simtime.BinsPerHour)

	base, amp := m.levelOf(cell)
	shape := shapeOf(m.ArchetypeOf(cell), hour, weekday)

	// Slow day-scale modulation: each day the whole cell runs a few
	// percent hotter or cooler, plus a slight upward trend over the
	// study (Figure 2's trend lines).
	dh := mix(uint64(cell), m.cfg.Seed+uint64(day), 0xC2)
	dayFactor := 1 + (float64(dh%1000)/1000-0.5)*0.08 + 0.0004*float64(day)

	// Fast per-bin noise.
	nh := mix(uint64(cell), m.cfg.Seed+uint64(bin), 0xD3)
	noise := (float64(nh%1000)/1000 - 0.5) * 2 * m.cfg.NoiseAmp

	return clamp((base+amp*shape)*dayFactor+noise, 0.01, 0.995)
}

// IsBusy reports whether the cell exceeds the busy threshold in the
// given study bin (the paper's UPRB > 80% test).
func (m *Model) IsBusy(cell radio.CellKey, bin int) bool {
	return m.Utilization(cell, bin) > m.cfg.BusyThreshold
}

// WeekCurve returns the cell's average utilization for each of the 672
// bins of the week, averaged over all study days.
func (m *Model) WeekCurve(cell radio.CellKey) simtime.WeekVector {
	var sum simtime.WeekVector
	var count [simtime.BinsPerWeek]int
	for bin := 0; bin < m.period.NumBins(); bin++ {
		day := bin / simtime.BinsPerDay
		weekday := (int(m.period.Weekday(day)) + 6) % 7
		wb := weekday*simtime.BinsPerDay + bin%simtime.BinsPerDay
		sum[wb] += m.Utilization(cell, bin)
		count[wb]++
	}
	for i := range sum {
		if count[i] > 0 {
			sum[i] /= float64(count[i])
		}
	}
	return sum
}

// AvgUtilization returns the cell's mean utilization over the whole
// study period.
func (m *Model) AvgUtilization(cell radio.CellKey) float64 {
	var s float64
	n := m.period.NumBins()
	for bin := 0; bin < n; bin++ {
		s += m.Utilization(cell, bin)
	}
	return s / float64(n)
}

// VeryBusyCells returns every cell whose average weekly utilization is
// at least the VeryBusyAvg threshold — the population Figure 11
// clusters. Order is deterministic (network cell order).
func (m *Model) VeryBusyCells() []radio.CellKey {
	var out []radio.CellKey
	for _, cell := range m.net.AllCells() {
		if m.AvgUtilization(cell) >= m.cfg.VeryBusyAvg {
			out = append(out, cell)
		}
	}
	return out
}

// shapeOf evaluates the archetype's diurnal shape in [0, 1] at the
// given local hour (fractional) and weekday (0=Monday … 6=Sunday).
func shapeOf(a Archetype, hour float64, weekday int) float64 {
	weekend := weekday >= 5
	switch a {
	case Business:
		s := bump(hour, 13.5, 4.0)
		if weekend {
			s *= 0.35
		}
		return s
	case Residential:
		// Evening-heavy: the network's broad 14-24h busy window
		// (Figure 4) comes mostly from residential traffic.
		s := 1.0*bump(hour, 18.5, 2.5) + 0.3*bump(hour, 12, 4.0)
		if weekend {
			s = 0.95*bump(hour, 18.5, 4.0) + 0.35*bump(hour, 13, 4.0)
		}
		return clamp(s, 0, 1)
	case Highway:
		// The morning commute loads corridors well below the evening
		// peak: network busy hours start mid-afternoon (Figure 4), which
		// keeps commuter cars' busy-time fractions below ~50% (Figure 7)
		// while still placing them in Table 2's balanced band.
		s := 0.55*bump(hour, 8, 1.6) + 1.0*bump(hour, 17.5, 2.0) + 0.3*bump(hour, 13, 4)
		if weekend {
			s = 0.62 * bump(hour, 14, 4.5)
		}
		return clamp(s, 0, 1)
	case Venue:
		s := 0.6 * bump(hour, 19, 3)
		if weekend {
			s = 0.80 * bump(hour, 15, 5.5)
		}
		return clamp(s, 0, 1)
	case Chronic:
		// Busy nearly all waking hours, with a shallow overnight dip.
		s := 0.55 + 0.45*bump(hour, 15, 7)
		if hour < 5 {
			s *= 0.55
		}
		return clamp(s, 0, 1)
	default:
		return 0
	}
}

// bump is a smooth unimodal pulse centred at c hours with the given
// width (standard-deviation-like, in hours), wrapping around midnight.
func bump(hour, c, width float64) float64 {
	d := math.Abs(hour - c)
	if d > 12 {
		d = 24 - d
	}
	return math.Exp(-d * d / (2 * width * width))
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// mix is a SplitMix64-style deterministic hash over (a, b, salt).
func mix(a, b, salt uint64) uint64 {
	x := a*0x9E3779B97F4A7C15 ^ b + salt*0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}
