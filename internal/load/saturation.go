package load

import (
	"fmt"
	"time"

	"cellcars/internal/radio"
	"cellcars/internal/simtime"
)

// SaturationResult reproduces the Figure 1 field experiment: a single
// device starts a continuous greedy download in one or more cells and
// the cells' PRB utilization is observed over a 24-hour window,
// alongside the cells' average day for reference.
type SaturationResult struct {
	// Cells are the cells under test, in input order.
	Cells []radio.CellKey
	// Day is the study day index of the experiment.
	Day int
	// StartBin and EndBin bound the greedy download within the day
	// (bin-of-day indices, end exclusive).
	StartBin, EndBin int
	// Test[i] is cell i's utilization during the experiment day,
	// per 15-minute bin.
	Test []simtime.DayVector
	// Average[i] is cell i's utilization averaged over every other
	// study day, per 15-minute bin — the dashed reference curves.
	Average []simtime.DayVector
}

// Saturate runs the Figure 1 experiment against the model: during
// [start, start+duration) on the given day, a greedy flow in each test
// cell consumes nearly all PRBs left free by background load, pinning
// utilization near 100%. greedyShare is the fraction of free resources
// the flow can actually capture (scheduler overhead keeps it below 1;
// the paper's plot shows ~95-100%). A window running past midnight is
// clamped to the day's end, matching Figure 1 whose 20:45+4h download
// runs off the right edge of the plot. It panics when the start falls
// outside the day, the duration is not positive, or the day is outside
// the model period.
func Saturate(m *Model, cells []radio.CellKey, day int, start, duration time.Duration, greedyShare float64) SaturationResult {
	if day < 0 || day >= m.period.Days() {
		panic(fmt.Sprintf("load: day %d outside period", day))
	}
	if greedyShare <= 0 || greedyShare > 1 {
		panic(fmt.Sprintf("load: greedyShare %v outside (0,1]", greedyShare))
	}
	startBin := int(start / simtime.BinWidth)
	endBin := startBin + int((duration+simtime.BinWidth-1)/simtime.BinWidth)
	if startBin < 0 || startBin >= simtime.BinsPerDay || startBin >= endBin {
		panic(fmt.Sprintf("load: experiment window [%d,%d) invalid", startBin, endBin))
	}
	if endBin > simtime.BinsPerDay {
		endBin = simtime.BinsPerDay
	}

	res := SaturationResult{
		Cells:    append([]radio.CellKey(nil), cells...),
		Day:      day,
		StartBin: startBin,
		EndBin:   endBin,
		Test:     make([]simtime.DayVector, len(cells)),
		Average:  make([]simtime.DayVector, len(cells)),
	}
	for i, cell := range cells {
		// Average curve over all other study days.
		var avg simtime.DayVector
		n := 0
		for d := 0; d < m.period.Days(); d++ {
			if d == day {
				continue
			}
			for b := 0; b < simtime.BinsPerDay; b++ {
				avg[b] += m.Utilization(cell, d*simtime.BinsPerDay+b)
			}
			n++
		}
		if n > 0 {
			for b := range avg {
				avg[b] /= float64(n)
			}
		}
		res.Average[i] = avg

		// Test-day curve with the greedy flow soaking up free PRBs.
		var test simtime.DayVector
		for b := 0; b < simtime.BinsPerDay; b++ {
			u := m.Utilization(cell, day*simtime.BinsPerDay+b)
			if b >= startBin && b < endBin {
				u += (1 - u) * greedyShare
			}
			test[b] = clamp(u, 0, 1)
		}
		res.Test[i] = test
	}
	return res
}

// PeakTestUtilization returns the mean test utilization inside the
// experiment window for cell index i.
func (r *SaturationResult) PeakTestUtilization(i int) float64 {
	var s float64
	for b := r.StartBin; b < r.EndBin; b++ {
		s += r.Test[i][b]
	}
	return s / float64(r.EndBin-r.StartBin)
}
