// Package report renders a full pipeline run as a Markdown document:
// every table as a Markdown table, every figure as a fenced text plot,
// with the paper's reference values alongside. The caranalyze tool
// writes these documents; they are the durable artifact of a
// reproduction run.
package report

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"cellcars/internal/analysis"
	"cellcars/internal/radio"
	"cellcars/internal/simtime"
	"cellcars/internal/textplot"
)

// Options controls document assembly.
type Options struct {
	// Title heads the document.
	Title string
	// SceneDescription is a one-line provenance note (fleet size, seed,
	// window) printed under the title.
	SceneDescription string
	// Now stamps the document; pass a fixed time for reproducible
	// output (library code never reads the wall clock itself).
	Now time.Time
	// Quality, when non-nil, adds a Data Quality section: ingest and
	// quarantine counters, detected coverage-gap days, and skipped
	// stages.
	Quality *analysis.DataQuality
}

// Render produces the Markdown document for a report.
func Render(r *analysis.Report, ctx analysis.Context, opts Options) string {
	var b strings.Builder
	title := opts.Title
	if title == "" {
		title = "Connected-car measurement report"
	}
	fmt.Fprintf(&b, "# %s\n\n", title)
	if opts.SceneDescription != "" {
		fmt.Fprintf(&b, "%s\n\n", opts.SceneDescription)
	}
	if !opts.Now.IsZero() {
		fmt.Fprintf(&b, "Generated %s.\n\n", opts.Now.UTC().Format(time.RFC3339))
	}

	fmt.Fprintf(&b, "## Preprocessing (§3)\n\n")
	fmt.Fprintf(&b, "| metric | value |\n|---|---|\n")
	fmt.Fprintf(&b, "| raw records | %d |\n", r.RawRecords)
	fmt.Fprintf(&b, "| after ghost removal | %d |\n", r.CleanRecords)
	fmt.Fprintf(&b, "| one-hour ghosts dropped | %d |\n\n", r.RawRecords-r.CleanRecords)

	section(&b, r, "presence", renderTable1)
	section(&b, r, "connected", renderConnected)
	section(&b, r, "days", func(b *strings.Builder, r *analysis.Report) {
		renderDaysHistogram(b, r, ctx)
	})
	if r.Failed("segments") != nil || len(r.Segments) > 0 {
		section(&b, r, "segments", renderSegmentation)
	}
	if r.Failed("busy") != nil || len(r.Segments) > 0 {
		section(&b, r, "busy", renderBusyTime)
	}
	section(&b, r, "durations", renderDurations)
	section(&b, r, "handovers", renderHandovers)
	section(&b, r, "carriers", renderCarriers)
	if r.Failed("clusters") != nil || len(r.Clusters.Cells) > 0 {
		section(&b, r, "clusters", renderClusters)
	}
	renderQuality(&b, r, opts.Quality)
	renderProfile(&b, r)
	return b.String()
}

// section renders one report section unless its analysis stage was
// skipped, in which case it emits the diagnostic instead — a degraded
// report still documents every section it could not produce.
func section(b *strings.Builder, r *analysis.Report, stage string, render func(*strings.Builder, *analysis.Report)) {
	if fail := r.Failed(stage); fail != nil {
		fmt.Fprintf(b, "## %s — stage skipped\n\n", stage)
		fmt.Fprintf(b, "> Analysis stage `%s` failed and was skipped: %s\n\n", fail.Stage, fail.Err)
		return
	}
	render(b, r)
}

// renderQuality writes the Data Quality section: how dirty the input
// was and what the pipeline did about it.
func renderQuality(b *strings.Builder, r *analysis.Report, q *analysis.DataQuality) {
	if q == nil {
		return
	}
	fmt.Fprintf(b, "## Data Quality\n\n")
	fmt.Fprintf(b, "| metric | value |\n|---|---|\n")
	fmt.Fprintf(b, "| records read | %d |\n", q.RecordsRead)
	fmt.Fprintf(b, "| one-hour ghosts dropped | %d |\n", q.GhostsDropped)
	fmt.Fprintf(b, "| quarantined | %d |\n", q.QuarantinedTotal)
	fmt.Fprintf(b, "| transient retries | %d |\n", q.Retries)
	fmt.Fprintf(b, "| coverage-gap days | %d |\n\n", len(q.Gaps))
	if len(q.Quarantined) > 0 {
		fmt.Fprintf(b, "Quarantine breakdown:\n\n| class | records |\n|---|---|\n")
		classes := make([]string, 0, len(q.Quarantined))
		for class := range q.Quarantined {
			classes = append(classes, class)
		}
		sort.Strings(classes)
		for _, class := range classes {
			fmt.Fprintf(b, "| %s | %d |\n", class, q.Quarantined[class])
		}
		b.WriteString("\n")
	}
	if len(q.Gaps) > 0 {
		fmt.Fprintf(b, "Detected coverage gaps (paper §3 reports a 3-day partial data-loss window, visible as the Figure 2 dip):\n\n")
		fmt.Fprintf(b, "| day | date | %%cars seen | period median |\n|---|---|---|---|\n")
		for _, g := range q.Gaps {
			fmt.Fprintf(b, "| %d | %s | %.1f%% | %.1f%% |\n",
				g.Day, g.Date.Format("2006-01-02"), g.CarsFrac*100, g.Baseline*100)
		}
		b.WriteString("\n")
	}
	if len(q.StageErrors) > 0 {
		fmt.Fprintf(b, "Skipped analysis stages:\n\n| stage | error |\n|---|---|\n")
		for _, s := range q.StageErrors {
			fmt.Fprintf(b, "| %s | %s |\n", s.Stage, s.Err)
		}
		b.WriteString("\n")
	}
	if len(q.ExcludedShards) > 0 {
		fmt.Fprintf(b, "**Excluded shards.** The coordinator quarantined %d shard(s) after exhausting their attempt budget; their cars are absent from every figure above.\n\n", len(q.ExcludedShards))
		fmt.Fprintf(b, "| shard | attempts | last failure | records lost |\n|---|---|---|---|\n")
		for _, x := range q.ExcludedShards {
			records := fmt.Sprintf("%d", x.Records)
			if x.Estimated {
				records = "~" + records + " (estimated)"
			}
			failure := x.LastClass
			if x.LastErr != "" {
				failure += ": " + x.LastErr
			}
			fmt.Fprintf(b, "| %d | %d | %s | %s |\n", x.Shard, x.Attempts, failure, records)
		}
		b.WriteString("\n")
	}
}

// renderProfile writes the Pipeline profile section: the per-stage
// cost table an observed run carries (analysis.RunOptions.Obs). The
// record counts reconcile with the Preprocessing/Data Quality totals:
// every live stage sees exactly the accepted records, i.e. clean
// records minus the out-of-period exclusions.
func renderProfile(b *strings.Builder, r *analysis.Report) {
	if len(r.Profile) == 0 {
		return
	}
	fmt.Fprintf(b, "## Pipeline profile\n\n")
	fmt.Fprintf(b, "Per-stage wall time summed across workers; records are the accepted records offered to each stage's Add path (clean records %d − out-of-period %d = %d).\n\n",
		r.CleanRecords, r.OutOfPeriod, int64(r.CleanRecords)-r.OutOfPeriod)
	fmt.Fprintf(b, "| stage | records | batches | add s | merge s | finalize s | total s | records/s |\n|---|---|---|---|---|---|---|---|\n")
	var recs, batches int64
	var add, merge, fin float64
	for _, p := range r.Profile {
		rate := "—"
		if total := p.TotalSeconds(); total > 0 && p.Records > 0 {
			rate = fmt.Sprintf("%.0f", float64(p.Records)/total)
		}
		fmt.Fprintf(b, "| %s | %d | %d | %.4f | %.4f | %.4f | %.4f | %s |\n",
			p.Stage, p.Records, p.Batches, p.AddSeconds, p.MergeSeconds,
			p.FinalizeSeconds, p.TotalSeconds(), rate)
		recs += p.Records
		batches += p.Batches
		add += p.AddSeconds
		merge += p.MergeSeconds
		fin += p.FinalizeSeconds
	}
	fmt.Fprintf(b, "| **total** | %d | %d | %.4f | %.4f | %.4f | %.4f | — |\n\n",
		recs, batches, add, merge, fin, add+merge+fin)
}

func renderTable1(b *strings.Builder, r *analysis.Report) {
	fmt.Fprintf(b, "## Table 1 — daily presence by weekday (Figure 2)\n\n")
	fmt.Fprintf(b, "Paper: Mon–Thu 78–80%% cars, Sat 70.3%%, Sun 67.4%%, overall 76.0%%.\n\n")
	fmt.Fprintf(b, "| day | %%cells mean | %%cells std | %%cars mean | %%cars std |\n|---|---|---|---|---|\n")
	for _, row := range r.WeekdayRows {
		fmt.Fprintf(b, "| %s | %.1f%% | %.1f%% | %.1f%% | %.1f%% |\n",
			row.Label, row.CellsMean*100, row.CellsStd*100, row.CarsMean*100, row.CarsStd*100)
	}
	fmt.Fprintf(b, "\nTrend lines: cars %.5f %+.6f/day (R²=%.3f); cells %.5f %+.6f/day (R²=%.3f).\n\n",
		r.Presence.CarsTrend.Intercept, r.Presence.CarsTrend.Slope, r.Presence.CarsTrend.R2,
		r.Presence.CellsTrend.Intercept, r.Presence.CellsTrend.Slope, r.Presence.CellsTrend.R2)
}

func renderConnected(b *strings.Builder, r *analysis.Report) {
	fmt.Fprintf(b, "## Figure 3 — total time on network\n\n")
	fmt.Fprintf(b, "Paper: mean 8%% full / 4%% truncated; p99.5 27%% / 15%%.\n\n")
	fmt.Fprintf(b, "| variant | mean | p99.5 |\n|---|---|---|\n")
	fmt.Fprintf(b, "| full | %.2f%% | %.1f%% |\n", r.Connected.FullMean*100, r.Connected.FullP995*100)
	fmt.Fprintf(b, "| truncated 600 s | %.2f%% | %.1f%% |\n\n", r.Connected.TruncMean*100, r.Connected.TruncP995*100)
	if r.Connected.Truncated != nil && r.Connected.Truncated.N() > 1 {
		xs, ps := r.Connected.Truncated.Points(64)
		fmt.Fprintf(b, "```\n%s```\n\n", textplot.Chart("CDF of per-car connected share (truncated)", xs, ps, 64, 8))
	}
}

func renderDaysHistogram(b *strings.Builder, r *analysis.Report, ctx analysis.Context) {
	if r.DaysHist == nil {
		return
	}
	fmt.Fprintf(b, "## Figure 6 — days on network\n\n")
	fmt.Fprintf(b, "Paper: sharp drop below 10 days, rising trend past 30.\n\n")
	fmt.Fprintf(b, "```\n%s```\n\n",
		textplot.Histogram(fmt.Sprintf("cars per day count (1..%d)", ctx.Period.Days()),
			r.DaysHist.Counts, 64, 8))
}

func renderSegmentation(b *strings.Builder, r *analysis.Report) {
	fmt.Fprintf(b, "## Table 2 — car segmentation\n\n")
	fmt.Fprintf(b, "Paper: rare ≤10 d 2.2%%, ≤30 d 9.9%%; busy column 0.4–1.3%%.\n\n")
	fmt.Fprintf(b, "| segment | busy | non-busy | both | total |\n|---|---|---|---|---|\n")
	for _, s := range r.Segments {
		fmt.Fprintf(b, "| rare (≤ %d days) | %.1f%% | %.1f%% | %.1f%% | %.1f%% |\n",
			s.RareDays, s.RareBusy*100, s.RareNonBusy*100, s.RareBoth*100, s.RareTotal()*100)
		fmt.Fprintf(b, "| common (%d+ days) | %.1f%% | %.1f%% | %.1f%% | %.1f%% |\n",
			s.RareDays, s.CommonBusy*100, s.CommonNonBusy*100, s.CommonBoth*100, s.CommonTotal()*100)
	}
	b.WriteString("\n")
}

func renderBusyTime(b *strings.Builder, r *analysis.Report) {
	fmt.Fprintf(b, "## Figure 7 — time in busy cells\n\n")
	fmt.Fprintf(b, "Paper: ~2.4%% of cars over 50%%; ~1%% at ~100%%. Measured: %.2f%% over 50%%, %.2f%% at ~100%%.\n\n",
		r.Busy.OverHalf*100, r.Busy.AllBusy*100)
	h := r.Busy.Histogram7a()
	fmt.Fprintf(b, "| busy-time decile | share of cars |\n|---|---|\n")
	for i, v := range h {
		fmt.Fprintf(b, "| %d–%d%% | %.2f%% |\n", i*10, (i+1)*10, v*100)
	}
	b.WriteString("\n")
}

func renderDurations(b *strings.Builder, r *analysis.Report) {
	fmt.Fprintf(b, "## Figure 9 — per-cell connection durations\n\n")
	fmt.Fprintf(b, "Paper: median 105 s, p73 600 s, mean 625 s full / 238 s truncated.\n\n")
	fmt.Fprintf(b, "| metric | measured |\n|---|---|\n")
	fmt.Fprintf(b, "| median | %.0f s |\n| p73 | %.0f s |\n| mean full | %.0f s |\n| mean truncated | %.0f s |\n\n",
		r.Durations.Median, r.Durations.P73, r.Durations.FullMean, r.Durations.TruncMean)
}

func renderHandovers(b *strings.Builder, r *analysis.Report) {
	fmt.Fprintf(b, "## §4.5 — handovers per mobility session\n\n")
	fmt.Fprintf(b, "Paper: median 2, p70 4, p90 9; inter-base-station dominant.\n\n")
	fmt.Fprintf(b, "| metric | measured |\n|---|---|\n")
	fmt.Fprintf(b, "| sessions | %d |\n| median | %.0f |\n| p70 | %.0f |\n| p90 | %.0f |\n| inter-BS share | %.1f%% |\n\n",
		r.Handovers.Sessions, r.Handovers.Median, r.Handovers.P70, r.Handovers.P90,
		r.Handovers.InterBSShare()*100)
	fmt.Fprintf(b, "| kind | count |\n|---|---|\n")
	for kind := radio.HandoverKind(0); kind < radio.NumHandoverKinds; kind++ {
		if kind == radio.HandoverNone {
			continue
		}
		fmt.Fprintf(b, "| %s | %d |\n", kind, r.Handovers.ByKind[kind])
	}
	b.WriteString("\n")
}

func renderCarriers(b *strings.Builder, r *analysis.Report) {
	fmt.Fprintf(b, "## Table 3 — carrier use\n\n")
	fmt.Fprintf(b, "Paper: cars %% = 98.7/89.2/98.7/80.8/0.006; time %% = 18.6/7.4/51.9/22.1/0.0.\n\n")
	fmt.Fprintf(b, "| carrier | C1 | C2 | C3 | C4 | C5 |\n|---|---|---|---|---|---|\n")
	fmt.Fprintf(b, "| cars %% |")
	for c := radio.C1; c <= radio.C5; c++ {
		fmt.Fprintf(b, " %.3f |", r.Carriers.CarsFrac[c]*100)
	}
	fmt.Fprintf(b, "\n| time %% |")
	for c := radio.C1; c <= radio.C5; c++ {
		fmt.Fprintf(b, " %.3f |", r.Carriers.TimeFrac[c]*100)
	}
	b.WriteString("\n\n")
}

func renderClusters(b *strings.Builder, r *analysis.Report) {
	fmt.Fprintf(b, "## Figure 11 — busy-radio clusters\n\n")
	fmt.Fprintf(b, "Paper: two clusters; the hot one ~5× the concurrency, the quiet one ~4× the cells.\n\n")
	fmt.Fprintf(b, "| cluster | cells | centroid peak (cars) |\n|---|---|---|\n")
	for i := range r.Clusters.Sizes {
		fmt.Fprintf(b, "| %d | %d | %.1f |\n", i+1, r.Clusters.Sizes[i], peakOf(r.Clusters.Centroids[i]))
	}
	fmt.Fprintf(b, "\nPeak ratio %.1f×.\n\n", r.Clusters.PeakRatio())
	for i, c := range r.Clusters.Centroids {
		xs := make([]float64, simtime.BinsPerDay)
		for j := range xs {
			xs[j] = float64(j) / 4
		}
		fmt.Fprintf(b, "```\n%s```\n\n", textplot.Chart(
			fmt.Sprintf("cluster %d centroid (mean concurrent cars by hour of day)", i+1),
			xs, c, 64, 6))
	}
}

func peakOf(xs []float64) float64 {
	var m float64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
