package report

import (
	"strings"
	"testing"
	"time"

	"cellcars/internal/analysis"
	"cellcars/internal/cdr"
	"cellcars/internal/simtime"
)

// TestRenderDegradedReport proves a report with one failed stage
// still carries every other section plus a diagnostic for the hole.
func TestRenderDegradedReport(t *testing.T) {
	r, ctx := buildReport(t)
	r.StageErrors = append(r.StageErrors, analysis.StageError{Stage: "durations", Err: "injected failure (FailStage)"})
	r.Durations = analysis.CellDurations{}

	doc := Render(r, ctx, Options{Now: time.Date(2026, 7, 7, 12, 0, 0, 0, time.UTC)})
	if !strings.Contains(doc, "durations — stage skipped") {
		t.Fatal("missing skipped-stage heading")
	}
	if !strings.Contains(doc, "injected failure") {
		t.Fatal("missing stage diagnostic")
	}
	for _, section := range []string{
		"Table 1", "Figure 3", "Figure 6", "Table 2", "Figure 7",
		"§4.5", "Table 3", "Figure 11",
	} {
		if !strings.Contains(doc, section) {
			t.Fatalf("degraded report lost section %q", section)
		}
	}
	if strings.Contains(doc, "Figure 9") {
		t.Fatal("failed stage still rendered its figure")
	}
}

func TestRenderDataQualitySection(t *testing.T) {
	r, ctx := buildReport(t)
	var stats cdr.IngestStats
	stats.Read = 500
	stats.Quarantined[cdr.ClassBadField] = 9
	stats.Quarantined[cdr.ClassDuplicate] = 2
	stats.Retries = 1
	q := analysis.NewDataQuality(stats, 3, analysis.DailyPresence{}, simtime.Period{})
	q.Gaps = []analysis.CoverageGap{{Day: 7, Date: t0.AddDate(0, 0, 7), CarsFrac: 0.21, Baseline: 0.77}}
	q.StageErrors = []analysis.StageError{{Stage: "busy", Err: "boom"}}

	doc := Render(r, ctx, Options{Quality: q})
	for _, want := range []string{
		"## Data Quality",
		"| records read | 500 |",
		"| quarantined | 11 |",
		"| bad-field | 9 |",
		"| duplicate | 2 |",
		"2017-01-09",
		"data-loss window",
		"| busy | boom |",
	} {
		if !strings.Contains(doc, want) {
			t.Fatalf("quality section missing %q in:\n%s", want, doc)
		}
	}
}

// TestRenderWithoutQualityOmitsSection keeps the section opt-in.
func TestRenderWithoutQualityOmitsSection(t *testing.T) {
	r, ctx := buildReport(t)
	if doc := Render(r, ctx, Options{}); strings.Contains(doc, "Data Quality") {
		t.Fatal("quality section rendered without data")
	}
}
