package report

import (
	"strings"
	"testing"
	"time"

	"cellcars/internal/analysis"
	"cellcars/internal/cdr"
	"cellcars/internal/radio"
	"cellcars/internal/simtime"
)

var t0 = time.Date(2017, 1, 2, 0, 0, 0, 0, time.UTC)

func cell(bs radio.BSID) radio.CellKey { return radio.MakeCellKey(bs, 0, radio.C3) }

type fixedLoad struct{ busy radio.CellKey }

func (f *fixedLoad) Utilization(c radio.CellKey, bin int) float64 {
	if c == f.busy {
		return 0.9
	}
	return 0.2
}
func (f *fixedLoad) BusyThreshold() float64 { return 0.8 }

func buildReport(t *testing.T) (*analysis.Report, analysis.Context) {
	t.Helper()
	busy := cell(9)
	ctx := analysis.Context{
		Period: simtime.NewPeriod(t0, 14),
		Load:   &fixedLoad{busy: busy},
	}
	var records []cdr.Record
	for d := 0; d < 14; d++ {
		base := time.Duration(d) * 24 * time.Hour
		records = append(records,
			cdr.Record{Car: 1, Cell: cell(1), Start: t0.Add(base + 8*time.Hour), Duration: 2 * time.Minute},
			cdr.Record{Car: 1, Cell: cell(2), Start: t0.Add(base + 8*time.Hour + 3*time.Minute), Duration: 2 * time.Minute},
			cdr.Record{Car: 2, Cell: busy, Start: t0.Add(base + 18*time.Hour), Duration: 5 * time.Minute},
		)
	}
	r, err := analysis.Run(records, ctx, analysis.RunOptions{
		RareDays:  []int{2, 5},
		BusyCells: []radio.CellKey{busy, cell(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return r, ctx
}

func TestRenderContainsEverySection(t *testing.T) {
	r, ctx := buildReport(t)
	doc := Render(r, ctx, Options{
		Title:            "Test run",
		SceneDescription: "2 cars, 14 days",
		Now:              time.Date(2026, 7, 7, 12, 0, 0, 0, time.UTC),
	})
	for _, want := range []string{
		"# Test run",
		"2 cars, 14 days",
		"Generated 2026-07-07T12:00:00Z",
		"## Preprocessing (§3)",
		"## Table 1 — daily presence",
		"## Figure 3 — total time on network",
		"## Figure 6 — days on network",
		"## Table 2 — car segmentation",
		"## Figure 7 — time in busy cells",
		"## Figure 9 — per-cell connection durations",
		"## §4.5 — handovers per mobility session",
		"## Table 3 — carrier use",
		"## Figure 11 — busy-radio clusters",
		"inter-base-station",
		"| Monday |",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("document missing %q", want)
		}
	}
	// Markdown tables must be well formed: every table row line has the
	// same pipe count as its header within a block. Cheap sanity: no
	// stray tab characters and no unterminated fences.
	if strings.Count(doc, "```")%2 != 0 {
		t.Fatal("unbalanced code fences")
	}
}

func TestRenderDefaults(t *testing.T) {
	r, ctx := buildReport(t)
	doc := Render(r, ctx, Options{})
	if !strings.Contains(doc, "# Connected-car measurement report") {
		t.Fatal("default title missing")
	}
	if strings.Contains(doc, "Generated") {
		t.Fatal("zero Now must not stamp the document")
	}
}

func TestRenderWithoutLoadSections(t *testing.T) {
	// A report without load-dependent analyses skips their sections.
	ctx := analysis.Context{Period: simtime.NewPeriod(t0, 7)}
	records := []cdr.Record{
		{Car: 1, Cell: cell(1), Start: t0.Add(time.Hour), Duration: time.Minute},
	}
	r, err := analysis.Run(records, ctx, analysis.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	doc := Render(r, ctx, Options{})
	if strings.Contains(doc, "Table 2") || strings.Contains(doc, "Figure 11") {
		t.Fatal("load-dependent sections rendered without a load source")
	}
	if !strings.Contains(doc, "Table 3") {
		t.Fatal("record-level sections missing")
	}
}
