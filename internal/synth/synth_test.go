package synth

import (
	"math/rand/v2"
	"testing"
	"time"

	"cellcars/internal/cdr"
	"cellcars/internal/fleet"
	"cellcars/internal/mobility"
	"cellcars/internal/radio"
	"cellcars/internal/simtime"
)

// smallWorld builds a quick scene for tests: 300 cars, 14 days, 40 km.
func smallWorld(t *testing.T) *World {
	t.Helper()
	cfg := DefaultConfig(300)
	cfg.WorldSizeKm = 40
	cfg.Period = simtime.NewPeriod(time.Date(2017, 1, 2, 0, 0, 0, 0, time.UTC), 14)
	return NewWorld(cfg)
}

func TestNewWorldAssembly(t *testing.T) {
	w := smallWorld(t)
	if len(w.Cars) != 300 {
		t.Fatalf("cars = %d", len(w.Cars))
	}
	if w.Net.NumStations() == 0 || w.Net.NumCells() == 0 {
		t.Fatal("no network")
	}
	if w.Load == nil || w.Planner == nil {
		t.Fatal("missing components")
	}
	if len(w.Config.LossDays) != 3 {
		t.Fatalf("loss days = %v, want 3 defaults", w.Config.LossDays)
	}
}

func TestNewWorldPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWorld(Config{})
}

func TestGenerateDeterministic(t *testing.T) {
	a, sa, err := smallWorld(t).GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	b, sb, err := smallWorld(t).GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || sa != sb {
		t.Fatalf("nondeterministic: %d vs %d records, %+v vs %+v", len(a), len(b), sa, sb)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestGenerateBasicShape(t *testing.T) {
	w := smallWorld(t)
	records, stats, err := w.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records == 0 || int64(len(records)) != stats.Records {
		t.Fatalf("records %d vs stats %d", len(records), stats.Records)
	}
	// ~300 cars × 14 days: expect a substantial stream.
	perCarDay := float64(len(records)) / (300 * 14)
	if perCarDay < 3 || perCarDay > 80 {
		t.Fatalf("records per car-day = %.1f, implausible", perCarDay)
	}
	if !cdr.Sorted(records) {
		t.Fatal("GenerateAll output not sorted")
	}
	for i, r := range records {
		if err := r.Validate(); err != nil {
			t.Fatalf("record %d invalid: %v", i, err)
		}
		if !w.Config.Period.Contains(r.Start) {
			t.Fatalf("record %d starts outside period", i)
		}
	}
	if stats.CarsWithData < 280 {
		t.Fatalf("only %d/300 cars produced data over two weeks", stats.CarsWithData)
	}
	if stats.Ghosts == 0 {
		t.Fatal("no ghost records injected")
	}
	if stats.Stuck == 0 {
		t.Fatal("no stuck teardowns injected")
	}
	if stats.Dropped == 0 {
		t.Fatal("no loss-day drops")
	}
}

func TestGhostRecordsAreExactlyOneHour(t *testing.T) {
	w := smallWorld(t)
	records, stats, err := w.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	hourCount := int64(0)
	for _, r := range records {
		if r.Duration == time.Hour {
			hourCount++
		}
	}
	if hourCount == 0 {
		t.Fatal("no exactly-one-hour records in stream")
	}
	// Ghosts can be clamped at the period edge or dropped on loss days,
	// so the stream may hold slightly fewer than injected; organic hits
	// at exactly 3600 s are possible but rare.
	if hourCount > stats.Ghosts+20 {
		t.Fatalf("one-hour records %d far exceed injected ghosts %d", hourCount, stats.Ghosts)
	}
}

func TestDataLossDaysThinner(t *testing.T) {
	w := smallWorld(t)
	records, _, err := w.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	perDay := make([]int, w.Config.Period.Days())
	for _, r := range records {
		perDay[w.Config.Period.DayIndex(r.Start)]++
	}
	loss := w.Config.LossDays[0]
	// Compare the loss day with the same weekday one week earlier.
	ref := loss - 7
	if ref < 0 {
		t.Skip("period too short for weekday-matched comparison")
	}
	if perDay[loss] >= perDay[ref] {
		t.Fatalf("loss day %d has %d records, reference day %d has %d",
			loss, perDay[loss], ref, perDay[ref])
	}
}

func TestConnectedIntervalsInvariant(t *testing.T) {
	w := smallWorld(t)
	rng := newTestRand(7)
	for trial := 0; trial < 200; trial++ {
		legDur := time.Duration(3+trial%57) * time.Minute
		ivs := w.connectedIntervals(legDur, rng)
		var prevEnd time.Duration = -1
		for i, iv := range ivs {
			if iv.start < 0 || iv.end > legDur {
				t.Fatalf("interval %d [%v,%v) outside leg %v", i, iv.start, iv.end, legDur)
			}
			if iv.end <= iv.start {
				t.Fatalf("interval %d empty [%v,%v)", i, iv.start, iv.end)
			}
			if iv.start <= prevEnd {
				t.Fatalf("interval %d overlaps previous (start %v <= prev end %v)", i, iv.start, prevEnd)
			}
			prevEnd = iv.end
		}
		if len(ivs) == 0 {
			t.Fatalf("leg of %v produced no connected time", legDur)
		}
	}
}

func TestChooseCarrierRespectsCapabilities(t *testing.T) {
	w := smallWorld(t)
	rng := newTestRand(11)
	for bs := radio.BSID(0); int(bs) < w.Net.NumStations(); bs += 7 {
		for _, m := range []fleet.Modem{fleet.Modem3GOnly, fleet.ModemNoC4, fleet.ModemFull, fleet.ModemNextGen} {
			c, ok := w.chooseCarrier(bs, m, rng)
			if !ok {
				continue
			}
			if !m.Supports(c) {
				t.Fatalf("modem %v assigned unsupported carrier %v", m, c)
			}
			if !w.Net.Station(bs).HasCarrier(c) {
				t.Fatalf("station %d assigned absent carrier %v", bs, c)
			}
		}
	}
}

func TestChooseCarrierEmptyIntersection(t *testing.T) {
	w := smallWorld(t)
	rng := newTestRand(13)
	// Find a station without C2: a 3G-only modem must get no carrier.
	for bs := radio.BSID(0); int(bs) < w.Net.NumStations(); bs++ {
		if !w.Net.Station(bs).HasCarrier(radio.C2) {
			if _, ok := w.chooseCarrier(bs, fleet.Modem3GOnly, rng); ok {
				t.Fatal("3G-only car connected at an LTE-only site")
			}
			return
		}
	}
	t.Skip("every station has C2 in this seed")
}

func TestCarrierTimeShares(t *testing.T) {
	w := smallWorld(t)
	records, _, err := w.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	share := map[radio.CarrierID]float64{}
	for _, r := range records {
		s := r.Duration.Seconds()
		share[r.Cell.Carrier()] += s
		total += s
	}
	for c := range share {
		share[c] /= total
	}
	// Table 3 target shape: C3 dominates (~52%), then C4 (~22%),
	// C1 (~19%), C2 (~7%), C5 ~0. Loose bands: shape, not exact values.
	if !(share[radio.C3] > share[radio.C4] && share[radio.C4] >= share[radio.C1]*0.7 && share[radio.C1] > share[radio.C2]) {
		t.Fatalf("carrier time shares out of shape: %v", share)
	}
	if share[radio.C3] < 0.35 || share[radio.C3] > 0.70 {
		t.Fatalf("C3 share %.3f outside band", share[radio.C3])
	}
	if share[radio.C5] > 0.01 {
		t.Fatalf("C5 share %.5f should be negligible", share[radio.C5])
	}
}

func TestStickyCarsProduceLongRecords(t *testing.T) {
	w := smallWorld(t)
	records, _, err := w.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	sticky := map[cdr.CarID]bool{}
	for i := range w.Cars {
		if w.Cars[i].Sticky {
			sticky[cdr.CarID(w.Cars[i].ID)] = true
		}
	}
	if len(sticky) == 0 {
		t.Skip("no sticky cars in this seed")
	}
	var stickyLong, stickyAll, otherLong, otherAll float64
	for _, r := range records {
		long := r.Duration > 10*time.Minute
		if sticky[r.Car] {
			stickyAll++
			if long {
				stickyLong++
			}
		} else {
			otherAll++
			if long {
				otherLong++
			}
		}
	}
	if stickyAll == 0 || otherAll == 0 {
		t.Skip("insufficient data")
	}
	if stickyLong/stickyAll <= otherLong/otherAll {
		t.Fatalf("sticky cars not producing more long records: %.4f vs %.4f",
			stickyLong/stickyAll, otherLong/otherAll)
	}
}

func TestVisitAt(t *testing.T) {
	visits := []mobility.Visit{
		{BS: 1, Enter: 0, Exit: time.Minute},
		{BS: 2, Enter: time.Minute, Exit: 3 * time.Minute},
	}
	if got := visitAt(visits, 30*time.Second); got != 0 {
		t.Fatalf("visitAt(30s) = %d", got)
	}
	if got := visitAt(visits, 90*time.Second); got != 1 {
		t.Fatalf("visitAt(90s) = %d", got)
	}
	// Past the last exit clamps to the final visit.
	if got := visitAt(visits, time.Hour); got != 1 {
		t.Fatalf("visitAt(1h) = %d", got)
	}
}

// newTestRand returns a deterministic source for internal-logic tests.
func newTestRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, 0xBEEF))
}
