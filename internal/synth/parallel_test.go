package synth

import (
	"testing"
	"time"

	"cellcars/internal/cdr"
	"cellcars/internal/simtime"
)

func TestGenerateParallelMatchesSequential(t *testing.T) {
	cfg := DefaultConfig(120)
	cfg.WorldSizeKm = 40
	cfg.Period = simtime.NewPeriod(time.Date(2017, 1, 2, 0, 0, 0, 0, time.UTC), 7)

	seq := NewWorld(cfg)
	var seqOut cdr.SliceWriter
	seqStats, err := seq.Generate(&seqOut)
	if err != nil {
		t.Fatal(err)
	}

	par := NewWorld(cfg)
	var parOut cdr.SliceWriter
	parStats, err := par.GenerateParallel(&parOut, 4)
	if err != nil {
		t.Fatal(err)
	}

	if seqStats != parStats {
		t.Fatalf("stats differ:\nseq %+v\npar %+v", seqStats, parStats)
	}
	if len(seqOut.Records) != len(parOut.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(seqOut.Records), len(parOut.Records))
	}
	for i := range seqOut.Records {
		if seqOut.Records[i] != parOut.Records[i] {
			t.Fatalf("record %d differs:\nseq %+v\npar %+v", i, seqOut.Records[i], parOut.Records[i])
		}
	}
}

func TestGenerateParallelSingleWorkerFallsBack(t *testing.T) {
	cfg := DefaultConfig(20)
	cfg.WorldSizeKm = 40
	cfg.Period = simtime.NewPeriod(time.Date(2017, 1, 2, 0, 0, 0, 0, time.UTC), 3)
	w := NewWorld(cfg)
	var out cdr.SliceWriter
	stats, err := w.GenerateParallel(&out, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records == 0 || int64(len(out.Records)) != stats.Records {
		t.Fatalf("fallback stats: %+v with %d records", stats, len(out.Records))
	}
}

// failingWriter errors after n writes.
type failingWriter struct {
	n int
}

func (f *failingWriter) Write(cdr.Record) error {
	f.n--
	if f.n < 0 {
		return errWrite
	}
	return nil
}

var errWrite = errTest("write failed")

type errTest string

func (e errTest) Error() string { return string(e) }

func TestGenerateParallelPropagatesWriteError(t *testing.T) {
	cfg := DefaultConfig(50)
	cfg.WorldSizeKm = 40
	cfg.Period = simtime.NewPeriod(time.Date(2017, 1, 2, 0, 0, 0, 0, time.UTC), 3)
	w := NewWorld(cfg)
	_, err := w.GenerateParallel(&failingWriter{n: 10}, 4)
	if err == nil {
		t.Fatal("write error swallowed")
	}
}
