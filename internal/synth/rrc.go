package synth

import (
	"math/rand/v2"
	"sort"
	"time"

	"cellcars/internal/cdr"
	"cellcars/internal/fleet"
	"cellcars/internal/mobility"
	"cellcars/internal/radio"
)

// interval is a connected stretch within a leg, as offsets from the
// leg start.
type interval struct {
	start, end time.Duration
}

// legRecords converts one driving leg into radio-level CDR records:
// data-activity bursts become RRC connections that ride across the
// leg's base-station visits (handovers), end 10-12 s after activity
// stops, and occasionally linger (stuck teardown) or duplicate as
// spurious one-hour ghosts.
func (w *World) legRecords(car *fleet.Car, trip *mobility.Trip, rng *rand.Rand, stats *Stats) []cdr.Record {
	legDur := trip.Duration()
	if legDur <= 0 || len(trip.Visits) == 0 {
		return nil
	}
	intervals := w.connectedIntervals(legDur, rng)
	if len(intervals) == 0 {
		return nil
	}

	// The modem camps on one carrier for the whole leg, re-selecting
	// only where that carrier is not deployed. Without this stickiness
	// every idle-reconnect would flip carriers and the §4.5 handover
	// mix would show far more inter-carrier transitions than the
	// "negligible numbers" the paper reports.
	legCarrier, legOK := w.chooseCarrier(trip.Visits[0].BS, car.Modem, rng)

	var records []cdr.Record
	for _, iv := range intervals {
		carrier, ok := legCarrier, legOK
		if !ok {
			carrier, ok = w.chooseCarrier(trip.Visits[visitAt(trip.Visits, iv.start)].BS, car.Modem, rng)
			if !ok {
				continue
			}
			legCarrier, legOK = carrier, true
		}
		last := len(records)
		for vi := range trip.Visits {
			v := &trip.Visits[vi]
			s, e := maxDur(iv.start, v.Enter), minDur(iv.end, v.Exit)
			if e-s < time.Second {
				continue
			}
			st := w.Net.Station(v.BS)
			vc := carrier
			if !st.HasCarrier(vc) || !car.Modem.Supports(vc) {
				var ok2 bool
				vc, ok2 = w.chooseCarrier(v.BS, car.Modem, rng)
				if !ok2 {
					continue
				}
				carrier, legCarrier = vc, vc
			}
			sector := st.SectorToward(v.Pos)
			cell := radio.MakeCellKey(v.BS, sector, vc)

			// Rare intra-station reselection: split the visit across two
			// cells of the same base station, producing the paper's
			// "negligible numbers" of inter-sector/carrier/tech handovers.
			if e-s > 90*time.Second && rng.Float64() < 0.004 {
				mid := s + (e-s)/2
				alt := w.reselectCell(st, cell, car.Modem, rng)
				if alt != cell {
					records = append(records,
						w.record(car, trip, cell, s, mid),
						w.record(car, trip, alt, mid, e))
					continue
				}
			}
			records = append(records, w.record(car, trip, cell, s, e))
		}
		// Stuck teardown: the network side fails to release a session
		// and its final record lingers long after the radio moved on.
		// The paper's Figure 9 implies this affects a large share of
		// records (its 73rd duration percentile sits at the 600 s
		// truncation cap), so the fault applies per connection, not
		// just at trip end.
		if len(records) > last {
			p, mean := w.Config.StuckProb, w.Config.StuckMean
			if car.Sticky {
				p, mean = w.Config.StickyStuckProb, w.Config.StickyStuckMean
			}
			if rng.Float64() < p {
				extra := time.Duration(rng.ExpFloat64() * float64(mean))
				records[len(records)-1].Duration += extra.Truncate(time.Second)
				stats.Stuck++
			}
		}
	}

	// Spurious exactly-one-hour ghost record (§3 preprocessing target).
	if rng.Float64() < w.Config.GhostProb {
		v := &trip.Visits[rng.IntN(len(trip.Visits))]
		if carrier, ok := w.chooseCarrier(v.BS, car.Modem, rng); ok {
			st := w.Net.Station(v.BS)
			cell := radio.MakeCellKey(v.BS, st.SectorToward(v.Pos), carrier)
			g := w.record(car, trip, cell, v.Enter, v.Enter+time.Second)
			g.Duration = time.Hour
			if g.Validate() == nil && w.Config.Period.Contains(g.Start) {
				records = append(records, g)
				stats.Ghosts++
			}
		}
	}

	// Clamp to the study period and drop empties.
	out := records[:0]
	for _, r := range records {
		start, d := w.Config.Period.Clamp(r.Start, r.Duration)
		if d < time.Second {
			continue
		}
		r.Start, r.Duration = start, d.Truncate(time.Second)
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Before(out[j]) })
	return out
}

// record builds a CDR record for the car on the cell covering the leg
// offsets [s, e).
func (w *World) record(car *fleet.Car, trip *mobility.Trip, cell radio.CellKey, s, e time.Duration) cdr.Record {
	start := trip.Start.Add(s).Truncate(time.Second)
	return cdr.Record{
		Car:      cdr.CarID(car.ID),
		Cell:     cell,
		Start:    start,
		Duration: (e - s).Truncate(time.Second),
	}
}

// connectedIntervals builds the leg's RRC-connected stretches: data
// bursts alternating with silence, where a connection survives gaps
// shorter than the idle timeout and tears down idleTimeout after the
// last activity.
func (w *World) connectedIntervals(legDur time.Duration, rng *rand.Rand) []interval {
	idle := func() time.Duration {
		span := w.Config.IdleTimeoutMax - w.Config.IdleTimeoutMin
		return w.Config.IdleTimeoutMin + time.Duration(rng.Float64()*float64(span))
	}
	var out []interval
	// Engine-start telemetry burst.
	t := time.Duration(0)
	burst := time.Duration(15+rng.Float64()*30) * time.Second
	connStart := t
	actEnd := t + burst
	for actEnd < legDur {
		gap := time.Duration(rng.ExpFloat64() * float64(w.Config.ActivityOffMean))
		next := time.Duration(rng.ExpFloat64() * float64(w.Config.ActivityOnMean))
		timeout := idle()
		if gap <= timeout {
			// Connection survives the gap; activity resumes.
			actEnd += gap + next
			continue
		}
		end := actEnd + timeout
		if end > legDur {
			end = legDur
		}
		out = append(out, interval{connStart, end})
		connStart = actEnd + gap
		if connStart >= legDur {
			connStart = -1
			break
		}
		actEnd = connStart + next
	}
	if connStart >= 0 {
		end := actEnd + idle()
		if end > legDur {
			end = legDur
		}
		if end > connStart {
			out = append(out, interval{connStart, end})
		}
	}
	return out
}

// carrierWeights are the selection preferences calibrated against
// Table 3's time-share row (C3 51.9%, C4 22.1%, C1 18.6%, C2 7.4%).
// The C4 weight sits well above its target share because carrier
// stickiness erodes it: any leg crossing a site without C4 (one in
// five) re-camps elsewhere and stays there.
var carrierWeights = map[radio.CarrierID]float64{
	radio.C1: 0.13,
	radio.C2: 0.07,
	radio.C3: 0.50,
	radio.C4: 0.46,
	radio.C5: 0.40, // only reachable by next-gen modems
}

// chooseCarrier picks a carrier available at the station and supported
// by the modem, weighted by preference. ok is false when the
// intersection is empty (e.g. a 3G-only car at an LTE-only site).
func (w *World) chooseCarrier(bs radio.BSID, m fleet.Modem, rng *rand.Rand) (radio.CarrierID, bool) {
	st := w.Net.Station(bs)
	var total float64
	for _, c := range st.Carriers {
		if m.Supports(c) {
			total += carrierWeights[c]
		}
	}
	if total == 0 {
		return 0, false
	}
	u := rng.Float64() * total
	for _, c := range st.Carriers {
		if !m.Supports(c) {
			continue
		}
		u -= carrierWeights[c]
		if u <= 0 {
			return c, true
		}
	}
	return st.Carriers[len(st.Carriers)-1], true
}

// reselectCell picks a different cell of the same station: usually a
// neighbouring sector, sometimes another carrier.
func (w *World) reselectCell(st *radio.BaseStation, cur radio.CellKey, m fleet.Modem, rng *rand.Rand) radio.CellKey {
	if rng.Float64() < 0.5 && st.Sectors > 1 {
		next := radio.SectorID((int(cur.Sector()) + 1) % st.Sectors)
		return radio.MakeCellKey(st.ID, next, cur.Carrier())
	}
	for _, c := range st.Carriers {
		if c != cur.Carrier() && m.Supports(c) {
			return radio.MakeCellKey(st.ID, cur.Sector(), c)
		}
	}
	return cur
}

func visitAt(visits []mobility.Visit, t time.Duration) int {
	for i := range visits {
		if t < visits[i].Exit {
			return i
		}
	}
	return len(visits) - 1
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

func minDur(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}
