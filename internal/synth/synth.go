// Package synth is the end-to-end synthetic data generator: it wires
// the world geography, radio topology, car fleet, mobility engine and
// RRC connection model into a deterministic, seeded stream of CDR
// records shaped like the paper's closed data set.
//
// The generator stands in for the production network's logging plane.
// Everything downstream (cleaning, sessionization, analysis) consumes
// only the CDR stream plus the load model, exactly as it would consume
// real CDRs plus measured PRB counters.
package synth

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"
	"time"

	"cellcars/internal/cdr"
	"cellcars/internal/fleet"
	"cellcars/internal/geo"
	"cellcars/internal/load"
	"cellcars/internal/mobility"
	"cellcars/internal/radio"
	"cellcars/internal/simtime"
)

// Config parameterizes a full synthetic scene.
type Config struct {
	// Seed drives every stochastic component.
	Seed uint64
	// NumCars is the fleet size.
	NumCars int
	// WorldSizeKm is the side length of the square world. Default 60.
	WorldSizeKm float64
	// Period is the study window. Defaults to the 90-day default period.
	Period simtime.Period
	// Fleet optionally overrides population parameters; NumCars wins
	// over Fleet.NumCars.
	Fleet *fleet.Config
	// Radio optionally overrides topology parameters; the world is
	// always the generated one.
	Radio *radio.Config
	// Load optionally overrides the PRB model parameters.
	Load *load.Config

	// RRC connection model.

	// IdleTimeoutMin/Max bound the radio idle timer: a connection ends
	// this long after data activity stops (the paper cites 10-12 s).
	IdleTimeoutMin, IdleTimeoutMax time.Duration
	// ActivityOnMean is the mean length of a data-activity burst while
	// driving. Connected-car modems chatter nearly continuously
	// (telemetry, infotainment, hotspot); default 150 s.
	ActivityOnMean time.Duration
	// ActivityOffMean is the mean silent gap between bursts. Default
	// 55 s.
	ActivityOffMean time.Duration

	// Fault injection.

	// StuckProb is the per-connection probability that the session
	// fails to tear down and its record lingers (§3: "some modems
	// tendency to improperly disconnect"). Default 0.28.
	StuckProb float64
	// StuckMean is the mean lingering time for a normal stuck
	// connection. Default 22 min.
	StuckMean time.Duration
	// StickyStuckProb and StickyStuckMean are the same for cars with
	// chronically sticky modems, calibrated so those cars' total
	// reported time lands near the paper's 99.5th percentile (27% of
	// the study period). Defaults 0.5 and 45 min.
	StickyStuckProb float64
	StickyStuckMean time.Duration
	// GhostProb is the per-leg probability of emitting a spurious
	// exactly-one-hour record, the artifact the paper's preprocessing
	// removes (§3). Default 0.02.
	GhostProb float64
	// LossDays lists study days with partial data loss; LossFrac of
	// records on those days are dropped. Defaults to 3 consecutive days
	// in the second half at 40%, reproducing the dip in Figure 2.
	LossDays []int
	// LossFrac is the record drop probability on LossDays.
	LossFrac float64
}

// DefaultConfig returns the standard generator configuration for a
// fleet of the given size over the default 90-day period.
func DefaultConfig(numCars int) Config {
	return Config{
		Seed:            1,
		NumCars:         numCars,
		WorldSizeKm:     60,
		Period:          simtime.DefaultPeriod(),
		IdleTimeoutMin:  10 * time.Second,
		IdleTimeoutMax:  12 * time.Second,
		ActivityOnMean:  150 * time.Second,
		ActivityOffMean: 55 * time.Second,
		StuckProb:       0.28,
		StuckMean:       22 * time.Minute,
		StickyStuckProb: 0.50,
		StickyStuckMean: 45 * time.Minute,
		GhostProb:       0.02,
		LossDays:        nil, // filled by World for the configured period
		LossFrac:        0.40,
	}
}

// World is a fully assembled synthetic scene: geography, radio
// network, load model, fleet, and mobility planner.
type World struct {
	Config  Config
	Geo     *geo.World
	Net     *radio.Network
	Load    *load.Model
	Cars    []fleet.Car
	Planner *mobility.Planner
}

// NewWorld assembles a scene from the config. Construction is
// deterministic in Config.Seed. It panics on a non-positive fleet
// size.
func NewWorld(cfg Config) *World {
	if cfg.NumCars <= 0 {
		panic(fmt.Sprintf("synth: non-positive fleet size %d", cfg.NumCars))
	}
	def := DefaultConfig(cfg.NumCars)
	if cfg.WorldSizeKm == 0 {
		cfg.WorldSizeKm = def.WorldSizeKm
	}
	if cfg.Period == (simtime.Period{}) {
		cfg.Period = def.Period
	}
	if cfg.IdleTimeoutMin == 0 {
		cfg.IdleTimeoutMin = def.IdleTimeoutMin
	}
	if cfg.IdleTimeoutMax == 0 {
		cfg.IdleTimeoutMax = def.IdleTimeoutMax
	}
	if cfg.ActivityOnMean == 0 {
		cfg.ActivityOnMean = def.ActivityOnMean
	}
	if cfg.ActivityOffMean == 0 {
		cfg.ActivityOffMean = def.ActivityOffMean
	}
	if cfg.StuckProb == 0 {
		cfg.StuckProb = def.StuckProb
	}
	if cfg.StuckMean == 0 {
		cfg.StuckMean = def.StuckMean
	}
	if cfg.StickyStuckProb == 0 {
		cfg.StickyStuckProb = def.StickyStuckProb
	}
	if cfg.StickyStuckMean == 0 {
		cfg.StickyStuckMean = def.StickyStuckMean
	}
	if cfg.GhostProb == 0 {
		cfg.GhostProb = def.GhostProb
	}
	if cfg.LossFrac == 0 {
		cfg.LossFrac = def.LossFrac
	}
	if cfg.LossDays == nil && cfg.Period.Days() >= 14 {
		// Three consecutive loss days in the second half, as in Fig 2.
		mid := cfg.Period.Days()/2 + cfg.Period.Days()/6
		cfg.LossDays = []int{mid, mid + 1, mid + 2}
	}

	g := geo.DefaultWorld(cfg.WorldSizeKm)

	rcfg := radio.Config{World: g}
	if cfg.Radio != nil {
		rcfg = *cfg.Radio
		rcfg.World = g
	}
	net := radio.Build(rcfg, rand.New(rand.NewPCG(cfg.Seed, 0xAD10)))

	lcfg := load.DefaultConfig()
	if cfg.Load != nil {
		lcfg = *cfg.Load
	}
	lcfg.Seed = cfg.Seed ^ 0x10AD
	model := load.New(net, cfg.Period, lcfg)

	fcfg := fleet.DefaultConfig(cfg.NumCars)
	if cfg.Fleet != nil {
		fcfg = *cfg.Fleet
		fcfg.NumCars = cfg.NumCars
	}
	if fcfg.GrowthDays == 0 {
		// New cars activate throughout the study, giving Figure 2 its
		// slow upward trend.
		fcfg.GrowthDays = cfg.Period.Days()
	}
	cars := fleet.Generate(fcfg, g, rand.New(rand.NewPCG(cfg.Seed, 0xF1EE7)))

	return &World{
		Config:  cfg,
		Geo:     g,
		Net:     net,
		Load:    model,
		Cars:    cars,
		Planner: mobility.NewPlanner(net, cfg.Period),
	}
}

// Stats summarizes a generation run.
type Stats struct {
	Records      int64
	Ghosts       int64
	Stuck        int64
	Dropped      int64
	Trips        int64
	CarsWithData int64
}

// Generate produces the full CDR stream into w, iterating cars in id
// order and each car's records in time order (the stream is per-car
// sorted, not globally sorted; see cdr.Sort and cdr.Merge). Every car
// uses an independent deterministic random stream, so output is
// reproducible and car-order independent.
func (w *World) Generate(out cdr.Writer) (Stats, error) {
	var stats Stats
	for i := range w.Cars {
		n, err := w.GenerateCar(&w.Cars[i], out, &stats)
		if err != nil {
			return stats, err
		}
		if n > 0 {
			stats.CarsWithData++
		}
	}
	return stats, nil
}

// GenerateCar produces one car's records into out and returns how many
// were written. Stats (optional) is updated with generation counters.
func (w *World) GenerateCar(car *fleet.Car, out cdr.Writer, stats *Stats) (int64, error) {
	records, carStats := w.carRecords(car)
	if stats != nil {
		stats.add(carStats)
	}
	for _, rec := range records {
		if err := out.Write(rec); err != nil {
			return 0, err
		}
	}
	return int64(len(records)), nil
}

// carRecords generates one car's full record stream. It touches no
// shared mutable state: every car has an independent random stream
// derived from (seed, car id), so cars can be generated concurrently
// and in any order with identical results.
func (w *World) carRecords(car *fleet.Car) ([]cdr.Record, Stats) {
	var stats Stats
	rng := rand.New(rand.NewPCG(w.Config.Seed^0xCA4, car.ID))
	var out []cdr.Record
	for day := car.ActiveFromDay; day < w.Config.Period.Days(); day++ {
		trips := w.Planner.DayTrips(car, day, rng)
		stats.Trips += int64(len(trips))
		for ti := range trips {
			for _, rec := range w.legRecords(car, &trips[ti], rng, &stats) {
				if w.dropRecord(rec, rng) {
					stats.Dropped++
					continue
				}
				out = append(out, rec)
				stats.Records++
			}
		}
	}
	return out, stats
}

// add accumulates another stats bundle.
func (s *Stats) add(o Stats) {
	s.Records += o.Records
	s.Ghosts += o.Ghosts
	s.Stuck += o.Stuck
	s.Dropped += o.Dropped
	s.Trips += o.Trips
	s.CarsWithData += o.CarsWithData
}

// GenerateParallel is Generate distributed over the given number of
// worker goroutines. Output record order and stats are identical to
// the sequential Generate (cars in id order, per-car time order);
// memory holds at most ~workers cars' records at a time beyond the
// reorder window. workers < 2 falls back to the sequential path.
func (w *World) GenerateParallel(out cdr.Writer, workers int) (Stats, error) {
	if workers < 2 {
		return w.Generate(out)
	}
	type result struct {
		idx     int
		records []cdr.Record
		stats   Stats
	}
	jobs := make(chan int)
	results := make(chan result, workers)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				records, stats := w.carRecords(&w.Cars[idx])
				results <- result{idx: idx, records: records, stats: stats}
			}
		}()
	}
	go func() {
		for i := range w.Cars {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()

	var total Stats
	pending := make(map[int]result)
	next := 0
	var err error
	for res := range results {
		pending[res.idx] = res
		for {
			r, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			total.add(r.stats)
			if len(r.records) > 0 {
				total.CarsWithData++
			}
			if err != nil {
				continue // drain remaining results after a write error
			}
			for _, rec := range r.records {
				if werr := out.Write(rec); werr != nil {
					err = werr
					break
				}
			}
		}
	}
	return total, err
}

// GenerateAll generates the full stream into memory, using all CPUs,
// and returns the records globally sorted by (start, car, cell).
// Output is identical to the sequential path. Convenient for tests,
// examples and in-memory analysis at small and medium scales.
func (w *World) GenerateAll() ([]cdr.Record, Stats, error) {
	var sw cdr.SliceWriter
	stats, err := w.GenerateParallel(&sw, runtime.NumCPU())
	if err != nil {
		return nil, stats, err
	}
	cdr.Sort(sw.Records)
	return sw.Records, stats, nil
}

// dropRecord applies the data-loss-day filter.
func (w *World) dropRecord(rec cdr.Record, rng *rand.Rand) bool {
	day := w.Config.Period.DayIndex(rec.Start)
	for _, loss := range w.Config.LossDays {
		if day == loss {
			return rng.Float64() < w.Config.LossFrac
		}
	}
	return false
}
