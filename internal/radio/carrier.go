// Package radio models the cellular radio network the cars connect to:
// carriers (frequency bands), cells, sectors, base stations, the
// topology that places them over a geographic world, the neighbour
// graph used to route trips, and handover classification.
//
// Terminology follows the paper (§3): a "cell" is one directional
// radio on one carrier; multiple cells covering the same direction
// form a "sector"; a base station hosts several sectors, typically
// three covering ~120° each, and anywhere from 3 to 12+ cells.
package radio

import "fmt"

// Tech is the radio access technology of a carrier.
type Tech uint8

// Radio access technologies observed in the study population: the cars
// carry 3G/4G modems.
const (
	Tech3G Tech = iota
	Tech4G
)

// String returns "3G" or "4G".
func (t Tech) String() string {
	switch t {
	case Tech3G:
		return "3G"
	case Tech4G:
		return "4G"
	default:
		return fmt.Sprintf("tech(%d)", uint8(t))
	}
}

// CarrierID names one of the five carriers observed in the study,
// C1 through C5. The zero value means "no carrier".
type CarrierID uint8

// The five carriers, named as in the paper's Table 3.
const (
	C1 CarrierID = 1 + iota
	C2
	C3
	C4
	C5
)

// NumCarriers is the number of distinct carriers in the model.
const NumCarriers = 5

// String returns the paper's name for the carrier ("C1" … "C5").
func (c CarrierID) String() string {
	if c < C1 || c > C5 {
		return fmt.Sprintf("C?(%d)", uint8(c))
	}
	return fmt.Sprintf("C%d", uint8(c))
}

// Valid reports whether c names one of the five modelled carriers.
func (c CarrierID) Valid() bool { return c >= C1 && c <= C5 }

// Carrier describes one radio frequency carrier. Higher-frequency
// bands carry wider channels and therefore more Physical Resource
// Blocks (PRBs) and higher throughput (§4.6).
type Carrier struct {
	ID           CarrierID
	Tech         Tech
	BandMHz      int     // centre frequency band, MHz
	BandwidthMHz float64 // channel bandwidth, MHz
	PRBs         int     // physical resource blocks per subframe (LTE sizing)
}

// Carriers returns the five-carrier deployment used throughout the
// reproduction. The paper anonymizes the bands, so the concrete
// frequencies are representative of a US operator circa 2017:
//
//	C1: low-band LTE (700 MHz, 10 MHz) — coverage layer
//	C2: 3G UMTS (850 MHz, 5 MHz) — legacy layer
//	C3: mid-band LTE (1900 MHz, 20 MHz) — main capacity layer
//	C4: AWS LTE (2100 MHz, 10 MHz) — secondary capacity layer
//	C5: new high-band LTE (2300 MHz, 20 MHz) — recent addition that
//	    almost no car modem in the study supports (Table 3: 0.006%)
//
// The returned slice is freshly allocated; callers may modify it.
func Carriers() []Carrier {
	return []Carrier{
		{ID: C1, Tech: Tech4G, BandMHz: 700, BandwidthMHz: 10, PRBs: 50},
		{ID: C2, Tech: Tech3G, BandMHz: 850, BandwidthMHz: 5, PRBs: 25},
		{ID: C3, Tech: Tech4G, BandMHz: 1900, BandwidthMHz: 20, PRBs: 100},
		{ID: C4, Tech: Tech4G, BandMHz: 2100, BandwidthMHz: 10, PRBs: 50},
		{ID: C5, Tech: Tech4G, BandMHz: 2300, BandwidthMHz: 20, PRBs: 100},
	}
}

// CarrierByID returns the deployment descriptor for id. It panics for
// an invalid id: carrier ids flow from trusted topology code, never
// from external input.
func CarrierByID(id CarrierID) Carrier {
	if !id.Valid() {
		panic(fmt.Sprintf("radio: invalid carrier id %d", id))
	}
	return Carriers()[id-C1]
}

// TechOf returns the radio technology of a carrier id.
func TechOf(id CarrierID) Tech { return CarrierByID(id).Tech }
