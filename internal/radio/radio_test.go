package radio

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"

	"cellcars/internal/geo"
)

func TestCarrierTable(t *testing.T) {
	cs := Carriers()
	if len(cs) != NumCarriers {
		t.Fatalf("carriers = %d, want %d", len(cs), NumCarriers)
	}
	for i, c := range cs {
		if c.ID != CarrierID(i+1) {
			t.Fatalf("carrier %d has id %v", i, c.ID)
		}
		if c.PRBs <= 0 || c.BandwidthMHz <= 0 {
			t.Fatalf("carrier %v has non-positive capacity", c.ID)
		}
	}
	// C2 is the legacy 3G layer; everything else is LTE.
	if TechOf(C2) != Tech3G {
		t.Fatalf("C2 tech = %v", TechOf(C2))
	}
	for _, id := range []CarrierID{C1, C3, C4, C5} {
		if TechOf(id) != Tech4G {
			t.Fatalf("%v tech = %v, want 4G", id, TechOf(id))
		}
	}
}

func TestCarrierStrings(t *testing.T) {
	if C3.String() != "C3" {
		t.Fatalf("C3 = %q", C3.String())
	}
	if CarrierID(0).String() != "C?(0)" || CarrierID(9).Valid() {
		t.Fatal("invalid carrier handling")
	}
	if Tech3G.String() != "3G" || Tech4G.String() != "4G" {
		t.Fatal("tech names")
	}
	if Tech(9).String() != "tech(9)" {
		t.Fatal("unknown tech name")
	}
}

func TestCarrierByIDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CarrierByID(CarrierID(0))
}

func TestCellKeyRoundTrip(t *testing.T) {
	f := func(bs uint32, sector uint8, carrierRaw uint8) bool {
		carrier := CarrierID(carrierRaw%NumCarriers) + C1
		k := MakeCellKey(BSID(bs), SectorID(sector), carrier)
		return k.BS() == BSID(bs) && k.Sector() == SectorID(sector) && k.Carrier() == carrier && !k.IsZero()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCellKeyString(t *testing.T) {
	k := MakeCellKey(102, 1, C3)
	if got := k.String(); got != "bs102/s1/C3" {
		t.Fatalf("String = %q", got)
	}
	if !CellKey(0).IsZero() {
		t.Fatal("zero key not IsZero")
	}
}

func TestMakeCellKeyPanicsOnBadCarrier(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MakeCellKey(1, 0, CarrierID(0))
}

func TestClassifyHandover(t *testing.T) {
	cases := []struct {
		name string
		a, b CellKey
		want HandoverKind
	}{
		{"same cell", MakeCellKey(1, 0, C1), MakeCellKey(1, 0, C1), HandoverNone},
		{"different bs", MakeCellKey(1, 0, C1), MakeCellKey(2, 0, C1), HandoverInterBS},
		{"different bs and carrier", MakeCellKey(1, 0, C1), MakeCellKey(2, 1, C3), HandoverInterBS},
		{"3G to 4G same bs", MakeCellKey(1, 0, C2), MakeCellKey(1, 0, C3), HandoverInterTech},
		{"carrier same sector", MakeCellKey(1, 0, C3), MakeCellKey(1, 0, C4), HandoverInterCarrier},
		{"sector change", MakeCellKey(1, 0, C3), MakeCellKey(1, 1, C3), HandoverInterSector},
		{"sector and carrier change", MakeCellKey(1, 0, C3), MakeCellKey(1, 1, C4), HandoverInterSector},
	}
	for _, c := range cases {
		if got := ClassifyHandover(c.a, c.b); got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
}

func TestHandoverKindString(t *testing.T) {
	names := map[HandoverKind]string{
		HandoverInterBS:      "inter-base-station",
		HandoverInterTech:    "inter-technology",
		HandoverInterCarrier: "inter-carrier",
		HandoverInterSector:  "inter-sector",
		HandoverNone:         "none",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("%d: %q, want %q", k, got, want)
		}
	}
	if HandoverKind(200).String() != "handover(200)" {
		t.Fatal("unknown handover name")
	}
}

func testNetwork(t *testing.T) *Network {
	t.Helper()
	rng := rand.New(rand.NewPCG(1, 2))
	return Build(Config{World: geo.DefaultWorld(40)}, rng)
}

func TestBuildBasicProperties(t *testing.T) {
	n := testNetwork(t)
	if n.NumStations() == 0 {
		t.Fatal("no stations built")
	}
	if n.NumCells() < n.NumStations()*3 {
		t.Fatalf("cells = %d for %d stations; every site needs >= 3 cells",
			n.NumCells(), n.NumStations())
	}
	for i := range n.Stations {
		s := &n.Stations[i]
		if s.ID != BSID(i) {
			t.Fatalf("station %d has id %d", i, s.ID)
		}
		if len(s.Carriers) == 0 {
			t.Fatalf("station %d has no carriers", i)
		}
		if !n.World.Bounds.Contains(s.Loc) && n.World.Bounds.Clamp(s.Loc) != s.Loc {
			t.Fatalf("station %d outside world: %v", i, s.Loc)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	a := Build(Config{World: geo.DefaultWorld(30)}, rand.New(rand.NewPCG(5, 5)))
	b := Build(Config{World: geo.DefaultWorld(30)}, rand.New(rand.NewPCG(5, 5)))
	if a.NumStations() != b.NumStations() {
		t.Fatalf("station counts differ: %d vs %d", a.NumStations(), b.NumStations())
	}
	for i := range a.Stations {
		if a.Stations[i].Loc != b.Stations[i].Loc {
			t.Fatalf("station %d at %v vs %v", i, a.Stations[i].Loc, b.Stations[i].Loc)
		}
	}
}

func TestBuildDensityGradient(t *testing.T) {
	n := testNetwork(t)
	counts := map[geo.Density]int{}
	for i := range n.Stations {
		counts[n.Stations[i].Density]++
	}
	if counts[geo.Urban] == 0 || counts[geo.Suburban] == 0 || counts[geo.Rural] == 0 {
		t.Fatalf("expected all densities represented: %v", counts)
	}
	// Urban core is 1/25 of the area yet should hold a sizeable share of
	// sites thanks to 1 km spacing vs 7 km rural spacing.
	if counts[geo.Urban] < counts[geo.Rural]/4 {
		t.Fatalf("urban density not reflected: %v", counts)
	}
}

func TestBuildC5Sparse(t *testing.T) {
	n := testNetwork(t)
	withC5 := 0
	for i := range n.Stations {
		if n.Stations[i].HasCarrier(C5) {
			withC5++
		}
	}
	frac := float64(withC5) / float64(n.NumStations())
	if frac > 0.3 {
		t.Fatalf("C5 deployed at %.0f%% of sites; should be sparse", frac*100)
	}
}

func TestNearestStation(t *testing.T) {
	n := testNetwork(t)
	probes := []geo.Point{
		{X: 1, Y: 1}, {X: 20, Y: 20}, {X: 39, Y: 5}, {X: 15, Y: 33},
	}
	for _, p := range probes {
		got := n.NearestStation(p)
		// Brute force check.
		best, bestD := BSID(0), n.Stations[0].Loc.Dist(p)
		for i := range n.Stations {
			if d := n.Stations[i].Loc.Dist(p); d < bestD {
				best, bestD = n.Stations[i].ID, d
			}
		}
		if n.Stations[got].Loc.Dist(p) > bestD+1e-9 {
			t.Errorf("NearestStation(%v) = %d (d=%.3f), brute force %d (d=%.3f)",
				p, got, n.Stations[got].Loc.Dist(p), best, bestD)
		}
	}
}

func TestNeighborsSortedAndExcludeSelf(t *testing.T) {
	n := testNetwork(t)
	for _, id := range []BSID{0, BSID(n.NumStations() / 2), BSID(n.NumStations() - 1)} {
		nbrs := n.Neighbors(id)
		if len(nbrs) == 0 {
			t.Fatalf("station %d has no neighbours", id)
		}
		prev := -1.0
		for _, nb := range nbrs {
			if nb == id {
				t.Fatalf("station %d lists itself as neighbour", id)
			}
			d := n.Stations[nb].Loc.Dist(n.Stations[id].Loc)
			if d < prev-1e-9 {
				t.Fatalf("station %d neighbours not sorted by distance", id)
			}
			prev = d
		}
	}
}

func TestSectorToward(t *testing.T) {
	bs := BaseStation{Loc: geo.Point{X: 0, Y: 0}, Sectors: 3}
	seen := map[SectorID]bool{}
	pts := []geo.Point{
		{X: 1, Y: 0}, {X: -1, Y: 1}, {X: -1, Y: -1},
		{X: 0, Y: 1}, {X: 0, Y: -1}, {X: 1, Y: 1},
	}
	for _, p := range pts {
		s := bs.SectorToward(p)
		if int(s) >= bs.Sectors {
			t.Fatalf("sector %d out of range", s)
		}
		seen[s] = true
	}
	if len(seen) < 3 {
		t.Fatalf("directions map to only %d sectors", len(seen))
	}
	one := BaseStation{Loc: geo.Point{X: 0, Y: 0}, Sectors: 1}
	if one.SectorToward(geo.Point{X: 5, Y: 5}) != 0 {
		t.Fatal("single-sector site must always return sector 0")
	}
}

func TestStationCells(t *testing.T) {
	bs := BaseStation{ID: 7, Sectors: 3, Carriers: []CarrierID{C1, C3}}
	cells := bs.Cells()
	if len(cells) != 6 {
		t.Fatalf("cells = %d, want 6", len(cells))
	}
	seen := map[CellKey]bool{}
	for _, c := range cells {
		if c.BS() != 7 {
			t.Fatalf("cell %v has wrong bs", c)
		}
		if seen[c] {
			t.Fatalf("duplicate cell %v", c)
		}
		seen[c] = true
	}
}

func TestBuildPanicsWithoutWorld(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Build(Config{}, rand.New(rand.NewPCG(1, 1)))
}

func TestAllCellsMatchesNumCells(t *testing.T) {
	n := testNetwork(t)
	if got := len(n.AllCells()); got != n.NumCells() {
		t.Fatalf("AllCells = %d, NumCells = %d", got, n.NumCells())
	}
}

// TestNearestKMatchesBruteForce verifies the spatial-grid k-nearest
// query against a brute-force scan over many random probe points.
func TestNearestKMatchesBruteForce(t *testing.T) {
	n := testNetwork(t)
	rng := rand.New(rand.NewPCG(21, 22))
	for trial := 0; trial < 150; trial++ {
		p := geo.Point{
			X: rng.Float64()*44 - 2, // includes points slightly outside the world
			Y: rng.Float64()*44 - 2,
		}
		k := 1 + rng.IntN(6)
		got := n.grid.nearestK(n.Stations, p, k)

		type cand struct {
			id BSID
			d  float64
		}
		all := make([]cand, len(n.Stations))
		for i := range n.Stations {
			all[i] = cand{n.Stations[i].ID, n.Stations[i].Loc.Dist(p)}
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].d != all[j].d {
				return all[i].d < all[j].d
			}
			return all[i].id < all[j].id
		})
		want := k
		if want > len(all) {
			want = len(all)
		}
		if len(got) != want {
			t.Fatalf("trial %d: got %d ids, want %d", trial, len(got), want)
		}
		for i := range got {
			// Distances must match the brute-force ladder (ids may differ
			// only on exact ties).
			gd := n.Stations[got[i]].Loc.Dist(p)
			if diff := gd - all[i].d; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("trial %d rank %d: grid %.6f vs brute %.6f (p=%v k=%d)",
					trial, i, gd, all[i].d, p, k)
			}
		}
	}
}
