package radio

import "fmt"

// BSID identifies a base station within a network.
type BSID uint32

// SectorID identifies a sector within a base station (0, 1, 2 for the
// common three-sector layout).
type SectorID uint8

// CellKey compactly identifies a single cell — one (base station,
// sector, carrier) triple — in a form cheap to store per CDR record
// and usable as a map key. Layout, low to high bits:
//
//	bits 0–7   carrier id
//	bits 8–15  sector id
//	bits 16–47 base station id
//
// The zero CellKey is "no cell".
type CellKey uint64

// MakeCellKey packs a cell identity. It panics on an invalid carrier:
// cell keys are constructed by topology code from validated parts.
func MakeCellKey(bs BSID, sector SectorID, carrier CarrierID) CellKey {
	if !carrier.Valid() {
		panic(fmt.Sprintf("radio: invalid carrier %d in cell key", carrier))
	}
	return CellKey(uint64(carrier) | uint64(sector)<<8 | uint64(bs)<<16)
}

// BS returns the base station component.
func (k CellKey) BS() BSID { return BSID(k >> 16) }

// Sector returns the sector component.
func (k CellKey) Sector() SectorID { return SectorID(k >> 8) }

// Carrier returns the carrier component.
func (k CellKey) Carrier() CarrierID { return CarrierID(k) }

// IsZero reports whether the key is the "no cell" sentinel.
func (k CellKey) IsZero() bool { return k == 0 }

// String renders the key as bs/sector/carrier, e.g. "bs102/s1/C3".
func (k CellKey) String() string {
	return fmt.Sprintf("bs%d/s%d/%s", k.BS(), k.Sector(), k.Carrier())
}

// HandoverKind classifies a transition between two consecutive cell
// connections of the same car, per the paper's §4.5 taxonomy.
type HandoverKind uint8

// Handover kinds, from most to least common in the study. The paper
// finds inter-base-station handovers dominate, with the other three
// "observed in negligible numbers".
const (
	// HandoverInterBS is a move between different base stations.
	HandoverInterBS HandoverKind = iota
	// HandoverInterTech is a move between radio technologies (3G/4G).
	HandoverInterTech
	// HandoverInterCarrier is a move between carriers of the same sector.
	HandoverInterCarrier
	// HandoverInterSector is a move between sectors of the same base station.
	HandoverInterSector
	// HandoverNone means the cell did not change.
	HandoverNone
)

// NumHandoverKinds is the number of distinct HandoverKind values.
const NumHandoverKinds = 5

// String returns a short name for the handover kind.
func (h HandoverKind) String() string {
	switch h {
	case HandoverInterBS:
		return "inter-base-station"
	case HandoverInterTech:
		return "inter-technology"
	case HandoverInterCarrier:
		return "inter-carrier"
	case HandoverInterSector:
		return "inter-sector"
	case HandoverNone:
		return "none"
	default:
		return fmt.Sprintf("handover(%d)", uint8(h))
	}
}

// ClassifyHandover classifies the transition from cell a to cell b
// following the paper's §4.5 taxonomy: a base-station change is an
// inter-BS handover regardless of carrier; within one base station a
// technology change (3G/4G) is inter-technology, a carrier change
// within the same sector is inter-carrier, and otherwise a sector
// change is inter-sector.
func ClassifyHandover(a, b CellKey) HandoverKind {
	if a == b {
		return HandoverNone
	}
	if a.BS() != b.BS() {
		return HandoverInterBS
	}
	if TechOf(a.Carrier()) != TechOf(b.Carrier()) {
		return HandoverInterTech
	}
	if a.Sector() == b.Sector() {
		return HandoverInterCarrier
	}
	return HandoverInterSector
}
