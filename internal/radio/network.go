package radio

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"cellcars/internal/geo"
)

// BaseStation is one cell site: a location, a set of sectors, and the
// carriers deployed at the site. Every (sector, carrier) pair is one
// cell.
type BaseStation struct {
	ID       BSID
	Loc      geo.Point
	Sectors  int
	Carriers []CarrierID
	Density  geo.Density
}

// Cells returns the keys of every cell hosted by the base station, in
// deterministic (sector-major, carrier-minor) order.
func (b *BaseStation) Cells() []CellKey {
	out := make([]CellKey, 0, b.Sectors*len(b.Carriers))
	for s := 0; s < b.Sectors; s++ {
		for _, c := range b.Carriers {
			out = append(out, MakeCellKey(b.ID, SectorID(s), c))
		}
	}
	return out
}

// HasCarrier reports whether the site deploys the given carrier.
func (b *BaseStation) HasCarrier(c CarrierID) bool {
	for _, have := range b.Carriers {
		if have == c {
			return true
		}
	}
	return false
}

// SectorToward returns the sector whose ~(360/Sectors)° wedge contains
// the heading (radians from +X) from the site to the given point.
func (b *BaseStation) SectorToward(p geo.Point) SectorID {
	if b.Sectors <= 1 {
		return 0
	}
	h := b.Loc.Heading(p) // (-π, π]
	frac := (h + math.Pi) / (2 * math.Pi)
	s := int(frac * float64(b.Sectors))
	if s >= b.Sectors {
		s = b.Sectors - 1
	}
	return SectorID(s)
}

// Network is the full radio topology: base stations with a spatial
// index for nearest-site queries and a neighbour graph for routing
// trips and handovers.
type Network struct {
	World    *geo.World
	Stations []BaseStation

	neighbors [][]BSID // k nearest other stations, sorted by distance
	grid      spatialGrid
}

// NumStations returns the number of base stations.
func (n *Network) NumStations() int { return len(n.Stations) }

// NumCells returns the total number of cells across all stations.
func (n *Network) NumCells() int {
	total := 0
	for i := range n.Stations {
		total += n.Stations[i].Sectors * len(n.Stations[i].Carriers)
	}
	return total
}

// Station returns the base station with the given id. It panics on an
// unknown id: station ids are dense indices assigned by the builder.
func (n *Network) Station(id BSID) *BaseStation {
	if int(id) >= len(n.Stations) {
		panic(fmt.Sprintf("radio: unknown base station %d", id))
	}
	return &n.Stations[id]
}

// AllCells returns every cell key in the network in deterministic order.
func (n *Network) AllCells() []CellKey {
	out := make([]CellKey, 0, n.NumCells())
	for i := range n.Stations {
		out = append(out, n.Stations[i].Cells()...)
	}
	return out
}

// Neighbors returns the ids of the k nearest other base stations of
// id, nearest first. The slice is owned by the network; callers must
// not modify it.
func (n *Network) Neighbors(id BSID) []BSID {
	if int(id) >= len(n.neighbors) {
		panic(fmt.Sprintf("radio: unknown base station %d", id))
	}
	return n.neighbors[id]
}

// NearestStation returns the id of the base station closest to p.
// It panics on an empty network.
func (n *Network) NearestStation(p geo.Point) BSID {
	if len(n.Stations) == 0 {
		panic("radio: NearestStation on empty network")
	}
	return n.grid.nearest(n.Stations, p)
}

// Config controls topology construction.
type Config struct {
	// World is the geography to cover. Required.
	World *geo.World
	// SectorsPerSite is the number of sectors at each site. Default 3.
	SectorsPerSite int
	// NeighborCount is how many nearest neighbours to precompute per
	// site. Default 8.
	NeighborCount int
	// CarrierAvailability maps each carrier to the probability that a
	// given site deploys it. Defaults to DefaultCarrierAvailability.
	CarrierAvailability map[CarrierID]float64
	// JitterFrac displaces each site from its grid position by up to
	// this fraction of the local spacing in each axis. Default 0.35.
	JitterFrac float64
}

// DefaultCarrierAvailability is the per-site deployment probability of
// each carrier. The low-band coverage layer C1 and the 3G layer C2 are
// near-universal; the capacity layers are common; C5 is a sparse new
// deployment, matching the paper's observation that C5 traffic is
// negligible (§4.6).
func DefaultCarrierAvailability() map[CarrierID]float64 {
	return map[CarrierID]float64{
		C1: 0.97,
		C2: 0.93,
		C3: 0.90,
		C4: 0.80,
		C5: 0.12,
	}
}

// Build places base stations over the world on a jittered grid whose
// spacing follows each region's density class, assigns sectors and
// carriers, and precomputes the spatial index and neighbour graph.
// The source drives jitter and carrier assignment only; a fixed seed
// yields an identical network.
func Build(cfg Config, rng *rand.Rand) *Network {
	if cfg.World == nil {
		panic("radio: Build requires a World")
	}
	if cfg.SectorsPerSite <= 0 {
		cfg.SectorsPerSite = 3
	}
	if cfg.NeighborCount <= 0 {
		cfg.NeighborCount = 8
	}
	if cfg.CarrierAvailability == nil {
		cfg.CarrierAvailability = DefaultCarrierAvailability()
	}
	if cfg.JitterFrac == 0 {
		cfg.JitterFrac = 0.35
	}

	n := &Network{World: cfg.World}

	// Lay a grid at the finest spacing and keep a site when the local
	// density calls for one at that position: a site at a coarse-density
	// point is kept only every (coarse/fine) steps. This produces dense
	// urban cores and sparse fringes without region seams.
	fine := geo.Urban.SiteSpacingKm()
	b := cfg.World.Bounds
	cols := int(b.Width() / fine)
	rows := int(b.Height() / fine)
	for gy := 0; gy < rows; gy++ {
		for gx := 0; gx < cols; gx++ {
			p := geo.Point{
				X: b.Min.X + (float64(gx)+0.5)*fine,
				Y: b.Min.Y + (float64(gy)+0.5)*fine,
			}
			d := cfg.World.DensityAt(p)
			step := int(math.Round(d.SiteSpacingKm() / fine))
			if step < 1 {
				step = 1
			}
			if gx%step != 0 || gy%step != 0 {
				continue
			}
			spacing := d.SiteSpacingKm()
			jx := (rng.Float64()*2 - 1) * cfg.JitterFrac * spacing
			jy := (rng.Float64()*2 - 1) * cfg.JitterFrac * spacing
			loc := b.Clamp(p.Add(jx, jy))

			carriers := make([]CarrierID, 0, NumCarriers)
			for _, c := range Carriers() {
				avail := cfg.CarrierAvailability[c.ID]
				// Urban sites get the capacity layers more often; rural
				// sites skew toward the coverage layers.
				switch d {
				case geo.Urban:
					if c.ID == C3 || c.ID == C4 || c.ID == C5 {
						avail = math.Min(1, avail*1.15)
					}
				case geo.Rural:
					if c.ID == C3 || c.ID == C4 {
						avail *= 0.75
					}
					if c.ID == C5 {
						avail *= 0.2
					}
				}
				if rng.Float64() < avail {
					carriers = append(carriers, c.ID)
				}
			}
			if len(carriers) == 0 {
				// Every real site has at least a coverage layer.
				carriers = append(carriers, C1)
			}

			n.Stations = append(n.Stations, BaseStation{
				ID:       BSID(len(n.Stations)),
				Loc:      loc,
				Sectors:  cfg.SectorsPerSite,
				Carriers: carriers,
				Density:  d,
			})
		}
	}
	if len(n.Stations) == 0 {
		panic("radio: world too small for any site; increase its size")
	}

	n.grid.build(n.Stations, fine*2)
	n.buildNeighbors(cfg.NeighborCount)
	return n
}

// buildNeighbors computes, for every station, the k nearest other
// stations sorted by distance, using the spatial grid to bound the
// search.
func (n *Network) buildNeighbors(k int) {
	n.neighbors = make([][]BSID, len(n.Stations))
	for i := range n.Stations {
		cand := n.grid.nearestK(n.Stations, n.Stations[i].Loc, k+1)
		nbrs := make([]BSID, 0, k)
		for _, id := range cand {
			if id != n.Stations[i].ID {
				nbrs = append(nbrs, id)
			}
			if len(nbrs) == k {
				break
			}
		}
		n.neighbors[i] = nbrs
	}
}

// spatialGrid is a uniform hash grid over station locations for
// nearest-neighbour queries.
type spatialGrid struct {
	cellKm float64
	origin geo.Point
	cols   int
	rows   int
	cells  map[int][]BSID
}

func (g *spatialGrid) build(stations []BaseStation, cellKm float64) {
	g.cellKm = cellKm
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for i := range stations {
		p := stations[i].Loc
		minX = math.Min(minX, p.X)
		minY = math.Min(minY, p.Y)
		maxX = math.Max(maxX, p.X)
		maxY = math.Max(maxY, p.Y)
	}
	g.origin = geo.Point{X: minX, Y: minY}
	g.cols = int((maxX-minX)/cellKm) + 1
	g.rows = int((maxY-minY)/cellKm) + 1
	g.cells = make(map[int][]BSID)
	for i := range stations {
		idx := g.index(stations[i].Loc)
		g.cells[idx] = append(g.cells[idx], stations[i].ID)
	}
}

func (g *spatialGrid) index(p geo.Point) int {
	cx := int((p.X - g.origin.X) / g.cellKm)
	cy := int((p.Y - g.origin.Y) / g.cellKm)
	if cx < 0 {
		cx = 0
	}
	if cx >= g.cols {
		cx = g.cols - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= g.rows {
		cy = g.rows - 1
	}
	return cy*g.cols + cx
}

// nearest returns the id of the station closest to p.
func (g *spatialGrid) nearest(stations []BaseStation, p geo.Point) BSID {
	ids := g.nearestK(stations, p, 1)
	return ids[0]
}

// nearestK returns up to k station ids closest to p, nearest first.
// Grid cells are visited in expanding Chebyshev rings around p's
// (clamped) cell; the search stops once the current k-th best distance
// is provably closer than anything a further ring could hold. The
// bound uses the fact that any point of a ring-r cell lies at least
// (r-1)·cellKm from every point of the centre cell, and clamping p to
// the (convex) grid only shrinks distances to in-grid stations.
func (g *spatialGrid) nearestK(stations []BaseStation, p geo.Point, k int) []BSID {
	cx := clampInt(int((p.X-g.origin.X)/g.cellKm), 0, g.cols-1)
	cy := clampInt(int((p.Y-g.origin.Y)/g.cellKm), 0, g.rows-1)

	type cand struct {
		id BSID
		d  float64
	}
	var cands []cand
	kth := math.Inf(1)
	maxRing := g.cols + g.rows
	for ring := 0; ring <= maxRing; ring++ {
		if len(cands) >= k && float64(ring-1)*g.cellKm > kth {
			break
		}
		for dy := -ring; dy <= ring; dy++ {
			for dx := -ring; dx <= ring; dx++ {
				if ring > 0 && abs(dx) != ring && abs(dy) != ring {
					continue // interior already visited
				}
				x, y := cx+dx, cy+dy
				if x < 0 || x >= g.cols || y < 0 || y >= g.rows {
					continue
				}
				for _, id := range g.cells[y*g.cols+x] {
					cands = append(cands, cand{id, stations[id].Loc.Dist(p)})
				}
			}
		}
		if len(cands) >= k {
			sort.Slice(cands, func(i, j int) bool {
				if cands[i].d != cands[j].d {
					return cands[i].d < cands[j].d
				}
				return cands[i].id < cands[j].id
			})
			kth = cands[k-1].d
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].d != cands[j].d {
			return cands[i].d < cands[j].d
		}
		return cands[i].id < cands[j].id
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]BSID, len(cands))
	for i, c := range cands {
		out[i] = c.id
	}
	return out
}

func clampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
