package fleet

import "fmt"

// TripKind classifies a planned trip.
type TripKind uint8

// Trip kinds.
const (
	// KindCommuteOut is the morning (or shift-start) leg to work.
	KindCommuteOut TripKind = iota
	// KindCommuteReturn is the leg back home.
	KindCommuteReturn
	// KindErrand is a local round trip from home.
	KindErrand
	// KindLong is a longer leisure drive, typically on weekends.
	KindLong
)

// String returns the trip-kind name.
func (k TripKind) String() string {
	switch k {
	case KindCommuteOut:
		return "commute-out"
	case KindCommuteReturn:
		return "commute-return"
	case KindErrand:
		return "errand"
	case KindLong:
		return "long-drive"
	default:
		return fmt.Sprintf("trip(%d)", uint8(k))
	}
}

// Dest selects a trip's destination relative to the car's anchors.
type Dest uint8

// Destinations.
const (
	// DestWork routes from the car's current anchor to its work point.
	DestWork Dest = iota
	// DestHome routes back to the home point.
	DestHome
	// DestLocal routes to a random point near home.
	DestLocal
	// DestFar routes to a random point far from home.
	DestFar
)

// TripPlan is one recurring trip template in an archetype's weekly
// routine. Mobility samples concrete trips from these: on each day
// whose weekday matches Days, the trip occurs with probability Prob,
// starting at a normally distributed local hour and driving for a
// normally distributed number of minutes.
type TripPlan struct {
	Kind      TripKind
	Dest      Dest
	Days      [7]bool // Monday=0 … Sunday=6
	Prob      float64
	StartHour float64 // local time, mean
	StartStd  float64 // hours
	DurMin    float64 // driving minutes, mean
	DurStd    float64 // minutes
}

var (
	weekdays = [7]bool{true, true, true, true, true, false, false}
	weekend  = [7]bool{false, false, false, false, false, true, true}
	saturday = [7]bool{false, false, false, false, false, true, false}
	sunday   = [7]bool{false, false, false, false, false, false, true}
	everyday = [7]bool{true, true, true, true, true, true, true}
)

// Plans returns the archetype's weekly trip templates. The returned
// slice is freshly allocated.
//
// The templates are calibrated so that, at the DefaultMix, the
// population reproduces the paper's macro statistics: ~76% of cars on
// the network per day with Sat/Sun dips, ~1 hour of (truncated)
// driving-connected time per day on average, rare cars on ≤10 days and
// ~10% of cars on ≤30 days.
func (a Archetype) Plans() []TripPlan {
	switch a {
	case CommuterBusy:
		return []TripPlan{
			{Kind: KindCommuteOut, Dest: DestWork, Days: weekdays, Prob: 0.95, StartHour: 7.7, StartStd: 0.4, DurMin: 28, DurStd: 8},
			{Kind: KindCommuteReturn, Dest: DestHome, Days: weekdays, Prob: 0.95, StartHour: 17.4, StartStd: 0.6, DurMin: 30, DurStd: 9},
			{Kind: KindErrand, Dest: DestLocal, Days: weekdays, Prob: 0.25, StartHour: 19.5, StartStd: 1.2, DurMin: 18, DurStd: 7},
			{Kind: KindErrand, Dest: DestLocal, Days: weekend, Prob: 0.55, StartHour: 12.5, StartStd: 2.5, DurMin: 24, DurStd: 10},
		}
	case CommuterEarly:
		return []TripPlan{
			{Kind: KindCommuteOut, Dest: DestWork, Days: weekdays, Prob: 0.95, StartHour: 5.6, StartStd: 0.3, DurMin: 30, DurStd: 8},
			{Kind: KindCommuteReturn, Dest: DestHome, Days: weekdays, Prob: 0.95, StartHour: 14.4, StartStd: 0.5, DurMin: 30, DurStd: 8},
			{Kind: KindErrand, Dest: DestLocal, Days: saturday, Prob: 0.75, StartHour: 13.0, StartStd: 1.8, DurMin: 26, DurStd: 10},
			{Kind: KindErrand, Dest: DestLocal, Days: sunday, Prob: 0.65, StartHour: 9.3, StartStd: 1.0, DurMin: 22, DurStd: 8},
		}
	case Heavy:
		return []TripPlan{
			{Kind: KindCommuteOut, Dest: DestWork, Days: weekdays, Prob: 0.96, StartHour: 8.0, StartStd: 0.5, DurMin: 30, DurStd: 9},
			{Kind: KindCommuteReturn, Dest: DestHome, Days: weekdays, Prob: 0.96, StartHour: 17.6, StartStd: 0.7, DurMin: 32, DurStd: 10},
			{Kind: KindErrand, Dest: DestLocal, Days: weekdays, Prob: 0.55, StartHour: 20.0, StartStd: 1.1, DurMin: 22, DurStd: 8},
			{Kind: KindLong, Dest: DestFar, Days: weekend, Prob: 0.85, StartHour: 13.0, StartStd: 2.5, DurMin: 40, DurStd: 15},
			{Kind: KindErrand, Dest: DestLocal, Days: weekend, Prob: 0.40, StartHour: 19.0, StartStd: 1.5, DurMin: 22, DurStd: 8},
		}
	case Weekend:
		return []TripPlan{
			{Kind: KindLong, Dest: DestFar, Days: saturday, Prob: 0.90, StartHour: 11.0, StartStd: 2.0, DurMin: 45, DurStd: 18},
			{Kind: KindLong, Dest: DestFar, Days: sunday, Prob: 0.80, StartHour: 12.0, StartStd: 2.5, DurMin: 40, DurStd: 15},
			{Kind: KindErrand, Dest: DestLocal, Days: weekdays, Prob: 0.30, StartHour: 15.0, StartStd: 3.0, DurMin: 20, DurStd: 8},
		}
	case Occasional:
		return []TripPlan{
			{Kind: KindErrand, Dest: DestLocal, Days: everyday, Prob: 0.50, StartHour: 14.0, StartStd: 4.0, DurMin: 25, DurStd: 10},
		}
	case Infrequent:
		return []TripPlan{
			{Kind: KindErrand, Dest: DestLocal, Days: everyday, Prob: 0.22, StartHour: 13.0, StartStd: 4.0, DurMin: 25, DurStd: 10},
		}
	case Rare:
		return []TripPlan{
			{Kind: KindErrand, Dest: DestLocal, Days: everyday, Prob: 0.055, StartHour: 13.0, StartStd: 4.0, DurMin: 30, DurStd: 12},
		}
	case NightShift:
		return []TripPlan{
			{Kind: KindCommuteOut, Dest: DestWork, Days: weekdays, Prob: 0.92, StartHour: 21.5, StartStd: 0.5, DurMin: 28, DurStd: 8},
			{Kind: KindCommuteReturn, Dest: DestHome, Days: weekdays, Prob: 0.92, StartHour: 6.2, StartStd: 0.5, DurMin: 28, DurStd: 8},
		}
	default:
		return nil
	}
}
