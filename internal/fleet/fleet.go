// Package fleet models the connected-car population: behavioural
// archetypes (commuters, heavy users, weekend and rare drivers), each
// car's home/work anchors in the world, its time zone, modem
// capabilities, and fault propensities.
//
// The archetype mix is calibrated so the downstream analyses land in
// the paper's reported bands: ~76% of cars on the network on an
// average day with weekend dips (Fig 2, Table 1), ~2% of cars on 10 or
// fewer days and ~10% on 30 or fewer (Fig 6, Table 2), and the strong
// weekly 24×7 patterns of Figure 5.
package fleet

import (
	"fmt"
	"math/rand/v2"

	"cellcars/internal/geo"
)

// Archetype is a car's behavioural class, controlling when and how
// much it drives.
type Archetype uint8

// Behavioural archetypes. The three cars of Figure 5 correspond to
// CommuterBusy (left: busy-hour weekday commute only), Heavy (middle:
// commute plus evenings plus weekends) and CommuterEarly (right:
// pre-peak commute with predictable weekend usage).
const (
	// CommuterBusy commutes Monday–Friday during network busy hours.
	CommuterBusy Archetype = iota
	// CommuterEarly commutes Monday–Friday before the commute peak.
	CommuterEarly
	// Heavy drives nearly every day: commute, evening and weekend trips.
	Heavy
	// Weekend drives mostly on weekends with occasional weekday errands.
	Weekend
	// Occasional drives a couple of times per week with no fixed pattern.
	Occasional
	// Infrequent appears a few times per month.
	Infrequent
	// Rare appears on ten or fewer days over the whole study.
	Rare
	// NightShift commutes overnight, against the network load curve.
	NightShift
)

// NumArchetypes is the number of behavioural classes.
const NumArchetypes = 8

// String returns the archetype name.
func (a Archetype) String() string {
	switch a {
	case CommuterBusy:
		return "commuter-busy"
	case CommuterEarly:
		return "commuter-early"
	case Heavy:
		return "heavy"
	case Weekend:
		return "weekend"
	case Occasional:
		return "occasional"
	case Infrequent:
		return "infrequent"
	case Rare:
		return "rare"
	case NightShift:
		return "night-shift"
	default:
		return fmt.Sprintf("archetype(%d)", uint8(a))
	}
}

// Car is one vehicle in the population.
type Car struct {
	// ID is the raw (pre-anonymization) identifier, a dense index.
	ID uint64
	// Archetype is the behavioural class.
	Archetype Archetype
	// Home is where trips start and end by default.
	Home geo.Point
	// Work is the commute destination (meaningful for commuter and
	// heavy archetypes; others use it as a frequent errand target).
	Work geo.Point
	// TZOffsetSeconds is the car's local-time offset from UTC.
	TZOffsetSeconds int
	// Modem is the car's modem capability class, determining which
	// carriers it can ever use (Table 3).
	Modem Modem
	// Sticky marks a modem that often fails to disconnect, producing
	// the non-terminating connections the paper truncates at 600 s.
	Sticky bool
	// ActiveFromDay is the first study day the car is on the road.
	// Zero for the existing fleet; later for cars sold during the
	// study, which produce Figure 2's slow upward trend.
	ActiveFromDay int
}

// Config parameterizes population generation.
type Config struct {
	// NumCars is the population size. Required.
	NumCars int
	// Mix is the archetype distribution; weights need not sum to 1.
	// Defaults to DefaultMix.
	Mix map[Archetype]float64
	// ModemMix is the modem class distribution. Defaults to
	// DefaultModemMix.
	ModemMix map[Modem]float64
	// StickyFrac is the fraction of cars with sticky modems.
	// Default 0.02.
	StickyFrac float64
	// TZOffsetSeconds is the world's local-time offset from UTC.
	// Default -5 h (US Eastern, standard time).
	TZOffsetSeconds int
	// HomeDensityWeights sets the share of homes in each density class.
	// Defaults: urban 0.22, suburban 0.50, rural 0.28.
	HomeDensityWeights map[geo.Density]float64
	// GrowthFrac is the fraction of the fleet activated during (rather
	// than before) the study, uniformly over GrowthDays. Produces the
	// slow upward trend of Figure 2. Default 0.04.
	GrowthFrac float64
	// GrowthDays is the activation window length in days; cars in the
	// growth fraction get a uniform ActiveFromDay in [0, GrowthDays).
	// Zero disables growth regardless of GrowthFrac.
	GrowthDays int
}

// DefaultMix is the archetype distribution calibrated against the
// paper's population statistics (see package comment).
func DefaultMix() map[Archetype]float64 {
	return map[Archetype]float64{
		CommuterBusy:  0.29,
		CommuterEarly: 0.12,
		Heavy:         0.25,
		Weekend:       0.12,
		Occasional:    0.11,
		Infrequent:    0.078,
		Rare:          0.022,
		NightShift:    0.01,
	}
}

// DefaultConfig returns the standard population parameters for the
// given size.
func DefaultConfig(numCars int) Config {
	return Config{
		NumCars:         numCars,
		Mix:             DefaultMix(),
		ModemMix:        DefaultModemMix(),
		StickyFrac:      0.02,
		GrowthFrac:      0.04,
		TZOffsetSeconds: -5 * 3600,
		HomeDensityWeights: map[geo.Density]float64{
			geo.Urban:    0.22,
			geo.Suburban: 0.50,
			geo.Rural:    0.28,
		},
	}
}

// Generate samples a car population over the world. Generation is
// deterministic for a fixed source. It panics when NumCars is not
// positive or the world is nil.
func Generate(cfg Config, world *geo.World, rng *rand.Rand) []Car {
	if cfg.NumCars <= 0 {
		panic(fmt.Sprintf("fleet: non-positive population %d", cfg.NumCars))
	}
	if world == nil {
		panic("fleet: Generate requires a world")
	}
	if cfg.Mix == nil {
		cfg.Mix = DefaultMix()
	}
	if cfg.ModemMix == nil {
		cfg.ModemMix = DefaultModemMix()
	}
	if cfg.StickyFrac == 0 {
		cfg.StickyFrac = 0.02
	}
	if cfg.TZOffsetSeconds == 0 {
		cfg.TZOffsetSeconds = -5 * 3600
	}
	if cfg.HomeDensityWeights == nil {
		cfg.HomeDensityWeights = DefaultConfig(1).HomeDensityWeights
	}

	sampler := newArchetypeSampler(cfg.Mix)
	cars := make([]Car, cfg.NumCars)
	for i := range cars {
		a := sampler.sample(rng)
		home := sampleHome(cfg.HomeDensityWeights, world, rng)
		work := sampleWork(a, home, world, rng)
		activeFrom := 0
		if cfg.GrowthDays > 0 && rng.Float64() < cfg.GrowthFrac {
			activeFrom = rng.IntN(cfg.GrowthDays)
		}
		cars[i] = Car{
			ID:              uint64(i),
			Archetype:       a,
			Home:            home,
			Work:            work,
			TZOffsetSeconds: cfg.TZOffsetSeconds,
			Modem:           sampleModem(cfg.ModemMix, rng),
			Sticky:          rng.Float64() < cfg.StickyFrac,
			ActiveFromDay:   activeFrom,
		}
	}
	return cars
}

// archetypeSampler draws archetypes from a weighted distribution with
// a deterministic cumulative table.
type archetypeSampler struct {
	arch []Archetype
	cum  []float64
}

func newArchetypeSampler(mix map[Archetype]float64) *archetypeSampler {
	s := &archetypeSampler{}
	var total float64
	for a := Archetype(0); a < NumArchetypes; a++ {
		w := mix[a]
		if w <= 0 {
			continue
		}
		total += w
		s.arch = append(s.arch, a)
		s.cum = append(s.cum, total)
	}
	if total == 0 {
		panic("fleet: archetype mix has no positive weights")
	}
	for i := range s.cum {
		s.cum[i] /= total
	}
	return s
}

func (s *archetypeSampler) sample(rng *rand.Rand) Archetype {
	u := rng.Float64()
	for i, c := range s.cum {
		if u <= c {
			return s.arch[i]
		}
	}
	return s.arch[len(s.arch)-1]
}

// sampleHome picks a home location: first a density class by weight,
// then a uniform point within a region of that class.
func sampleHome(weights map[geo.Density]float64, world *geo.World, rng *rand.Rand) geo.Point {
	var total float64
	for _, w := range weights {
		total += w
	}
	u := rng.Float64() * total
	var want geo.Density
	for _, d := range []geo.Density{geo.Urban, geo.Suburban, geo.Rural} {
		u -= weights[d]
		if u <= 0 {
			want = d
			break
		}
	}
	// Rejection-sample a point whose density matches; the fringe region
	// covers the whole world, so rural always succeeds quickly.
	for tries := 0; tries < 200; tries++ {
		p := geo.Point{
			X: world.Bounds.Min.X + rng.Float64()*world.Bounds.Width(),
			Y: world.Bounds.Min.Y + rng.Float64()*world.Bounds.Height(),
		}
		if world.DensityAt(p) == want {
			return p
		}
	}
	return world.Bounds.Center()
}

// sampleWork picks a commute destination. Commuter and heavy cars
// head toward the urban core (where the jobs are) from wherever they
// live; others get a nearby anchor for errands.
func sampleWork(a Archetype, home geo.Point, world *geo.World, rng *rand.Rand) geo.Point {
	c := world.Bounds.Center()
	switch a {
	case CommuterBusy, CommuterEarly, Heavy, NightShift:
		// A point in or near the urban core with some scatter.
		scatter := world.Bounds.Width() * 0.08
		return world.Bounds.Clamp(geo.Point{
			X: c.X + (rng.Float64()*2-1)*scatter,
			Y: c.Y + (rng.Float64()*2-1)*scatter,
		})
	default:
		// A local errand anchor a few kilometres from home.
		r := 2 + rng.Float64()*6
		return world.Bounds.Clamp(home.Add((rng.Float64()*2-1)*r, (rng.Float64()*2-1)*r))
	}
}
