package fleet

import (
	"math/rand/v2"
	"testing"

	"cellcars/internal/radio"
)

func TestModemCapabilities(t *testing.T) {
	cases := []struct {
		m    Modem
		want []radio.CarrierID
	}{
		{Modem3GOnly, []radio.CarrierID{radio.C2}},
		{ModemNoC4No3G, []radio.CarrierID{radio.C1, radio.C3}},
		{ModemNoC4, []radio.CarrierID{radio.C1, radio.C2, radio.C3}},
		{ModemFullNo3G, []radio.CarrierID{radio.C1, radio.C3, radio.C4}},
		{ModemFull, []radio.CarrierID{radio.C1, radio.C2, radio.C3, radio.C4}},
		{ModemNextGen, []radio.CarrierID{radio.C1, radio.C2, radio.C3, radio.C4, radio.C5}},
	}
	for _, c := range cases {
		got := c.m.Capabilities()
		if len(got) != len(c.want) {
			t.Fatalf("%v capabilities = %v, want %v", c.m, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("%v capabilities = %v, want %v", c.m, got, c.want)
			}
		}
	}
	if Modem(99).Capabilities() != nil {
		t.Fatal("unknown modem should have nil capabilities")
	}
}

func TestModemSupports(t *testing.T) {
	if !ModemFull.Supports(radio.C4) || ModemFull.Supports(radio.C5) {
		t.Fatal("ModemFull support set wrong")
	}
	if Modem3GOnly.Supports(radio.C1) || !Modem3GOnly.Supports(radio.C2) {
		t.Fatal("Modem3GOnly support set wrong")
	}
	if !ModemNextGen.Supports(radio.C5) {
		t.Fatal("ModemNextGen must support C5")
	}
}

func TestModemString(t *testing.T) {
	if Modem3GOnly.String() != "3g-only" || ModemNextGen.String() != "next-gen" {
		t.Fatal("modem names")
	}
	if Modem(42).String() != "modem(42)" {
		t.Fatal("unknown modem name")
	}
}

func TestDefaultModemMixSumsToOne(t *testing.T) {
	var total float64
	for _, w := range DefaultModemMix() {
		total += w
	}
	if total < 0.999 || total > 1.001 {
		t.Fatalf("modem mix sums to %v", total)
	}
}

func TestSampleModemRespectsZeroWeights(t *testing.T) {
	mix := map[Modem]float64{ModemFull: 1}
	rng := rand.New(rand.NewPCG(1, 1))
	for i := 0; i < 100; i++ {
		if got := sampleModem(mix, rng); got != ModemFull {
			t.Fatalf("sampled %v from a single-class mix", got)
		}
	}
}
